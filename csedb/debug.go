package csedb

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/obs"
)

// debugServer is the opt-in HTTP introspection endpoint: Prometheus metrics,
// pprof, the flight recorder, result-cache contents, and a Chrome trace of
// the last span-traced batch. It binds to the configured address (use
// 127.0.0.1 unless you mean to expose it) and serves read-only views of the
// db's observability state; it never mutates the database.
type debugServer struct {
	srv  *http.Server
	ln   net.Listener
	addr string
}

// StartDebugServer starts the debug HTTP server on addr (":0" picks a free
// port) and returns the bound address. It fails when the server is already
// running or the address cannot be listened on.
func (db *DB) StartDebugServer(addr string) (string, error) {
	db.debugMu.Lock()
	defer db.debugMu.Unlock()
	if db.debug != nil {
		return "", fmt.Errorf("debug server already listening on %s", db.debug.addr)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: db.DebugHandler(), ReadHeaderTimeout: 5 * time.Second}
	db.debug = &debugServer{srv: srv, ln: ln, addr: ln.Addr().String()}
	db.debugErr = nil
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Stop
	return db.debug.addr, nil
}

// StopDebugServer shuts the debug server down; a no-op when it is not
// running.
func (db *DB) StopDebugServer() error {
	db.debugMu.Lock()
	defer db.debugMu.Unlock()
	if db.debug == nil {
		return nil
	}
	err := db.debug.srv.Close()
	db.debug = nil
	return err
}

// DebugAddr returns the debug server's bound address, or "" when it is not
// running.
func (db *DB) DebugAddr() string {
	db.debugMu.Lock()
	defer db.debugMu.Unlock()
	if db.debug == nil {
		return ""
	}
	return db.debug.addr
}

// DebugServerError reports why the debug server requested via
// Options.DebugAddr failed to start; nil when it started (or was never
// requested).
func (db *DB) DebugServerError() error { return db.debugErr }

// DebugHandler returns the debug server's handler without binding a socket —
// the CI smoke and tests scrape it in-process.
func (db *DB) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", db.handleDebugIndex)
	mux.HandleFunc("/metrics", db.handleMetrics)
	mux.HandleFunc("/flightrecorder", db.handleFlightRecorder)
	mux.HandleFunc("/cache", db.handleCache)
	mux.HandleFunc("/trace/last", db.handleTraceLast)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (db *DB) handleDebugIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "csedb debug server")
	fmt.Fprintln(w, "  /metrics         Prometheus text exposition")
	fmt.Fprintln(w, "  /flightrecorder  recent and slow batches (JSON)")
	fmt.Fprintln(w, "  /cache           result-cache stats and entries (JSON)")
	fmt.Fprintln(w, "  /trace/last      last span-traced batch, Chrome trace-event format")
	fmt.Fprintln(w, "  /debug/pprof/    runtime profiles")
}

func (db *DB) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, db.metrics.Dump())
}

func (db *DB) handleFlightRecorder(w http.ResponseWriter, _ *http.Request) {
	out := struct {
		ThresholdNS int64              `json:"threshold_ns"`
		Recent      []*obs.BatchRecord `json:"recent"`
		Slow        []*obs.BatchRecord `json:"slow"`
	}{
		ThresholdNS: int64(db.flight.Threshold()),
		Recent:      db.flight.Recent(),
		Slow:        db.flight.Slow(),
	}
	if out.Recent == nil {
		out.Recent = []*obs.BatchRecord{}
	}
	if out.Slow == nil {
		out.Slow = []*obs.BatchRecord{}
	}
	writeJSON(w, out)
}

func (db *DB) handleCache(w http.ResponseWriter, _ *http.Request) {
	c := db.cache
	if c == nil {
		writeJSON(w, map[string]any{"enabled": false})
		return
	}
	s := c.Stats()
	lookups := s.Hits + s.Misses
	hitRate := 0.0
	if lookups > 0 {
		hitRate = float64(s.Hits) / float64(lookups)
	}
	writeJSON(w, map[string]any{
		"enabled":  true,
		"stats":    s,
		"hit_rate": hitRate,
		"entries":  c.Entries(),
	})
}

func (db *DB) handleTraceLast(w http.ResponseWriter, _ *http.Request) {
	// The newest record that actually carries spans: span tracing may have
	// been toggled on after plain batches already ran.
	var rec *obs.BatchRecord
	for _, r := range db.flight.Recent() {
		if len(r.Spans) > 0 {
			rec = r
			break
		}
	}
	if rec == nil {
		http.Error(w, "no span-traced batch recorded; enable span tracing (\\debug on or Options.SpanTracing) and run a batch", http.StatusNotFound)
		return
	}
	data, err := obs.ChromeTrace(rec.Spans)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", fmt.Sprintf(`attachment; filename="csedb-batch-%d-trace.json"`, rec.Seq))
	w.Write(data) //nolint:errcheck
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck
}
