package csedb_test

import (
	"strings"
	"testing"
)

// TestCTEBasicInlining: a WITH-defined SPJ expression referenced once.
func TestCTEBasicInlining(t *testing.T) {
	db := openTPCH(t, withCSE())
	res, err := db.Run(`
with co as (
  select c_custkey, c_nationkey, o_orderkey, o_totalprice
  from customer, orders
  where c_custkey = o_custkey and o_orderdate < '1996-07-01')
select c_nationkey, sum(o_totalprice) as v
from co
group by c_nationkey`)
	if err != nil {
		t.Fatal(err)
	}
	// Must match the hand-expanded query.
	ref, err := db.Run(`
select c_nationkey, sum(o_totalprice) as v
from customer, orders
where c_custkey = o_custkey and o_orderdate < '1996-07-01'
group by c_nationkey`)
	if err != nil {
		t.Fatal(err)
	}
	a, b := canonical(res.Statements[0].Rows), canonical(ref.Statements[0].Rows)
	if len(a) != len(b) {
		t.Fatalf("CTE result has %d rows, expansion %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("row %d: %q vs %q", i, a[i], b[i])
		}
	}
}

// TestCTEJoinedWithTables: a CTE participating in further joins, with
// qualified references to its columns.
func TestCTEJoinedWithTables(t *testing.T) {
	db := openTPCH(t, withCSE())
	res, err := db.Run(`
with big_orders as (
  select o_orderkey, o_custkey, o_totalprice
  from orders
  where o_totalprice > 200000)
select n_name, count(*) as n
from big_orders b, customer, nation
where b.o_custkey = c_custkey and c_nationkey = n_nationkey
group by n_name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Statements[0].Rows) == 0 {
		t.Error("no results — CTE join broken or predicate too tight")
	}
}

// TestCTEReferencedTwiceIsShared is the §6.1 story: a WITH referenced from
// two statements creates similar subexpressions; after inlining, the CSE
// machinery re-detects them and computes the shared part once — possibly at
// a better granularity than the user's WITH (here: with an aggregation
// pushed in).
func TestCTEReferencedTwiceIsShared(t *testing.T) {
	db := openTPCH(t, withCSE())
	sql := `
with col as (
  select c_nationkey, c_mktsegment, l_extendedprice, l_quantity
  from customer, orders, lineitem
  where c_custkey = o_custkey and o_orderkey = l_orderkey
    and o_orderdate < '1996-07-01')
select c_nationkey, sum(l_extendedprice) as le from col group by c_nationkey;

with col as (
  select c_nationkey, c_mktsegment, l_extendedprice, l_quantity
  from customer, orders, lineitem
  where c_custkey = o_custkey and o_orderkey = l_orderkey
    and o_orderdate < '1996-07-01')
select c_mktsegment, sum(l_quantity) as lq from col group by c_mktsegment;
`
	res, err := db.Run(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.UsedCSEs) == 0 {
		t.Fatalf("the doubly-referenced CTE must be shared; candidates: %v", res.Stats.CandidateLabels)
	}
	// The chosen covering expression is an aggregation — tighter than the
	// user's raw-join CTE.
	usedLabel := res.Stats.CandidateLabels[res.Stats.UsedCSEs[0]]
	if !strings.HasPrefix(usedLabel, "γ(") {
		t.Errorf("optimizer should share an aggregated covering expression, got %s", usedLabel)
	}

	// Results must match CSE-off execution.
	dbOff := openTPCH(t, noCSE())
	off, err := dbOff.Run(sql)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, off, res)
}

// TestCTEErrors: unsupported CTE shapes are rejected with clear messages.
func TestCTEErrors(t *testing.T) {
	db := openTPCH(t, withCSE())
	cases := []struct {
		sql, want string
	}{
		{"with x as (select c_nationkey, count(*) as n from customer group by c_nationkey) select n from x",
			"only select-project-join"},
		{"with x as (select c_acctbal + 1 as b from customer) select b from x",
			"plain column"},
		{"with x as (select c_name from customer), x as (select c_name from customer) select c_name from x",
			"duplicate WITH name"},
		{"with x as (select c_name, c_name from customer) select c_name from x",
			"duplicate output column"},
		{"create materialized view v as with x as (select c_name from customer) select c_name from x",
			"WITH clauses are not maintainable"},
	}
	for _, c := range cases {
		_, err := db.Run(c.sql)
		if err == nil {
			t.Errorf("Run(%q) succeeded, want error about %q", c.sql, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Run(%q) error %q, want mention of %q", c.sql, err, c.want)
		}
	}
}

// TestCTEShadowsTable: a CTE named like a base table wins.
func TestCTEShadowsTable(t *testing.T) {
	db := openTPCH(t, withCSE())
	res, err := db.Run(`
with nation as (select r_regionkey, r_name from region)
select count(*) as n from nation`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Statements[0].Rows[0][0].Int(); got != 5 {
		t.Errorf("shadowing CTE returned %d rows, want region's 5", got)
	}
}

// TestNestedCTE: a CTE referencing another CTE.
func TestNestedCTE(t *testing.T) {
	db := openTPCH(t, withCSE())
	res, err := db.Run(`
with good as (select c_custkey, c_nationkey from customer where c_acctbal > 0),
     goodorders as (select g.c_nationkey, o.o_totalprice from good g, orders o where g.c_custkey = o.o_custkey)
select c_nationkey, sum(o_totalprice) as v from goodorders group by c_nationkey`)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := db.Run(`
select c_nationkey, sum(o_totalprice) as v
from customer, orders
where c_acctbal > 0 and c_custkey = o_custkey
group by c_nationkey`)
	if err != nil {
		t.Fatal(err)
	}
	a, b := canonical(res.Statements[0].Rows), canonical(ref.Statements[0].Rows)
	if len(a) != len(b) {
		t.Fatalf("nested CTE rows %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("row %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}

// TestLikeResidualsInCovering: consumers differing only in LIKE predicates
// share a covering expression whose OR covering keeps the LIKE disjuncts
// (LIKE is not hull-able); compensation re-applies each consumer's pattern.
func TestLikeResidualsInCovering(t *testing.T) {
	dbOn := openTPCH(t, withCSE())
	dbOff := openTPCH(t, noCSE())
	sql := `
select c_nationkey, sum(o_totalprice) as v
from customer, orders
where c_custkey = o_custkey and c_mktsegment like 'B%'
group by c_nationkey;
select c_nationkey, count(*) as n
from customer, orders
where c_custkey = o_custkey and c_mktsegment like '%RY'
group by c_nationkey;
`
	on, err := dbOn.Run(sql)
	if err != nil {
		t.Fatal(err)
	}
	off, err := dbOff.Run(sql)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, off, on)
	// Sharing may or may not win here; if it did, the covering must
	// mention LIKE.
	if len(on.Stats.UsedCSEs) > 0 {
		label := on.Stats.CandidateLabels[on.Stats.UsedCSEs[0]]
		if !strings.Contains(label, "LIKE") {
			t.Errorf("covering lost the LIKE disjuncts: %s", label)
		}
	}
}

// TestExplainCreateView: plans for DDL batches render without executing.
func TestExplainCreateView(t *testing.T) {
	db := openTPCH(t, withCSE())
	plan, err := db.Explain(`create materialized view ev as
select c_nationkey, count(*) as n from customer group by c_nationkey`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "Scan customer") {
		t.Errorf("explain of DDL missing the defining plan:\n%s", plan)
	}
	// Explain must not have materialized the view.
	if _, err := db.QueryView("ev"); err == nil {
		t.Error("Explain must not create the view")
	}
}
