package csedb

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/logical"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/parser"
)

// ExplainAnalyze executes a batch with per-operator instrumentation and
// renders the executed plan with runtime actuals (rows produced, cumulative
// wall time, spool hit counts) next to the optimizer's estimates, followed
// by the CSE decision trail (every H1–H4 prune with its thresholds) and an
// execution summary. The batch really runs: side effects (view
// materialization is the only one for SELECT batches — none) apply.
func (db *DB) ExplainAnalyze(sql string) (string, error) {
	return db.ExplainAnalyzeContext(context.Background(), sql)
}

// ExplainAnalyzeContext is ExplainAnalyze with a cancellation context.
func (db *DB) ExplainAnalyzeContext(ctx context.Context, sql string) (string, error) {
	stmts, err := parser.Parse(sql)
	if err != nil {
		return "", err
	}
	batch, err := logical.BuildBatch(stmts, db.cat)
	if err != nil {
		return "", err
	}
	start := time.Now()
	m, err := memo.Build(batch)
	if err != nil {
		return "", err
	}
	// EXPLAIN ANALYZE always traces: the decision trail is part of its
	// output regardless of the database-wide tracing toggle.
	tr := obs.NewTrace()
	out, err := core.OptimizeTraced(m, db.settings, tr)
	if err != nil {
		return "", err
	}
	optTime := time.Since(start)

	start = time.Now()
	results, stats, err := exec.RunWithOptions(ctx, out.Result, batch.Metadata, db.store,
		exec.Options{Parallelism: db.parallelism, ChunkSize: db.chunkSize, Analyze: true, NoColPlane: db.noColPlane})
	if err != nil {
		return "", err
	}
	execTime := time.Since(start)
	db.recordMetrics(len(results), &out.Stats, stats, optTime, execTime)

	return renderAnalyzed(out, batch.Metadata, stats, tr, optTime, execTime), nil
}

// renderAnalyzed assembles the EXPLAIN ANALYZE text.
func renderAnalyzed(out *core.Output, md *logical.Metadata, stats *exec.Stats, tr *obs.Trace, optTime, execTime time.Duration) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "estimated cost: %.2f (base %.2f), optimized in %s, executed in %s\n",
		out.Stats.FinalCost, out.Stats.BaseCost, optTime.Round(time.Microsecond), execTime.Round(time.Microsecond))

	sb.WriteString(out.Result.FormatAnnotated(md, func(p *opt.Plan) string {
		ns, ok := stats.Nodes[p]
		if !ok {
			return ""
		}
		actual := fmt.Sprintf("[actual rows=%d time=%s", ns.Rows, ns.Time.Round(time.Microsecond))
		if ns.Execs > 1 {
			actual += fmt.Sprintf(" execs=%d", ns.Execs)
		}
		if ns.Par > 1 {
			actual += fmt.Sprintf(" par=%d", ns.Par)
		}
		if p.Op == opt.PSpoolScan {
			actual += fmt.Sprintf(" hits=%d", stats.SpoolHits[p.SpoolID])
		}
		return actual + "]"
	}))

	// The CSE decision trail: every pruning decision with its evidence, plus
	// candidates, charge groups, and the subset search.
	sb.WriteString("CSE decisions:\n")
	for _, e := range tr.Events() {
		sb.WriteString("  ")
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}

	fmt.Fprintf(&sb, "execution: workers=%d waves=%d morsels=%d parallel-ops=%d utilization=%.0f%% busy=%s wall=%s\n",
		stats.Workers, len(stats.Waves), stats.Morsels, stats.ParallelOps, stats.Utilization()*100,
		stats.BusyTime.Round(time.Microsecond), stats.WallTime.Round(time.Microsecond))
	if stats.FallbackReason != "" {
		fmt.Fprintf(&sb, "sequential fallback: %s\n", stats.FallbackReason)
	}
	return sb.String()
}
