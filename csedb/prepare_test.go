package csedb_test

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/csedb"
)

// TestPreparedMatchesRun pins the prepared path against Run: the same batch
// prepared once and executed twice must return the same results as the
// one-shot path, statement for statement.
func TestPreparedMatchesRun(t *testing.T) {
	db := openTPCH(t, withCSE())
	p, err := db.Prepare(example1SQL)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := db.Run(example1SQL)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		res, err := db.ExecutePrepared(context.Background(), p, nil)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		compareResults(t, direct, res)
	}
}

// TestPreparedConcurrentExecution exercises the immutability contract: one
// Prepared executed from many goroutines at once must give every caller the
// same rows (asserted under -race in CI).
func TestPreparedConcurrentExecution(t *testing.T) {
	db := openTPCH(t, withCSE())
	p, err := db.Prepare(example1SQL)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := db.Run(example1SQL)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	results := make([]*csedb.BatchResult, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w], errs[w] = db.ExecutePrepared(context.Background(), p, nil)
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		compareResults(t, direct, results[w])
	}
}

func TestPrepareRejectsNonSelect(t *testing.T) {
	db := openTPCH(t, withCSE())
	_, err := db.Prepare(`create materialized view mv as select n_name from nation;`)
	if err == nil || !strings.Contains(err.Error(), "only SELECT") {
		t.Fatalf("DDL prepare: got %v, want only-SELECT error", err)
	}
	if _, err := db.Prepare(";;"); err == nil {
		t.Fatal("empty batch prepare: got nil error")
	}
}

// TestPreparedStale pins the invalidation contract: a write to any source
// table flips Stale, a write elsewhere does not, and the version snapshot is
// taken before optimization (so the accessors reflect pre-write state).
func TestPreparedStale(t *testing.T) {
	db := openTPCH(t, withCSE())
	p, err := db.Prepare(`select n_name from nation where n_nationkey < 5;`)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.NumStatements(); got != 1 {
		t.Fatalf("NumStatements = %d, want 1", got)
	}
	if got := p.SourceTables(); len(got) != 1 || got[0] != "nation" {
		t.Fatalf("SourceTables = %v, want [nation]", got)
	}
	if len(p.Versions()) != 1 {
		t.Fatalf("Versions = %v, want one entry", p.Versions())
	}
	if p.PrepareTime() <= 0 {
		t.Fatal("PrepareTime not recorded")
	}

	if p.Stale(db.Store()) {
		t.Fatal("fresh plan reports stale")
	}
	db.Store().Touch("lineitem")
	if p.Stale(db.Store()) {
		t.Fatal("write to an unreferenced table made the plan stale")
	}
	db.Store().Touch("nation")
	if !p.Stale(db.Store()) {
		t.Fatal("write to a source table did not make the plan stale")
	}
}

// TestOpenOnSharesStore pins the multi-DB wiring the serving layer and the
// differential harness rely on: two databases opened onto one catalog and
// store see the same data and return the same results.
func TestOpenOnSharesStore(t *testing.T) {
	db := openTPCH(t, withCSE())
	other := csedb.OpenOn(db.Catalog(), db.Store(), csedb.Options{CSE: noCSE(), ExecParallelism: 1})
	a, err := db.Run(example1SQL)
	if err != nil {
		t.Fatal(err)
	}
	b, err := other.Run(example1SQL)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, a, b)
}
