package csedb_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/csedb"
	"repro/internal/core"
	"repro/internal/sqltypes"
)

// openCached opens a TPC-H database with the result cache configured at the
// given byte budget (0 = default budget).
func openCached(t testing.TB, settings *core.Settings, budget int64) *csedb.DB {
	t.Helper()
	db := csedb.Open(csedb.Options{CSE: settings, CacheBudget: budget})
	if err := db.LoadTPCH(0.01, 42); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestCacheWarmRerun: re-running the same batch serves the CSE spool from
// the cross-batch cache — no re-materialization — with identical results.
func TestCacheWarmRerun(t *testing.T) {
	db := openCached(t, withCSE(), 0)
	cold, err := db.Run(example1SQL)
	if err != nil {
		t.Fatal(err)
	}
	if cold.ExecStats.CacheHits() != 0 {
		t.Fatalf("cold run reported %d cache hits", cold.ExecStats.CacheHits())
	}
	warm, err := db.Run(example1SQL)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, cold, warm)
	if got := warm.ExecStats.CacheHits(); got != 1 {
		t.Errorf("warm run cache hits = %d, want 1", got)
	}
	if len(warm.ExecStats.SpoolRuns) != 0 {
		t.Errorf("warm run re-materialized spools: %v", warm.ExecStats.SpoolRuns)
	}
	if n := warm.SpoolRows; len(n) != 1 {
		t.Errorf("warm run spool rows = %v, want the one cached spool", n)
	}
	s := db.ResultCache().Stats()
	if s.Hits != 1 || s.Entries != 1 {
		t.Errorf("cache stats = %+v, want 1 hit, 1 entry", s)
	}
	if got := db.Metrics().Snapshot()["exec_spools_cached_total"]; got != 1 {
		t.Errorf("exec_spools_cached_total = %v, want 1", got)
	}
}

// TestWriteInvalidatesDependentEntries: inserting into a base table the
// cached spool reads bumps that table's version, so the next batch rejects
// the stale entry and recomputes from the new data.
func TestWriteInvalidatesDependentEntries(t *testing.T) {
	db := openCached(t, withCSE(), 0)
	if _, err := db.Run(example1SQL); err != nil {
		t.Fatal(err)
	}
	if e := db.ResultCache().Stats().Entries; e != 1 {
		t.Fatalf("entries after cold run = %d, want 1", e)
	}

	newRows := []csedb.Row{{
		sqltypes.NewInt(1), sqltypes.NewInt(1), sqltypes.NewInt(1), sqltypes.NewInt(99),
		sqltypes.NewFloat(5), sqltypes.NewFloat(70000), sqltypes.NewFloat(0), sqltypes.NewFloat(0),
		sqltypes.NewString("N"), sqltypes.MustParseDate("1995-06-01"), sqltypes.NewString("MAIL"),
	}}
	if err := db.Insert("lineitem", newRows); err != nil {
		t.Fatal(err)
	}

	after, err := db.Run(example1SQL)
	if err != nil {
		t.Fatal(err)
	}
	if got := after.ExecStats.CacheHits(); got != 0 {
		t.Errorf("run after write served %d spools from a stale cache", got)
	}
	s := db.ResultCache().Stats()
	if s.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", s.Invalidations)
	}

	// The post-write results must match a fresh, uncached, no-CSE database
	// holding the same data.
	ref := openTPCH(t, noCSE())
	if err := ref.Insert("lineitem", newRows); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run(example1SQL)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, want, after)

	// The recomputed entry is fresh again: one more run hits.
	again, err := db.Run(example1SQL)
	if err != nil {
		t.Fatal(err)
	}
	if got := again.ExecStats.CacheHits(); got != 1 {
		t.Errorf("re-run after recompute cache hits = %d, want 1", got)
	}
}

// TestCacheDisabled: CacheBudget < 0 turns the cache off entirely.
func TestCacheDisabled(t *testing.T) {
	db := openCached(t, withCSE(), -1)
	if db.ResultCache() != nil {
		t.Fatal("ResultCache non-nil with CacheBudget -1")
	}
	for i := 0; i < 2; i++ {
		res, err := db.Run(example1SQL)
		if err != nil {
			t.Fatal(err)
		}
		if res.ExecStats.CacheHits() != 0 {
			t.Fatalf("run %d reported cache hits with the cache disabled", i)
		}
	}
}

// TestSetCacheBudgetToggle: the shell's \cache on|off path — disabling
// drops the cache, re-enabling starts cold.
func TestSetCacheBudgetToggle(t *testing.T) {
	db := openCached(t, withCSE(), 0)
	if _, err := db.Run(example1SQL); err != nil {
		t.Fatal(err)
	}
	db.SetCacheBudget(-1)
	if db.ResultCache() != nil {
		t.Fatal("cache still present after SetCacheBudget(-1)")
	}
	res, err := db.Run(example1SQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecStats.CacheHits() != 0 {
		t.Fatal("cache hit while disabled")
	}
	db.SetCacheBudget(0)
	if db.ResultCache() == nil {
		t.Fatal("cache absent after SetCacheBudget(0)")
	}
	if _, err := db.Run(example1SQL); err != nil {
		t.Fatal(err)
	}
	res, err = db.Run(example1SQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecStats.CacheHits() != 1 {
		t.Fatalf("cache hits after re-enable = %d, want 1", res.ExecStats.CacheHits())
	}
}

// TestCacheConcurrentStress exercises the cache under -race: parallel
// batches hitting the same entry, a writer bumping source-table versions
// mid-flight (invalidation racing materialization), and a second database
// with a budget too small for any entry (constant admit/reject churn).
// Every batch's results must byte-match the uncached sequential executor.
func TestCacheConcurrentStress(t *testing.T) {
	seq := csedb.Open(csedb.Options{CSE: noCSE(), CacheBudget: -1, ExecParallelism: 1})
	if err := seq.LoadTPCH(0.01, 42); err != nil {
		t.Fatal(err)
	}
	want, err := seq.Run(example1SQL)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name   string
		budget int64
	}{
		{"default_budget", 0},
		{"tiny_budget", 64}, // smaller than any spool: every admit rejects
	} {
		t.Run(tc.name, func(t *testing.T) {
			db := openCached(t, withCSE(), tc.budget)
			const readers = 6
			var wg sync.WaitGroup
			errc := make(chan error, readers)
			results := make([]*csedb.BatchResult, readers)
			for w := 0; w < readers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 4; i++ {
						res, err := db.Run(example1SQL)
						if err != nil {
							errc <- fmt.Errorf("reader %d run %d: %w", w, i, err)
							return
						}
						results[w] = res
					}
				}(w)
			}
			// Version-bumping writer: Touch changes no rows, so results stay
			// comparable, but every bump invalidates the cached entry — some
			// bumps land between a reader's version snapshot and its Admit,
			// leaving a stale-keyed entry the next Lookup must reject.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 40; i++ {
					db.Store().Touch("lineitem")
				}
			}()
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Fatal(err)
			}
			for w, res := range results {
				if res == nil {
					continue // reader failed; reported above
				}
				t.Run(fmt.Sprintf("reader%d", w), func(t *testing.T) {
					compareResults(t, want, res)
				})
			}
			s := db.ResultCache().Stats()
			if s.Hits+s.Misses == 0 {
				t.Error("no cache lookups recorded under stress")
			}
			if tc.budget == 64 && s.Entries != 0 {
				t.Errorf("tiny budget admitted %d entries", s.Entries)
			}
		})
	}
}
