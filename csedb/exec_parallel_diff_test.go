package csedb_test

import (
	"runtime"
	"sort"
	"strings"
	"testing"

	"repro/csedb"
	"repro/internal/bench"
	"repro/internal/sqltypes"
)

// openTPCHOpts opens a TPC-H sf 0.01 database with full execution options
// (openTPCH only controls optimizer settings).
func openTPCHOpts(t testing.TB, opts csedb.Options) *csedb.DB {
	t.Helper()
	db := csedb.Open(opts)
	if err := db.LoadTPCH(0.01, 42); err != nil {
		t.Fatal(err)
	}
	return db
}

// exactRows renders rows losslessly (Datum.String round-trips floats), so
// equality here is byte-identity including row order.
func exactRows(rows []sqltypes.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, d := range r {
			parts[j] = d.String()
		}
		out[i] = strings.Join(parts, "\t")
	}
	return out
}

// TestParallelExecutorByteIdentical is the chunked executor's differential
// property test: for the TPC-H query suite and the spool-heavy benchmark
// batches, the morsel-parallel executor must produce byte-identical results
// to the sequential reference — same rows, same order, same float bits — at
// any chunk size, with every spool materialized exactly once. Exact
// aggregate summation is what makes float results independent of the input
// partitioning.
func TestParallelExecutorByteIdentical(t *testing.T) {
	// The executor clamps intra-operator parallelism to GOMAXPROCS; raise it
	// so the morsel machinery engages even on single-CPU runners.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	queries := map[string]string{
		"batch-table1": bench.Table1SQL(),
		"batch-table2": bench.Table2SQL(),
		"batch-table4": bench.Table4SQL(),
	}
	for name, sql := range tpchLike {
		queries[name] = sql
	}
	names := make([]string, 0, len(queries))
	for name := range queries {
		names = append(names, name)
	}
	sort.Strings(names)

	variants := []struct {
		name      string
		chunkSize int
	}{
		{"workers8-chunk1024", 1024},
		{"workers8-chunk1", 1}, // maximal morsel interleave
	}

	for _, name := range names {
		sql := queries[name]
		t.Run(name, func(t *testing.T) {
			ref := openTPCHOpts(t, csedb.Options{CSE: withCSE(), ExecParallelism: 1, CacheBudget: -1})
			want, err := ref.Run(sql)
			if err != nil {
				t.Fatalf("sequential reference run: %v", err)
			}
			for _, v := range variants {
				v := v
				t.Run(v.name, func(t *testing.T) {
					db := openTPCHOpts(t, csedb.Options{
						CSE:             withCSE(),
						ExecParallelism: 8,
						ExecChunkSize:   v.chunkSize,
						CacheBudget:     -1,
					})
					got, err := db.Run(sql)
					if err != nil {
						t.Fatalf("parallel run: %v", err)
					}
					if len(got.Statements) != len(want.Statements) {
						t.Fatalf("statement counts differ: %d vs %d", len(got.Statements), len(want.Statements))
					}
					for i := range want.Statements {
						ws, gs := want.Statements[i], got.Statements[i]
						if strings.Join(gs.Names, ",") != strings.Join(ws.Names, ",") {
							t.Errorf("statement %d column names differ: %v vs %v", i+1, gs.Names, ws.Names)
						}
						wr, gr := exactRows(ws.Rows), exactRows(gs.Rows)
						if len(gr) != len(wr) {
							t.Errorf("statement %d: %d rows, want %d", i+1, len(gr), len(wr))
							continue
						}
						for j := range wr {
							if gr[j] != wr[j] {
								t.Errorf("statement %d row %d not byte-identical:\n  parallel:   %s\n  sequential: %s",
									i+1, j, gr[j], wr[j])
								break
							}
						}
					}
					es := got.ExecStats
					if es.FallbackReason == "" {
						for id, runs := range es.SpoolRuns {
							if runs != 1 {
								t.Errorf("CSE %d materialized %d times, want exactly once", id, runs)
							}
						}
						if v.chunkSize == 1 && es.Morsels == 0 {
							t.Error("chunk size 1 run dispatched no morsels — intra-op parallelism never engaged")
						}
					}
				})
			}
		})
	}
}

// TestExplainAnalyzeReportsParallelism checks the observability surface: a
// parallel EXPLAIN ANALYZE annotates morsel-parallel operators with their
// achieved degree and reports batch-wide morsel totals in the footer.
func TestExplainAnalyzeReportsParallelism(t *testing.T) {
	// See TestParallelExecutorByteIdentical: intra-op degree is clamped to
	// GOMAXPROCS, so par= annotations need more than one schedulable CPU.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	db := openTPCHOpts(t, csedb.Options{CSE: withCSE(), ExecParallelism: 8, ExecChunkSize: 256, CacheBudget: -1})
	out, err := db.ExplainAnalyze(tpchLike["q6"])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, " par=") {
		t.Errorf("EXPLAIN ANALYZE missing per-operator par= annotation:\n%s", out)
	}
	if !strings.Contains(out, "morsels=") || !strings.Contains(out, "parallel-ops=") {
		t.Errorf("EXPLAIN ANALYZE footer missing morsel totals:\n%s", out)
	}

	seq := openTPCHOpts(t, csedb.Options{CSE: withCSE(), ExecParallelism: 1, CacheBudget: -1})
	out, err = seq.ExplainAnalyze(tpchLike["q6"])
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, " par=") {
		t.Errorf("sequential EXPLAIN ANALYZE must not report par=:\n%s", out)
	}
}
