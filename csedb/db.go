// Package csedb is the public API of the engine: an in-memory SQL database
// with a transformation-based optimizer that detects and exploits similar
// subexpressions (covering subexpressions, CSEs) across a query batch,
// within nested queries, and during materialized-view maintenance —
// reproducing Zhou, Larson, Freytag & Lehner, "Efficient Exploitation of
// Similar Subexpressions for Query Processing" (SIGMOD 2007).
//
// Basic usage:
//
//	db := csedb.Open(csedb.Options{})
//	if err := db.LoadTPCH(0.01, 1); err != nil { ... }
//	res, err := db.Run("select ...; select ...;")
//
// A batch of statements separated by semicolons is optimized as one unit, so
// similar subexpressions among the statements are computed once and reused.
package csedb

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/logical"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/parser"
	"repro/internal/sqltypes"
	"repro/internal/storage"
	"repro/internal/tpch"
	"repro/internal/views"
)

// Options configures a database.
type Options struct {
	// CSE configures the covering-subexpression phase; the zero value means
	// core.DefaultSettings() (CSE on, heuristics on).
	CSE *core.Settings

	// SearchStrategy, when non-empty, overrides the CSE settings' subset
	// search strategy (core.SearchAuto, core.SearchLattice, or
	// core.SearchGreedy) — a convenience for callers that take the default
	// settings but want to pick the MQO search.
	SearchStrategy core.SearchStrategy

	// ExecParallelism sets the executor worker-pool size: 0 (the default)
	// means parallel execution on with runtime.GOMAXPROCS(0) workers; 1
	// forces the sequential executor (a determinism-debugging fallback);
	// n > 1 uses n workers. The same pool budget governs both batch-level
	// scheduling (spool waves, concurrent statements) and intra-operator
	// morsel parallelism.
	ExecParallelism int

	// ExecChunkSize sets the executor's morsel granularity in rows; 0 (the
	// default) means exec.DefaultChunkSize. Exposed for testing — results
	// are byte-identical for any chunk size.
	ExecChunkSize int

	// Tracing records a structured optimizer decision trace on every batch
	// (BatchResult.Trace / core.Output.Trace). Off by default: the untraced
	// optimizer path carries no trace hooks.
	Tracing bool

	// CacheBudget configures the cross-batch spool result cache's byte
	// budget: 0 (the default) enables it at cache.DefaultBudget, a positive
	// value enables it at that budget, and a negative value disables the
	// cache entirely.
	CacheBudget int64

	// SpanTracing records a span tree on every batch: parse, optimization
	// phases (candidate formation with H1–H4 prune counts, subset
	// reoptimization), spool waves, per-spool materialization with cache
	// outcomes and wait times, and per-statement execution. The tree is
	// returned on BatchResult.Spans, retained by the flight recorder, and
	// exportable in Chrome trace-event format. Off by default: the untraced
	// path pays one nil check per span site.
	SpanTracing bool

	// FlightRecorderSize is the number of recent batch records the flight
	// recorder retains; 0 means obs.DefaultFlightCapacity.
	FlightRecorderSize int

	// SlowBatchThreshold is the wall-time above which a batch is also kept
	// in the flight recorder's slow-batch log; 0 means
	// obs.DefaultSlowThreshold.
	SlowBatchThreshold time.Duration

	// DebugAddr, when non-empty, starts the debug HTTP server on that
	// address at Open (e.g. "127.0.0.1:6060"; ":0" picks a free port). The
	// server exposes /metrics, /debug/pprof/*, /flightrecorder, /cache, and
	// /trace/last. A failure to listen is reported by DebugServerError. The
	// server can also be started and stopped at runtime with
	// StartDebugServer / StopDebugServer (the shell's \debug command).
	DebugAddr string

	// DisableColPlane forces the row-at-a-time execution path, disabling
	// the columnar data plane (typed column chunks plus selection-vector
	// kernels). The row path is the engine's differential oracle; this knob
	// exists for debugging and for row-vs-column benchmarking (the shell's
	// \colplane command and csebench -exp scanspeed).
	DisableColPlane bool
}

// DB is an in-memory database instance. Read-only queries (Run on SELECT
// batches, Optimize, Explain) are safe to call concurrently: every call
// builds its own metadata, memo, optimizer, and execution context, and the
// row store takes a read lock. DDL (CreateTable, CREATE MATERIALIZED VIEW)
// and mutations (Insert, InsertWithViewMaintenance) must be serialized by
// the caller and must not overlap reads.
type DB struct {
	cat         *catalog.Catalog
	store       *storage.Store
	settings    core.Settings
	views       *views.Manager
	deltaSeq    int
	parallelism int
	chunkSize   int
	noColPlane  bool
	tracing     bool
	spanTracing bool
	metrics     *obs.Registry
	cache       *cache.Cache
	flight      *obs.FlightRecorder

	debugMu  sync.Mutex
	debug    *debugServer
	debugErr error
}

// Row re-exports the value tuple type for insertion APIs.
type Row = sqltypes.Row

// Open returns an empty database.
func Open(opts Options) *DB {
	settings := core.DefaultSettings()
	if opts.CSE != nil {
		settings = *opts.CSE
	}
	if opts.SearchStrategy != "" {
		settings.SearchStrategy = opts.SearchStrategy
	}
	db := &DB{
		cat:         catalog.New(),
		store:       storage.NewStore(),
		settings:    settings,
		views:       views.NewManager(),
		parallelism: opts.ExecParallelism,
		chunkSize:   opts.ExecChunkSize,
		noColPlane:  opts.DisableColPlane,
		tracing:     opts.Tracing,
		spanTracing: opts.SpanTracing,
		metrics:     obs.NewRegistry(),
		flight:      obs.NewFlightRecorder(opts.FlightRecorderSize, opts.SlowBatchThreshold),
	}
	if opts.CacheBudget >= 0 {
		db.cache = cache.New(opts.CacheBudget, db.metrics)
	}
	if opts.DebugAddr != "" {
		if _, err := db.StartDebugServer(opts.DebugAddr); err != nil {
			db.debugErr = err
		}
	}
	return db
}

// Settings returns the current CSE settings.
func (db *DB) Settings() core.Settings { return db.settings }

// SetSettings replaces the CSE settings.
func (db *DB) SetSettings(s core.Settings) { db.settings = s }

// SearchStrategy returns the MQO subset-search strategy in force.
func (db *DB) SearchStrategy() core.SearchStrategy {
	if s := db.settings.SearchStrategy; s != "" {
		return s
	}
	return core.SearchAuto
}

// SetSearchStrategy changes the MQO subset-search strategy for subsequent
// batches.
func (db *DB) SetSearchStrategy(s core.SearchStrategy) { db.settings.SearchStrategy = s }

// ExecParallelism returns the executor worker-pool setting (0 = default
// parallel, 1 = sequential, n > 1 = n workers).
func (db *DB) ExecParallelism() int { return db.parallelism }

// SetExecParallelism changes the executor worker-pool setting for
// subsequent batches.
func (db *DB) SetExecParallelism(n int) { db.parallelism = n }

// ColPlane reports whether the columnar data plane is in force (the
// default). When false, batches run the row-at-a-time reference path.
func (db *DB) ColPlane() bool { return !db.noColPlane }

// SetColPlane toggles the columnar data plane for subsequent batches.
// Turning it off forces the row-at-a-time path — the differential oracle —
// which is useful for isolating kernel bugs and for row-vs-column timing.
func (db *DB) SetColPlane(on bool) { db.noColPlane = !on }

// ExecChunkSize returns the executor morsel granularity (0 = default).
func (db *DB) ExecChunkSize() int { return db.chunkSize }

// SetExecChunkSize changes the executor morsel granularity for subsequent
// batches; 0 restores exec.DefaultChunkSize.
func (db *DB) SetExecChunkSize(rows int) { db.chunkSize = rows }

// Tracing reports whether optimizer decision tracing is on.
func (db *DB) Tracing() bool { return db.tracing }

// SetTracing toggles optimizer decision tracing for subsequent batches.
func (db *DB) SetTracing(on bool) { db.tracing = on }

// SpanTracing reports whether per-batch span tracing is on.
func (db *DB) SpanTracing() bool { return db.spanTracing }

// SetSpanTracing toggles per-batch span tracing for subsequent batches.
func (db *DB) SetSpanTracing(on bool) { db.spanTracing = on }

// Metrics exposes the database's metrics registry. It is always collecting
// (a handful of atomic updates per batch); render it with Dump or Snapshot.
func (db *DB) Metrics() *obs.Registry { return db.metrics }

// FlightRecorder exposes the bounded in-memory record of recent batches. It
// is always on; span trees appear on its records only while span tracing is
// enabled.
func (db *DB) FlightRecorder() *obs.FlightRecorder { return db.flight }

// ResultCache exposes the cross-batch spool result cache; nil when disabled.
func (db *DB) ResultCache() *cache.Cache { return db.cache }

// SetCacheBudget reconfigures the result cache for subsequent batches: a
// negative budget disables it (dropping all entries), 0 enables it at the
// default budget, and a positive value enables it at that byte budget. When
// the cache is already on, its budget is adjusted in place (evicting as
// needed) so existing entries survive.
func (db *DB) SetCacheBudget(budget int64) {
	if budget < 0 {
		db.cache = nil
		return
	}
	if db.cache == nil {
		db.cache = cache.New(budget, db.metrics)
		return
	}
	db.cache.SetBudget(budget)
}

// Catalog exposes the schema catalog (read-only use expected).
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// Store exposes the row store (read-only use expected).
func (db *DB) Store() *storage.Store { return db.store }

// LoadTPCH generates the TPC-H-shaped benchmark database at the given scale
// factor with a deterministic seed.
func (db *DB) LoadTPCH(scaleFactor float64, seed int64) error {
	for _, tab := range tpch.Schemas() {
		if err := db.cat.Add(tab); err != nil {
			return err
		}
	}
	return tpch.Generate(tpch.Config{ScaleFactor: scaleFactor, Seed: seed}, db.cat, db.store)
}

// CreateTable registers an empty table.
func (db *DB) CreateTable(name string, cols []catalog.Column) error {
	ctab := &catalog.Table{Name: name, Cols: cols}
	if err := db.cat.Add(ctab); err != nil {
		return err
	}
	// Analyze even the empty table so per-column stats start at their
	// floors instead of zero values that skew selectivity math.
	storage.AnalyzeTable(ctab, db.store.Create(name))
	return nil
}

// Insert appends rows to a table and refreshes its statistics. It does not
// maintain materialized views; use InsertWithViewMaintenance for that.
func (db *DB) Insert(table string, rows []Row) error {
	ctab, err := db.cat.Table(table)
	if err != nil {
		return err
	}
	if err := db.checkRows(ctab, rows); err != nil {
		return err
	}
	if err := db.store.Insert(table, rows); err != nil {
		return err
	}
	// Appended rows void any physical ordering guarantee.
	ctab.OrderedBy = nil
	stab, err := db.store.Table(table)
	if err != nil {
		return err
	}
	storage.AnalyzeTable(ctab, stab)
	return nil
}

func (db *DB) checkRows(ctab *catalog.Table, rows []Row) error {
	for i, r := range rows {
		if len(r) != len(ctab.Cols) {
			return fmt.Errorf("row %d has %d values, table %s has %d columns", i, len(r), ctab.Name, len(ctab.Cols))
		}
	}
	return nil
}

// BatchResult is the outcome of running a statement batch.
type BatchResult struct {
	// Statements holds per-statement output (empty Rows for DDL).
	Statements []*exec.StatementResult

	// Stats reports what the CSE phase did.
	Stats core.Stats

	// OptimizeTime and ExecTime are wall-clock measurements.
	OptimizeTime time.Duration
	ExecTime     time.Duration

	// EstimatedCost is the chosen plan's cost in optimizer units.
	EstimatedCost float64

	// SpoolRows reports, per CSE id, the number of rows materialized into
	// its work table; every CSE is computed exactly once per batch.
	SpoolRows map[int]int

	// ExecStats carries the executor's detailed instrumentation: per-spool
	// wall time, per-statement time, the topological spool schedule, and
	// worker utilization.
	ExecStats *exec.Stats

	// Explain is the physical plan rendering.
	Explain string

	// Trace is the optimizer decision trace; nil unless tracing is on.
	Trace *obs.Trace

	// Spans is the batch's span forest (rooted at the "batch" span); nil
	// unless span tracing is on. Render it with obs.ChromeTrace for
	// chrome://tracing.
	Spans []*obs.SpanNode
}

// Run parses, optimizes, and executes a batch of statements. Queries in the
// batch are optimized together; CREATE MATERIALIZED VIEW statements execute
// their defining query and materialize the result.
func (db *DB) Run(sql string) (*BatchResult, error) {
	return db.RunContext(context.Background(), sql)
}

// RunContext is Run with a cancellation context: cancelling it stops the
// executor (including all parallel workers) with the context's error.
func (db *DB) RunContext(ctx context.Context, sql string) (*BatchResult, error) {
	batchStart := time.Now()
	rec := db.newSpanRecorder()
	root := rec.StartSpan("batch")
	ps := root.Child("parse")
	stmts, err := parser.Parse(sql)
	if err != nil {
		ps.End()
		db.recordFailure(rec, root, batchStart, err)
		return nil, err
	}
	ps.SetAttr("statements", len(stmts))
	ps.End()
	return db.runObserved(ctx, stmts, rec, root, batchStart)
}

// Optimize parses and optimizes a batch without executing it. It returns
// the optimizer output and the bound metadata for plan inspection.
func (db *DB) Optimize(sql string) (*core.Output, *logical.Metadata, error) {
	stmts, err := parser.Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	batch, err := logical.BuildBatch(stmts, db.cat)
	if err != nil {
		return nil, nil, err
	}
	m, err := memo.Build(batch)
	if err != nil {
		return nil, nil, err
	}
	out, err := core.OptimizeTraced(m, db.settings, db.newTrace())
	if err != nil {
		return nil, nil, err
	}
	return out, batch.Metadata, nil
}

// newTrace returns a fresh trace when tracing is on, else nil (which
// disables every trace hook in the optimizer).
func (db *DB) newTrace() *obs.Trace {
	if !db.tracing {
		return nil
	}
	return obs.NewTrace()
}

// newSpanRecorder returns a fresh span recorder when span tracing is on, else
// nil (which disables every span hook down the whole stack).
func (db *DB) newSpanRecorder() *obs.SpanRecorder {
	if !db.spanTracing {
		return nil
	}
	return obs.NewSpanRecorder()
}

// recordFailure closes out a batch that died before execution finished: the
// error lands on the root span, unfinished spans are closed and tagged, and
// the flight recorder still gets a record — failed batches are exactly the
// ones a post-hoc investigation wants to see.
func (db *DB) recordFailure(rec *obs.SpanRecorder, root *obs.Span, batchStart time.Time, err error) {
	root.SetAttr("error", err.Error())
	rec.Finish()
	var spans []*obs.SpanNode
	if rec.Enabled() {
		spans = rec.Tree()
	}
	db.flight.Record(&obs.BatchRecord{
		Start: batchStart,
		Wall:  time.Since(batchStart),
		Err:   err.Error(),
		Spans: spans,
	})
}

// Explain returns the physical plan for a batch, including any CSE plans.
func (db *DB) Explain(sql string) (string, error) {
	out, md, err := db.Optimize(sql)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	if len(out.Stats.CandidateLabels) > 0 {
		fmt.Fprintf(&sb, "CSE candidates considered: %d [%d reoptimizations]\n",
			out.Stats.Candidates, out.Stats.CSEOptimizations)
		for i, l := range out.Stats.CandidateLabels {
			fmt.Fprintf(&sb, "  E%d: %s\n", i+1, l)
		}
	}
	sb.WriteString(out.Result.Format(md))
	return sb.String(), nil
}

// runStatements runs a pre-parsed batch (view maintenance enters here); it
// starts its own span recorder, so the tree simply lacks a parse child.
func (db *DB) runStatements(ctx context.Context, stmts []parser.Statement) (*BatchResult, error) {
	rec := db.newSpanRecorder()
	return db.runObserved(ctx, stmts, rec, rec.StartSpan("batch"), time.Now())
}

func (db *DB) runObserved(ctx context.Context, stmts []parser.Statement, rec *obs.SpanRecorder, root *obs.Span, batchStart time.Time) (*BatchResult, error) {
	root.SetAttr("statements", len(stmts))
	batch, err := logical.BuildBatch(stmts, db.cat)
	if err != nil {
		db.recordFailure(rec, root, batchStart, err)
		return nil, err
	}

	start := time.Now()
	optSpan := root.Child("optimize")
	m, err := memo.Build(batch)
	if err != nil {
		optSpan.End()
		db.recordFailure(rec, root, batchStart, err)
		return nil, err
	}
	out, err := core.OptimizeObserved(m, db.settings, db.newTrace(), optSpan)
	optSpan.End()
	if err != nil {
		db.recordFailure(rec, root, batchStart, err)
		return nil, err
	}
	optTime := time.Since(start)

	start = time.Now()
	execSpan := root.Child("execute")
	results, execStats, err := exec.RunWithOptions(ctx, out.Result, batch.Metadata, db.store,
		exec.Options{Parallelism: db.parallelism, ChunkSize: db.chunkSize, Cache: db.cache, Span: execSpan, NoColPlane: db.noColPlane})
	if err != nil {
		execSpan.End()
		db.recordFailure(rec, root, batchStart, err)
		return nil, err
	}
	execSpan.SetAttr("spools", len(execStats.SpoolRows))
	execSpan.SetAttr("spools_cached", execStats.CacheHits())
	execSpan.End()
	execTime := time.Since(start)
	db.recordMetrics(len(results), &out.Stats, execStats, optTime, execTime)
	db.traceCacheEvents(out.Trace, out.Result, execStats)

	// Materialize any views defined by the batch.
	for i, st := range batch.Statements {
		if st.ViewName == "" {
			continue
		}
		if err := db.materializeView(st, stmts[i], batch.Metadata, results[i]); err != nil {
			db.recordFailure(rec, root, batchStart, err)
			return nil, err
		}
	}

	rows := 0
	for _, r := range results {
		rows += len(r.Rows)
	}
	root.SetAttr("rows", rows)
	root.End()
	rec.Finish()
	var spans []*obs.SpanNode
	if rec.Enabled() {
		spans = rec.Tree()
	}
	db.flight.Record(&obs.BatchRecord{
		Start:              batchStart,
		Wall:               time.Since(batchStart),
		Optimize:           optTime,
		Exec:               execTime,
		Statements:         len(results),
		Rows:               rows,
		Candidates:         out.Stats.Candidates,
		UsedCSEs:           len(out.Stats.UsedCSEs),
		SpoolsMaterialized: len(execStats.SpoolRows) - execStats.CacheHits(),
		SpoolsCached:       execStats.CacheHits(),
		Spans:              spans,
	})

	return &BatchResult{
		Statements:    results,
		Stats:         out.Stats,
		OptimizeTime:  optTime,
		ExecTime:      execTime,
		EstimatedCost: out.Result.Cost,
		SpoolRows:     execStats.SpoolRows,
		ExecStats:     execStats,
		Explain:       out.Result.Format(batch.Metadata),
		Trace:         out.Trace,
		Spans:         spans,
	}, nil
}

// recordMetrics updates the registry after one executed batch.
func (db *DB) recordMetrics(nStatements int, stats *core.Stats, es *exec.Stats, optTime, execTime time.Duration) {
	r := db.metrics
	r.Counter("csedb_batches_total").Inc()
	r.Counter("csedb_statements_total").Add(int64(nStatements))
	r.Counter("cse_candidates_total").Add(int64(stats.Candidates))
	r.Counter("cse_used_total").Add(int64(len(stats.UsedCSEs)))
	r.Counter("cse_reoptimizations_total").Add(int64(stats.CSEOptimizations))
	r.Counter("cse_pruned_h1_total").Add(int64(stats.PrunedH1))
	r.Counter("cse_pruned_h2_total").Add(int64(stats.PrunedH2))
	r.Counter("cse_pruned_h3_total").Add(int64(stats.PrunedH3))
	r.Counter("cse_pruned_h4_total").Add(int64(stats.PrunedH4))
	for _, rows := range es.SpoolRows {
		r.Counter("spool_rows_total").Add(int64(rows))
	}
	r.Counter("exec_waves_total").Add(int64(len(es.Waves)))
	r.Counter("exec_morsels_total").Add(int64(es.Morsels))
	r.Counter("exec_parallel_ops_total").Add(int64(es.ParallelOps))
	if es.FallbackReason != "" {
		r.Counter("exec_sequential_fallbacks_total").Inc()
	}
	r.Counter("exec_spools_cached_total").Add(int64(es.CacheHits()))
	r.Counter("exec_col_selections_total").Add(int64(es.ColSelections))
	r.Counter("exec_col_hash_passes_total").Add(int64(es.ColHashPasses))
	r.Gauge("exec_worker_utilization").Set(es.Utilization())
	// The prepared-execution path passes optTime 0 (the plan was optimized
	// once, elsewhere); recording those zeros would skew the histogram.
	if optTime > 0 {
		r.Histogram("optimize_seconds").Observe(optTime.Seconds())
	}
	r.Histogram("exec_seconds").Observe(execTime.Seconds())
	for id, d := range es.SpoolTimes {
		if !es.SpoolCached[id] {
			r.HistogramWith("spool_materialize_seconds", spoolMaterializeBounds).Observe(d.Seconds())
		}
	}
}

// spoolMaterializeBounds buckets spool materialization times: sub-millisecond
// spools dominate the test workloads, so the default seconds-scale buckets
// would be useless on the left end.
var spoolMaterializeBounds = []float64{1e-5, 1e-4, 1e-3, 0.01, 0.1, 0.5, 1, 5}

// traceCacheEvents appends one EvCache event per executed spool to the
// batch's optimizer trace, recording whether the cross-batch result cache
// served it. No-op when tracing is off or the cache is disabled.
func (db *DB) traceCacheEvents(tr *obs.Trace, res *opt.Result, es *exec.Stats) {
	if tr == nil || db.cache == nil {
		return
	}
	ids := make([]int, 0, len(es.SpoolRows))
	for id := range es.SpoolRows {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		outcome := "miss"
		if es.SpoolCached[id] {
			outcome = "hit"
		}
		label := fmt.Sprintf("CSE%d", id)
		if c := res.CSEs[id]; c != nil && c.SpecKey == "" {
			outcome = "uncacheable"
		}
		tr.Add(obs.Event{
			Kind:   obs.EvCache,
			Label:  label,
			Reason: outcome,
			Values: map[string]float64{"rows": float64(es.SpoolRows[id])},
		})
	}
}

func (db *DB) materializeView(st *logical.Statement, astStmt parser.Statement, md *logical.Metadata, res *exec.StatementResult) error {
	cv, ok := astStmt.(*parser.CreateViewStmt)
	if !ok {
		return fmt.Errorf("statement for view %s is not CREATE MATERIALIZED VIEW", st.ViewName)
	}
	view, backing, err := views.Define(st.ViewName, cv.Select, st.Block, md)
	if err != nil {
		return err
	}
	if err := db.cat.Add(backing); err != nil {
		return err
	}
	vt := db.store.Create(backing.Name)
	for _, r := range res.Rows {
		vt.Append(r)
	}
	storage.AnalyzeTable(backing, vt)
	db.views.Add(view)
	return nil
}

// MaintenanceResult reports a view-maintenance run (§6.4).
type MaintenanceResult struct {
	// ViewsMaintained lists the affected materialized views.
	ViewsMaintained []string

	Stats         core.Stats
	OptimizeTime  time.Duration
	ExecTime      time.Duration
	EstimatedCost float64
}

// InsertWithViewMaintenance appends rows to a base table and maintains every
// materialized view referencing it: the inserted rows become a delta table,
// one maintenance query per affected view is generated, and the whole batch
// is optimized together — so similar subexpressions among the maintenance
// expressions are detected and shared exactly like a user query batch.
func (db *DB) InsertWithViewMaintenance(table string, rows []Row) (*MaintenanceResult, error) {
	ctab, err := db.cat.Table(table)
	if err != nil {
		return nil, err
	}
	if err := db.checkRows(ctab, rows); err != nil {
		return nil, err
	}
	affected := db.views.Affected(table)

	// Register the delta work table; the optimizer treats it as a regular
	// (small) table whose name is shared by every maintenance expression,
	// which is what makes their signatures match.
	db.deltaSeq++
	deltaName := fmt.Sprintf("delta_%s_%d", strings.ToLower(table), db.deltaSeq)
	delta := &catalog.Table{Name: deltaName, Cols: append([]catalog.Column(nil), ctab.Cols...)}
	if err := db.cat.Add(delta); err != nil {
		return nil, err
	}
	dt := db.store.Create(deltaName)
	for _, r := range rows {
		dt.Append(r)
	}
	storage.AnalyzeTable(delta, dt)
	defer func() {
		db.store.Drop(deltaName)
		_ = db.cat.Drop(deltaName)
	}()

	// Apply the base-table insert itself.
	if err := db.store.Insert(table, rows); err != nil {
		return nil, err
	}
	ctab.OrderedBy = nil
	stab, err := db.store.Table(table)
	if err != nil {
		return nil, err
	}
	storage.AnalyzeTable(ctab, stab)

	out := &MaintenanceResult{}
	if len(affected) == 0 {
		return out, nil
	}

	stmts := make([]parser.Statement, len(affected))
	for i, v := range affected {
		stmts[i] = v.MaintenanceStmt(table, deltaName)
		out.ViewsMaintained = append(out.ViewsMaintained, v.Name)
	}
	res, err := db.runStatements(context.Background(), stmts)
	if err != nil {
		return nil, fmt.Errorf("maintaining views: %w", err)
	}
	out.Stats = res.Stats
	out.OptimizeTime = res.OptimizeTime
	out.ExecTime = res.ExecTime
	out.EstimatedCost = res.EstimatedCost

	start := time.Now()
	for i, v := range affected {
		if err := db.applyDelta(v, res.Statements[i].Rows); err != nil {
			return nil, err
		}
	}
	out.ExecTime += time.Since(start)
	return out, nil
}

// applyDelta merges a view's delta result into its backing table.
func (db *DB) applyDelta(v *views.View, deltaRows []Row) error {
	backing, err := db.cat.Table(v.BackingName())
	if err != nil {
		return err
	}
	vt, err := db.store.Table(v.BackingName())
	if err != nil {
		return err
	}
	if err := v.Merge(vt, deltaRows); err != nil {
		return err
	}
	// Merge mutates the backing table in place, bypassing Store.Insert, so
	// bump its version by hand to invalidate cached results that read it.
	db.store.Touch(v.BackingName())
	storage.AnalyzeTable(backing, vt)
	return nil
}

// QueryView reads a materialized view's current contents.
func (db *DB) QueryView(name string) ([]Row, error) {
	v := db.views.ByName(name)
	if v == nil {
		return nil, fmt.Errorf("materialized view %q does not exist", name)
	}
	vt, err := db.store.Table(v.BackingName())
	if err != nil {
		return nil, err
	}
	out := make([]Row, len(vt.Rows))
	for i, r := range vt.Rows {
		out[i] = r.Clone()
	}
	return out, nil
}
