package csedb_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/csedb"
	"repro/internal/bench"
	"repro/internal/obs"
)

// TestSpanTracing: a span-traced batch yields a tree covering every pipeline
// phase — parse, the optimizer's candidate formation and subset
// reoptimization, spool materialization with cache outcomes, and statement
// execution — and the tree exports as a loadable Chrome trace.
func TestSpanTracing(t *testing.T) {
	db := openTPCHOpts(t, csedb.Options{SpanTracing: true})
	res, err := db.Run(bench.Table2SQL())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Spans) != 1 || res.Spans[0].Name != "batch" {
		t.Fatalf("Spans roots = %+v, want one batch root", res.Spans)
	}
	for _, phase := range []string{
		"parse", "optimize", "optimize-base", "candidates",
		"subset-reoptimization", "execute", "spool", "statement",
	} {
		if obs.Find(res.Spans, phase) == nil {
			t.Errorf("span tree missing phase %q", phase)
		}
	}
	spool := obs.Find(res.Spans, "spool")
	if spool.Attrs["cache"] != "miss" {
		t.Errorf("first-run spool cache attr = %v, want miss", spool.Attrs["cache"])
	}
	if _, ok := spool.Attrs["rows"]; !ok {
		t.Error("spool span has no rows attr")
	}
	cand := obs.Find(res.Spans, "candidates")
	if cand.Attrs["candidates"] == nil || cand.Attrs["pruned_h4"] == nil {
		t.Errorf("candidates span attrs = %v, want candidate and prune counts", cand.Attrs)
	}
	unfinished := 0
	obs.Walk(res.Spans, func(n *obs.SpanNode) {
		if n.Attrs["unfinished"] == true {
			unfinished++
		}
	})
	if unfinished != 0 {
		t.Errorf("%d spans left unfinished on a successful batch", unfinished)
	}
	data, err := obs.ChromeTrace(res.Spans)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("Chrome trace is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) < 8 {
		t.Errorf("Chrome trace has %d events, want one per span (>= 8)", len(trace.TraceEvents))
	}

	// A repeat run is served by the result cache: the spool span says so.
	res, err = db.Run(bench.Table2SQL())
	if err != nil {
		t.Fatal(err)
	}
	if sp := obs.Find(res.Spans, "spool"); sp.Attrs["cache"] != "hit" {
		t.Errorf("second-run spool cache attr = %v, want hit", sp.Attrs["cache"])
	}

	// Toggling off stops span recording.
	db.SetSpanTracing(false)
	res, err = db.Run(bench.Table2SQL())
	if err != nil {
		t.Fatal(err)
	}
	if res.Spans != nil {
		t.Error("span tracing off, but Run attached spans")
	}
}

// TestFlightRecorder: every batch — traced or not, failed or not — lands in
// the ring; span trees ride along only while span tracing is on.
func TestFlightRecorder(t *testing.T) {
	db := openTPCH(t, withCSE())
	if _, err := db.Run(bench.Table2SQL()); err != nil {
		t.Fatal(err)
	}
	fr := db.FlightRecorder()
	last := fr.Last()
	if last == nil || last.Statements == 0 || last.Rows == 0 {
		t.Fatalf("flight record after a batch = %+v", last)
	}
	if last.Spans != nil {
		t.Error("span tracing off, but the flight record carries spans")
	}
	if last.Wall <= 0 || last.Optimize <= 0 || last.Exec <= 0 {
		t.Errorf("flight record durations not set: %+v", last)
	}

	db.SetSpanTracing(true)
	if _, err := db.Run(bench.Table2SQL()); err != nil {
		t.Fatal(err)
	}
	if last = fr.Last(); len(last.Spans) == 0 {
		t.Error("span tracing on, but the flight record has no spans")
	}

	// A failed batch is recorded too, with its error.
	if _, err := db.Run("select nonexistent_column from lineitem;"); err == nil {
		t.Fatal("expected an error")
	}
	if last = fr.Last(); last.Err == "" {
		t.Errorf("failed batch recorded without an error: %+v", last)
	}
}

// TestDebugServer: the opt-in HTTP server exposes metrics, the flight
// recorder, cache contents, and a downloadable Chrome trace.
func TestDebugServer(t *testing.T) {
	db := openTPCHOpts(t, csedb.Options{SpanTracing: true})
	addr, err := db.StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer db.StopDebugServer()
	if db.DebugAddr() != addr {
		t.Errorf("DebugAddr = %q, want %q", db.DebugAddr(), addr)
	}
	if _, err := db.StartDebugServer("127.0.0.1:0"); err == nil {
		t.Error("second StartDebugServer must fail while running")
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	// Before any span-traced batch there is no trace to download.
	if code, _ := get("/trace/last"); code != http.StatusNotFound {
		t.Errorf("/trace/last before any batch = %d, want 404", code)
	}

	if _, err := db.Run(bench.Table2SQL()); err != nil {
		t.Fatal(err)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE optimize_seconds histogram",
		`optimize_seconds_bucket{le="+Inf"} 1`,
		"# TYPE exec_seconds histogram",
		"# TYPE spool_materialize_seconds histogram",
		"csedb_batches_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = get("/flightrecorder")
	if code != http.StatusOK {
		t.Fatalf("/flightrecorder = %d", code)
	}
	var fr struct {
		ThresholdNS int64              `json:"threshold_ns"`
		Recent      []*obs.BatchRecord `json:"recent"`
		Slow        []*obs.BatchRecord `json:"slow"`
	}
	if err := json.Unmarshal([]byte(body), &fr); err != nil {
		t.Fatalf("/flightrecorder is not valid JSON: %v", err)
	}
	if len(fr.Recent) != 1 || fr.Recent[0].Statements == 0 || len(fr.Recent[0].Spans) == 0 {
		t.Errorf("/flightrecorder recent = %+v", fr.Recent)
	}
	if fr.ThresholdNS != int64(obs.DefaultSlowThreshold) {
		t.Errorf("threshold_ns = %d", fr.ThresholdNS)
	}

	code, body = get("/cache")
	if code != http.StatusOK {
		t.Fatalf("/cache = %d", code)
	}
	var cacheOut struct {
		Enabled bool             `json:"enabled"`
		HitRate float64          `json:"hit_rate"`
		Entries []map[string]any `json:"entries"`
	}
	if err := json.Unmarshal([]byte(body), &cacheOut); err != nil {
		t.Fatalf("/cache is not valid JSON: %v", err)
	}
	if !cacheOut.Enabled || len(cacheOut.Entries) == 0 {
		t.Errorf("/cache = %+v, want enabled with entries after a CSE batch", cacheOut)
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/trace/last", addr))
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/trace/last = %d", resp.StatusCode)
	}
	if cd := resp.Header.Get("Content-Disposition"); !strings.Contains(cd, "trace.json") {
		t.Errorf("Content-Disposition = %q", cd)
	}
	if !strings.Contains(string(body2), `"traceEvents"`) {
		t.Error("/trace/last is not a Chrome trace")
	}

	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}

	if err := db.StopDebugServer(); err != nil {
		t.Fatal(err)
	}
	if db.DebugAddr() != "" {
		t.Error("DebugAddr non-empty after Stop")
	}
	if err := db.StopDebugServer(); err != nil {
		t.Error("second Stop must be a no-op:", err)
	}
	// The address is free again.
	if _, err := db.StartDebugServer(addr); err != nil {
		t.Errorf("restart on the freed address: %v", err)
	}
	db.StopDebugServer()
}

// TestOptionsDebugAddr: the Options knob starts the server from Open.
func TestOptionsDebugAddr(t *testing.T) {
	db := csedb.Open(csedb.Options{DebugAddr: "127.0.0.1:0"})
	defer db.StopDebugServer()
	if db.DebugServerError() != nil {
		t.Fatal(db.DebugServerError())
	}
	addr := db.DebugAddr()
	if addr == "" {
		t.Fatal("Options.DebugAddr did not start the server")
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/metrics = %d", resp.StatusCode)
	}
}
