package csedb

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/logical"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/storage"
)

// OpenOn returns a database wired onto an existing catalog and row store.
// The serving layer and the differential harness use it to run several DB
// configurations over one shared data set; the caller owns write
// serialization across all databases sharing the store.
func OpenOn(cat *catalog.Catalog, store *storage.Store, opts Options) *DB {
	db := Open(opts)
	db.cat = cat
	db.store = store
	return db
}

// Prepared is an optimized, execution-ready SELECT batch: the output of
// parse + bind + CSE optimization, reusable across executions. A Prepared
// is immutable after Prepare returns — the optimizer result is read-only at
// execution time — so it is safe to execute concurrently from many
// goroutines and to cache across requests.
//
// Staleness: Versions snapshots the referenced tables' version counters
// BEFORE optimization reads any statistics, so a plan built while a write
// raced it reports stale on the very next Versions check — the same
// discipline the spool result cache uses.
type Prepared struct {
	db           *DB
	stmts        []parser.Statement
	md           *logical.Metadata
	out          *core.Output
	sourceTables []string
	versions     map[string]uint64
	prepareTime  time.Duration
}

// Prepare parses and optimizes a SELECT-only batch without executing it.
func (db *DB) Prepare(sql string) (*Prepared, error) {
	stmts, err := parser.Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.PrepareStatements(stmts)
}

// PrepareStatements is Prepare over a pre-parsed batch. Only plain SELECT
// statements may be prepared: DDL (CREATE MATERIALIZED VIEW) has
// side effects that must not replay on reuse.
func (db *DB) PrepareStatements(stmts []parser.Statement) (*Prepared, error) {
	for i, st := range stmts {
		if _, ok := st.(*parser.SelectStmt); !ok {
			return nil, fmt.Errorf("statement %d: only SELECT statements can be prepared", i+1)
		}
	}
	if len(stmts) == 0 {
		return nil, fmt.Errorf("empty batch")
	}
	start := time.Now()
	batch, err := logical.BuildBatch(stmts, db.cat)
	if err != nil {
		return nil, err
	}
	// Version snapshot before the optimizer reads statistics: the table set
	// is every bound instance in the metadata (a superset of what the final
	// plan scans, which is sound for invalidation).
	seen := map[string]bool{}
	var tables []string
	for i := 0; i < batch.Metadata.NumRels(); i++ {
		name := batch.Metadata.Rel(logical.RelID(i)).Tab.Name
		if !seen[name] {
			seen[name] = true
			tables = append(tables, name)
		}
	}
	sort.Strings(tables)
	versions := db.store.Versions(tables)

	m, err := memo.Build(batch)
	if err != nil {
		return nil, err
	}
	out, err := core.OptimizeTraced(m, db.settings, nil)
	if err != nil {
		return nil, err
	}
	return &Prepared{
		db:           db,
		stmts:        stmts,
		md:           batch.Metadata,
		out:          out,
		sourceTables: tables,
		versions:     versions,
		prepareTime:  time.Since(start),
	}, nil
}

// NumStatements returns the number of statements in the prepared batch.
func (p *Prepared) NumStatements() int { return len(p.stmts) }

// SourceTables returns the sorted base tables the batch binds (catalog
// spelling).
func (p *Prepared) SourceTables() []string { return p.sourceTables }

// Versions returns the pre-optimize version snapshot of SourceTables
// (lowercased keys, matching storage.Store.Versions).
func (p *Prepared) Versions() map[string]uint64 { return p.versions }

// PrepareTime returns the parse-to-optimized wall time.
func (p *Prepared) PrepareTime() time.Duration { return p.prepareTime }

// Stale reports whether any referenced table has changed since the plan was
// prepared, per the given store's current version counters.
func (p *Prepared) Stale(store *storage.Store) bool {
	now := store.Versions(p.sourceTables)
	for k, v := range p.versions {
		if now[k] != v {
			return true
		}
	}
	return false
}

// ExecutePrepared runs a prepared batch. The context cancels the executor
// (all parallel workers) — for a coalesced batch serving many clients, pass
// the server's base context, never an individual client's. The optional
// annotate hook runs on the root span before execution so callers (the
// serving layer) can attach coalesce/session attributes; it is never called
// when span tracing is off.
//
// ExecutePrepared skips the per-execution work Run does that a prepared
// plan has already paid or cannot need: parse, bind, optimize, view
// materialization, and Explain formatting.
func (db *DB) ExecutePrepared(ctx context.Context, p *Prepared, annotate func(*obs.Span)) (*BatchResult, error) {
	batchStart := time.Now()
	rec := db.newSpanRecorder()
	root := rec.StartSpan("batch")
	root.SetAttr("statements", len(p.stmts))
	root.SetAttr("prepared", true)
	if annotate != nil && rec.Enabled() {
		annotate(root)
	}

	execSpan := root.Child("execute")
	results, execStats, err := exec.RunWithOptions(ctx, p.out.Result, p.md, db.store,
		exec.Options{Parallelism: db.parallelism, ChunkSize: db.chunkSize, Cache: db.cache, Span: execSpan, NoColPlane: db.noColPlane})
	if err != nil {
		execSpan.End()
		db.recordFailure(rec, root, batchStart, err)
		return nil, err
	}
	execSpan.SetAttr("spools", len(execStats.SpoolRows))
	execSpan.SetAttr("spools_cached", execStats.CacheHits())
	execSpan.End()
	execTime := time.Since(batchStart)
	db.recordMetrics(len(results), &p.out.Stats, execStats, 0, execTime)

	rows := 0
	for _, r := range results {
		rows += len(r.Rows)
	}
	root.SetAttr("rows", rows)
	root.End()
	rec.Finish()
	var spans []*obs.SpanNode
	if rec.Enabled() {
		spans = rec.Tree()
	}
	db.flight.Record(&obs.BatchRecord{
		Start:              batchStart,
		Wall:               time.Since(batchStart),
		Exec:               execTime,
		Statements:         len(results),
		Rows:               rows,
		Candidates:         p.out.Stats.Candidates,
		UsedCSEs:           len(p.out.Stats.UsedCSEs),
		SpoolsMaterialized: len(execStats.SpoolRows) - execStats.CacheHits(),
		SpoolsCached:       execStats.CacheHits(),
		Spans:              spans,
	})

	return &BatchResult{
		Statements:    results,
		Stats:         p.out.Stats,
		ExecTime:      execTime,
		EstimatedCost: p.out.Result.Cost,
		SpoolRows:     execStats.SpoolRows,
		ExecStats:     execStats,
		Spans:         spans,
	}, nil
}
