package csedb_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/csedb"
	"repro/internal/catalog"
	"repro/internal/sqltypes"
)

func TestCreateTableAndInsertErrors(t *testing.T) {
	db := csedb.Open(csedb.Options{})
	cols := []catalog.Column{{Name: "a", Type: sqltypes.KindInt}}
	if err := db.CreateTable("t", cols); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("t", cols); err == nil {
		t.Error("duplicate table must fail")
	}
	if err := db.Insert("nosuch", nil); err == nil {
		t.Error("insert into missing table must fail")
	}
	// Arity check.
	if err := db.Insert("t", []csedb.Row{{sqltypes.NewInt(1), sqltypes.NewInt(2)}}); err == nil {
		t.Error("row arity mismatch must fail")
	}
	if err := db.Insert("t", []csedb.Row{{sqltypes.NewInt(1)}}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Run("select a from t")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Statements[0].Rows) != 1 {
		t.Error("inserted row not visible")
	}
}

func TestInsertRefreshesStatistics(t *testing.T) {
	db := csedb.Open(csedb.Options{})
	cols := []catalog.Column{{Name: "a", Type: sqltypes.KindInt}}
	if err := db.CreateTable("t", cols); err != nil {
		t.Fatal(err)
	}
	rows := make([]csedb.Row, 50)
	for i := range rows {
		rows[i] = csedb.Row{sqltypes.NewInt(int64(i))}
	}
	if err := db.Insert("t", rows); err != nil {
		t.Fatal(err)
	}
	tab, err := db.Catalog().Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Stats.RowCount != 50 {
		t.Errorf("stats not refreshed: %g", tab.Stats.RowCount)
	}
}

func TestRunErrors(t *testing.T) {
	db := openTPCH(t, withCSE())
	if _, err := db.Run("selekt broken"); err == nil {
		t.Error("parse error must surface")
	}
	if _, err := db.Run("select nothere from customer"); err == nil {
		t.Error("bind error must surface")
	}
	if _, err := db.Explain("selekt broken"); err == nil {
		t.Error("explain must surface parse errors")
	}
}

func TestQueryViewMissing(t *testing.T) {
	db := openTPCH(t, withCSE())
	if _, err := db.QueryView("nope"); err == nil {
		t.Error("missing view must error")
	}
}

func TestViewNameCollision(t *testing.T) {
	db := openTPCH(t, withCSE())
	ddl := "create materialized view v as select c_nationkey, count(*) as n from customer group by c_nationkey"
	if _, err := db.Run(ddl); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Run(ddl); err == nil {
		t.Error("duplicate view must fail (backing table exists)")
	}
}

// TestMaintenanceWithOrdersDelta: deltas on a mid-join table (orders) are
// maintained correctly too — the maintenance expression joins customer with
// the order delta and lineitem. New orders must reference existing
// customers and lineitems... since lineitems of new orders don't exist, the
// aggregate contribution is empty but the path still runs; to get a real
// contribution we insert lineitems first (no view references lineitem's
// delta semantics here — views are recomputed against delta orders joined
// with *current* lineitem, so inserting lineitems first is the consistent
// order for insert-only deltas).
func TestMaintenanceWithOrdersDelta(t *testing.T) {
	db := openTPCH(t, withCSE())
	if _, err := db.Run(`
create materialized view ord_sum as
select c_nationkey, sum(l_extendedprice) as rev
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
group by c_nationkey`); err != nil {
		t.Fatal(err)
	}

	// New order 900001 for customer 1 with two lineitems.
	ii, ff, ss := sqltypes.NewInt, sqltypes.NewFloat, sqltypes.NewString
	date := sqltypes.MustParseDate("1995-05-05")
	if err := db.Insert("lineitem", []csedb.Row{
		{ii(900001), ii(1), ii(1), ii(1), ff(5), ff(1000), ff(0), ff(0), ss("N"), date, ss("AIR")},
		{ii(900001), ii(1), ii(1), ii(2), ff(3), ff(500), ff(0), ff(0), ss("N"), date, ss("AIR")},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := db.InsertWithViewMaintenance("orders", []csedb.Row{
		{ii(900001), ii(1), ss("O"), ff(1500), date, ss("1-URGENT"), ss("Clerk#1"), ii(0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ViewsMaintained) != 1 {
		t.Fatalf("views maintained = %v", res.ViewsMaintained)
	}

	// The view must now equal recomputation from scratch.
	recomputed, err := db.Run(`
select c_nationkey, sum(l_extendedprice) as rev
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
group by c_nationkey`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.QueryView("ord_sum")
	if err != nil {
		t.Fatal(err)
	}
	a, b := canonical(got), canonical(recomputed.Statements[0].Rows)
	if len(a) != len(b) {
		t.Fatalf("view has %d groups, recomputation %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("row %d: view %q vs recomputed %q", i, a[i], b[i])
		}
	}
}

func TestExplainNoCSEPlain(t *testing.T) {
	db := openTPCH(t, noCSE())
	plan, err := db.Explain("select c_name from customer where c_acctbal > 0")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "CSE") {
		t.Error("no-CSE explain must not mention candidates")
	}
	if !strings.Contains(plan, "Scan customer") {
		t.Errorf("plan missing scan:\n%s", plan)
	}
}

func TestSettingsToggle(t *testing.T) {
	db := openTPCH(t, withCSE())
	s := db.Settings()
	if !s.EnableCSE {
		t.Fatal("default settings must enable CSE")
	}
	s.EnableCSE = false
	db.SetSettings(s)
	res, err := db.Run(example1SQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Candidates != 0 {
		t.Error("settings toggle ignored")
	}
}

// TestConcurrentReads: read-only queries are safe to run from multiple
// goroutines — each Run builds its own metadata, memo, optimizer, and
// executor; the store takes a read lock.
func TestConcurrentReads(t *testing.T) {
	db := openTPCH(t, withCSE())
	const workers = 8
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < 3; i++ {
				res, err := db.Run(example1SQL)
				if err != nil {
					errc <- err
					return
				}
				if len(res.Statements) != 3 {
					errc <- fmt.Errorf("worker %d: %d statements", w, len(res.Statements))
					return
				}
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

// TestSpoolMaterializedOnce: executing the Example 1 batch with a shared
// CSE materializes its spool exactly once, and its row count matches the
// plan's expectation order of magnitude (it is the covering aggregate).
func TestSpoolMaterializedOnce(t *testing.T) {
	db := openTPCH(t, withCSE())
	res, err := db.Run(example1SQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.UsedCSEs) != 1 {
		t.Fatalf("used CSEs = %v", res.Stats.UsedCSEs)
	}
	if len(res.SpoolRows) != 1 {
		t.Fatalf("spools materialized = %v, want exactly the one used CSE", res.SpoolRows)
	}
	for id, n := range res.SpoolRows {
		if n <= 0 {
			t.Errorf("spool %d materialized %d rows", id, n)
		}
	}
}

func TestMaintenanceNoAffectedViews(t *testing.T) {
	db := openTPCH(t, withCSE())
	if _, err := db.Run(`create materialized view vv as
select c_nationkey, count(*) as n from customer group by c_nationkey`); err != nil {
		t.Fatal(err)
	}
	// Inserting into part affects no view: maintenance is a no-op but the
	// base insert still lands.
	before, err := db.Run("select count(*) as n from part")
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.InsertWithViewMaintenance("part", []csedb.Row{{
		sqltypes.NewInt(999991), sqltypes.NewString("x"), sqltypes.NewString("m"),
		sqltypes.NewString("b"), sqltypes.NewString("t"), sqltypes.NewInt(1),
		sqltypes.NewFloat(1), sqltypes.NewInt(1),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ViewsMaintained) != 0 {
		t.Errorf("views maintained = %v, want none", res.ViewsMaintained)
	}
	after, err := db.Run("select count(*) as n from part")
	if err != nil {
		t.Fatal(err)
	}
	if after.Statements[0].Rows[0][0].Int() != before.Statements[0].Rows[0][0].Int()+1 {
		t.Error("base insert lost")
	}
}

// TestDeltaTableCleanedUp: maintenance drops its delta table afterwards.
func TestDeltaTableCleanedUp(t *testing.T) {
	db := openTPCH(t, withCSE())
	if _, err := db.Run(`create materialized view mv0 as
select c_nationkey, count(*) as n from customer group by c_nationkey`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.InsertWithViewMaintenance("customer", []csedb.Row{{
		sqltypes.NewInt(888888), sqltypes.NewString("X"), sqltypes.NewString("a"),
		sqltypes.NewInt(1), sqltypes.NewString("p"), sqltypes.NewFloat(1),
		sqltypes.NewString("BUILDING"), sqltypes.NewString("c"),
	}}); err != nil {
		t.Fatal(err)
	}
	for _, name := range db.Catalog().Names() {
		if strings.HasPrefix(name, "delta_") {
			t.Errorf("delta table %q not cleaned up", name)
		}
	}
}
