package csedb_test

import (
	"testing"
)

// Adapted TPC-H queries (restricted to the engine's SQL subset: inner joins,
// SPJG, HAVING with scalar subqueries, ORDER BY, LIMIT). They broaden
// integration coverage with realistic shapes and verify the CSE phase is
// harmless on queries with little or no sharing.
var tpchLike = map[string]string{
	// Q1: pricing summary report.
	"q1": `
select l_returnflag, sum(l_quantity) as sum_qty, sum(l_extendedprice) as sum_base,
       avg(l_discount) as avg_disc, count(*) as count_order
from lineitem
where l_shipdate <= '1998-09-02'
group by l_returnflag
order by l_returnflag`,

	// Q3: shipping priority.
	"q3": `
select o_orderkey, sum(l_extendedprice) as revenue, o_orderdate
from customer, orders, lineitem
where c_mktsegment = 'BUILDING' and c_custkey = o_custkey and l_orderkey = o_orderkey
  and o_orderdate < '1995-03-15' and l_shipdate > '1995-03-15'
group by o_orderkey, o_orderdate
order by revenue desc, o_orderdate
limit 10`,

	// Q5: local supplier volume.
	"q5": `
select n_name, sum(l_extendedprice) as revenue
from customer, orders, lineitem, supplier, nation, region
where c_custkey = o_custkey and l_orderkey = o_orderkey and l_suppkey = s_suppkey
  and c_nationkey = s_nationkey and s_nationkey = n_nationkey
  and n_regionkey = r_regionkey and r_name = 'ASIA'
  and o_orderdate >= '1994-01-01' and o_orderdate < '1995-01-01'
group by n_name
order by revenue desc`,

	// Q6: forecast revenue change (single table, scalar aggregate).
	"q6": `
select sum(l_extendedprice) as revenue
from lineitem
where l_shipdate >= '1994-01-01' and l_shipdate < '1995-01-01'
  and l_discount between 0.05 and 0.07 and l_quantity < 24`,

	// Q10: returned item reporting.
	"q10": `
select c_custkey, c_name, sum(l_extendedprice) as revenue, n_name
from customer, orders, lineitem, nation
where c_custkey = o_custkey and l_orderkey = o_orderkey
  and o_orderdate >= '1993-10-01' and o_orderdate < '1994-04-01'
  and l_returnflag = 'R' and c_nationkey = n_nationkey
group by c_custkey, c_name, n_name
order by revenue desc
limit 20`,

	// Q19-ish: quantity bands via OR (exercises OR selectivity + residuals).
	"q19": `
select sum(l_extendedprice) as revenue
from lineitem, part
where p_partkey = l_partkey
  and (l_quantity >= 1 and l_quantity <= 11 and p_size between 1 and 5
    or l_quantity >= 10 and l_quantity <= 20 and p_size between 1 and 10)`,
}

// TestTPCHLikeQueriesRunIdenticallyUnderCSE runs each adapted query under
// both optimizer modes and compares results row for row.
func TestTPCHLikeQueriesRunIdenticallyUnderCSE(t *testing.T) {
	dbOff := openTPCH(t, noCSE())
	dbOn := openTPCH(t, withCSE())
	for name, sql := range tpchLike {
		t.Run(name, func(t *testing.T) {
			off, err := dbOff.Run(sql + ";")
			if err != nil {
				t.Fatalf("no-CSE: %v", err)
			}
			on, err := dbOn.Run(sql + ";")
			if err != nil {
				t.Fatalf("CSE: %v", err)
			}
			compareResults(t, off, on)
			if len(off.Statements[0].Rows) == 0 && name != "q19" {
				t.Errorf("%s returned no rows — workload too small or predicate broken", name)
			}
		})
	}
}

// TestTPCHLikeBatch runs all adapted queries as one batch — a realistic
// mixed workload where only some pairs share subexpressions.
func TestTPCHLikeBatch(t *testing.T) {
	var batch string
	for _, name := range []string{"q1", "q3", "q5", "q6", "q10", "q19"} {
		batch += tpchLike[name] + ";\n"
	}
	off, on := runBoth(t, batch)
	if on.EstimatedCost > off.EstimatedCost {
		t.Errorf("CSE phase must never worsen the estimate: %.2f vs %.2f",
			on.EstimatedCost, off.EstimatedCost)
	}
	t.Logf("mixed batch: est %.2f -> %.2f, candidates %d, used %v",
		off.EstimatedCost, on.EstimatedCost, on.Stats.Candidates, on.Stats.UsedCSEs)
}

// TestTPCHOrderByDescLimitStable: Q3's ORDER BY revenue DESC LIMIT 10 must
// agree across modes even at the row-order level for the sorted prefix keys.
func TestTPCHOrderByDescLimitStable(t *testing.T) {
	dbOff := openTPCH(t, noCSE())
	dbOn := openTPCH(t, withCSE())
	off, err := dbOff.Run(tpchLike["q3"] + ";")
	if err != nil {
		t.Fatal(err)
	}
	on, err := dbOn.Run(tpchLike["q3"] + ";")
	if err != nil {
		t.Fatal(err)
	}
	a, b := off.Statements[0].Rows, on.Statements[0].Rows
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		// Revenue column must be identical in order.
		if a[i][1].Float() != b[i][1].Float() {
			t.Errorf("row %d revenue %v vs %v", i, a[i][1], b[i][1])
		}
	}
}
