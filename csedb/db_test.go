package csedb_test

import (
	"fmt"
	"testing"

	"repro/csedb"
	"repro/internal/core"
	"repro/internal/sqltypes"
)

func openTPCH(t testing.TB, settings *core.Settings) *csedb.DB {
	t.Helper()
	db := csedb.Open(csedb.Options{CSE: settings})
	if err := db.LoadTPCH(0.01, 42); err != nil {
		t.Fatal(err)
	}
	return db
}

func noCSE() *core.Settings {
	s := core.DefaultSettings()
	s.EnableCSE = false
	return &s
}

func withCSE() *core.Settings {
	s := core.DefaultSettings()
	return &s
}

func noHeuristics() *core.Settings {
	s := core.DefaultSettings()
	s.Heuristics = false
	return &s
}

// runBoth executes the batch with and without CSE optimization and fails if
// any statement's (sorted) result differs — the fundamental correctness
// property of covering subexpressions.
func runBoth(t *testing.T, sql string) (*csedb.BatchResult, *csedb.BatchResult) {
	t.Helper()
	dbOff := openTPCH(t, noCSE())
	dbOn := openTPCH(t, withCSE())
	off, err := dbOff.Run(sql)
	if err != nil {
		t.Fatalf("no-CSE run: %v", err)
	}
	on, err := dbOn.Run(sql)
	if err != nil {
		t.Fatalf("CSE run: %v", err)
	}
	compareResults(t, off, on)
	return off, on
}

func compareResults(t *testing.T, off, on *csedb.BatchResult) {
	t.Helper()
	if len(off.Statements) != len(on.Statements) {
		t.Fatalf("statement counts differ: %d vs %d", len(off.Statements), len(on.Statements))
	}
	for i := range off.Statements {
		a := canonical(off.Statements[i].Rows)
		b := canonical(on.Statements[i].Rows)
		if len(a) != len(b) {
			t.Errorf("statement %d: row counts differ: %d (no CSE) vs %d (CSE)", i+1, len(a), len(b))
			continue
		}
		for j := range a {
			if a[j] != b[j] {
				t.Errorf("statement %d row %d differs:\n  no CSE: %s\n  CSE:    %s", i+1, j, a[j], b[j])
				break
			}
		}
	}
}

func canonical(rows []sqltypes.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = roundedString(r)
	}
	sortStrings(out)
	return out
}

// roundedString formats a row with floats rounded so that different
// float-summation orders (CSE vs direct plans) compare equal.
func roundedString(r sqltypes.Row) string {
	s := ""
	for i, d := range r {
		if i > 0 {
			s += "\t"
		}
		if d.Kind() == sqltypes.KindFloat {
			s += fmt.Sprintf("%.4f", d.Float())
		} else {
			s += d.String()
		}
	}
	return s
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

const example1SQL = `
select c_nationkey, c_mktsegment, sum(l_extendedprice) as le, sum(l_quantity) as lq
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and o_orderdate < '1996-07-01' and c_nationkey > 0 and c_nationkey < 20
group by c_nationkey, c_mktsegment;

select c_nationkey, sum(l_extendedprice) as le, sum(l_quantity) as lq
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and o_orderdate < '1996-07-01' and c_nationkey > 5 and c_nationkey < 25
group by c_nationkey;

select n_regionkey, sum(l_extendedprice) as le, sum(l_quantity) as lq
from customer, orders, lineitem, nation
where c_custkey = o_custkey and o_orderkey = l_orderkey and c_nationkey = n_nationkey
  and o_orderdate < '1996-07-01' and c_nationkey > 2 and c_nationkey < 24
group by n_regionkey;
`

func TestExample1BatchCorrectness(t *testing.T) {
	off, on := runBoth(t, example1SQL)
	if on.Stats.Candidates != 1 {
		t.Errorf("CSE candidates = %d, want 1", on.Stats.Candidates)
	}
	if len(on.Stats.UsedCSEs) != 1 {
		t.Errorf("used CSEs = %v, want one", on.Stats.UsedCSEs)
	}
	if on.EstimatedCost >= off.EstimatedCost {
		t.Errorf("CSE estimated cost %.2f not below no-CSE %.2f", on.EstimatedCost, off.EstimatedCost)
	}
}

const q4SQL = `
select p_type, sum(p_availqty) as qty
from part, orders, lineitem
where p_partkey = l_partkey and o_orderkey = l_orderkey
  and o_orderdate < '1996-07-01'
group by p_type;
`

func TestStackedBatchCorrectness(t *testing.T) {
	// §6.2: Q1..Q3 plus Q4 — the optimal solution stacks a shared
	// γ(orders⋈lineitem) under wider CSEs.
	runBoth(t, example1SQL+q4SQL)
}

const nestedSQL = `
select c_nationkey, n_name, sum(l_discount) as totaldisc
from customer, orders, lineitem, nation
where c_custkey = o_custkey and o_orderkey = l_orderkey and c_nationkey = n_nationkey
group by c_nationkey, n_name
having sum(l_discount) > (
  select sum(l_discount) / 25
  from customer, orders, lineitem
  where c_custkey = o_custkey and o_orderkey = l_orderkey)
order by totaldisc desc
`

func TestNestedQueryCorrectness(t *testing.T) {
	off, on := runBoth(t, nestedSQL)
	if len(on.Stats.UsedCSEs) == 0 {
		t.Errorf("nested query should use a CSE (paper §6.3); stats: %+v", on.Stats)
	}
	_ = off
}

func TestNoHeuristicsSamePlanQuality(t *testing.T) {
	dbOn := openTPCH(t, withCSE())
	dbNoH := openTPCH(t, noHeuristics())
	on, err := dbOn.Run(example1SQL)
	if err != nil {
		t.Fatal(err)
	}
	noH, err := dbNoH.Run(example1SQL)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, on, noH)
	// The paper verified pruning keeps the best candidate: both modes must
	// find plans of equal estimated cost.
	if on.EstimatedCost != noH.EstimatedCost {
		t.Errorf("heuristic pruning changed plan cost: %.2f vs %.2f", on.EstimatedCost, noH.EstimatedCost)
	}
	if noH.Stats.Candidates <= on.Stats.Candidates {
		t.Errorf("no-heuristics candidates (%d) should exceed pruned (%d)", noH.Stats.Candidates, on.Stats.Candidates)
	}
}

func TestSingleStatementWithSharedSubquery(t *testing.T) {
	// A single query whose subquery overlaps the main block — sharing
	// within one statement.
	runBoth(t, nestedSQL)
}

func TestUngroupedBatchCorrectness(t *testing.T) {
	runBoth(t, `
select c_name, o_totalprice
from customer, orders
where c_custkey = o_custkey and o_totalprice > 100000 and c_acctbal > 0;

select c_name, c_mktsegment, o_orderdate
from customer, orders
where c_custkey = o_custkey and o_totalprice > 150000;
`)
}

func TestViewMaintenance(t *testing.T) {
	db := openTPCH(t, withCSE())
	if _, err := db.Run(`
create materialized view v1 as
select c_nationkey, c_mktsegment, sum(l_extendedprice) as le, sum(l_quantity) as lq
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and o_orderdate < '1996-07-01' and c_nationkey > 0 and c_nationkey < 20
group by c_nationkey, c_mktsegment;

create materialized view v2 as
select c_nationkey, sum(l_extendedprice) as le, sum(l_quantity) as lq
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and o_orderdate < '1996-07-01' and c_nationkey > 5 and c_nationkey < 25
group by c_nationkey;
`); err != nil {
		t.Fatal(err)
	}

	// Insert new orders referencing existing customers and verify view
	// contents match recomputation from scratch... the delta here is new
	// *orders* rows plus their lineitems would require multi-table deltas,
	// so instead update customer with brand-new customers that have no
	// orders (aggregate unchanged) and then verify a no-op maintenance
	// pass, plus a real delta through orders' side via a fresh database.
	newCust := []csedb.Row{
		{sqltypes.NewInt(999001), sqltypes.NewString("Customer#999001"), sqltypes.NewString("addr"),
			sqltypes.NewInt(3), sqltypes.NewString("11-111-111-1111"), sqltypes.NewFloat(100),
			sqltypes.NewString("BUILDING"), sqltypes.NewString("c")},
	}
	mres, err := db.InsertWithViewMaintenance("customer", newCust)
	if err != nil {
		t.Fatal(err)
	}
	if len(mres.ViewsMaintained) != 2 {
		t.Fatalf("views maintained = %v, want both", mres.ViewsMaintained)
	}

	// Recompute both views from scratch on the updated data and compare.
	fresh := openTPCH(t, noCSE())
	if err := fresh.Insert("customer", newCust); err != nil {
		t.Fatal(err)
	}
	q, err := fresh.Run(example1SQL)
	if err != nil {
		t.Fatal(err)
	}
	for vi, vname := range []string{"v1", "v2"} {
		got, err := db.QueryView(vname)
		if err != nil {
			t.Fatal(err)
		}
		want := q.Statements[vi].Rows
		a, b := canonical(got), canonical(want)
		if len(a) != len(b) {
			t.Errorf("view %s: %d rows, recomputation has %d", vname, len(a), len(b))
			continue
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("view %s row %d: %s != %s", vname, i, a[i], b[i])
				break
			}
		}
	}
}

func TestExplainMentionsCSE(t *testing.T) {
	db := openTPCH(t, withCSE())
	plan, err := db.Explain(example1SQL)
	if err != nil {
		t.Fatal(err)
	}
	if !containsStr(plan, "SpoolScan") || !containsStr(plan, "CSE") {
		t.Errorf("explain output missing CSE markers:\n%s", plan)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestSubqueryConjunctNeverInCovering: statement 2's predicate compares
// against a scalar subquery. A shared spool materializes during statement 1,
// before that subquery is evaluated, so the subquery conjunct must stay in
// statement 2's compensation residual — never in the spool's covering
// predicate (regression: this used to fail with "subquery reference not
// substituted").
func TestSubqueryConjunctNeverInCovering(t *testing.T) {
	sql := `
select c_nationkey, sum(o_totalprice) as v
from customer, orders
where c_custkey = o_custkey and c_acctbal > 100
group by c_nationkey;
select c_nationkey, count(*) as n
from customer, orders
where c_custkey = o_custkey and c_acctbal > (select avg(c_acctbal) from customer)
group by c_nationkey;
`
	off, on := runBoth(t, sql)
	_ = off
	if len(on.Stats.UsedCSEs) == 0 {
		t.Log("no sharing chosen (acceptable), but the batch must run — it did")
	}
}
