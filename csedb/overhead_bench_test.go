package csedb_test

import (
	"testing"

	"repro/csedb"
	"repro/internal/bench"
)

// benchBatch measures end-to-end batch throughput with observability fully
// off vs fully on (span tracing + flight recorder). Compare the two with
// benchstat; the observability overhead budget is < 5%. The result cache is
// disabled so every iteration does the full materialization work.
func benchBatch(b *testing.B, span bool) {
	db := csedb.Open(csedb.Options{SpanTracing: span})
	if err := db.LoadTPCH(0.01, 42); err != nil {
		b.Fatal(err)
	}
	db.SetCacheBudget(-1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Run(bench.Table2SQL()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchObsOff(b *testing.B) { benchBatch(b, false) }
func BenchmarkBatchObsOn(b *testing.B)  { benchBatch(b, true) }
