package csedb_test

import (
	"testing"

	"repro/internal/qgen"
)

// The random-workload property tests are thin wrappers around the shared
// grammar-driven generator in internal/qgen — the same grammar the
// differential oracle (internal/difftest) and the fuzz targets use, so the
// query surface under test is defined exactly once.

// batchSQL generates the seeded batch used by one property-test round.
func batchSQL(seed int64) string {
	return qgen.New(qgen.Config{Seed: seed, MinQueries: 2, MaxQueries: 4}).Batch().SQL()
}

// TestRandomWorkloadsCSEEquivalence is the central correctness property: on
// randomly generated similar-query batches, the CSE-optimized plans must
// return exactly the same results as plain per-query optimization.
func TestRandomWorkloadsCSEEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("random workload sweep skipped in -short mode")
	}
	dbOff := openTPCH(t, noCSE())
	dbOn := openTPCH(t, withCSE())
	dbNoH := openTPCH(t, noHeuristics())

	const rounds = 12
	for round := 0; round < rounds; round++ {
		sql := batchSQL(int64(1000 + round))

		off, err := dbOff.Run(sql)
		if err != nil {
			t.Fatalf("round %d no-CSE: %v\n%s", round, err, sql)
		}
		on, err := dbOn.Run(sql)
		if err != nil {
			t.Fatalf("round %d CSE: %v\n%s", round, err, sql)
		}
		noH, err := dbNoH.Run(sql)
		if err != nil {
			t.Fatalf("round %d no-heuristics: %v\n%s", round, err, sql)
		}
		for i := range off.Statements {
			a := canonical(off.Statements[i].Rows)
			b := canonical(on.Statements[i].Rows)
			c := canonical(noH.Statements[i].Rows)
			if !equalStrings(a, b) {
				t.Fatalf("round %d stmt %d: CSE results differ\nbatch:\n%s\nno-CSE: %v\nCSE:    %v",
					round, i+1, sql, a, b)
			}
			if !equalStrings(a, c) {
				t.Fatalf("round %d stmt %d: no-heuristics results differ\nbatch:\n%s", round, i+1, sql)
			}
		}
	}
}

// TestRandomWorkloadsCostNeverWorse: enabling CSEs never yields a plan the
// optimizer believes is more expensive — the phase is purely additive.
func TestRandomWorkloadsCostNeverWorse(t *testing.T) {
	if testing.Short() {
		t.Skip("random workload sweep skipped in -short mode")
	}
	dbOff := openTPCH(t, noCSE())
	dbOn := openTPCH(t, withCSE())
	for round := 0; round < 8; round++ {
		sql := batchSQL(int64(7700 + round))
		if _, _, err := dbOff.Optimize(sql); err != nil {
			t.Fatal(err)
		}
		on, _, err := dbOn.Optimize(sql)
		if err != nil {
			t.Fatal(err)
		}
		if on.Stats.FinalCost > on.Stats.BaseCost {
			t.Errorf("round %d: CSE phase made the plan worse: %.2f > %.2f",
				round, on.Stats.FinalCost, on.Stats.BaseCost)
		}
	}
}

// TestChunkSizeSweepEquivalence runs one generated batch at several morsel
// chunk sizes through the public API and demands identical results — the
// csedb-level counterpart of the difftest chunk cells, exercising
// SetExecChunkSize.
func TestChunkSizeSweepEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("chunk sweep skipped in -short mode")
	}
	db := openTPCH(t, withCSE())
	sql := batchSQL(4242)
	var base []string
	for _, chunk := range []int{0, 1, 7, 1024} {
		db.SetExecChunkSize(chunk)
		if got := db.ExecChunkSize(); got != chunk {
			t.Fatalf("ExecChunkSize = %d after SetExecChunkSize(%d)", got, chunk)
		}
		res, err := db.Run(sql)
		if err != nil {
			t.Fatalf("chunk %d: %v\n%s", chunk, err, sql)
		}
		var rows []string
		for _, st := range res.Statements {
			rows = append(rows, canonical(st.Rows)...)
		}
		if base == nil {
			base = rows
			continue
		}
		if !equalStrings(base, rows) {
			t.Fatalf("chunk %d results differ from default chunking\n%s", chunk, sql)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
