package csedb_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// queryGen builds random similar SPJG queries over the TPC-H tables: random
// subsets of grouping columns, random predicate ranges, optional nation /
// region joins — the shapes the CSE machinery targets. Queries within one
// batch deliberately overlap so covering subexpressions exist.
type queryGen struct {
	rng *rand.Rand
}

func (g *queryGen) query() string {
	var sb strings.Builder
	joinsNation := g.rng.Intn(3) == 0
	joinsRegion := joinsNation && g.rng.Intn(2) == 0

	groupChoices := [][2]string{
		{"c_nationkey", ""},
		{"c_nationkey", "c_mktsegment"},
		{"c_mktsegment", ""},
	}
	gc := groupChoices[g.rng.Intn(len(groupChoices))]
	if joinsNation {
		gc = [2]string{"n_name", ""}
	}
	if joinsRegion {
		gc = [2]string{"r_name", ""}
	}
	groupCols := gc[0]
	if gc[1] != "" {
		groupCols += ", " + gc[1]
	}

	aggChoices := []string{
		"sum(l_extendedprice)",
		"sum(l_quantity)",
		"count(*)",
		"max(l_extendedprice)",
		"min(l_discount)",
	}
	nAggs := 1 + g.rng.Intn(2)
	var aggs []string
	for i := 0; i < nAggs; i++ {
		aggs = append(aggs, fmt.Sprintf("%s as a%d", aggChoices[g.rng.Intn(len(aggChoices))], i))
	}

	sb.WriteString("select " + groupCols + ", " + strings.Join(aggs, ", "))
	sb.WriteString("\nfrom customer, orders, lineitem")
	if joinsNation {
		sb.WriteString(", nation")
	}
	if joinsRegion {
		sb.WriteString(", region")
	}
	sb.WriteString("\nwhere c_custkey = o_custkey and o_orderkey = l_orderkey")
	if joinsNation {
		sb.WriteString(" and c_nationkey = n_nationkey")
	}
	if joinsRegion {
		sb.WriteString(" and n_regionkey = r_regionkey")
	}
	// The shared date window plus a random nation-key range.
	sb.WriteString(" and o_orderdate < '1996-07-01'")
	lo := g.rng.Intn(10)
	hi := 15 + g.rng.Intn(10)
	sb.WriteString(fmt.Sprintf(" and c_nationkey > %d and c_nationkey < %d", lo, hi))
	sb.WriteString("\ngroup by " + groupCols)
	return sb.String()
}

// TestRandomWorkloadsCSEEquivalence is the central correctness property: on
// randomly generated similar-query batches, the CSE-optimized plans must
// return exactly the same results as plain per-query optimization.
func TestRandomWorkloadsCSEEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("random workload sweep skipped in -short mode")
	}
	dbOff := openTPCH(t, noCSE())
	dbOn := openTPCH(t, withCSE())
	dbNoH := openTPCH(t, noHeuristics())

	const rounds = 12
	for round := 0; round < rounds; round++ {
		rng := rand.New(rand.NewSource(int64(1000 + round)))
		g := &queryGen{rng: rng}
		n := 2 + rng.Intn(3)
		qs := make([]string, n)
		for i := range qs {
			qs[i] = g.query()
		}
		sql := strings.Join(qs, ";\n") + ";"

		off, err := dbOff.Run(sql)
		if err != nil {
			t.Fatalf("round %d no-CSE: %v\n%s", round, err, sql)
		}
		on, err := dbOn.Run(sql)
		if err != nil {
			t.Fatalf("round %d CSE: %v\n%s", round, err, sql)
		}
		noH, err := dbNoH.Run(sql)
		if err != nil {
			t.Fatalf("round %d no-heuristics: %v\n%s", round, err, sql)
		}
		for i := range off.Statements {
			a := canonical(off.Statements[i].Rows)
			b := canonical(on.Statements[i].Rows)
			c := canonical(noH.Statements[i].Rows)
			if !equalStrings(a, b) {
				t.Fatalf("round %d stmt %d: CSE results differ\nbatch:\n%s\nno-CSE: %v\nCSE:    %v",
					round, i+1, sql, a, b)
			}
			if !equalStrings(a, c) {
				t.Fatalf("round %d stmt %d: no-heuristics results differ\nbatch:\n%s", round, i+1, sql)
			}
		}
	}
}

// TestRandomWorkloadsCostNeverWorse: enabling CSEs never yields a plan the
// optimizer believes is more expensive — the phase is purely additive.
func TestRandomWorkloadsCostNeverWorse(t *testing.T) {
	if testing.Short() {
		t.Skip("random workload sweep skipped in -short mode")
	}
	dbOff := openTPCH(t, noCSE())
	dbOn := openTPCH(t, withCSE())
	for round := 0; round < 8; round++ {
		rng := rand.New(rand.NewSource(int64(7700 + round)))
		g := &queryGen{rng: rng}
		n := 2 + rng.Intn(3)
		qs := make([]string, n)
		for i := range qs {
			qs[i] = g.query()
		}
		sql := strings.Join(qs, ";\n") + ";"
		if _, _, err := dbOff.Optimize(sql); err != nil {
			t.Fatal(err)
		}
		on, _, err := dbOn.Optimize(sql)
		if err != nil {
			t.Fatal(err)
		}
		if on.Stats.FinalCost > on.Stats.BaseCost {
			t.Errorf("round %d: CSE phase made the plan worse: %.2f > %.2f",
				round, on.Stats.FinalCost, on.Stats.BaseCost)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
