package csedb_test

import "testing"

// TestRegressionNoHeuristicsManyCandidates pins an optimizer bug found by
// the qgen-driven property tests: with heuristics disabled this 5-table
// batch yields 11 candidates, and the alternative-combination pruning cap
// used to drop every CSE-free combination — chargeCandidate then discarded
// the remaining single-use alternatives and the whole optimization failed
// with "no valid plan with CSE set [0 1 2 3 4 5 6 7 8 9 10]". The pruner now
// always retains the cheapest clean combination.
func TestRegressionNoHeuristicsManyCandidates(t *testing.T) {
	db := openTPCH(t, noHeuristics())
	sql := `
select c_nationkey, count(*) as a0
from part, lineitem, orders, customer
where p_partkey = l_partkey
  and l_orderkey = o_orderkey
  and o_custkey = c_custkey
  and o_orderdate < '1994-12-31'
  and c_nationkey > 2 and c_nationkey < 14
group by c_nationkey
order by a0 desc;

select o_orderstatus, count(*) as a0
from part, lineitem, orders, supplier, partsupp
where p_partkey = l_partkey
  and l_orderkey = o_orderkey
  and l_suppkey = s_suppkey
  and p_partkey = ps_partkey
  and o_orderdate < '1994-12-31'
  and o_orderpriority = '2-HIGH'
group by o_orderstatus
order by a0;

select p_mfgr, count(*) as a0
from part, lineitem, orders, supplier, customer
where p_partkey = l_partkey
  and l_orderkey = o_orderkey
  and l_suppkey = s_suppkey
  and o_custkey = c_custkey
  and o_orderdate < '1994-12-31'
group by p_mfgr
order by a0;`
	if _, err := db.Run(sql); err != nil {
		t.Fatalf("no-heuristics optimization of a many-candidate batch failed: %v", err)
	}

	// The same batch must agree with the no-CSE baseline.
	base := openTPCH(t, noCSE())
	want, err := base.Run(sql)
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.Run(sql)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Statements {
		a := canonical(want.Statements[i].Rows)
		b := canonical(got.Statements[i].Rows)
		if !equalStrings(a, b) {
			t.Fatalf("statement %d: no-heuristics results differ from baseline", i+1)
		}
	}
}
