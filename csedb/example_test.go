package csedb_test

import (
	"fmt"
	"log"

	"repro/csedb"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/sqltypes"
)

// ExampleDB_Run shows batch optimization sharing a covering subexpression
// between two similar queries over a tiny hand-made dataset.
func ExampleDB_Run() {
	db := csedb.Open(csedb.Options{})
	if err := db.CreateTable("sales", []catalog.Column{
		{Name: "region", Type: sqltypes.KindString},
		{Name: "product", Type: sqltypes.KindString},
		{Name: "amount", Type: sqltypes.KindFloat},
	}); err != nil {
		log.Fatal(err)
	}
	rows := []csedb.Row{
		{sqltypes.NewString("east"), sqltypes.NewString("widget"), sqltypes.NewFloat(10)},
		{sqltypes.NewString("east"), sqltypes.NewString("gadget"), sqltypes.NewFloat(20)},
		{sqltypes.NewString("west"), sqltypes.NewString("widget"), sqltypes.NewFloat(5)},
	}
	if err := db.Insert("sales", rows); err != nil {
		log.Fatal(err)
	}
	res, err := db.Run(`
select region, sum(amount) as total from sales group by region order by region;
select product, sum(amount) as total from sales group by product order by product;
`)
	if err != nil {
		log.Fatal(err)
	}
	for _, st := range res.Statements {
		for _, r := range st.Rows {
			fmt.Println(r.String())
		}
	}
	// Output:
	// east	30
	// west	5
	// gadget	20
	// widget	15
}

// ExampleDB_Explain renders a physical plan.
func ExampleDB_Explain() {
	s := core.DefaultSettings()
	s.EnableCSE = false
	db := csedb.Open(csedb.Options{CSE: &s})
	if err := db.CreateTable("t", []catalog.Column{{Name: "a", Type: sqltypes.KindInt}}); err != nil {
		log.Fatal(err)
	}
	if err := db.Insert("t", []csedb.Row{{sqltypes.NewInt(1)}}); err != nil {
		log.Fatal(err)
	}
	plan, err := db.Explain("select a from t where a > 0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(plan) > 0)
	// Output:
	// true
}

// ExampleDB_InsertWithViewMaintenance maintains a materialized view through
// an insert-delta, sharing maintenance work across views when several are
// affected.
func ExampleDB_InsertWithViewMaintenance() {
	db := csedb.Open(csedb.Options{})
	if err := db.CreateTable("events", []catalog.Column{
		{Name: "kind", Type: sqltypes.KindString},
		{Name: "n", Type: sqltypes.KindInt},
	}); err != nil {
		log.Fatal(err)
	}
	if err := db.Insert("events", []csedb.Row{
		{sqltypes.NewString("click"), sqltypes.NewInt(3)},
	}); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Run(`create materialized view totals as
select kind, sum(n) as total from events group by kind`); err != nil {
		log.Fatal(err)
	}
	if _, err := db.InsertWithViewMaintenance("events", []csedb.Row{
		{sqltypes.NewString("click"), sqltypes.NewInt(4)},
		{sqltypes.NewString("view"), sqltypes.NewInt(1)},
	}); err != nil {
		log.Fatal(err)
	}
	rows, err := db.QueryView("totals")
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Println(r.String())
	}
	// Unordered output:
	// click	7
	// view	1
}
