package csedb_test

import (
	"strings"
	"testing"

	"repro/csedb"
	"repro/internal/bench"
	"repro/internal/obs"
)

// TestExplainAnalyze: the rendering shows per-operator actuals next to the
// estimates, spool hit counts on spool scans, the CSE decision trail, and
// the execution summary.
func TestExplainAnalyze(t *testing.T) {
	db := openTPCH(t, withCSE())
	text, err := db.ExplainAnalyze(bench.Table2SQL())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"estimated cost:",
		"[actual rows=",
		"hits=",
		"CSE decisions:",
		"[h1]",
		"[h4]",
		"[final]",
		"execution: workers=",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("ExplainAnalyze output missing %q:\n%s", want, text)
		}
	}
	// Every estimate line of a statement plan carries actuals (the Batch
	// root is a scheduling artifact and is never executed as a node).
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "(rows=") && strings.Contains(line, "cost=") &&
			!strings.Contains(line, "Batch") {
			if !strings.Contains(line, "[actual rows=") {
				t.Errorf("plan line lacks actuals: %q", line)
			}
		}
	}
}

// TestTracingToggle: Run attaches a trace only when tracing is on, and the
// toggle works mid-session.
func TestTracingToggle(t *testing.T) {
	db := openTPCH(t, withCSE())
	res, err := db.Run(bench.Table2SQL())
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Error("tracing off by default, but Run attached a trace")
	}

	db.SetTracing(true)
	if !db.Tracing() {
		t.Fatal("SetTracing(true) not reflected")
	}
	res, err = db.Run(bench.Table2SQL())
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Trace.Len() == 0 {
		t.Fatal("tracing on, but Run attached no trace events")
	}
	if len(res.Trace.OfKind(obs.EvFinal)) != 1 {
		t.Error("trace must end with a final event")
	}
	data, err := res.Trace.JSON()
	if err != nil || len(data) == 0 {
		t.Errorf("trace JSON rendering failed: %v", err)
	}
}

// TestMetricsRegistry: running batches populates the registry, and the dump
// carries the CSE counters.
func TestMetricsRegistry(t *testing.T) {
	db := openTPCH(t, withCSE())
	if _, err := db.Run(bench.Table2SQL()); err != nil {
		t.Fatal(err)
	}
	snap := db.Metrics().Snapshot()
	if snap["csedb_batches_total"] != 1 {
		t.Errorf("csedb_batches_total = %g, want 1", snap["csedb_batches_total"])
	}
	if snap["csedb_statements_total"] == 0 {
		t.Error("csedb_statements_total not incremented")
	}
	if snap["cse_used_total"] == 0 {
		t.Error("the Table 2 batch uses CSEs; cse_used_total must be > 0")
	}
	if snap["cse_pruned_h4_total"] == 0 {
		t.Error("the Table 2 batch prunes via Heuristic 4; counter must be > 0")
	}
	if snap["exec_seconds_count"] != 1 {
		t.Errorf("exec_seconds_count = %g, want 1", snap["exec_seconds_count"])
	}
	if snap["optimize_seconds_count"] != 1 {
		t.Errorf("optimize_seconds_count = %g, want 1", snap["optimize_seconds_count"])
	}
	if snap["spool_materialize_seconds_count"] == 0 {
		t.Error("the Table 2 batch materializes spools; spool_materialize_seconds must record them")
	}
	dump := db.Metrics().Dump()
	for _, want := range []string{
		"csedb_batches_total 1",
		"# TYPE optimize_seconds histogram",
		"# TYPE spool_materialize_seconds histogram",
		"exec_worker_utilization",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("metrics dump missing %q", want)
		}
	}
}

// TestOptionsTracing: the Options.Tracing knob enables tracing from Open.
func TestOptionsTracing(t *testing.T) {
	s := *withCSE()
	db := csedb.Open(csedb.Options{CSE: &s, Tracing: true})
	if err := db.LoadTPCH(0.01, 42); err != nil {
		t.Fatal(err)
	}
	out, _, err := db.Optimize(bench.Table2SQL())
	if err != nil {
		t.Fatal(err)
	}
	if out.Trace == nil || out.Trace.Len() == 0 {
		t.Error("Options.Tracing must make Optimize record a trace")
	}
}
