package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/csedb"
	"repro/internal/bench"
)

// runDebugSmoke is the CI end-to-end check of the observability stack: it
// opens a database with span tracing and the debug HTTP server on, runs the
// Table 2 batch twice (the repeat run exercises the result-cache hit path),
// scrapes the server over real HTTP, and asserts that every phase histogram
// recorded observations and that a Chrome trace is downloadable. The scraped
// metrics text and the trace are optionally written out as CI artifacts.
func runDebugSmoke(sf float64, seed int64, metricsOut, chromeTrace string) error {
	db := csedb.Open(csedb.Options{SpanTracing: true, DebugAddr: "127.0.0.1:0"})
	if err := db.DebugServerError(); err != nil {
		return fmt.Errorf("debug server: %w", err)
	}
	defer db.StopDebugServer()
	if err := db.LoadTPCH(sf, seed); err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		if _, err := db.Run(bench.Table2SQL()); err != nil {
			return err
		}
	}
	base := "http://" + db.DebugAddr()

	metrics, err := httpGetOK(base + "/metrics")
	if err != nil {
		return err
	}
	for _, h := range []string{
		"optimize_seconds", "exec_seconds",
		"spool_materialize_seconds", "cache_lookup_seconds",
	} {
		n, err := histogramCount(metrics, h)
		if err != nil {
			return err
		}
		if n == 0 {
			return fmt.Errorf("phase histogram %s recorded no observations", h)
		}
		fmt.Printf("debug-smoke: %s_count = %d\n", h, n)
	}
	if metricsOut != "" {
		if err := os.WriteFile(metricsOut, metrics, 0o644); err != nil {
			return err
		}
		fmt.Printf("debug-smoke: metrics written to %s\n", metricsOut)
	}

	fr, err := httpGetOK(base + "/flightrecorder")
	if err != nil {
		return err
	}
	var flight struct {
		Recent []struct {
			Statements int               `json:"statements"`
			Spans      []json.RawMessage `json:"spans"`
		} `json:"recent"`
	}
	if err := json.Unmarshal(fr, &flight); err != nil {
		return fmt.Errorf("/flightrecorder is not valid JSON: %w", err)
	}
	if len(flight.Recent) != 2 || len(flight.Recent[0].Spans) == 0 {
		return fmt.Errorf("/flightrecorder: want 2 recent span-traced batches, got %d", len(flight.Recent))
	}

	trace, err := httpGetOK(base + "/trace/last")
	if err != nil {
		return err
	}
	if !strings.Contains(string(trace), `"traceEvents"`) {
		return fmt.Errorf("/trace/last is not a Chrome trace")
	}
	if chromeTrace != "" {
		if err := os.WriteFile(chromeTrace, trace, 0o644); err != nil {
			return err
		}
		fmt.Printf("debug-smoke: Chrome trace written to %s\n", chromeTrace)
	}
	fmt.Println("debug-smoke: ok")
	return nil
}

func httpGetOK(url string) ([]byte, error) {
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return body, nil
}

// histogramCount extracts the <name>_count sample from a Prometheus text
// exposition.
func histogramCount(metrics []byte, name string) (int64, error) {
	prefix := name + "_count "
	for _, line := range strings.Split(string(metrics), "\n") {
		if strings.HasPrefix(line, prefix) {
			return strconv.ParseInt(strings.TrimSpace(strings.TrimPrefix(line, prefix)), 10, 64)
		}
	}
	return 0, fmt.Errorf("metrics exposition has no %s_count sample", name)
}
