// Command csebench regenerates the paper's evaluation tables and figures
// (§6) on the synthetic TPC-H database.
//
// Usage:
//
//	csebench -exp all -sf 0.05 -seed 42
//	csebench -exp table1 -v
//
// Experiments: table1 (query batch Q1–Q3), table2 (stacked CSEs, Q1–Q4),
// table3 (nested query), table4 (complex 8-table joins), figure8 (scale-up
// sweep), viewmaint (§6.4), overhead (no-sharing optimizer overhead),
// crossover (lattice-vs-greedy MQO search over batch sizes 4→N), scanspeed
// (columnar plane vs row-at-a-time path on scan/filter/agg statements),
// serving (many-client load through the coalescing server, on vs off).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/csedb"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/obs"
)

func main() {
	var (
		exp          = flag.String("exp", "all", "experiment: table1|table2|table3|table4|figure8|viewmaint|overhead|ablation|repeated|crossover|scanspeed|serving|all")
		sf           = flag.Float64("sf", 0.05, "TPC-H scale factor (1.0 = paper's 1GB)")
		seed         = flag.Int64("seed", 42, "data generation seed")
		reps         = flag.Int("reps", 0, "measurement repetitions per point (0 = default 3); 1 speeds up smoke runs")
		maxN         = flag.Int("figure8-max", 10, "largest batch size for figure8")
		crossMax     = flag.Int("crossover-max", 64, "largest batch size for the lattice-vs-greedy crossover sweep")
		search       = flag.String("search", "auto", "MQO subset-search strategy for table experiments: auto|lattice|greedy")
		deltaN       = flag.Int("delta-rows", 200, "delta rows for view maintenance")
		verbose      = flag.Bool("v", false, "print candidate CSE details")
		format       = flag.String("format", "text", "output format: text|csv|json")
		parallelism  = flag.Int("parallelism", 0, "executor worker pool: 0=GOMAXPROCS (parallel, default), 1=sequential, n>1=n workers")
		traceJSON    = flag.String("trace-json", "", "enable optimizer tracing and write the last table experiment's CSE-run trace as JSON to this file")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
		memProfile   = flag.String("memprofile", "", "write an allocation profile (taken at exit) to this file")
		debugSmoke   = flag.Bool("debug-smoke", false, "run the observability smoke instead of experiments: start the debug server, run a batch twice, scrape /metrics and /trace/last, and assert the phase histograms are populated")
		metricsOut   = flag.String("metrics-out", "", "with -debug-smoke, write the scraped /metrics text to this file")
		chromeTrace  = flag.String("chrome-trace", "", "with -debug-smoke, write the /trace/last Chrome trace to this file")
		servClients  = flag.Int("serving-clients", 0, "serving experiment: concurrent client sessions (0 = default 12)")
		servRequests = flag.Int("serving-requests", 0, "serving experiment: requests per client (0 = default 40)")
		servShapes   = flag.Int("serving-shapes", 0, "serving experiment: distinct query shapes (0 = default 6)")
		servWindow   = flag.Duration("serving-window", 0, "serving experiment: coalescing window (0 = server default)")
	)
	flag.Parse()

	if *debugSmoke {
		if err := runDebugSmoke(*sf, *seed, *metricsOut, *chromeTrace); err != nil {
			fmt.Fprintf(os.Stderr, "csebench: debug-smoke: %v\n", err)
			os.Exit(1)
		}
		return
	}

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "csebench: %v\n", err)
		os.Exit(2)
	}

	switch *format {
	case "text", "csv", "json":
	default:
		fmt.Fprintf(os.Stderr, "csebench: unknown -format %q (want text, csv, or json)\n", *format)
		os.Exit(2)
	}

	strategy, err := core.ParseSearchStrategy(*search)
	if err != nil {
		fmt.Fprintf(os.Stderr, "csebench: -search: %v\n", err)
		os.Exit(2)
	}

	cfg := bench.Config{ScaleFactor: *sf, Seed: *seed, Reps: *reps, Parallelism: *parallelism, Tracing: *traceJSON != "", Search: strategy}
	asJSON := *format == "json"
	jsonOut := map[string]any{
		"scale_factor": *sf,
		"seed":         *seed,
		"parallelism":  *parallelism,
	}
	if !asJSON {
		fmt.Printf("csebench: TPC-H scale factor %g, seed %d\n\n", *sf, *seed)
	}

	run := func(name string) bool {
		return *exp == "all" || *exp == name
	}
	failed := false
	report := func(err error) {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		failed = true
	}
	var lastTrace *obs.Trace
	table := func(name, title, sql string) {
		if !run(name) {
			return
		}
		tr, err := bench.RunTable(cfg, title, sql)
		switch {
		case err != nil:
			report(err)
		case asJSON:
			jsonOut[name] = tr.JSONObject()
		case *format == "csv":
			fmt.Printf("# %s\n%s", name, tr.CSV())
		default:
			fmt.Println(tr.Format())
			printCandidates(*verbose, tr)
		}
		if err == nil && *traceJSON != "" {
			if m := tr.Runs[bench.WithCSE]; m != nil && m.Trace != nil {
				lastTrace = m.Trace
			}
		}
	}

	table("table1", "Table 1: Query batch (Q1, Q2, Q3) of Example 1", bench.Table1SQL())
	table("table2", "Table 2: Query batch (Q1, Q2, Q3, Q4) — stacked CSEs (§6.2)", bench.Table2SQL())
	table("table3", "Table 3: Nested query (§6.3, TPC-H Q11-like)", bench.Table3SQL())
	table("table4", "Table 4: Complex joins — all 8 TPC-H tables (§6.5)", bench.Table4SQL())
	if run("figure8") {
		points, err := bench.RunFigure8(cfg, *maxN)
		switch {
		case err != nil:
			report(err)
		case asJSON:
			jsonOut["figure8"] = bench.Figure8JSONObjects(points)
		case *format == "csv":
			fmt.Print(bench.CSVFigure8(points))
		default:
			fmt.Println(bench.FormatFigure8(points))
		}
	}
	if run("viewmaint") {
		no, err := bench.RunViewMaintenance(cfg, bench.NoCSE, *deltaN)
		if err != nil {
			report(err)
		} else if with, err := bench.RunViewMaintenance(cfg, bench.WithCSE, *deltaN); err != nil {
			report(err)
		} else if asJSON {
			jsonOut["viewmaint"] = map[string]any{
				"no_cse_exec_s": no.ExecTime.Seconds(),
				"cse_exec_s":    with.ExecTime.Seconds(),
				"candidates":    with.Candidates,
				"views":         with.Views,
			}
		} else {
			fmt.Println(bench.FormatMaintenance(no, with))
		}
	}
	if run("ablation") {
		if asJSON {
			fmt.Fprintln(os.Stderr, "skipping ablation: text output only")
		} else if err := runAblations(cfg); err != nil {
			report(err)
		}
	}
	if run("crossover") {
		points, err := bench.RunCrossover(cfg, *crossMax)
		switch {
		case err != nil:
			report(err)
		case asJSON:
			jsonOut["crossover"] = bench.CrossoverJSONObjects(points)
		case *format == "csv":
			fmt.Print(bench.CSVCrossover(points))
		default:
			fmt.Println(bench.FormatCrossover(points))
		}
	}
	if run("scanspeed") {
		points, err := bench.RunScanSpeed(cfg)
		switch {
		case err != nil:
			report(err)
		case asJSON:
			jsonOut["scanspeed"] = bench.ScanSpeedJSONObjects(points)
		case *format == "csv":
			fmt.Print(bench.CSVScanSpeed(points))
		default:
			fmt.Println(bench.FormatScanSpeed(points))
		}
	}
	if run("serving") {
		points, err := bench.RunServing(cfg, bench.ServingOptions{
			Clients:           *servClients,
			RequestsPerClient: *servRequests,
			Shapes:            *servShapes,
			Window:            *servWindow,
		})
		switch {
		case err != nil:
			report(err)
		case asJSON:
			jsonOut["serving"] = bench.ServingJSONObjects(points)
		default:
			fmt.Println(bench.FormatServing(points))
		}
	}
	if run("repeated") {
		rm, err := bench.RunRepeated(cfg, bench.Table1SQL())
		switch {
		case err != nil:
			report(err)
		case asJSON:
			jsonOut["repeated"] = rm.JSONObject()
		default:
			fmt.Println(rm.FormatRepeated())
		}
	}
	if run("overhead") {
		ov, err := bench.RunOverhead(cfg)
		if err != nil {
			report(err)
		} else if asJSON {
			jsonOut["overhead"] = map[string]any{
				"opt_s_no_cse":   ov.OptNoCSE.Seconds(),
				"opt_s_with_cse": ov.OptWithCSE.Seconds(),
				"candidates":     ov.Candidates,
			}
		} else {
			fmt.Printf("Overhead on a batch with no sharable subexpressions:\n")
			fmt.Printf("  optimization time, CSE machinery off: %.4fs\n", ov.OptNoCSE.Seconds())
			fmt.Printf("  optimization time, CSE machinery on:  %.4fs\n", ov.OptWithCSE.Seconds())
			fmt.Printf("  candidates generated: %d\n\n", ov.Candidates)
		}
	}
	if asJSON && !failed {
		data, err := bench.MarshalReport(jsonOut)
		if err != nil {
			report(err)
		} else {
			fmt.Println(string(data))
		}
	}
	if *traceJSON != "" && !failed {
		if lastTrace == nil {
			fmt.Fprintln(os.Stderr, "csebench: -trace-json set but no table experiment produced an optimizer trace")
			failed = true
		} else if data, err := lastTrace.JSON(); err != nil {
			report(err)
		} else if err := os.WriteFile(*traceJSON, append(data, '\n'), 0o644); err != nil {
			report(err)
		} else if !asJSON {
			fmt.Printf("optimizer trace (%d events) written to %s\n", lastTrace.Len(), *traceJSON)
		}
	}
	// Stop profiles explicitly: os.Exit skips deferred calls.
	if err := stopProfiles(); err != nil {
		fmt.Fprintf(os.Stderr, "csebench: %v\n", err)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// startProfiles begins CPU profiling and arranges a heap profile at exit;
// the returned stop function must run before the process exits.
func startProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}

func printCandidates(verbose bool, tr *bench.TableRow) {
	if !verbose {
		return
	}
	for _, m := range tr.Runs[1:] {
		fmt.Printf("  [%s] candidates:\n", m.Mode)
		for i, l := range m.Labels {
			used := ""
			for _, u := range m.UsedCSEs {
				if u == i {
					used = "  (used in final plan)"
				}
			}
			fmt.Printf("    E%d: %s%s\n", i+1, strings.TrimSpace(l), used)
		}
	}
	fmt.Println()
}

// runAblations times the optimizer-effort knobs of DESIGN.md on Table 1's
// no-heuristics run and Table 2's heuristics run.
func runAblations(cfg bench.Config) error {
	measure := func(label, sql string, tweak func(*core.Settings)) error {
		s := core.DefaultSettings()
		tweak(&s)
		db := csedb.Open(csedb.Options{CSE: &s})
		if err := db.LoadTPCH(cfg.ScaleFactor, cfg.Seed); err != nil {
			return err
		}
		var best time.Duration
		var opts int
		for i := 0; i < 3; i++ {
			start := time.Now()
			out, _, err := db.Optimize(sql)
			if err != nil {
				return err
			}
			d := time.Since(start)
			if i == 0 || d < best {
				best = d
			}
			opts = out.Stats.CSEOptimizations
		}
		fmt.Printf("  %-44s %10.4fs  [%d reoptimizations]\n", label, best.Seconds(), opts)
		return nil
	}
	fmt.Println("Ablations (optimization time, min of 3):")
	cases := []struct {
		label, sql string
		tweak      func(*core.Settings)
	}{
		{"subset pruning: exhaustive 2^N-1", bench.Table1SQL(), func(s *core.Settings) {
			s.Heuristics = false
			s.SubsetPruning = false
		}},
		{"subset pruning: Propositions 5.4-5.6", bench.Table1SQL(), func(s *core.Settings) {
			s.Heuristics = false
		}},
		{"subset pruning: interval rule (extension)", bench.Table1SQL(), func(s *core.Settings) {
			s.Heuristics = false
			s.ExtendedSubsetPruning = true
		}},
		{"history reuse on (§5.4)", bench.Table1SQL(), func(s *core.Settings) {
			s.Heuristics = false
		}},
		{"history reuse off", bench.Table1SQL(), func(s *core.Settings) {
			s.Heuristics = false
			s.NoHistoryReuse = true
		}},
		{"charge at common dominator (§5.2 LCA)", bench.Table2SQL(), func(s *core.Settings) {}},
		{"charge at batch root", bench.Table2SQL(), func(s *core.Settings) {
			s.ChargeAtRoot = true
		}},
	}
	for _, c := range cases {
		if err := measure(c.label, c.sql, c.tweak); err != nil {
			return err
		}
	}
	fmt.Println()
	return nil
}
