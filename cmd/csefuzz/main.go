// Command csefuzz is a long-running differential soak tester: it generates
// seeded batches of similar queries with internal/qgen, runs each one through
// the full internal/difftest config matrix (CSE on/off, sequential/parallel,
// chunk sizes, cache, heuristic-knob sweeps), and on any mismatch or
// invariant violation shrinks the batch to a minimal reproducer and writes a
// JSON crash report plus a ready-to-paste regression test.
//
// Usage:
//
//	go run ./cmd/csefuzz -seeds 200              # 200 TPC-H batches, full matrix
//	go run ./cmd/csefuzz -mode smoke -schemas both
//	go run ./cmd/csefuzz -seeds 0 -duration 10m  # time-bounded soak
//
// The process exits 0 if every batch agreed across all configurations and 1
// if any crash was recorded (see -report for the artifact path).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/difftest"
	"repro/internal/qgen"
)

type crashReport struct {
	Schema         string `json:"schema"`
	SchemaSeed     int64  `json:"schema_seed,omitempty"`
	BatchSeed      int64  `json:"batch_seed"`
	Error          string `json:"error"`
	SQL            string `json:"sql"`
	ShrunkSQL      string `json:"shrunk_sql"`
	ShrunkQueries  int    `json:"shrunk_queries"`
	ShrinkError    string `json:"shrink_error,omitempty"`
	RegressionTest string `json:"regression_test"`
}

type soakReport struct {
	Mode        string        `json:"mode"`
	ScaleFactor float64       `json:"scale_factor"`
	Batches     int           `json:"batches"`
	Configs     int           `json:"configs"`
	Elapsed     string        `json:"elapsed"`
	Crashes     []crashReport `json:"crashes"`
}

func main() {
	var (
		seeds      = flag.Int("seeds", 50, "number of seeded batches per schema (0 = unbounded, use -duration)")
		start      = flag.Int64("start", 1, "first batch seed")
		sf         = flag.Float64("sf", 0.01, "TPC-H scale factor for the oracle database")
		mode       = flag.String("mode", "full", "config matrix: full or smoke")
		schemas    = flag.String("schemas", "tpch", "schemas to soak: tpch, random, or both")
		maxQ       = flag.Int("max-queries", 5, "maximum queries per generated batch")
		duration   = flag.Duration("duration", 0, "stop after this long (0 = run all seeds)")
		reportPath = flag.String("report", "csefuzz-report.json", "JSON crash report path")
		maxCrashes = flag.Int("max-crashes", 3, "stop after this many distinct crashes")
		verbose    = flag.Bool("v", false, "log every batch")
	)
	flag.Parse()

	var cfgs []difftest.Config
	switch *mode {
	case "full":
		cfgs = difftest.Matrix()
	case "smoke":
		cfgs = difftest.Smoke()
	default:
		fmt.Fprintf(os.Stderr, "csefuzz: unknown -mode %q (want full or smoke)\n", *mode)
		os.Exit(2)
	}

	rep := soakReport{Mode: *mode, ScaleFactor: *sf, Configs: len(cfgs)}
	began := time.Now()
	deadline := time.Time{}
	if *duration > 0 {
		deadline = began.Add(*duration)
	}
	expired := func() bool { return !deadline.IsZero() && time.Now().After(deadline) }

	soak := func(o *difftest.Oracle, schemaName string, schemaSeed int64, gen func(seed int64) *qgen.Batch) {
		for i := 0; ; i++ {
			if *seeds > 0 && i >= *seeds {
				return
			}
			if expired() || len(rep.Crashes) >= *maxCrashes {
				return
			}
			seed := *start + int64(i)
			b := gen(seed)
			err := o.CheckBatch(b)
			if *verbose || err != nil {
				status := "ok"
				if err != nil {
					status = "FAIL"
				}
				fmt.Printf("[%s seed %d] %d queries: %s\n", schemaName, seed, b.NumQueries(), status)
			}
			rep.Batches++
			if err == nil {
				continue
			}
			c := crashReport{
				Schema:     schemaName,
				SchemaSeed: schemaSeed,
				BatchSeed:  seed,
				Error:      err.Error(),
				SQL:        b.SQL(),
			}
			shrunk, serr := difftest.Shrink(o, b)
			if serr != nil {
				// Shrinking never returns a batch that stopped failing, but it
				// can error if the failure is flaky; keep the original repro.
				c.ShrinkError = serr.Error()
				shrunk = b
			}
			c.ShrunkSQL = shrunk.SQL()
			c.ShrunkQueries = shrunk.NumQueries()
			name := fmt.Sprintf("Csefuzz%sSeed%d", schemaName, seed)
			c.RegressionTest = difftest.RegressionTest(name, shrunk, err)
			rep.Crashes = append(rep.Crashes, c)
			fmt.Printf("--- crash (shrunk to %d queries) ---\n%s\n%s\n",
				c.ShrunkQueries, c.ShrunkSQL, c.RegressionTest)
		}
	}

	if *schemas == "tpch" || *schemas == "both" {
		o, err := difftest.NewTPCH(*sf, cfgs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "csefuzz: building TPC-H oracle: %v\n", err)
			os.Exit(2)
		}
		soak(o, "TPCH", 0, func(seed int64) *qgen.Batch {
			return qgen.New(qgen.Config{Seed: seed, MaxQueries: *maxQ}).Batch()
		})
	}
	if *schemas == "random" || *schemas == "both" {
		for schemaSeed := int64(1); schemaSeed <= 4; schemaSeed++ {
			if expired() || len(rep.Crashes) >= *maxCrashes {
				break
			}
			s := qgen.RandomSchema(schemaSeed)
			o := difftest.New(cfgs)
			if err := o.InstallSchema(s); err != nil {
				fmt.Fprintf(os.Stderr, "csefuzz: installing random schema %d: %v\n", schemaSeed, err)
				os.Exit(2)
			}
			ss := schemaSeed
			soak(o, fmt.Sprintf("Random%d", ss), ss, func(seed int64) *qgen.Batch {
				return qgen.New(qgen.Config{Seed: seed, Schema: s, MaxQueries: *maxQ}).Batch()
			})
		}
	}

	rep.Elapsed = time.Since(began).Round(time.Millisecond).String()
	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "csefuzz: encoding report: %v\n", err)
		os.Exit(2)
	}
	if err := os.WriteFile(*reportPath, append(blob, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "csefuzz: writing %s: %v\n", *reportPath, err)
		os.Exit(2)
	}
	fmt.Printf("csefuzz: %d batches x %d configs in %s, %d crash(es); report: %s\n",
		rep.Batches, rep.Configs, rep.Elapsed, len(rep.Crashes), *reportPath)
	if len(rep.Crashes) > 0 {
		os.Exit(1)
	}
}
