// Command csedb is an interactive shell and batch runner for the engine.
//
// Usage:
//
//	csedb -sf 0.05                       # interactive shell on TPC-H data
//	csedb -sf 0.05 -f queries.sql        # run a SQL file as one batch
//	csedb -sf 0.05 -e "select ...; ..."  # run a batch from the command line
//	csedb -explain -e "..."              # show the plan instead of rows
//	csedb -serve 127.0.0.1:8632          # HTTP/JSON server with coalescing
//
// Shell meta-commands:
//
//	\explain            show the next batch's optimized plan, not its rows
//	\explain analyze    execute the next batch and show the plan with actuals
//	\describe           show the next batch's CSE candidates and decisions
//	\trace on|off       record and print the optimizer decision trace
//	\debug on [addr]    span tracing + debug HTTP server (default 127.0.0.1:0)
//	\debug off          stop the debug server and span tracing
//	\debug              show debug server status
//	\metrics            dump the metrics registry
//	\cache              show cross-batch result-cache state and counters
//	\cache clear        drop every cached spool result
//	\cache on|off       enable/disable the result cache
//	\cse on|off         toggle CSE optimization
//	\heuristics on|off  toggle the §4.3 pruning heuristics
//	\search [strategy]  show or set the MQO subset search: auto|lattice|greedy
//	\parallel on|off|N  executor pool: on=GOMAXPROCS, off=sequential, N workers
//	\colplane on|off    columnar data plane (off = row-at-a-time oracle path)
//	\tables             list tables
//	\q                  quit
//
// Input accumulates until a line containing only "go" (SQL Server style),
// which runs everything buffered as ONE optimized batch — the way to
// exercise multi-query optimization interactively. Separate statements
// within the batch with semicolons.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/csedb"
	"repro/internal/core"
	"repro/internal/server"
)

func main() {
	var (
		sf          = flag.Float64("sf", 0.05, "TPC-H scale factor")
		seed        = flag.Int64("seed", 42, "data generation seed")
		file        = flag.String("f", "", "SQL file to execute as one batch")
		execSQL     = flag.String("e", "", "SQL batch to execute")
		explain     = flag.Bool("explain", false, "print plans instead of executing")
		noCSE       = flag.Bool("no-cse", false, "disable CSE optimization")
		search      = flag.String("search", "auto", "MQO subset-search strategy: auto|lattice|greedy")
		maxRows     = flag.Int("max-rows", 20, "rows printed per statement")
		parallelism = flag.Int("parallelism", 0, "executor worker pool: 0=GOMAXPROCS (parallel, default), 1=sequential, n>1=n workers")
		colPlane    = flag.Bool("colplane", true, "use the columnar data plane; false forces the row-at-a-time oracle path")
		trace       = flag.Bool("trace", false, "record the optimizer decision trace and print it after each batch")
		debugAddr   = flag.String("debug", "", "start the debug HTTP server on this address and enable span tracing (e.g. 127.0.0.1:6060)")

		serveAddr     = flag.String("serve", "", "serve HTTP/JSON queries on this address instead of running a shell (e.g. 127.0.0.1:8632; \":0\" picks a port)")
		serveWindow   = flag.Duration("serve-window", 0, "coalescing window for -serve (0 = server default)")
		serveBatch    = flag.Int("serve-max-batch", 0, "count trigger for -serve: flush the window at this many pending requests (0 = default)")
		serveInflight = flag.Int("serve-max-inflight", 0, "admission bound for -serve: reject beyond this many in-flight requests (0 = default)")
		serveNoCoal   = flag.Bool("serve-no-coalesce", false, "disable the coalescing window for -serve (every request runs alone)")
		servePlans    = flag.Int("serve-plan-cache", 0, "plan-shape cache entries for -serve (0 = default, negative disables)")
	)
	flag.Parse()

	strategy, err := core.ParseSearchStrategy(*search)
	if err != nil {
		fatal(err)
	}
	settings := core.DefaultSettings()
	settings.EnableCSE = !*noCSE
	settings.SearchStrategy = strategy
	db := csedb.Open(csedb.Options{
		CSE:             &settings,
		ExecParallelism: *parallelism,
		Tracing:         *trace,
		SpanTracing:     *debugAddr != "",
		DebugAddr:       *debugAddr,
		DisableColPlane: !*colPlane,
	})
	if *debugAddr != "" {
		if err := db.DebugServerError(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "debug server listening on http://%s\n", db.DebugAddr())
	}
	fmt.Fprintf(os.Stderr, "loading TPC-H data (sf=%g, seed=%d)...\n", *sf, *seed)
	if err := db.LoadTPCH(*sf, *seed); err != nil {
		fatal(err)
	}

	switch {
	case *serveAddr != "":
		serve(db, *serveAddr, server.Options{
			Window:           *serveWindow,
			MaxBatch:         *serveBatch,
			MaxInflight:      *serveInflight,
			NoCoalesce:       *serveNoCoal,
			PlanCacheEntries: *servePlans,
		})
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		runBatch(db, string(data), *explain, *maxRows)
	case *execSQL != "":
		runBatch(db, *execSQL, *explain, *maxRows)
	default:
		repl(db, *maxRows)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "csedb: %v\n", err)
	os.Exit(1)
}

// serve runs the HTTP/JSON serving layer until SIGINT/SIGTERM, then drains:
// the listener stops, in-flight coalescing windows flush and complete, and
// only then does the process exit.
func serve(db *csedb.DB, addr string, opts server.Options) {
	srv := server.New(db, opts)
	h := server.NewHTTPServer(srv)
	bound, err := h.Start(addr)
	if err != nil {
		fatal(err)
	}
	mode := "coalescing"
	if opts.NoCoalesce {
		mode = "no-coalesce"
	}
	fmt.Fprintf(os.Stderr, "serving on http://%s (%s; POST /v1/session, POST /v1/query, GET /v1/stats)\n", bound, mode)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "shutting down: draining in-flight batches...")
	if err := h.Close(); err != nil {
		fatal(err)
	}
}

func runBatch(db *csedb.DB, sql string, explain bool, maxRows int) {
	if explain {
		plan, err := db.Explain(sql)
		if err != nil {
			fatal(err)
		}
		fmt.Println(plan)
		return
	}
	res, err := db.Run(sql)
	if err != nil {
		fatal(err)
	}
	printResult(res, maxRows)
}

func printResult(res *csedb.BatchResult, maxRows int) {
	for i, st := range res.Statements {
		if len(res.Statements) > 1 {
			fmt.Printf("-- statement %d (%d rows)\n", i+1, len(st.Rows))
		}
		fmt.Println(strings.Join(st.Names, "\t"))
		for r, row := range st.Rows {
			if r >= maxRows {
				fmt.Printf("... (%d more rows)\n", len(st.Rows)-maxRows)
				break
			}
			fmt.Println(row.String())
		}
	}
	fmt.Printf("-- optimized in %v (est cost %.2f", res.OptimizeTime, res.EstimatedCost)
	if res.Stats.Candidates > 0 {
		fmt.Printf(", %d CSE candidates, %d used", res.Stats.Candidates, len(res.Stats.UsedCSEs))
	}
	fmt.Printf("), executed in %v", res.ExecTime)
	if es := res.ExecStats; es != nil {
		if es.Sequential {
			fmt.Printf(" (sequential")
			if es.FallbackReason != "" {
				fmt.Printf(": %s", es.FallbackReason)
			}
			fmt.Printf(", busy %v)", es.BusyTime.Round(time.Microsecond))
		} else {
			fmt.Printf(" (%d workers, %d spool waves, %.0f%% utilized, busy %v)",
				es.Workers, len(es.Waves), 100*es.Utilization(), es.BusyTime.Round(time.Microsecond))
		}
	}
	fmt.Println()
	if res.Trace != nil {
		fmt.Println("-- optimizer trace")
		fmt.Print(res.Trace.Text())
	}
}

func repl(db *csedb.DB, maxRows int) {
	fmt.Println("csedb shell — separate statements with ';', run the buffered batch with 'go', quit with \\q")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	explainNext := false
	describeNext := false
	analyzeNext := false
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("csedb> ")
		} else {
			fmt.Print("   ... ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if handleMeta(db, trimmed, &explainNext, &describeNext, &analyzeNext) {
				return
			}
			prompt()
			continue
		}
		isGo := strings.EqualFold(trimmed, "go")
		if !isGo {
			buf.WriteString(line)
			buf.WriteByte('\n')
		}
		if isGo {
			sql := strings.TrimSpace(buf.String())
			buf.Reset()
			if sql == "" {
				prompt()
				continue
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						fmt.Fprintf(os.Stderr, "internal error: %v\n", r)
					}
				}()
				if analyzeNext {
					text, err := db.ExplainAnalyze(sql)
					if err != nil {
						fmt.Fprintf(os.Stderr, "error: %v\n", err)
					} else {
						fmt.Print(text)
					}
					analyzeNext = false
					return
				}
				if explainNext {
					plan, err := db.Explain(sql)
					if err != nil {
						fmt.Fprintf(os.Stderr, "error: %v\n", err)
					} else {
						fmt.Println(plan)
					}
					explainNext = false
					return
				}
				if describeNext {
					out, _, err := db.Optimize(sql)
					if err != nil {
						fmt.Fprintf(os.Stderr, "error: %v\n", err)
					} else {
						// The memo is reachable through the optimizer.
						fmt.Println(out.Describe(out.Optimizer.M))
					}
					describeNext = false
					return
				}
				res, err := db.Run(sql)
				if err != nil {
					fmt.Fprintf(os.Stderr, "error: %v\n", err)
					return
				}
				printResult(res, maxRows)
			}()
		}
		prompt()
	}
}

// handleMeta processes a meta-command; it returns true to quit.
func handleMeta(db *csedb.DB, cmd string, explainNext, describeNext, analyzeNext *bool) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\q", "\\quit":
		return true
	case "\\explain":
		if len(fields) == 2 && fields[1] == "analyze" {
			*analyzeNext = true
			fmt.Println("next batch will be executed and shown with per-operator actuals")
			break
		}
		*explainNext = true
		fmt.Println("next batch will be explained, not executed")
	case "\\trace":
		if len(fields) != 2 || (fields[1] != "on" && fields[1] != "off") {
			fmt.Fprintln(os.Stderr, "usage: \\trace on|off")
			break
		}
		db.SetTracing(fields[1] == "on")
		fmt.Printf("optimizer tracing %s\n", fields[1])
	case "\\debug":
		switch {
		case len(fields) == 1:
			if addr := db.DebugAddr(); addr != "" {
				fmt.Printf("debug server listening on http://%s (span tracing %v)\n", addr, db.SpanTracing())
			} else {
				fmt.Println("debug server off")
			}
		case fields[1] == "on":
			addr := "127.0.0.1:0"
			if len(fields) == 3 {
				addr = fields[2]
			}
			bound, err := db.StartDebugServer(addr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
				break
			}
			db.SetSpanTracing(true)
			fmt.Printf("debug server listening on http://%s — try /metrics, /flightrecorder, /trace/last\n", bound)
		case fields[1] == "off":
			if err := db.StopDebugServer(); err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
			}
			db.SetSpanTracing(false)
			fmt.Println("debug server off, span tracing off")
		default:
			fmt.Fprintln(os.Stderr, "usage: \\debug [on [addr]|off]")
		}
	case "\\metrics":
		fmt.Print(db.Metrics().Dump())
	case "\\cache":
		rc := db.ResultCache()
		switch {
		case len(fields) == 1:
			if rc == nil {
				fmt.Println("result cache off")
			} else {
				fmt.Printf("result cache: %s\n", rc.Stats())
			}
		case len(fields) == 2 && fields[1] == "clear":
			if rc != nil {
				rc.Clear()
			}
			fmt.Println("result cache cleared")
		case len(fields) == 2 && fields[1] == "on":
			db.SetCacheBudget(0)
			fmt.Println("result cache on")
		case len(fields) == 2 && fields[1] == "off":
			db.SetCacheBudget(-1)
			fmt.Println("result cache off")
		default:
			fmt.Fprintln(os.Stderr, "usage: \\cache [clear|on|off]")
		}
	case "\\describe":
		*describeNext = true
		fmt.Println("next batch's CSE decisions will be described, not executed")
	case "\\tables":
		for _, name := range db.Catalog().Names() {
			fmt.Println(name)
		}
	case "\\parallel":
		if len(fields) != 2 {
			fmt.Fprintln(os.Stderr, "usage: \\parallel on|off|N")
			break
		}
		switch arg := fields[1]; arg {
		case "on":
			db.SetExecParallelism(0)
			fmt.Println("parallel execution on (GOMAXPROCS workers)")
		case "off":
			db.SetExecParallelism(1)
			fmt.Println("parallel execution off (sequential)")
		default:
			n, err := strconv.Atoi(arg)
			if err != nil || n < 1 {
				fmt.Fprintln(os.Stderr, "usage: \\parallel on|off|N")
				break
			}
			db.SetExecParallelism(n)
			fmt.Printf("parallel execution with %d workers\n", n)
		}
	case "\\colplane":
		if len(fields) != 2 || (fields[1] != "on" && fields[1] != "off") {
			fmt.Fprintln(os.Stderr, "usage: \\colplane on|off")
			break
		}
		db.SetColPlane(fields[1] == "on")
		if db.ColPlane() {
			fmt.Println("columnar data plane on")
		} else {
			fmt.Println("columnar data plane off (row-at-a-time oracle path)")
		}
	case "\\search":
		if len(fields) == 1 {
			fmt.Printf("search strategy: %s\n", db.SearchStrategy())
			break
		}
		strategy, err := core.ParseSearchStrategy(fields[1])
		if len(fields) != 2 || err != nil {
			fmt.Fprintln(os.Stderr, "usage: \\search [auto|lattice|greedy]")
			break
		}
		db.SetSearchStrategy(strategy)
		fmt.Printf("search strategy: %s\n", strategy)
	case "\\cse", "\\heuristics":
		if len(fields) != 2 || (fields[1] != "on" && fields[1] != "off") {
			fmt.Fprintf(os.Stderr, "usage: %s on|off\n", fields[0])
			break
		}
		s := db.Settings()
		on := fields[1] == "on"
		if fields[0] == "\\cse" {
			s.EnableCSE = on
		} else {
			s.Heuristics = on
		}
		db.SetSettings(s)
		fmt.Printf("%s %s\n", strings.TrimPrefix(fields[0], "\\"), fields[1])
	default:
		fmt.Fprintf(os.Stderr, "unknown meta-command %s\n", fields[0])
	}
	return false
}
