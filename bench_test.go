package repro_test

// Benchmarks regenerating the paper's evaluation (§6): one benchmark per
// table and figure, each with a sub-benchmark per optimizer mode, so
//
//	go test -bench=. -benchmem
//
// reports the execution-time columns of every table. Custom metrics carry
// the remaining columns: opt-ms (optimization time), est-cost (estimated
// cost), cands (candidate CSEs) and cse-opts (CSE reoptimizations).
//
// The dataset defaults to scale factor 0.05 (the paper used TPC-H SF=1 on
// 2007 hardware); set -benchtime and the CSEDB_SF environment variable to
// push the scale up.

import (
	"os"
	"strconv"
	"testing"

	"repro/csedb"
	"repro/internal/bench"
	"repro/internal/core"
)

func benchConfig() bench.Config {
	cfg := bench.Config{ScaleFactor: 0.05, Seed: 42}
	if v := os.Getenv("CSEDB_SF"); v != "" {
		if sf, err := strconv.ParseFloat(v, 64); err == nil && sf > 0 {
			cfg.ScaleFactor = sf
		}
	}
	return cfg
}

// benchBatch measures a batch under each mode. Databases are rebuilt per
// iteration set (outside the timer); each iteration re-optimizes and
// re-executes the batch, which is what the paper's numbers time.
func benchBatch(b *testing.B, sql string) {
	cfg := benchConfig()
	for _, mode := range []bench.Mode{bench.NoCSE, bench.WithCSE, bench.NoHeuristics} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			db, err := bench.NewDB(cfg, mode)
			if err != nil {
				b.Fatal(err)
			}
			var optNs, cands, cseOpts int64
			var est float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := db.Run(sql)
				if err != nil {
					b.Fatal(err)
				}
				optNs += res.OptimizeTime.Nanoseconds()
				est = res.EstimatedCost
				cands = int64(res.Stats.Candidates)
				cseOpts = int64(res.Stats.CSEOptimizations)
			}
			b.StopTimer()
			b.ReportMetric(float64(optNs)/float64(b.N)/1e6, "opt-ms/op")
			b.ReportMetric(est, "est-cost")
			b.ReportMetric(float64(cands), "cands")
			b.ReportMetric(float64(cseOpts), "cse-opts")
		})
	}
}

// BenchmarkTable1QueryBatch reproduces Table 1: the Example 1 batch
// (Q1, Q2, Q3).
func BenchmarkTable1QueryBatch(b *testing.B) { benchBatch(b, bench.Table1SQL()) }

// BenchmarkTable2StackedCSE reproduces Table 2: Q1–Q4 with stacked CSEs
// (§6.2).
func BenchmarkTable2StackedCSE(b *testing.B) { benchBatch(b, bench.Table2SQL()) }

// BenchmarkTable3NestedQuery reproduces Table 3: the TPC-H Q11-like nested
// query (§6.3).
func BenchmarkTable3NestedQuery(b *testing.B) { benchBatch(b, bench.Table3SQL()) }

// BenchmarkTable4ComplexJoins reproduces Table 4: two 8-table joins (§6.5).
func BenchmarkTable4ComplexJoins(b *testing.B) { benchBatch(b, bench.Table4SQL()) }

// BenchmarkFigure8Scaleup reproduces Figure 8: batches of 2..10 similar
// queries; per batch size, the CSE-optimized execution is timed and the
// estimated-cost series is attached as metrics.
func BenchmarkFigure8Scaleup(b *testing.B) {
	cfg := benchConfig()
	for n := 2; n <= 10; n += 2 {
		sql := bench.Figure8SQL(n)
		b.Run("queries="+strconv.Itoa(n), func(b *testing.B) {
			dbOff, err := bench.NewDB(cfg, bench.NoCSE)
			if err != nil {
				b.Fatal(err)
			}
			dbOn, err := bench.NewDB(cfg, bench.WithCSE)
			if err != nil {
				b.Fatal(err)
			}
			off, err := dbOff.Run(sql)
			if err != nil {
				b.Fatal(err)
			}
			var costOn, optNs float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := dbOn.Run(sql)
				if err != nil {
					b.Fatal(err)
				}
				costOn = res.EstimatedCost
				optNs += float64(res.OptimizeTime.Nanoseconds())
			}
			b.StopTimer()
			b.ReportMetric(off.EstimatedCost, "est-cost-nocse")
			b.ReportMetric(costOn, "est-cost-cse")
			b.ReportMetric(optNs/float64(b.N)/1e6, "opt-ms/op")
		})
	}
}

// BenchmarkViewMaintenance reproduces §6.4: three materialized views
// maintained jointly after an insert into customer. Each op includes the
// unavoidable fresh-database setup (maintenance mutates the views), so the
// maintenance time itself is reported as the maint-ms metric.
func BenchmarkViewMaintenance(b *testing.B) {
	cfg := benchConfig()
	for _, mode := range []bench.Mode{bench.NoCSE, bench.WithCSE} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			var maintNs float64
			for i := 0; i < b.N; i++ {
				m, err := bench.RunViewMaintenance(cfg, mode, 200)
				if err != nil {
					b.Fatal(err)
				}
				maintNs += float64(m.ExecTime.Nanoseconds())
			}
			b.ReportMetric(maintNs/float64(b.N)/1e6, "maint-ms/op")
		})
	}
}

// BenchmarkSignatureOverhead quantifies the §6 claim that collecting table
// signatures on queries with no sharing opportunities has unmeasurable
// overhead: it times optimization of an unrelated-query batch with the CSE
// machinery off and on.
func BenchmarkSignatureOverhead(b *testing.B) {
	cfg := benchConfig()
	sql := bench.NoSharingSQL()
	for _, mode := range []bench.Mode{bench.NoCSE, bench.WithCSE} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			db, err := bench.NewDB(cfg, mode)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := db.Optimize(sql); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// optimizeOnly times just the optimization phase of a batch under given
// settings (used by the ablation benchmarks).
func optimizeOnly(b *testing.B, tweak func(*core.Settings), sql string) {
	cfg := benchConfig()
	s := core.DefaultSettings()
	tweak(&s)
	db := csedb.Open(csedb.Options{CSE: &s})
	if err := db.LoadTPCH(cfg.ScaleFactor, cfg.Seed); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.Optimize(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLCA compares charging CSE initial costs at the
// consumers' common dominator (the paper's LCA, §5.2) against charging at
// the batch root. Plan quality is identical; the dominator variant prunes
// single-consumer plans earlier.
func BenchmarkAblationLCA(b *testing.B) {
	sql := bench.Table2SQL()
	b.Run("charge-at-dominator", func(b *testing.B) {
		optimizeOnly(b, func(s *core.Settings) {}, sql)
	})
	b.Run("charge-at-root", func(b *testing.B) {
		optimizeOnly(b, func(s *core.Settings) { s.ChargeAtRoot = true }, sql)
	})
}

// BenchmarkAblationHistoryReuse measures §5.4's optimization-history reuse
// on the no-heuristics Table 1 run (dozens of reoptimizations share
// per-group alternatives when reuse is on).
func BenchmarkAblationHistoryReuse(b *testing.B) {
	sql := bench.Table1SQL()
	b.Run("history-reuse", func(b *testing.B) {
		optimizeOnly(b, func(s *core.Settings) { s.Heuristics = false }, sql)
	})
	b.Run("no-history-reuse", func(b *testing.B) {
		optimizeOnly(b, func(s *core.Settings) {
			s.Heuristics = false
			s.NoHistoryReuse = true
		}, sql)
	})
}

// BenchmarkAblationSubsetPruning compares the §5.3 subset-enumeration
// strategies: exhaustive (2^N−1), Propositions 5.4–5.6, and the interval
// strengthening of Proposition 5.6.
func BenchmarkAblationSubsetPruning(b *testing.B) {
	sql := bench.Table1SQL()
	b.Run("exhaustive", func(b *testing.B) {
		optimizeOnly(b, func(s *core.Settings) {
			s.Heuristics = false
			s.SubsetPruning = false
		}, sql)
	})
	b.Run("propositions", func(b *testing.B) {
		optimizeOnly(b, func(s *core.Settings) { s.Heuristics = false }, sql)
	})
	b.Run("interval-rule", func(b *testing.B) {
		optimizeOnly(b, func(s *core.Settings) {
			s.Heuristics = false
			s.ExtendedSubsetPruning = true
		}, sql)
	})
}
