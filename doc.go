// Package repro reproduces Zhou, Larson, Freytag & Lehner, "Efficient
// Exploitation of Similar Subexpressions for Query Processing" (SIGMOD
// 2007): a transformation-based SQL optimizer extended with a covering-
// subexpression (CSE) phase that detects similar SPJG subexpressions via
// table signatures, constructs candidate covering expressions with
// cost-bound pruning heuristics, and selects among them cost-based — over a
// from-scratch memo optimizer, executor, and TPC-H-shaped data generator.
//
// The public API lives in the csedb subpackage; the paper's contribution is
// implemented in internal/core. See README.md for the layout and
// EXPERIMENTS.md for the reproduced evaluation.
package repro
