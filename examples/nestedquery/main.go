// Nestedquery: a decision-support query whose HAVING clause contains a
// scalar subquery over the same join as the main block (§6.3 of the paper,
// modeled on TPC-H Q11). The optimizer shares the aggregation between the
// outer query and the subquery.
package main

import (
	"fmt"
	"log"

	"repro/csedb"
	"repro/internal/core"
)

// Nations whose total discount exceeds 1/25th of the global total — the
// main block and the subquery both aggregate l_discount over
// customer⋈orders⋈lineitem.
const query = `
select c_nationkey, n_name, sum(l_discount) as totaldisc
from customer, orders, lineitem, nation
where c_custkey = o_custkey and o_orderkey = l_orderkey and c_nationkey = n_nationkey
group by c_nationkey, n_name
having sum(l_discount) > (
  select sum(l_discount) / 25
  from customer, orders, lineitem
  where c_custkey = o_custkey and o_orderkey = l_orderkey)
order by totaldisc desc
`

func main() {
	settings := core.DefaultSettings()
	db := csedb.Open(csedb.Options{CSE: &settings})
	if err := db.LoadTPCH(0.02, 11); err != nil {
		log.Fatal(err)
	}

	res, err := db.Run(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("nations above the 1/25 discount threshold:")
	for _, row := range res.Statements[0].Rows {
		fmt.Println("  " + row.String())
	}

	fmt.Printf("\nCSE candidates: %d, used: %v\n", res.Stats.Candidates, res.Stats.UsedCSEs)
	for i, l := range res.Stats.CandidateLabels {
		fmt.Printf("  E%d: %s\n", i+1, l)
	}
	fmt.Printf("estimated cost with sharing %.2f vs %.2f without\n",
		res.Stats.FinalCost, res.Stats.BaseCost)

	plan, err := db.Explain(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nplan (the subquery reads the same spool as the main block):")
	fmt.Println(plan)
}
