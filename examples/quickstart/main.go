// Quickstart: open a database, load data, run a batch, and see what the
// covering-subexpression optimizer did.
package main

import (
	"fmt"
	"log"

	"repro/csedb"
)

func main() {
	// Open an in-memory database with default settings (CSE optimization
	// and heuristic pruning on) and load a small TPC-H-shaped dataset.
	db := csedb.Open(csedb.Options{})
	if err := db.LoadTPCH(0.01, 1); err != nil {
		log.Fatal(err)
	}

	// Two similar queries submitted together: both join customer, orders,
	// and lineitem with the same date filter but different aggregations.
	// The optimizer detects the shared subexpression, builds one covering
	// aggregate, computes it once, and answers both queries from it.
	batch := `
select c_mktsegment, sum(l_extendedprice) as revenue
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and o_orderdate < '1996-01-01'
group by c_mktsegment;

select c_nationkey, sum(l_extendedprice) as revenue, sum(l_quantity) as volume
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and o_orderdate < '1996-01-01'
group by c_nationkey;
`
	res, err := db.Run(batch)
	if err != nil {
		log.Fatal(err)
	}

	for i, st := range res.Statements {
		fmt.Printf("-- statement %d\n", i+1)
		for _, row := range st.Rows {
			fmt.Println(row.String())
		}
	}

	fmt.Printf("\nCSE candidates considered: %d, used in final plan: %d\n",
		res.Stats.Candidates, len(res.Stats.UsedCSEs))
	for i, label := range res.Stats.CandidateLabels {
		fmt.Printf("  E%d: %s\n", i+1, label)
	}
	fmt.Printf("estimated cost %.2f (plain optimization would cost %.2f)\n",
		res.Stats.FinalCost, res.Stats.BaseCost)

	// EXPLAIN shows the shared spool and the per-query compensation.
	plan, err := db.Explain(batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nplan:")
	fmt.Println(plan)
}
