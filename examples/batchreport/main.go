// Batchreport: a reporting application fires a batch of related summary
// queries — the multi-query-optimization scenario that motivates the paper.
// The example runs the same report with and without CSE optimization and
// compares the work done.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/csedb"
	"repro/internal/core"
)

// The report: regional revenue, market-segment revenue, top nations by
// order volume, and shipping-mode volume — all built on the same
// customer⋈orders⋈lineitem core with one shared date window.
const report = `
select r_name, sum(l_extendedprice) as revenue
from customer, orders, lineitem, nation, region
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and c_nationkey = n_nationkey and n_regionkey = r_regionkey
  and o_orderdate < '1997-01-01'
group by r_name;

select c_mktsegment, sum(l_extendedprice) as revenue, count(*) as items
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and o_orderdate < '1997-01-01'
group by c_mktsegment;

select n_name, sum(l_quantity) as volume
from customer, orders, lineitem, nation
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and c_nationkey = n_nationkey and o_orderdate < '1997-01-01'
group by n_name
order by volume desc
limit 5;

select c_nationkey, max(l_extendedprice) as biggest
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and o_orderdate < '1997-01-01'
group by c_nationkey;
`

func main() {
	run := func(name string, enableCSE bool) (*csedb.BatchResult, time.Duration) {
		settings := core.DefaultSettings()
		settings.EnableCSE = enableCSE
		db := csedb.Open(csedb.Options{CSE: &settings})
		if err := db.LoadTPCH(0.02, 7); err != nil {
			log.Fatal(err)
		}
		res, err := db.Run(report)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s optimize %-12v execute %-12v est cost %9.2f",
			name, res.OptimizeTime.Round(time.Microsecond), res.ExecTime.Round(time.Microsecond), res.EstimatedCost)
		if res.Stats.Candidates > 0 {
			fmt.Printf("  (CSEs: %d considered, %v used)", res.Stats.Candidates, res.Stats.UsedCSEs)
		}
		fmt.Println()
		return res, res.ExecTime
	}

	fmt.Println("running the 4-query report batch:")
	_, tOff := run("no CSE:", false)
	resOn, tOn := run("with CSE:", true)
	if tOn > 0 {
		fmt.Printf("\nexecution speedup from shared subexpressions: %.2fx\n", tOff.Seconds()/tOn.Seconds())
	}

	fmt.Println("\nreport output (first statement — revenue by region):")
	for _, row := range resOn.Statements[0].Rows {
		fmt.Println("  " + row.String())
	}
	fmt.Println("\ntop nations by volume (third statement):")
	for _, row := range resOn.Statements[2].Rows {
		fmt.Println("  " + row.String())
	}
}
