// Viewmaint: maintaining several similar materialized views after a base
// table update (§6.4 of the paper). The maintenance expressions — one per
// affected view — are optimized together as a batch, so their shared
// delta⋈orders⋈lineitem work is done once.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/csedb"
	"repro/internal/core"
	"repro/internal/sqltypes"
)

const viewDDL = `
create materialized view seg_summary as
select c_nationkey, c_mktsegment, sum(l_extendedprice) as revenue, sum(l_quantity) as volume
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey and o_orderdate < '1996-07-01'
group by c_nationkey, c_mktsegment;

create materialized view nation_summary as
select c_nationkey, sum(l_extendedprice) as revenue, count(*) as items
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey and o_orderdate < '1996-07-01'
group by c_nationkey;

create materialized view nation_max as
select c_nationkey, max(l_extendedprice) as biggest
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey and o_orderdate < '1996-07-01'
group by c_nationkey;
`

func main() {
	maintain := func(enableCSE bool) time.Duration {
		settings := core.DefaultSettings()
		settings.EnableCSE = enableCSE
		db := csedb.Open(csedb.Options{CSE: &settings})
		if err := db.LoadTPCH(0.02, 3); err != nil {
			log.Fatal(err)
		}
		if _, err := db.Run(viewDDL); err != nil {
			log.Fatal(err)
		}

		// New customers arrive; all three views reference customer and must
		// be maintained.
		delta := make([]csedb.Row, 150)
		for i := range delta {
			delta[i] = csedb.Row{
				sqltypes.NewInt(int64(800000 + i)),
				sqltypes.NewString(fmt.Sprintf("Customer#%09d", 800000+i)),
				sqltypes.NewString("new customer"),
				sqltypes.NewInt(int64(i % 25)),
				sqltypes.NewString("22-222-222-2222"),
				sqltypes.NewFloat(float64(100 + i)),
				sqltypes.NewString("MACHINERY"),
				sqltypes.NewString("recent signup"),
			}
		}
		res, err := db.InsertWithViewMaintenance("customer", delta)
		if err != nil {
			log.Fatal(err)
		}
		mode := "without CSE"
		if enableCSE {
			mode = "with CSE"
		}
		fmt.Printf("%-12s maintained %d views in %v (optimize %v)",
			mode, len(res.ViewsMaintained), res.ExecTime.Round(time.Microsecond),
			res.OptimizeTime.Round(time.Microsecond))
		if res.Stats.Candidates > 0 {
			fmt.Printf(" — %d shared maintenance subexpression(s)", len(res.Stats.UsedCSEs))
		}
		fmt.Println()

		// Show a sample of a maintained view.
		if enableCSE {
			rows, err := db.QueryView("nation_summary")
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("nation_summary now has %d groups; first few:\n", len(rows))
			for i, r := range rows {
				if i >= 3 {
					break
				}
				fmt.Println("  " + r.String())
			}
		}
		return res.ExecTime
	}

	tOff := maintain(false)
	tOn := maintain(true)
	if tOn > 0 {
		fmt.Printf("\nmaintenance speedup from shared subexpressions: %.2fx\n",
			tOff.Seconds()/tOn.Seconds())
	}
}
