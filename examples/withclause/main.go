// Withclause: the paper's §6.1 point about user-defined sharing. SQL lets
// users mark sharable subexpressions with WITH, but "only one rewrite
// achieves optimal performance ... an optimizer can consider all options and
// choose among them in a cost-based manner". This example defines a raw-join
// CTE, references it from two queries, and shows the optimizer discarding
// the user's granularity in favour of a tighter covering aggregate.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/csedb"
)

const batch = `
with col as (
  select c_nationkey, c_mktsegment, l_extendedprice, l_quantity
  from customer, orders, lineitem
  where c_custkey = o_custkey and o_orderkey = l_orderkey
    and o_orderdate < '1996-07-01')
select c_nationkey, sum(l_extendedprice) as revenue
from col
group by c_nationkey;

with col as (
  select c_nationkey, c_mktsegment, l_extendedprice, l_quantity
  from customer, orders, lineitem
  where c_custkey = o_custkey and o_orderkey = l_orderkey
    and o_orderdate < '1996-07-01')
select c_mktsegment, sum(l_quantity) as volume
from col
group by c_mktsegment;
`

func main() {
	db := csedb.Open(csedb.Options{})
	if err := db.LoadTPCH(0.02, 5); err != nil {
		log.Fatal(err)
	}

	fmt.Println("The user marked the raw 3-way join as sharable with WITH.")
	fmt.Println("The optimizer inlines it, re-detects the similarity, and shares")
	fmt.Println("something better — a covering AGGREGATE over the join:")
	fmt.Println()

	out, md, err := db.Optimize(batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out.Describe(out.Optimizer.M))
	_ = md

	res, err := db.Run(batch)
	if err != nil {
		log.Fatal(err)
	}
	used := res.Stats.CandidateLabels[res.Stats.UsedCSEs[0]]
	fmt.Printf("chosen covering subexpression: %s\n", used)
	if strings.HasPrefix(used, "γ(") {
		fmt.Println("→ aggregated before spooling: smaller work table than the")
		fmt.Println("  user's raw-join CTE would have materialized.")
	}
	for id, n := range res.SpoolRows {
		fmt.Printf("spool CSE%d materialized once: %d rows\n", id, n)
	}
	fmt.Printf("\nestimated cost %.2f with sharing vs %.2f without\n",
		res.Stats.FinalCost, res.Stats.BaseCost)
	fmt.Printf("first result rows: %s | %s\n",
		res.Statements[0].Rows[0].String(), res.Statements[1].Rows[0].String())
}
