package opt

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/logical"
	"repro/internal/memo"
	"repro/internal/parser"
	"repro/internal/scalar"
	"repro/internal/storage"
	"repro/internal/tpch"
)

func TestAltUsesKey(t *testing.T) {
	a := &Alt{Uses: map[int]int{2: 1, 0: 3}}
	b := &Alt{Uses: map[int]int{0: 3, 2: 1}}
	if a.usesKey() != b.usesKey() {
		t.Error("usage keys must be order-independent")
	}
	if (&Alt{}).usesKey() != "" {
		t.Error("empty uses → empty key")
	}
	c := &Alt{Uses: map[int]int{0: 2, 2: 1}}
	if a.usesKey() == c.usesKey() {
		t.Error("different counts must produce different keys")
	}
}

func TestMergeUses(t *testing.T) {
	dst := mergeUses(nil, map[int]int{1: 2})
	dst = mergeUses(dst, map[int]int{1: 1, 3: 1})
	if dst[1] != 3 || dst[3] != 1 {
		t.Errorf("mergeUses = %v", dst)
	}
	if mergeUses(nil, nil) != nil {
		t.Error("merging nothing stays nil")
	}
}

func TestPruneAlts(t *testing.T) {
	o := NewOptimizer(memo.NewMemo(nil))
	o.AltCap = 2
	mk := func(cost float64, uses map[int]int) *Alt {
		return &Alt{Plan: &Plan{}, Cost: cost, Uses: uses}
	}
	alts := []*Alt{
		mk(10, map[int]int{1: 2}),
		mk(12, map[int]int{1: 2}), // dominated: same usage, higher cost
		mk(11, map[int]int{2: 2}),
		mk(30, nil), // clean alternative, expensive
		mk(20, map[int]int{1: 1, 2: 1}),
	}
	out := o.pruneAlts(alts)
	// Cheapest per usage key survives; the cap is 2 but the clean
	// alternative is always retained.
	foundClean := false
	keyCount := map[string]int{}
	for _, a := range out {
		keyCount[a.usesKey()]++
		if len(a.Uses) == 0 {
			foundClean = true
		}
	}
	if !foundClean {
		t.Error("the CSE-free alternative must always survive pruning")
	}
	for k, n := range keyCount {
		if n > 1 {
			t.Errorf("usage key %q kept %d alternatives", k, n)
		}
	}
	for _, a := range out {
		if a.Cost == 12 {
			t.Error("dominated alternative survived")
		}
	}
	if len(out) > o.AltCap+1 {
		t.Errorf("pruned to %d alternatives, cap %d (+clean)", len(out), o.AltCap)
	}
}

func TestHasSingleUse(t *testing.T) {
	if hasSingleUse(map[int]int{1: 2, 2: 3}) {
		t.Error("no single use here")
	}
	if !hasSingleUse(map[int]int{1: 2, 2: 1}) {
		t.Error("candidate 2 is used once")
	}
	if hasSingleUse(nil) {
		t.Error("empty uses")
	}
}

func TestLayoutEqual(t *testing.T) {
	if !layoutEqual(nil, nil) {
		t.Error("nil layouts equal")
	}
	if layoutEqual([]scalar.ColID{1}, nil) {
		t.Error("lengths differ")
	}
	if !layoutEqual([]scalar.ColID{1, 2}, []scalar.ColID{1, 2}) {
		t.Error("equal layouts")
	}
	if layoutEqual([]scalar.ColID{1, 2}, []scalar.ColID{2, 1}) {
		t.Error("order matters")
	}
}

// miniCandidate builds a real memo for two similar single-join statements
// and a hand-made candidate whose expression is statement 1's join group and
// whose consumers are both statements' join groups.
func miniCandidate(t *testing.T) (*memo.Memo, *Candidate) {
	t.Helper()
	cat := catalog.New()
	for _, tab := range tpch.Schemas() {
		if err := cat.Add(tab); err != nil {
			t.Fatal(err)
		}
	}
	st := storage.NewStore()
	if err := tpch.Generate(tpch.Config{ScaleFactor: 0.002, Seed: 3}, cat, st); err != nil {
		t.Fatal(err)
	}
	stmts, err := parser.Parse(`
select c_name from customer, orders where c_custkey = o_custkey and c_acctbal > 0;
select c_name from customer, orders where c_custkey = o_custkey and c_acctbal < 0`)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := logical.BuildBatch(stmts, cat)
	if err != nil {
		t.Fatal(err)
	}
	m, err := memo.Build(batch)
	if err != nil {
		t.Fatal(err)
	}
	groups := m.SignatureGroups()["F|customer,orders"]
	if len(groups) != 2 {
		t.Fatalf("join groups = %d", len(groups))
	}
	expr := m.Group(groups[0])
	cand := &Candidate{
		ID:        0,
		ExprGroup: expr.ID,
		SpoolCols: expr.OutCols,
		Consumers: groups,
		Subs:      map[memo.GroupID]*Substitute{},
		Stmts:     map[int]bool{0: true, 1: true},
		Rows:      expr.Rows,
		Bytes:     expr.Rows * expr.RowSize,
		Tables:    expr.Sig.Tables,
	}
	return m, cand
}

// chargeCandidate behavior: single-consumer alternatives discarded,
// multi-consumer ones charged exactly once.
func TestChargeCandidateAccounting(t *testing.T) {
	// Build a minimal real memo so chargeOptions can cost the candidate's
	// expression group.
	m, cand := miniCandidate(t)
	o := NewOptimizer(m)
	if _, err := o.OptimizeBase(); err != nil {
		t.Fatal(err)
	}
	o.PrepareCSE([]*Candidate{cand})

	exprW, err := o.Winner(cand.ExprGroup)
	if err != nil {
		t.Fatal(err)
	}
	opts, err := o.chargeOptions(cand, []int{cand.ID})
	if err != nil {
		t.Fatal(err)
	}
	init := opts[0].initCost
	// The initial cost is the expression cost plus the write cost (plus a
	// possible projection normalizing the spool layout).
	if init < exprW.Lower+cand.WriteCost() {
		t.Errorf("initial cost %g below C_E + C_W = %g", init, exprW.Lower+cand.WriteCost())
	}

	alts := []*Alt{
		{Plan: &Plan{}, Cost: 100, Uses: nil},                    // no use: kept as-is
		{Plan: &Plan{}, Cost: 50, Uses: map[int]int{cand.ID: 1}}, // single use: discarded
		{Plan: &Plan{}, Cost: 60, Uses: map[int]int{cand.ID: 2}}, // charged once
	}
	out, err := o.chargeCandidate(alts, cand, []int{cand.ID})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("alternatives after charging = %d, want 2", len(out))
	}
	if out[0].Cost != 100 {
		t.Errorf("unused alternative cost changed: %g", out[0].Cost)
	}
	charged := out[1]
	wantCost := 60 + init
	if diff := charged.Cost - wantCost; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("charged cost = %g, want %g (usage 60 + initial %g)", charged.Cost, wantCost, init)
	}
	if _, still := charged.Uses[cand.ID]; still {
		t.Error("the candidate's usage entry must be settled after charging")
	}
	if charged.Choices[cand.ID] == nil {
		t.Error("charging must record the chosen expression plan")
	}
}

// TestOptimizeWithCSEsEndToEnd drives the full §5 machinery at the opt
// level: a hand-built candidate with real substitutes, enabled-set
// optimization, usage accounting, and charging.
func TestOptimizeWithCSEsEndToEnd(t *testing.T) {
	m, cand := miniCandidate(t)
	// Give both consumers identity-style substitutes: scan the spool,
	// apply the consumer's own local filter as the residual, rename.
	for _, cid := range cand.Consumers {
		g := m.Group(cid)
		sub := &Substitute{}
		// Residual: the consumer's full conjunct set minus the join (the
		// spool applied only the join in this hand-built setup — it IS
		// consumer 0's group, so consumer 0 needs no residual).
		if cid != cand.ExprGroup {
			// Rebuild consumer 1's filter over the spool's columns by base
			// alignment: here we cheat and reuse the consumer's conjuncts
			// columns only when they exist in the spool (they don't — the
			// spaces differ), so use no residual: the test asserts
			// accounting, not covering semantics.
			sub = &Substitute{}
		}
		for i, c := range g.OutCols {
			from := cand.SpoolCols[i%len(cand.SpoolCols)]
			sub.Renames = append(sub.Renames, Rename{From: from, To: c})
		}
		cand.Subs[cid] = sub
	}
	o := NewOptimizer(m)
	base, err := o.OptimizeBase()
	if err != nil {
		t.Fatal(err)
	}
	o.PrepareCSE([]*Candidate{cand})
	res, used, err := o.OptimizeWithCSEs([]int{cand.ID})
	if err != nil {
		t.Fatal(err)
	}
	// Whatever the outcome, accounting must close: no leftover uses, and a
	// used candidate must carry a plan.
	if len(used) > 0 {
		if res.CSEs[cand.ID] == nil {
			t.Error("used candidate has no expression plan attached")
		}
		spools := map[int]bool{}
		res.Root.UsedSpoolIDs(spools)
		if !spools[cand.ID] {
			t.Error("plan claims to use the candidate but scans no spool")
		}
	}
	if res.Cost > base.Cost {
		t.Errorf("enabled-set optimization must never be worse than base: %g vs %g", res.Cost, base.Cost)
	}
	if err := errFromFormat(res, m); err != nil {
		t.Error(err)
	}
	_ = o.Doms()
	o.ReleaseCaches()
	if _, err := o.BaseCost(); err != nil {
		t.Error(err)
	}
	if cand.ReadBase() <= 0 {
		t.Error("ReadBase must be positive")
	}
}

// errFromFormat smoke-tests Result.Format.
func errFromFormat(res *Result, m *memo.Memo) error {
	if s := res.Format(m.Md); len(s) == 0 {
		return fmtError("empty plan rendering")
	}
	return nil
}

type fmtError string

func (e fmtError) Error() string { return string(e) }

func TestPhysOpStrings(t *testing.T) {
	ops := []PhysOp{PScan, PIndexScan, PFilter, PHashJoin, PNLJoin, PMergeJoin,
		PLookupJoin, PHashAgg, PStreamAgg, PSort, PProject, PRoot, PSeq, PSpoolScan}
	seen := map[string]bool{}
	for _, op := range ops {
		s := op.String()
		if s == "" || seen[s] {
			t.Errorf("op %d has bad/duplicate name %q", op, s)
		}
		seen[s] = true
	}
	if PhysOp(99).String() == "" {
		t.Error("unknown op must still render")
	}
}
