package opt

import (
	"repro/internal/memo"
	"repro/internal/scalar"
)

// Lookup-join costing: per outer row a binary-search probe, plus a
// random-ish fetch per matching inner row.
const costLookupProbe = 0.02

func lookupJoinCost(outerRows, fetched, outRows float64) float64 {
	return outerRows*costLookupProbe + fetched*costIndexRow + outRows*costRowCPU
}

// lookupAlternatives builds index nested-loop join plans for a join
// expression: one per orientation whose inner side is a bare table scan with
// an index (or clustered order) on a join key column. This is the plan shape
// that makes the paper's Example 7 consumer "extremely cheap due to an index
// on o_orderdate" — a tiny outer feeding point lookups instead of a full
// scan of the other side.
func (o *Optimizer) lookupAlternatives(e *memo.Expr, g *memo.Group) ([]*Plan, error) {
	var alts []*Plan
	for flip := 0; flip < 2; flip++ {
		outerGID, innerGID := e.Children[0], e.Children[1]
		if flip == 1 {
			outerGID, innerGID = innerGID, outerGID
		}
		innerG := o.M.Group(innerGID)
		if len(innerG.Exprs) != 1 || innerG.Exprs[0].Op != memo.OpScan {
			continue
		}
		innerScan := innerG.Exprs[0]
		rel := o.M.Md.Rel(innerScan.Rel)

		ow, err := o.winner(outerGID)
		if err != nil {
			return nil, err
		}
		outer := ow.Plan
		outerCols := colSetOf(outer.Cols)
		innerCols := colSetOf(innerG.OutCols)

		// Find an indexed (or clustered) join key on the inner side.
		var outerKey, innerKey scalar.ColID
		var innerOrd = -1
		var residual []*scalar.Expr
		for _, c := range scalar.Conjuncts(e.Filter) {
			if innerOrd < 0 {
				if a, b, ok := c.IsColEqCol(); ok {
					var oc, ic scalar.ColID
					switch {
					case outerCols.Contains(a) && innerCols.Contains(b):
						oc, ic = a, b
					case outerCols.Contains(b) && innerCols.Contains(a):
						oc, ic = b, a
					default:
						residual = append(residual, c)
						continue
					}
					ord := o.M.Md.Col(ic).Ord
					clustered := len(rel.Tab.OrderedBy) > 0 && rel.Tab.OrderedBy[0] == ord
					if rel.Tab.HasIndexOn(ord) || clustered {
						outerKey, innerKey, innerOrd = oc, ic, ord
						continue
					}
				}
			}
			residual = append(residual, c)
		}
		if innerOrd < 0 {
			continue
		}

		var resFilter *scalar.Expr
		if len(residual) > 0 {
			resFilter = scalar.And(residual...)
		}
		est := &memo.Estimator{Md: o.M.Md}
		fetched := outer.Rows * est.BaseRows(innerScan.Rel) / maxFloat(est.NDV(innerKey), 1)
		if fetched < outer.Rows {
			fetched = outer.Rows
		}
		cost := outer.Cost + lookupJoinCost(outer.Rows, fetched, g.Rows)
		if innerScan.Filter != nil || resFilter != nil {
			cost += fetched * costPredicate
		}
		alts = append(alts, &Plan{
			Op:          PLookupJoin,
			Children:    []*Plan{outer},
			Rel:         innerScan.Rel,
			IndexOrd:    innerOrd,
			LookupKey:   outerKey,
			InnerFilter: innerScan.Filter,
			InnerCols:   innerG.OutCols,
			Filter:      resFilter,
			Cols:        append(append([]scalar.ColID(nil), outer.Cols...), innerG.OutCols...),
			Provided:    outer.Provided,
			Rows:        g.Rows,
			Cost:        cost,
		})
	}
	return alts, nil
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
