package opt

import (
	"testing"

	"repro/internal/scalar"
	"repro/internal/sqltypes"
)

func TestExtractBounds(t *testing.T) {
	col := scalar.ColID(5)
	lt := func(v int64) *scalar.Expr { return scalar.Cmp(scalar.OpLt, scalar.Col(col), scalar.ConstInt(v)) }
	ge := func(v int64) *scalar.Expr { return scalar.Cmp(scalar.OpGe, scalar.Col(col), scalar.ConstInt(v)) }

	b, res, ok := extractBounds(scalar.And(ge(3), lt(9)), col)
	if !ok || res != nil {
		t.Fatalf("bounds not extracted: ok=%v residual=%v", ok, res)
	}
	if b.Lo.Int() != 3 || !b.LoInc || b.Hi.Int() != 9 || b.HiInc {
		t.Errorf("bounds = %+v", b)
	}

	// Tightening: two upper bounds keep the smaller.
	b2, _, _ := extractBounds(scalar.And(lt(9), lt(5)), col)
	if b2.Hi.Int() != 5 {
		t.Errorf("upper bound not tightened: %+v", b2)
	}

	// Equality pins both ends.
	b3, _, _ := extractBounds(scalar.Eq(scalar.Col(col), scalar.ConstInt(7)), col)
	if b3.Lo.Int() != 7 || b3.Hi.Int() != 7 || !b3.LoInc || !b3.HiInc {
		t.Errorf("equality bounds = %+v", b3)
	}

	// Flipped operand order normalizes.
	b4, _, _ := extractBounds(scalar.Cmp(scalar.OpGt, scalar.ConstInt(4), scalar.Col(col)), col)
	if b4.Hi.Int() != 4 || b4.HiInc {
		t.Errorf("flipped bound = %+v", b4)
	}

	// Other conjuncts become the residual; unrelated columns don't bound.
	other := scalar.Eq(scalar.Col(99), scalar.ConstInt(1))
	b5, res5, ok5 := extractBounds(scalar.And(ge(1), other), col)
	if !ok5 || res5 == nil || b5.Lo.Int() != 1 {
		t.Errorf("residual handling: %+v %v %v", b5, res5, ok5)
	}

	// No bound at all.
	if _, _, ok := extractBounds(other, col); ok {
		t.Error("unrelated filter must not produce bounds")
	}
	// NULL constants don't bound.
	if _, _, ok := extractBounds(scalar.Eq(scalar.Col(col), scalar.Const(sqltypes.Null)), col); ok {
		t.Error("NULL comparison must not produce bounds")
	}
}

func TestIndexScanCostRegimes(t *testing.T) {
	// A selective lookup must be far cheaper than a wide range.
	if indexScanCost(10) >= indexScanCost(10000) {
		t.Error("index cost must grow with fetched rows")
	}
	// Per-row random fetch must exceed sequential per-row cost.
	if costIndexRow <= costRowCPU {
		t.Error("random fetches must be costlier than sequential rows")
	}
}

// TestCostMonotonicity: the cost primitives grow with their volume inputs.
func TestCostMonotonicity(t *testing.T) {
	if SpoolWriteCost(10, 1000) >= SpoolWriteCost(100, 100000) {
		t.Error("spool write cost must grow")
	}
	pairs := [][2]float64{{100, 10_000}, {1000, 100_000}, {100_000, 10_000_000}}
	var prev float64
	for i, p := range pairs {
		c := scanCost(p[0], p[1]/p[0], true)
		if i > 0 && c <= prev {
			t.Errorf("scanCost not increasing at %v", p)
		}
		prev = c
	}
	if hashJoinCost(10, 10, 10) >= hashJoinCost(1000, 1000, 1000) {
		t.Error("hash join cost must grow")
	}
	if mergeJoinCost(10, 10, 10) >= mergeJoinCost(1000, 1000, 1000) {
		t.Error("merge join cost must grow")
	}
	if sortCost(10) >= sortCost(10000) {
		t.Error("sort cost must grow")
	}
	if sortCost(1) != 0 {
		t.Error("sorting one row is free")
	}
	if streamAggCost(100, 10) >= hashAggCost(100, 10) {
		t.Error("stream aggregation must be cheaper than hashing the same input")
	}
}
