package opt

import (
	"fmt"
	"strings"

	"repro/internal/logical"
	"repro/internal/memo"
	"repro/internal/scalar"
)

// PhysOp enumerates physical operators.
type PhysOp uint8

// Physical operators.
const (
	PScan PhysOp = iota
	PIndexScan
	PFilter
	PHashJoin
	PNLJoin
	PMergeJoin
	PLookupJoin
	PHashAgg
	PStreamAgg
	PSort
	PProject
	PRoot
	PSeq
	PSpoolScan
)

func (op PhysOp) String() string {
	switch op {
	case PScan:
		return "Scan"
	case PIndexScan:
		return "IndexScan"
	case PFilter:
		return "Filter"
	case PHashJoin:
		return "HashJoin"
	case PNLJoin:
		return "NestedLoopJoin"
	case PMergeJoin:
		return "MergeJoin"
	case PLookupJoin:
		return "LookupJoin"
	case PHashAgg:
		return "HashAggregate"
	case PStreamAgg:
		return "StreamAggregate"
	case PSort:
		return "Sort"
	case PProject:
		return "Project"
	case PRoot:
		return "Output"
	case PSeq:
		return "Batch"
	case PSpoolScan:
		return "SpoolScan"
	default:
		return fmt.Sprintf("PhysOp(%d)", uint8(op))
	}
}

// Plan is a physical plan node. Cost is cumulative (children included, plus
// CSE accounting adjustments at charge points). Cols is the output layout as
// metadata column IDs; PRoot and PSeq produce positional output instead.
type Plan struct {
	Op       PhysOp
	Children []*Plan
	Cols     []scalar.ColID
	Rows     float64
	Cost     float64

	// PScan / PIndexScan payload.
	Rel logical.RelID

	// PIndexScan payload: the indexed column's ordinal and range bounds.
	// PLookupJoin reuses Rel and IndexOrd for the inner table and its
	// indexed key column.
	IndexOrd int
	Bounds   Bounds

	// PLookupJoin payload: the outer key column, the inner scan's local
	// filter (applied per fetched row), and the inner output layout.
	LookupKey   scalar.ColID
	InnerFilter *scalar.Expr
	InnerCols   []scalar.ColID

	// Filter predicate: local filter for PScan, residual join condition for
	// joins, filter for PFilter.
	Filter *scalar.Expr

	// Provided is the ascending sort order the node's output is guaranteed
	// to have (a physical property; empty = unordered).
	Provided []scalar.ColID

	// PSort payload: the enforced ordering.
	SortCols []scalar.ColID

	// PHashJoin / PMergeJoin payload: equi-key columns, parallel slices.
	LeftKeys, RightKeys []scalar.ColID

	// PHashAgg payload.
	GroupCols []scalar.ColID
	Aggs      []logical.AggDef

	// PProject payload: each projection produces the column ID in Cols at
	// the same position.
	Projections []logical.Projection

	// PRoot payload. Children[0] is the main input; Children[1:] are scalar
	// subquery plans, evaluated first, whose metadata indices are
	// SubqueryIdxs.
	OrderBy      []logical.OrderKey
	Limit        int
	OutputNames  []string
	SubqueryIdxs []int

	// PSpoolScan payload.
	SpoolID int

	// FuseEligible marks a PFilter or PProject whose child chain is zero or
	// more PFilters over a PScan or PSpoolScan leaf: the executor may collapse
	// the whole chain into a single fused pass with no intermediate row sets.
	// Set by Result.MarkFusion after optimization; purely a physical
	// execution hint, never affects costing or plan shape.
	FuseEligible bool
}

// CSEPlan describes a chosen candidate CSE in a final plan: how to compute
// the spooled expression and the layout of the work table.
type CSEPlan struct {
	ID   int
	Plan *Plan
	Cols []scalar.ColID
	Rows float64
	// SQL-ish description for EXPLAIN output.
	Label string
	// SpecKey is the candidate's batch-independent cache key ("" = not
	// cacheable across batches).
	SpecKey string
}

// SourceTables walks the plan and collects, into the given set, the lowercase
// names of every base table it scans, recursing through spool scans via the
// cses map. The set is what a result cache must version-check: a write to any
// of these tables invalidates rows derived from the plan.
func (p *Plan) SourceTables(md *logical.Metadata, cses map[int]*CSEPlan, into map[string]bool) {
	if p == nil {
		return
	}
	switch p.Op {
	case PScan, PIndexScan, PLookupJoin:
		into[strings.ToLower(md.Rel(p.Rel).Tab.Name)] = true
	case PSpoolScan:
		if c := cses[p.SpoolID]; c != nil {
			c.Plan.SourceTables(md, cses, into)
		}
	}
	for _, c := range p.Children {
		c.SourceTables(md, cses, into)
	}
}

// Result is a complete optimized batch plan.
type Result struct {
	Root *Plan
	// CSEs maps spool IDs used anywhere in the plan (including by other
	// CSEs) to their plans.
	CSEs map[int]*CSEPlan
	// Cost is the estimated total cost, the paper's "estimated cost" rows.
	Cost float64
}

// MarkFusion walks every plan tree in the result (statement plans and CSE
// plans) and sets FuseEligible on Filter/Project nodes heading a fusible
// chain. Marking is additive and shape-invariant, so calling it on plans that
// share subtrees is safe.
func (r *Result) MarkFusion() {
	r.Root.markFusion()
	for _, c := range r.CSEs {
		c.Plan.markFusion()
	}
}

func (p *Plan) markFusion() {
	if p == nil {
		return
	}
	if (p.Op == PFilter || p.Op == PProject) && p.Children[0].fusibleChain() {
		p.FuseEligible = true
	}
	for _, c := range p.Children {
		c.markFusion()
	}
}

// fusibleChain reports whether the subtree is zero or more stacked PFilters
// over a PScan or PSpoolScan leaf — the shape execFused knows how to run as
// one pass.
func (p *Plan) fusibleChain() bool {
	for p.Op == PFilter {
		p = p.Children[0]
	}
	return p.Op == PScan || p.Op == PSpoolScan
}

// UsedSpoolIDs walks the plan and returns the spool IDs it scans.
func (p *Plan) UsedSpoolIDs(into map[int]bool) {
	if p == nil {
		return
	}
	if p.Op == PSpoolScan {
		into[p.SpoolID] = true
	}
	for _, c := range p.Children {
		c.UsedSpoolIDs(into)
	}
}

// Format renders the plan tree for EXPLAIN.
func (p *Plan) Format(md *logical.Metadata) string {
	return p.FormatAnnotated(md, nil)
}

// FormatAnnotated renders the plan tree with ann's text appended to each
// node line, after the optimizer's estimates. The hook lets callers that
// hold runtime actuals (which this package cannot depend on) line them up
// with the estimates for EXPLAIN ANALYZE; a nil ann renders plain EXPLAIN.
func (p *Plan) FormatAnnotated(md *logical.Metadata, ann func(*Plan) string) string {
	var sb strings.Builder
	p.format(md, &sb, 0, ann)
	return sb.String()
}

func (p *Plan) format(md *logical.Metadata, sb *strings.Builder, indent int, ann func(*Plan) string) {
	pad := strings.Repeat("  ", indent)
	fmt.Fprintf(sb, "%s%s", pad, p.Op)
	namer := scalar.FuncNamer(func(c scalar.ColID) string { return md.ColName(c) })
	switch p.Op {
	case PScan:
		fmt.Fprintf(sb, " %s", md.Rel(p.Rel).Alias)
		if p.Filter != nil {
			fmt.Fprintf(sb, " filter=(%s)", scalar.Format(p.Filter, namer))
		}
	case PIndexScan:
		rel := md.Rel(p.Rel)
		fmt.Fprintf(sb, " %s on %s", rel.Alias, rel.Tab.Cols[p.IndexOrd].Name)
		if !p.Bounds.Lo.IsNull() {
			fmt.Fprintf(sb, " lo=%s", p.Bounds.Lo.SQLLiteral())
		}
		if !p.Bounds.Hi.IsNull() {
			fmt.Fprintf(sb, " hi=%s", p.Bounds.Hi.SQLLiteral())
		}
		if p.Filter != nil {
			fmt.Fprintf(sb, " filter=(%s)", scalar.Format(p.Filter, namer))
		}
	case PSpoolScan:
		fmt.Fprintf(sb, " CSE%d", p.SpoolID)
	case PFilter:
		fmt.Fprintf(sb, " (%s)", scalar.Format(p.Filter, namer))
	case PHashJoin, PMergeJoin:
		var keys []string
		for i := range p.LeftKeys {
			keys = append(keys, fmt.Sprintf("%s=%s", md.ColName(p.LeftKeys[i]), md.ColName(p.RightKeys[i])))
		}
		fmt.Fprintf(sb, " on %s", strings.Join(keys, " and "))
		if p.Filter != nil {
			fmt.Fprintf(sb, " residual=(%s)", scalar.Format(p.Filter, namer))
		}
	case PNLJoin:
		if p.Filter != nil {
			fmt.Fprintf(sb, " on (%s)", scalar.Format(p.Filter, namer))
		}
	case PLookupJoin:
		rel := md.Rel(p.Rel)
		fmt.Fprintf(sb, " into %s on %s = %s", rel.Alias, md.ColName(p.LookupKey), rel.Tab.Cols[p.IndexOrd].Name)
		if p.InnerFilter != nil {
			fmt.Fprintf(sb, " inner-filter=(%s)", scalar.Format(p.InnerFilter, namer))
		}
		if p.Filter != nil {
			fmt.Fprintf(sb, " residual=(%s)", scalar.Format(p.Filter, namer))
		}
	case PSort:
		var keys []string
		for _, c := range p.SortCols {
			keys = append(keys, md.ColName(c))
		}
		fmt.Fprintf(sb, " by [%s]", strings.Join(keys, ","))
	case PHashAgg, PStreamAgg:
		var gcols []string
		for _, g := range p.GroupCols {
			gcols = append(gcols, md.ColName(g))
		}
		fmt.Fprintf(sb, " by [%s]", strings.Join(gcols, ","))
		var aggs []string
		for _, a := range p.Aggs {
			aggs = append(aggs, a.String())
		}
		fmt.Fprintf(sb, " aggs [%s]", strings.Join(aggs, ","))
	case PProject, PRoot:
		var projs []string
		for _, pr := range p.Projections {
			projs = append(projs, fmt.Sprintf("%s as %s", scalar.Format(pr.Expr, namer), pr.Name))
		}
		if len(projs) > 0 {
			fmt.Fprintf(sb, " [%s]", strings.Join(projs, ", "))
		}
	}
	fmt.Fprintf(sb, "  (rows=%.0f cost=%.2f)", p.Rows, p.Cost)
	if ann != nil {
		if extra := ann(p); extra != "" {
			sb.WriteString("  ")
			sb.WriteString(extra)
		}
	}
	sb.WriteByte('\n')
	for _, c := range p.Children {
		c.format(md, sb, indent+1, ann)
	}
}

// Format renders the full result including CSE plans.
func (r *Result) Format(md *logical.Metadata) string {
	return r.FormatAnnotated(md, nil)
}

// FormatAnnotated renders the full result including CSE plans, threading the
// per-node annotation hook through every tree (see Plan.FormatAnnotated).
func (r *Result) FormatAnnotated(md *logical.Metadata, ann func(*Plan) string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "total cost: %.2f\n", r.Cost)
	sb.WriteString(r.Root.FormatAnnotated(md, ann))
	ids := make([]int, 0, len(r.CSEs))
	for id := range r.CSEs {
		ids = append(ids, id)
	}
	sortInts(ids)
	for _, id := range ids {
		c := r.CSEs[id]
		fmt.Fprintf(&sb, "CSE%d: %s (rows=%.0f)\n", id, c.Label, c.Rows)
		sb.WriteString(c.Plan.FormatAnnotated(md, ann))
	}
	return sb.String()
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// colSetOf converts a layout slice to a set.
func colSetOf(cols []scalar.ColID) scalar.ColSet {
	return scalar.MakeColSet(cols...)
}

// groupOutCols returns a group's layout.
func groupOutCols(g *memo.Group) []scalar.ColID { return g.OutCols }
