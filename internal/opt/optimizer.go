package opt

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/logical"
	"repro/internal/memo"
	"repro/internal/scalar"
)

// Winner records the best plan found for a group plus the cost bounds the
// CSE heuristics consume: Lower is the cost of the group's optimal
// (unordered) plan; Upper is "the maximum cost among the optimal plans in
// the group" (§4.3) — the max over the group's expressions of each
// expression's best plan, further raised by winners computed under sort
// requirements (the paper's "optimized several times, each time with
// different requirements ... unsorted or sorted on a given set of columns").
type Winner struct {
	Plan  *Plan
	Lower float64
	Upper float64
}

// Optimizer costs memo groups and runs the CSE optimization phase.
type Optimizer struct {
	M *memo.Memo

	base    map[memo.GroupID]*Winner
	ordered map[memo.GroupID]map[string]*Winner
	upper   map[memo.GroupID]float64
	altMemo map[*memo.Expr][]*Plan

	// CSE phase state (populated by PrepareCSE).
	Cands    []*Candidate
	doms     *memo.Dominators
	affected map[int]map[memo.GroupID]bool
	altCache map[memo.GroupID]map[string][]*Alt

	// AltCap bounds the alternatives kept per group during CSE
	// reoptimization.
	AltCap int

	// ChargeAtRoot is an ablation switch: charge every candidate's initial
	// cost at the batch root instead of the consumers' common dominator
	// (the paper's §5.2 argues charging at the LCA avoids wasted work).
	ChargeAtRoot bool

	// NoHistoryReuse is an ablation switch: disable §5.4's optimization
	// history reuse, so every reoptimization recosts every group instead of
	// sharing per-group alternatives across enabled sets.
	NoHistoryReuse bool

	// Stats counters.
	GroupsCosted int
}

// NewOptimizer returns an optimizer over the memo.
func NewOptimizer(m *memo.Memo) *Optimizer {
	return &Optimizer{
		M:        m,
		base:     make(map[memo.GroupID]*Winner),
		ordered:  make(map[memo.GroupID]map[string]*Winner),
		upper:    make(map[memo.GroupID]float64),
		altMemo:  make(map[*memo.Expr][]*Plan),
		altCache: make(map[memo.GroupID]map[string][]*Alt),
		AltCap:   8,
	}
}

// OptimizeBase runs normal (pre-CSE) optimization and returns the best plan.
func (o *Optimizer) OptimizeBase() (*Result, error) {
	w, err := o.winner(o.M.RootGroup)
	if err != nil {
		return nil, err
	}
	return &Result{Root: w.Plan, Cost: w.Lower, CSEs: map[int]*CSEPlan{}}, nil
}

// Winner returns (computing if needed) the base winner for a group.
func (o *Optimizer) Winner(g memo.GroupID) (*Winner, error) { return o.winner(g) }

// BaseCost returns the normal-optimization cost of the whole batch (C_Q).
func (o *Optimizer) BaseCost() (float64, error) {
	w, err := o.winner(o.M.RootGroup)
	if err != nil {
		return 0, err
	}
	return w.Lower, nil
}

func (o *Optimizer) raiseUpper(id memo.GroupID, cost float64) {
	if cost > o.upper[id] {
		o.upper[id] = cost
	}
}

// winner computes the best plan for a group with no ordering requirement.
func (o *Optimizer) winner(id memo.GroupID) (*Winner, error) {
	if w, ok := o.base[id]; ok {
		w.Upper = o.upper[id]
		return w, nil
	}
	g := o.M.Group(id)
	if len(g.Exprs) == 0 {
		return nil, fmt.Errorf("group G%d has no expressions", id)
	}
	var best *Plan
	lower := 0.0
	for _, e := range g.Exprs {
		alts, err := o.alternativesFor(e, g)
		if err != nil {
			return nil, err
		}
		exprBest := 0.0
		first := true
		for _, p := range alts {
			if best == nil || p.Cost < lower {
				best = p
				lower = p.Cost
			}
			if first || p.Cost < exprBest {
				exprBest = p.Cost
				first = false
			}
		}
		o.raiseUpper(id, exprBest)
	}
	if best == nil {
		return nil, fmt.Errorf("no physical plan for group G%d", id)
	}
	w := &Winner{Plan: best, Lower: lower, Upper: o.upper[id]}
	o.base[id] = w
	o.GroupsCosted++
	return w, nil
}

// orderKey canonicalizes an ordering requirement.
func orderKey(cols []scalar.ColID) string {
	var sb strings.Builder
	for _, c := range cols {
		sb.WriteString(strconv.Itoa(int(c)))
		sb.WriteByte(',')
	}
	return sb.String()
}

// satisfiesOrdering reports whether a provided ordering satisfies a
// requirement: the requirement must be a prefix of the provided ordering.
func satisfiesOrdering(provided, required []scalar.ColID) bool {
	if len(required) > len(provided) {
		return false
	}
	for i := range required {
		if provided[i] != required[i] {
			return false
		}
	}
	return true
}

// winnerOrdered computes the best plan for a group under a required sort
// order: the cheaper of (a) a native alternative already providing the
// order, and (b) the unordered winner plus a sort enforcer. Each
// requirement's optimal cost raises the group's upper bound, as in the
// paper's multi-requirement memo.
func (o *Optimizer) winnerOrdered(id memo.GroupID, req []scalar.ColID) (*Winner, error) {
	if len(req) == 0 {
		return o.winner(id)
	}
	key := orderKey(req)
	if m, ok := o.ordered[id]; ok {
		if w, ok := m[key]; ok {
			return w, nil
		}
	}
	g := o.M.Group(id)
	bw, err := o.winner(id)
	if err != nil {
		return nil, err
	}
	best := o.sortWrap(bw.Plan, req)
	for _, e := range g.Exprs {
		alts, err := o.alternativesFor(e, g)
		if err != nil {
			return nil, err
		}
		for _, p := range alts {
			if satisfiesOrdering(p.Provided, req) && p.Cost < best.Cost {
				best = p
			}
		}
	}
	w := &Winner{Plan: best, Lower: best.Cost, Upper: o.upper[id]}
	if o.ordered[id] == nil {
		o.ordered[id] = make(map[string]*Winner)
	}
	o.ordered[id][key] = w
	o.raiseUpper(id, best.Cost)
	return w, nil
}

// sortWrap adds a sort enforcer providing the required order.
func (o *Optimizer) sortWrap(p *Plan, req []scalar.ColID) *Plan {
	if satisfiesOrdering(p.Provided, req) {
		return p
	}
	return &Plan{
		Op:       PSort,
		Children: []*Plan{p},
		SortCols: req,
		Cols:     p.Cols,
		Provided: req,
		Rows:     p.Rows,
		Cost:     p.Cost + sortCost(p.Rows),
	}
}

// alternativesFor enumerates the physical alternatives of one group
// expression, each with fully-planned children (requesting child orderings
// where useful: merge joins and stream aggregation).
func (o *Optimizer) alternativesFor(e *memo.Expr, g *memo.Group) ([]*Plan, error) {
	if alts, ok := o.altMemo[e]; ok {
		return alts, nil
	}
	var alts []*Plan
	switch e.Op {
	case memo.OpScan:
		p, err := o.planExpr(e, g, nil)
		if err != nil {
			return nil, err
		}
		alts = append(alts, p)
		alts = append(alts, o.indexAlternatives(e, g)...)

	case memo.OpJoin:
		lw, err := o.winner(e.Children[0])
		if err != nil {
			return nil, err
		}
		rw, err := o.winner(e.Children[1])
		if err != nil {
			return nil, err
		}
		p, err := o.planJoin(e, g, lw.Plan, rw.Plan)
		if err != nil {
			return nil, err
		}
		alts = append(alts, p)

		lu, err := o.lookupAlternatives(e, g)
		if err != nil {
			return nil, err
		}
		alts = append(alts, lu...)

		// Merge-join alternative: request both children sorted on the keys.
		leftKeys, rightKeys, _ := o.joinKeys(e, lw.Plan.Cols, rw.Plan.Cols)
		if len(leftKeys) > 0 {
			lo, err := o.winnerOrdered(e.Children[0], leftKeys)
			if err != nil {
				return nil, err
			}
			ro, err := o.winnerOrdered(e.Children[1], rightKeys)
			if err != nil {
				return nil, err
			}
			if mj, err := o.planMergeJoin(e, g, lo.Plan, ro.Plan); err == nil && mj != nil {
				alts = append(alts, mj)
			}
		}

	case memo.OpGroupBy:
		cw, err := o.winner(e.Children[0])
		if err != nil {
			return nil, err
		}
		p, err := o.planExpr(e, g, []*Plan{cw.Plan})
		if err != nil {
			return nil, err
		}
		alts = append(alts, p)

		// Stream-aggregation alternative over a sorted child.
		if len(e.GroupCols) > 0 {
			req := scalar.SortColIDs(append([]scalar.ColID(nil), e.GroupCols...))
			co, err := o.winnerOrdered(e.Children[0], req)
			if err != nil {
				return nil, err
			}
			alts = append(alts, o.planStreamAgg(e, g, co.Plan, req))
		}

	default:
		children := make([]*Plan, len(e.Children))
		for i, c := range e.Children {
			cw, err := o.winner(c)
			if err != nil {
				return nil, err
			}
			children[i] = cw.Plan
		}
		p, err := o.planExpr(e, g, children)
		if err != nil {
			return nil, err
		}
		alts = append(alts, p)

		// Root sort elision: when ORDER BY keys are ascending plain columns
		// the child can provide, skip the final sort.
		if e.Op == memo.OpRoot {
			if req, ok := rootOrderingCols(e); ok {
				co, err := o.winnerOrdered(e.Children[0], req)
				if err != nil {
					return nil, err
				}
				if satisfiesOrdering(co.Plan.Provided, req) {
					elided := *p
					elided.Children = append([]*Plan{co.Plan}, p.Children[1:]...)
					elided.OrderBy = nil // rows arrive ordered
					elided.Cost = p.Cost - sortCost(children[0].Rows) - children[0].Cost + co.Plan.Cost
					alts = append(alts, &elided)
				}
			}
		}
	}
	o.altMemo[e] = alts
	return alts, nil
}

// rootOrderingCols maps a Root's ORDER BY onto child columns when every key
// is ascending and projects a plain column.
func rootOrderingCols(e *memo.Expr) ([]scalar.ColID, bool) {
	if len(e.OrderBy) == 0 {
		return nil, false
	}
	var req []scalar.ColID
	for _, k := range e.OrderBy {
		if k.Desc {
			return nil, false
		}
		pe := e.Projections[k.ProjIdx].Expr
		if pe.Op != scalar.OpCol {
			return nil, false
		}
		req = append(req, pe.Col)
	}
	return req, true
}

// planExpr builds a physical plan for one group expression given
// already-planned children. It is also the entry point of the CSE phase's
// recosting, which opportunistically uses merge/stream operators when the
// given children happen to provide the needed orderings.
func (o *Optimizer) planExpr(e *memo.Expr, g *memo.Group, children []*Plan) (*Plan, error) {
	switch e.Op {
	case memo.OpScan:
		rel := o.M.Md.Rel(e.Rel)
		baseRows := rel.Tab.Stats.RowCount
		if baseRows <= 0 {
			baseRows = 1
		}
		return &Plan{
			Op:       PScan,
			Rel:      e.Rel,
			Filter:   e.Filter,
			Cols:     g.OutCols,
			Provided: o.scanOrdering(e.Rel, g.OutCols),
			Rows:     g.Rows,
			Cost:     scanCost(baseRows, rel.Tab.AvgRowSize, e.Filter != nil),
		}, nil

	case memo.OpJoin:
		// Prefer a merge join when the given children already provide the
		// key orderings.
		if mj, err := o.planMergeJoin(e, g, children[0], children[1]); err == nil && mj != nil {
			if hj, err := o.planJoin(e, g, children[0], children[1]); err == nil && hj.Cost < mj.Cost {
				return hj, nil
			}
			return mj, nil
		}
		return o.planJoin(e, g, children[0], children[1])

	case memo.OpGroupBy:
		child := children[0]
		if len(e.GroupCols) > 0 {
			req := scalar.SortColIDs(append([]scalar.ColID(nil), e.GroupCols...))
			if satisfiesOrdering(child.Provided, req) {
				return o.planStreamAgg(e, g, child, req), nil
			}
		}
		cols := append([]scalar.ColID(nil), e.GroupCols...)
		for _, a := range e.Aggs {
			cols = append(cols, a.Out)
		}
		return &Plan{
			Op:        PHashAgg,
			Children:  []*Plan{child},
			GroupCols: e.GroupCols,
			Aggs:      e.Aggs,
			Cols:      cols,
			Rows:      g.Rows,
			Cost:      child.Cost + hashAggCost(child.Rows, g.Rows),
		}, nil

	case memo.OpSelect:
		child := children[0]
		return &Plan{
			Op:       PFilter,
			Children: []*Plan{child},
			Filter:   e.Filter,
			Cols:     child.Cols,
			Provided: child.Provided,
			Rows:     g.Rows,
			Cost:     child.Cost + filterCost(child.Rows),
		}, nil

	case memo.OpRoot:
		main := children[0]
		cost := main.Cost + projectCost(main.Rows)
		for _, sq := range children[1:] {
			cost += sq.Cost
		}
		if len(e.OrderBy) > 0 {
			cost += sortCost(main.Rows)
		}
		names := make([]string, len(e.Projections))
		for i, p := range e.Projections {
			names[i] = p.Name
		}
		// Map subquery child groups back to metadata indices.
		idxs := make([]int, 0, len(children)-1)
		for _, cg := range e.Children[1:] {
			idx := -1
			for i, r := range o.M.SubqueryRoots {
				if r == cg {
					idx = i
					break
				}
			}
			if idx < 0 {
				return nil, fmt.Errorf("root child G%d is not a registered subquery", cg)
			}
			idxs = append(idxs, idx)
		}
		return &Plan{
			Op:           PRoot,
			Children:     children,
			Projections:  e.Projections,
			OrderBy:      e.OrderBy,
			Limit:        e.Limit,
			OutputNames:  names,
			SubqueryIdxs: idxs,
			Rows:         main.Rows,
			Cost:         cost,
		}, nil

	case memo.OpSeq:
		cost := 0.0
		rows := 0.0
		for _, c := range children {
			cost += c.Cost
			rows += c.Rows
		}
		return &Plan{Op: PSeq, Children: children, Rows: rows, Cost: cost}, nil

	case memo.OpSpool:
		// A spool's plan is its child; write cost is accounted as part of
		// the candidate's initial cost, not here.
		return children[0], nil

	default:
		return nil, fmt.Errorf("cannot plan memo op %s", e.Op)
	}
}

// scanOrdering maps a table's physical ordering onto the scan's output
// columns (stopping at the first ordering column pruned from the output).
func (o *Optimizer) scanOrdering(rid logical.RelID, outCols []scalar.ColID) []scalar.ColID {
	rel := o.M.Md.Rel(rid)
	out := colSetOf(outCols)
	var provided []scalar.ColID
	for _, ord := range rel.Tab.OrderedBy {
		c := rel.ColID(ord)
		if !out.Contains(c) {
			break
		}
		provided = append(provided, c)
	}
	return provided
}

// joinKeys extracts equi-key column pairs (canonically ordered by the left
// column ID) and the residual conjuncts of a join expression.
func (o *Optimizer) joinKeys(e *memo.Expr, leftCols, rightCols []scalar.ColID) (lk, rk []scalar.ColID, residual []*scalar.Expr) {
	lset := colSetOf(leftCols)
	rset := colSetOf(rightCols)
	type pair struct{ l, r scalar.ColID }
	var pairs []pair
	for _, c := range scalar.Conjuncts(e.Filter) {
		if a, b, ok := c.IsColEqCol(); ok {
			switch {
			case lset.Contains(a) && rset.Contains(b):
				pairs = append(pairs, pair{a, b})
				continue
			case lset.Contains(b) && rset.Contains(a):
				pairs = append(pairs, pair{b, a})
				continue
			}
		}
		residual = append(residual, c)
	}
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0 && pairs[j].l < pairs[j-1].l; j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
	for _, p := range pairs {
		lk = append(lk, p.l)
		rk = append(rk, p.r)
	}
	return lk, rk, residual
}

// planJoin picks hash join (when equi-keys exist) with the cheaper build
// side, falling back to a nested-loop join. A hash join streams its probe
// side, so it preserves the probe input's ordering.
func (o *Optimizer) planJoin(e *memo.Expr, g *memo.Group, left, right *Plan) (*Plan, error) {
	leftKeys, rightKeys, residual := o.joinKeys(e, left.Cols, right.Cols)
	outCols := append(append([]scalar.ColID(nil), left.Cols...), right.Cols...)
	var resFilter *scalar.Expr
	if len(residual) > 0 {
		resFilter = scalar.And(residual...)
	}

	if len(leftKeys) == 0 {
		return &Plan{
			Op:       PNLJoin,
			Children: []*Plan{left, right},
			Filter:   resFilter,
			Cols:     outCols,
			Provided: left.Provided,
			Rows:     g.Rows,
			Cost:     left.Cost + right.Cost + nlJoinCost(left.Rows, right.Rows, g.Rows),
		}, nil
	}

	// Hash join: Children[1] is the build side. Swap so the smaller input
	// builds.
	if right.Rows <= left.Rows {
		return &Plan{
			Op:        PHashJoin,
			Children:  []*Plan{left, right},
			LeftKeys:  leftKeys,
			RightKeys: rightKeys,
			Filter:    resFilter,
			Cols:      outCols,
			Provided:  left.Provided,
			Rows:      g.Rows,
			Cost:      left.Cost + right.Cost + hashJoinCost(right.Rows, left.Rows, g.Rows),
		}, nil
	}
	outCols = append(append([]scalar.ColID(nil), right.Cols...), left.Cols...)
	return &Plan{
		Op:        PHashJoin,
		Children:  []*Plan{right, left},
		LeftKeys:  rightKeys,
		RightKeys: leftKeys,
		Filter:    resFilter,
		Cols:      outCols,
		Provided:  right.Provided,
		Rows:      g.Rows,
		Cost:      left.Cost + right.Cost + hashJoinCost(left.Rows, right.Rows, g.Rows),
	}, nil
}

// planMergeJoin builds a merge join when both children provide the key
// orderings; it returns nil when they do not.
func (o *Optimizer) planMergeJoin(e *memo.Expr, g *memo.Group, left, right *Plan) (*Plan, error) {
	leftKeys, rightKeys, residual := o.joinKeys(e, left.Cols, right.Cols)
	if len(leftKeys) == 0 {
		return nil, nil
	}
	if !satisfiesOrdering(left.Provided, leftKeys) || !satisfiesOrdering(right.Provided, rightKeys) {
		return nil, nil
	}
	var resFilter *scalar.Expr
	if len(residual) > 0 {
		resFilter = scalar.And(residual...)
	}
	outCols := append(append([]scalar.ColID(nil), left.Cols...), right.Cols...)
	return &Plan{
		Op:        PMergeJoin,
		Children:  []*Plan{left, right},
		LeftKeys:  leftKeys,
		RightKeys: rightKeys,
		Filter:    resFilter,
		Cols:      outCols,
		Provided:  leftKeys,
		Rows:      g.Rows,
		Cost:      left.Cost + right.Cost + mergeJoinCost(left.Rows, right.Rows, g.Rows),
	}, nil
}

// planStreamAgg builds a streaming aggregation over a sorted child.
func (o *Optimizer) planStreamAgg(e *memo.Expr, g *memo.Group, child *Plan, req []scalar.ColID) *Plan {
	cols := append([]scalar.ColID(nil), e.GroupCols...)
	for _, a := range e.Aggs {
		cols = append(cols, a.Out)
	}
	return &Plan{
		Op:        PStreamAgg,
		Children:  []*Plan{child},
		GroupCols: e.GroupCols,
		Aggs:      e.Aggs,
		Cols:      cols,
		Provided:  req,
		Rows:      g.Rows,
		Cost:      child.Cost + streamAggCost(child.Rows, g.Rows),
	}
}
