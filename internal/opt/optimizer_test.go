package opt_test

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/logical"
	"repro/internal/memo"
	"repro/internal/opt"
	"repro/internal/parser"
	"repro/internal/storage"
	"repro/internal/tpch"
)

func testMemo(t testing.TB, sql string) *memo.Memo {
	t.Helper()
	cat := catalog.New()
	for _, tab := range tpch.Schemas() {
		if err := cat.Add(tab); err != nil {
			t.Fatal(err)
		}
	}
	st := storage.NewStore()
	if err := tpch.Generate(tpch.Config{ScaleFactor: 0.002, Seed: 3}, cat, st); err != nil {
		t.Fatal(err)
	}
	stmts, err := parser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := logical.BuildBatch(stmts, cat)
	if err != nil {
		t.Fatal(err)
	}
	m, err := memo.Build(batch)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestOptimizeBaseSimple(t *testing.T) {
	m := testMemo(t, "select c_name from customer where c_acctbal > 0")
	o := opt.NewOptimizer(m)
	res, err := o.OptimizeBase()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost <= 0 {
		t.Error("plans have positive cost")
	}
	if res.Root.Op != opt.PSeq {
		t.Errorf("root op = %s", res.Root.Op)
	}
	stmt := res.Root.Children[0]
	if stmt.Op != opt.PRoot {
		t.Errorf("statement op = %s", stmt.Op)
	}
	if stmt.Children[0].Op != opt.PScan {
		t.Errorf("scan expected, got %s", stmt.Children[0].Op)
	}
}

func TestWinnerBounds(t *testing.T) {
	m := testMemo(t, `
select c_name from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey`)
	o := opt.NewOptimizer(m)
	if _, err := o.OptimizeBase(); err != nil {
		t.Fatal(err)
	}
	multiExpr := 0
	for _, g := range m.Groups {
		w, err := o.Winner(g.ID)
		if err != nil {
			t.Fatal(err)
		}
		if w.Lower > w.Upper {
			t.Errorf("G%d lower %g > upper %g", g.ID, w.Lower, w.Upper)
		}
		if w.Lower <= 0 {
			t.Errorf("G%d has non-positive winner cost %g", g.ID, w.Lower)
		}
		if len(g.Exprs) > 1 && w.Upper > w.Lower {
			multiExpr++
		}
	}
	if multiExpr == 0 {
		t.Error("some multi-expression group should have distinct bounds")
	}
}

func TestHashJoinChosenForEquijoin(t *testing.T) {
	m := testMemo(t, "select c_name from customer, orders where c_custkey = o_custkey")
	o := opt.NewOptimizer(m)
	res, err := o.OptimizeBase()
	if err != nil {
		t.Fatal(err)
	}
	join := findOp(res.Root, opt.PHashJoin)
	if join == nil {
		t.Fatal("no hash join in an equijoin plan")
	}
	// The build side (Children[1]) must be the smaller input.
	if join.Children[1].Rows > join.Children[0].Rows {
		t.Errorf("build side has %g rows, probe %g — build must be smaller",
			join.Children[1].Rows, join.Children[0].Rows)
	}
	if len(join.LeftKeys) != 1 || len(join.RightKeys) != 1 {
		t.Errorf("join keys = %v / %v", join.LeftKeys, join.RightKeys)
	}
}

func TestNLJoinForNonEquiCondition(t *testing.T) {
	m := testMemo(t, "select r_name, n_name from region, nation where r_regionkey < n_regionkey")
	o := opt.NewOptimizer(m)
	res, err := o.OptimizeBase()
	if err != nil {
		t.Fatal(err)
	}
	if findOp(res.Root, opt.PNLJoin) == nil {
		t.Error("non-equi join must fall back to nested loops")
	}
	if findOp(res.Root, opt.PHashJoin) != nil {
		t.Error("no hash join possible without equi-keys")
	}
}

func TestResidualJoinFilter(t *testing.T) {
	m := testMemo(t, `
select c_name from customer, orders
where c_custkey = o_custkey and c_acctbal < o_totalprice`)
	o := opt.NewOptimizer(m)
	res, err := o.OptimizeBase()
	if err != nil {
		t.Fatal(err)
	}
	join := findOp(res.Root, opt.PHashJoin)
	if join == nil {
		t.Fatal("expected a hash join on the equi conjunct")
	}
	if join.Filter == nil {
		t.Error("the non-equi conjunct must remain as a residual filter")
	}
}

func TestGroupByPlan(t *testing.T) {
	m := testMemo(t, "select c_nationkey, count(*) as n from customer group by c_nationkey")
	o := opt.NewOptimizer(m)
	res, err := o.OptimizeBase()
	if err != nil {
		t.Fatal(err)
	}
	agg := findOp(res.Root, opt.PHashAgg)
	if agg == nil {
		t.Fatal("no aggregation operator")
	}
	if len(agg.Cols) != 2 {
		t.Errorf("aggregate output layout = %v", agg.Cols)
	}
}

func TestOrderByCostsASort(t *testing.T) {
	m1 := testMemo(t, "select c_name from customer")
	m2 := testMemo(t, "select c_name from customer order by c_name")
	o1, o2 := opt.NewOptimizer(m1), opt.NewOptimizer(m2)
	r1, err := o1.OptimizeBase()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := o2.OptimizeBase()
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cost <= r1.Cost {
		t.Errorf("ORDER BY plan (%g) must cost more than unsorted (%g)", r2.Cost, r1.Cost)
	}
}

func TestPlanFormat(t *testing.T) {
	m := testMemo(t, `
select c_nationkey, sum(o_totalprice) as s from customer, orders
where c_custkey = o_custkey group by c_nationkey`)
	o := opt.NewOptimizer(m)
	res, err := o.OptimizeBase()
	if err != nil {
		t.Fatal(err)
	}
	out := res.Root.Format(m.Md)
	for _, want := range []string{"HashJoin", "HashAggregate", "Scan customer", "Scan orders", "rows="} {
		if !strings.Contains(out, want) {
			t.Errorf("plan format missing %q:\n%s", want, out)
		}
	}
}

func TestUsedSpoolIDs(t *testing.T) {
	p := &opt.Plan{
		Op: opt.PFilter,
		Children: []*opt.Plan{
			{Op: opt.PSpoolScan, SpoolID: 3},
			{Op: opt.PHashJoin, Children: []*opt.Plan{
				{Op: opt.PSpoolScan, SpoolID: 7},
				{Op: opt.PScan},
			}},
		},
	}
	used := map[int]bool{}
	p.UsedSpoolIDs(used)
	if !used[3] || !used[7] || len(used) != 2 {
		t.Errorf("UsedSpoolIDs = %v", used)
	}
}

func TestSpoolCostsOrdering(t *testing.T) {
	// Writing a spool must cost more than reading it back, and both must
	// grow with volume.
	w1 := opt.SpoolWriteCost(1000, 100_000)
	r1 := opt.SpoolReadCost(1000, 100_000)
	if w1 <= r1 {
		t.Errorf("write %g must exceed read %g", w1, r1)
	}
	if opt.SpoolWriteCost(2000, 200_000) <= w1 {
		t.Error("write cost must grow with volume")
	}
	if opt.SpoolReadCost(2000, 200_000) <= r1 {
		t.Error("read cost must grow with volume")
	}
}

func TestOptimizeWithCSEsRequiresPrepare(t *testing.T) {
	m := testMemo(t, "select c_name from customer")
	o := opt.NewOptimizer(m)
	if _, _, err := o.OptimizeWithCSEs(nil); err == nil {
		t.Error("OptimizeWithCSEs without PrepareCSE must fail")
	}
}

func TestOptimizeWithEmptyCSESetMatchesBase(t *testing.T) {
	m := testMemo(t, "select c_name from customer where c_acctbal > 0")
	o := opt.NewOptimizer(m)
	base, err := o.OptimizeBase()
	if err != nil {
		t.Fatal(err)
	}
	o.PrepareCSE(nil)
	res, used, err := o.OptimizeWithCSEs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != base.Cost || len(used) != 0 {
		t.Errorf("empty CSE set: cost %g (base %g), used %v", res.Cost, base.Cost, used)
	}
}

func findOp(p *opt.Plan, op opt.PhysOp) *opt.Plan {
	if p == nil {
		return nil
	}
	if p.Op == op {
		return p
	}
	for _, c := range p.Children {
		if f := findOp(c, op); f != nil {
			return f
		}
	}
	return nil
}

func TestMergeJoinChosenForSortedInputs(t *testing.T) {
	// orders and lineitem are both generated sorted by orderkey, so the
	// merge-join alternative should beat hashing for their equijoin.
	m := testMemo(t, `
select o_orderkey, sum(l_quantity) as q
from orders, lineitem
where o_orderkey = l_orderkey
group by o_orderkey`)
	o := opt.NewOptimizer(m)
	res, err := o.OptimizeBase()
	if err != nil {
		t.Fatal(err)
	}
	if findOp(res.Root, opt.PMergeJoin) == nil {
		t.Errorf("expected a merge join on key-sorted inputs:\n%s", res.Root.Format(m.Md))
	}
	if findOp(res.Root, opt.PStreamAgg) == nil {
		t.Errorf("grouping on the merge keys should stream-aggregate:\n%s", res.Root.Format(m.Md))
	}
}

func TestSortEnforcerWhenUnordered(t *testing.T) {
	// partsupp has no declared order, so a merge join over it would need
	// explicit sorts; the optimizer may still pick hash — either way the
	// plan must be valid and sorted requirements satisfied internally.
	m := testMemo(t, `
select ps_partkey, sum(ps_supplycost) as c
from partsupp
group by ps_partkey
order by ps_partkey`)
	o := opt.NewOptimizer(m)
	res, err := o.OptimizeBase()
	if err != nil {
		t.Fatal(err)
	}
	if res.Root == nil {
		t.Fatal("no plan")
	}
}

func TestRootSortElision(t *testing.T) {
	// Scanning customer ordered by c_custkey satisfies ORDER BY c_custkey:
	// the root's sort is elided (OrderBy cleared on the plan).
	m := testMemo(t, "select c_custkey, c_name from customer order by c_custkey")
	o := opt.NewOptimizer(m)
	res, err := o.OptimizeBase()
	if err != nil {
		t.Fatal(err)
	}
	stmt := res.Root.Children[0]
	if len(stmt.OrderBy) != 0 {
		t.Errorf("sort not elided for a naturally ordered scan:\n%s", res.Root.Format(m.Md))
	}
	// DESC cannot be elided.
	m2 := testMemo(t, "select c_custkey, c_name from customer order by c_custkey desc")
	o2 := opt.NewOptimizer(m2)
	res2, err := o2.OptimizeBase()
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Root.Children[0].OrderBy) == 0 {
		t.Error("descending order must not be elided")
	}
}

func TestOrderedWinnersRaiseUpperBound(t *testing.T) {
	m := testMemo(t, `
select o_orderkey, sum(l_quantity) as q
from orders, lineitem
where o_orderkey = l_orderkey
group by o_orderkey`)
	o := opt.NewOptimizer(m)
	if _, err := o.OptimizeBase(); err != nil {
		t.Fatal(err)
	}
	// Every group's bounds remain consistent after ordered optimization.
	for _, g := range m.Groups {
		w, err := o.Winner(g.ID)
		if err != nil {
			t.Fatal(err)
		}
		if w.Lower > w.Upper {
			t.Errorf("G%d: lower %g > upper %g", g.ID, w.Lower, w.Upper)
		}
	}
}

func TestIndexScanChosenForSelectivePredicate(t *testing.T) {
	m := testMemo(t, "select o_orderkey from orders where o_orderdate = '1995-01-01'")
	o := opt.NewOptimizer(m)
	res, err := o.OptimizeBase()
	if err != nil {
		t.Fatal(err)
	}
	if findOp(res.Root, opt.PIndexScan) == nil {
		t.Errorf("point predicate on an indexed column should use the index:\n%s", res.Root.Format(m.Md))
	}
}

func TestSeqScanChosenForWideRange(t *testing.T) {
	m := testMemo(t, "select o_orderkey from orders where o_orderdate < '1998-01-01'")
	o := opt.NewOptimizer(m)
	res, err := o.OptimizeBase()
	if err != nil {
		t.Fatal(err)
	}
	if findOp(res.Root, opt.PIndexScan) != nil {
		t.Errorf("a ~90%% range must prefer the sequential scan:\n%s", res.Root.Format(m.Md))
	}
}

func TestLookupJoinChosenForTinyOuter(t *testing.T) {
	m := testMemo(t, `
select o_orderkey, l_extendedprice
from orders, lineitem
where o_orderkey = l_orderkey and o_orderdate = '1995-01-01'`)
	o := opt.NewOptimizer(m)
	res, err := o.OptimizeBase()
	if err != nil {
		t.Fatal(err)
	}
	if findOp(res.Root, opt.PLookupJoin) == nil {
		t.Errorf("a tiny outer should drive point lookups into lineitem:\n%s", res.Root.Format(m.Md))
	}
}

// TestPlanConsistencyInvariants walks every winner plan after base
// optimization and checks structural invariants: positive rows and costs,
// child costs never exceed the parent's, and column layouts non-empty for
// row-producing operators.
func TestPlanConsistencyInvariants(t *testing.T) {
	m := testMemo(t, `
select c_nationkey, sum(l_extendedprice) as s
from customer, orders, lineitem, nation
where c_custkey = o_custkey and o_orderkey = l_orderkey and c_nationkey = n_nationkey
  and o_orderdate < '1996-07-01'
group by c_nationkey
order by s desc limit 5;
select o_orderpriority, count(*) as n from orders group by o_orderpriority`)
	o := opt.NewOptimizer(m)
	res, err := o.OptimizeBase()
	if err != nil {
		t.Fatal(err)
	}
	var walk func(p *opt.Plan)
	walk = func(p *opt.Plan) {
		if p.Cost < 0 {
			t.Errorf("%s has negative cost %g", p.Op, p.Cost)
		}
		if p.Rows < 0 {
			t.Errorf("%s has negative rows %g", p.Op, p.Rows)
		}
		switch p.Op {
		case opt.PRoot, opt.PSeq:
		default:
			if len(p.Cols) == 0 {
				t.Errorf("%s has no output layout", p.Op)
			}
		}
		for _, c := range p.Children {
			if c.Cost > p.Cost+1e-9 {
				t.Errorf("%s child cost %g exceeds parent %g", p.Op, c.Cost, p.Cost)
			}
			walk(c)
		}
		// Provided orderings must reference output columns.
		out := map[int]bool{}
		for _, c := range p.Cols {
			out[int(c)] = true
		}
		for _, c := range p.Provided {
			if len(p.Cols) > 0 && !out[int(c)] {
				t.Errorf("%s claims ordering on @%d which it does not output", p.Op, c)
			}
		}
	}
	walk(res.Root)
}

// TestOptimizerDeterminism: two optimizers over identically built memos
// produce identical costs (reproducibility of every experiment).
func TestOptimizerDeterminism(t *testing.T) {
	sql := `
select c_nationkey, sum(l_extendedprice) as s
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
group by c_nationkey`
	m1, m2 := testMemo(t, sql), testMemo(t, sql)
	o1, o2 := opt.NewOptimizer(m1), opt.NewOptimizer(m2)
	r1, err := o1.OptimizeBase()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := o2.OptimizeBase()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cost != r2.Cost {
		t.Errorf("non-deterministic optimization: %g vs %g", r1.Cost, r2.Cost)
	}
}
