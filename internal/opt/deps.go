package opt

import (
	"fmt"
	"sort"

	"repro/internal/scalar"
)

// BatchDeps is the dependency metadata of an optimized batch: which spools
// (candidate CSE work tables) each statement consumes and which spools each
// spool's own plan consumes. The executor uses it to schedule spool
// materialization in topological waves and to run independent statements
// concurrently once their spools are ready.
type BatchDeps struct {
	// Statements holds the per-statement plans in batch order (the children
	// of the PSeq root, or the single PRoot plan).
	Statements []*Plan

	// StmtSpools lists, per statement, the spool IDs the statement's plan
	// scans anywhere (including inside scalar-subquery plans), sorted.
	StmtSpools [][]int

	// SpoolDeps maps each spool ID to the sorted spool IDs its plan scans;
	// every spool of the batch has an entry (possibly empty).
	SpoolDeps map[int][]int

	// SpoolSubquery marks spools whose plans reference a scalar-subquery
	// value. Such spools can only be materialized after the owning
	// statement evaluated the subquery, so the executor must fall back to
	// sequential, lazy materialization for the batch.
	SpoolSubquery map[int]bool
}

// StatementPlans flattens the batch root into per-statement plans.
func (r *Result) StatementPlans() []*Plan {
	if r.Root != nil && r.Root.Op == PSeq {
		return r.Root.Children
	}
	return []*Plan{r.Root}
}

// Dependencies derives the batch's spool/statement dependency DAG.
func (r *Result) Dependencies() *BatchDeps {
	d := &BatchDeps{
		Statements:    r.StatementPlans(),
		SpoolDeps:     make(map[int][]int, len(r.CSEs)),
		SpoolSubquery: make(map[int]bool),
	}
	d.StmtSpools = make([][]int, len(d.Statements))
	for i, sp := range d.Statements {
		used := make(map[int]bool)
		sp.UsedSpoolIDs(used)
		d.StmtSpools[i] = sortedIDs(used)
	}
	for id, cse := range r.CSEs {
		used := make(map[int]bool)
		cse.Plan.UsedSpoolIDs(used)
		d.SpoolDeps[id] = sortedIDs(used)
		if cse.Plan.ReferencesSubquery() {
			d.SpoolSubquery[id] = true
		}
	}
	return d
}

// AnySpoolSubquery reports whether any spool plan references a scalar
// subquery value and therefore cannot be materialized ahead of statements.
func (d *BatchDeps) AnySpoolSubquery() bool { return len(d.SpoolSubquery) > 0 }

// Waves orders the spool IDs into topological levels: every spool in wave k
// depends only on spools in waves < k, so all spools within one wave can be
// materialized concurrently. Dependencies on unknown spool IDs are ignored
// here (execution reports them); a dependency cycle is an error.
func (d *BatchDeps) Waves() ([][]int, error) {
	// Kahn's algorithm by levels over the known spool set.
	indeg := make(map[int]int, len(d.SpoolDeps))
	consumers := make(map[int][]int, len(d.SpoolDeps))
	for id, deps := range d.SpoolDeps {
		if _, ok := indeg[id]; !ok {
			indeg[id] = 0
		}
		for _, dep := range deps {
			if _, known := d.SpoolDeps[dep]; !known {
				continue
			}
			indeg[id]++
			consumers[dep] = append(consumers[dep], id)
		}
	}
	var waves [][]int
	frontier := make([]int, 0, len(indeg))
	for id, n := range indeg {
		if n == 0 {
			frontier = append(frontier, id)
		}
	}
	placed := 0
	for len(frontier) > 0 {
		sort.Ints(frontier)
		waves = append(waves, frontier)
		placed += len(frontier)
		var next []int
		for _, id := range frontier {
			for _, c := range consumers[id] {
				indeg[c]--
				if indeg[c] == 0 {
					next = append(next, c)
				}
			}
		}
		frontier = next
	}
	if placed != len(indeg) {
		cyclic := make(map[int]bool, len(indeg)-placed)
		for id, n := range indeg {
			if n > 0 {
				cyclic[id] = true
			}
		}
		return nil, fmt.Errorf("cyclic spool dependency among CSEs %v", sortedIDs(cyclic))
	}
	return waves, nil
}

// ReferencesSubquery reports whether any scalar expression in the plan tree
// contains an unresolved scalar-subquery reference.
func (p *Plan) ReferencesSubquery() bool {
	if p == nil {
		return false
	}
	if exprHasSubquery(p.Filter) || exprHasSubquery(p.InnerFilter) {
		return true
	}
	for _, pr := range p.Projections {
		if exprHasSubquery(pr.Expr) {
			return true
		}
	}
	for _, a := range p.Aggs {
		if exprHasSubquery(a.Arg) {
			return true
		}
	}
	for _, c := range p.Children {
		if c.ReferencesSubquery() {
			return true
		}
	}
	return false
}

func exprHasSubquery(e *scalar.Expr) bool {
	if e == nil {
		return false
	}
	if e.Op == scalar.OpSubquery {
		return true
	}
	for _, a := range e.Args {
		if exprHasSubquery(a) {
			return true
		}
	}
	return false
}

func sortedIDs(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
