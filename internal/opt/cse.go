package opt

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/logical"
	"repro/internal/memo"
	"repro/internal/scalar"
)

// Rename maps a CSE output column to the consumer-space column it stands in
// for in the substitute's final projection.
type Rename struct {
	From, To scalar.ColID
}

// Substitute describes how one consumer computes its result from a
// candidate's work table: scan the spool, apply the residual (compensation)
// predicate, optionally re-aggregate, and rename columns into the consumer's
// column space. This plays the role of the view-matching substitute (§5.1).
type Substitute struct {
	Residual  *scalar.Expr     // over CSE output columns; nil when none
	GroupCols []scalar.ColID   // CSE-space re-grouping columns; nil = no re-aggregation
	Aggs      []logical.AggDef // re-aggregation (args over CSE columns, Out in consumer space)
	Renames   []Rename
}

// Candidate is a candidate covering subexpression: a spool over ExprGroup
// whose result can replace each consumer group via its substitute.
type Candidate struct {
	ID        int
	ExprGroup memo.GroupID
	SpoolCols []scalar.ColID // canonical work-table layout (= ExprGroup.OutCols)

	Consumers []memo.GroupID
	Subs      map[memo.GroupID]*Substitute

	// Stmts is the set of statement indices containing consumers.
	Stmts map[int]bool

	// ChargeGroup is where the initial cost is added (the common dominator
	// of all consumers — the paper's least common ancestor). Set by
	// PrepareCSE; forced to the batch root for stack-used candidates.
	ChargeGroup memo.GroupID

	// StackUsed marks candidates consumed by another candidate's expression
	// (§5.5 stacked CSEs).
	StackUsed bool

	// Estimated spool size.
	Rows, Bytes float64

	// Signature info for containment ordering.
	Tables  []string
	Grouped bool

	Label string

	// SpecKey is the batch-independent canonical fingerprint of the
	// normalized spec, used as the cross-batch result-cache key. Empty when
	// the candidate is not safely keyable (see core spec.cacheKey).
	SpecKey string
}

// WriteCost is C_W for the candidate's work table.
func (c *Candidate) WriteCost() float64 { return SpoolWriteCost(c.Rows, c.Bytes) }

// ReadBase is the base C_R: one sequential scan of the work table.
func (c *Candidate) ReadBase() float64 { return SpoolReadCost(c.Rows, c.Bytes) }

// Alt is one plan alternative tracked during CSE reoptimization: its cost,
// the not-yet-charged candidate usage counts, and the expression plans
// chosen for candidates already charged below.
type Alt struct {
	Plan    *Plan
	Cost    float64
	Uses    map[int]int
	Choices map[int]*Plan
}

func (a *Alt) usesKey() string {
	if len(a.Uses) == 0 {
		return ""
	}
	ids := make([]int, 0, len(a.Uses))
	for id := range a.Uses {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var sb strings.Builder
	for _, id := range ids {
		sb.WriteString(strconv.Itoa(id))
		sb.WriteByte(':')
		sb.WriteString(strconv.Itoa(a.Uses[id]))
		sb.WriteByte(';')
	}
	return sb.String()
}

func mergeUses(dst, src map[int]int) map[int]int {
	if len(src) == 0 {
		return dst
	}
	if dst == nil {
		dst = make(map[int]int, len(src))
	}
	for id, n := range src {
		dst[id] += n
	}
	return dst
}

func mergeChoices(dst, src map[int]*Plan) map[int]*Plan {
	if len(src) == 0 {
		return dst
	}
	if dst == nil {
		dst = make(map[int]*Plan, len(src))
	}
	for id, p := range src {
		dst[id] = p
	}
	return dst
}

// PrepareCSE installs the candidate set for subsequent OptimizeWithCSEs
// calls: it computes dominators, each candidate's charge group, and the
// ancestor ("affected") closure of each candidate's consumers.
func (o *Optimizer) PrepareCSE(cands []*Candidate) {
	o.Cands = cands
	o.doms = memo.NewDominators(o.M, o.M.RootGroup)
	o.affected = make(map[int]map[memo.GroupID]bool, len(cands))
	o.altCache = make(map[memo.GroupID]map[string][]*Alt)

	for _, c := range cands {
		switch {
		case o.ChargeAtRoot, c.StackUsed:
			c.ChargeGroup = o.M.RootGroup
		default:
			c.ChargeGroup = o.doms.CommonDominator(c.Consumers)
		}
		// Upward closure of consumers through parent links; the charge
		// group and everything between is affected too.
		aff := make(map[memo.GroupID]bool)
		var up func(memo.GroupID)
		up = func(g memo.GroupID) {
			if aff[g] {
				return
			}
			aff[g] = true
			for _, p := range o.M.Group(g).Parents {
				up(p)
			}
		}
		for _, g := range c.Consumers {
			up(g)
		}
		// Ensure the path from root is considered affected so charging
		// always happens (parents cover this already, but the root must be
		// included even if no consumer links straight up to it).
		aff[o.M.RootGroup] = true
		aff[c.ChargeGroup] = true
		o.affected[c.ID] = aff
	}
}

// Doms exposes the dominator analysis (used by core for competing/
// independent classification).
func (o *Optimizer) Doms() *memo.Dominators { return o.doms }

// ReleaseCaches frees the per-group alternative caches built during CSE
// reoptimization. The final plan keeps only the nodes it references.
func (o *Optimizer) ReleaseCaches() {
	o.altCache = make(map[memo.GroupID]map[string][]*Alt)
}

// enabledAt filters the enabled candidate set to those affecting group g.
// This implements §5.4's history reuse: a group's alternatives depend only
// on the candidates with consumers below it, so results are cached by that
// reduced set and shared across enabled supersets. With NoHistoryReuse set
// (ablation), the full enabled set is used everywhere, so no group result is
// shared between reoptimizations and unaffected groups are recosted too.
func (o *Optimizer) enabledAt(g memo.GroupID, enabled []int) []int {
	if o.NoHistoryReuse {
		return enabled
	}
	var out []int
	for _, id := range enabled {
		if o.affected[id][g] {
			out = append(out, id)
		}
	}
	return out
}

func setKeyOf(ids []int) string {
	if len(ids) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, id := range ids {
		sb.WriteString(strconv.Itoa(id))
		sb.WriteByte(',')
	}
	return sb.String()
}

// OptimizeWithCSEs reoptimizes the batch with the given candidate set
// enabled (candidates may be used but are not forced). It returns the best
// plan found, which may use any subset of the enabled candidates.
func (o *Optimizer) OptimizeWithCSEs(enabled []int) (*Result, []int, error) {
	if o.doms == nil {
		return nil, nil, fmt.Errorf("PrepareCSE must be called before OptimizeWithCSEs")
	}
	// Sort a copy: callers hold on to (and trace) their enabled slices, and
	// reordering them in place here would corrupt that bookkeeping.
	enabled = append([]int(nil), enabled...)
	sort.Ints(enabled)
	alts, err := o.alts(o.M.RootGroup, enabled)
	if err != nil {
		return nil, nil, err
	}
	var best *Alt
	for _, a := range alts {
		if hasSingleUse(a.Uses) {
			continue
		}
		if best == nil || a.Cost < best.Cost {
			best = a
		}
	}
	if best == nil {
		return nil, nil, fmt.Errorf("no valid plan with CSE set %v", enabled)
	}
	// Leftover uses at the root (n >= 2 whose charge group is the root were
	// charged there already; anything remaining is a bug).
	if len(best.Uses) != 0 {
		return nil, nil, fmt.Errorf("internal: uncharged CSE uses %v at batch root", best.Uses)
	}

	res := &Result{Root: best.Plan, Cost: best.Cost, CSEs: map[int]*CSEPlan{}}
	// Attach plans for every spool actually read (including spools read by
	// other CSE plans).
	used := map[int]bool{}
	best.Plan.UsedSpoolIDs(used)
	for changed := true; changed; {
		changed = false
		for id := range used {
			p, ok := best.Choices[id]
			if !ok {
				return nil, nil, fmt.Errorf("internal: no expression plan chosen for CSE %d", id)
			}
			more := map[int]bool{}
			p.UsedSpoolIDs(more)
			for mid := range more {
				if !used[mid] {
					used[mid] = true
					changed = true
				}
			}
		}
	}
	var usedIDs []int
	for id := range used {
		usedIDs = append(usedIDs, id)
	}
	sort.Ints(usedIDs)
	for _, id := range usedIDs {
		c := o.candByID(id)
		res.CSEs[id] = &CSEPlan{
			ID:      id,
			Plan:    best.Choices[id],
			Cols:    c.SpoolCols,
			Rows:    c.Rows,
			Label:   c.Label,
			SpecKey: c.SpecKey,
		}
	}
	return res, usedIDs, nil
}

func (o *Optimizer) candByID(id int) *Candidate {
	for _, c := range o.Cands {
		if c.ID == id {
			return c
		}
	}
	return nil
}

func hasSingleUse(uses map[int]int) bool {
	for _, n := range uses {
		if n == 1 {
			return true
		}
	}
	return false
}

// alts computes the pruned alternative set for a group under the enabled
// candidates.
func (o *Optimizer) alts(id memo.GroupID, enabled []int) ([]*Alt, error) {
	local := o.enabledAt(id, enabled)
	if len(local) == 0 {
		w, err := o.winner(id)
		if err != nil {
			return nil, err
		}
		return []*Alt{{Plan: w.Plan, Cost: w.Lower}}, nil
	}
	key := setKeyOf(local)
	if cached, ok := o.altCache[id][key]; ok {
		return cached, nil
	}
	g := o.M.Group(id)
	var out []*Alt

	// Expression-based alternatives: combine children alternative sets.
	for _, e := range g.Exprs {
		combos, err := o.childCombos(e, enabled)
		if err != nil {
			return nil, err
		}
		for _, combo := range combos {
			plans := make([]*Plan, len(combo))
			for i, a := range combo {
				plans[i] = a.Plan
			}
			p, err := o.planExpr(e, g, plans)
			if err != nil {
				return nil, err
			}
			alt := &Alt{Plan: p, Cost: 0}
			// Cost: the op's own cost plus children alternative costs (the
			// plan's Cost field uses child plan costs, which for alts with
			// adjustments may differ — recompute as plan op delta).
			opCost := p.Cost
			for _, cp := range plans {
				opCost -= cp.Cost
			}
			total := opCost
			for _, a := range combo {
				total += a.Cost
				alt.Uses = mergeUses(alt.Uses, a.Uses)
				alt.Choices = mergeChoices(alt.Choices, a.Choices)
			}
			alt.Cost = total
			out = append(out, alt)
		}
	}

	// Substitute alternatives: this group is a consumer of an enabled
	// candidate.
	for _, cid := range local {
		c := o.candByID(cid)
		sub, ok := c.Subs[id]
		if !ok {
			continue
		}
		p, cost := o.buildSubstitute(c, g, sub)
		out = append(out, &Alt{
			Plan: p,
			Cost: cost,
			Uses: map[int]int{c.ID: 1},
		})
	}

	// Charge initial costs for candidates whose charge point is here. Wider
	// candidates are charged first: charging a wide candidate merges its
	// expression plan's stacked usages into the alternative, so a narrower
	// stacked candidate sees its full consumer count when its own turn
	// comes (§5.5).
	var toCharge []*Candidate
	for _, cid := range local {
		c := o.candByID(cid)
		if c.ChargeGroup == id {
			toCharge = append(toCharge, c)
		}
	}
	sort.Slice(toCharge, func(i, j int) bool {
		if len(toCharge[i].Tables) != len(toCharge[j].Tables) {
			return len(toCharge[i].Tables) > len(toCharge[j].Tables)
		}
		return toCharge[i].ID < toCharge[j].ID
	})
	for _, c := range toCharge {
		var err error
		out, err = o.chargeCandidate(out, c, enabled)
		if err != nil {
			return nil, err
		}
	}

	out = o.pruneAlts(out)
	if o.altCache[id] == nil {
		o.altCache[id] = make(map[string][]*Alt)
	}
	o.altCache[id][key] = out
	return out, nil
}

// childCombos builds the cross product of children alternative sets,
// pruning incrementally to keep combination counts bounded.
func (o *Optimizer) childCombos(e *memo.Expr, enabled []int) ([][]*Alt, error) {
	combos := [][]*Alt{nil}
	for _, cg := range e.Children {
		childAlts, err := o.alts(cg, enabled)
		if err != nil {
			return nil, err
		}
		var next [][]*Alt
		for _, combo := range combos {
			for _, a := range childAlts {
				nc := make([]*Alt, len(combo)+1)
				copy(nc, combo)
				nc[len(combo)] = a
				next = append(next, nc)
			}
		}
		// Incremental pruning by combined cost/usage signature.
		if len(next) > 4*o.AltCap {
			next = o.pruneCombos(next)
		}
		combos = next
	}
	return combos, nil
}

func (o *Optimizer) pruneCombos(combos [][]*Alt) [][]*Alt {
	type scored struct {
		combo []*Alt
		cost  float64
		key   string
	}
	items := make([]scored, len(combos))
	for i, combo := range combos {
		cost := 0.0
		var uses map[int]int
		for _, a := range combo {
			cost += a.Cost
			uses = mergeUses(uses, a.Uses)
		}
		items[i] = scored{combo, cost, (&Alt{Uses: uses}).usesKey()}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].cost < items[j].cost })
	seen := make(map[string]bool)
	var out [][]*Alt
	for _, it := range items {
		if seen[it.key] {
			continue
		}
		seen[it.key] = true
		out = append(out, it.combo)
		if len(out) >= 4*o.AltCap {
			break
		}
	}
	// Always retain the cheapest CSE-free combination (mirroring pruneAlts).
	// Under candidate explosion the cap above can otherwise fill with
	// CSE-using combos only; chargeCandidate then discards single-use
	// alternatives and a group can end up with no viable alternative at all,
	// failing the whole optimization with "no valid plan".
	if !seen[""] {
		for _, it := range items {
			if it.key == "" {
				out = append(out, it.combo)
				break
			}
		}
	}
	return out
}

// pruneAlts keeps the cheapest alternative per usage signature, capped, and
// always retains the cheapest CSE-free alternative.
func (o *Optimizer) pruneAlts(alts []*Alt) []*Alt {
	sort.Slice(alts, func(i, j int) bool { return alts[i].Cost < alts[j].Cost })
	seen := make(map[string]bool)
	var out []*Alt
	var clean *Alt
	for _, a := range alts {
		if len(a.Uses) == 0 && clean == nil {
			clean = a
		}
		key := a.usesKey()
		if seen[key] {
			continue
		}
		seen[key] = true
		if len(out) < o.AltCap {
			out = append(out, a)
		}
	}
	if clean != nil {
		found := false
		for _, a := range out {
			if a == clean {
				found = true
				break
			}
		}
		if !found {
			out = append(out, clean)
		}
	}
	return out
}

// buildSubstitute constructs the physical substitute plan for a consumer:
// SpoolScan → [Filter residual] → [HashAgg re-aggregation] → Project renames.
func (o *Optimizer) buildSubstitute(c *Candidate, consumer *memo.Group, sub *Substitute) (*Plan, float64) {
	est := &memo.Estimator{Md: o.M.Md}
	p := &Plan{
		Op:      PSpoolScan,
		SpoolID: c.ID,
		Cols:    c.SpoolCols,
		Rows:    c.Rows,
		Cost:    c.ReadBase(),
	}
	rows := c.Rows
	if sub.Residual != nil {
		rows *= est.Selectivity(sub.Residual)
		if rows < 1 {
			rows = 1
		}
		p = &Plan{
			Op:       PFilter,
			Children: []*Plan{p},
			Filter:   sub.Residual,
			Cols:     p.Cols,
			Rows:     rows,
			Cost:     p.Cost + filterCost(p.Rows),
		}
	}
	if sub.GroupCols != nil || len(sub.Aggs) > 0 {
		outRows := consumer.Rows
		cols := append([]scalar.ColID(nil), sub.GroupCols...)
		for _, a := range sub.Aggs {
			cols = append(cols, a.Out)
		}
		p = &Plan{
			Op:        PHashAgg,
			Children:  []*Plan{p},
			GroupCols: sub.GroupCols,
			Aggs:      sub.Aggs,
			Cols:      cols,
			Rows:      outRows,
			Cost:      p.Cost + hashAggCost(p.Rows, outRows),
		}
		rows = outRows
	}
	if len(sub.Renames) > 0 {
		projs := make([]logical.Projection, len(sub.Renames))
		cols := make([]scalar.ColID, len(sub.Renames))
		for i, rn := range sub.Renames {
			projs[i] = logical.Projection{Expr: scalar.Col(rn.From), Name: o.M.Md.ColName(rn.To)}
			cols[i] = rn.To
		}
		p = &Plan{
			Op:          PProject,
			Children:    []*Plan{p},
			Projections: projs,
			Cols:        cols,
			Rows:        rows,
			Cost:        p.Cost + projectCost(rows),
		}
	}
	return p, p.Cost
}

// chargeOption is one way to account a candidate's initial cost: the chosen
// expression plan, its cost plus the write cost, and any stacked candidate
// usages the expression plan itself carries.
type chargeOption struct {
	initCost  float64
	extraUses map[int]int
	choices   map[int]*Plan
	exprPlan  *Plan
}

// chargeOptions computes up to two ways to evaluate the candidate's
// expression under the enabled set: the overall cheapest, and the cheapest
// that uses no other candidate (so stacked usage never traps the optimizer).
func (o *Optimizer) chargeOptions(c *Candidate, enabled []int) ([]chargeOption, error) {
	exprAlts, err := o.alts(c.ExprGroup, enabled)
	if err != nil {
		return nil, err
	}
	var best, clean *Alt
	for _, a := range exprAlts {
		if best == nil || a.Cost < best.Cost {
			best = a
		}
		if len(a.Uses) == 0 && len(a.Choices) == 0 && (clean == nil || a.Cost < clean.Cost) {
			clean = a
		}
	}
	if best == nil {
		return nil, fmt.Errorf("no expression plan for candidate %d", c.ID)
	}
	mk := func(a *Alt) chargeOption {
		return chargeOption{
			initCost:  a.Cost + c.WriteCost() + o.normalizeCost(a.Plan, c),
			extraUses: a.Uses,
			choices:   a.Choices,
			exprPlan:  o.normalizePlan(a.Plan, c),
		}
	}
	opts := []chargeOption{mk(best)}
	if clean != nil && clean != best {
		opts = append(opts, mk(clean))
	}
	return opts, nil
}

// normalizePlan wraps the expression plan with a projection to the
// candidate's canonical spool layout when the plan's layout differs.
func (o *Optimizer) normalizePlan(p *Plan, c *Candidate) *Plan {
	if layoutEqual(p.Cols, c.SpoolCols) {
		return p
	}
	projs := make([]logical.Projection, len(c.SpoolCols))
	for i, col := range c.SpoolCols {
		projs[i] = logical.Projection{Expr: scalar.Col(col), Name: o.M.Md.ColName(col)}
	}
	return &Plan{
		Op:          PProject,
		Children:    []*Plan{p},
		Projections: projs,
		Cols:        append([]scalar.ColID(nil), c.SpoolCols...),
		Rows:        p.Rows,
		Cost:        p.Cost + projectCost(p.Rows),
	}
}

func (o *Optimizer) normalizeCost(p *Plan, c *Candidate) float64 {
	if layoutEqual(p.Cols, c.SpoolCols) {
		return 0
	}
	return projectCost(p.Rows)
}

func layoutEqual(a, b []scalar.ColID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// chargeCandidate applies the paper's §5.2 rules at the candidate's charge
// point: alternatives with exactly one consumer are discarded; alternatives
// with two or more are charged the initial cost once (for each way of
// evaluating the expression), and the candidate's usage entry is settled.
func (o *Optimizer) chargeCandidate(alts []*Alt, c *Candidate, enabled []int) ([]*Alt, error) {
	var opts []chargeOption
	var out []*Alt
	for _, a := range alts {
		n := a.Uses[c.ID]
		switch {
		case n == 0:
			out = append(out, a)
		case n == 1:
			// Discard: a spool written and read once is never worthwhile.
		default:
			if opts == nil {
				var err error
				opts, err = o.chargeOptions(c, enabled)
				if err != nil {
					return nil, err
				}
			}
			for _, opt := range opts {
				uses := make(map[int]int, len(a.Uses)+len(opt.extraUses))
				for id, k := range a.Uses {
					if id != c.ID {
						uses[id] = k
					}
				}
				uses = mergeUses(uses, opt.extraUses)
				choices := mergeChoices(mergeChoices(nil, a.Choices), opt.choices)
				choices = mergeChoices(choices, map[int]*Plan{c.ID: opt.exprPlan})
				out = append(out, &Alt{
					Plan:    a.Plan,
					Cost:    a.Cost + opt.initCost,
					Uses:    uses,
					Choices: choices,
				})
			}
		}
	}
	return out, nil
}
