package opt

import (
	"testing"

	"repro/internal/scalar"
)

func TestSatisfiesOrdering(t *testing.T) {
	cols := func(ids ...scalar.ColID) []scalar.ColID { return ids }
	cases := []struct {
		provided, required []scalar.ColID
		want               bool
	}{
		{cols(1, 2, 3), cols(1, 2), true},  // prefix
		{cols(1, 2), cols(1, 2, 3), false}, // too short
		{cols(1, 2), cols(2, 1), false},    // order matters
		{cols(1), nil, true},               // empty requirement
		{nil, nil, true},
		{nil, cols(1), false},
	}
	for _, c := range cases {
		if got := satisfiesOrdering(c.provided, c.required); got != c.want {
			t.Errorf("satisfies(%v, %v) = %v, want %v", c.provided, c.required, got, c.want)
		}
	}
}

func TestOrderKeyCanonical(t *testing.T) {
	if orderKey([]scalar.ColID{1, 2}) == orderKey([]scalar.ColID{2, 1}) {
		t.Error("order key must be order-sensitive")
	}
	if orderKey(nil) != "" {
		t.Error("empty requirement key must be empty")
	}
}

func TestSortWrapElidesWhenSatisfied(t *testing.T) {
	o := NewOptimizer(nil)
	base := &Plan{Op: PScan, Provided: []scalar.ColID{5, 6}, Rows: 100, Cost: 10}
	if got := o.sortWrap(base, []scalar.ColID{5}); got != base {
		t.Error("sortWrap must elide a satisfied requirement")
	}
	wrapped := o.sortWrap(base, []scalar.ColID{7})
	if wrapped.Op != PSort || wrapped.Cost <= base.Cost {
		t.Errorf("sortWrap must add a sort: %+v", wrapped)
	}
	if !satisfiesOrdering(wrapped.Provided, []scalar.ColID{7}) {
		t.Error("the sort must provide the requirement")
	}
}
