package opt

import (
	"repro/internal/memo"
	"repro/internal/scalar"
	"repro/internal/sqltypes"
)

// Index-scan costing: a probe into the sorted permutation plus a random-ish
// fetch per qualifying row. Random fetches are far costlier per row than a
// sequential page sweep, so index scans win only on selective predicates —
// the regime of the paper's Example 7.
const (
	costIndexProbe = 2.0
	costIndexRow   = 0.1
)

func indexScanCost(matchingRows float64) float64 {
	return costIndexProbe + matchingRows*costIndexRow
}

// Bounds is a one-column range [Lo, Hi] with per-end inclusivity; a zero
// Datum end is unbounded.
type Bounds struct {
	Lo, Hi       sqltypes.Datum
	LoInc, HiInc bool
}

// bounded reports whether at least one end is constrained.
func (b Bounds) bounded() bool { return !b.Lo.IsNull() || !b.Hi.IsNull() }

// extractBounds splits a scan filter into range bounds on col and the
// residual conjuncts. ok is false when no conjunct bounds the column.
func extractBounds(filter *scalar.Expr, col scalar.ColID) (Bounds, *scalar.Expr, bool) {
	var b Bounds
	var residual []*scalar.Expr
	for _, c := range scalar.Conjuncts(filter) {
		if !foldBound(&b, c, col) {
			residual = append(residual, c)
		}
	}
	if !b.bounded() {
		return Bounds{}, filter, false
	}
	var res *scalar.Expr
	if len(residual) > 0 {
		res = scalar.And(residual...)
	}
	return b, res, true
}

// foldBound merges a `col <op> const` conjunct into the bounds; it returns
// false when the conjunct has a different shape.
func foldBound(b *Bounds, c *scalar.Expr, col scalar.ColID) bool {
	if len(c.Args) != 2 {
		return false
	}
	l, r := c.Args[0], c.Args[1]
	op := c.Op
	if l.Op == scalar.OpConst && r.Op == scalar.OpCol {
		l, r = r, l
		op = flipCmpOp(op)
	}
	if l.Op != scalar.OpCol || l.Col != col || r.Op != scalar.OpConst || r.Const.IsNull() {
		return false
	}
	v := r.Const
	switch op {
	case scalar.OpEq:
		tightenLo(b, v, true)
		tightenHi(b, v, true)
	case scalar.OpLt:
		tightenHi(b, v, false)
	case scalar.OpLe:
		tightenHi(b, v, true)
	case scalar.OpGt:
		tightenLo(b, v, false)
	case scalar.OpGe:
		tightenLo(b, v, true)
	default:
		return false
	}
	return true
}

func flipCmpOp(op scalar.Op) scalar.Op {
	switch op {
	case scalar.OpLt:
		return scalar.OpGt
	case scalar.OpLe:
		return scalar.OpGe
	case scalar.OpGt:
		return scalar.OpLt
	case scalar.OpGe:
		return scalar.OpLe
	default:
		return op
	}
}

func tightenLo(b *Bounds, v sqltypes.Datum, inc bool) {
	if b.Lo.IsNull() || sqltypes.Compare(v, b.Lo) > 0 || (sqltypes.Compare(v, b.Lo) == 0 && !inc) {
		b.Lo, b.LoInc = v, inc
	}
}

func tightenHi(b *Bounds, v sqltypes.Datum, inc bool) {
	if b.Hi.IsNull() || sqltypes.Compare(v, b.Hi) < 0 || (sqltypes.Compare(v, b.Hi) == 0 && !inc) {
		b.Hi, b.HiInc = v, inc
	}
}

// indexAlternatives builds index-scan plans for a scan expression: one per
// declared index whose column the filter bounds.
func (o *Optimizer) indexAlternatives(e *memo.Expr, g *memo.Group) []*Plan {
	rel := o.M.Md.Rel(e.Rel)
	baseRows := rel.Tab.Stats.RowCount
	if baseRows <= 0 {
		baseRows = 1
	}
	est := &memo.Estimator{Md: o.M.Md}
	var alts []*Plan
	for _, ix := range rel.Tab.Indexes {
		colID := rel.ColID(ix.Col)
		b, residual, ok := extractBounds(e.Filter, colID)
		if !ok {
			continue
		}
		// Selectivity of the bound conjuncts alone determines the fetch
		// volume; the residual is applied per fetched row.
		boundSel := rangeSelectivity(est, colID, b)
		matching := baseRows * boundSel
		cost := indexScanCost(matching)
		if residual != nil {
			cost += matching * costPredicate
		}
		alts = append(alts, &Plan{
			Op:       PIndexScan,
			Rel:      e.Rel,
			IndexOrd: ix.Col,
			Bounds:   b,
			Filter:   residual,
			Cols:     g.OutCols,
			Provided: indexProvided(colID, g.OutCols),
			Rows:     g.Rows,
			Cost:     cost,
		})
	}
	return alts
}

// indexProvided: an index scan emits rows sorted by the indexed column when
// that column is part of the output.
func indexProvided(colID scalar.ColID, outCols []scalar.ColID) []scalar.ColID {
	for _, c := range outCols {
		if c == colID {
			return []scalar.ColID{colID}
		}
	}
	return nil
}

// rangeSelectivity estimates the fraction of rows inside the bounds.
func rangeSelectivity(est *memo.Estimator, col scalar.ColID, b Bounds) float64 {
	var conj []*scalar.Expr
	if !b.Lo.IsNull() {
		op := scalar.OpGt
		if b.LoInc {
			op = scalar.OpGe
		}
		conj = append(conj, scalar.Cmp(op, scalar.Col(col), scalar.Const(b.Lo)))
	}
	if !b.Hi.IsNull() {
		op := scalar.OpLt
		if b.HiInc {
			op = scalar.OpLe
		}
		conj = append(conj, scalar.Cmp(op, scalar.Col(col), scalar.Const(b.Hi)))
	}
	if !b.Lo.IsNull() && !b.Hi.IsNull() && sqltypes.Compare(b.Lo, b.Hi) == 0 {
		// Point lookup.
		return est.Selectivity(scalar.Eq(scalar.Col(col), scalar.Const(b.Lo)))
	}
	return est.Selectivity(scalar.And(conj...))
}
