// Package opt implements physical optimization over the memo: a calibrated
// I/O + CPU cost model, physical plan construction (hash/nested-loop joins,
// hash aggregation, sort), per-group winners with lower and upper cost
// bounds, and the CSE optimization machinery of §5 — spool substitutes for
// consumers, usage-cost charging, initial-cost charging at the common
// dominator (the paper's least common ancestor), and reoptimization with an
// enabled candidate set as a required property, reusing optimization history
// across sets.
package opt

import "math"

// Cost model constants. The unit is roughly "one 8KB sequential page I/O".
// CPU costs are scaled so that a scan's per-row CPU work is small relative
// to its I/O, matching the disk-resident setting of the paper's experiments.
const (
	// pageSize is the assumed page size in bytes.
	pageSize = 8192

	// costSeqPage is the cost of sequentially reading one page.
	costSeqPage = 1.0

	// costRowCPU is the per-row CPU cost of producing/consuming one row.
	costRowCPU = 0.001

	// costPredicate is the per-row cost of evaluating a filter.
	costPredicate = 0.0005

	// costHashBuild is the per-row cost of inserting into a hash table.
	costHashBuild = 0.002

	// costHashProbe is the per-row cost of probing a hash table.
	costHashProbe = 0.001

	// costSortRow scales the n·log2(n) sort term.
	costSortRow = 0.002

	// costMergeRow is the per-row cost of a sorted merge pass (merge join
	// input sides, stream aggregation) — cheaper than hashing.
	costMergeRow = 0.0008

	// costSpoolWritePage is the per-page cost of materializing a spool work
	// table. Work tables are written sequentially and typically stay in the
	// buffer pool, so they are cheaper per page than cold base-table I/O;
	// this ratio is calibrated so the Δ-benefit decisions of §4.3.3 match
	// the paper's outcomes on the TPC-H workloads.
	costSpoolWritePage = 1.0

	// costSpoolReadPage is the per-page cost of scanning a spool (warm,
	// sequential).
	costSpoolReadPage = 0.5
)

// pages converts a byte volume to page I/Os (at least one).
func pages(bytes float64) float64 {
	p := bytes / pageSize
	if p < 1 {
		p = 1
	}
	return p
}

// scanCost is the cost of scanning a base table of the given volume and
// filtering it.
func scanCost(rows, rowBytes float64, filtered bool) float64 {
	c := pages(rows*rowBytes)*costSeqPage + rows*costRowCPU
	if filtered {
		c += rows * costPredicate
	}
	return c
}

// hashJoinCost returns the cost of a hash join with the given build and
// probe inputs (excluding child costs).
func hashJoinCost(buildRows, probeRows, outRows float64) float64 {
	return buildRows*costHashBuild + probeRows*costHashProbe + outRows*costRowCPU
}

// nlJoinCost returns the cost of a nested-loop join (excluding child costs).
func nlJoinCost(leftRows, rightRows, outRows float64) float64 {
	return leftRows*rightRows*costPredicate + outRows*costRowCPU
}

// hashAggCost returns the cost of hash aggregation (excluding child cost).
func hashAggCost(inRows, outRows float64) float64 {
	return inRows*costHashBuild + outRows*costRowCPU
}

// filterCost returns the cost of filtering inRows rows.
func filterCost(inRows float64) float64 {
	return inRows * costPredicate
}

// sortCost returns the cost of sorting n rows.
func sortCost(n float64) float64 {
	if n < 2 {
		return 0
	}
	return n * math.Log2(n) * costSortRow
}

// projectCost returns the cost of computing output expressions for n rows.
func projectCost(n float64) float64 {
	return n * costRowCPU
}

// SpoolWriteCost is C_W: materializing a CSE result into a work table.
func SpoolWriteCost(rows, bytes float64) float64 {
	return pages(bytes)*costSpoolWritePage + rows*costRowCPU
}

// SpoolReadCost is the base C_R: sequentially scanning the work table once.
func SpoolReadCost(rows, bytes float64) float64 {
	return pages(bytes)*costSpoolReadPage + rows*costRowCPU
}

// mergeJoinCost returns the cost of merging two key-sorted inputs
// (excluding child costs): a linear pass over both sides.
func mergeJoinCost(leftRows, rightRows, outRows float64) float64 {
	return (leftRows+rightRows)*costMergeRow + outRows*costRowCPU
}

// streamAggCost returns the cost of aggregating a sorted input (excluding
// child cost): one linear pass, no hash table.
func streamAggCost(inRows, outRows float64) float64 {
	return inRows*costMergeRow + outRows*costRowCPU
}
