package opt

import (
	"strings"
	"testing"

	"repro/internal/scalar"
)

func spoolScan(id int) *Plan { return &Plan{Op: PSpoolScan, SpoolID: id} }

func cseOn(id int, plan *Plan) *CSEPlan { return &CSEPlan{ID: id, Plan: plan} }

func TestDependenciesAndWaves(t *testing.T) {
	// Statement 1 uses spools 1 and 3; statement 2 uses spool 3.
	// Spool 3 is stacked on spools 1 and 2; spools 1 and 2 are base.
	stmt1 := &Plan{Op: PRoot, Children: []*Plan{
		{Op: PHashJoin, Children: []*Plan{spoolScan(1), spoolScan(3)}},
	}}
	stmt2 := &Plan{Op: PRoot, Children: []*Plan{spoolScan(3)}}
	res := &Result{
		Root: &Plan{Op: PSeq, Children: []*Plan{stmt1, stmt2}},
		CSEs: map[int]*CSEPlan{
			1: cseOn(1, &Plan{Op: PScan}),
			2: cseOn(2, &Plan{Op: PScan}),
			3: cseOn(3, &Plan{Op: PNLJoin, Children: []*Plan{spoolScan(1), spoolScan(2)}}),
		},
	}
	d := res.Dependencies()
	if len(d.Statements) != 2 {
		t.Fatalf("statements = %d, want 2", len(d.Statements))
	}
	wantStmt := [][]int{{1, 3}, {3}}
	for i, want := range wantStmt {
		if got := d.StmtSpools[i]; !equalInts(got, want) {
			t.Errorf("StmtSpools[%d] = %v, want %v", i, got, want)
		}
	}
	if got := d.SpoolDeps[3]; !equalInts(got, []int{1, 2}) {
		t.Errorf("SpoolDeps[3] = %v, want [1 2]", got)
	}
	if d.AnySpoolSubquery() {
		t.Error("no spool references a subquery")
	}
	waves, err := d.Waves()
	if err != nil {
		t.Fatal(err)
	}
	if len(waves) != 2 || !equalInts(waves[0], []int{1, 2}) || !equalInts(waves[1], []int{3}) {
		t.Errorf("waves = %v, want [[1 2] [3]]", waves)
	}
}

func TestWavesDetectsCycle(t *testing.T) {
	res := &Result{
		Root: &Plan{Op: PRoot, Children: []*Plan{spoolScan(1)}},
		CSEs: map[int]*CSEPlan{
			1: cseOn(1, spoolScan(2)),
			2: cseOn(2, spoolScan(1)),
		},
	}
	_, err := res.Dependencies().Waves()
	if err == nil || !strings.Contains(err.Error(), "cyclic") {
		t.Fatalf("err = %v, want cyclic spool dependency", err)
	}
}

func TestWavesIgnoresUnknownDependency(t *testing.T) {
	// Spool 1 scans spool 99 which has no plan; the DAG still levelizes and
	// execution reports the missing plan.
	res := &Result{
		Root: &Plan{Op: PRoot, Children: []*Plan{spoolScan(1)}},
		CSEs: map[int]*CSEPlan{1: cseOn(1, spoolScan(99))},
	}
	waves, err := res.Dependencies().Waves()
	if err != nil {
		t.Fatal(err)
	}
	if len(waves) != 1 || !equalInts(waves[0], []int{1}) {
		t.Errorf("waves = %v, want [[1]]", waves)
	}
}

func TestReferencesSubquery(t *testing.T) {
	sub := &scalar.Expr{Op: scalar.OpSubquery}
	cases := []struct {
		name string
		plan *Plan
		want bool
	}{
		{"nil", nil, false},
		{"plain scan", &Plan{Op: PScan}, false},
		{"filter", &Plan{Op: PScan, Filter: sub}, true},
		{"nested arg", &Plan{Op: PFilter, Filter: &scalar.Expr{Op: scalar.OpAnd, Args: []*scalar.Expr{sub}}}, true},
		{"child", &Plan{Op: PFilter, Children: []*Plan{{Op: PScan, Filter: sub}}}, true},
	}
	for _, c := range cases {
		if got := c.plan.ReferencesSubquery(); got != c.want {
			t.Errorf("%s: ReferencesSubquery = %v, want %v", c.name, got, c.want)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
