package parser

import "strings"

// Statement is either a *SelectStmt or a *CreateViewStmt.
type Statement interface{ stmt() }

// SelectStmt is one SELECT query block.
type SelectStmt struct {
	With     []CTE // WITH-clause common table expressions in scope
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Node
	GroupBy  []Node
	Having   Node
	OrderBy  []OrderItem
	Limit    int // 0 means no limit
}

// CTE is one WITH-clause entry: name AS (select).
type CTE struct {
	Name   string
	Select *SelectStmt
}

func (*SelectStmt) stmt() {}

// CreateViewStmt is CREATE MATERIALIZED VIEW name AS select.
type CreateViewStmt struct {
	Name   string
	Select *SelectStmt
}

func (*CreateViewStmt) stmt() {}

// SelectItem is one output expression with an optional alias. A bare "*" is
// represented by Star=true.
type SelectItem struct {
	Expr  Node
	Alias string
	Star  bool
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// Binding name for the table reference: alias when present.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Node
	Desc bool
}

// Node is a parsed scalar expression node.
type Node interface{ node() }

// ColRef is a possibly-qualified column reference.
type ColRef struct {
	Qualifier string // table name or alias; "" when unqualified
	Name      string
}

// NumLit is a numeric literal; Float reports whether it had a decimal point.
type NumLit struct {
	Text  string
	Float bool
}

// StrLit is a string literal.
type StrLit struct{ Val string }

// BoolLit is TRUE or FALSE.
type BoolLit struct{ Val bool }

// NullLit is NULL.
type NullLit struct{}

// BinOp is a binary operation; Op is one of = <> < <= > >= + - * / and or.
type BinOp struct {
	Op   string
	L, R Node
}

// UnaryOp is NOT or unary minus.
type UnaryOp struct {
	Op  string // "not" or "-"
	Arg Node
}

// FuncCall is an aggregate or scalar function call; Star marks count(*).
type FuncCall struct {
	Name string
	Args []Node
	Star bool
}

// Subquery is a parenthesized scalar subquery.
type Subquery struct{ Select *SelectStmt }

// Between is expr BETWEEN lo AND hi.
type Between struct {
	Expr, Lo, Hi Node
	Negate       bool
}

// InList is expr IN (v1, v2, ...).
type InList struct {
	Expr   Node
	Vals   []Node
	Negate bool
}

func (*ColRef) node()   {}
func (*NumLit) node()   {}
func (*StrLit) node()   {}
func (*BoolLit) node()  {}
func (*NullLit) node()  {}
func (*BinOp) node()    {}
func (*UnaryOp) node()  {}
func (*FuncCall) node() {}
func (*Subquery) node() {}
func (*Between) node()  {}
func (*InList) node()   {}

// IsAggName reports whether the function name is a supported aggregate.
func IsAggName(name string) bool {
	switch strings.ToLower(name) {
	case "sum", "count", "min", "max", "avg":
		return true
	}
	return false
}
