package parser

import (
	"strings"
	"testing"
)

// FuzzParse asserts the contract the rest of the engine relies on: for any
// input, Parse either succeeds or returns an error — it never panics and
// never exhausts the stack. The seeds cover the supported surface plus the
// adversarial shapes that historically endanger recursive-descent parsers
// (deep nesting, operator chains, truncated constructs); the checked-in
// corpus under testdata/fuzz/FuzzParse pins the inputs that motivated the
// parser's depth limits.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"select 1",
		"select c_nationkey, sum(c_acctbal) as s from customer where c_acctbal > 0 group by c_nationkey order by s desc limit 5",
		"select o_orderpriority, count(*) as c from customer, orders where c_custkey = o_custkey and o_orderdate < '1995-06-17' group by o_orderpriority",
		"with q as (select c_nationkey from customer where c_acctbal > 100) select c_nationkey, count(*) as c from q group by c_nationkey",
		"select * from lineitem where l_quantity between 5 and 10 and l_shipmode in ('AIR', 'RAIL') and not l_returnflag = 'A'",
		"create materialized view v as select count(*) as c from orders",
		"select (select count(*) as c from orders) as sub from customer",
		"select a from t where x like 'ab%' or y not in (1, 2, 3); select b from u",
		"select -1 + 2 * -3 / 4 - -5 from t",
		"",
		";",
		"select",
		"select from where",
		"select 'unterminated from t",
		"select \x00\xff from t",
		"select a from t where (((((((((((((((((((1)))))))))))))))))))",
		"select a from t where " + strings.Repeat("not ", 500) + "true",
		"select " + strings.Repeat("-", 500) + "1 from t",
		"select a from t where " + strings.Repeat("(", 300) + "1" + strings.Repeat(")", 300),
		strings.Repeat("with q as (select ", 120) + "1",
		"select a from t limit 0",
		"select a from t limit -3",
		"select a.b.c from t",
		"select count(*) from t -- trailing comment",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmts, err := Parse(src)
		if err != nil && stmts != nil {
			t.Fatalf("Parse returned both statements and error %v", err)
		}
	})
}
