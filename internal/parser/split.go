package parser

import "strings"

// SplitStatements splits a SQL source string into its individual
// statement texts on top-level semicolons. It reuses the lexer, so
// semicolons inside string literals or comments never split. The
// returned slices exclude the terminating semicolon; empty segments
// (e.g. trailing semicolons or blank input) are dropped.
func SplitStatements(src string) ([]string, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	var out []string
	start := 0
	flush := func(end int) {
		seg := strings.TrimSpace(src[start:end])
		if seg != "" {
			out = append(out, seg)
		}
	}
	for _, t := range toks {
		switch {
		case t.kind == tokSymbol && t.text == ";":
			flush(t.pos)
			start = t.pos + 1
		case t.kind == tokEOF:
			flush(t.pos)
		}
	}
	return out, nil
}
