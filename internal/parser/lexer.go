// Package parser implements the SQL subset used by the engine: SELECT
// queries with joins, WHERE, GROUP BY, HAVING (including uncorrelated scalar
// subqueries), ORDER BY, query batches separated by semicolons, and CREATE
// MATERIALIZED VIEW. The parser produces an AST; name resolution happens in
// the logical builder.
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // keywords lower-cased; symbols canonical
	pos  int    // byte offset for error messages
}

var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "by": true,
	"having": true, "order": true, "as": true, "and": true, "or": true,
	"not": true, "asc": true, "desc": true, "create": true, "materialized": true,
	"view": true, "distinct": true, "between": true, "in": true, "limit": true,
	"true": true, "false": true, "null": true, "like": true, "insert": true, "into": true, "values": true,
	"with": true, "refresh": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	lx := &lexer{src: src}
	for {
		lx.skipSpace()
		if lx.pos >= len(lx.src) {
			lx.emit(tokEOF, "", lx.pos)
			return lx.toks, nil
		}
		start := lx.pos
		c := lx.src[lx.pos]
		switch {
		case isIdentStart(rune(c)):
			lx.pos++
			for lx.pos < len(lx.src) && isIdentPart(rune(lx.src[lx.pos])) {
				lx.pos++
			}
			word := lx.src[start:lx.pos]
			lower := strings.ToLower(word)
			if keywords[lower] {
				lx.emit(tokKeyword, lower, start)
			} else {
				lx.emit(tokIdent, word, start)
			}
		case c >= '0' && c <= '9':
			lx.pos++
			seenDot := false
			for lx.pos < len(lx.src) {
				ch := lx.src[lx.pos]
				if ch == '.' && !seenDot {
					seenDot = true
					lx.pos++
					continue
				}
				if ch < '0' || ch > '9' {
					break
				}
				lx.pos++
			}
			lx.emit(tokNumber, lx.src[start:lx.pos], start)
		case c == '\'':
			lx.pos++
			var sb strings.Builder
			closed := false
			for lx.pos < len(lx.src) {
				ch := lx.src[lx.pos]
				if ch == '\'' {
					if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '\'' {
						sb.WriteByte('\'')
						lx.pos += 2
						continue
					}
					lx.pos++
					closed = true
					break
				}
				sb.WriteByte(ch)
				lx.pos++
			}
			if !closed {
				return nil, fmt.Errorf("unterminated string literal at offset %d", start)
			}
			lx.emit(tokString, sb.String(), start)
		default:
			// Multi-character operators first.
			two := ""
			if lx.pos+1 < len(lx.src) {
				two = lx.src[lx.pos : lx.pos+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=":
				if two == "!=" {
					two = "<>"
				}
				lx.emit(tokSymbol, two, start)
				lx.pos += 2
				continue
			case "--":
				// Line comment.
				for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
					lx.pos++
				}
				continue
			}
			switch c {
			case '(', ')', ',', ';', '.', '*', '+', '-', '/', '=', '<', '>':
				lx.emit(tokSymbol, string(c), start)
				lx.pos++
			default:
				return nil, fmt.Errorf("unexpected character %q at offset %d", c, start)
			}
		}
	}
}

func (lx *lexer) emit(kind tokenKind, text string, pos int) {
	lx.toks = append(lx.toks, token{kind: kind, text: text, pos: pos})
}

func (lx *lexer) skipSpace() {
	for lx.pos < len(lx.src) && unicode.IsSpace(rune(lx.src[lx.pos])) {
		lx.pos++
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
