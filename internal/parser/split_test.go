package parser

import (
	"reflect"
	"testing"
)

func TestSplitStatements(t *testing.T) {
	cases := []struct {
		src  string
		want []string
	}{
		{"select 1", []string{"select 1"}},
		{"select 1;", []string{"select 1"}},
		{"select 1; select 2;\n\nselect 3", []string{"select 1", "select 2", "select 3"}},
		{"select ';' from t; select 2", []string{"select ';' from t", "select 2"}},
		{"select 1 -- trailing ; comment\n; select 2", []string{"select 1 -- trailing ; comment", "select 2"}},
		{";;;", nil},
		{"  \n ", nil},
		{"with q as (select 1) select * from q;", []string{"with q as (select 1) select * from q"}},
	}
	for _, c := range cases {
		got, err := SplitStatements(c.src)
		if err != nil {
			t.Fatalf("SplitStatements(%q): %v", c.src, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitStatements(%q) = %#v, want %#v", c.src, got, c.want)
		}
	}
	// Each split piece must itself parse when the whole parses.
	src := "select c_custkey from customer where c_name = 'a;b';\nselect o_orderkey from orders"
	parts, err := SplitStatements(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 {
		t.Fatalf("parts = %#v", parts)
	}
	for _, p := range parts {
		if _, err := Parse(p); err != nil {
			t.Errorf("part %q does not parse: %v", p, err)
		}
	}
}

func TestSplitStatementsLexError(t *testing.T) {
	if _, err := SplitStatements("select 'unterminated"); err == nil {
		t.Fatal("want lex error")
	}
}
