package parser

import (
	"strings"
	"testing"
	"testing/quick"
)

func parseOne(t *testing.T, sql string) *SelectStmt {
	t.Helper()
	sel, err := ParseSelect(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return sel
}

func TestParseSimpleSelect(t *testing.T) {
	sel := parseOne(t, "select a, b from t where a = 1")
	if len(sel.Items) != 2 || len(sel.From) != 1 || sel.Where == nil {
		t.Fatalf("unexpected shape: %+v", sel)
	}
	if sel.From[0].Table != "t" {
		t.Errorf("table = %q", sel.From[0].Table)
	}
	cr, ok := sel.Items[0].Expr.(*ColRef)
	if !ok || cr.Name != "a" {
		t.Errorf("first item = %#v", sel.Items[0].Expr)
	}
}

func TestParseStar(t *testing.T) {
	sel := parseOne(t, "select * from t")
	if len(sel.Items) != 1 || !sel.Items[0].Star {
		t.Error("star not recognized")
	}
}

func TestParseAliases(t *testing.T) {
	sel := parseOne(t, "select sum(x) as total, y cnt from t1 a, t2 as b")
	if sel.Items[0].Alias != "total" {
		t.Errorf("AS alias = %q", sel.Items[0].Alias)
	}
	if sel.Items[1].Alias != "cnt" {
		t.Errorf("bare alias = %q", sel.Items[1].Alias)
	}
	if sel.From[0].Binding() != "a" || sel.From[1].Binding() != "b" {
		t.Errorf("table bindings = %q, %q", sel.From[0].Binding(), sel.From[1].Binding())
	}
	if sel.From[0].Table != "t1" {
		t.Error("aliased table keeps its real name")
	}
}

func TestParseQualifiedColumns(t *testing.T) {
	sel := parseOne(t, "select c.name from customer c where c.id = 3")
	cr := sel.Items[0].Expr.(*ColRef)
	if cr.Qualifier != "c" || cr.Name != "name" {
		t.Errorf("qualified ref = %+v", cr)
	}
}

func TestParseGroupByHavingOrderLimit(t *testing.T) {
	sel := parseOne(t, `
select a, sum(b) as s from t
group by a having sum(b) > 10
order by s desc, a limit 5`)
	if len(sel.GroupBy) != 1 {
		t.Error("group by missing")
	}
	if sel.Having == nil {
		t.Error("having missing")
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("order by = %+v", sel.OrderBy)
	}
	if sel.Limit != 5 {
		t.Errorf("limit = %d", sel.Limit)
	}
}

func TestParsePrecedence(t *testing.T) {
	sel := parseOne(t, "select a + b * c from t")
	add := sel.Items[0].Expr.(*BinOp)
	if add.Op != "+" {
		t.Fatalf("top op = %q, want +", add.Op)
	}
	mul := add.R.(*BinOp)
	if mul.Op != "*" {
		t.Errorf("b*c must bind tighter")
	}

	sel2 := parseOne(t, "select a from t where x = 1 or y = 2 and z = 3")
	or := sel2.Where.(*BinOp)
	if or.Op != "or" {
		t.Fatalf("top where op = %q, want or (AND binds tighter)", or.Op)
	}
	and := or.R.(*BinOp)
	if and.Op != "and" {
		t.Error("right side of OR should be the AND")
	}
}

func TestParseParens(t *testing.T) {
	sel := parseOne(t, "select a from t where (x = 1 or y = 2) and z = 3")
	and := sel.Where.(*BinOp)
	if and.Op != "and" {
		t.Fatalf("parenthesized OR must nest under AND, top = %q", and.Op)
	}
	if or := and.L.(*BinOp); or.Op != "or" {
		t.Error("left side should be the OR")
	}
}

func TestParseBetweenAndIn(t *testing.T) {
	sel := parseOne(t, "select a from t where a between 1 and 5 and b in (1, 2, 3) and c not in (4)")
	and := sel.Where.(*BinOp)
	_ = and
	// Walk conjuncts loosely: just verify node kinds exist.
	var sawBetween, sawIn, sawNotIn bool
	var walk func(n Node)
	walk = func(n Node) {
		switch v := n.(type) {
		case *BinOp:
			walk(v.L)
			walk(v.R)
		case *Between:
			sawBetween = true
		case *InList:
			if v.Negate {
				sawNotIn = true
			} else {
				sawIn = true
			}
		}
	}
	walk(sel.Where)
	if !sawBetween || !sawIn || !sawNotIn {
		t.Errorf("between=%v in=%v notin=%v", sawBetween, sawIn, sawNotIn)
	}
}

func TestParseNotBetween(t *testing.T) {
	sel := parseOne(t, "select a from t where a not between 1 and 5")
	b, ok := sel.Where.(*Between)
	if !ok || !b.Negate {
		t.Errorf("NOT BETWEEN = %#v", sel.Where)
	}
}

func TestParseSubquery(t *testing.T) {
	sel := parseOne(t, `
select a from t group by a
having sum(b) > (select sum(b) / 25 from t)`)
	hv := sel.Having.(*BinOp)
	sq, ok := hv.R.(*Subquery)
	if !ok {
		t.Fatalf("expected subquery on the right of >, got %#v", hv.R)
	}
	div, ok := sq.Select.Items[0].Expr.(*BinOp)
	if !ok || div.Op != "/" {
		t.Fatalf("subquery select item should be a division, got %#v", sq.Select.Items[0].Expr)
	}
	if _, ok := div.L.(*FuncCall); !ok {
		t.Errorf("expected aggregate on the left of /, got %#v", div.L)
	}
}

func TestParseFunctionCalls(t *testing.T) {
	sel := parseOne(t, "select count(*), sum(x), avg(y + 1) from t")
	c := sel.Items[0].Expr.(*FuncCall)
	if c.Name != "count" || !c.Star {
		t.Errorf("count(*) = %+v", c)
	}
	s := sel.Items[1].Expr.(*FuncCall)
	if s.Name != "sum" || len(s.Args) != 1 {
		t.Errorf("sum = %+v", s)
	}
	a := sel.Items[2].Expr.(*FuncCall)
	if _, ok := a.Args[0].(*BinOp); !ok {
		t.Error("function arguments may be expressions")
	}
}

func TestParseLiterals(t *testing.T) {
	sel := parseOne(t, "select 1, 2.5, 'it''s', true, false, null, -3 from t")
	if n := sel.Items[0].Expr.(*NumLit); n.Float {
		t.Error("1 is integral")
	}
	if n := sel.Items[1].Expr.(*NumLit); !n.Float {
		t.Error("2.5 is a float")
	}
	if s := sel.Items[2].Expr.(*StrLit); s.Val != "it's" {
		t.Errorf("escaped quote = %q", s.Val)
	}
	if b := sel.Items[3].Expr.(*BoolLit); !b.Val {
		t.Error("true literal")
	}
	if _, ok := sel.Items[5].Expr.(*NullLit); !ok {
		t.Error("null literal")
	}
	if u := sel.Items[6].Expr.(*UnaryOp); u.Op != "-" {
		t.Error("unary minus")
	}
}

func TestParseBatch(t *testing.T) {
	stmts, err := Parse("select a from t; select b from u;;")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 2 {
		t.Fatalf("batch length = %d", len(stmts))
	}
}

func TestParseCreateMaterializedView(t *testing.T) {
	stmts, err := Parse("create materialized view mv as select a, sum(b) as s from t group by a")
	if err != nil {
		t.Fatal(err)
	}
	cv, ok := stmts[0].(*CreateViewStmt)
	if !ok || cv.Name != "mv" || cv.Select == nil {
		t.Fatalf("create view = %#v", stmts[0])
	}
}

func TestParseComments(t *testing.T) {
	sel := parseOne(t, `
select a -- trailing comment
from t -- another
where a = 1`)
	if sel.Where == nil {
		t.Error("comment swallowed the query")
	}
}

func TestParseNotEqualVariants(t *testing.T) {
	for _, op := range []string{"<>", "!="} {
		sel := parseOne(t, "select a from t where a "+op+" 1")
		b := sel.Where.(*BinOp)
		if b.Op != "<>" {
			t.Errorf("%s parsed as %q", op, b.Op)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"select",
		"select a",              // missing FROM
		"select a from",         // missing table
		"select a from t where", // missing predicate
		"select a from t limit x",
		"select a from t limit 0",
		"select a from t order",
		"select 'unterminated from t",
		"frobnicate the database",
		"select a from t group a", // missing BY
		// (min(*) parses; the binder rejects it — see logical tests)
		"select a from t; nonsense",
		"create materialized view as select a from t", // missing name
		"select (select a from t from u",
		"select a, from t",
		"select a from t where a = ;",
		"select a @ b from t",
	}
	for _, sql := range cases {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
}

func TestParseSelectRejectsBatch(t *testing.T) {
	if _, err := ParseSelect("select a from t; select b from t"); err == nil {
		t.Error("ParseSelect must reject multi-statement input")
	}
	if _, err := ParseSelect("create materialized view v as select a from t"); err == nil {
		t.Error("ParseSelect must reject non-SELECT")
	}
}

func TestErrorMessagesMentionContext(t *testing.T) {
	_, err := Parse("select a from t where a == 1")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "syntax error") {
		t.Errorf("error %q lacks context", err)
	}
}

func TestKeywordsAreCaseInsensitive(t *testing.T) {
	sel := parseOne(t, "SELECT a FROM t WHERE a = 1 GROUP BY a HAVING count(*) > 0 ORDER BY a")
	if sel.Having == nil || len(sel.GroupBy) != 1 {
		t.Error("uppercase keywords not recognized")
	}
}

func TestIsAggName(t *testing.T) {
	for _, name := range []string{"sum", "count", "min", "max", "avg", "SUM"} {
		if !IsAggName(name) {
			t.Errorf("%s is an aggregate", name)
		}
	}
	if IsAggName("coalesce") {
		t.Error("coalesce is not an aggregate")
	}
}

// TestParserNeverPanics feeds random garbage and mutated SQL to the parser;
// it must return errors, never panic.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		"select a from t where a = 1",
		"with x as (select a from t) select * from x",
		"select sum(a), b from t group by b having sum(a) > (select 1 from u) order by 1 desc limit 3",
		"create materialized view v as select a from t",
	}
	mutate := func(s string, seed int64) string {
		b := []byte(s)
		for i := 0; i < 4; i++ {
			pos := int(uint64(seed+int64(i)*7919) % uint64(len(b)+1))
			chars := []byte{';', '(', ')', '\'', '%', 'x', ' ', ',', '.', '*', '='}
			c := chars[uint64(seed+int64(i)*104729)%uint64(len(chars))]
			if pos < len(b) {
				b[pos] = c
			} else {
				b = append(b, c)
			}
		}
		return string(b)
	}
	f := func(seed int64, pick uint8) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("parser panicked on mutated input (seed %d): %v", seed, r)
			}
		}()
		src := mutate(seeds[int(pick)%len(seeds)], seed)
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestParseWithClause(t *testing.T) {
	stmts, err := Parse(`
with a as (select x from t), b as (select y from u)
select a.x, b.y from a, b where a.x = b.y`)
	if err != nil {
		t.Fatal(err)
	}
	sel := stmts[0].(*SelectStmt)
	if len(sel.With) != 2 || sel.With[0].Name != "a" || sel.With[1].Name != "b" {
		t.Fatalf("WITH entries = %+v", sel.With)
	}
	if sel.With[0].Select == nil || len(sel.From) != 2 {
		t.Error("WITH bodies or FROM lost")
	}
	// Nested WITH inside a CTE body.
	stmts2, err := Parse("with a as (with b as (select x from t) select x from b) select x from a")
	if err != nil {
		t.Fatal(err)
	}
	inner := stmts2[0].(*SelectStmt).With[0].Select
	if len(inner.With) != 1 || inner.With[0].Name != "b" {
		t.Error("nested WITH not parsed")
	}
}

func TestParseLike(t *testing.T) {
	sel := parseOne(t, "select a from t where a like 'x%' and b not like '_y'")
	var likes, notLikes int
	var walk func(n Node)
	walk = func(n Node) {
		switch v := n.(type) {
		case *BinOp:
			if v.Op == "like" {
				likes++
			}
			walk(v.L)
			walk(v.R)
		case *UnaryOp:
			if v.Op == "not" {
				if b, ok := v.Arg.(*BinOp); ok && b.Op == "like" {
					notLikes++
				}
			}
			walk(v.Arg)
		}
	}
	walk(sel.Where)
	if likes != 2 || notLikes != 1 {
		t.Errorf("likes = %d (want 2 incl. negated), notLikes = %d (want 1)", likes, notLikes)
	}
}
