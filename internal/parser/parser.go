package parser

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a semicolon-separated batch of statements.
func Parse(src string) ([]Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	var out []Statement
	for {
		for p.acceptSymbol(";") {
		}
		if p.peek().kind == tokEOF {
			break
		}
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
		if !p.acceptSymbol(";") && p.peek().kind != tokEOF {
			return nil, p.errorf("expected ';' or end of input")
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty statement batch")
	}
	return out, nil
}

// ParseSelect parses a single SELECT statement.
func ParseSelect(src string) (*SelectStmt, error) {
	stmts, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("expected a single statement, got %d", len(stmts))
	}
	sel, ok := stmts[0].(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("expected a SELECT statement")
	}
	return sel, nil
}

type parser struct {
	toks []token
	pos  int
	src  string

	// depth counts nested parseExpr/parseSelect activations. Recursive
	// descent means attacker-controlled nesting (parentheses, subqueries)
	// consumes Go stack; past maxDepth we return an error instead of
	// risking an unrecoverable stack exhaustion.
	depth int
}

// maxDepth bounds expression and query nesting. Deep enough for any real
// workload, shallow enough that the recursive-descent stack stays small.
const maxDepth = 200

func (p *parser) enter() error {
	p.depth++
	if p.depth > maxDepth {
		return fmt.Errorf("parse error: nesting deeper than %d", maxDepth)
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(format string, args ...interface{}) error {
	t := p.peek()
	near := "end of input"
	if t.kind != tokEOF {
		end := t.pos + 20
		if end > len(p.src) {
			end = len(p.src)
		}
		near = fmt.Sprintf("%q", p.src[t.pos:end])
	}
	return fmt.Errorf("syntax error near %s: %s", near, fmt.Sprintf(format, args...))
}

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokKeyword && t.text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s", strings.ToUpper(kw))
	}
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	if t := p.peek(); t.kind == tokSymbol && t.text == sym {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return p.errorf("expected %q", sym)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if t := p.peek(); t.kind == tokIdent {
		p.next()
		return t.text, nil
	}
	return "", p.errorf("expected identifier")
}

func (p *parser) parseStatement() (Statement, error) {
	switch t := p.peek(); {
	case t.kind == tokKeyword && (t.text == "select" || t.text == "with"):
		return p.parseSelect()
	case t.kind == tokKeyword && t.text == "create":
		return p.parseCreateView()
	default:
		return nil, p.errorf("expected SELECT, WITH, or CREATE MATERIALIZED VIEW")
	}
}

func (p *parser) parseCreateView() (Statement, error) {
	p.next() // create
	if err := p.expectKeyword("materialized"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("view"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("as"); err != nil {
		return nil, err
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return &CreateViewStmt{Name: name, Select: sel}, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	var ctes []CTE
	if p.acceptKeyword("with") {
		for {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("as"); err != nil {
				return nil, err
			}
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			inner, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			ctes = append(ctes, CTE{Name: name, Select: inner})
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{With: ctes}
	sel.Distinct = p.acceptKeyword("distinct")

	// Select list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}

	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		sel.From = append(sel.From, ref)
		if !p.acceptSymbol(",") {
			break
		}
	}

	if p.acceptKeyword("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.acceptKeyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("having") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if p.acceptKeyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("desc") {
				item.Desc = true
			} else {
				p.acceptKeyword("asc")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("limit") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, p.errorf("expected number after LIMIT")
		}
		p.next()
		n, err := strconv.Atoi(t.text)
		if err != nil || n <= 0 {
			return nil, p.errorf("invalid LIMIT %q", t.text)
		}
		sel.Limit = n
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("as") {
		alias, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if t := p.peek(); t.kind == tokIdent {
		// Bare alias: "expr name".
		p.next()
		item.Alias = t.text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name}
	if p.acceptKeyword("as") {
		alias, err := p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
	} else if t := p.peek(); t.kind == tokIdent {
		p.next()
		ref.Alias = t.text
	}
	return ref, nil
}

// Expression grammar (precedence climbing):
//   expr    := orExpr
//   orExpr  := andExpr (OR andExpr)*
//   andExpr := notExpr (AND notExpr)*
//   notExpr := NOT notExpr | cmpExpr
//   cmpExpr := addExpr ((= <> < <= > >=) addExpr | BETWEEN addExpr AND addExpr | IN (...))?
//   addExpr := mulExpr ((+|-) mulExpr)*
//   mulExpr := unary ((*|/) unary)*
//   unary   := - unary | primary
//   primary := literal | colref | func(args) | ( expr ) | ( select ... )

func (p *parser) parseExpr() (Node, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	return p.parseOr()
}

func (p *parser) parseOr() (Node, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Node, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Node, error) {
	// Iterative so a long NOT chain cannot grow the Go stack.
	n := 0
	for p.acceptKeyword("not") {
		n++
	}
	arg, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for ; n > 0; n-- {
		arg = &UnaryOp{Op: "not", Arg: arg}
	}
	return arg, nil
}

func (p *parser) parseCmp() (Node, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == tokSymbol {
		switch t.text {
		case "=", "<>", "<", "<=", ">", ">=":
			p.next()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &BinOp{Op: t.text, L: l, R: r}, nil
		}
	}
	negate := false
	if p.peekKeyword("not") {
		// Lookahead for NOT BETWEEN / NOT IN / NOT LIKE.
		save := p.pos
		p.next()
		if p.peekKeyword("between") || p.peekKeyword("in") || p.peekKeyword("like") {
			negate = true
		} else {
			p.pos = save
			return l, nil
		}
	}
	if p.acceptKeyword("like") {
		pat, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		node := Node(&BinOp{Op: "like", L: l, R: pat})
		if negate {
			node = &UnaryOp{Op: "not", Arg: node}
		}
		return node, nil
	}
	if p.acceptKeyword("between") {
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &Between{Expr: l, Lo: lo, Hi: hi, Negate: negate}, nil
	}
	if p.acceptKeyword("in") {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var vals []Node
		for {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &InList{Expr: l, Vals: vals, Negate: negate}, nil
	}
	return l, nil
}

func (p *parser) peekKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokKeyword && t.text == kw
}

func (p *parser) parseAdd() (Node, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-") {
			p.next()
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseMul() (Node, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "*" || t.text == "/") {
			p.next()
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseUnary() (Node, error) {
	// Iterative so a long minus chain cannot grow the Go stack.
	n := 0
	for t := p.peek(); t.kind == tokSymbol && t.text == "-"; t = p.peek() {
		p.next()
		n++
	}
	arg, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for ; n > 0; n-- {
		arg = &UnaryOp{Op: "-", Arg: arg}
	}
	return arg, nil
}

func (p *parser) parsePrimary() (Node, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		return &NumLit{Text: t.text, Float: strings.Contains(t.text, ".")}, nil
	case tokString:
		p.next()
		return &StrLit{Val: t.text}, nil
	case tokKeyword:
		switch t.text {
		case "true":
			p.next()
			return &BoolLit{Val: true}, nil
		case "false":
			p.next()
			return &BoolLit{Val: false}, nil
		case "null":
			p.next()
			return &NullLit{}, nil
		}
		return nil, p.errorf("unexpected keyword %s in expression", strings.ToUpper(t.text))
	case tokIdent:
		p.next()
		name := t.text
		// Function call?
		if p.peek().kind == tokSymbol && p.peek().text == "(" {
			p.next()
			fc := &FuncCall{Name: strings.ToLower(name)}
			if p.acceptSymbol("*") {
				fc.Star = true
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return fc, nil
			}
			if !p.acceptSymbol(")") {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, arg)
					if !p.acceptSymbol(",") {
						break
					}
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
			}
			return fc, nil
		}
		// Qualified column?
		if p.acceptSymbol(".") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColRef{Qualifier: name, Name: col}, nil
		}
		return &ColRef{Name: name}, nil
	case tokSymbol:
		if t.text == "(" {
			p.next()
			if p.peekKeyword("select") {
				sel, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return &Subquery{Select: sel}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf("unexpected token in expression")
}
