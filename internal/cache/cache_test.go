package cache

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// rowsOfSize builds a boxed result of n rows whose total RowSize is
// deterministic, for budget-sensitive tests.
func rowsOfSize(n int) *storage.ColBox {
	out := make([]sqltypes.Row, n)
	for i := range out {
		out[i] = sqltypes.Row{sqltypes.NewInt(int64(i))}
	}
	return storage.NewColBox(out)
}

func rowsBytes(box *storage.ColBox) int64 {
	var b int64
	for _, r := range box.Rows() {
		b += int64(sqltypes.RowSize(r))
	}
	return b
}

func TestLookupMissThenHit(t *testing.T) {
	c := New(0, nil)
	v := map[string]uint64{"orders": 1}
	if _, ok := c.Lookup("k", v); ok {
		t.Fatal("lookup on empty cache hit")
	}
	rows := rowsOfSize(3)
	if !c.Admit("k", rows, v, 1, 100) {
		t.Fatal("admit rejected a cheap entry")
	}
	got, ok := c.Lookup("k", v)
	if !ok || len(got.Rows()) != 3 {
		t.Fatalf("lookup after admit: ok=%v box=%v", ok, got)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 entry", s)
	}
	if s.Bytes != rowsBytes(rows) {
		t.Fatalf("bytes = %d, want %d", s.Bytes, rowsBytes(rows))
	}
}

func TestVersionMismatchInvalidates(t *testing.T) {
	c := New(0, nil)
	c.Admit("k", rowsOfSize(2), map[string]uint64{"orders": 1, "lineitem": 4}, 1, 100)

	// Any changed, missing, or extra table version must invalidate.
	for _, v := range []map[string]uint64{
		{"orders": 2, "lineitem": 4},
		{"orders": 1},
		{"orders": 1, "lineitem": 4, "part": 0},
	} {
		c.Admit("k", rowsOfSize(2), map[string]uint64{"orders": 1, "lineitem": 4}, 1, 100)
		if _, ok := c.Lookup("k", v); ok {
			t.Fatalf("lookup with versions %v hit a stale entry", v)
		}
		// The stale entry must be gone, not just skipped.
		if got := c.Stats().Entries; got != 0 {
			t.Fatalf("stale entry retained after mismatch %v: %d entries", v, got)
		}
	}
	if inv := c.Stats().Invalidations; inv != 3 {
		t.Fatalf("invalidations = %d, want 3", inv)
	}
}

func TestAdmitCostBound(t *testing.T) {
	c := New(0, nil)
	// Reading back at least as expensive as recomputing: reject (H2 bound).
	if c.Admit("k", rowsOfSize(1), nil, 50, 50) {
		t.Fatal("admitted an entry whose read cost matches recompute cost")
	}
	if c.Admit("", rowsOfSize(1), nil, 1, 100) {
		t.Fatal("admitted an entry with an empty key")
	}
	if s := c.Stats(); s.Rejected != 1 || s.Entries != 0 {
		t.Fatalf("stats = %+v, want 1 rejected, 0 entries", s)
	}
}

func TestLRUEviction(t *testing.T) {
	one := rowsBytes(rowsOfSize(1))
	c := New(3*one, nil)
	v := map[string]uint64{}
	for i := 0; i < 3; i++ {
		c.Admit(fmt.Sprintf("k%d", i), rowsOfSize(1), v, 1, 100)
	}
	// Touch k0 so k1 becomes the LRU victim.
	if _, ok := c.Lookup("k0", v); !ok {
		t.Fatal("k0 missing before eviction")
	}
	c.Admit("k3", rowsOfSize(1), v, 1, 100)
	if _, ok := c.Lookup("k1", v); ok {
		t.Fatal("k1 survived eviction; LRU order wrong")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Lookup(k, v); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 3 || s.Bytes != 3*one {
		t.Fatalf("stats = %+v, want 1 eviction, 3 entries, %d bytes", s, 3*one)
	}
}

func TestOversizedEntryRejected(t *testing.T) {
	one := rowsBytes(rowsOfSize(1))
	c := New(one, nil)
	if c.Admit("big", rowsOfSize(10), nil, 1, 1e9) {
		t.Fatal("admitted an entry larger than the whole budget")
	}
	if s := c.Stats(); s.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", s.Rejected)
	}
}

func TestSetBudgetEvicts(t *testing.T) {
	one := rowsBytes(rowsOfSize(1))
	c := New(4*one, nil)
	for i := 0; i < 4; i++ {
		c.Admit(fmt.Sprintf("k%d", i), rowsOfSize(1), nil, 1, 100)
	}
	c.SetBudget(2 * one)
	s := c.Stats()
	if s.Entries != 2 || s.Bytes != 2*one || s.Evictions != 2 {
		t.Fatalf("after SetBudget: %+v, want 2 entries, %d bytes, 2 evictions", s, 2*one)
	}
	// Most recently admitted entries survive.
	for _, k := range []string{"k2", "k3"} {
		if _, ok := c.Lookup(k, nil); !ok {
			t.Fatalf("%s evicted by SetBudget; LRU order wrong", k)
		}
	}
}

func TestClear(t *testing.T) {
	c := New(0, nil)
	c.Admit("k", rowsOfSize(5), nil, 1, 100)
	c.Clear()
	s := c.Stats()
	if s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("after Clear: %+v, want empty", s)
	}
	if _, ok := c.Lookup("k", nil); ok {
		t.Fatal("lookup hit after Clear")
	}
}

func TestReAdmitReplaces(t *testing.T) {
	c := New(0, nil)
	c.Admit("k", rowsOfSize(1), map[string]uint64{"t": 1}, 1, 100)
	c.Admit("k", rowsOfSize(4), map[string]uint64{"t": 2}, 1, 100)
	box, ok := c.Lookup("k", map[string]uint64{"t": 2})
	if !ok || len(box.Rows()) != 4 {
		t.Fatalf("re-admit did not replace: ok=%v box=%v", ok, box)
	}
	if s := c.Stats(); s.Entries != 1 || s.Bytes != rowsBytes(rowsOfSize(4)) {
		t.Fatalf("stats after replace = %+v", s)
	}
}

func TestMetricsWiring(t *testing.T) {
	r := obs.NewRegistry()
	c := New(0, r)
	v := map[string]uint64{"t": 1}
	c.Admit("k", rowsOfSize(2), v, 1, 100)
	c.Lookup("k", v)                      // hit
	c.Lookup("absent", v)                 // miss
	c.Lookup("k", map[string]uint64{})    // invalidation + miss
	c.Admit("k2", rowsOfSize(1), v, 9, 9) // rejected
	snap := r.Snapshot()
	want := map[string]float64{
		"cache_hits_total":          1,
		"cache_misses_total":        2,
		"cache_invalidations_total": 1,
		"cache_rejected_total":      1,
	}
	for name, val := range want {
		if snap[name] != val {
			t.Errorf("%s = %v, want %v", name, snap[name], val)
		}
	}
	if snap["cache_bytes"] != 0 && snap["cache_bytes"] != float64(rowsBytes(rowsOfSize(2))) {
		// Invalidation removed the only entry, so the gauge should be 0.
		t.Errorf("cache_bytes = %v", snap["cache_bytes"])
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(0, nil)
	v := map[string]uint64{"t": 1}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%7)
				if box, ok := c.Lookup(key, v); ok {
					if len(box.Rows()) != 3 {
						t.Errorf("cached rows len = %d, want 3", len(box.Rows()))
						return
					}
				} else {
					c.Admit(key, rowsOfSize(3), v, 1, 100)
				}
				if i%50 == 0 {
					switch g % 3 {
					case 0:
						c.Clear()
					case 1:
						c.SetBudget(int64(1 + i*100))
					default:
						c.Stats()
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
