// Package cache implements the cross-batch spool result cache: materialized
// CSE work tables kept across query batches, keyed by the candidate's
// batch-independent normalized spec (core spec.cacheKey, carried on
// opt.CSEPlan.SpecKey).
//
// Consistency is version-based. Every entry records the monotonic version
// counter of each base table its plan read (storage.Store versions, bumped
// by Create/Insert/Drop/Touch), snapshotted *before* the spool was computed.
// A lookup whose current versions differ from the entry's — any table, any
// direction — removes the entry and reports a miss, so a write racing a
// materialization at worst produces an entry that the next lookup discards.
//
// Admission is cost-based, reusing the engine's H2-style bound: an entry is
// admitted only when reading it back (opt.SpoolReadCost over the actual row
// set) is cheaper than recomputing its plan (the plan's estimated cost), and
// only when it fits the byte budget. Eviction is LRU.
//
// Cached results are shared by reference, never copied: entries hold a
// storage.ColBox — the row set plus its lazily built columnar shadow — so a
// hit hands back both forms without copying or re-encoding. The executor
// already treats spool rows as immutable (parallel consumers of one batch
// share them), and the cache inherits that invariant.
package cache

import (
	"container/list"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// DefaultBudget is the byte budget used when a Cache is created with a
// non-positive budget: 64 MiB, small enough to be harmless in tests and
// large enough to hold every spool the bench workloads produce.
const DefaultBudget = 64 << 20

// lookupBounds are the cache_lookup_seconds histogram buckets. Lookups are
// map-probe fast — microseconds, not milliseconds — so the default
// seconds-scale buckets would collapse every observation into the first one.
var lookupBounds = []float64{1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 1e-3, 1e-2}

// entry is one cached spool result.
type entry struct {
	key      string
	box      *storage.ColBox
	bytes    int64
	versions map[string]uint64
	elem     *list.Element
}

// Stats is a point-in-time snapshot of cache state and counters.
type Stats struct {
	Entries       int
	Bytes         int64
	Budget        int64
	Hits          int64
	Misses        int64
	Evictions     int64
	Invalidations int64
	Rejected      int64
}

// Cache is a byte-budgeted LRU over cached spool results. All methods are
// safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	entries map[string]*entry
	lru     *list.List // front = most recently used; values are *entry

	hits, misses, evictions, invalidations, rejected int64

	metrics *obs.Registry
}

// New returns an empty cache with the given byte budget (non-positive means
// DefaultBudget). The registry receives hit/miss/eviction/invalidation
// counters, a bytes gauge, and a hit-latency histogram; nil disables metrics.
func New(budget int64, metrics *obs.Registry) *Cache {
	if budget <= 0 {
		budget = DefaultBudget
	}
	return &Cache{
		budget:  budget,
		entries: make(map[string]*entry),
		lru:     list.New(),
		metrics: metrics,
	}
}

// Lookup returns the cached result for a key when present and still valid
// against the caller's current version snapshot. A version mismatch removes
// the entry (counted as an invalidation) and reports a miss, so hits+misses
// always equals lookups.
func (c *Cache) Lookup(key string, versions map[string]uint64) (*storage.ColBox, bool) {
	start := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.metrics != nil {
		defer func() {
			c.metrics.HistogramWith("cache_lookup_seconds", lookupBounds).
				Observe(time.Since(start).Seconds())
		}()
	}
	e, ok := c.entries[key]
	if ok && !versionsEqual(e.versions, versions) {
		c.removeLocked(e)
		c.invalidations++
		c.count("cache_invalidations_total")
		ok = false
	}
	if !ok {
		c.misses++
		c.count("cache_misses_total")
		return nil, false
	}
	c.lru.MoveToFront(e.elem)
	c.hits++
	c.count("cache_hits_total")
	if c.metrics != nil {
		c.metrics.Histogram("cache_hit_seconds").Observe(time.Since(start).Seconds())
	}
	return e.box, true
}

// Admit offers a freshly materialized spool result to the cache. versions
// must be the source-table snapshot taken before the plan ran. The entry is
// rejected when reading it back (readCost) would not beat recomputing it
// (computeCost) — the H2-style bound — or when it alone exceeds the budget;
// otherwise LRU entries are evicted until it fits. Reports whether the entry
// was admitted.
func (c *Cache) Admit(key string, box *storage.ColBox, versions map[string]uint64, readCost, computeCost float64) bool {
	if key == "" || box == nil {
		return false
	}
	var bytes int64
	for _, r := range box.Rows() {
		bytes += int64(sqltypes.RowSize(r))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if readCost >= computeCost || bytes > c.budget {
		c.rejected++
		c.count("cache_rejected_total")
		return false
	}
	if old, ok := c.entries[key]; ok {
		// Concurrent batches can materialize the same spool; last admit wins.
		c.removeLocked(old)
	}
	for c.bytes+bytes > c.budget {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.removeLocked(back.Value.(*entry))
		c.evictions++
		c.count("cache_evictions_total")
	}
	e := &entry{key: key, box: box, bytes: bytes, versions: copyVersions(versions)}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.bytes += bytes
	c.gaugeBytes()
	return true
}

// Clear drops every entry.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*entry)
	c.lru.Init()
	c.bytes = 0
	c.gaugeBytes()
}

// SetBudget changes the byte budget (non-positive means DefaultBudget) and
// evicts LRU entries until the cache fits.
func (c *Cache) SetBudget(budget int64) {
	if budget <= 0 {
		budget = DefaultBudget
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.budget = budget
	for c.bytes > c.budget {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.removeLocked(back.Value.(*entry))
		c.evictions++
		c.count("cache_evictions_total")
	}
	c.gaugeBytes()
}

// EntryInfo describes one cached entry for inspection (the debug server's
// /cache endpoint): its spec key, row/byte footprint, and the source-table
// version snapshot it validates against.
type EntryInfo struct {
	Key      string            `json:"key"`
	Rows     int               `json:"rows"`
	Bytes    int64             `json:"bytes"`
	Versions map[string]uint64 `json:"versions"`
}

// Entries snapshots the cached entries in LRU order, most recently used
// first. Row data is not included — only footprints and identity.
func (c *Cache) Entries() []EntryInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]EntryInfo, 0, len(c.entries))
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		out = append(out, EntryInfo{
			Key:      e.key,
			Rows:     len(e.box.Rows()),
			Bytes:    e.bytes,
			Versions: copyVersions(e.versions),
		})
	}
	return out
}

// Stats snapshots the cache's state and counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:       len(c.entries),
		Bytes:         c.bytes,
		Budget:        c.budget,
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		Rejected:      c.rejected,
	}
}

// String renders a one-line summary for the shell's \cache command.
func (s Stats) String() string {
	return fmt.Sprintf("%d entries, %d/%d bytes; %d hits, %d misses, %d invalidations, %d evictions, %d rejected",
		s.Entries, s.Bytes, s.Budget, s.Hits, s.Misses, s.Invalidations, s.Evictions, s.Rejected)
}

// removeLocked unlinks an entry; callers hold mu.
func (c *Cache) removeLocked(e *entry) {
	delete(c.entries, e.key)
	c.lru.Remove(e.elem)
	c.bytes -= e.bytes
	c.gaugeBytes()
}

func (c *Cache) count(name string) {
	if c.metrics != nil {
		c.metrics.Counter(name).Inc()
	}
}

func (c *Cache) gaugeBytes() {
	if c.metrics != nil {
		c.metrics.Gauge("cache_bytes").Set(float64(c.bytes))
	}
}

func versionsEqual(a, b map[string]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func copyVersions(v map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(v))
	for k, val := range v {
		out[k] = val
	}
	return out
}
