// Package server is the serving front end: sessions, bounded admission, and
// a coalescing window that groups similar in-flight queries from different
// sessions into one CSE-optimized batch on the underlying csedb.DB — the
// paper's §6 batch application recreated from live traffic. Results (and
// errors) are demultiplexed per statement back to the submitting clients; a
// plan-shape cache lets repeat batch shapes skip parse/bind/optimize.
//
// Context discipline (load-bearing): a coalesced batch always executes under
// the server's base context, never any individual client's. A client
// context gates only that client's result delivery — a disconnect
// mid-coalesce abandons one delivery while the batch (including any spools
// materialized for the departed client's statements) runs to completion for
// the survivors. The base context is canceled only after Close has drained
// all in-flight batches.
package server

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/csedb"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/parser"
)

// Options configures a server.
type Options struct {
	// Window is the coalescing window: the longest a request waits for
	// companions before its batch executes. 0 means DefaultWindow.
	Window time.Duration

	// MaxBatch is the count trigger: a window flushes early the moment this
	// many requests are pending. 0 means DefaultMaxBatch.
	MaxBatch int

	// MaxInflight bounds admission: requests beyond this many concurrently
	// in flight (queued or executing) are rejected with ErrOverloaded.
	// 0 means DefaultMaxInflight.
	MaxInflight int

	// NoCoalesce disables the window: every request executes alone,
	// immediately, on the caller's goroutine. The plan cache still applies.
	NoCoalesce bool

	// PlanCacheEntries sizes the plan-shape cache; 0 means
	// DefaultPlanCacheEntries, negative disables the cache.
	PlanCacheEntries int
}

// Defaults for Options zero values.
const (
	DefaultWindow           = 2 * time.Millisecond
	DefaultMaxBatch         = 16
	DefaultMaxInflight      = 1024
	DefaultPlanCacheEntries = 256
)

// Error is the server's typed error: Code is stable for programmatic
// matching and Retryable tells clients whether backing off and resubmitting
// can succeed.
type Error struct {
	Code      string
	Message   string
	Retryable bool
}

func (e *Error) Error() string { return e.Message }

// Sentinel errors returned by Query and session management.
var (
	ErrOverloaded    = &Error{Code: "overloaded", Message: "server overloaded: too many requests in flight", Retryable: true}
	ErrShuttingDown  = &Error{Code: "shutting_down", Message: "server is shutting down", Retryable: true}
	ErrSessionClosed = &Error{Code: "session_closed", Message: "session is closed", Retryable: false}
)

// Result is one request's outcome.
type Result struct {
	// Statements holds this request's per-statement results, in the order
	// the request's SQL listed them.
	Statements []*exec.StatementResult

	// Coalesced is the number of client requests in the executed batch
	// (1 = the request ran alone).
	Coalesced int

	// Sessions is the number of distinct sessions in the executed batch.
	Sessions int

	// PlanCached reports whether the batch skipped parse/optimize via the
	// plan-shape cache.
	PlanCached bool

	// Wait is the time spent in the coalescing window before execution.
	Wait time.Duration

	// Wall is the request's total server-side time.
	Wall time.Duration
}

type response struct {
	res *Result
	err error
}

// request is one in-flight client query.
type request struct {
	sess  *Session
	sql   string
	shape string
	ctx   context.Context
	enq   time.Time
	// done is buffered (capacity 1) so delivery never blocks on a client
	// that gave up: a canceled client's response lands in the buffer and is
	// garbage collected with the request.
	done chan response
}

// Server coalesces queries from many sessions into CSE-optimized batches on
// one csedb.DB. The DB's read path is shared; any writes (Insert, DDL) must
// be serialized by the embedder and must not overlap in-flight queries, per
// the csedb.DB contract.
type Server struct {
	db      *csedb.DB
	opts    Options
	metrics *obs.Registry
	plans   *planCache

	baseCtx context.Context
	cancel  context.CancelFunc

	mu       sync.Mutex
	closed   bool
	sessions map[string]*Session
	sessSeq  int
	pending  []*request
	inflight int
	deadline time.Time // flush deadline for the open window; valid when pending is non-empty

	kick      chan struct{}
	flusherWG sync.WaitGroup
	execWG    sync.WaitGroup
}

// New starts a server over db. Close it to drain and release the flusher.
func New(db *csedb.DB, opts Options) *Server {
	if opts.Window <= 0 {
		opts.Window = DefaultWindow
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = DefaultMaxBatch
	}
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = DefaultMaxInflight
	}
	if opts.PlanCacheEntries == 0 {
		opts.PlanCacheEntries = DefaultPlanCacheEntries
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		db:       db,
		opts:     opts,
		metrics:  db.Metrics(),
		plans:    newPlanCache(opts.PlanCacheEntries, db.Store(), db.Metrics()),
		baseCtx:  ctx,
		cancel:   cancel,
		sessions: make(map[string]*Session),
		kick:     make(chan struct{}, 1),
	}
	if !opts.NoCoalesce {
		s.flusherWG.Add(1)
		go s.flusher()
	}
	return s
}

// DB exposes the underlying database (metrics, flight recorder).
func (s *Server) DB() *csedb.DB { return s.db }

// Session is one client's handle; create with NewSession, submit with Query.
// A Session is safe for concurrent use, though a real client typically
// pipelines one query at a time.
type Session struct {
	id  string
	srv *Server

	mu     sync.Mutex
	closed bool
}

// ID returns the session's server-assigned identifier.
func (sess *Session) ID() string { return sess.id }

// NewSession registers a new client session.
func (s *Server) NewSession() (*Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrShuttingDown
	}
	s.sessSeq++
	sess := &Session{id: fmt.Sprintf("s%04d", s.sessSeq), srv: s}
	s.sessions[sess.id] = sess
	s.metrics.Counter("server_sessions_total").Inc()
	s.metrics.Gauge("server_sessions_active").Set(float64(len(s.sessions)))
	return sess, nil
}

// Session looks up a live session by id; nil if unknown or closed.
func (s *Server) Session(id string) *Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

// Close marks the session closed and deregisters it. In-flight queries
// complete normally.
func (sess *Session) Close() {
	sess.mu.Lock()
	if sess.closed {
		sess.mu.Unlock()
		return
	}
	sess.closed = true
	sess.mu.Unlock()

	s := sess.srv
	s.mu.Lock()
	delete(s.sessions, sess.id)
	s.metrics.Gauge("server_sessions_active").Set(float64(len(s.sessions)))
	s.mu.Unlock()
}

func (sess *Session) isClosed() bool {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.closed
}

// Query submits one request — a SELECT statement or a semicolon-separated
// SELECT batch — and blocks until its results are ready or ctx is done.
//
// Cancellation: if ctx ends while the request is queued or executing, Query
// returns ctx's error immediately, but the request itself stays in its
// coalesced batch — execution is governed by the server's lifecycle, not
// the client's, so other clients in the batch are unaffected (and still
// reuse any spools the departed client's statements fed). The request's
// admission slot is likewise held until its batch delivers, so MaxInflight
// bounds true occupancy even under cancellation storms.
func (sess *Session) Query(ctx context.Context, sql string) (*Result, error) {
	s := sess.srv
	if sess.isClosed() {
		return nil, ErrSessionClosed
	}

	r := &request{
		sess:  sess,
		sql:   sql,
		shape: shapeKey(sql),
		ctx:   ctx,
		enq:   time.Now(),
		done:  make(chan response, 1),
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrShuttingDown
	}
	if s.inflight >= s.opts.MaxInflight {
		s.mu.Unlock()
		s.metrics.Counter("server_rejected_total").Inc()
		return nil, ErrOverloaded
	}
	s.inflight++
	s.metrics.Counter("server_requests_total").Inc()
	if s.opts.NoCoalesce {
		// Direct path: execute on the caller's goroutine, registered with
		// execWG (under s.mu, closed just checked) so Close still drains us.
		s.execWG.Add(1)
		s.mu.Unlock()
		func() {
			defer s.execWG.Done()
			s.dispatch([]*request{r})
		}()
	} else {
		s.pending = append(s.pending, r)
		first := len(s.pending) == 1
		if first {
			s.deadline = r.enq.Add(s.opts.Window)
		}
		full := len(s.pending) >= s.opts.MaxBatch
		s.mu.Unlock()
		if full || first {
			s.kickFlusher()
		}
	}

	// No inflight decrement here: the slot is released by finish when the
	// request's batch delivers its response. Returning early on ctx.Done
	// must NOT free the slot — the canceled request still occupies the
	// pending window or an executing batch, and releasing early would let a
	// cancellation storm admit more concurrent work than MaxInflight bounds.
	select {
	case resp := <-r.done:
		if resp.err != nil {
			s.metrics.Counter("server_requests_failed_total").Inc()
			return nil, resp.err
		}
		return resp.res, nil
	case <-ctx.Done():
		s.metrics.Counter("server_canceled_total").Inc()
		return nil, ctx.Err()
	}
}

// finish delivers a request's terminal response and releases its admission
// slot. Every request passes through here exactly once — on demux, on a
// per-request parse error, or on a batch failure — so inflight tracks true
// occupancy (window + execution), not just clients still waiting.
func (s *Server) finish(r *request, resp response) {
	r.done <- resp
	s.mu.Lock()
	s.inflight--
	s.mu.Unlock()
}

func (s *Server) kickFlusher() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// flusher is the single goroutine that owns the coalescing window: it wakes
// on enqueue kicks and on the window timer, flushes batches when the count
// or time trigger fires, and re-windows any overflow remainder.
func (s *Server) flusher() {
	defer s.flusherWG.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-s.kick:
		case <-timer.C:
		}

		s.mu.Lock()
		now := time.Now()
		for len(s.pending) > 0 && (s.closed || len(s.pending) >= s.opts.MaxBatch || !now.Before(s.deadline)) {
			n := len(s.pending)
			if n > s.opts.MaxBatch {
				n = s.opts.MaxBatch
			}
			batch := s.pending[:n:n]
			s.pending = append([]*request(nil), s.pending[n:]...)
			if len(s.pending) > 0 {
				// Overflow remainder opens a fresh window.
				s.deadline = now.Add(s.opts.Window)
			}
			s.execWG.Add(1)
			go func(b []*request) {
				defer s.execWG.Done()
				s.dispatch(b)
			}(batch)
		}
		rearm := len(s.pending) > 0
		deadline := s.deadline
		closed := s.closed
		s.mu.Unlock()

		if closed && !rearm {
			return
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		if rearm {
			timer.Reset(time.Until(deadline))
		}
	}
}

// Close drains the server: no new sessions or requests are admitted,
// pending windows flush immediately, in-flight batches run to completion,
// and only then is the base context canceled.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	s.kickFlusher()
	if !s.opts.NoCoalesce {
		s.flusherWG.Wait()
	}
	s.execWG.Wait()
	s.cancel()
	return nil
}

// dispatch executes one formed batch and demultiplexes results to its
// requests. Requests are shape-sorted so equal shapes are adjacent (stable
// plan-cache keys) and the combined key is order-insensitive.
func (s *Server) dispatch(reqs []*request) {
	start := time.Now()
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].shape < reqs[j].shape })

	shapes := make([]string, len(reqs))
	for i, r := range reqs {
		shapes[i] = r.shape
	}
	key := batchKey(shapes)

	p, counts, cached := s.plans.lookup(key)
	if !cached {
		// Parse per request so a syntax error fails only its submitter; the
		// rest of the batch proceeds without it.
		var all []parser.Statement
		counts = counts[:0]
		ok := reqs[:0]
		for _, r := range reqs {
			stmts, err := parser.Parse(r.sql)
			if err != nil {
				s.finish(r, response{err: err})
				continue
			}
			all = append(all, stmts...)
			counts = append(counts, len(stmts))
			ok = append(ok, r)
		}
		reqs = ok
		if len(reqs) == 0 {
			return
		}
		if len(reqs) != len(shapes) {
			// Some requests were dropped: re-key over the survivors, or a
			// future batch matching the original key would demux against the
			// wrong request list.
			shapes = shapes[:0]
			for _, r := range reqs {
				shapes = append(shapes, r.shape)
			}
			key = batchKey(shapes)
		}
		var err error
		p, err = s.db.PrepareStatements(all)
		if err != nil {
			s.failOrRetrySingles(reqs, err)
			return
		}
	}

	sessions := map[*Session]bool{}
	for _, r := range reqs {
		sessions[r.sess] = true
	}

	// Execute under the server's base context for coalesced batches: no
	// single client's disconnect may kill work shared with others. A
	// singleton batch is exactly one client's work, so its own context may
	// (and should) stop it.
	execCtx := s.baseCtx
	if len(reqs) == 1 {
		execCtx = reqs[0].ctx
	}
	br, err := s.db.ExecutePrepared(execCtx, p, func(root *obs.Span) {
		root.SetAttr("coalesced", len(reqs))
		root.SetAttr("sessions", len(sessions))
		root.SetAttr("plan_cached", cached)
		for _, r := range reqs {
			cs := root.Child("coalesce.request")
			cs.SetAttr("session", r.sess.id)
			cs.SetAttr("wait_us", start.Sub(r.enq).Microseconds())
			cs.End()
		}
	})
	if err != nil {
		if cached {
			// A cached plan that fails execution must not keep serving the
			// shape: left in place, every future batch with this key would
			// hit, fail, and pay the retry-singles fallback again.
			s.plans.remove(key)
		}
		s.failOrRetrySingles(reqs, err)
		return
	}
	if !cached {
		// Admit only after a successful execution so a plan that fails
		// deterministically (e.g. a table dropped between parse and run)
		// never enters the cache.
		s.plans.admit(key, p, counts)
	}

	s.metrics.Counter("server_batches_total").Inc()
	s.metrics.Histogram("server_batch_size").Observe(float64(len(reqs)))
	if len(reqs) > 1 {
		s.metrics.Counter("server_coalesced_batches_total").Inc()
		s.metrics.Counter("server_coalesced_queries_total").Add(int64(len(reqs)))
	}

	off := 0
	for i, r := range reqs {
		n := counts[i]
		res := &Result{
			Statements: br.Statements[off : off+n],
			Coalesced:  len(reqs),
			Sessions:   len(sessions),
			PlanCached: cached,
			Wait:       start.Sub(r.enq),
			Wall:       time.Since(r.enq),
		}
		off += n
		s.metrics.Histogram("server_window_wait_seconds").Observe(res.Wait.Seconds())
		s.metrics.Histogram("server_request_seconds").Observe(res.Wall.Seconds())
		s.finish(r, response{res: res})
	}
}

// failOrRetrySingles handles a combined prepare/execute failure. One bad
// request must not fail innocent companions, so unless the batch was already
// a singleton (or the server is shutting down), each request re-runs alone:
// only the guilty one then sees the error.
func (s *Server) failOrRetrySingles(reqs []*request, err error) {
	if len(reqs) == 1 || s.baseCtx.Err() != nil {
		for _, r := range reqs {
			s.finish(r, response{err: err})
		}
		return
	}
	s.metrics.Counter("server_batch_retries_total").Inc()
	for _, r := range reqs {
		if r.ctx.Err() != nil {
			// The client is gone and nobody shares this work anymore.
			s.finish(r, response{err: r.ctx.Err()})
			continue
		}
		// The retry dispatch delivers (and releases the slot) itself.
		s.dispatch([]*request{r})
	}
}

// Stats snapshots the server's metrics registry (shared with the DB).
func (s *Server) Stats() map[string]float64 { return s.metrics.Snapshot() }

// batchKey combines a batch's per-request shapes into one plan-cache key.
// Each shape is length-prefixed so the combined key is unambiguous even
// when a shape itself contains any would-be separator byte (a NUL inside a
// string literal survives shapeKey verbatim): ["ab","c"] and ["a","bc"]
// and ["ab\x00c"] all key differently.
func batchKey(shapes []string) string {
	var b strings.Builder
	n := 0
	for _, sh := range shapes {
		n += len(sh) + 8
	}
	b.Grow(n)
	for _, sh := range shapes {
		b.WriteString(strconv.Itoa(len(sh)))
		b.WriteByte(':')
		b.WriteString(sh)
	}
	return b.String()
}

// shapeKey normalizes a request's SQL to its coalescing shape: runs of
// whitespace collapse to one space, `--` line comments are stripped (the
// lexer skips them, so they must not distinguish — or conflate — shapes),
// and trailing semicolons drop, but bytes inside single-quoted string
// literals are preserved verbatim ('a  b' and 'a b' are different values,
// not the same shape). Case is preserved — equality stays strictly
// semantics-preserving.
//
// Comment handling is the load-bearing part: a newline both separates
// tokens and terminates a comment, so collapsing it blindly would merge
// "SELECT a FROM t --c WHERE a=1" (WHERE swallowed by the comment) with
// "SELECT a FROM t\n--c\nWHERE a=1" (WHERE active) into one shape and a
// plan-cache hit would then run the wrong plan. Mirroring the lexer —
// comment bytes vanish, the terminating newline survives as whitespace —
// keeps shape equality aligned with token equality.
func shapeKey(sql string) string {
	var b strings.Builder
	b.Grow(len(sql))
	inStr, space := false, false
	for i := 0; i < len(sql); i++ {
		c := sql[i]
		if inStr {
			b.WriteByte(c)
			if c == '\'' {
				if i+1 < len(sql) && sql[i+1] == '\'' {
					b.WriteByte('\'')
					i++
				} else {
					inStr = false
				}
			}
			continue
		}
		if c == '-' && i+1 < len(sql) && sql[i+1] == '-' {
			for i < len(sql) && sql[i] != '\n' {
				i++
			}
			// i now sits on the terminating newline (or end of input); the
			// whitespace case below records it so adjacent tokens stay split.
			if i == len(sql) {
				break
			}
			c = sql[i]
		}
		switch c {
		case ' ', '\t', '\n', '\r':
			space = true
		case '\'':
			if space && b.Len() > 0 {
				b.WriteByte(' ')
			}
			space = false
			inStr = true
			b.WriteByte(c)
		default:
			if space && b.Len() > 0 {
				b.WriteByte(' ')
			}
			space = false
			b.WriteByte(c)
		}
	}
	out := b.String()
	for strings.HasSuffix(out, ";") {
		out = strings.TrimSpace(strings.TrimSuffix(out, ";"))
	}
	return out
}
