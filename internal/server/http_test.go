package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(ts.URL+path, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func TestHTTPRoundTrip(t *testing.T) {
	s, _ := newTestServer(t, Options{Window: time.Millisecond})
	h := NewHTTPServer(s)
	ts := httptest.NewServer(h.Handler())
	defer ts.Close()

	// Create a session.
	resp, body := postJSON(t, ts, "/v1/session", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session create: %d %s", resp.StatusCode, body)
	}
	var sess map[string]string
	if err := json.Unmarshal(body, &sess); err != nil {
		t.Fatal(err)
	}
	id := sess["session"]
	if id == "" {
		t.Fatal("empty session id")
	}

	// Query through it.
	resp, body = postJSON(t, ts, "/v1/query", queryRequest{Session: id, SQL: "select n_name from nation where n_nationkey < 3"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Statements) != 1 || len(qr.Statements[0].Rows) != 3 {
		t.Fatalf("unexpected result shape: %s", body)
	}
	if qr.Statements[0].Columns[0] != "n_name" {
		t.Errorf("columns = %v", qr.Statements[0].Columns)
	}

	// Stats endpoint reflects the request.
	resp, body = postJSON(t, ts, "/v1/stats", nil)
	_ = resp
	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]float64
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	statsResp.Body.Close()
	if stats["server_requests_total"] < 1 {
		t.Errorf("server_requests_total = %v, want >= 1", stats["server_requests_total"])
	}

	// Unknown session → 404 with typed body.
	resp, body = postJSON(t, ts, "/v1/query", queryRequest{Session: "nope", SQL: "select n_name from nation"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session: %d %s", resp.StatusCode, body)
	}

	// Parse error → 400 with error body.
	resp, body = postJSON(t, ts, "/v1/query", queryRequest{Session: id, SQL: "selec nonsense"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad SQL: %d %s", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error.Code == "" {
		t.Errorf("error body missing code: %s", body)
	}

	// Delete the session; querying it again is a 404.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/session/"+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Errorf("session delete: %d", dresp.StatusCode)
	}
	resp, body = postJSON(t, ts, "/v1/query", queryRequest{Session: id, SQL: "select n_name from nation"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("query on deleted session: %d %s", resp.StatusCode, body)
	}
}

func TestHTTPStartClose(t *testing.T) {
	s, _ := newTestServer(t, Options{Window: time.Millisecond})
	h := NewHTTPServer(s)
	addr, err := h.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if h.Addr() != addr {
		t.Errorf("Addr() = %q, want %q", h.Addr(), addr)
	}
	resp, err := http.Post(fmt.Sprintf("http://%s/v1/session", addr), "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("session create over real listener: %d", resp.StatusCode)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	// The coalescing server is drained: direct queries now refuse.
	if _, err := s.NewSession(); err == nil {
		t.Error("NewSession succeeded after Close")
	}
}
