// Plan-shape cache: maps a normalized batch shape to a *csedb.Prepared so
// repeat shapes skip parse + bind + optimize entirely. Invalidation follows
// the spool result cache's discipline (internal/cache): each entry carries a
// version snapshot of every table it binds, taken BEFORE the optimizer read
// any statistics, and a lookup revalidates that snapshot against the live
// store — so a plan built while a write raced it is stranded (at worst it
// misses once), and a write after caching invalidates on the next lookup.
package server

import (
	"container/list"
	"sync"

	"repro/csedb"
	"repro/internal/obs"
	"repro/internal/storage"
)

// planEntry is one cached shape: the prepared batch plus the per-request
// statement counts needed to demultiplex a coalesced execution.
type planEntry struct {
	key      string
	prepared *csedb.Prepared
	counts   []int
	elem     *list.Element
}

// planCache is a mutex-guarded LRU over normalized batch shapes.
type planCache struct {
	mu      sync.Mutex
	entries map[string]*planEntry
	lru     *list.List // front = most recent
	cap     int
	store   *storage.Store
	metrics *obs.Registry
}

func newPlanCache(capacity int, store *storage.Store, metrics *obs.Registry) *planCache {
	if capacity <= 0 {
		return nil
	}
	return &planCache{
		entries: make(map[string]*planEntry),
		lru:     list.New(),
		cap:     capacity,
		store:   store,
		metrics: metrics,
	}
}

// lookup returns the cached plan for key, revalidating its table-version
// snapshot; a stale entry is evicted and reported as a miss. Nil receiver =
// cache disabled = always miss (unmetered).
func (pc *planCache) lookup(key string) (*csedb.Prepared, []int, bool) {
	if pc == nil {
		return nil, nil, false
	}
	pc.mu.Lock()
	e, ok := pc.entries[key]
	if ok {
		pc.lru.MoveToFront(e.elem)
	}
	pc.mu.Unlock()
	if !ok {
		pc.metrics.Counter("plancache_misses_total").Inc()
		return nil, nil, false
	}
	// Version check outside pc.mu: Store.Versions takes the store lock, and
	// holding both invites ordering trouble for no benefit — a racing evict
	// of the same entry is harmless.
	if e.prepared.Stale(pc.store) {
		pc.remove(key)
		pc.metrics.Counter("plancache_invalidations_total").Inc()
		pc.metrics.Counter("plancache_misses_total").Inc()
		return nil, nil, false
	}
	pc.metrics.Counter("plancache_hits_total").Inc()
	return e.prepared, e.counts, true
}

// admit inserts a freshly prepared plan, evicting from the LRU tail past
// capacity.
func (pc *planCache) admit(key string, p *csedb.Prepared, counts []int) {
	if pc == nil {
		return
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if e, ok := pc.entries[key]; ok {
		e.prepared, e.counts = p, counts
		pc.lru.MoveToFront(e.elem)
		return
	}
	e := &planEntry{key: key, prepared: p, counts: counts}
	e.elem = pc.lru.PushFront(e)
	pc.entries[key] = e
	for len(pc.entries) > pc.cap {
		tail := pc.lru.Back()
		pc.removeLocked(tail.Value.(*planEntry).key)
		pc.metrics.Counter("plancache_evictions_total").Inc()
	}
	pc.metrics.Gauge("plancache_entries").Set(float64(len(pc.entries)))
}

func (pc *planCache) remove(key string) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.removeLocked(key)
}

func (pc *planCache) removeLocked(key string) {
	e, ok := pc.entries[key]
	if !ok {
		return
	}
	pc.lru.Remove(e.elem)
	delete(pc.entries, key)
	pc.metrics.Gauge("plancache_entries").Set(float64(len(pc.entries)))
}

// len reports the live entry count (for tests).
func (pc *planCache) len() int {
	if pc == nil {
		return 0
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.entries)
}
