// HTTP/JSON transport for the serving layer. Endpoints (Go 1.22 method
// patterns):
//
//	POST   /v1/session        → {"session": "s0001"}
//	DELETE /v1/session/{id}   → 204
//	POST   /v1/query          {"session": "...", "sql": "..."} → results
//	GET    /v1/stats          → metrics snapshot
//
// Typed server errors map onto status codes: overloaded → 429,
// shutting_down → 503, session_closed / unknown session → 404, parse and
// other request errors → 400. Error bodies carry the machine-readable form:
// {"error": {"code": ..., "message": ..., "retryable": ...}}.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/exec"
	"repro/internal/sqltypes"
)

// HTTPServer serves the Server over HTTP/JSON.
type HTTPServer struct {
	srv  *Server
	http *http.Server

	mu   sync.Mutex
	addr string
}

// NewHTTPServer wraps srv with the HTTP transport; call Start to listen.
func NewHTTPServer(srv *Server) *HTTPServer {
	h := &HTTPServer{srv: srv}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/session", h.handleNewSession)
	mux.HandleFunc("DELETE /v1/session/{id}", h.handleCloseSession)
	mux.HandleFunc("POST /v1/query", h.handleQuery)
	mux.HandleFunc("GET /v1/stats", h.handleStats)
	h.http = &http.Server{Handler: mux}
	return h
}

// Handler exposes the route mux (httptest and embedding).
func (h *HTTPServer) Handler() http.Handler { return h.http.Handler }

// Start listens on addr (":0" picks a free port) and serves in the
// background. It returns the bound address.
func (h *HTTPServer) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	h.mu.Lock()
	h.addr = ln.Addr().String()
	h.mu.Unlock()
	go func() { _ = h.http.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Addr returns the bound address; empty before Start.
func (h *HTTPServer) Addr() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.addr
}

// Close stops the listener (in-flight handlers get a grace period) and then
// drains the coalescing server.
func (h *HTTPServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = h.http.Shutdown(ctx)
	return h.srv.Close()
}

type errorBody struct {
	Error struct {
		Code      string `json:"code"`
		Message   string `json:"message"`
		Retryable bool   `json:"retryable"`
	} `json:"error"`
}

func writeError(w http.ResponseWriter, status int, code, msg string, retryable bool) {
	var body errorBody
	body.Error.Code = code
	body.Error.Message = msg
	body.Error.Retryable = retryable
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeServerError(w http.ResponseWriter, err error) {
	var se *Error
	if errors.As(err, &se) {
		status := http.StatusBadRequest
		switch se.Code {
		case "overloaded":
			status = http.StatusTooManyRequests
		case "shutting_down":
			status = http.StatusServiceUnavailable
		case "session_closed":
			status = http.StatusNotFound
		}
		writeError(w, status, se.Code, se.Message, se.Retryable)
		return
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		writeError(w, 499, "canceled", err.Error(), true)
		return
	}
	writeError(w, http.StatusBadRequest, "query_error", err.Error(), false)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (h *HTTPServer) handleNewSession(w http.ResponseWriter, r *http.Request) {
	sess, err := h.srv.NewSession()
	if err != nil {
		writeServerError(w, err)
		return
	}
	writeJSON(w, map[string]string{"session": sess.ID()})
}

func (h *HTTPServer) handleCloseSession(w http.ResponseWriter, r *http.Request) {
	sess := h.srv.Session(r.PathValue("id"))
	if sess == nil {
		writeError(w, http.StatusNotFound, "unknown_session", "no such session", false)
		return
	}
	sess.Close()
	w.WriteHeader(http.StatusNoContent)
}

type queryRequest struct {
	Session string `json:"session"`
	SQL     string `json:"sql"`
}

type statementJSON struct {
	Columns []string `json:"columns"`
	Rows    [][]any  `json:"rows"`
}

type queryResponse struct {
	Statements []statementJSON `json:"statements"`
	Coalesced  int             `json:"coalesced"`
	Sessions   int             `json:"sessions"`
	PlanCached bool            `json:"plan_cached"`
	WaitUS     int64           `json:"wait_us"`
	WallUS     int64           `json:"wall_us"`
}

// handleQuery submits the query under the HTTP request's context, so a
// client disconnect cancels exactly that client's delivery (the coalesced
// batch keeps running for everyone else — see Session.Query).
func (h *HTTPServer) handleQuery(w http.ResponseWriter, r *http.Request) {
	var q queryRequest
	if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "invalid JSON body: "+err.Error(), false)
		return
	}
	sess := h.srv.Session(q.Session)
	if sess == nil {
		writeError(w, http.StatusNotFound, "unknown_session", "no such session", false)
		return
	}
	res, err := sess.Query(r.Context(), q.SQL)
	if err != nil {
		writeServerError(w, err)
		return
	}
	out := queryResponse{
		Statements: make([]statementJSON, len(res.Statements)),
		Coalesced:  res.Coalesced,
		Sessions:   res.Sessions,
		PlanCached: res.PlanCached,
		WaitUS:     res.Wait.Microseconds(),
		WallUS:     res.Wall.Microseconds(),
	}
	for i, st := range res.Statements {
		out.Statements[i] = encodeStatement(st)
	}
	writeJSON(w, out)
}

func encodeStatement(st *exec.StatementResult) statementJSON {
	enc := statementJSON{Columns: st.Names, Rows: make([][]any, len(st.Rows))}
	for i, row := range st.Rows {
		vals := make([]any, len(row))
		for j, d := range row {
			vals[j] = encodeDatum(d)
		}
		enc.Rows[i] = vals
	}
	return enc
}

// encodeDatum maps a datum to its JSON value; dates render via the datum's
// own formatter so the wire form matches the shell's.
func encodeDatum(d sqltypes.Datum) any {
	switch d.Kind() {
	case sqltypes.KindNull:
		return nil
	case sqltypes.KindBool:
		return d.Bool()
	case sqltypes.KindInt:
		return d.Int()
	case sqltypes.KindFloat:
		return d.Float()
	case sqltypes.KindString:
		return d.Str()
	default:
		return d.String()
	}
}

func (h *HTTPServer) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, h.srv.Stats())
}
