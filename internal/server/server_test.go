package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/csedb"
	"repro/internal/exec"
	"repro/internal/sqltypes"
)

// newTestDB loads a small TPC-H database with span tracing on (the
// zero-unfinished-span invariant is asserted by the difftest cells; here the
// spans exercise the annotate path).
func newTestDB(t *testing.T) *csedb.DB {
	t.Helper()
	db := csedb.Open(csedb.Options{SpanTracing: true})
	if err := db.LoadTPCH(0.01, 1); err != nil {
		t.Fatal(err)
	}
	return db
}

func newTestServer(t *testing.T, opts Options) (*Server, *csedb.DB) {
	t.Helper()
	db := newTestDB(t)
	s := New(db, opts)
	t.Cleanup(func() { s.Close() })
	return s, db
}

func mustSession(t *testing.T, s *Server) *Session {
	t.Helper()
	sess, err := s.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

const q1 = `select c_nationkey, c_mktsegment, sum(l_extendedprice) as le, sum(l_quantity) as lq
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and o_orderdate < '1996-07-01' and c_nationkey > 0 and c_nationkey < 20
group by c_nationkey, c_mktsegment`

const q2 = `select c_nationkey, sum(l_extendedprice) as le, sum(l_quantity) as lq
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and o_orderdate < '1996-07-01' and c_nationkey > 5 and c_nationkey < 25
group by c_nationkey`

// datumText renders a datum for comparison, rounding floats to 4 decimal
// places exactly like difftest.Normalize: a CSE-shared plan may sum floats
// in a different order than the direct plan, which is a last-ulp
// difference, not a correctness bug.
func datumText(d sqltypes.Datum) string {
	if d.Kind() == sqltypes.KindFloat {
		return fmt.Sprintf("%.4f", d.Float())
	}
	return d.String()
}

func sameResults(a, b []*exec.StatementResult) error {
	if len(a) != len(b) {
		return fmt.Errorf("statement count %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i].Rows) != len(b[i].Rows) {
			return fmt.Errorf("statement %d: %d rows vs %d", i, len(a[i].Rows), len(b[i].Rows))
		}
		for j := range a[i].Rows {
			for k := range a[i].Rows[j] {
				if da, db := datumText(a[i].Rows[j][k]), datumText(b[i].Rows[j][k]); da != db {
					return fmt.Errorf("statement %d row %d col %d: %s vs %s", i, j, k, da, db)
				}
			}
		}
	}
	return nil
}

// TestSingleQueryWindow pins that a window holding exactly one query does not
// regress vs the direct DB path: same rows, Coalesced == 1.
func TestSingleQueryWindow(t *testing.T) {
	s, db := newTestServer(t, Options{Window: time.Millisecond})
	sess := mustSession(t, s)
	res, err := sess.Query(context.Background(), q1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coalesced != 1 || res.Sessions != 1 {
		t.Errorf("Coalesced=%d Sessions=%d, want 1/1", res.Coalesced, res.Sessions)
	}
	direct, err := db.Run(q1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameResults(res.Statements, direct.Statements); err != nil {
		t.Error(err)
	}
}

// TestCoalescedBatch parks two sessions' similar queries in one window and
// checks both get their own (direct-path-identical) answers from the shared
// batch.
func TestCoalescedBatch(t *testing.T) {
	s, db := newTestServer(t, Options{Window: 200 * time.Millisecond, MaxBatch: 2})
	sa, sb := mustSession(t, s), mustSession(t, s)

	var ra, rb *Result
	var ea, eb error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); ra, ea = sa.Query(context.Background(), q1) }()
	go func() { defer wg.Done(); rb, eb = sb.Query(context.Background(), q2) }()
	wg.Wait()
	if ea != nil || eb != nil {
		t.Fatal(ea, eb)
	}
	// MaxBatch 2 guarantees they coalesced (the second enqueue triggers the
	// count flush regardless of timing).
	if ra.Coalesced != 2 || rb.Coalesced != 2 {
		t.Fatalf("Coalesced = %d/%d, want 2/2", ra.Coalesced, rb.Coalesced)
	}
	if ra.Sessions != 2 {
		t.Errorf("Sessions = %d, want 2", ra.Sessions)
	}
	da, _ := db.Run(q1)
	dbres, _ := db.Run(q2)
	if err := sameResults(ra.Statements, da.Statements); err != nil {
		t.Errorf("session a: %v", err)
	}
	if err := sameResults(rb.Statements, dbres.Statements); err != nil {
		t.Errorf("session b: %v", err)
	}
	if s.DB().Metrics().Counter("server_coalesced_batches_total").Value() == 0 {
		t.Error("server_coalesced_batches_total = 0 after a coalesced batch")
	}
}

// TestEmptyWindowFlush pins that a spurious flusher wakeup with nothing
// pending is harmless and the server still serves afterwards.
func TestEmptyWindowFlush(t *testing.T) {
	s, _ := newTestServer(t, Options{Window: time.Millisecond})
	s.kickFlusher()
	s.kickFlusher()
	time.Sleep(5 * time.Millisecond)
	sess := mustSession(t, s)
	if _, err := sess.Query(context.Background(), q1); err != nil {
		t.Fatal(err)
	}
}

// TestWindowOverflow pins the count trigger: 9 requests against MaxBatch 4
// and a long window must form batches of exactly 4, 4, and 1 — the count
// trigger fires early, and the remainder re-windows rather than joining an
// oversized batch.
func TestWindowOverflow(t *testing.T) {
	s, _ := newTestServer(t, Options{Window: 150 * time.Millisecond, MaxBatch: 4})
	sess := mustSession(t, s)

	const n = 9
	results := make([]*Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := sess.Query(context.Background(), q1)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	sizes := map[int]int{}
	for _, r := range results {
		if r == nil {
			t.Fatal("missing result")
		}
		if r.Coalesced > 4 {
			t.Errorf("batch of %d exceeds MaxBatch 4", r.Coalesced)
		}
		sizes[r.Coalesced]++
	}
	if sizes[4] != 8 || sizes[1] != 1 {
		t.Errorf("batch sizes = %v, want 8 requests in batches of 4 and 1 alone", sizes)
	}
}

// TestAdmissionRejection pins the typed retryable error at the admission
// bound.
func TestAdmissionRejection(t *testing.T) {
	s, _ := newTestServer(t, Options{Window: time.Second, MaxInflight: 1, MaxBatch: 64})
	sess := mustSession(t, s)

	parked := make(chan error, 1)
	go func() {
		_, err := sess.Query(context.Background(), q1)
		parked <- err
	}()
	// Wait until the first request occupies the admission slot.
	deadline := time.Now().Add(2 * time.Second)
	for {
		s.mu.Lock()
		n := s.inflight
		s.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first request never became inflight")
		}
		time.Sleep(time.Millisecond)
	}

	_, err := sess.Query(context.Background(), q2)
	var se *Error
	if !errors.As(err, &se) {
		t.Fatalf("want *server.Error, got %v", err)
	}
	if se.Code != "overloaded" || !se.Retryable {
		t.Errorf("got code=%q retryable=%v, want overloaded/true", se.Code, se.Retryable)
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Error("errors.Is(err, ErrOverloaded) = false")
	}
	if s.DB().Metrics().Counter("server_rejected_total").Value() == 0 {
		t.Error("server_rejected_total = 0 after a rejection")
	}
	// Close drains: the parked request must complete successfully.
	s.Close()
	if err := <-parked; err != nil {
		t.Errorf("parked request failed: %v", err)
	}
}

// TestDrainOnClose pins that Close completes in-flight windows (a parked
// query succeeds rather than erroring) and that post-Close traffic gets the
// typed shutdown error.
func TestDrainOnClose(t *testing.T) {
	s, _ := newTestServer(t, Options{Window: 10 * time.Second})
	sess := mustSession(t, s)

	parked := make(chan error, 1)
	go func() {
		_, err := sess.Query(context.Background(), q1)
		parked <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for {
		s.mu.Lock()
		n := len(s.pending)
		s.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("request never reached the window")
		}
		time.Sleep(time.Millisecond)
	}

	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case err := <-parked:
		if err != nil {
			t.Fatalf("parked query failed on drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not flush the parked query")
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return")
	}

	if _, err := sess.Query(context.Background(), q1); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("post-Close Query error = %v, want ErrShuttingDown", err)
	}
	if _, err := s.NewSession(); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("post-Close NewSession error = %v, want ErrShuttingDown", err)
	}
}

// TestMultiStatementDemux coalesces a two-statement request with a
// one-statement request and checks each client gets exactly its own
// statements back in submission order.
func TestMultiStatementDemux(t *testing.T) {
	s, db := newTestServer(t, Options{Window: 200 * time.Millisecond, MaxBatch: 2})
	sa, sb := mustSession(t, s), mustSession(t, s)

	multi := q1 + ";\n" + q2
	var ra, rb *Result
	var ea, eb error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); ra, ea = sa.Query(context.Background(), multi) }()
	go func() { defer wg.Done(); rb, eb = sb.Query(context.Background(), q2) }()
	wg.Wait()
	if ea != nil || eb != nil {
		t.Fatal(ea, eb)
	}
	if len(ra.Statements) != 2 || len(rb.Statements) != 1 {
		t.Fatalf("statement counts = %d/%d, want 2/1", len(ra.Statements), len(rb.Statements))
	}
	da, _ := db.Run(multi)
	dbres, _ := db.Run(q2)
	if err := sameResults(ra.Statements, da.Statements); err != nil {
		t.Errorf("multi-statement client: %v", err)
	}
	if err := sameResults(rb.Statements, dbres.Statements); err != nil {
		t.Errorf("single-statement client: %v", err)
	}
}

// TestParseErrorIsolation pins per-statement error demux: a syntax error
// fails only its submitter, not batch companions.
func TestParseErrorIsolation(t *testing.T) {
	s, _ := newTestServer(t, Options{Window: 200 * time.Millisecond, MaxBatch: 2})
	sa, sb := mustSession(t, s), mustSession(t, s)

	var rb *Result
	var ea, eb error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); _, ea = sa.Query(context.Background(), "selectx nonsense from") }()
	go func() { defer wg.Done(); rb, eb = sb.Query(context.Background(), q1) }()
	wg.Wait()
	if ea == nil {
		t.Error("bad SQL did not error")
	}
	if eb != nil {
		t.Errorf("innocent companion failed: %v", eb)
	}
	if rb == nil || len(rb.Statements) != 1 {
		t.Error("companion got no results")
	}
}

// TestPlanCache pins hit, shape normalization, and version invalidation.
func TestPlanCache(t *testing.T) {
	s, db := newTestServer(t, Options{NoCoalesce: true})
	sess := mustSession(t, s)
	ctx := context.Background()

	r1, err := sess.Query(ctx, q1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.PlanCached {
		t.Error("first execution reported PlanCached")
	}
	// Same shape modulo whitespace and a trailing semicolon.
	r2, err := sess.Query(ctx, "  "+q1+" ;\n")
	if err != nil {
		t.Fatal(err)
	}
	if !r2.PlanCached {
		t.Error("repeat shape missed the plan cache")
	}
	if err := sameResults(r1.Statements, r2.Statements); err != nil {
		t.Error(err)
	}
	if db.Metrics().Counter("plancache_hits_total").Value() == 0 {
		t.Error("plancache_hits_total = 0")
	}

	// A version bump on any referenced table invalidates the entry.
	db.Store().Touch("lineitem")
	r3, err := sess.Query(ctx, q1)
	if err != nil {
		t.Fatal(err)
	}
	if r3.PlanCached {
		t.Error("stale plan served after table version bump")
	}
	if db.Metrics().Counter("plancache_invalidations_total").Value() == 0 {
		t.Error("plancache_invalidations_total = 0 after Touch")
	}

	// Literal bytes must stay significant: a different constant is a
	// different shape, never a cache hit on the old plan.
	r4, err := sess.Query(ctx, q1+" , o_orderdate")
	if err == nil && r4.PlanCached {
		t.Error("different query text hit the cache")
	}
}

// TestSessionClosed pins the typed error for a query on a closed session.
func TestSessionClosed(t *testing.T) {
	s, _ := newTestServer(t, Options{NoCoalesce: true})
	sess := mustSession(t, s)
	sess.Close()
	if _, err := sess.Query(context.Background(), q1); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("err = %v, want ErrSessionClosed", err)
	}
	if s.Session(sess.ID()) != nil {
		t.Error("closed session still resolvable")
	}
}

// TestCanceledClientSpoolReuse is the context-threading regression test: a
// client that cancels mid-window gets ctx.Err() immediately, but its
// statements stay in the coalesced batch, the CSE spool they share
// materializes once, and the surviving client's answer is complete and
// correct.
func TestCanceledClientSpoolReuse(t *testing.T) {
	s, db := newTestServer(t, Options{Window: 300 * time.Millisecond, MaxBatch: 8})
	sa, sb := mustSession(t, s), mustSession(t, s)

	ctxA, cancelA := context.WithCancel(context.Background())
	errA := make(chan error, 1)
	go func() {
		_, err := sa.Query(ctxA, q1)
		errA <- err
	}()
	// Wait for A to reach the window, then enqueue B and cancel A while both
	// are parked.
	deadline := time.Now().Add(2 * time.Second)
	for {
		s.mu.Lock()
		n := len(s.pending)
		s.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client A never reached the window")
		}
		time.Sleep(time.Millisecond)
	}

	resB := make(chan *Result, 1)
	errB := make(chan error, 1)
	go func() {
		r, err := sb.Query(context.Background(), q2)
		resB <- r
		errB <- err
	}()
	for {
		s.mu.Lock()
		n := len(s.pending)
		s.mu.Unlock()
		if n == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client B never reached the window")
		}
		time.Sleep(time.Millisecond)
	}
	cancelA()
	if err := <-errA; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled client got %v, want context.Canceled", err)
	}

	if err := <-errB; err != nil {
		t.Fatalf("surviving client failed: %v", err)
	}
	rb := <-resB
	// A's statements stayed in the batch even though A is gone.
	if rb.Coalesced != 2 {
		t.Fatalf("Coalesced = %d, want 2 (canceled client's statement must stay in the batch)", rb.Coalesced)
	}
	direct, err := db.Run(q2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameResults(rb.Statements, direct.Statements); err != nil {
		t.Errorf("survivor's results wrong: %v", err)
	}
	// q1 and q2 share a covering subexpression: the batch must have
	// exploited it (proving the canceled client's work was shared, not
	// discarded), and its spool must have materialized rows.
	if db.Metrics().Counter("cse_used_total").Value() == 0 {
		t.Error("cse_used_total = 0: coalesced batch did not share the subexpression")
	}
	if db.Metrics().Counter("spool_rows_total").Value() == 0 {
		t.Error("spool_rows_total = 0: no spool materialized for the shared subexpression")
	}
}

// TestShapeKey pins the normalizer: whitespace collapses, literals are
// verbatim, trailing semicolons drop.
func TestShapeKey(t *testing.T) {
	if shapeKey("select  a\nfrom t;") != shapeKey("select a from t") {
		t.Error("whitespace/semicolon variants should share a shape")
	}
	if shapeKey("select 'a  b' from t") == shapeKey("select 'a b' from t") {
		t.Error("literal-internal whitespace must be significant")
	}
	if shapeKey("select 'it''s  ok' from t") == shapeKey("select 'it''s ok' from t") {
		t.Error("escaped-quote literal internals must be significant")
	}
	if shapeKey("select a from t") == shapeKey("select a from u") {
		t.Error("different tables must differ in shape")
	}
	if shapeKey("select a from t; select b from u") == shapeKey("select a from t") {
		t.Error("multi-statement shape must include every statement")
	}
}

// TestShapeKeyComments pins comment-aware normalization. Regression: a
// newline both separates tokens and terminates a `--` line comment, so
// collapsing it blindly merged "…t --c where a=1" (WHERE swallowed by the
// comment) with "…t\n--c\nwhere a=1" (WHERE active) into one shape — and a
// plan-cache hit then executed the wrong plan.
func TestShapeKeyComments(t *testing.T) {
	if shapeKey("select a from t --c where a=1") == shapeKey("select a from t\n--c\nwhere a=1") {
		t.Error("comment-swallowed WHERE must not share a shape with an active WHERE")
	}
	if shapeKey("select a from t\n--c\nwhere a=1") != shapeKey("select a from t where a=1") {
		t.Error("a stripped comment must not distinguish shapes")
	}
	if shapeKey("select a from t --c where a=1") != shapeKey("select a from t") {
		t.Error("a comment running to end of input must vanish from the shape")
	}
	if shapeKey("select a--c\nfrom t") != shapeKey("select a from t") {
		t.Error("a comment adjacent to a token must still separate tokens")
	}
	if shapeKey("select '--x' from t") == shapeKey("select '' from t") {
		t.Error("-- inside a string literal is not a comment")
	}
}

// TestBatchKeyUnambiguous pins the length-prefixed combined key: shapes may
// contain any byte (a NUL inside a literal survives shapeKey verbatim), so
// no join separator is safe — only framing is.
func TestBatchKeyUnambiguous(t *testing.T) {
	keys := map[string]string{
		`["ab","c"]`:       batchKey([]string{"ab", "c"}),
		`["a","bc"]`:       batchKey([]string{"a", "bc"}),
		`["ab\x00c"]`:      batchKey([]string{"ab\x00c"}),
		`["ab","","c"]`:    batchKey([]string{"ab", "", "c"}),
		`["ab\x00c",""]`:   batchKey([]string{"ab\x00c", ""}),
		`["2:ab1:c"]`:      batchKey([]string{"2:ab1:c"}),
		`["abc"]`:          batchKey([]string{"abc"}),
		`["ab","c","",""]`: batchKey([]string{"ab", "c", "", ""}),
	}
	seen := map[string]string{}
	for name, k := range keys {
		if prev, ok := seen[k]; ok {
			t.Errorf("batches %s and %s share key %q", prev, name, k)
		}
		seen[k] = name
	}
}

// TestCanceledRequestHoldsAdmissionSlot pins that a client cancellation does
// not release the admission slot early: the canceled request still occupies
// the pending window (or an executing batch), so MaxInflight must keep
// counting it until its batch delivers — otherwise a cancellation storm
// admits more concurrent work than the bound intends.
func TestCanceledRequestHoldsAdmissionSlot(t *testing.T) {
	s, _ := newTestServer(t, Options{Window: 10 * time.Second, MaxInflight: 1, MaxBatch: 64})
	sess := mustSession(t, s)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := sess.Query(ctx, q1)
		done <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for {
		s.mu.Lock()
		n := s.inflight
		s.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("request never became inflight")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Query returned %v, want context.Canceled", err)
	}

	// The canceled request still sits in the open window: its slot must
	// still count against MaxInflight.
	if _, err := sess.Query(context.Background(), q2); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("got %v while a canceled request occupies the window, want ErrOverloaded", err)
	}

	// Close flushes the window and delivers the canceled singleton's
	// response; only then is the slot released.
	s.Close()
	s.mu.Lock()
	n := s.inflight
	s.mu.Unlock()
	if n != 0 {
		t.Errorf("inflight = %d after Close drained, want 0", n)
	}
}

// TestPlanCacheAdmitAfterExecution pins that a plan enters the cache only
// after a successful execution, and that a cached plan failing execution is
// evicted instead of serving the shape forever (hit → fail → retry on every
// future batch). A singleton batch runs under its client's context, so a
// pre-canceled context is a deterministic execution failure after a
// successful prepare.
func TestPlanCacheAdmitAfterExecution(t *testing.T) {
	s, _ := newTestServer(t, Options{NoCoalesce: true})
	sess := mustSession(t, s)

	if _, err := sess.Query(context.Background(), q1); err != nil {
		t.Fatal(err)
	}
	if got := s.plans.len(); got != 1 {
		t.Fatalf("plan cache entries = %d after a successful query, want 1", got)
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	// A fresh shape whose execution fails must not be admitted.
	if _, err := sess.Query(canceled, q2); err == nil {
		t.Fatal("query under a canceled context succeeded")
	}
	if got := s.plans.len(); got != 1 {
		t.Errorf("plan cache entries = %d after a new shape failed execution, want 1", got)
	}

	// A cached shape whose execution fails must be evicted.
	if _, err := sess.Query(canceled, q1); err == nil {
		t.Fatal("query under a canceled context succeeded")
	}
	if got := s.plans.len(); got != 0 {
		t.Errorf("plan cache entries = %d after the cached plan failed execution, want 0", got)
	}

	// The shape still works once the client context is live again.
	if _, err := sess.Query(context.Background(), q1); err != nil {
		t.Fatal(err)
	}
	if got := s.plans.len(); got != 1 {
		t.Errorf("plan cache entries = %d after re-running the shape, want 1", got)
	}
}
