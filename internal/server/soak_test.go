package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/csedb"
	"repro/internal/sqltypes"
)

// TestServerRaceSoak is the -race soak: concurrent clients hammer a
// coalescing server with a handful of shapes while a writer bumps table
// versions mid-window and one client keeps disconnecting mid-coalesce. It
// asserts that plan-cache entries invalidate under the version churn, that
// a disconnect never fails other clients, and that server shutdown leaks no
// goroutines. A serialized write phase then pins end-to-end freshness: after
// a real Insert, the server's answer reflects the new rows (no stale plan).
func TestServerRaceSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short")
	}
	baseline := runtime.NumGoroutine()

	db := newTestDB(t)
	s := New(db, Options{Window: 500 * time.Microsecond, MaxBatch: 8})

	shapes := []string{
		q1,
		q2,
		"select n_regionkey, count(*) as c from nation group by n_regionkey",
		"select o_orderpriority, count(*) as c from orders where o_orderdate < '1996-01-01' group by o_orderpriority",
	}

	const clients = 8
	const iters = 25
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writer: version bumps only (Touch changes no rows, so every client's
	// answer stays comparable) — enough to exercise plan-cache invalidation
	// racing lookups.
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		tables := []string{"lineitem", "orders", "nation"}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(300 * time.Microsecond):
				db.Store().Touch(tables[i%len(tables)])
			}
		}
	}()

	errc := make(chan error, clients*iters)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sess, err := s.NewSession()
			if err != nil {
				errc <- err
				return
			}
			defer sess.Close()
			for i := 0; i < iters; i++ {
				sql := shapes[(c+i)%len(shapes)]
				if c == clients-1 {
					// The flaky client: cancel roughly mid-window.
					ctx, cancel := context.WithTimeout(context.Background(), 250*time.Microsecond)
					_, err := sess.Query(ctx, sql)
					cancel()
					if err != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
						errc <- fmt.Errorf("flaky client: %w", err)
					}
					continue
				}
				res, err := sess.Query(context.Background(), sql)
				if err != nil {
					errc <- fmt.Errorf("client %d iter %d: %w", c, i, err)
					continue
				}
				if len(res.Statements) != 1 {
					errc <- fmt.Errorf("client %d: %d statements", c, len(res.Statements))
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	writerWG.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	// Abandoned (canceled-client) requests may still be executing inside
	// background batches; wait them out so the write phase below never
	// overlaps a read, per the DB contract.
	s.execWG.Wait()

	if n := db.Metrics().Counter("plancache_invalidations_total").Value(); n == 0 {
		t.Error("plancache_invalidations_total = 0: version churn never invalidated a plan")
	}

	// Deterministic staleness check, post-soak: warm a plan, bump a version,
	// and require the next lookup to miss.
	sess, err := s.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	warm := "select n_name from nation where n_nationkey < 5"
	if _, err := sess.Query(context.Background(), warm); err != nil {
		t.Fatal(err)
	}
	r, err := sess.Query(context.Background(), warm)
	if err != nil {
		t.Fatal(err)
	}
	if !r.PlanCached {
		t.Error("warmed shape missed the plan cache")
	}
	db.Store().Touch("nation")
	r, err = sess.Query(context.Background(), warm)
	if err != nil {
		t.Fatal(err)
	}
	if r.PlanCached {
		t.Error("stale plan executed after version bump")
	}

	// Serialized freshness phase: a real Insert must be visible through the
	// server immediately (stale cached plans would at minimum serve stale
	// statistics; the invalidation makes the whole path re-plan and re-read).
	countSQL := "select count(*) as c from nation"
	before, err := sess.Query(context.Background(), countSQL)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("nation", []csedb.Row{nationRow(25, "zz-new-land", 0)}); err != nil {
		t.Fatal(err)
	}
	after, err := sess.Query(context.Background(), countSQL)
	if err != nil {
		t.Fatal(err)
	}
	b := before.Statements[0].Rows[0][0].Int()
	a := after.Statements[0].Rows[0][0].Int()
	if a != b+1 {
		t.Errorf("count after insert = %d, want %d", a, b+1)
	}

	// Shutdown: drain and verify no goroutine leaks (retry loop — runtime
	// bookkeeping and netpoll goroutines settle asynchronously).
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d now vs %d at start\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// nationRow builds a nation tuple matching the TPC-H schema.
func nationRow(key int64, name string, region int64) csedb.Row {
	return csedb.Row{
		sqltypes.NewInt(key), sqltypes.NewString(name),
		sqltypes.NewInt(region), sqltypes.NewString("comment"),
	}
}
