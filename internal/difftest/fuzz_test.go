package difftest

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/qgen"
)

var (
	fuzzOracleOnce sync.Once
	fuzzOracleVal  *Oracle
	fuzzOracleErr  error
)

// fuzzOracle loads a small TPC-H instance once per process; fuzz workers run
// in their own processes, so keep the scale tiny.
func fuzzOracle(t testing.TB) *Oracle {
	t.Helper()
	fuzzOracleOnce.Do(func() {
		fuzzOracleVal, fuzzOracleErr = NewTPCH(0.002, Smoke())
	})
	if fuzzOracleErr != nil {
		t.Fatalf("loading TPC-H: %v", fuzzOracleErr)
	}
	return fuzzOracleVal
}

// FuzzBatchExec is the end-to-end target: the fuzzer's bytes steer the query
// generator, and every generated batch must clear the differential smoke
// matrix — byte-identical results across CSE on/off, parallel, chunked, and
// cached execution, with all optimizer and executor invariants holding.
func FuzzBatchExec(f *testing.F) {
	f.Add([]byte("batch exec seed"))
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7})
	f.Add(bytes.Repeat([]byte{0x5A, 0xC3}, 32))
	f.Add([]byte("stacked and contained candidates"))
	f.Fuzz(func(t *testing.T, data []byte) {
		o := fuzzOracle(t)
		b := qgen.FromBytes(qgen.Config{Seed: 1, MaxQueries: 3}, data)
		if err := o.CheckBatch(b); err != nil {
			shrunk, serr := Shrink(o, b)
			t.Fatalf("differential failure: %v\n\nshrunk repro:\n%s\n\nregression test:\n%s",
				err, shrunk.SQL(), RegressionTest("Fuzz", shrunk, serr))
		}
	})
}
