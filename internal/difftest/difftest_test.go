package difftest

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/opt"
	"repro/internal/qgen"
)

var (
	tpchOnce sync.Once
	tpchBase *Oracle
	tpchErr  error
)

// tpchOracle returns an oracle sharing one TPC-H load across the package's
// tests (the store is read-only under Check).
func tpchOracle(t testing.TB, cfgs []Config) *Oracle {
	t.Helper()
	tpchOnce.Do(func() { tpchBase, tpchErr = NewTPCH(0.01, nil) })
	if tpchErr != nil {
		t.Fatalf("loading TPC-H: %v", tpchErr)
	}
	return &Oracle{Cat: tpchBase.Cat, Store: tpchBase.Store, Configs: cfgs}
}

// TestDifferentialMatrix is the headline oracle run: 50 seeded generated
// batches, each executed across the full configuration matrix with
// byte-identical normalized results and invariants demanded in every cell.
func TestDifferentialMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full differential matrix is slow; run without -short")
	}
	o := tpchOracle(t, Matrix())
	for seed := int64(1); seed <= 50; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			b := qgen.New(qgen.Config{Seed: seed}).Batch()
			if err := o.CheckBatch(b); err != nil {
				shrunk, serr := Shrink(o, b)
				t.Fatalf("seed %d failed: %v\n\nshrunk repro:\n%s\n\nregression test:\n%s",
					seed, err, shrunk.SQL(), RegressionTest("Seed", shrunk, serr))
			}
		})
	}
}

// TestDifferentialSmokeShort keeps a quick differential signal in -short
// runs (the -race -short CI lane).
func TestDifferentialSmokeShort(t *testing.T) {
	o := tpchOracle(t, Smoke())
	for seed := int64(101); seed <= 106; seed++ {
		b := qgen.New(qgen.Config{Seed: seed}).Batch()
		if err := o.CheckBatch(b); err != nil {
			t.Fatalf("seed %d: %v\nbatch:\n%s", seed, err, b.SQL())
		}
	}
}

func TestRandomSchemaDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("random-schema differential is slow; run without -short")
	}
	for _, schemaSeed := range []int64{3, 8} {
		s := qgen.RandomSchema(schemaSeed)
		o := New(Smoke())
		if err := o.InstallSchema(s); err != nil {
			t.Fatalf("schema seed %d: install: %v", schemaSeed, err)
		}
		for seed := int64(1); seed <= 5; seed++ {
			b := qgen.New(qgen.Config{Seed: seed, Schema: s}).Batch()
			if err := o.CheckBatch(b); err != nil {
				t.Fatalf("schema seed %d batch seed %d: %v\nbatch:\n%s", schemaSeed, seed, err, b.SQL())
			}
		}
	}
}

// TestInjectedBugIsCaughtAndShrunk deliberately corrupts the optimizer —
// clearing a consumer's residual predicate turns a candidate into a wrong
// covering subexpression (it returns the spool's rows unfiltered) — and
// requires (a) the oracle to catch the wrong results and (b) the shrinker to
// reduce the failure to at most 3 queries with a printable regression test.
func TestInjectedBugIsCaughtAndShrunk(t *testing.T) {
	if testing.Short() {
		t.Skip("bug-injection shrink loop is slow; run without -short")
	}
	injected := false
	core.TestHookMutateCandidate = func(c *opt.Candidate) {
		for _, sub := range c.Subs {
			if sub.Residual != nil {
				sub.Residual = nil
				injected = true
			}
		}
	}
	defer func() { core.TestHookMutateCandidate = nil }()

	o := tpchOracle(t, Smoke())
	for seed := int64(1); seed <= 40; seed++ {
		injected = false
		b := qgen.New(qgen.Config{Seed: seed}).Batch()
		err := o.CheckBatch(b)
		if err == nil || !injected {
			continue
		}
		shrunk, serr := Shrink(o, b)
		if serr == nil {
			t.Fatalf("seed %d: shrink lost the failure", seed)
		}
		if n := len(shrunk.Queries); n > 3 {
			t.Fatalf("seed %d: shrinker left %d queries (want <= 3):\n%s", seed, n, shrunk.SQL())
		}
		reg := RegressionTest("WrongCovering", shrunk, serr)
		for _, want := range []string{"func TestRegressionWrongCovering", "difftest.NewTPCH", shrunk.SQL()} {
			if !strings.Contains(reg, want) {
				t.Fatalf("regression test missing %q:\n%s", want, reg)
			}
		}
		t.Logf("seed %d: injected bug caught (%v), shrunk %d -> %d queries", seed, err, len(b.Queries), len(shrunk.Queries))
		return
	}
	t.Fatalf("no seed in 1..40 triggered the injected wrong-covering bug; generator may have lost residual coverage")
}

func TestNormalizeRoundsFloats(t *testing.T) {
	o := tpchOracle(t, Smoke())
	// Two queries whose only difference is summation order sensitivity.
	err := o.Check("select l_returnflag, sum(l_extendedprice) as s from lineitem group by l_returnflag; select l_returnflag, sum(l_extendedprice) as s from lineitem where l_quantity > 0 group by l_returnflag;")
	if err != nil {
		t.Fatalf("normalization should absorb float summation order: %v", err)
	}
}
