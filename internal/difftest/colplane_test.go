package difftest

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/logical"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/qgen"
)

// runPlane optimizes and executes a batch with the columnar data plane on or
// off, returning the normalized result text and the execution stats.
func (o *Oracle) runPlane(sql string, rowPlane bool) (string, *exec.Stats, error) {
	stmts, err := parser.Parse(sql)
	if err != nil {
		return "", nil, err
	}
	batch, err := logical.BuildBatch(stmts, o.Cat)
	if err != nil {
		return "", nil, err
	}
	m, err := memo.Build(batch)
	if err != nil {
		return "", nil, err
	}
	out, err := core.OptimizeObserved(m, core.DefaultSettings(), obs.NewTrace(), nil)
	if err != nil {
		return "", nil, err
	}
	res, stats, err := exec.RunWithOptions(context.Background(), out.Result, batch.Metadata, o.Store, exec.Options{
		NoColPlane: rowPlane,
	})
	if err != nil {
		return "", nil, err
	}
	return Normalize(res), stats, nil
}

// TestColumnPlanePinned is the columnar plane's dedicated oracle: 50 seeded
// generated batches, each run through the column plane and the row-at-a-time
// reference, demanding byte-identical normalized results. It additionally
// asserts the planes really diverged in mechanism: the columnar runs must
// compile selection kernels and typed hash passes (the plane was exercised,
// not silently skipped), and the row-plane runs must report none.
func TestColumnPlanePinned(t *testing.T) {
	if testing.Short() {
		t.Skip("50-batch column-plane oracle is slow; run without -short")
	}
	o := tpchOracle(t, nil)
	totalSel, totalHash := 0, 0
	for seed := int64(1); seed <= 50; seed++ {
		b := qgen.New(qgen.Config{Seed: seed}).Batch()
		sql := b.SQL()
		colText, colStats, err := o.runPlane(sql, false)
		if err != nil {
			t.Fatalf("seed %d: column plane: %v", seed, err)
		}
		rowText, rowStats, err := o.runPlane(sql, true)
		if err != nil {
			t.Fatalf("seed %d: row plane: %v", seed, err)
		}
		if colText != rowText {
			t.Fatalf("seed %d: column plane diverged from row plane:\n%s\nbatch:\n%s",
				seed, diffExcerpt(rowText, colText), sql)
		}
		if rowStats.ColSelections != 0 || rowStats.ColHashPasses != 0 {
			t.Fatalf("seed %d: row-plane run reported columnar work (%d selections, %d hash passes)",
				seed, rowStats.ColSelections, rowStats.ColHashPasses)
		}
		totalSel += colStats.ColSelections
		totalHash += colStats.ColHashPasses
	}
	if totalSel == 0 {
		t.Fatal("no batch compiled a selection kernel; the columnar plane was never exercised")
	}
	if totalHash == 0 {
		t.Fatal("no batch used column-at-a-time hashing; the columnar plane was never exercised")
	}
	t.Logf("columnar plane exercised: %d selection kernels, %d typed hash passes across 50 batches", totalSel, totalHash)
}
