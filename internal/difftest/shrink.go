package difftest

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/logical"
	"repro/internal/memo"
	"repro/internal/parser"
	"repro/internal/qgen"
)

// Shrink greedily reduces a failing batch to a minimal reproduction while
// the oracle keeps failing, applying operations coarsest-first: drop whole
// queries, then joins (tables), then predicates, then decoration and output
// columns, finally shrinking constants. Returns the smallest failing batch
// found together with its failure.
//
// The predicate is "o.CheckBatch != nil" — any failure counts, so a shrink
// step that morphs one bug into another still makes progress toward a
// minimal failing input.
func Shrink(o *Oracle, b *qgen.Batch) (*qgen.Batch, error) {
	err := o.CheckBatch(b)
	if err == nil {
		return b, nil
	}
	// Pin every auto-strategy cell to the strategy the original batch
	// actually ran: shrinking drops candidates, and once the count crosses
	// the lattice threshold an auto cell would silently flip from greedy to
	// lattice and stop reproducing a greedy-only failure.
	o = pinSearchStrategies(o, b)
	cur := b
	try := func(c *qgen.Batch) bool {
		if c == nil {
			return false
		}
		if e := o.CheckBatch(c); e != nil {
			cur, err = c, e
			return true
		}
		return false
	}
	for pass := 0; pass < 8; pass++ {
		improved := false

		// Drop whole queries, largest index first so indices stay stable.
		for qi := len(cur.Queries) - 1; qi >= 0; qi-- {
			if try(cur.DropQuery(qi)) {
				improved = true
			}
		}
		// Drop joined tables (never the root).
		for qi := range cur.Queries {
			for ti := len(cur.Queries[qi].Tables) - 1; ti > 0; ti-- {
				if try(cur.DropTable(qi, ti)) {
					improved = true
				}
			}
		}
		// Drop predicates.
		for qi := range cur.Queries {
			for pi := len(cur.Queries[qi].Preds) - 1; pi >= 0; pi-- {
				if try(cur.DropPred(qi, pi)) {
					improved = true
				}
			}
		}
		// Strip decoration (CTE wrapper, order by, limit) and extra outputs.
		for qi := range cur.Queries {
			if try(cur.Plainify(qi)) {
				improved = true
			}
			for ai := len(cur.Queries[qi].Aggs) - 1; ai >= 0; ai-- {
				if try(cur.DropAgg(qi, ai)) {
					improved = true
				}
			}
			for gi := len(cur.Queries[qi].GroupBy) - 1; gi >= 0; gi-- {
				if try(cur.DropGroupCol(qi, gi)) {
					improved = true
				}
			}
		}
		// Shrink constants: repeatedly simplify each remaining predicate.
		for qi := range cur.Queries {
			for pi := 0; pi < len(cur.Queries[qi].Preds); pi++ {
				for step := 0; step < 32; step++ {
					if !try(cur.ShrinkPred(qi, pi)) {
						break
					}
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	return cur, err
}

// pinSearchStrategies returns a copy of the oracle whose auto-strategy CSE
// cells carry the subset-search strategy (lattice or greedy) the original
// failing batch resolved to, so minimization preserves the code path under
// test. Resolution failures leave the cell untouched — the shrink still
// works, just without the pin.
func pinSearchStrategies(o *Oracle, b *qgen.Batch) *Oracle {
	stmts, err := parser.Parse(b.SQL())
	if err != nil {
		return o
	}
	pinned := &Oracle{Cat: o.Cat, Store: o.Store, Configs: append([]Config(nil), o.Configs...)}
	for i := range pinned.Configs {
		cfg := &pinned.Configs[i]
		if !cfg.Settings.EnableCSE {
			continue
		}
		if s := cfg.Settings.SearchStrategy; s != "" && s != core.SearchAuto {
			continue // already explicit
		}
		batch, err := logical.BuildBatch(stmts, o.Cat)
		if err != nil {
			continue
		}
		m, err := memo.Build(batch)
		if err != nil {
			continue
		}
		out, err := core.Optimize(m, cfg.Settings)
		if err != nil || out.Stats.SearchStrategy == "" {
			continue
		}
		cfg.Settings.SearchStrategy = core.SearchStrategy(out.Stats.SearchStrategy)
	}
	return pinned
}

// RegressionTest renders a ready-to-paste Go test reproducing the failure:
// the shrunk SQL pinned as a literal, checked against the full differential
// matrix. name must be a valid Go identifier suffix.
func RegressionTest(name string, b *qgen.Batch, failure error) string {
	sql := b.SQL()
	msg := "(unknown)"
	if failure != nil {
		msg = strings.SplitN(failure.Error(), "\n", 2)[0]
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "// TestRegression%s pins a differential failure found by the qgen/difftest\n", name)
	fmt.Fprintf(&sb, "// harness (generator seed %d, shrunk to %d queries).\n", b.Seed, len(b.Queries))
	fmt.Fprintf(&sb, "// Failure was: %s\n", msg)
	fmt.Fprintf(&sb, "func TestRegression%s(t *testing.T) {\n", name)
	fmt.Fprintf(&sb, "\to, err := difftest.NewTPCH(0.01, difftest.Matrix())\n")
	fmt.Fprintf(&sb, "\tif err != nil {\n\t\tt.Fatal(err)\n\t}\n")
	fmt.Fprintf(&sb, "\tsql := `\n%s`\n", sql)
	fmt.Fprintf(&sb, "\tif err := o.Check(sql); err != nil {\n")
	fmt.Fprintf(&sb, "\t\tt.Fatalf(\"differential failure: %%v\", err)\n")
	fmt.Fprintf(&sb, "\t}\n}\n")
	return sb.String()
}
