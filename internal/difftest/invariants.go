package difftest

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/opt"
)

// checkOptimizerInvariants asserts structural properties of an optimization
// that must hold for any input:
//
//  1. The chosen plan's estimated cost never exceeds the no-CSE plan's
//     (the optimizer only accepts a CSE set that is a strict improvement).
//  2. Every consumer's table signature is a subset of its covering
//     candidate's signature — a CSE that does not contain a consumer's
//     tables cannot possibly cover it (§3 of the paper).
//  3. Candidates pruned by Heuristic 4 never appear as spools in the final
//     plan.
func checkOptimizerInvariants(m *memo.Memo, out *core.Output, tr *obs.Trace) error {
	const eps = 1e-6
	if out.Stats.FinalCost > out.Stats.BaseCost*(1+eps) {
		return fmt.Errorf("final cost %.3f exceeds no-CSE base cost %.3f",
			out.Stats.FinalCost, out.Stats.BaseCost)
	}

	for _, cand := range out.Candidates {
		super := make(map[string]bool, len(cand.Tables))
		for _, t := range cand.Tables {
			super[t] = true
		}
		for _, gid := range cand.Consumers {
			sig := m.Group(gid).Sig
			if !sig.Valid {
				return fmt.Errorf("candidate %q covers consumer G%d with no valid signature", cand.Label, gid)
			}
			for _, t := range sig.Tables {
				if !super[t] {
					return fmt.Errorf("candidate %q (tables %v) covers consumer G%d whose signature includes %q",
						cand.Label, cand.Tables, gid, t)
				}
			}
			if cand.Grouped && !sig.Grouped {
				// A grouped consumer can be computed from an ungrouped spool
				// (re-aggregation), but an already-aggregated spool cannot
				// reproduce a consumer's raw rows.
				return fmt.Errorf("grouped candidate %q covers ungrouped consumer G%d", cand.Label, gid)
			}
		}
	}

	if tr != nil {
		// Identify a pruned candidate by label AND consumer set: the label
		// alone describes the expression shape, and a distinct candidate over
		// the same shape (different consumers) may legitimately survive.
		pruned := map[string]bool{}
		for _, e := range tr.OfKind(obs.EvH4) {
			if e.Pruned {
				pruned[e.Label+groupsKey(e.Groups)] = true
			}
		}
		if out.Result != nil && len(pruned) > 0 {
			consumersOf := make(map[int][]memo.GroupID, len(out.Candidates))
			for _, c := range out.Candidates {
				consumersOf[c.ID] = c.Consumers
			}
			for id, cp := range out.Result.CSEs {
				gids := make([]int, 0, len(consumersOf[cp.ID]))
				for _, g := range consumersOf[cp.ID] {
					gids = append(gids, int(g))
				}
				if pruned[cp.Label+groupsKey(gids)] {
					return fmt.Errorf("H4-pruned candidate %q appears in the final plan as spool %d", cp.Label, id)
				}
			}
		}
	}
	return nil
}

// groupsKey renders a consumer-group set order-independently.
func groupsKey(gids []int) string {
	s := append([]int(nil), gids...)
	sort.Ints(s)
	return fmt.Sprintf("|%v", s)
}

// checkExecInvariants asserts executor accounting properties: every spool in
// the plan was materialized at most once (the scheduler's exactly-once
// guarantee), and every *demanded* spool was either run or served from the
// result cache. A spool is demanded by the statements that scan it and by
// stacked spools that actually ran — a spool whose only consumers were all
// served from the cache is legitimately never touched (its runs and cache
// flags both stay zero), so demand is computed from the dependency DAG
// rather than assumed universal.
func checkExecInvariants(res *opt.Result, stats *exec.Stats) error {
	if res == nil || stats == nil {
		return nil
	}
	deps := res.Dependencies()
	demanded := make(map[int]bool, len(res.CSEs))
	for _, ids := range deps.StmtSpools {
		for _, id := range ids {
			demanded[id] = true
		}
	}
	for id := range res.CSEs {
		if stats.SpoolRuns[id] > 0 {
			for _, dep := range deps.SpoolDeps[id] {
				demanded[dep] = true
			}
		}
	}

	for id := range res.CSEs {
		runs := stats.SpoolRuns[id]
		if runs > 1 {
			return fmt.Errorf("spool %d materialized %d times (want at most 1)", id, runs)
		}
		if !demanded[id] {
			if runs > 0 {
				return fmt.Errorf("spool %d materialized despite having no live consumer", id)
			}
			continue
		}
		if runs == 0 && !stats.SpoolCached[id] {
			return fmt.Errorf("spool %d neither materialized nor served from cache", id)
		}
		if _, ok := stats.SpoolRows[id]; !ok {
			return fmt.Errorf("spool %d has no row accounting", id)
		}
	}
	return nil
}
