// Package difftest is the engine's differential correctness oracle. It runs
// a SQL batch through a matrix of engine configurations — CSE on/off,
// sequential/parallel execution, result cache on/off, morsel chunk sizes,
// heuristic knob sweeps — and demands byte-identical normalized results from
// every cell, plus optimizer-trace and executor-stats invariants in each.
// Any divergence is a bug by construction: the configurations differ only in
// strategy, never in semantics.
//
// The package also hosts the greedy shrinker that reduces a failing
// generated batch (internal/qgen) to a minimal reproduction and prints a
// ready-to-paste regression test.
package difftest

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/cache"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/logical"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/qgen"
	"repro/internal/sqltypes"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// Config is one cell of the differential matrix.
type Config struct {
	Name     string
	Settings core.Settings
	// Parallelism: 0 = GOMAXPROCS workers, 1 = sequential executor.
	Parallelism int
	// ChunkSize overrides the morsel granularity (0 = default).
	ChunkSize int
	// Cache enables a fresh cross-batch result cache for this cell.
	Cache bool
	// Repeat re-executes the batch this many times against the same cache,
	// so warm (cached) runs are compared against cold ones. 0 means 1.
	Repeat int

	// Observe runs the cell with span tracing enabled end to end (optimizer
	// phases, waves, spools, statements). Observability must never change
	// results — this cell pins that byte-for-byte — and the cell additionally
	// checks span-lifecycle invariants (no unfinished spans after a clean
	// run).
	Observe bool

	// RowPlane disables the columnar data plane (exec.Options.NoColPlane),
	// forcing the row-at-a-time reference path. The row-plane baseline is
	// what pins the selection kernels byte-for-byte.
	RowPlane bool

	// Server routes the batch through the serving layer instead of direct
	// execution: statements are dealt round-robin to Sessions concurrent
	// fake clients against a coalescing server over the shared store, and
	// the demuxed results are reassembled in original order.
	Server bool
	// NoCoalesce disables the server's coalescing window for this cell
	// (every request runs alone); only meaningful with Server.
	NoCoalesce bool
	// Sessions is the number of concurrent client sessions (default 1).
	Sessions int
}

// Matrix returns the full differential configuration matrix. The first
// entry is the baseline every other cell is compared against: CSE disabled
// on the sequential executor — the simplest, most independent path.
func Matrix() []Config {
	def := core.DefaultSettings()
	vary := func(f func(*core.Settings)) core.Settings {
		s := def
		f(&s)
		return s
	}
	off := vary(func(s *core.Settings) { s.EnableCSE = false })
	greedy := vary(func(s *core.Settings) { s.SearchStrategy = core.SearchGreedy })
	return []Config{
		// The baseline is the row-at-a-time sequential interpreter with CSE
		// off: the simplest, most independent path. Every columnar cell below
		// is therefore pinned byte-for-byte against the row plane.
		{Name: "nocse-seq-row", Settings: off, Parallelism: 1, RowPlane: true},
		{Name: "nocse-seq", Settings: off, Parallelism: 1},
		{Name: "nocse-par", Settings: off},
		{Name: "cse-par-row", Settings: def, RowPlane: true},
		{Name: "cse-cache-row", Settings: def, Cache: true, Repeat: 2, RowPlane: true},
		{Name: "cse-seq", Settings: def, Parallelism: 1},
		{Name: "cse-par", Settings: def},
		{Name: "cse-greedy", Settings: greedy, Parallelism: 1},
		{Name: "cse-greedy-par", Settings: greedy},
		{Name: "cse-par-cache", Settings: def, Cache: true, Repeat: 2},
		{Name: "cse-par-observed", Settings: def, Observe: true},
		{Name: "cse-cache-observed", Settings: def, Cache: true, Repeat: 2, Observe: true},
		{Name: "cse-chunk1", Settings: def, ChunkSize: 1},
		{Name: "cse-chunk7", Settings: def, ChunkSize: 7},
		{Name: "cse-chunk1024", Settings: def, ChunkSize: 1024},
		{Name: "cse-noheur", Settings: vary(func(s *core.Settings) { s.Heuristics = false })},
		{Name: "alpha-0.05", Settings: vary(func(s *core.Settings) { s.Alpha = 0.05 })},
		{Name: "alpha-0.20", Settings: vary(func(s *core.Settings) { s.Alpha = 0.20 })},
		{Name: "beta-0.80", Settings: vary(func(s *core.Settings) { s.Beta = 0.80 })},
		{Name: "beta-0.95", Settings: vary(func(s *core.Settings) { s.Beta = 0.95 })},
		{Name: "delta-raised", Settings: vary(func(s *core.Settings) { s.MinMergeBenefit = 1e4 })},
		{Name: "server-coalesce", Settings: def, Server: true, Sessions: 4},
		{Name: "server-nocoalesce", Settings: def, Server: true, NoCoalesce: true, Sessions: 4},
	}
}

// Smoke returns a reduced matrix for tight loops (fuzzing): the baseline
// plus the cells most likely to diverge.
func Smoke() []Config {
	m := Matrix()
	keep := map[string]bool{"nocse-seq-row": true, "nocse-seq": true, "cse-par": true, "cse-par-row": true, "cse-greedy": true, "cse-chunk1": true, "cse-par-cache": true, "cse-par-observed": true}
	var out []Config
	for _, c := range m {
		if keep[c.Name] {
			out = append(out, c)
		}
	}
	return out
}

// Mismatch reports a differential divergence between two configurations.
type Mismatch struct {
	Base, Config string
	Diff         string
}

func (m *Mismatch) Error() string {
	return fmt.Sprintf("differential mismatch: config %q differs from baseline %q:\n%s", m.Config, m.Base, m.Diff)
}

// Oracle holds the database under test and the configuration matrix.
type Oracle struct {
	Cat     *catalog.Catalog
	Store   *storage.Store
	Configs []Config
}

// New returns an oracle over an empty database; install schemas with
// InstallSchema before checking batches.
func New(cfgs []Config) *Oracle {
	return &Oracle{Cat: catalog.New(), Store: storage.NewStore(), Configs: cfgs}
}

// NewTPCH returns an oracle over a generated TPC-H database.
func NewTPCH(scaleFactor float64, cfgs []Config) (*Oracle, error) {
	o := New(cfgs)
	for _, tab := range tpch.Schemas() {
		if err := o.Cat.Add(tab); err != nil {
			return nil, err
		}
	}
	if err := tpch.Generate(tpch.Config{ScaleFactor: scaleFactor, Seed: 42}, o.Cat, o.Store); err != nil {
		return nil, err
	}
	return o, nil
}

// InstallSchema loads a synthetic qgen schema into the oracle's database.
func (o *Oracle) InstallSchema(s *qgen.Schema) error { return s.Install(o.Cat, o.Store) }

// Check runs the batch through every configuration and returns nil when all
// cells agree byte-for-byte and satisfy their invariants. The returned error
// is a *Mismatch for result divergences.
func (o *Oracle) Check(sql string) error {
	stmts, err := parser.Parse(sql)
	if err != nil {
		return fmt.Errorf("parse: %w", err)
	}
	if len(stmts) == 0 {
		return fmt.Errorf("empty batch")
	}
	var baseName, baseText string
	for i, cfg := range o.Configs {
		var text string
		if cfg.Server {
			text, err = o.runServerConfig(cfg, sql)
		} else {
			text, err = o.runConfig(cfg, stmts)
		}
		if err != nil {
			return fmt.Errorf("config %q: %w", cfg.Name, err)
		}
		if i == 0 {
			baseName, baseText = cfg.Name, text
			continue
		}
		if text != baseText {
			return &Mismatch{Base: baseName, Config: cfg.Name, Diff: diffExcerpt(baseText, text)}
		}
	}
	return nil
}

// CheckBatch is Check over a generated batch.
func (o *Oracle) CheckBatch(b *qgen.Batch) error { return o.Check(b.SQL()) }

// runConfig optimizes and executes the batch under one configuration and
// returns the normalized result text.
func (o *Oracle) runConfig(cfg Config, stmts []parser.Statement) (string, error) {
	batch, err := logical.BuildBatch(stmts, o.Cat)
	if err != nil {
		return "", fmt.Errorf("build: %w", err)
	}
	m, err := memo.Build(batch)
	if err != nil {
		return "", fmt.Errorf("memo: %w", err)
	}
	tr := obs.NewTrace()
	var rec *obs.SpanRecorder
	var root *obs.Span
	if cfg.Observe {
		rec = obs.NewSpanRecorder()
		root = rec.StartSpan("batch")
	}
	out, err := core.OptimizeObserved(m, cfg.Settings, tr, root)
	if err != nil {
		return "", fmt.Errorf("optimize: %w", err)
	}
	if err := checkOptimizerInvariants(m, out, tr); err != nil {
		return "", fmt.Errorf("optimizer invariant: %w", err)
	}
	var c *cache.Cache
	if cfg.Cache {
		c = cache.New(64<<20, nil)
	}
	repeat := cfg.Repeat
	if repeat < 1 {
		repeat = 1
	}
	var text string
	for r := 0; r < repeat; r++ {
		res, stats, err := exec.RunWithOptions(context.Background(), out.Result, batch.Metadata, o.Store, exec.Options{
			Parallelism: cfg.Parallelism,
			ChunkSize:   cfg.ChunkSize,
			Cache:       c,
			Span:        root,
			NoColPlane:  cfg.RowPlane,
		})
		if err != nil {
			return "", fmt.Errorf("exec (run %d): %w", r+1, err)
		}
		if err := checkExecInvariants(out.Result, stats); err != nil {
			return "", fmt.Errorf("exec invariant (run %d): %w", r+1, err)
		}
		t := Normalize(res)
		if r == 0 {
			text = t
		} else if t != text {
			return "", &Mismatch{Base: fmt.Sprintf("%s run 1 (cold)", cfg.Name), Config: fmt.Sprintf("%s run %d (warm)", cfg.Name, r+1), Diff: diffExcerpt(text, t)}
		}
	}
	if cfg.Observe {
		root.End()
		// Every span a clean run started must have been ended by the code
		// that started it; an unfinished span is a lifecycle leak.
		if n := rec.Unfinished(); n != 0 {
			return "", fmt.Errorf("span invariant: %d spans left unfinished after a clean run", n)
		}
		if len(stmts) > 0 && obs.Find(rec.Tree(), "statement") == nil {
			return "", fmt.Errorf("span invariant: no statement span recorded")
		}
	}
	return text, nil
}

// Normalize renders statement results into a canonical comparable form:
// column headers, then rows sorted lexicographically with floats rounded to
// 4 decimals (different summation orders across plans must compare equal).
func Normalize(res []*exec.StatementResult) string {
	var sb strings.Builder
	for i, sr := range res {
		fmt.Fprintf(&sb, "-- statement %d: %s\n", i+1, strings.Join(sr.Names, ", "))
		lines := make([]string, len(sr.Rows))
		for j, row := range sr.Rows {
			lines[j] = normalizeRow(row)
		}
		sort.Strings(lines)
		for _, l := range lines {
			sb.WriteString(l)
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

func normalizeRow(r sqltypes.Row) string {
	var sb strings.Builder
	for i, d := range r {
		if i > 0 {
			sb.WriteByte('\t')
		}
		if d.Kind() == sqltypes.KindFloat {
			fmt.Fprintf(&sb, "%.4f", d.Float())
		} else {
			sb.WriteString(d.String())
		}
	}
	return sb.String()
}

// diffExcerpt shows the first divergence between two normalized texts.
func diffExcerpt(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  baseline: %s\n  got:      %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("baseline has %d lines, got %d", len(al), len(bl))
}
