// Server-path differential cells: the same statement batch is split into
// per-statement requests, routed through N concurrent fake client sessions
// against a coalescing (or non-coalescing) server over the shared store, and
// the demultiplexed results are reassembled in original statement order —
// they must normalize byte-identically to the direct-execution baseline.
// Coalescing regroups statements into server-formed batches, so this is the
// strongest exercise of "batching never changes any client's answer".
package difftest

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/csedb"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/parser"
	"repro/internal/server"
)

// runServerConfig executes the batch through the serving layer and returns
// the normalized result text. Each statement becomes one client request;
// statements are dealt round-robin to cfg.Sessions concurrent sessions.
func (o *Oracle) runServerConfig(cfg Config, sql string) (string, error) {
	pieces, err := parser.SplitStatements(sql)
	if err != nil {
		return "", fmt.Errorf("split: %w", err)
	}
	if len(pieces) == 0 {
		return "", fmt.Errorf("empty batch")
	}
	settings := cfg.Settings
	db := csedb.OpenOn(o.Cat, o.Store, csedb.Options{
		CSE:         &settings,
		CacheBudget: -1, // isolate the serving layer: no result cache
		SpanTracing: true,
	})
	srv := server.New(db, server.Options{
		Window:     2 * time.Millisecond,
		MaxBatch:   8,
		NoCoalesce: cfg.NoCoalesce,
	})
	defer srv.Close()

	sessions := cfg.Sessions
	if sessions < 1 {
		sessions = 1
	}
	results := make([]*exec.StatementResult, len(pieces))
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for sid := 0; sid < sessions; sid++ {
		wg.Add(1)
		go func(sid int) {
			defer wg.Done()
			sess, err := srv.NewSession()
			if err != nil {
				errs[sid] = err
				return
			}
			defer sess.Close()
			for i := sid; i < len(pieces); i += sessions {
				res, err := sess.Query(context.Background(), pieces[i])
				if err != nil {
					errs[sid] = fmt.Errorf("statement %d: %w", i+1, err)
					return
				}
				if len(res.Statements) != 1 {
					errs[sid] = fmt.Errorf("statement %d: demuxed %d results", i+1, len(res.Statements))
					return
				}
				results[i] = res.Statements[0]
			}
		}(sid)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return "", err
		}
	}

	// Span-lifecycle invariant: every batch the server formed must have a
	// fully-finished span tree in the flight recorder.
	for _, rec := range db.FlightRecorder().Recent() {
		var leaked int
		obs.Walk(rec.Spans, func(n *obs.SpanNode) {
			if n.Attrs != nil && n.Attrs["unfinished"] != nil {
				leaked++
			}
		})
		if leaked != 0 {
			return "", fmt.Errorf("span invariant: %d unfinished spans in a server batch", leaked)
		}
	}
	return Normalize(results), nil
}
