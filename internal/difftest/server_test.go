package difftest

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/csedb"
	"repro/internal/exec"
	"repro/internal/parser"
	"repro/internal/qgen"
	"repro/internal/server"
)

// TestServerDifferential is the serving layer's dedicated oracle: 50 seeded
// qgen batches, each split into per-statement requests and routed through 8
// concurrent sessions against one persistent coalescing server, must
// normalize byte-identically to direct sequential DB execution. The same
// run must actually exercise the machinery it claims to test: the server
// must have formed coalesced (multi-request) batches and the plan-shape
// cache must have served hits.
func TestServerDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("50-batch server oracle is slow; run without -short")
	}
	o := tpchOracle(t, nil)

	// The serving DB and the direct baseline DB share the one store.
	servDB := csedb.OpenOn(o.Cat, o.Store, csedb.Options{CacheBudget: -1, SpanTracing: true})
	directDB := csedb.OpenOn(o.Cat, o.Store, csedb.Options{CacheBudget: -1, ExecParallelism: 1})
	srv := server.New(servDB, server.Options{Window: 2 * time.Millisecond, MaxBatch: 8})
	defer srv.Close()

	const sessions = 8
	for seed := int64(1); seed <= 50; seed++ {
		b := qgen.New(qgen.Config{Seed: seed}).Batch()
		sql := b.SQL()
		pieces, err := parser.SplitStatements(sql)
		if err != nil {
			t.Fatalf("seed %d: split: %v", seed, err)
		}

		direct, err := directDB.Run(sql)
		if err != nil {
			t.Fatalf("seed %d: direct: %v", seed, err)
		}

		results := make([]*exec.StatementResult, len(pieces))
		errs := make([]error, sessions)
		var wg sync.WaitGroup
		for sid := 0; sid < sessions; sid++ {
			wg.Add(1)
			go func(sid int) {
				defer wg.Done()
				sess, err := srv.NewSession()
				if err != nil {
					errs[sid] = err
					return
				}
				defer sess.Close()
				for i := sid; i < len(pieces); i += sessions {
					res, err := sess.Query(context.Background(), pieces[i])
					if err != nil {
						errs[sid] = err
						return
					}
					results[i] = res.Statements[0]
				}
			}(sid)
		}
		wg.Wait()
		for sid, err := range errs {
			if err != nil {
				t.Fatalf("seed %d session %d: %v", seed, sid, err)
			}
		}

		if got, want := Normalize(results), Normalize(direct.Statements); got != want {
			t.Fatalf("seed %d: server-path results diverge from direct sequential execution:\n%s",
				seed, diffExcerpt(want, got))
		}
	}

	// The oracle is only meaningful if coalescing actually happened. With 8
	// concurrent sessions over 50 batches it essentially always has; the
	// bounded forcing loop below removes the residual scheduling luck.
	m := servDB.Metrics()
	sess, err := srv.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	forced := "select n_name from nation where n_nationkey < 7"
	for try := 0; try < 50 && m.Counter("server_coalesced_batches_total").Value() == 0; try++ {
		var wg sync.WaitGroup
		for k := 0; k < 4; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := sess.Query(context.Background(), forced); err != nil {
					t.Error(err)
				}
			}()
		}
		wg.Wait()
	}
	if m.Counter("server_coalesced_batches_total").Value() == 0 {
		t.Error("server_coalesced_batches_total = 0: the oracle never exercised coalescing")
	}

	// Plan-cache hits: a repeated singleton shape is a deterministic hit.
	if _, err := sess.Query(context.Background(), forced); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Query(context.Background(), forced); err != nil {
		t.Fatal(err)
	}
	if m.Counter("plancache_hits_total").Value() == 0 {
		t.Error("plancache_hits_total = 0: repeat shapes never hit the plan cache")
	}
}
