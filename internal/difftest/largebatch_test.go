package difftest

import (
	"testing"

	"repro/internal/core"
	"repro/internal/logical"
	"repro/internal/memo"
	"repro/internal/parser"
	"repro/internal/qgen"
)

// TestGreedyLargeBatch is the large-batch acceptance check for the greedy
// subset search: a 500-query generated batch must optimize within the
// MaxCSEOptimizations budget using O(N·k) optimizer calls (linear in
// the candidate count, nowhere near the 2^N lattice), never cost more than
// the no-CSE baseline, and return results byte-identical to the sequential
// no-CSE oracle.
func TestGreedyLargeBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("500-query greedy batch is slow; run without -short")
	}
	def := core.DefaultSettings()
	greedy := def
	greedy.SearchStrategy = core.SearchGreedy
	// A reduced budget keeps the test's wall clock bounded: each optimizer
	// call re-optimizes the whole 500-query memo, and the per-call cost grows
	// as committed moves enable more spools. ~1 full greedy round over the
	// candidate set is plenty to prove convergence and budget accounting.
	greedy.MaxCSEOptimizations = 48
	off := def
	off.EnableCSE = false

	o, err := NewTPCH(0.002, []Config{
		{Name: "nocse-seq", Settings: off, Parallelism: 1},
		{Name: "cse-greedy", Settings: greedy, Parallelism: 1},
		{Name: "cse-greedy-par", Settings: greedy},
	})
	if err != nil {
		t.Fatal(err)
	}
	b := qgen.New(qgen.Config{Seed: 9001, MinQueries: 500, MaxQueries: 500, NoCTE: true}).Batch()
	if got := len(b.Queries); got != 500 {
		t.Fatalf("generator produced %d queries, want 500", got)
	}
	sql := b.SQL()

	// Optimize once directly to inspect the search stats.
	stmts, err := parser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := logical.BuildBatch(stmts, o.Cat)
	if err != nil {
		t.Fatal(err)
	}
	m, err := memo.Build(batch)
	if err != nil {
		t.Fatal(err)
	}
	out, err := core.Optimize(m, greedy)
	if err != nil {
		t.Fatal(err)
	}
	st := out.Stats
	if st.SearchStrategy != "greedy" {
		t.Errorf("resolved strategy %q, want greedy", st.SearchStrategy)
	}
	budget := greedy.MaxCSEOptimizations
	if st.CSEOptimizations > budget {
		t.Errorf("%d optimizer calls exceed the %d budget", st.CSEOptimizations, budget)
	}
	// O(N·k): per round the greedy search makes at most one call per
	// candidate; convergence takes few rounds, so the total stays within a
	// small linear multiple of the candidate count — exponential blowup
	// (2^N) trips this immediately.
	if limit := 8 * (st.Candidates + 1); st.CSEOptimizations > limit {
		t.Errorf("%d optimizer calls for %d candidates exceeds the linear bound %d",
			st.CSEOptimizations, st.Candidates, limit)
	}
	if st.FinalCost > st.BaseCost {
		t.Errorf("greedy final cost %.2f above no-CSE baseline %.2f", st.FinalCost, st.BaseCost)
	}
	t.Logf("500 queries: %d candidates, %d optimizer calls, cost %.0f -> %.0f (%d CSEs used)",
		st.Candidates, st.CSEOptimizations, st.BaseCost, st.FinalCost, len(st.UsedCSEs))

	// Byte-identical results against the sequential no-CSE oracle.
	if err := o.Check(sql); err != nil {
		t.Fatalf("differential failure on the 500-query batch: %v", err)
	}
}
