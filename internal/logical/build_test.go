package logical_test

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/logical"
	"repro/internal/parser"
	"repro/internal/scalar"
	"repro/internal/sqltypes"
	"repro/internal/tpch"
)

func testCatalog(t testing.TB) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	for _, tab := range tpch.Schemas() {
		if err := cat.Add(tab); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

func bind(t *testing.T, sql string) *logical.Batch {
	t.Helper()
	batch, err := bindErr(t, sql)
	if err != nil {
		t.Fatalf("bind %q: %v", sql, err)
	}
	return batch
}

func bindErr(t *testing.T, sql string) (*logical.Batch, error) {
	t.Helper()
	stmts, err := parser.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return logical.BuildBatch(stmts, testCatalog(t))
}

func TestBindSimpleBlock(t *testing.T) {
	b := bind(t, "select c_name from customer where c_acctbal > 100")
	blk := b.Statements[0].Block
	if len(blk.Rels) != 1 || len(blk.Conjuncts) != 1 || blk.HasGroup {
		t.Fatalf("unexpected block: %+v", blk)
	}
	if len(blk.Projections) != 1 || blk.Projections[0].Name != "c_name" {
		t.Errorf("projections: %+v", blk.Projections)
	}
}

func TestBindStarExpansion(t *testing.T) {
	b := bind(t, "select * from nation")
	blk := b.Statements[0].Block
	if len(blk.Projections) != 4 {
		t.Errorf("star expanded to %d columns, want 4", len(blk.Projections))
	}
	if blk.Projections[0].Name != "n_nationkey" {
		t.Errorf("first column = %q", blk.Projections[0].Name)
	}
}

func TestBindConjunctSplitting(t *testing.T) {
	b := bind(t, `select c_name from customer, orders
		where c_custkey = o_custkey and c_acctbal > 0 and o_totalprice < 1000`)
	blk := b.Statements[0].Block
	if len(blk.Conjuncts) != 3 {
		t.Errorf("conjuncts = %d, want 3", len(blk.Conjuncts))
	}
}

func TestBindAggHoisting(t *testing.T) {
	b := bind(t, `select c_nationkey, sum(c_acctbal) as s, sum(c_acctbal) + 1 as s1
		from customer group by c_nationkey`)
	blk := b.Statements[0].Block
	if !blk.HasGroup || len(blk.GroupCols) != 1 {
		t.Fatal("grouping lost")
	}
	// The two sum(c_acctbal) references share one aggregate definition.
	if len(blk.Aggs) != 1 {
		t.Errorf("aggs = %d, want 1 (deduplicated)", len(blk.Aggs))
	}
	// The projection reads the aggregate's output column.
	if blk.Projections[1].Expr.Op != scalar.OpCol || blk.Projections[1].Expr.Col != blk.Aggs[0].Out {
		t.Error("projection must reference the hoisted aggregate output")
	}
}

func TestBindAvgDecomposition(t *testing.T) {
	b := bind(t, "select avg(c_acctbal) as a from customer")
	blk := b.Statements[0].Block
	if len(blk.Aggs) != 2 {
		t.Fatalf("avg must decompose into sum and count, got %d aggs", len(blk.Aggs))
	}
	kinds := map[scalar.AggKind]bool{}
	for _, a := range blk.Aggs {
		kinds[a.Kind] = true
	}
	if !kinds[scalar.AggSum] || !kinds[scalar.AggCount] {
		t.Errorf("avg decomposition kinds: %v", kinds)
	}
	if blk.Projections[0].Expr.Op != scalar.OpDiv {
		t.Error("avg projection must be sum/count")
	}
}

func TestBindCountStar(t *testing.T) {
	b := bind(t, "select count(*) as n from customer")
	blk := b.Statements[0].Block
	if len(blk.Aggs) != 1 || blk.Aggs[0].Kind != scalar.AggCountStar || blk.Aggs[0].Arg != nil {
		t.Errorf("count(*) bound as %+v", blk.Aggs)
	}
	if !blk.HasGroup || len(blk.GroupCols) != 0 {
		t.Error("scalar aggregation is grouping with no keys")
	}
}

func TestBindDateCoercion(t *testing.T) {
	b := bind(t, "select o_orderkey from orders where o_orderdate < '1996-07-01'")
	blk := b.Statements[0].Block
	conj := blk.Conjuncts[0]
	if conj.Args[1].Const.Kind() != sqltypes.KindDate {
		t.Errorf("date literal coerced to %s", conj.Args[1].Const.Kind())
	}
}

func TestBindIntToFloatCoercion(t *testing.T) {
	b := bind(t, "select o_orderkey from orders where o_totalprice > 1000")
	conj := b.Statements[0].Block.Conjuncts[0]
	if conj.Args[1].Const.Kind() != sqltypes.KindFloat {
		t.Errorf("int literal vs DOUBLE column coerced to %s", conj.Args[1].Const.Kind())
	}
}

func TestBindBetweenBecomesRange(t *testing.T) {
	b := bind(t, "select c_name from customer where c_nationkey between 3 and 7")
	blk := b.Statements[0].Block
	if len(blk.Conjuncts) != 2 {
		t.Fatalf("BETWEEN should produce 2 conjuncts, got %d", len(blk.Conjuncts))
	}
}

func TestBindOrderByAliasAndPosition(t *testing.T) {
	b := bind(t, `select c_nationkey, sum(c_acctbal) as s from customer
		group by c_nationkey order by s desc, 1`)
	blk := b.Statements[0].Block
	if len(blk.OrderBy) != 2 {
		t.Fatal("order keys missing")
	}
	if blk.OrderBy[0].ProjIdx != 1 || !blk.OrderBy[0].Desc {
		t.Errorf("alias key = %+v", blk.OrderBy[0])
	}
	if blk.OrderBy[1].ProjIdx != 0 || blk.OrderBy[1].Desc {
		t.Errorf("positional key = %+v", blk.OrderBy[1])
	}
}

func TestBindOrderByExpression(t *testing.T) {
	b := bind(t, `select c_nationkey, sum(c_acctbal) from customer
		group by c_nationkey order by sum(c_acctbal)`)
	if b.Statements[0].Block.OrderBy[0].ProjIdx != 1 {
		t.Error("order-by expression must match the select item")
	}
}

func TestBindSubquery(t *testing.T) {
	b := bind(t, `select c_nationkey from customer
		where c_acctbal > (select avg(c_acctbal) from customer)`)
	if b.Metadata.NumSubqueries() != 1 {
		t.Fatalf("subqueries = %d", b.Metadata.NumSubqueries())
	}
	blk := b.Statements[0].Block
	found := false
	for _, c := range blk.Conjuncts {
		if c.HasSubquery() {
			found = true
		}
	}
	if !found {
		t.Error("conjunct lost its subquery reference")
	}
	sub := b.Metadata.Subquery(0)
	if !sub.HasGroup {
		t.Error("avg subquery is a scalar aggregation")
	}
}

func TestBindSharedMetadataAcrossBatch(t *testing.T) {
	b := bind(t, "select c_name from customer; select c_name from customer")
	if b.Metadata.NumRels() != 2 {
		t.Errorf("each statement gets its own instance; rels = %d", b.Metadata.NumRels())
	}
	b0 := b.Statements[0].Block.Rels[0]
	b1 := b.Statements[1].Block.Rels[0]
	if b0 == b1 {
		t.Error("statements must not share table instances")
	}
	// Column IDs must not collide.
	c0 := b.Metadata.Rel(b0).ColID(0)
	c1 := b.Metadata.Rel(b1).ColID(0)
	if c0 == c1 {
		t.Error("column ID collision across statements")
	}
}

func TestBindErrors(t *testing.T) {
	cases := []struct {
		sql     string
		wantSub string
	}{
		{"select nothere from customer", "not found"},
		{"select c_name from nosuch", "does not exist"},
		{"select x.c_name from customer c", "unknown table binding"},
		{"select c_custkey from customer, orders where custkey = 1", "not found"},
		{"select o_orderkey from customer, orders, lineitem where l_orderkey = 1 and o_orderkey = l_orderkey and c_custkey = o_custkey and l_linenumber = o_shippriority and l_orderkey = o_orderkey and c_custkey = c_custkey and o_orderkey = 1 and nonsense = 2", "not found"},
		{"select c_name from customer c, customer c", "duplicate table binding"},
		{"select sum(c_acctbal) from customer where sum(c_acctbal) > 0", "not allowed"},
		{"select sum(sum(c_acctbal)) from customer", "not allowed"},
		{"select min(*) from customer", "not valid"},
		{"select frob(c_acctbal) from customer", "unsupported function"},
		{"select * from customer group by c_nationkey", "cannot be combined"},
		{"select c_name from customer group by c_nationkey", "must reference grouping columns"},
		{"select c_nationkey from customer group by c_nationkey having c_name = 'x'", "HAVING must reference"},
		{"select c_nationkey from customer group by c_nationkey + 1", "plain column references"},
		{"select c_nationkey from customer order by c_name", "must appear in the SELECT list"},
		{"select c_nationkey from customer order by 5", "out of range"},
		{"select distinct sum(c_acctbal) from customer", "cannot be combined"},
		{"select distinct c_acctbal + 1 from customer", "plain column"},
		{"select c_acctbal from customer where c_acctbal > (select c_acctbal, c_custkey from customer)", "exactly one column"},
		{"select sum(c_acctbal, c_custkey) from customer", "exactly one argument"},
		{"create materialized view v as select c_name from customer order by c_name", "ORDER BY"},
	}
	for _, c := range cases {
		_, err := bindErr(t, c.sql)
		if err == nil {
			t.Errorf("bind(%q) succeeded, want error containing %q", c.sql, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("bind(%q) error %q does not contain %q", c.sql, err, c.wantSub)
		}
	}
}

func TestBindAmbiguousColumn(t *testing.T) {
	// c_nationkey exists in customer; n_nationkey in nation — not ambiguous.
	// But a self-join with aliases makes bare names ambiguous.
	_, err := bindErr(t, "select c_name from customer a, customer b")
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("expected ambiguity error, got %v", err)
	}
}

func TestReferencedCols(t *testing.T) {
	b := bind(t, `select c_nationkey, sum(o_totalprice) as s
		from customer, orders
		where c_custkey = o_custkey and c_acctbal > 0
		group by c_nationkey`)
	blk := b.Statements[0].Block
	cols := blk.ReferencedCols()
	md := b.Metadata
	names := map[string]bool{}
	cols.ForEach(func(c scalar.ColID) { names[md.ColName(c)] = true })
	for _, want := range []string{"customer.c_custkey", "orders.o_custkey", "customer.c_acctbal", "customer.c_nationkey", "orders.o_totalprice"} {
		if !names[want] {
			t.Errorf("ReferencedCols missing %s (got %v)", want, names)
		}
	}
	// Aggregate output columns are produced, not read.
	if cols.Contains(blk.Aggs[0].Out) {
		t.Error("aggregate output must not be in ReferencedCols")
	}
}

func TestTableNamesAndSelfJoin(t *testing.T) {
	b := bind(t, "select a.c_name from customer a, customer b where a.c_custkey = b.c_custkey")
	blk := b.Statements[0].Block
	if !blk.HasSelfJoin(b.Metadata) {
		t.Error("self-join not detected")
	}
	names := blk.TableNames(b.Metadata)
	if len(names) != 1 || names[0] != "customer" {
		t.Errorf("TableNames = %v (sets deduplicate)", names)
	}

	b2 := bind(t, "select c_name from customer, orders where c_custkey = o_custkey")
	if b2.Statements[0].Block.HasSelfJoin(b2.Metadata) {
		t.Error("no self-join here")
	}
}

func TestInferKind(t *testing.T) {
	b := bind(t, "select c_acctbal + 1 as f, c_custkey + 1 as i, c_custkey / 2 as d, c_name from customer")
	blk := b.Statements[0].Block
	kinds := blk.OutputKinds(b.Metadata)
	want := []sqltypes.Kind{sqltypes.KindFloat, sqltypes.KindInt, sqltypes.KindFloat, sqltypes.KindString}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("output %d kind = %s, want %s", i, kinds[i], want[i])
		}
	}
}

func TestMetadataNames(t *testing.T) {
	b := bind(t, "select c.c_name from customer c")
	md := b.Metadata
	rel := md.Rel(b.Statements[0].Block.Rels[0])
	if got := md.ColName(rel.ColID(1)); got != "c.c_name" {
		t.Errorf("ColName = %q", got)
	}
	tab, ord, ok := md.BaseCol(rel.ColID(1))
	if !ok || tab != "customer" || ord != 1 {
		t.Errorf("BaseCol = %q,%d,%v", tab, ord, ok)
	}
	syn := md.AddSynthesized("tmp", sqltypes.KindInt)
	if _, _, ok := md.BaseCol(syn); ok {
		t.Error("synthesized columns have no base")
	}
	if md.RelOfCol(syn) != nil {
		t.Error("synthesized columns have no relation")
	}
}

func TestBindDistinct(t *testing.T) {
	b := bind(t, "select distinct c_nationkey, c_mktsegment from customer")
	blk := b.Statements[0].Block
	if !blk.HasGroup || len(blk.GroupCols) != 2 || len(blk.Aggs) != 0 {
		t.Errorf("DISTINCT must become grouping: %+v", blk)
	}
}

func TestBindCTEInlining(t *testing.T) {
	b := bind(t, `
with co as (
  select c_custkey as ck, c_nationkey, o_totalprice
  from customer, orders
  where c_custkey = o_custkey and o_totalprice > 1000)
select c_nationkey, sum(o_totalprice) as v from co group by c_nationkey`)
	blk := b.Statements[0].Block
	// The CTE's two tables became the block's relations; its predicates
	// merged into the conjuncts.
	if len(blk.Rels) != 2 {
		t.Fatalf("rels = %d, want customer+orders inlined", len(blk.Rels))
	}
	if len(blk.Conjuncts) != 2 {
		t.Errorf("conjuncts = %d, want join + filter from the CTE", len(blk.Conjuncts))
	}
	if !blk.HasGroup || len(blk.GroupCols) != 1 {
		t.Error("outer grouping lost")
	}
}

func TestBindCTEAliasedColumns(t *testing.T) {
	b := bind(t, `
with x as (select c_custkey as id, c_name as label from customer)
select x.id, label from x where x.id > 5`)
	blk := b.Statements[0].Block
	if len(blk.Projections) != 2 {
		t.Fatalf("projections = %d", len(blk.Projections))
	}
	md := b.Metadata
	if got := md.ColName(blk.Projections[0].Expr.Col); got != "customer.c_custkey" {
		t.Errorf("aliased CTE column resolves to %q", got)
	}
}

func TestBindCTEStarExport(t *testing.T) {
	b := bind(t, `with x as (select * from nation) select * from x`)
	if got := len(b.Statements[0].Block.Projections); got != 4 {
		t.Errorf("star through CTE exports %d columns, want 4", got)
	}
}

func TestBindCTEInnerAliasesInvisible(t *testing.T) {
	_, err := bindErr(t, `
with x as (select c.c_name from customer c)
select c.c_name from x`)
	if err == nil {
		t.Error("inner CTE table aliases must not leak to the outer scope")
	}
}

func TestMetadataColsAndRelSet(t *testing.T) {
	b := bind(t, "select c_name from customer, orders where c_custkey = o_custkey")
	blk := b.Statements[0].Block
	rs := blk.RelSet()
	if rs.Len() != 2 || !rs.Contains(blk.Rels[0]) || !rs.Contains(blk.Rels[1]) {
		t.Errorf("RelSet = %v, want exactly the block's two instances", rs)
	}
	rel := b.Metadata.Rel(blk.Rels[0])
	if rel.Cols().Len() != len(rel.Tab.Cols) {
		t.Error("RelInfo.Cols must cover all table columns")
	}
	if b.Metadata.NumCols() < 2 {
		t.Error("NumCols must count allocated columns")
	}
}
