package logical

import (
	"fmt"
	"strings"

	"repro/internal/scalar"
	"repro/internal/sqltypes"
)

// AggDef is one aggregate computed by a block's GroupBy.
type AggDef struct {
	Kind scalar.AggKind
	Arg  *scalar.Expr // over pre-aggregation columns; nil for count(*)
	Out  scalar.ColID // synthesized output column
}

// Fingerprint identifies the aggregate up to its output column.
func (a AggDef) Fingerprint() string {
	return a.Kind.String() + ":" + a.Arg.Fingerprint()
}

// String renders the aggregate for display.
func (a AggDef) String() string {
	if a.Kind == scalar.AggCountStar {
		return "count(*)"
	}
	return fmt.Sprintf("%s(%s)", a.Kind, scalar.Format(a.Arg, nil))
}

// Projection is one output column of a block.
type Projection struct {
	Expr *scalar.Expr // over group columns and aggregate outputs (grouped
	// blocks) or table columns (ungrouped blocks)
	Name string
}

// OrderKey sorts final output by the ProjIdx-th projection.
type OrderKey struct {
	ProjIdx int
	Desc    bool
}

// Block is a normalized SPJG query block:
//
//	Project(proj) ∘ Sort ∘ Select(having) ∘ GroupBy(groupCols, aggs) ∘
//	Select(conjuncts) ∘ Join(rels...)
//
// GroupBy is absent when HasGroup is false; an empty GroupCols with HasGroup
// true is scalar aggregation. Conjuncts include both local filters and join
// predicates; the optimizer assigns them to join subsets.
type Block struct {
	Rels      []RelID
	Conjuncts []*scalar.Expr

	HasGroup  bool
	GroupCols []scalar.ColID
	Aggs      []AggDef

	Having *scalar.Expr // filter over GroupCols and Agg outputs; nil when absent

	Projections []Projection
	OrderBy     []OrderKey
	Limit       int
}

// RelSet returns the set of the block's relation instance IDs.
func (b *Block) RelSet() RelSet {
	var s RelSet
	for _, r := range b.Rels {
		s.Add(r)
	}
	return s
}

// TableNames returns the sorted set of distinct base-table names, the T
// component of the block's table signature.
func (b *Block) TableNames(md *Metadata) []string {
	seen := make(map[string]bool)
	var out []string
	for _, r := range b.Rels {
		name := strings.ToLower(md.Rel(r).Tab.Name)
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	sortStrings(out)
	return out
}

// HasSelfJoin reports whether the block references the same base table more
// than once. Such blocks are excluded from CSE covering (table signatures
// cannot distinguish the instances).
func (b *Block) HasSelfJoin(md *Metadata) bool {
	seen := make(map[string]bool)
	for _, r := range b.Rels {
		name := strings.ToLower(md.Rel(r).Tab.Name)
		if seen[name] {
			return true
		}
		seen[name] = true
	}
	return false
}

// ReferencedCols returns every table column the block reads: predicate
// columns, grouping columns, aggregate arguments, and projection inputs.
// This drives column pruning: a join group only needs to output these.
func (b *Block) ReferencedCols() scalar.ColSet {
	var s scalar.ColSet
	for _, c := range b.Conjuncts {
		s.UnionWith(c.Cols())
	}
	for _, g := range b.GroupCols {
		s.Add(g)
	}
	for _, a := range b.Aggs {
		if a.Arg != nil {
			s.UnionWith(a.Arg.Cols())
		}
	}
	if b.Having != nil {
		s.UnionWith(b.Having.Cols())
	}
	for _, p := range b.Projections {
		s.UnionWith(p.Expr.Cols())
	}
	// Remove synthesized aggregate outputs: they are produced, not read.
	for _, a := range b.Aggs {
		s.Remove(a.Out)
	}
	return s
}

// OutputKinds returns the result column types of the block's projections.
func (b *Block) OutputKinds(md *Metadata) []sqltypes.Kind {
	kinds := make([]sqltypes.Kind, len(b.Projections))
	for i, p := range b.Projections {
		kinds[i] = InferKind(md, p.Expr)
	}
	return kinds
}

// InferKind computes the result type of a scalar expression given metadata.
func InferKind(md *Metadata, e *scalar.Expr) sqltypes.Kind {
	if e == nil {
		return sqltypes.KindBool
	}
	switch e.Op {
	case scalar.OpConst:
		return e.Const.Kind()
	case scalar.OpCol:
		return md.Col(e.Col).Kind
	case scalar.OpEq, scalar.OpNe, scalar.OpLt, scalar.OpLe, scalar.OpGt, scalar.OpGe,
		scalar.OpAnd, scalar.OpOr, scalar.OpNot, scalar.OpLike:
		return sqltypes.KindBool
	case scalar.OpDiv:
		return sqltypes.KindFloat
	case scalar.OpAdd, scalar.OpSub, scalar.OpMul:
		lk, rk := InferKind(md, e.Args[0]), InferKind(md, e.Args[1])
		if lk == sqltypes.KindFloat || rk == sqltypes.KindFloat {
			return sqltypes.KindFloat
		}
		return sqltypes.KindInt
	case scalar.OpAgg:
		switch e.Agg {
		case scalar.AggCount, scalar.AggCountStar:
			return sqltypes.KindInt
		case scalar.AggAvg:
			return sqltypes.KindFloat
		default:
			return InferKind(md, e.Args[0])
		}
	case scalar.OpSubquery:
		sq := md.Subquery(int(e.Col))
		return InferKind(md, sq.Projections[0].Expr)
	default:
		return sqltypes.KindFloat
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
