// Package logical turns parsed ASTs into normalized SPJG query blocks over a
// batch-wide column metadata space. Each table reference becomes a table
// instance with its own range of column IDs; aggregate outputs and computed
// projections get synthesized column IDs. The memo and optimizer operate on
// these blocks.
package logical

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/scalar"
	"repro/internal/sqltypes"
)

// RelID identifies one table instance within a batch's metadata. IDs start
// at 0 and are dense.
type RelID int32

// RelInfo describes a table instance.
type RelInfo struct {
	ID       RelID
	Tab      *catalog.Table
	Alias    string // binding name used in SQL (alias or table name)
	FirstCol scalar.ColID
}

// ColID returns the metadata column ID of base-column ordinal ord.
func (r *RelInfo) ColID(ord int) scalar.ColID {
	return r.FirstCol + scalar.ColID(ord)
}

// Cols returns the full set of the instance's column IDs.
func (r *RelInfo) Cols() scalar.ColSet {
	var s scalar.ColSet
	for i := range r.Tab.Cols {
		s.Add(r.ColID(i))
	}
	return s
}

// ColInfo describes one metadata column.
type ColInfo struct {
	Name string
	Kind sqltypes.Kind
	Rel  RelID // -1 for synthesized columns
	Ord  int   // base-column ordinal when Rel >= 0
}

// Metadata is the batch-wide column and table-instance registry. A single
// Metadata instance covers every statement optimized together, so column IDs
// are unique across the batch.
type Metadata struct {
	cols       []ColInfo // index = ColID-1
	rels       []*RelInfo
	subqueries []*Block
}

// NewMetadata returns an empty metadata registry.
func NewMetadata() *Metadata { return &Metadata{} }

// AddInstance registers a new instance of tab with the given binding name
// and allocates column IDs for its columns.
func (md *Metadata) AddInstance(tab *catalog.Table, alias string) *RelInfo {
	rel := &RelInfo{
		ID:       RelID(len(md.rels)),
		Tab:      tab,
		Alias:    alias,
		FirstCol: scalar.ColID(len(md.cols) + 1),
	}
	md.rels = append(md.rels, rel)
	for i, c := range tab.Cols {
		md.cols = append(md.cols, ColInfo{Name: c.Name, Kind: c.Type, Rel: rel.ID, Ord: i})
	}
	return rel
}

// AddSynthesized registers a computed column (aggregate output or projection
// result) and returns its ID.
func (md *Metadata) AddSynthesized(name string, kind sqltypes.Kind) scalar.ColID {
	md.cols = append(md.cols, ColInfo{Name: name, Kind: kind, Rel: -1})
	return scalar.ColID(len(md.cols))
}

// NumCols returns the number of allocated columns.
func (md *Metadata) NumCols() int { return len(md.cols) }

// Col returns the metadata for column c.
func (md *Metadata) Col(c scalar.ColID) ColInfo {
	return md.cols[int(c)-1]
}

// Rel returns the table instance with the given ID.
func (md *Metadata) Rel(id RelID) *RelInfo { return md.rels[int(id)] }

// NumRels returns the number of table instances.
func (md *Metadata) NumRels() int { return len(md.rels) }

// RelOfCol returns the instance owning column c, or nil for synthesized
// columns.
func (md *Metadata) RelOfCol(c scalar.ColID) *RelInfo {
	info := md.Col(c)
	if info.Rel < 0 {
		return nil
	}
	return md.rels[int(info.Rel)]
}

// BaseCol returns the table name and base ordinal of c, for cross-statement
// column alignment. ok is false for synthesized columns.
func (md *Metadata) BaseCol(c scalar.ColID) (table string, ord int, ok bool) {
	info := md.Col(c)
	if info.Rel < 0 {
		return "", 0, false
	}
	return md.rels[int(info.Rel)].Tab.Name, info.Ord, true
}

// ColName renders column c as "alias.name" for display.
func (md *Metadata) ColName(c scalar.ColID) string {
	if c < 1 || int(c) > len(md.cols) {
		return fmt.Sprintf("@%d", c)
	}
	info := md.Col(c)
	if info.Rel < 0 {
		return info.Name
	}
	return md.rels[int(info.Rel)].Alias + "." + info.Name
}

// AddSubquery registers a scalar subquery block and returns its index, which
// scalar.OpSubquery nodes carry.
func (md *Metadata) AddSubquery(b *Block) int {
	md.subqueries = append(md.subqueries, b)
	return len(md.subqueries) - 1
}

// Subquery returns the subquery block at index i.
func (md *Metadata) Subquery(i int) *Block { return md.subqueries[i] }

// NumSubqueries returns the number of registered scalar subqueries.
func (md *Metadata) NumSubqueries() int { return len(md.subqueries) }
