package logical

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/catalog"
	"repro/internal/parser"
	"repro/internal/scalar"
	"repro/internal/sqltypes"
)

// Statement is one bound top-level statement of a batch.
type Statement struct {
	Block    *Block
	ViewName string // non-empty for CREATE MATERIALIZED VIEW
}

// Batch is a bound statement batch sharing one metadata space. The paper
// optimizes a batch as a single complex query tied together by a dummy root;
// the shared Metadata is what makes cross-statement analysis possible.
type Batch struct {
	Metadata   *Metadata
	Statements []*Statement
}

// BuildBatch binds parsed statements against the catalog.
func BuildBatch(stmts []parser.Statement, cat *catalog.Catalog) (*Batch, error) {
	md := NewMetadata()
	batch := &Batch{Metadata: md}
	for i, st := range stmts {
		switch s := st.(type) {
		case *parser.SelectStmt:
			blk, err := buildSelect(s, cat, md, nil)
			if err != nil {
				return nil, fmt.Errorf("statement %d: %w", i+1, err)
			}
			batch.Statements = append(batch.Statements, &Statement{Block: blk})
		case *parser.CreateViewStmt:
			blk, err := buildSelect(s.Select, cat, md, nil)
			if err != nil {
				return nil, fmt.Errorf("statement %d (view %s): %w", i+1, s.Name, err)
			}
			if len(blk.OrderBy) > 0 || blk.Limit > 0 {
				return nil, fmt.Errorf("statement %d: materialized view %s cannot have ORDER BY or LIMIT", i+1, s.Name)
			}
			batch.Statements = append(batch.Statements, &Statement{Block: blk, ViewName: s.Name})
		default:
			return nil, fmt.Errorf("statement %d: unsupported statement type %T", i+1, st)
		}
	}
	return batch, nil
}

// namedCol is one resolvable output column of a scope entry.
type namedCol struct {
	name string
	col  scalar.ColID
}

// scopeEntry is one FROM binding: a base-table instance or an inlined
// common table expression.
type scopeEntry struct {
	binding string
	rel     *RelInfo   // non-nil for base tables
	cols    []namedCol // materialized output columns
}

// binder holds per-block name resolution state.
type binder struct {
	cat   *catalog.Catalog
	md    *Metadata
	scope []*scopeEntry
	ctes  map[string]*parser.SelectStmt
}

// mergeCTEs layers new WITH entries over an outer scope (inner shadows).
func mergeCTEs(outer map[string]*parser.SelectStmt, with []parser.CTE) (map[string]*parser.SelectStmt, error) {
	if len(with) == 0 {
		return outer, nil
	}
	out := make(map[string]*parser.SelectStmt, len(outer)+len(with))
	for k, v := range outer {
		out[k] = v
	}
	seen := make(map[string]bool, len(with))
	for i := range with {
		key := strings.ToLower(with[i].Name)
		if seen[key] {
			return nil, fmt.Errorf("duplicate WITH name %q", with[i].Name)
		}
		seen[key] = true
		out[key] = with[i].Select
	}
	return out, nil
}

// addFromRef resolves one FROM item: a CTE reference inlines its definition
// (fresh table instances, merged predicates — the similar subexpressions a
// multiply-referenced WITH creates are then re-detected and shared by the
// CSE machinery at whatever granularity is actually optimal, cf. §6.1);
// anything else binds a base table.
func (b *binder) addFromRef(blk *Block, ref parser.TableRef) error {
	binding := strings.ToLower(ref.Binding())
	for _, se := range b.scope {
		if strings.EqualFold(se.binding, ref.Binding()) {
			return fmt.Errorf("duplicate table binding %q in FROM", ref.Binding())
		}
	}
	if cte, ok := b.ctes[strings.ToLower(ref.Table)]; ok {
		return b.inlineCTE(blk, ref.Binding(), cte)
	}
	tab, err := b.cat.Table(ref.Table)
	if err != nil {
		return err
	}
	rel := b.md.AddInstance(tab, ref.Binding())
	cols := make([]namedCol, len(tab.Cols))
	for ord, c := range tab.Cols {
		cols[ord] = namedCol{name: strings.ToLower(c.Name), col: rel.ColID(ord)}
	}
	b.scope = append(b.scope, &scopeEntry{binding: binding, rel: rel, cols: cols})
	blk.Rels = append(blk.Rels, rel.ID)
	return nil
}

// inlineCTE splices a select-project-join CTE into the enclosing block: its
// tables become fresh instances of the block, its predicate conjuncts merge
// in, and its projections become the binding's resolvable columns.
func (b *binder) inlineCTE(blk *Block, binding string, sel *parser.SelectStmt) error {
	fail := func(format string, args ...interface{}) error {
		return fmt.Errorf("common table expression %q: %s", binding, fmt.Sprintf(format, args...))
	}
	if sel.Distinct || len(sel.GroupBy) > 0 || sel.Having != nil || len(sel.OrderBy) > 0 || sel.Limit > 0 {
		return fail("only select-project-join CTEs can be inlined")
	}
	if len(sel.From) == 0 {
		return fail("FROM clause is required")
	}
	innerCtes, err := mergeCTEs(b.ctes, sel.With)
	if err != nil {
		return fail("%v", err)
	}
	inner := &binder{cat: b.cat, md: b.md, ctes: innerCtes}
	for _, ref := range sel.From {
		if err := inner.addFromRef(blk, ref); err != nil {
			return fail("%v", err)
		}
	}
	if sel.Where != nil {
		pred, err := inner.convert(sel.Where, false)
		if err != nil {
			return fail("in WHERE: %v", err)
		}
		if pred.HasAgg() {
			return fail("aggregates are not allowed in an inlined CTE")
		}
		blk.Conjuncts = append(blk.Conjuncts, scalar.Conjuncts(pred)...)
	}

	var cols []namedCol
	seen := make(map[string]bool)
	addCol := func(name string, col scalar.ColID) error {
		key := strings.ToLower(name)
		if seen[key] {
			return fail("duplicate output column %q", name)
		}
		seen[key] = true
		cols = append(cols, namedCol{name: key, col: col})
		return nil
	}
	for i, item := range sel.Items {
		if item.Star {
			for _, se := range inner.scope {
				for _, nc := range se.cols {
					if err := addCol(nc.name, nc.col); err != nil {
						return err
					}
				}
			}
			continue
		}
		e, err := inner.convert(item.Expr, false)
		if err != nil {
			return fail("in SELECT item %d: %v", i+1, err)
		}
		if e.Op != scalar.OpCol {
			return fail("SELECT item %d must be a plain column (computed CTE outputs are not inlinable)", i+1)
		}
		name := item.Alias
		if name == "" {
			if cr, ok := item.Expr.(*parser.ColRef); ok {
				name = cr.Name
			} else {
				name = fmt.Sprintf("col%d", i+1)
			}
		}
		if err := addCol(name, e.Col); err != nil {
			return err
		}
	}
	b.scope = append(b.scope, &scopeEntry{binding: strings.ToLower(binding), cols: cols})
	return nil
}

func buildSelect(sel *parser.SelectStmt, cat *catalog.Catalog, md *Metadata, outerCTEs map[string]*parser.SelectStmt) (*Block, error) {
	if len(sel.From) == 0 {
		return nil, fmt.Errorf("FROM clause is required")
	}
	ctes, err := mergeCTEs(outerCTEs, sel.With)
	if err != nil {
		return nil, err
	}
	b := &binder{cat: cat, md: md, ctes: ctes}
	blk := &Block{}

	for _, ref := range sel.From {
		if err := b.addFromRef(blk, ref); err != nil {
			return nil, err
		}
	}

	// WHERE: no aggregates allowed; subqueries allowed.
	if sel.Where != nil {
		pred, err := b.convert(sel.Where, false)
		if err != nil {
			return nil, fmt.Errorf("in WHERE: %w", err)
		}
		if pred.HasAgg() {
			return nil, fmt.Errorf("aggregate functions are not allowed in WHERE")
		}
		// Append: inlined CTEs may already have contributed conjuncts.
		blk.Conjuncts = append(blk.Conjuncts, scalar.Conjuncts(pred)...)
	}

	// GROUP BY: plain column references only.
	for _, g := range sel.GroupBy {
		e, err := b.convert(g, false)
		if err != nil {
			return nil, fmt.Errorf("in GROUP BY: %w", err)
		}
		if e.Op != scalar.OpCol {
			return nil, fmt.Errorf("GROUP BY supports plain column references only")
		}
		blk.GroupCols = append(blk.GroupCols, e.Col)
		blk.HasGroup = true
	}

	// SELECT list: convert, collecting aggregates.
	hoist := &aggHoister{b: b, blk: blk}
	for i, item := range sel.Items {
		if item.Star {
			if len(sel.GroupBy) > 0 {
				return nil, fmt.Errorf("SELECT * cannot be combined with GROUP BY")
			}
			for _, se := range b.scope {
				for _, nc := range se.cols {
					blk.Projections = append(blk.Projections, Projection{
						Expr: scalar.Col(nc.col),
						Name: nc.name,
					})
				}
			}
			continue
		}
		e, err := b.convert(item.Expr, true)
		if err != nil {
			return nil, fmt.Errorf("in SELECT item %d: %w", i+1, err)
		}
		e, err = hoist.hoist(e)
		if err != nil {
			return nil, err
		}
		name := item.Alias
		if name == "" {
			name = projName(item.Expr, i)
		}
		blk.Projections = append(blk.Projections, Projection{Expr: e, Name: name})
	}

	// HAVING.
	if sel.Having != nil {
		e, err := b.convert(sel.Having, true)
		if err != nil {
			return nil, fmt.Errorf("in HAVING: %w", err)
		}
		e, err = hoist.hoist(e)
		if err != nil {
			return nil, err
		}
		blk.Having = e
	}

	if blk.HasGroup || len(blk.Aggs) > 0 || blk.Having != nil {
		blk.HasGroup = true
	}

	// SELECT DISTINCT over plain columns becomes grouping on them.
	if sel.Distinct {
		if blk.HasGroup {
			return nil, fmt.Errorf("SELECT DISTINCT cannot be combined with aggregation or GROUP BY")
		}
		seenCol := make(map[scalar.ColID]bool)
		for i, p := range blk.Projections {
			if p.Expr.Op != scalar.OpCol {
				return nil, fmt.Errorf("SELECT DISTINCT item %d must be a plain column", i+1)
			}
			if !seenCol[p.Expr.Col] {
				seenCol[p.Expr.Col] = true
				blk.GroupCols = append(blk.GroupCols, p.Expr.Col)
			}
		}
		blk.HasGroup = true
	}

	// Validate grouped projections and having reference only group columns
	// and aggregate outputs.
	if blk.HasGroup {
		var legal scalar.ColSet
		for _, g := range blk.GroupCols {
			legal.Add(g)
		}
		for _, a := range blk.Aggs {
			legal.Add(a.Out)
		}
		for i, p := range blk.Projections {
			if !p.Expr.Cols().SubsetOf(legal) {
				return nil, fmt.Errorf("SELECT item %d (%s) must reference grouping columns or aggregates", i+1, p.Name)
			}
		}
		if blk.Having != nil && !blk.Having.Cols().SubsetOf(legal) {
			return nil, fmt.Errorf("HAVING must reference grouping columns or aggregates")
		}
	}

	// ORDER BY: resolve to projection positions (alias, position number, or
	// matching expression).
	for _, ok := range sel.OrderBy {
		idx, err := b.resolveOrderKey(ok.Expr, sel, blk, hoist)
		if err != nil {
			return nil, err
		}
		blk.OrderBy = append(blk.OrderBy, OrderKey{ProjIdx: idx, Desc: ok.Desc})
	}
	blk.Limit = sel.Limit
	return blk, nil
}

func projName(n parser.Node, idx int) string {
	if cr, ok := n.(*parser.ColRef); ok {
		return cr.Name
	}
	return fmt.Sprintf("col%d", idx+1)
}

func (b *binder) resolveOrderKey(n parser.Node, sel *parser.SelectStmt, blk *Block, hoist *aggHoister) (int, error) {
	switch v := n.(type) {
	case *parser.NumLit:
		i, err := strconv.Atoi(v.Text)
		if err != nil || i < 1 || i > len(blk.Projections) {
			return 0, fmt.Errorf("ORDER BY position %s out of range", v.Text)
		}
		return i - 1, nil
	case *parser.ColRef:
		if v.Qualifier == "" {
			for i, p := range blk.Projections {
				if strings.EqualFold(p.Name, v.Name) {
					return i, nil
				}
			}
		}
	}
	// Fall back to expression match.
	e, err := b.convert(n, true)
	if err != nil {
		return 0, fmt.Errorf("in ORDER BY: %w", err)
	}
	e, err = hoist.hoist(e)
	if err != nil {
		return 0, err
	}
	fp := e.Fingerprint()
	for i, p := range blk.Projections {
		if p.Expr.Fingerprint() == fp {
			return i, nil
		}
	}
	return 0, fmt.Errorf("ORDER BY expression must appear in the SELECT list")
}

// aggHoister replaces OpAgg nodes with references to synthesized aggregate
// output columns, deduplicating identical aggregates and decomposing AVG
// into SUM/COUNT.
type aggHoister struct {
	b   *binder
	blk *Block
	// byFP caches hoisted aggregates by fingerprint.
	byFP map[string]scalar.ColID
}

func (h *aggHoister) hoist(e *scalar.Expr) (*scalar.Expr, error) {
	if e == nil {
		return nil, nil
	}
	if e.Op == scalar.OpAgg {
		if e.Agg == scalar.AggAvg {
			// avg(x) = sum(x) / count(x)
			arg := e.Args[0]
			if arg.HasAgg() {
				return nil, fmt.Errorf("nested aggregates are not allowed")
			}
			s, err := h.add(scalar.AggSum, arg)
			if err != nil {
				return nil, err
			}
			c, err := h.add(scalar.AggCount, arg)
			if err != nil {
				return nil, err
			}
			return scalar.Arith(scalar.OpDiv, scalar.Col(s), scalar.Col(c)), nil
		}
		var arg *scalar.Expr
		if e.Agg != scalar.AggCountStar {
			arg = e.Args[0]
			if arg.HasAgg() {
				return nil, fmt.Errorf("nested aggregates are not allowed")
			}
		}
		out, err := h.add(e.Agg, arg)
		if err != nil {
			return nil, err
		}
		return scalar.Col(out), nil
	}
	if len(e.Args) == 0 {
		return e, nil
	}
	args := make([]*scalar.Expr, len(e.Args))
	changed := false
	for i, a := range e.Args {
		na, err := h.hoist(a)
		if err != nil {
			return nil, err
		}
		args[i] = na
		if na != a {
			changed = true
		}
	}
	if !changed {
		return e, nil
	}
	out := *e
	out.Args = args
	return &out, nil
}

func (h *aggHoister) add(kind scalar.AggKind, arg *scalar.Expr) (scalar.ColID, error) {
	if h.byFP == nil {
		h.byFP = make(map[string]scalar.ColID)
	}
	def := AggDef{Kind: kind, Arg: arg}
	fp := def.Fingerprint()
	if out, ok := h.byFP[fp]; ok {
		return out, nil
	}
	var kindOut sqltypes.Kind
	switch kind {
	case scalar.AggCount, scalar.AggCountStar:
		kindOut = sqltypes.KindInt
	default:
		kindOut = InferKind(h.b.md, arg)
	}
	name := def.String()
	out := h.b.md.AddSynthesized(name, kindOut)
	def.Out = out
	h.blk.Aggs = append(h.blk.Aggs, def)
	h.blk.HasGroup = true
	h.byFP[fp] = out
	return out, nil
}

// convert translates a parser AST node into a scalar expression, resolving
// column names against the binder's scope. allowAgg permits aggregate
// function calls (SELECT list, HAVING, ORDER BY contexts).
func (b *binder) convert(n parser.Node, allowAgg bool) (*scalar.Expr, error) {
	switch v := n.(type) {
	case *parser.NumLit:
		if v.Float {
			f, err := strconv.ParseFloat(v.Text, 64)
			if err != nil {
				return nil, fmt.Errorf("invalid numeric literal %q", v.Text)
			}
			return scalar.ConstFloat(f), nil
		}
		i, err := strconv.ParseInt(v.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("invalid integer literal %q", v.Text)
		}
		return scalar.ConstInt(i), nil

	case *parser.StrLit:
		return scalar.ConstString(v.Val), nil

	case *parser.BoolLit:
		return scalar.Const(sqltypes.NewBool(v.Val)), nil

	case *parser.NullLit:
		return scalar.Const(sqltypes.Null), nil

	case *parser.ColRef:
		c, err := b.resolveCol(v)
		if err != nil {
			return nil, err
		}
		return scalar.Col(c), nil

	case *parser.UnaryOp:
		arg, err := b.convert(v.Arg, allowAgg)
		if err != nil {
			return nil, err
		}
		if v.Op == "not" {
			return scalar.Not(arg), nil
		}
		// Unary minus: fold constants, otherwise 0 - x.
		if arg.Op == scalar.OpConst {
			switch arg.Const.Kind() {
			case sqltypes.KindInt:
				return scalar.ConstInt(-arg.Const.Int()), nil
			case sqltypes.KindFloat:
				return scalar.ConstFloat(-arg.Const.Float()), nil
			}
		}
		return scalar.Arith(scalar.OpSub, scalar.ConstInt(0), arg), nil

	case *parser.BinOp:
		l, err := b.convert(v.L, allowAgg)
		if err != nil {
			return nil, err
		}
		r, err := b.convert(v.R, allowAgg)
		if err != nil {
			return nil, err
		}
		switch v.Op {
		case "like":
			return scalar.Like(l, r), nil
		case "and":
			return scalar.And(l, r), nil
		case "or":
			return scalar.Or(l, r), nil
		case "+":
			return scalar.Arith(scalar.OpAdd, l, r), nil
		case "-":
			return scalar.Arith(scalar.OpSub, l, r), nil
		case "*":
			return scalar.Arith(scalar.OpMul, l, r), nil
		case "/":
			return scalar.Arith(scalar.OpDiv, l, r), nil
		}
		var op scalar.Op
		switch v.Op {
		case "=":
			op = scalar.OpEq
		case "<>":
			op = scalar.OpNe
		case "<":
			op = scalar.OpLt
		case "<=":
			op = scalar.OpLe
		case ">":
			op = scalar.OpGt
		case ">=":
			op = scalar.OpGe
		default:
			return nil, fmt.Errorf("unsupported operator %q", v.Op)
		}
		l, r, err = b.coerceComparison(l, r)
		if err != nil {
			return nil, err
		}
		return scalar.Cmp(op, l, r), nil

	case *parser.Between:
		e, err := b.convert(v.Expr, allowAgg)
		if err != nil {
			return nil, err
		}
		lo, err := b.convert(v.Lo, allowAgg)
		if err != nil {
			return nil, err
		}
		hi, err := b.convert(v.Hi, allowAgg)
		if err != nil {
			return nil, err
		}
		e1, lo, err := b.coerceComparison(e, lo)
		if err != nil {
			return nil, err
		}
		e2, hi, err := b.coerceComparison(e, hi)
		if err != nil {
			return nil, err
		}
		rng := scalar.And(scalar.Cmp(scalar.OpGe, e1, lo), scalar.Cmp(scalar.OpLe, e2, hi))
		if v.Negate {
			return scalar.Not(rng), nil
		}
		return rng, nil

	case *parser.InList:
		e, err := b.convert(v.Expr, allowAgg)
		if err != nil {
			return nil, err
		}
		var alts []*scalar.Expr
		for _, val := range v.Vals {
			ve, err := b.convert(val, allowAgg)
			if err != nil {
				return nil, err
			}
			l, r, err := b.coerceComparison(e, ve)
			if err != nil {
				return nil, err
			}
			alts = append(alts, scalar.Eq(l, r))
		}
		in := scalar.Or(alts...)
		if v.Negate {
			return scalar.Not(in), nil
		}
		return in, nil

	case *parser.FuncCall:
		if !parser.IsAggName(v.Name) {
			return nil, fmt.Errorf("unsupported function %q", v.Name)
		}
		if !allowAgg {
			return nil, fmt.Errorf("aggregate %s is not allowed in this context", v.Name)
		}
		if v.Star {
			if v.Name != "count" {
				return nil, fmt.Errorf("%s(*) is not valid", v.Name)
			}
			return scalar.Agg(scalar.AggCountStar, nil), nil
		}
		if len(v.Args) != 1 {
			return nil, fmt.Errorf("%s takes exactly one argument", v.Name)
		}
		arg, err := b.convert(v.Args[0], false)
		if err != nil {
			return nil, err
		}
		var kind scalar.AggKind
		switch v.Name {
		case "sum":
			kind = scalar.AggSum
		case "count":
			kind = scalar.AggCount
		case "min":
			kind = scalar.AggMin
		case "max":
			kind = scalar.AggMax
		case "avg":
			kind = scalar.AggAvg
		}
		return scalar.Agg(kind, arg), nil

	case *parser.Subquery:
		blk, err := buildSelect(v.Select, b.cat, b.md, b.ctes)
		if err != nil {
			return nil, fmt.Errorf("in subquery: %w", err)
		}
		if len(blk.Projections) != 1 {
			return nil, fmt.Errorf("scalar subquery must return exactly one column")
		}
		idx := b.md.AddSubquery(blk)
		return scalar.SubqueryRef(idx), nil

	default:
		return nil, fmt.Errorf("unsupported expression node %T", n)
	}
}

// coerceComparison adapts literal types to column types: a string literal
// compared against a DATE column becomes a DATE literal, and an integer
// literal compared against a DOUBLE column becomes a DOUBLE literal.
func (b *binder) coerceComparison(l, r *scalar.Expr) (*scalar.Expr, *scalar.Expr, error) {
	lk, rk := InferKind(b.md, l), InferKind(b.md, r)
	coerce := func(e *scalar.Expr, want sqltypes.Kind) (*scalar.Expr, error) {
		if e.Op != scalar.OpConst {
			return e, nil
		}
		switch {
		case want == sqltypes.KindDate && e.Const.Kind() == sqltypes.KindString:
			d, err := sqltypes.ParseDate(e.Const.Str())
			if err != nil {
				return nil, err
			}
			return scalar.Const(d), nil
		case want == sqltypes.KindFloat && e.Const.Kind() == sqltypes.KindInt:
			return scalar.ConstFloat(float64(e.Const.Int())), nil
		}
		return e, nil
	}
	var err error
	if l, err = coerce(l, rk); err != nil {
		return nil, nil, err
	}
	if r, err = coerce(r, lk); err != nil {
		return nil, nil, err
	}
	return l, r, nil
}

func (b *binder) resolveCol(cr *parser.ColRef) (scalar.ColID, error) {
	if cr.Qualifier != "" {
		for _, se := range b.scope {
			if !strings.EqualFold(se.binding, cr.Qualifier) {
				continue
			}
			for _, nc := range se.cols {
				if strings.EqualFold(nc.name, cr.Name) {
					return nc.col, nil
				}
			}
			return 0, fmt.Errorf("column %q does not exist in %q", cr.Name, cr.Qualifier)
		}
		return 0, fmt.Errorf("unknown table binding %q", cr.Qualifier)
	}
	var found scalar.ColID
	matches := 0
	for _, se := range b.scope {
		for _, nc := range se.cols {
			if strings.EqualFold(nc.name, cr.Name) {
				found = nc.col
				matches++
			}
		}
	}
	switch matches {
	case 0:
		return 0, fmt.Errorf("column %q not found", cr.Name)
	case 1:
		return found, nil
	default:
		return 0, fmt.Errorf("column %q is ambiguous", cr.Name)
	}
}
