package logical

import "math/bits"

// RelSet is a set of table-instance IDs, a growable bitset over RelID. It
// replaces the old single-uint64 bitmap, which capped a whole batch at 64
// table instances — far too small for the coalesced many-hundred-query
// batches the greedy MQO search targets.
//
// Sets are treated as immutable once built: derive new sets with Union
// instead of mutating one that has been stored in a shared structure (the
// memo copies Group values freely, and the copies alias the word slice).
type RelSet struct {
	words []uint64
}

// Add inserts r into the set, growing the backing words as needed.
func (s *RelSet) Add(r RelID) {
	w := int(r) >> 6
	for len(s.words) <= w {
		s.words = append(s.words, 0)
	}
	s.words[w] |= 1 << (uint(r) & 63)
}

// Contains reports whether r is in the set.
func (s RelSet) Contains(r RelID) bool {
	w := int(r) >> 6
	return w < len(s.words) && s.words[w]&(1<<(uint(r)&63)) != 0
}

// Union returns a new set holding every member of s and o; neither input is
// modified.
func (s RelSet) Union(o RelSet) RelSet {
	long, short := s.words, o.words
	if len(short) > len(long) {
		long, short = short, long
	}
	out := make([]uint64, len(long))
	copy(out, long)
	for i, w := range short {
		out[i] |= w
	}
	return RelSet{words: out}
}

// Empty reports whether the set has no members.
func (s RelSet) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Len returns the number of members.
func (s RelSet) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}
