package qgen

import (
	"fmt"
	"math/rand"
)

// Config parameterizes a Generator.
type Config struct {
	// Seed drives all randomness; equal seeds yield equal batches.
	Seed int64
	// Schema defaults to TPCH().
	Schema *Schema
	// MinQueries/MaxQueries bound the batch size (defaults 2 and 5).
	MinQueries, MaxQueries int
	// NoCTE disables CTE-shaped queries.
	NoCTE bool
}

// Generator produces random query batches. Batches built around a shared
// join core plus per-query extension joins and predicate perturbations, so
// covering subexpressions (equal and contained signatures, stacked shapes)
// exist by construction.
type Generator struct {
	cfg Config
	s   *Schema
	rng *rand.Rand
}

// New builds a generator seeded from cfg.Seed.
func New(cfg Config) *Generator {
	return NewFromSource(cfg, rand.NewSource(cfg.Seed))
}

// NewFromSource builds a generator over an explicit randomness source; the
// fuzz harness uses this to drive generation from the fuzzer's byte stream.
func NewFromSource(cfg Config, src rand.Source) *Generator {
	if cfg.Schema == nil {
		cfg.Schema = TPCH()
	}
	if cfg.MinQueries <= 0 {
		cfg.MinQueries = 2
	}
	if cfg.MaxQueries < cfg.MinQueries {
		cfg.MaxQueries = cfg.MinQueries + 3
	}
	return &Generator{cfg: cfg, s: cfg.Schema, rng: rand.New(src)}
}

// Batch generates one workload: a shared core chain, shared predicate
// windows, and 2..N queries that perturb both.
func (g *Generator) Batch() *Batch {
	core := g.s.Cores[g.rng.Intn(len(g.s.Cores))]
	shared := g.sharedPreds(core)
	n := g.cfg.MinQueries + g.rng.Intn(g.cfg.MaxQueries-g.cfg.MinQueries+1)
	b := &Batch{Schema: g.s, Seed: g.cfg.Seed}
	for i := 0; i < n; i++ {
		b.Queries = append(b.Queries, g.query(core, shared))
	}
	return b
}

// predCols lists the predicate columns of the given tables, in deterministic
// order.
func (g *Generator) predCols(tables []string) []Column {
	var cols []Column
	for _, t := range tables {
		tab := g.s.Tables[t]
		if tab != nil {
			cols = append(cols, tab.Preds...)
		}
	}
	return cols
}

// sharedPreds builds the predicate window every query of the batch repeats —
// a date cutoff when the core has a date column (the classic shared-window
// shape from the paper's Example 1), else one random range.
func (g *Generator) sharedPreds(core []string) []Pred {
	cols := g.predCols(core)
	if len(cols) == 0 {
		return nil
	}
	var shared []Pred
	for _, c := range cols {
		if c.Kind == ColDate {
			shared = append(shared, g.predFor(c))
			break
		}
	}
	if len(shared) == 0 || g.rng.Float64() < 0.5 {
		c := cols[g.rng.Intn(len(cols))]
		if c.Kind != ColDate {
			shared = append(shared, g.predFor(c))
		}
	}
	return shared
}

// predFor generates one predicate over the column, weighted toward ranges
// with OR'd ranges, IN lists, BETWEEN, and equality mixed in.
func (g *Generator) predFor(c Column) Pred {
	switch c.Kind {
	case ColDate:
		return Pred{Col: c.Name, Kind: PredDateLT, Date: c.Dates[g.rng.Intn(len(c.Dates))]}
	case ColCat:
		if g.rng.Intn(4) == 0 {
			return Pred{Col: c.Name, Kind: PredEq, Strs: []string{c.Cats[g.rng.Intn(len(c.Cats))]}}
		}
		k := 2 + g.rng.Intn(2)
		if k > len(c.Cats) {
			k = len(c.Cats)
		}
		perm := g.rng.Perm(len(c.Cats))[:k]
		strs := make([]string, k)
		for i, p := range perm {
			strs[i] = c.Cats[p]
		}
		return Pred{Col: c.Name, Kind: PredIn, Strs: strs}
	}
	span := c.Hi - c.Lo
	if span < 4 {
		span = 4
	}
	lo := c.Lo + g.rng.Intn(span/2+1)
	hi := lo + 1 + g.rng.Intn(span/2+1)
	switch g.rng.Intn(10) {
	case 0, 1:
		// OR of two ranges over the same column: exercises residual-predicate
		// union and disjunctive selectivity.
		lo2 := c.Lo + g.rng.Intn(span/2+1)
		return Pred{Col: c.Name, Kind: PredOr, Lo: lo, Hi: hi, Lo2: lo2, Hi2: lo2 + 1 + g.rng.Intn(span/2+1)}
	case 2:
		return Pred{Col: c.Name, Kind: PredBetween, Lo: lo, Hi: hi}
	case 3:
		// Short consecutive-integer IN list.
		return Pred{Col: c.Name, Kind: PredIn, Lo: lo, Hi: lo + 1 + g.rng.Intn(3)}
	case 4:
		return Pred{Col: c.Name, Kind: PredEq, Lo: c.Lo + g.rng.Intn(span+1)}
	default:
		return Pred{Col: c.Name, Kind: PredRange, Lo: lo, Hi: hi}
	}
}

// tablesFor starts from the core chain and extends it with 0–2 random join
// edges, returning the table list and the joins connecting it.
func (g *Generator) tablesFor(core []string) ([]string, []Join) {
	tables := []string{core[0]}
	have := map[string]bool{core[0]: true}
	var joins []Join
	attach := func(t string) {
		lc, rc, ok := g.s.edgeInto(have, t)
		if !ok {
			return
		}
		tables = append(tables, t)
		joins = append(joins, Join{LeftCol: lc, RightCol: rc})
		have[t] = true
	}
	for _, t := range core[1:] {
		attach(t)
	}
	for ext := g.rng.Intn(3); ext > 0; ext-- {
		var cands []string
		for _, e := range g.s.Edges {
			if have[e.T1] && !have[e.T2] {
				cands = append(cands, e.T2)
			} else if have[e.T2] && !have[e.T1] {
				cands = append(cands, e.T1)
			}
		}
		if len(cands) == 0 {
			break
		}
		attach(cands[g.rng.Intn(len(cands))])
	}
	return tables, joins
}

var aggFns = []string{"sum", "count", "min", "max", "avg"}

// query builds one SPJG statement over the core (possibly extended), the
// shared predicate window, and per-query extra predicates.
func (g *Generator) query(core []string, shared []Pred) *Query {
	q := &Query{}
	q.Tables, q.Joins = g.tablesFor(core)
	q.Preds = append(q.Preds, shared...)
	used := map[string]bool{}
	for _, p := range shared {
		used[p.Col] = true
	}
	cols := g.predCols(q.Tables)
	for extra := g.rng.Intn(3); extra > 0 && len(cols) > 0; extra-- {
		c := cols[g.rng.Intn(len(cols))]
		if used[c.Name] {
			continue
		}
		used[c.Name] = true
		q.Preds = append(q.Preds, g.predFor(c))
	}

	if g.rng.Float64() < 0.7 {
		var gcols []string
		for _, t := range q.Tables {
			gcols = append(gcols, g.s.Tables[t].Group...)
		}
		if len(gcols) > 0 {
			k := 1 + g.rng.Intn(2)
			if k > len(gcols) {
				k = len(gcols)
			}
			for _, p := range g.rng.Perm(len(gcols))[:k] {
				q.GroupBy = append(q.GroupBy, gcols[p])
			}
		}
	}

	var acols []string
	for _, t := range q.Tables {
		acols = append(acols, g.s.Tables[t].Agg...)
	}
	na := 1 + g.rng.Intn(2)
	for i := 0; i < na; i++ {
		alias := fmt.Sprintf("a%d", i)
		if len(acols) == 0 || g.rng.Intn(4) == 0 {
			q.Aggs = append(q.Aggs, Agg{Fn: "count", Alias: alias})
			continue
		}
		q.Aggs = append(q.Aggs, Agg{
			Fn:    aggFns[g.rng.Intn(len(aggFns))],
			Col:   acols[g.rng.Intn(len(acols))],
			Alias: alias,
		})
	}

	if !g.cfg.NoCTE && g.rng.Float64() < 0.15 {
		q.CTE = true
	}
	if g.rng.Float64() < 0.25 {
		a := q.Aggs[g.rng.Intn(len(q.Aggs))]
		q.OrderBy = a.Alias
		q.Desc = g.rng.Intn(2) == 0
	}
	return q
}
