package qgen_test

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/parser"
	"repro/internal/qgen"
	"repro/internal/storage"
)

func TestDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := qgen.New(qgen.Config{Seed: seed}).Batch()
		b := qgen.New(qgen.Config{Seed: seed}).Batch()
		if a.SQL() != b.SQL() {
			t.Fatalf("seed %d: generation is not deterministic:\n%s\n--- vs ---\n%s", seed, a.SQL(), b.SQL())
		}
	}
	a := qgen.New(qgen.Config{Seed: 1}).Batch()
	b := qgen.New(qgen.Config{Seed: 2}).Batch()
	if a.SQL() == b.SQL() {
		t.Fatalf("different seeds produced identical batches")
	}
}

func TestGeneratedSQLParses(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		b := qgen.New(qgen.Config{Seed: seed}).Batch()
		sql := b.SQL()
		stmts, err := parser.Parse(sql)
		if err != nil {
			t.Fatalf("seed %d: generated SQL does not parse: %v\n%s", seed, err, sql)
		}
		if len(stmts) != b.NumQueries() {
			t.Fatalf("seed %d: %d statements parsed from %d queries", seed, len(stmts), b.NumQueries())
		}
	}
}

func TestGrammarCoverage(t *testing.T) {
	// Across a seed sweep the generator must exercise the whole surface the
	// issue asks for: joins, OR'd ranges, IN lists, grouped and ungrouped
	// aggregates, CTEs.
	var joined, or, in, grouped, ungrouped, cte, between int
	for seed := int64(0); seed < 300; seed++ {
		b := qgen.New(qgen.Config{Seed: seed}).Batch()
		for _, q := range b.Queries {
			if len(q.Tables) > 1 {
				joined++
			}
			if len(q.GroupBy) > 0 {
				grouped++
			} else {
				ungrouped++
			}
			if q.CTE {
				cte++
			}
			for _, p := range q.Preds {
				switch p.Kind {
				case qgen.PredOr:
					or++
				case qgen.PredIn:
					in++
				case qgen.PredBetween:
					between++
				}
			}
		}
	}
	for name, n := range map[string]int{
		"joined": joined, "or": or, "in": in, "grouped": grouped,
		"ungrouped": ungrouped, "cte": cte, "between": between,
	} {
		if n == 0 {
			t.Errorf("grammar surface %q never generated in 300 seeds", name)
		}
	}
}

func TestFromBytesAlwaysValid(t *testing.T) {
	inputs := [][]byte{
		nil,
		{0},
		{0xFF},
		[]byte("hello fuzz"),
		make([]byte, 1024),
	}
	for i := 0; i < 64; i++ {
		inputs = append(inputs, []byte(strings.Repeat(string(rune('a'+i%26)), i)))
	}
	for _, in := range inputs {
		b := qgen.FromBytes(qgen.Config{Seed: 1}, in)
		if b.NumQueries() < 2 {
			t.Fatalf("input %q: batch too small", in)
		}
		if _, err := parser.Parse(b.SQL()); err != nil {
			t.Fatalf("input %q: invalid SQL: %v\n%s", in, err, b.SQL())
		}
	}
}

// TestShrinkOpsStayValid applies every shrink operation exhaustively and
// checks each result still parses — the shrinker depends on ops never
// producing syntactically broken batches.
func TestShrinkOpsStayValid(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		b := qgen.New(qgen.Config{Seed: seed}).Batch()
		var variants []*qgen.Batch
		for qi := range b.Queries {
			variants = append(variants, b.DropQuery(qi), b.Plainify(qi))
			for ti := range b.Queries[qi].Tables {
				variants = append(variants, b.DropTable(qi, ti))
			}
			for pi := range b.Queries[qi].Preds {
				variants = append(variants, b.DropPred(qi, pi), b.ShrinkPred(qi, pi))
			}
			for ai := range b.Queries[qi].Aggs {
				variants = append(variants, b.DropAgg(qi, ai))
			}
			for gi := range b.Queries[qi].GroupBy {
				variants = append(variants, b.DropGroupCol(qi, gi))
			}
		}
		for _, v := range variants {
			if v == nil {
				continue
			}
			if _, err := parser.Parse(v.SQL()); err != nil {
				t.Fatalf("seed %d: shrink op produced invalid SQL: %v\n%s", seed, err, v.SQL())
			}
		}
	}
}

func TestShrinkOpsDoNotMutateOriginal(t *testing.T) {
	b := qgen.New(qgen.Config{Seed: 7}).Batch()
	before := b.SQL()
	b.DropQuery(0)
	b.DropPred(0, 0)
	b.ShrinkPred(0, 0)
	b.Plainify(0)
	if b.SQL() != before {
		t.Fatalf("shrink ops mutated the original batch")
	}
}

func TestRandomSchemaInstallsAndParses(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		s := qgen.RandomSchema(seed)
		cat := catalog.New()
		st := storage.NewStore()
		if err := s.Install(cat, st); err != nil {
			t.Fatalf("seed %d: install: %v", seed, err)
		}
		b := qgen.New(qgen.Config{Seed: seed, Schema: s}).Batch()
		if _, err := parser.Parse(b.SQL()); err != nil {
			t.Fatalf("seed %d: random-schema SQL does not parse: %v\n%s", seed, err, b.SQL())
		}
	}
}
