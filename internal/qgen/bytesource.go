package qgen

import "encoding/binary"

// byteSource adapts a fuzzer-supplied byte slice into a rand.Source64 so
// coverage-guided fuzzing can steer the generator: each mutated input byte
// perturbs a generation decision. When the bytes run out the source repeats
// a fixed tail, keeping generation total.
type byteSource struct {
	data []byte
	pos  int
}

func (b *byteSource) Uint64() uint64 {
	var buf [8]byte
	for i := range buf {
		if b.pos < len(b.data) {
			buf[i] = b.data[b.pos]
			b.pos++
		} else {
			buf[i] = 0xA5
		}
	}
	return binary.LittleEndian.Uint64(buf[:])
}

func (b *byteSource) Int63() int64 { return int64(b.Uint64() >> 1) }

// Seed is a no-op; the stream is the seed.
func (b *byteSource) Seed(int64) {}

// FromBytes generates a batch whose every random decision is drawn from the
// given byte stream. Any input yields a structurally valid batch, so fuzz
// targets can feed arbitrary mutated data straight in.
func FromBytes(cfg Config, data []byte) *Batch {
	return NewFromSource(cfg, &byteSource{data: data}).Batch()
}
