// Package qgen is a seeded, grammar-driven SQL generator for the engine's
// correctness harnesses. It produces batches of similar SPJG queries — random
// equijoin chains over a schema's join graph, OR'd range and IN predicates,
// grouped and ungrouped aggregates, CTE-wrapped blocks — deliberately shaped
// so that covering subexpressions exist between the queries of one batch
// (shared join cores, shared predicate windows, contained and stacked
// shapes), which is what exercises signature detection, Heuristics 1–4,
// Algorithm 1 merging, and §5 cost-based selection.
//
// Batches carry their full structure (tables, joins, predicates, aggregates)
// rather than just text, so a failing batch can be shrunk structurally (see
// internal/difftest) and re-rendered at every step.
package qgen

import (
	"fmt"
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// ColKind classifies a predicate column.
type ColKind int

// Predicate column kinds.
const (
	// ColInt ranges over the [Lo, Hi] integer domain.
	ColInt ColKind = iota
	// ColCat draws from the Cats categorical string values.
	ColCat
	// ColDate draws cutoffs from the Dates list.
	ColDate
)

// Column describes one column predicates can range over.
type Column struct {
	Name   string
	Kind   ColKind
	Lo, Hi int      // integer domain (ColInt)
	Cats   []string // categorical values (ColCat)
	Dates  []string // date literals (ColDate)
}

// Table describes the generatable surface of one table.
type Table struct {
	Name string
	// Group lists columns suitable for GROUP BY.
	Group []string
	// Agg lists numeric columns suitable as aggregate arguments.
	Agg []string
	// Preds lists columns predicates can be generated over.
	Preds []Column
}

// Edge is one equijoin edge of the schema's join graph.
type Edge struct {
	T1, C1 string // table and column of one side
	T2, C2 string // table and column of the other
}

// Schema is a join graph plus per-table generation metadata. TPCH() describes
// the built-in TPC-H tables (data loaded by the caller, e.g. csedb.LoadTPCH);
// RandomSchema() additionally carries DDL and rows and is installed with
// Install.
type Schema struct {
	Name   string
	Tables map[string]*Table
	Edges  []Edge
	// Cores are the shared join chains a batch is built around. Every batch
	// picks one core; all its queries contain the core's tables, which is
	// what makes covering subexpressions exist.
	Cores [][]string

	// DDL and Rows are set for synthetic schemas only; Install loads them.
	DDL  []*catalog.Table
	Rows map[string][]sqltypes.Row

	colOwner map[string]string // column name → table name
}

// finish indexes column ownership; every schema constructor must call it.
func (s *Schema) finish() *Schema {
	s.colOwner = make(map[string]string)
	for _, t := range s.Tables {
		for _, c := range t.Group {
			s.colOwner[c] = t.Name
		}
		for _, c := range t.Agg {
			s.colOwner[c] = t.Name
		}
		for _, p := range t.Preds {
			s.colOwner[p.Name] = t.Name
		}
	}
	for _, e := range s.Edges {
		s.colOwner[e.C1] = e.T1
		s.colOwner[e.C2] = e.T2
	}
	return s
}

// Owner returns the table a column belongs to ("" when unknown).
func (s *Schema) Owner(col string) string { return s.colOwner[col] }

// AnyCol returns some known column of the table, for degenerate projections.
func (s *Schema) AnyCol(table string) string {
	t := s.Tables[table]
	if t == nil {
		return ""
	}
	if len(t.Group) > 0 {
		return t.Group[0]
	}
	if len(t.Agg) > 0 {
		return t.Agg[0]
	}
	if len(t.Preds) > 0 {
		return t.Preds[0].Name
	}
	for _, e := range s.Edges {
		if e.T1 == table {
			return e.C1
		}
		if e.T2 == table {
			return e.C2
		}
	}
	return ""
}

// edgeInto finds an edge connecting the have-set to table t and returns it as
// (haveCol, tCol). ok is false when no such edge exists.
func (s *Schema) edgeInto(have map[string]bool, t string) (haveCol, tCol string, ok bool) {
	for _, e := range s.Edges {
		if have[e.T1] && e.T2 == t {
			return e.C1, e.C2, true
		}
		if have[e.T2] && e.T1 == t {
			return e.C2, e.C1, true
		}
	}
	return "", "", false
}

// Install creates the schema's tables and rows in the given catalog and
// store, with statistics analyzed. Only synthetic schemas carry DDL; TPC-H
// data is loaded by the caller instead.
func (s *Schema) Install(cat *catalog.Catalog, st *storage.Store) error {
	if len(s.DDL) == 0 {
		return fmt.Errorf("schema %s has no DDL to install (load it externally)", s.Name)
	}
	for _, tab := range s.DDL {
		if err := cat.Add(tab); err != nil {
			return err
		}
		stab := st.Create(tab.Name)
		for _, r := range s.Rows[tab.Name] {
			stab.Append(r)
		}
		storage.AnalyzeTable(tab, stab)
	}
	return nil
}

// dateChoices are the o_orderdate cutoffs batches share (the TPC-H data
// spans 1992-01-01 .. 1998-08-02).
var dateChoices = []string{"1993-06-30", "1994-12-31", "1995-06-17", "1996-07-01", "1997-12-31"}

// TPCH returns the generation schema for the built-in TPC-H tables.
func TPCH() *Schema {
	tables := []*Table{
		{
			Name:  "customer",
			Group: []string{"c_nationkey", "c_mktsegment"},
			Agg:   []string{"c_acctbal"},
			Preds: []Column{
				{Name: "c_nationkey", Kind: ColInt, Lo: 0, Hi: 24},
				{Name: "c_mktsegment", Kind: ColCat, Cats: []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}},
				{Name: "c_acctbal", Kind: ColInt, Lo: -1000, Hi: 10000},
			},
		},
		{
			Name:  "orders",
			Group: []string{"o_orderpriority", "o_orderstatus"},
			Agg:   []string{"o_totalprice"},
			Preds: []Column{
				{Name: "o_orderdate", Kind: ColDate, Dates: dateChoices},
				{Name: "o_totalprice", Kind: ColInt, Lo: 1000, Hi: 400000},
				{Name: "o_orderpriority", Kind: ColCat, Cats: []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}},
			},
		},
		{
			Name:  "lineitem",
			Group: []string{"l_returnflag", "l_shipmode"},
			Agg:   []string{"l_extendedprice", "l_quantity", "l_discount"},
			Preds: []Column{
				{Name: "l_quantity", Kind: ColInt, Lo: 1, Hi: 50},
				{Name: "l_shipmode", Kind: ColCat, Cats: []string{"AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB", "REG AIR"}},
				{Name: "l_returnflag", Kind: ColCat, Cats: []string{"A", "N", "R"}},
			},
		},
		{
			Name:  "nation",
			Group: []string{"n_name", "n_regionkey"},
			Preds: []Column{
				{Name: "n_regionkey", Kind: ColInt, Lo: 0, Hi: 4},
				{Name: "n_nationkey", Kind: ColInt, Lo: 0, Hi: 24},
			},
		},
		{
			Name:  "region",
			Group: []string{"r_name"},
			Preds: []Column{{Name: "r_regionkey", Kind: ColInt, Lo: 0, Hi: 4}},
		},
		{
			Name:  "part",
			Group: []string{"p_brand", "p_mfgr"},
			Agg:   []string{"p_retailprice", "p_availqty"},
			Preds: []Column{
				{Name: "p_size", Kind: ColInt, Lo: 1, Hi: 50},
				{Name: "p_mfgr", Kind: ColCat, Cats: []string{"Manufacturer#1", "Manufacturer#2", "Manufacturer#3", "Manufacturer#4", "Manufacturer#5"}},
			},
		},
		{
			Name:  "supplier",
			Group: []string{"s_nationkey"},
			Agg:   []string{"s_acctbal"},
			Preds: []Column{{Name: "s_nationkey", Kind: ColInt, Lo: 0, Hi: 24}},
		},
		{
			Name:  "partsupp",
			Agg:   []string{"ps_supplycost", "ps_availqty"},
			Preds: []Column{{Name: "ps_availqty", Kind: ColInt, Lo: 1, Hi: 9999}},
		},
	}
	s := &Schema{
		Name:   "tpch",
		Tables: make(map[string]*Table, len(tables)),
		Edges: []Edge{
			{T1: "customer", C1: "c_custkey", T2: "orders", C2: "o_custkey"},
			{T1: "orders", C1: "o_orderkey", T2: "lineitem", C2: "l_orderkey"},
			{T1: "customer", C1: "c_nationkey", T2: "nation", C2: "n_nationkey"},
			{T1: "nation", C1: "n_regionkey", T2: "region", C2: "r_regionkey"},
			{T1: "lineitem", C1: "l_partkey", T2: "part", C2: "p_partkey"},
			{T1: "lineitem", C1: "l_suppkey", T2: "supplier", C2: "s_suppkey"},
			{T1: "part", C1: "p_partkey", T2: "partsupp", C2: "ps_partkey"},
		},
		Cores: [][]string{
			{"customer", "orders", "lineitem"},
			{"orders", "lineitem"},
			{"part", "lineitem", "orders"},
			{"customer", "orders"},
		},
	}
	for _, t := range tables {
		s.Tables[t.Name] = t
	}
	return s.finish()
}

// RandomSchema generates a synthetic star schema — one fact table joined to
// 2–4 dimension tables — with deterministic data, so harnesses can check the
// engine beyond the TPC-H shape. Table and column names embed the seed so
// several random schemas can coexist in one database.
func RandomSchema(seed int64) *Schema {
	rng := rand.New(rand.NewSource(seed))
	nDims := 2 + rng.Intn(3)
	p := func(format string, args ...interface{}) string {
		return fmt.Sprintf("rs%d_", seed) + fmt.Sprintf(format, args...)
	}

	s := &Schema{
		Name:   fmt.Sprintf("random-%d", seed),
		Tables: make(map[string]*Table),
		Rows:   make(map[string][]sqltypes.Row),
	}
	cats := []string{"alpha", "beta", "gamma", "delta", "epsilon"}

	// Dimension tables: id, category, band, value.
	dimNames := make([]string, nDims)
	dimSizes := make([]int, nDims)
	for d := 0; d < nDims; d++ {
		name := p("d%d", d)
		dimNames[d] = name
		size := 40 + rng.Intn(160)
		dimSizes[d] = size
		idCol, catCol := p("d%d_id", d), p("d%d_cat", d)
		bandCol, valCol := p("d%d_band", d), p("d%d_val", d)
		s.Tables[name] = &Table{
			Name:  name,
			Group: []string{catCol, bandCol},
			Agg:   []string{valCol},
			Preds: []Column{
				{Name: bandCol, Kind: ColInt, Lo: 0, Hi: 9},
				{Name: catCol, Kind: ColCat, Cats: cats},
			},
		}
		s.DDL = append(s.DDL, &catalog.Table{Name: name, Cols: []catalog.Column{
			{Name: idCol, Type: sqltypes.KindInt},
			{Name: catCol, Type: sqltypes.KindString},
			{Name: bandCol, Type: sqltypes.KindInt},
			{Name: valCol, Type: sqltypes.KindFloat},
		}})
		rows := make([]sqltypes.Row, size)
		for i := range rows {
			rows[i] = sqltypes.Row{
				sqltypes.NewInt(int64(i)),
				sqltypes.NewString(cats[rng.Intn(len(cats))]),
				sqltypes.NewInt(int64(rng.Intn(10))),
				sqltypes.NewFloat(float64(rng.Intn(100000)) / 100),
			}
		}
		s.Rows[name] = rows
	}

	// Fact table: id, one fk per dimension, band, two measures.
	fact := p("f")
	fkCols := make([]string, nDims)
	factCols := []catalog.Column{{Name: p("f_id"), Type: sqltypes.KindInt}}
	for d := 0; d < nDims; d++ {
		fkCols[d] = p("f_d%d", d)
		factCols = append(factCols, catalog.Column{Name: fkCols[d], Type: sqltypes.KindInt})
		s.Edges = append(s.Edges, Edge{T1: fact, C1: fkCols[d], T2: dimNames[d], C2: p("d%d_id", d)})
	}
	bandCol, valCol, qtyCol := p("f_band"), p("f_val"), p("f_qty")
	factCols = append(factCols,
		catalog.Column{Name: bandCol, Type: sqltypes.KindInt},
		catalog.Column{Name: valCol, Type: sqltypes.KindFloat},
		catalog.Column{Name: qtyCol, Type: sqltypes.KindFloat},
	)
	s.Tables[fact] = &Table{
		Name: fact,
		Agg:  []string{valCol, qtyCol},
		Preds: []Column{
			{Name: bandCol, Kind: ColInt, Lo: 0, Hi: 99},
		},
	}
	s.DDL = append(s.DDL, &catalog.Table{Name: fact, Cols: factCols})
	nFact := 2000 + rng.Intn(3000)
	rows := make([]sqltypes.Row, nFact)
	for i := range rows {
		r := sqltypes.Row{sqltypes.NewInt(int64(i))}
		for d := 0; d < nDims; d++ {
			r = append(r, sqltypes.NewInt(int64(rng.Intn(dimSizes[d]))))
		}
		r = append(r,
			sqltypes.NewInt(int64(rng.Intn(100))),
			sqltypes.NewFloat(float64(rng.Intn(1000000))/100),
			sqltypes.NewFloat(float64(1+rng.Intn(50))),
		)
		rows[i] = r
	}
	s.Rows[fact] = rows

	// Cores: the fact joined with its first one or two dimensions.
	s.Cores = [][]string{{fact, dimNames[0]}}
	if nDims > 1 {
		s.Cores = append(s.Cores, []string{fact, dimNames[0], dimNames[1]})
	}
	return s.finish()
}
