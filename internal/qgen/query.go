package qgen

import (
	"fmt"
	"strings"
)

// PredKind enumerates the predicate shapes the generator emits.
type PredKind int

// Predicate shapes.
const (
	// PredRange renders `col > Lo and col < Hi`.
	PredRange PredKind = iota
	// PredBetween renders `col between Lo and Hi`.
	PredBetween
	// PredOr renders `(col > Lo and col < Hi or col > Lo2 and col < Hi2)`.
	PredOr
	// PredIn renders `col in (v1, v2, ...)` over Strs or integer Lo..Lo+len.
	PredIn
	// PredEq renders `col = v` (first of Strs, or Lo).
	PredEq
	// PredDateLT renders `col < 'Date'`.
	PredDateLT
)

// Pred is one WHERE conjunct.
type Pred struct {
	Col              string
	Kind             PredKind
	Lo, Hi, Lo2, Hi2 int
	Strs             []string // string literals for PredIn / PredEq
	Date             string   // date literal for PredDateLT
}

func quoteAll(vs []string) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = "'" + v + "'"
	}
	return out
}

// SQL renders the predicate as a conjunct-safe expression.
func (p Pred) SQL() string {
	switch p.Kind {
	case PredRange:
		return fmt.Sprintf("%s > %d and %s < %d", p.Col, p.Lo, p.Col, p.Hi)
	case PredBetween:
		return fmt.Sprintf("%s between %d and %d", p.Col, p.Lo, p.Hi)
	case PredOr:
		return fmt.Sprintf("(%s > %d and %s < %d or %s > %d and %s < %d)",
			p.Col, p.Lo, p.Col, p.Hi, p.Col, p.Lo2, p.Col, p.Hi2)
	case PredIn:
		if len(p.Strs) > 0 {
			return fmt.Sprintf("%s in (%s)", p.Col, strings.Join(quoteAll(p.Strs), ", "))
		}
		vals := make([]string, 0, p.Hi-p.Lo+1)
		for v := p.Lo; v <= p.Hi; v++ {
			vals = append(vals, fmt.Sprintf("%d", v))
		}
		return fmt.Sprintf("%s in (%s)", p.Col, strings.Join(vals, ", "))
	case PredEq:
		if len(p.Strs) > 0 {
			return fmt.Sprintf("%s = '%s'", p.Col, p.Strs[0])
		}
		return fmt.Sprintf("%s = %d", p.Col, p.Lo)
	case PredDateLT:
		return fmt.Sprintf("%s < '%s'", p.Col, p.Date)
	}
	return "1 = 1"
}

// Join connects query table i+1 (RightCol's owner) to an earlier table.
type Join struct {
	LeftCol, RightCol string
}

// Agg is one aggregate output column. An empty Col with Fn "count" renders
// count(*).
type Agg struct {
	Fn    string
	Col   string
	Alias string
}

// SQL renders the aggregate with its alias.
func (a Agg) SQL() string {
	arg := a.Col
	if arg == "" {
		arg = "*"
	}
	return fmt.Sprintf("%s(%s) as %s", a.Fn, arg, a.Alias)
}

// Query is one generated SPJG statement. Tables[0] is the root; Joins[i]
// connects Tables[i+1] to some earlier table.
type Query struct {
	Tables  []string
	Joins   []Join
	GroupBy []string
	Aggs    []Agg
	Preds   []Pred

	// CTE renders the join+filter block as `with qN as (...)` and the
	// grouping as an outer select over it.
	CTE bool
	// OrderBy names an aggregate alias to sort by (optional).
	OrderBy string
	Desc    bool
	Limit   int
}

func (q *Query) clone() *Query {
	c := *q
	c.Tables = append([]string(nil), q.Tables...)
	c.Joins = append([]Join(nil), q.Joins...)
	c.GroupBy = append([]string(nil), q.GroupBy...)
	c.Aggs = append([]Agg(nil), q.Aggs...)
	c.Preds = make([]Pred, len(q.Preds))
	for i, p := range q.Preds {
		c.Preds[i] = p
		c.Preds[i].Strs = append([]string(nil), p.Strs...)
	}
	return &c
}

// where renders the joined WHERE clause (joins first, then predicates).
func (q *Query) where() string {
	var conj []string
	for _, j := range q.Joins {
		conj = append(conj, fmt.Sprintf("%s = %s", j.LeftCol, j.RightCol))
	}
	for _, p := range q.Preds {
		conj = append(conj, p.SQL())
	}
	if len(conj) == 0 {
		return ""
	}
	return "\nwhere " + strings.Join(conj, "\n  and ")
}

func (q *Query) tail() string {
	var sb strings.Builder
	if q.OrderBy != "" {
		sb.WriteString("\norder by " + q.OrderBy)
		if q.Desc {
			sb.WriteString(" desc")
		}
	}
	if q.Limit > 0 {
		fmt.Fprintf(&sb, "\nlimit %d", q.Limit)
	}
	return sb.String()
}

// SQL renders the query. The schema supplies a fallback projection column
// for degenerate CTE bodies; it may be nil for non-CTE queries.
func (q *Query) SQL(s *Schema, idx int) string {
	var outs []string
	for _, g := range q.GroupBy {
		outs = append(outs, g)
	}
	for _, a := range q.Aggs {
		outs = append(outs, a.SQL())
	}
	groupBy := ""
	if len(q.GroupBy) > 0 {
		groupBy = "\ngroup by " + strings.Join(q.GroupBy, ", ")
	}

	if !q.CTE {
		return fmt.Sprintf("select %s\nfrom %s%s%s%s",
			strings.Join(outs, ", "), strings.Join(q.Tables, ", "), q.where(), groupBy, q.tail())
	}

	// CTE form: all joins and filters inside an SPJ block, grouping outside.
	need := map[string]bool{}
	var inner []string
	add := func(c string) {
		if c != "" && !need[c] {
			need[c] = true
			inner = append(inner, c)
		}
	}
	for _, g := range q.GroupBy {
		add(g)
	}
	for _, a := range q.Aggs {
		add(a.Col)
	}
	if len(inner) == 0 && s != nil {
		add(s.AnyCol(q.Tables[0]))
	}
	name := fmt.Sprintf("q%d", idx)
	return fmt.Sprintf("with %s as (\n  select %s\n  from %s%s\n)\nselect %s\nfrom %s%s%s",
		name, strings.Join(inner, ", "), strings.Join(q.Tables, ", "),
		strings.ReplaceAll(q.where(), "\n", "\n  "),
		strings.Join(outs, ", "), name, groupBy, q.tail())
}

// Batch is a generated multi-query workload plus the schema it ranges over.
type Batch struct {
	Schema  *Schema
	Seed    int64
	Queries []*Query
}

// Clone deep-copies the batch (the schema is shared).
func (b *Batch) Clone() *Batch {
	c := &Batch{Schema: b.Schema, Seed: b.Seed, Queries: make([]*Query, len(b.Queries))}
	for i, q := range b.Queries {
		c.Queries[i] = q.clone()
	}
	return c
}

// SQL renders the whole batch, one statement per query.
func (b *Batch) SQL() string {
	var sb strings.Builder
	for i, q := range b.Queries {
		if i > 0 {
			sb.WriteString(";\n\n")
		}
		sb.WriteString(q.SQL(b.Schema, i))
	}
	sb.WriteString(";")
	return sb.String()
}

// --- shrink operations -------------------------------------------------
//
// Each operation returns a structurally valid, strictly simpler copy of the
// batch, or nil when it does not apply. The shrinker in internal/difftest
// greedily applies them while the failure persists.

// DropQuery removes query qi; nil when only one query remains.
func (b *Batch) DropQuery(qi int) *Batch {
	if len(b.Queries) <= 1 || qi < 0 || qi >= len(b.Queries) {
		return nil
	}
	c := b.Clone()
	c.Queries = append(c.Queries[:qi], c.Queries[qi+1:]...)
	return c
}

// DropTable removes table ti of query qi together with its introducing join
// and everything referencing its columns. Returns nil when the table is the
// root, is referenced by a later join (removing it would disconnect the join
// graph), or the indices are invalid.
func (b *Batch) DropTable(qi, ti int) *Batch {
	if qi < 0 || qi >= len(b.Queries) {
		return nil
	}
	q := b.Queries[qi]
	if ti <= 0 || ti >= len(q.Tables) {
		return nil
	}
	tab := q.Tables[ti]
	owner := b.Schema.Owner
	for k, j := range q.Joins {
		if k == ti-1 {
			continue
		}
		if owner(j.LeftCol) == tab || owner(j.RightCol) == tab {
			return nil
		}
	}
	c := b.Clone()
	cq := c.Queries[qi]
	cq.Tables = append(cq.Tables[:ti], cq.Tables[ti+1:]...)
	cq.Joins = append(cq.Joins[:ti-1], cq.Joins[ti:]...)
	var gb []string
	for _, g := range cq.GroupBy {
		if owner(g) != tab {
			gb = append(gb, g)
		}
	}
	cq.GroupBy = gb
	var aggs []Agg
	for _, a := range cq.Aggs {
		if a.Col == "" || owner(a.Col) != tab {
			aggs = append(aggs, a)
		}
	}
	if len(aggs) == 0 {
		aggs = []Agg{{Fn: "count", Alias: "shrunk_cnt"}}
	}
	if cq.OrderBy != "" {
		found := false
		for _, a := range aggs {
			if a.Alias == cq.OrderBy {
				found = true
			}
		}
		if !found {
			cq.OrderBy = ""
		}
	}
	cq.Aggs = aggs
	var preds []Pred
	for _, p := range cq.Preds {
		if owner(p.Col) != tab {
			preds = append(preds, p)
		}
	}
	cq.Preds = preds
	return c
}

// DropPred removes predicate pi of query qi.
func (b *Batch) DropPred(qi, pi int) *Batch {
	if qi < 0 || qi >= len(b.Queries) {
		return nil
	}
	if pi < 0 || pi >= len(b.Queries[qi].Preds) {
		return nil
	}
	c := b.Clone()
	cq := c.Queries[qi]
	cq.Preds = append(cq.Preds[:pi], cq.Preds[pi+1:]...)
	return c
}

// Plainify strips decoration from query qi — CTE wrapper, order by, limit —
// one aspect per call. Returns nil when the query is already plain.
func (b *Batch) Plainify(qi int) *Batch {
	if qi < 0 || qi >= len(b.Queries) {
		return nil
	}
	q := b.Queries[qi]
	if !q.CTE && q.OrderBy == "" && q.Limit == 0 {
		return nil
	}
	c := b.Clone()
	cq := c.Queries[qi]
	cq.CTE = false
	cq.OrderBy = ""
	cq.Desc = false
	cq.Limit = 0
	return c
}

// DropAgg removes aggregate ai of query qi, keeping at least one output
// aggregate (the last one degrades to count(*) unless it already is).
func (b *Batch) DropAgg(qi, ai int) *Batch {
	if qi < 0 || qi >= len(b.Queries) {
		return nil
	}
	q := b.Queries[qi]
	if ai < 0 || ai >= len(q.Aggs) {
		return nil
	}
	c := b.Clone()
	cq := c.Queries[qi]
	if len(cq.Aggs) == 1 {
		if cq.Aggs[0].Fn == "count" && cq.Aggs[0].Col == "" {
			return nil
		}
		cq.Aggs[0] = Agg{Fn: "count", Alias: cq.Aggs[0].Alias}
		if cq.OrderBy == "" {
			return c
		}
		return c
	}
	if cq.OrderBy == cq.Aggs[ai].Alias {
		cq.OrderBy = ""
	}
	cq.Aggs = append(cq.Aggs[:ai], cq.Aggs[ai+1:]...)
	return c
}

// DropGroupCol removes group-by column gi of query qi (the query becomes a
// scalar aggregate when the last one goes).
func (b *Batch) DropGroupCol(qi, gi int) *Batch {
	if qi < 0 || qi >= len(b.Queries) {
		return nil
	}
	q := b.Queries[qi]
	if gi < 0 || gi >= len(q.GroupBy) {
		return nil
	}
	c := b.Clone()
	cq := c.Queries[qi]
	cq.GroupBy = append(cq.GroupBy[:gi], cq.GroupBy[gi+1:]...)
	return c
}

// ShrinkPred simplifies predicate pi of query qi one notch: an OR collapses
// to its first branch, an IN list halves, then constants round toward zero
// and ranges narrow. Returns nil when the predicate is minimal.
func (b *Batch) ShrinkPred(qi, pi int) *Batch {
	if qi < 0 || qi >= len(b.Queries) {
		return nil
	}
	q := b.Queries[qi]
	if pi < 0 || pi >= len(q.Preds) {
		return nil
	}
	c := b.Clone()
	p := &c.Queries[qi].Preds[pi]
	switch {
	case p.Kind == PredOr:
		p.Kind = PredRange
		p.Lo2, p.Hi2 = 0, 0
	case p.Kind == PredIn && len(p.Strs) > 1:
		p.Strs = p.Strs[:(len(p.Strs)+1)/2]
	case p.Kind == PredIn && len(p.Strs) == 0 && p.Hi > p.Lo:
		p.Hi = p.Lo + (p.Hi-p.Lo)/2
	case (p.Kind == PredRange || p.Kind == PredBetween) && p.Lo > 1:
		p.Lo /= 2
	case (p.Kind == PredRange || p.Kind == PredBetween) && p.Hi-p.Lo > 4:
		p.Hi = p.Lo + (p.Hi-p.Lo)/2
	default:
		return nil
	}
	return c
}

// NumQueries reports the batch size.
func (b *Batch) NumQueries() int { return len(b.Queries) }
