// Package catalog holds table schemas and statistics. The optimizer reads
// statistics from here; the storage layer registers table data alongside the
// schema objects.
package catalog

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sqltypes"
)

// Column describes one column of a table.
type Column struct {
	Name string
	Type sqltypes.Kind
}

// ColStat summarizes one column for cardinality estimation.
type ColStat struct {
	Distinct float64        // estimated number of distinct values
	Min, Max sqltypes.Datum // value range for range-predicate selectivity
	NullFrac float64        // fraction of NULL values
}

// TableStats summarizes a table for cardinality estimation.
type TableStats struct {
	RowCount float64
	Cols     []ColStat // parallel to Table.Cols
}

// Table is a schema object: a base table or the backing table of a
// materialized view.
type Table struct {
	Name  string
	Cols  []Column
	Stats TableStats

	// AvgRowSize is the estimated width of a full row in bytes; derived from
	// column kinds unless set explicitly by the statistics builder.
	AvgRowSize float64

	// OrderedBy lists column ordinals the stored rows are physically sorted
	// by (ascending, in sequence), or nil when no order is guaranteed. The
	// optimizer uses it to elide sorts, enable merge joins, and stream
	// aggregation. Unordered inserts clear it.
	OrderedBy []int

	// Indexes declares secondary single-column indexes. The storage layer
	// materializes them as sorted permutations when the table is analyzed.
	Indexes []Index
}

// Index is a secondary index over one column.
type Index struct {
	// Col is the indexed column's ordinal.
	Col int
}

// HasIndexOn reports whether an index on the given ordinal is declared.
func (t *Table) HasIndexOn(col int) bool {
	for _, ix := range t.Indexes {
		if ix.Col == col {
			return true
		}
	}
	return false
}

// ColIndex returns the ordinal of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Column returns the named column, or an error naming the table.
func (t *Table) Column(name string) (int, *Column, error) {
	i := t.ColIndex(name)
	if i < 0 {
		return 0, nil, fmt.Errorf("column %q does not exist in table %q", name, t.Name)
	}
	return i, &t.Cols[i], nil
}

// ColWidth returns the estimated byte width of column i.
func (t *Table) ColWidth(i int) float64 {
	return float64(sqltypes.KindSize(t.Cols[i].Type))
}

// ColStat returns the statistics for column i, substituting a conservative
// default when statistics have not been collected.
func (t *Table) ColStat(i int) ColStat {
	if i < len(t.Stats.Cols) {
		return t.Stats.Cols[i]
	}
	d := t.Stats.RowCount
	if d <= 0 {
		d = 1000
	}
	return ColStat{Distinct: d}
}

// Catalog is a named collection of tables. It is not safe for concurrent
// mutation; the engine serializes DDL.
type Catalog struct {
	tables map[string]*Table
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Add registers a table. It returns an error if the name is taken.
func (c *Catalog) Add(t *Table) error {
	key := strings.ToLower(t.Name)
	if _, ok := c.tables[key]; ok {
		return fmt.Errorf("table %q already exists", t.Name)
	}
	if t.AvgRowSize == 0 {
		for i := range t.Cols {
			t.AvgRowSize += t.ColWidth(i)
		}
	}
	c.tables[key] = t
	return nil
}

// Drop removes a table by name.
func (c *Catalog) Drop(name string) error {
	key := strings.ToLower(name)
	if _, ok := c.tables[key]; !ok {
		return fmt.Errorf("table %q does not exist", name)
	}
	delete(c.tables, key)
	return nil
}

// Table resolves a table by name (case-insensitive).
func (c *Catalog) Table(name string) (*Table, error) {
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("table %q does not exist", name)
	}
	return t, nil
}

// Names returns all table names in sorted order.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}
