package catalog

import (
	"testing"

	"repro/internal/sqltypes"
)

func sampleTable() *Table {
	return &Table{
		Name: "Sample",
		Cols: []Column{
			{Name: "id", Type: sqltypes.KindInt},
			{Name: "name", Type: sqltypes.KindString},
			{Name: "price", Type: sqltypes.KindFloat},
		},
	}
}

func TestAddAndResolve(t *testing.T) {
	c := New()
	if err := c.Add(sampleTable()); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"sample", "SAMPLE", "Sample"} {
		if _, err := c.Table(name); err != nil {
			t.Errorf("lookup %q failed: %v", name, err)
		}
	}
	if _, err := c.Table("other"); err == nil {
		t.Error("missing table must error")
	}
}

func TestAddDuplicate(t *testing.T) {
	c := New()
	if err := c.Add(sampleTable()); err != nil {
		t.Fatal(err)
	}
	dup := sampleTable()
	dup.Name = "SAMPLE"
	if err := c.Add(dup); err == nil {
		t.Error("case-insensitive duplicate must be rejected")
	}
}

func TestDrop(t *testing.T) {
	c := New()
	if err := c.Add(sampleTable()); err != nil {
		t.Fatal(err)
	}
	if err := c.Drop("sample"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Table("sample"); err == nil {
		t.Error("dropped table still resolvable")
	}
	if err := c.Drop("sample"); err == nil {
		t.Error("double drop must error")
	}
}

func TestNamesSorted(t *testing.T) {
	c := New()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		tab := sampleTable()
		tab.Name = n
		if err := c.Add(tab); err != nil {
			t.Fatal(err)
		}
	}
	names := c.Names()
	if len(names) != 3 || names[0] != "alpha" || names[2] != "zeta" {
		t.Errorf("Names = %v", names)
	}
}

func TestColIndexAndColumn(t *testing.T) {
	tab := sampleTable()
	if tab.ColIndex("NAME") != 1 {
		t.Error("ColIndex must be case-insensitive")
	}
	if tab.ColIndex("missing") != -1 {
		t.Error("missing column index must be -1")
	}
	i, col, err := tab.Column("price")
	if err != nil || i != 2 || col.Type != sqltypes.KindFloat {
		t.Errorf("Column = %d,%v,%v", i, col, err)
	}
	if _, _, err := tab.Column("nope"); err == nil {
		t.Error("missing column must error")
	}
}

func TestAvgRowSizeDerived(t *testing.T) {
	c := New()
	tab := sampleTable()
	if err := c.Add(tab); err != nil {
		t.Fatal(err)
	}
	// int(8) + string(16) + float(8)
	if tab.AvgRowSize != 32 {
		t.Errorf("AvgRowSize = %g, want 32", tab.AvgRowSize)
	}
}

func TestColStatDefault(t *testing.T) {
	tab := sampleTable()
	tab.Stats = TableStats{RowCount: 500}
	cs := tab.ColStat(1)
	if cs.Distinct != 500 {
		t.Errorf("default distinct = %g, want row count", cs.Distinct)
	}
	tab.Stats.Cols = []ColStat{{Distinct: 7}}
	if tab.ColStat(0).Distinct != 7 {
		t.Error("collected stats must be returned")
	}
}
