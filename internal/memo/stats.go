package memo

import (
	"repro/internal/catalog"
	"repro/internal/logical"
	"repro/internal/scalar"
	"repro/internal/sqltypes"
)

// defaultSelectivity is used for predicates the estimator cannot analyze
// (subquery comparisons, expressions over computed values).
const defaultSelectivity = 1.0 / 3.0

// Estimator derives cardinalities from catalog statistics. Estimates attach
// to groups, not plans, so every join order of the same group sees the same
// cardinality — a property the CSE cost heuristics rely on.
type Estimator struct {
	Md *logical.Metadata
}

// BaseRows returns the row count of a table instance.
func (e *Estimator) BaseRows(rel logical.RelID) float64 {
	rows := e.Md.Rel(rel).Tab.Stats.RowCount
	if rows <= 0 {
		return 1
	}
	return rows
}

// colStat resolves base-column statistics; ok is false for synthesized
// columns.
func (e *Estimator) colStat(c scalar.ColID) (catalog.ColStat, bool) {
	rel := e.Md.RelOfCol(c)
	if rel == nil {
		return catalog.ColStat{}, false
	}
	return rel.Tab.ColStat(e.Md.Col(c).Ord), true
}

// NDV returns the estimated number of distinct values of column c, falling
// back to a conservative default for synthesized columns.
func (e *Estimator) NDV(c scalar.ColID) float64 {
	if cs, ok := e.colStat(c); ok && cs.Distinct > 0 {
		return cs.Distinct
	}
	return 100
}

// Selectivity estimates the fraction of rows satisfying pred.
func (e *Estimator) Selectivity(pred *scalar.Expr) float64 {
	if scalar.IsTrue(pred) {
		return 1
	}
	switch pred.Op {
	case scalar.OpAnd:
		s := 1.0
		for _, a := range pred.Args {
			s *= e.Selectivity(a)
		}
		return s
	case scalar.OpOr:
		s := 0.0
		for _, a := range pred.Args {
			sa := e.Selectivity(a)
			s = s + sa - s*sa
		}
		return s
	case scalar.OpNot:
		return clampSel(1 - e.Selectivity(pred.Args[0]))
	case scalar.OpEq, scalar.OpNe, scalar.OpLt, scalar.OpLe, scalar.OpGt, scalar.OpGe:
		return e.comparisonSelectivity(pred)
	case scalar.OpLike:
		// Patterns anchored at the start are more selective than floating
		// substrings.
		if p := pred.Args[1]; p.Op == scalar.OpConst && p.Const.Kind() == sqltypes.KindString {
			s := p.Const.Str()
			if len(s) > 0 && s[0] != '%' && s[0] != '_' {
				return 0.05
			}
		}
		return 0.15
	case scalar.OpConst:
		if pred.Const.Kind() == sqltypes.KindBool {
			if pred.Const.Bool() {
				return 1
			}
			return 0
		}
	}
	return defaultSelectivity
}

func (e *Estimator) comparisonSelectivity(pred *scalar.Expr) float64 {
	l, r := pred.Args[0], pred.Args[1]
	// col = col → equijoin selectivity.
	if a, b, ok := pred.IsColEqCol(); ok {
		na, nb := e.NDV(a), e.NDV(b)
		if nb > na {
			na = nb
		}
		return clampSel(1 / na)
	}
	// Normalize to col <op> const.
	op := pred.Op
	if l.Op == scalar.OpConst && r.Op == scalar.OpCol {
		l, r = r, l
		op = flipCmp(op)
	}
	if l.Op != scalar.OpCol || r.Op != scalar.OpConst {
		return defaultSelectivity
	}
	cs, ok := e.colStat(l.Col)
	if !ok {
		return defaultSelectivity
	}
	switch op {
	case scalar.OpEq:
		return clampSel(1 / maxf(cs.Distinct, 1))
	case scalar.OpNe:
		return clampSel(1 - 1/maxf(cs.Distinct, 1))
	}
	// Range predicate via min/max interpolation.
	if cs.Min.IsNull() || cs.Max.IsNull() || !numericLike(cs.Min.Kind()) {
		return defaultSelectivity
	}
	lo, hi := cs.Min.Float(), cs.Max.Float()
	if hi <= lo {
		return defaultSelectivity
	}
	v := r.Const
	if !numericLike(v.Kind()) {
		return defaultSelectivity
	}
	frac := (v.Float() - lo) / (hi - lo)
	switch op {
	case scalar.OpLt, scalar.OpLe:
		return clampSel(frac)
	case scalar.OpGt, scalar.OpGe:
		return clampSel(1 - frac)
	}
	return defaultSelectivity
}

func numericLike(k sqltypes.Kind) bool {
	return k == sqltypes.KindInt || k == sqltypes.KindFloat || k == sqltypes.KindDate
}

func flipCmp(op scalar.Op) scalar.Op {
	switch op {
	case scalar.OpLt:
		return scalar.OpGt
	case scalar.OpLe:
		return scalar.OpGe
	case scalar.OpGt:
		return scalar.OpLt
	case scalar.OpGe:
		return scalar.OpLe
	default:
		return op
	}
}

// JoinRows estimates the cardinality of joining the given instances under
// the applicable conjuncts (cross product times predicate selectivities).
func (e *Estimator) JoinRows(rels []logical.RelID, conjuncts []*scalar.Expr) float64 {
	rows := 1.0
	for _, r := range rels {
		rows *= e.BaseRows(r)
	}
	for _, c := range conjuncts {
		rows *= e.Selectivity(c)
	}
	if rows < 1 {
		rows = 1
	}
	return rows
}

// GroupRows estimates the output cardinality of grouping input rows by the
// given columns. Empty grouping columns (scalar aggregation) yield one row.
// Columns of the same base table multiply up to at most that table's row
// count — a coarse functional-dependency bound (a table's columns can't
// produce more combinations than it has rows), which keeps covering-CSE
// groupings like (o_orderkey, o_orderdate) from overcounting.
func (e *Estimator) GroupRows(input float64, groupCols []scalar.ColID) float64 {
	if len(groupCols) == 0 {
		return 1
	}
	perRel := make(map[logical.RelID]float64)
	synth := 1.0
	for _, g := range groupCols {
		if rel := e.Md.RelOfCol(g); rel != nil {
			f, ok := perRel[rel.ID]
			if !ok {
				f = 1
			}
			f *= minf(e.NDV(g), input)
			if limit := rel.Tab.Stats.RowCount; limit > 0 && f > limit {
				f = limit
			}
			perRel[rel.ID] = f
		} else {
			synth *= minf(e.NDV(g), input)
		}
	}
	d := synth
	for _, f := range perRel {
		d *= f
		if d > input {
			return maxf(input, 1)
		}
	}
	return maxf(minf(d, input), 1)
}

// RowWidth returns the estimated byte width of a row with the given columns.
func (e *Estimator) RowWidth(cols []scalar.ColID) float64 {
	w := 0.0
	for _, c := range cols {
		w += float64(sqltypes.KindSize(e.Md.Col(c).Kind))
	}
	if w < 1 {
		w = 1
	}
	return w
}

func clampSel(s float64) float64 {
	if s < 1e-7 {
		return 1e-7
	}
	if s > 1 {
		return 1
	}
	return s
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
