// Package memo implements the Cascades-style memo: groups of logically
// equivalent expressions with logical properties (relation sets, pruned
// output columns, cardinality estimates) and the paper's table signatures
// (§3) attached to every group. The memo is populated per query block by
// join-subset exploration and eager-aggregation rules (build.go); the
// optimizer costs groups and the CSE manager detects sharable groups through
// the signature index.
package memo

import (
	"fmt"
	"strings"

	"repro/internal/logical"
	"repro/internal/scalar"
)

// GroupID identifies a memo group. IDs are dense, starting at 0.
type GroupID int32

// InvalidGroup is the zero GroupID sentinel.
const InvalidGroup GroupID = -1

// Op enumerates logical operators stored in group expressions.
type Op uint8

// Group expression operators.
const (
	// OpScan is a leaf: one table instance with pushed-down local filter.
	OpScan Op = iota
	// OpJoin is a binary inner join between two child groups.
	OpJoin
	// OpGroupBy aggregates its child; AggMode distinguishes a block's final
	// aggregation, an eager partial aggregation, and the combining
	// aggregation placed above a partial aggregate.
	OpGroupBy
	// OpSelect filters its child (HAVING, or residual CSE compensation).
	OpSelect
	// OpRoot shapes a statement's final output: projections, ORDER BY, LIMIT.
	OpRoot
	// OpSeq is the batch root tying all statement roots together (the
	// paper's "dummy root operator").
	OpSeq
	// OpSpool materializes its child into a work table (top of every CSE).
	OpSpool
	// OpSpoolScan is a leaf that reads a candidate CSE's work table. It
	// appears in consumer substitutes generated during CSE optimization.
	OpSpoolScan
)

func (op Op) String() string {
	switch op {
	case OpScan:
		return "Scan"
	case OpJoin:
		return "Join"
	case OpGroupBy:
		return "GroupBy"
	case OpSelect:
		return "Select"
	case OpRoot:
		return "Root"
	case OpSeq:
		return "Seq"
	case OpSpool:
		return "Spool"
	case OpSpoolScan:
		return "SpoolScan"
	default:
		return fmt.Sprintf("Op(%d)", uint8(op))
	}
}

// AggMode distinguishes GroupBy roles.
type AggMode uint8

// GroupBy modes.
const (
	// AggFinal computes the block's aggregation directly over raw rows.
	AggFinal AggMode = iota
	// AggPartial is an eager pre-aggregation over a join subset.
	AggPartial
	// AggCombine re-aggregates partial results (above an AggPartial or
	// above a CSE spool scan).
	AggCombine
)

// Expr is one group expression: a logical operator referencing child groups.
type Expr struct {
	Op       Op
	Children []GroupID

	// OpScan payload.
	Rel logical.RelID

	// Filter: local filter for OpScan, join condition for OpJoin, filter
	// for OpSelect. nil means TRUE.
	Filter *scalar.Expr

	// OpGroupBy payload.
	GroupCols []scalar.ColID
	Aggs      []logical.AggDef
	AggMode   AggMode

	// OpRoot payload.
	Projections []logical.Projection
	OrderBy     []logical.OrderKey
	Limit       int

	// OpSpool / OpSpoolScan payload: the candidate CSE ID.
	SpoolID int
}

// Group is a set of logically equivalent expressions plus logical properties.
type Group struct {
	ID    GroupID
	Exprs []*Expr

	// Rels is the set of table-instance IDs below this group. Treat it as
	// immutable: Group values are copied freely and the copies alias it.
	Rels logical.RelSet

	// OutCols is the pruned, ordered output layout of the group.
	OutCols []scalar.ColID

	// Rows and RowSize are the cardinality estimate and average output row
	// width in bytes.
	Rows    float64
	RowSize float64

	// Sig is the table signature (§3); Sig.Valid is false for operators
	// with no signature (Figure 2's "all other cases").
	Sig Signature

	// SPJG normal form of the group, used by CSE construction: applicable
	// conjuncts (all predicates at or below this group), and grouping
	// structure when the group is an aggregation.
	Conjuncts []*scalar.Expr
	GroupCols []scalar.ColID
	Aggs      []logical.AggDef
	Grouped   bool

	// StmtIdx is the statement this group belongs to (subquery blocks share
	// their enclosing statement's index); -1 for the batch root.
	StmtIdx int

	// Parents lists groups whose expressions reference this group.
	Parents []GroupID
}

// Memo owns all groups of one optimization.
type Memo struct {
	Groups []*Group
	Md     *logical.Metadata

	// RootGroup is the batch root (OpSeq).
	RootGroup GroupID

	// StmtRoots are the per-statement OpRoot groups in batch order.
	StmtRoots []GroupID

	// SubqueryRoots maps metadata subquery index to the subquery's top group
	// (the group whose single output value feeds the scalar reference).
	SubqueryRoots []GroupID

	// sigIndex maps signature keys to the groups carrying that signature,
	// in creation order — the CSE manager's hash table (Step 1).
	sigIndex map[string][]GroupID
}

// NewMemo returns an empty memo over the given metadata.
func NewMemo(md *logical.Metadata) *Memo {
	return &Memo{Md: md, RootGroup: InvalidGroup, sigIndex: make(map[string][]GroupID)}
}

// NewGroup allocates a group and registers its signature (when valid) with
// the signature index.
func (m *Memo) NewGroup(g *Group) *Group {
	g.ID = GroupID(len(m.Groups))
	m.Groups = append(m.Groups, g)
	if g.Sig.Valid && !g.Sig.SelfJoin {
		key := g.Sig.Key()
		m.sigIndex[key] = append(m.sigIndex[key], g.ID)
	}
	return g
}

// Group returns the group with the given ID.
func (m *Memo) Group(id GroupID) *Group { return m.Groups[int(id)] }

// AddExpr appends an expression to group g and records parent links.
func (m *Memo) AddExpr(g *Group, e *Expr) {
	g.Exprs = append(g.Exprs, e)
	for _, c := range e.Children {
		child := m.Group(c)
		if len(child.Parents) == 0 || child.Parents[len(child.Parents)-1] != g.ID {
			child.Parents = append(child.Parents, g.ID)
		}
	}
}

// SignatureGroups returns the signature index: key → groups, for CSE
// detection. Callers must not mutate the returned map.
func (m *Memo) SignatureGroups() map[string][]GroupID { return m.sigIndex }

// Format renders the memo for debugging: one line per group.
func (m *Memo) Format() string {
	var sb strings.Builder
	for _, g := range m.Groups {
		fmt.Fprintf(&sb, "G%d: rows=%.0f sig=%s stmt=%d exprs=[", g.ID, g.Rows, g.Sig, g.StmtIdx)
		for i, e := range g.Exprs {
			if i > 0 {
				sb.WriteString(" | ")
			}
			sb.WriteString(e.Op.String())
			if len(e.Children) > 0 {
				sb.WriteByte('(')
				for j, c := range e.Children {
					if j > 0 {
						sb.WriteByte(',')
					}
					fmt.Fprintf(&sb, "G%d", c)
				}
				sb.WriteByte(')')
			}
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}

// DescendantClosure returns the set of groups reachable from id (including
// id itself) following expression child edges, as a bitmap keyed by GroupID.
func (m *Memo) DescendantClosure(id GroupID) map[GroupID]bool {
	out := make(map[GroupID]bool)
	var visit func(GroupID)
	visit = func(g GroupID) {
		if out[g] {
			return
		}
		out[g] = true
		for _, e := range m.Group(g).Exprs {
			for _, c := range e.Children {
				visit(c)
			}
		}
	}
	visit(id)
	return out
}
