package memo_test

import (
	"fmt"
	"testing"

	"repro/internal/logical"
	"repro/internal/memo"
	"repro/internal/parser"
	"repro/internal/scalar"
)

// topBlockFor rebuilds a logical block shaped like an existing ungrouped
// join group, over fresh table instances of the same tables.
func topBlockFor(t *testing.T, m *memo.Memo, g *memo.Group) *logical.Block {
	t.Helper()
	md := m.Md
	blk := &logical.Block{}
	// Fresh instances per table of the group.
	instByTable := make(map[string]*logical.RelInfo)
	for rid := 0; rid < md.NumRels(); rid++ {
		if !g.Rels.Contains(logical.RelID(rid)) {
			continue
		}
		old := md.Rel(logical.RelID(rid))
		fresh := md.AddInstance(old.Tab, old.Alias+"_cse")
		instByTable[old.Tab.Name] = fresh
		blk.Rels = append(blk.Rels, fresh.ID)
	}
	// Remap the group's conjuncts onto the fresh instances.
	remap := make(map[scalar.ColID]scalar.ColID)
	for rid := 0; rid < md.NumRels(); rid++ {
		if !g.Rels.Contains(logical.RelID(rid)) {
			continue
		}
		old := md.Rel(logical.RelID(rid))
		fresh := instByTable[old.Tab.Name]
		for ord := range old.Tab.Cols {
			remap[old.ColID(ord)] = fresh.ColID(ord)
		}
	}
	for _, c := range g.Conjuncts {
		blk.Conjuncts = append(blk.Conjuncts, c.Remap(remap))
	}
	for _, oc := range g.OutCols {
		if to, ok := remap[oc]; ok {
			blk.Projections = append(blk.Projections, logical.Projection{
				Expr: scalar.Col(to), Name: md.ColName(to),
			})
		}
	}
	return blk
}

// TestEagerAggregationCreatesPartialGroups checks the eager-aggregation rule
// of the builder: a grouped 3-table block gets a partial aggregation over
// the {orders, lineitem} subset (aggregate arguments live in lineitem), with
// the signature [T; {lineitem, orders}].
func TestEagerAggregationCreatesPartialGroups(t *testing.T) {
	cat := testCatalog(t)
	m := buildMemo(t, cat, `
select c_nationkey, sum(l_extendedprice) as s
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
group by c_nationkey`)

	var partial *memo.Group
	for _, g := range m.Groups {
		if g.Grouped && g.Sig.Valid && g.Sig.Key() == "T|lineitem,orders" {
			partial = g
		}
	}
	if partial == nil {
		t.Fatal("no partial aggregation group over {orders, lineitem}")
	}
	// Its grouping columns are the join column to customer (o_custkey).
	if len(partial.GroupCols) != 1 {
		t.Errorf("partial grouping columns = %v, want {o_custkey}", partial.GroupCols)
	}
	if got := m.Md.ColName(partial.GroupCols[0]); got != "orders.o_custkey" {
		t.Errorf("partial groups by %s, want orders.o_custkey", got)
	}
	// Partial aggregates: the sum plus the eager count column.
	if len(partial.Aggs) != 2 {
		t.Errorf("partial aggregates = %d, want sum + count(*)", len(partial.Aggs))
	}
}

// TestEagerAggregationGate: pre-aggregating customer⋈orders for an aggregate
// over lineitem would group by o_orderkey (a key) and reduce nothing, so the
// builder must not create it.
func TestEagerAggregationGate(t *testing.T) {
	cat := testCatalog(t)
	m := buildMemo(t, cat, `
select c_nationkey, sum(l_extendedprice) as s
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
group by c_nationkey`)
	for _, g := range m.Groups {
		if g.Grouped && g.Sig.Valid && g.Sig.Key() == "T|customer,orders" {
			t.Fatal("useless pre-aggregation over {customer, orders} was generated")
		}
	}
}

// TestMultiStageAggregation: with four tables, the partial over {C,O,L} must
// itself contain an expression combining the narrower partial over {O,L} —
// making the narrow group a memo descendant of the wide one (what Heuristic
// 4's containment test relies on).
func TestMultiStageAggregation(t *testing.T) {
	cat := testCatalog(t)
	m := buildMemo(t, cat, `
select n_regionkey, sum(l_extendedprice) as s
from customer, orders, lineitem, nation
where c_custkey = o_custkey and o_orderkey = l_orderkey and c_nationkey = n_nationkey
group by n_regionkey`)

	var wide, narrow *memo.Group
	for _, g := range m.Groups {
		if !g.Grouped || !g.Sig.Valid {
			continue
		}
		switch g.Sig.Key() {
		case "T|customer,lineitem,orders":
			wide = g
		case "T|lineitem,orders":
			narrow = g
		}
	}
	if wide == nil || narrow == nil {
		t.Fatal("expected partial aggregations over both {C,O,L} and {O,L}")
	}
	if len(wide.Exprs) < 2 {
		t.Fatalf("wide partial has %d expressions, want the direct one plus a multi-stage combine", len(wide.Exprs))
	}
	closure := m.DescendantClosure(wide.ID)
	if !closure[narrow.ID] {
		t.Error("narrow partial must be a descendant of the wide partial")
	}
}

// TestEagerCount: when the aggregate argument lies outside the subset (the
// paper's Q4: sum(p_availqty) over part⋈orders⋈lineitem), the partial over
// {orders, lineitem} carries only a count(*) column.
func TestEagerCount(t *testing.T) {
	cat := testCatalog(t)
	m := buildMemo(t, cat, `
select p_type, sum(p_availqty) as qty
from part, orders, lineitem
where p_partkey = l_partkey and o_orderkey = l_orderkey
group by p_type`)

	var partial *memo.Group
	for _, g := range m.Groups {
		if g.Grouped && g.Sig.Valid && g.Sig.Key() == "T|lineitem,orders" {
			partial = g
		}
	}
	if partial == nil {
		t.Fatal("eager-count partial over {orders, lineitem} missing")
	}
	if len(partial.Aggs) != 1 {
		t.Fatalf("partial aggs = %v, want just count(*)", partial.Aggs)
	}
	if partial.Aggs[0].Arg != nil {
		t.Error("the single partial aggregate must be count(*)")
	}
}

// TestPJoinGroupsHaveNoSignature: joins above a partial aggregation are not
// SPJG expressions (Figure 2 requires ungrouped join inputs).
func TestPJoinGroupsHaveNoSignature(t *testing.T) {
	cat := testCatalog(t)
	m := buildMemo(t, cat, `
select c_nationkey, sum(l_extendedprice) as s
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
group by c_nationkey`)

	for _, g := range m.Groups {
		for _, e := range g.Exprs {
			if e.Op != memo.OpJoin {
				continue
			}
			for _, c := range e.Children {
				if m.Group(c).Grouped && g.Sig.Valid {
					t.Errorf("G%d joins a grouped child but has signature %s", g.ID, g.Sig)
				}
			}
		}
	}
}

// TestCrossJoinFallback: a block with no join predicate still builds (as a
// cross product).
func TestCrossJoinFallback(t *testing.T) {
	cat := testCatalog(t)
	m := buildMemo(t, cat, "select r_name, n_name from region, nation where r_regionkey > 0")
	top := m.Group(m.Group(m.StmtRoots[0]).Exprs[0].Children[0])
	if top.Sig.Key() != "F|nation,region" {
		t.Errorf("cross join top signature = %s", top.Sig.Key())
	}
	if len(top.Exprs) == 0 {
		t.Error("cross join produced no expressions")
	}
}

// TestSelfJoinSignatureExcluded: self-joins collapse in the table set, so
// their groups are excluded from the signature index.
func TestSelfJoinSignatureExcluded(t *testing.T) {
	cat := testCatalog(t)
	m := buildMemo(t, cat, `
select a.c_name from customer a, customer b where a.c_custkey = b.c_custkey;
select a.c_name from customer a, customer b where a.c_custkey = b.c_custkey`)
	for key, groups := range m.SignatureGroups() {
		if key == "F|customer" && len(groups) > 0 {
			for _, gid := range groups {
				g := m.Group(gid)
				if g.Rels.Len() == 2 {
					t.Errorf("self-join group G%d registered under %s", gid, key)
				}
			}
		}
	}
}

// TestConnectedSubsetCount: a 3-table chain C–O–L yields exactly 5 connected
// subsets of size ≥ 2: {C,O}, {O,L}, {C,O,L} as groups (C,L not adjacent).
func TestConnectedSubsetCount(t *testing.T) {
	cat := testCatalog(t)
	m := buildMemo(t, cat, `
select c_name from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey`)
	joins := 0
	for _, g := range m.Groups {
		if g.Sig.Valid && !g.Sig.Grouped && len(g.Sig.Tables) >= 2 {
			joins++
		}
	}
	if joins != 3 {
		t.Errorf("connected multi-table subsets = %d, want 3 ({C,O},{O,L},{C,O,L})", joins)
	}
}

// TestMemoFormatSmoke exercises the debug renderer.
func TestMemoFormatSmoke(t *testing.T) {
	cat := testCatalog(t)
	m := buildMemo(t, cat, "select c_name from customer")
	if s := m.Format(); len(s) == 0 {
		t.Error("empty memo dump")
	}
}

// TestAddBlockRegistersSignatures: inserting an extra block after the
// initial build registers its groups' signatures with a negative statement
// index — the mechanism stacked-CSE round 2 depends on.
func TestAddBlockRegistersSignatures(t *testing.T) {
	cat := testCatalog(t)
	m := buildMemo(t, cat, `
select c_name from customer, orders where c_custkey = o_custkey`)
	before := len(m.SignatureGroups()["F|customer,orders"])
	if before != 1 {
		t.Fatalf("baseline registrations = %d", before)
	}

	// Insert a block shaped like the statement's own join (an extra
	// customer⋈orders over fresh instances).
	stmt := m.Group(m.StmtRoots[0])
	top := m.Group(stmt.Exprs[0].Children[0])
	blockLike := topBlockFor(t, m, top)
	gid, err := m.AddBlock(blockLike, -2)
	if err != nil {
		t.Fatal(err)
	}
	g := m.Group(gid)
	if g.StmtIdx != -2 {
		t.Errorf("inserted block statement index = %d", g.StmtIdx)
	}
	after := len(m.SignatureGroups()["F|customer,orders"])
	if after != before+1 {
		t.Errorf("signature registrations: %d then %d, want +1", before, after)
	}
}

// TestBuildLimits: the join-subset DP bounds block width, and the batch
// bounds total table instances.
func TestBuildLimits(t *testing.T) {
	cat := testCatalog(t)
	// 15 relations in one block exceeds the per-block DP bound.
	var sb []byte
	sb = append(sb, "select c0.c_custkey from "...)
	for i := 0; i < 15; i++ {
		if i > 0 {
			sb = append(sb, ", "...)
		}
		sb = append(sb, []byte(fmt.Sprintf("customer c%d", i))...)
	}
	sb = append(sb, " where "...)
	for i := 1; i < 15; i++ {
		if i > 1 {
			sb = append(sb, " and "...)
		}
		sb = append(sb, []byte(fmt.Sprintf("c0.c_custkey = c%d.c_custkey", i))...)
	}
	stmts, err := parser.Parse(string(sb))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := logical.BuildBatch(stmts, cat)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := memo.Build(batch); err == nil {
		t.Error("15-table block must exceed the DP bound")
	}

	// 65 instances across a batch used to exceed the old single-uint64
	// relation bitmap; the growable RelSet must take it (and far larger
	// coalesced batches) in stride.
	var many []parser.Statement
	q, _ := parser.Parse("select c_custkey from customer")
	for i := 0; i < 65; i++ {
		many = append(many, q[0])
	}
	batch2, err := logical.BuildBatch(many, cat)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := memo.Build(batch2); err != nil {
		t.Errorf("65 instances must build after the relation-bitmap lift: %v", err)
	}
}
