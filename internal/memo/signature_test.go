package memo

import (
	"reflect"
	"testing"
)

func TestScanSignature(t *testing.T) {
	s := scanSignature("Customer")
	if !s.Valid || s.Grouped || len(s.Tables) != 1 || s.Tables[0] != "customer" {
		t.Errorf("scan signature = %+v", s)
	}
	if s.Key() != "F|customer" {
		t.Errorf("key = %q", s.Key())
	}
}

func TestJoinSignatureRule(t *testing.T) {
	a := scanSignature("orders")
	b := scanSignature("lineitem")
	j := joinSignature(a, b)
	if !j.Valid || j.Grouped {
		t.Fatalf("join signature = %+v", j)
	}
	if !reflect.DeepEqual(j.Tables, []string{"lineitem", "orders"}) {
		t.Errorf("tables = %v (must be sorted)", j.Tables)
	}

	// Joining a grouped input yields no signature (Figure 2's join rule
	// requires G = F on both sides).
	g := groupBySignature(a)
	if got := joinSignature(g, b); got.Valid {
		t.Error("join over a grouped input must have no signature")
	}
	if got := joinSignature(b, g); got.Valid {
		t.Error("join over a grouped input must have no signature (right side)")
	}
	if got := joinSignature(Signature{}, b); got.Valid {
		t.Error("join over a signatureless input must have no signature")
	}
}

func TestJoinSignatureSelfJoin(t *testing.T) {
	a := scanSignature("customer")
	b := scanSignature("customer")
	j := joinSignature(a, b)
	if !j.Valid || !j.SelfJoin {
		t.Errorf("self-join must be flagged: %+v", j)
	}
	if len(j.Tables) != 1 {
		t.Errorf("table set must deduplicate: %v", j.Tables)
	}
	// Self-join taint propagates upward.
	c := joinSignature(j, scanSignature("orders"))
	if !c.SelfJoin {
		t.Error("self-join flag must propagate through further joins")
	}
}

func TestGroupBySignatureRule(t *testing.T) {
	j := joinSignature(scanSignature("orders"), scanSignature("lineitem"))
	g := groupBySignature(j)
	if !g.Valid || !g.Grouped {
		t.Fatalf("group-by signature = %+v", g)
	}
	if g.Key() != "T|lineitem,orders" {
		t.Errorf("key = %q", g.Key())
	}
	// Group-by over an already-grouped input: no signature (double
	// aggregation is not an SPJG expression).
	if got := groupBySignature(g); got.Valid {
		t.Error("γ(γ(e)) must have no signature")
	}
	if got := groupBySignature(Signature{}); got.Valid {
		t.Error("γ over a signatureless input must have no signature")
	}
}

func TestSignatureSubsetOf(t *testing.T) {
	ol := joinSignature(scanSignature("orders"), scanSignature("lineitem"))
	col := joinSignature(ol, scanSignature("customer"))
	if !ol.SubsetOf(col) {
		t.Error("{O,L} ⊆ {C,O,L}")
	}
	if col.SubsetOf(ol) {
		t.Error("{C,O,L} ⊄ {O,L}")
	}
	if !ol.SubsetOf(ol) {
		t.Error("a set is a subset of itself")
	}
}

func TestSignatureString(t *testing.T) {
	if got := (Signature{}).String(); got != "[-]" {
		t.Errorf("invalid signature renders %q", got)
	}
	g := groupBySignature(scanSignature("t"))
	if got := g.String(); got != "[T; {t}]" {
		t.Errorf("signature renders %q", got)
	}
}
