package memo_test

import (
	"bytes"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/logical"
	"repro/internal/memo"
	"repro/internal/parser"
	"repro/internal/qgen"
	"repro/internal/tpch"
)

var (
	fuzzCatOnce sync.Once
	fuzzCat     *catalog.Catalog
)

func fuzzCatalog() *catalog.Catalog {
	fuzzCatOnce.Do(func() {
		fuzzCat = catalog.New()
		for _, t := range tpch.Schemas() {
			if err := fuzzCat.Add(t); err != nil {
				panic(err)
			}
		}
	})
	return fuzzCat
}

// FuzzSignatures drives the query generator from the fuzzer's byte stream,
// builds the memo twice for each batch, and asserts the signature machinery
// (§3) is deterministic and well-formed: identical SQL yields identical
// signature indexes, every indexed signature's table set is sorted,
// lower-case and duplicate-free, and building never panics.
func FuzzSignatures(f *testing.F) {
	f.Add([]byte("signature seed"))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Add([]byte("covering subexpressions share table signatures"))
	f.Fuzz(func(t *testing.T, data []byte) {
		b := qgen.FromBytes(qgen.Config{Seed: 1}, data)
		sql := b.SQL()
		stmts, err := parser.Parse(sql)
		if err != nil {
			t.Fatalf("generated SQL must parse: %v\n%s", err, sql)
		}
		sig1 := signatureIndex(t, stmts, sql)
		sig2 := signatureIndex(t, stmts, sql)
		if sig1 != sig2 {
			t.Fatalf("signature index not deterministic:\n%s\n--- vs ---\n%s\nSQL:\n%s", sig1, sig2, sql)
		}
	})
}

// signatureIndex builds the memo and renders its signature index in
// canonical order, validating signature well-formedness along the way.
func signatureIndex(t *testing.T, stmts []parser.Statement, sql string) string {
	t.Helper()
	batch, err := logical.BuildBatch(stmts, fuzzCatalog())
	if err != nil {
		t.Fatalf("build: %v\n%s", err, sql)
	}
	m, err := memo.Build(batch)
	if err != nil {
		t.Fatalf("memo: %v\n%s", err, sql)
	}
	for _, g := range m.Groups {
		if !g.Sig.Valid {
			continue
		}
		tables := g.Sig.Tables
		for i, tb := range tables {
			if tb != strings.ToLower(tb) {
				t.Fatalf("G%d signature table %q not lower-case", g.ID, tb)
			}
			if i > 0 && tables[i-1] >= tb {
				t.Fatalf("G%d signature tables not sorted/deduped: %v", g.ID, tables)
			}
		}
	}
	var keys []string
	for k := range m.SignatureGroups() {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		gids := m.SignatureGroups()[k]
		ints := make([]int, len(gids))
		for i, id := range gids {
			ints[i] = int(id)
		}
		sort.Ints(ints)
		sb.WriteString(k)
		sb.WriteString(" ->")
		for _, id := range ints {
			sb.WriteString(" ")
			sb.WriteString(strconv.Itoa(id))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
