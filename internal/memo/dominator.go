package memo

import "math/bits"

// Dominators computes, for every group reachable from root, the set of
// groups that appear on every root-to-group path in the memo DAG (edges are
// expression child links plus, implicitly, the root).
//
// The paper charges a CSE's initial cost at the least common ancestor of its
// consumers (§5.2). In an operator tree the LCA lies on every path to every
// consumer; the DAG generalization with the same guarantee is the lowest
// common *dominator*: any plan that reaches a consumer must pass through it,
// so the initial cost is charged exactly once and as early as possible.
type Dominators struct {
	m     *Memo
	root  GroupID
	order []GroupID            // reverse post-order from root
	dom   map[GroupID][]uint64 // bitset over group IDs
	depth map[GroupID]int
}

// NewDominators computes dominator sets from the given root.
func NewDominators(m *Memo, root GroupID) *Dominators {
	d := &Dominators{
		m:     m,
		root:  root,
		dom:   make(map[GroupID][]uint64),
		depth: make(map[GroupID]int),
	}
	d.computeOrder()
	d.solve()
	return d
}

func (d *Dominators) computeOrder() {
	visited := make(map[GroupID]bool)
	var post []GroupID
	var visit func(GroupID, int)
	visit = func(g GroupID, depth int) {
		if dep, ok := d.depth[g]; !ok || depth > dep {
			d.depth[g] = depth
		}
		if visited[g] {
			return
		}
		visited[g] = true
		for _, e := range d.m.Group(g).Exprs {
			for _, c := range e.Children {
				visit(c, depth+1)
			}
		}
		post = append(post, g)
	}
	visit(d.root, 0)
	for i := len(post) - 1; i >= 0; i-- {
		d.order = append(d.order, post[i])
	}
}

func (d *Dominators) words() int { return (len(d.m.Groups) + 63) / 64 }

func (d *Dominators) solve() {
	nw := d.words()
	full := make([]uint64, nw)
	for i := range full {
		full[i] = ^uint64(0)
	}
	reachable := make(map[GroupID]bool, len(d.order))
	for _, g := range d.order {
		reachable[g] = true
		set := make([]uint64, nw)
		copy(set, full)
		d.dom[g] = set
	}
	rootSet := d.dom[d.root]
	for i := range rootSet {
		rootSet[i] = 0
	}
	setBit(rootSet, int(d.root))

	// Predecessors within the reachable subgraph.
	preds := make(map[GroupID][]GroupID)
	for _, g := range d.order {
		for _, e := range d.m.Group(g).Exprs {
			for _, c := range e.Children {
				if reachable[c] {
					preds[c] = append(preds[c], g)
				}
			}
		}
	}

	changed := true
	for changed {
		changed = false
		for _, g := range d.order {
			if g == d.root {
				continue
			}
			nw := d.words()
			tmp := make([]uint64, nw)
			copy(tmp, full)
			for _, p := range preds[g] {
				pd := d.dom[p]
				for i := range tmp {
					tmp[i] &= pd[i]
				}
			}
			setBit(tmp, int(g))
			if !equalBits(tmp, d.dom[g]) {
				d.dom[g] = tmp
				changed = true
			}
		}
	}
}

// CommonDominator returns the deepest group that dominates every target:
// the generalized least common ancestor used as the CSE charge point.
func (d *Dominators) CommonDominator(targets []GroupID) GroupID {
	if len(targets) == 0 {
		return d.root
	}
	nw := d.words()
	inter := make([]uint64, nw)
	first, ok := d.dom[targets[0]]
	if !ok {
		return d.root
	}
	copy(inter, first)
	for _, t := range targets[1:] {
		td, ok := d.dom[t]
		if !ok {
			return d.root
		}
		for i := range inter {
			inter[i] &= td[i]
		}
	}
	best := d.root
	bestDepth := -1
	for w := 0; w < nw; w++ {
		word := inter[w]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			g := GroupID(w*64 + b)
			if dep, ok := d.depth[g]; ok && dep > bestDepth {
				bestDepth = dep
				best = g
			}
		}
	}
	return best
}

// Dominates reports whether a dominates b (a is on every root-to-b path).
func (d *Dominators) Dominates(a, b GroupID) bool {
	set, ok := d.dom[b]
	if !ok {
		return false
	}
	return getBit(set, int(a))
}

func setBit(s []uint64, i int)      { s[i/64] |= 1 << (uint(i) % 64) }
func getBit(s []uint64, i int) bool { return s[i/64]&(1<<(uint(i)%64)) != 0 }

func equalBits(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
