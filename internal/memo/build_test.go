package memo_test

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/logical"
	"repro/internal/memo"
	"repro/internal/parser"
	"repro/internal/storage"
	"repro/internal/tpch"
)

// testCatalog builds a tiny TPC-H database for memo tests.
func testCatalog(t testing.TB) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	for _, tab := range tpch.Schemas() {
		if err := cat.Add(tab); err != nil {
			t.Fatal(err)
		}
	}
	st := storage.NewStore()
	if err := tpch.Generate(tpch.Config{ScaleFactor: 0.002, Seed: 7}, cat, st); err != nil {
		t.Fatal(err)
	}
	return cat
}

func buildMemo(t testing.TB, cat *catalog.Catalog, sql string) *memo.Memo {
	t.Helper()
	stmts, err := parser.Parse(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	batch, err := logical.BuildBatch(stmts, cat)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	m, err := memo.Build(batch)
	if err != nil {
		t.Fatalf("memo: %v", err)
	}
	return m
}

// Example 1's batch (reconstructed per §6.1).
const example1SQL = `
select c_nationkey, c_mktsegment, sum(l_extendedprice) as le, sum(l_quantity) as lq
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and o_orderdate < '1996-07-01' and c_nationkey > 0 and c_nationkey < 20
group by c_nationkey, c_mktsegment;

select c_nationkey, sum(l_extendedprice) as le, sum(l_quantity) as lq
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and o_orderdate < '1996-07-01' and c_nationkey > 5 and c_nationkey < 25
group by c_nationkey;

select n_regionkey, sum(l_extendedprice) as le, sum(l_quantity) as lq
from customer, orders, lineitem, nation
where c_custkey = o_custkey and o_orderkey = l_orderkey and c_nationkey = n_nationkey
  and o_orderdate < '1996-07-01' and c_nationkey > 2 and c_nationkey < 24
group by n_regionkey;
`

func TestBuildExample1Signatures(t *testing.T) {
	cat := testCatalog(t)
	m := buildMemo(t, cat, example1SQL)

	if len(m.StmtRoots) != 3 {
		t.Fatalf("expected 3 statement roots, got %d", len(m.StmtRoots))
	}

	// Count groups per signature key with >= 2 groups — these are the
	// detection hits of Step 2. Expect exactly the five signatures backing
	// Figure 6's candidates E1..E5.
	counts := make(map[string]int)
	for key, groups := range m.SignatureGroups() {
		if len(groups) >= 2 {
			counts[key] = len(groups)
		}
	}
	want := map[string]int{
		"F|customer,orders":          3, // E1
		"F|lineitem,orders":          3, // E2
		"F|customer,lineitem,orders": 3, // E3
		"T|lineitem,orders":          3, // E4 (eager partial aggregations)
		"T|customer,lineitem,orders": 3, // E5 (two finals + Q3's partial)
	}
	for key, n := range want {
		if counts[key] != n {
			t.Errorf("signature %s: got %d groups, want %d", key, counts[key], n)
		}
	}
	// Single-table scans are shared across statements too, but those are
	// not multi-group keys because every statement instantiates its own
	// instance of the table... they *are* separate groups with the same
	// signature key, so they appear here. Filter: keys we did not expect
	// must be single-table.
	for key, n := range counts {
		if _, ok := want[key]; ok {
			continue
		}
		if !singleTableKey(key) {
			t.Errorf("unexpected multi-group signature %s (%d groups)", key, n)
		}
	}
}

func singleTableKey(key string) bool {
	// key format: "F|a,b,c" or "T|a".
	for i := 2; i < len(key); i++ {
		if key[i] == ',' {
			return false
		}
	}
	return true
}

func TestBuildNestedSubquery(t *testing.T) {
	cat := testCatalog(t)
	m := buildMemo(t, cat, `
select c_nationkey, n_name, sum(l_discount) as totaldisc
from customer, orders, lineitem, nation
where c_custkey = o_custkey and o_orderkey = l_orderkey and c_nationkey = n_nationkey
group by c_nationkey, n_name
having sum(l_discount) > (
  select sum(l_discount) / 25
  from customer, orders, lineitem
  where c_custkey = o_custkey and o_orderkey = l_orderkey)
order by totaldisc desc`)

	if len(m.SubqueryRoots) != 1 || m.SubqueryRoots[0] == memo.InvalidGroup {
		t.Fatalf("expected one built subquery root, got %v", m.SubqueryRoots)
	}
	// The main block's partial aggregation over {C,O,L} and the subquery's
	// final aggregation share signature [T; {customer,lineitem,orders}].
	groups := m.SignatureGroups()["T|customer,lineitem,orders"]
	if len(groups) < 2 {
		t.Fatalf("expected >=2 groups with [T; {C,L,O}] signature, got %d", len(groups))
	}
	// The statement root must include the subquery root as a child so the
	// subquery is part of the statement's DAG.
	root := m.Group(m.StmtRoots[0])
	rootExpr := root.Exprs[0]
	foundSq := false
	for _, c := range rootExpr.Children[1:] {
		if c == m.SubqueryRoots[0] {
			foundSq = true
		}
	}
	if !foundSq {
		t.Error("statement root does not reference the subquery root")
	}
}

func TestBuildSelectStarNoGroup(t *testing.T) {
	cat := testCatalog(t)
	m := buildMemo(t, cat, `select * from customer, orders where c_custkey = o_custkey`)
	top := m.Group(m.StmtRoots[0])
	if top.Exprs[0].Op != memo.OpRoot {
		t.Fatalf("statement root op = %s, want Root", top.Exprs[0].Op)
	}
	joinG := m.Group(top.Exprs[0].Children[0])
	if joinG.Sig.Key() != "F|customer,orders" {
		t.Errorf("top group signature = %s", joinG.Sig.Key())
	}
	if joinG.Grouped {
		t.Error("ungrouped block marked grouped")
	}
	// select * requires all columns.
	wantCols := 8 + 8 // customer + orders column counts
	if len(joinG.OutCols) != wantCols {
		t.Errorf("output columns = %d, want %d", len(joinG.OutCols), wantCols)
	}
}

func TestSignatureRules(t *testing.T) {
	cat := testCatalog(t)
	// A grouped single-table query gets [T; {t}]; HAVING's select above the
	// group-by has no signature.
	m := buildMemo(t, cat, `
select c_nationkey, count(*) as n from customer group by c_nationkey having count(*) > 1`)
	root := m.Group(m.StmtRoots[0])
	sel := m.Group(root.Exprs[0].Children[0])
	if sel.Exprs[0].Op != memo.OpSelect {
		t.Fatalf("expected having Select, got %s", sel.Exprs[0].Op)
	}
	if sel.Sig.Valid {
		t.Error("Select above GroupBy must have no signature")
	}
	gb := m.Group(sel.Exprs[0].Children[0])
	if got := gb.Sig.Key(); got != "T|customer" {
		t.Errorf("group-by signature = %s, want T|customer", got)
	}
	scan := m.Group(gb.Exprs[0].Children[0])
	if got := scan.Sig.Key(); got != "F|customer" {
		t.Errorf("scan signature = %s, want F|customer", got)
	}
}
