package memo

import (
	"fmt"
	"math/bits"

	"repro/internal/logical"
	"repro/internal/scalar"
	"repro/internal/sqltypes"
)

// maxBlockRels bounds the join-subset DP per block (2^n subsets).
const maxBlockRels = 14

// Build constructs the memo for a bound batch: per-statement join-subset
// exploration, eager-aggregation alternatives, statement roots, and the
// batch root. Signatures are registered as groups are created (Step 1 of
// the paper's architecture).
func Build(batch *logical.Batch) (*Memo, error) {
	md := batch.Metadata
	m := NewMemo(md)
	b := &builder{m: m, est: &Estimator{Md: md}}
	m.SubqueryRoots = make([]GroupID, md.NumSubqueries())
	for i := range m.SubqueryRoots {
		m.SubqueryRoots[i] = InvalidGroup
	}

	for i, st := range batch.Statements {
		rootID, err := b.buildStatement(st.Block, i)
		if err != nil {
			return nil, fmt.Errorf("statement %d: %w", i+1, err)
		}
		m.StmtRoots = append(m.StmtRoots, rootID)
	}

	// Batch root: the dummy operator tying the statements together.
	seq := m.NewGroup(&Group{StmtIdx: -1})
	var rows float64
	for _, r := range m.StmtRoots {
		rows += m.Group(r).Rows
	}
	seq.Rows = rows
	m.AddExpr(seq, &Expr{Op: OpSeq, Children: append([]GroupID(nil), m.StmtRoots...)})
	m.RootGroup = seq.ID
	return m, nil
}

type builder struct {
	m   *Memo
	est *Estimator
}

// AddBlock inserts an additional SPJG block into an already-built memo and
// returns its top group. The CSE manager uses this to materialize candidate
// covering expressions as memo groups after normal optimization; their
// subset groups register signatures too, which is what makes stacked CSEs
// (§5.5) detectable. The stmtIdx convention: candidate expressions pass a
// negative index encoding the candidate (-2 - candidateID).
func (m *Memo) AddBlock(blk *logical.Block, stmtIdx int) (GroupID, error) {
	b := &builder{m: m, est: &Estimator{Md: m.Md}}
	top, _, err := b.buildBlock(blk, stmtIdx)
	return top, err
}

// buildStatement builds a top-level statement: its block plus an OpRoot
// group carrying projections, ORDER BY, and LIMIT. Scalar subqueries the
// statement references become extra root children so they are part of the
// statement's group DAG.
func (b *builder) buildStatement(blk *logical.Block, stmtIdx int) (GroupID, error) {
	top, sqs, err := b.buildBlock(blk, stmtIdx)
	if err != nil {
		return InvalidGroup, err
	}
	root := b.m.NewGroup(&Group{
		Rels:    b.m.Group(top).Rels,
		Rows:    b.m.Group(top).Rows,
		StmtIdx: stmtIdx,
	})
	children := append([]GroupID{top}, sqs...)
	b.m.AddExpr(root, &Expr{
		Op:          OpRoot,
		Children:    children,
		Projections: blk.Projections,
		OrderBy:     blk.OrderBy,
		Limit:       blk.Limit,
	})
	return root.ID, nil
}

// buildBlock builds the group DAG for one SPJG block and returns its top
// group plus the root groups of every scalar subquery it references, in
// dependency order (a subquery's own subqueries first).
func (b *builder) buildBlock(blk *logical.Block, stmtIdx int) (GroupID, []GroupID, error) {
	// Build referenced subqueries first.
	var sqs []GroupID
	seen := make(map[int]bool)
	var collect func(e *scalar.Expr) error
	collect = func(e *scalar.Expr) error {
		if e == nil {
			return nil
		}
		if e.Op == scalar.OpSubquery {
			idx := int(e.Col)
			if seen[idx] {
				return nil
			}
			seen[idx] = true
			if g := b.m.SubqueryRoots[idx]; g != InvalidGroup {
				sqs = append(sqs, g)
				return nil
			}
			sub := b.m.Md.Subquery(idx)
			top, inner, err := b.buildBlock(sub, stmtIdx)
			if err != nil {
				return err
			}
			sqs = append(sqs, inner...)
			sqs = append(sqs, top)
			b.m.SubqueryRoots[idx] = top
			return nil
		}
		for _, a := range e.Args {
			if err := collect(a); err != nil {
				return err
			}
		}
		return nil
	}
	for _, c := range blk.Conjuncts {
		if err := collect(c); err != nil {
			return InvalidGroup, nil, err
		}
	}
	if err := collect(blk.Having); err != nil {
		return InvalidGroup, nil, err
	}

	bc, err := newBlockCtx(b, blk, stmtIdx)
	if err != nil {
		return InvalidGroup, nil, err
	}

	// Leaf scan groups and join-subset DP.
	if err := bc.buildJoinGroups(); err != nil {
		return InvalidGroup, nil, err
	}
	top := bc.groups[bc.full]

	// Aggregation.
	if blk.HasGroup {
		top = bc.buildAggregation(top)
	}

	// HAVING.
	if blk.Having != nil {
		topG := b.m.Group(top)
		sel := b.m.NewGroup(&Group{
			Rels:      topG.Rels,
			OutCols:   topG.OutCols,
			Rows:      maxf(topG.Rows*b.est.Selectivity(blk.Having), 1),
			RowSize:   topG.RowSize,
			Conjuncts: topG.Conjuncts,
			GroupCols: topG.GroupCols,
			Aggs:      topG.Aggs,
			Grouped:   topG.Grouped,
			StmtIdx:   stmtIdx,
		})
		b.m.AddExpr(sel, &Expr{Op: OpSelect, Children: []GroupID{top}, Filter: blk.Having})
		top = sel.ID
	}
	return top, sqs, nil
}

// blockCtx holds per-block DP state. Relations are numbered locally
// (0..n-1); masks are bitmaps over local indices.
type blockCtx struct {
	b       *builder
	blk     *logical.Block
	stmtIdx int

	rels    []logical.RelID
	relCols []scalar.ColSet
	needed  scalar.ColSet

	conj     []*scalar.Expr
	conjHome []uint64 // local rel mask each conjunct touches

	adj  [][]bool
	full uint64

	groups  map[uint64]GroupID
	appl    map[uint64][]int
	partial map[uint64]*partialInfo // eager partial-aggregation groups by subset
}

// partialInfo describes an eager partial-aggregation group over a subset:
// which block aggregates it pre-computes (outs[i] = 0 when aggregate i's
// argument lies outside the subset) and the count(*) column used by the
// eager-count transformation to scale outside aggregates after the join.
type partialInfo struct {
	group *Group
	outs  []scalar.ColID // per block-aggregate index; 0 = absent
	cnt   scalar.ColID
}

// aggTarget describes the aggregation level a combine expression must
// produce: the block's final aggregation (cnt = 0) or another partial.
type aggTarget struct {
	mask      uint64
	groupCols []scalar.ColID
	outs      []scalar.ColID // per block-aggregate index; 0 = absent
	cnt       scalar.ColID   // 0 when the target needs no count column
}

// eagerAggMaxRatio gates eager aggregation: a partial aggregation is only
// generated when it reduces its input by at least this factor. This mirrors
// production optimizers (pre-aggregating on a near-key wastes work) and
// keeps the candidate sets aligned with the paper's Figure 6.
const eagerAggMaxRatio = 0.5

func newBlockCtx(b *builder, blk *logical.Block, stmtIdx int) (*blockCtx, error) {
	n := len(blk.Rels)
	if n == 0 {
		return nil, fmt.Errorf("block has no relations")
	}
	if n > maxBlockRels {
		return nil, fmt.Errorf("block joins %d tables; at most %d supported", n, maxBlockRels)
	}
	bc := &blockCtx{
		b:       b,
		blk:     blk,
		stmtIdx: stmtIdx,
		rels:    blk.Rels,
		needed:  blk.ReferencedCols(),
		full:    (uint64(1) << uint(n)) - 1,
		groups:  make(map[uint64]GroupID),
		appl:    make(map[uint64][]int),
		partial: make(map[uint64]*partialInfo),
	}
	bc.relCols = make([]scalar.ColSet, n)
	for i, r := range blk.Rels {
		bc.relCols[i] = b.m.Md.Rel(r).Cols()
	}

	// Conjunct home masks.
	bc.conj = blk.Conjuncts
	bc.conjHome = make([]uint64, len(bc.conj))
	for ci, c := range bc.conj {
		cols := c.Cols()
		var home uint64
		for i := range bc.relCols {
			if cols.Intersects(bc.relCols[i]) {
				home |= 1 << uint(i)
			}
		}
		bc.conjHome[ci] = home
	}

	// Adjacency from conjuncts spanning two or more relations.
	bc.adj = make([][]bool, n)
	for i := range bc.adj {
		bc.adj[i] = make([]bool, n)
	}
	for _, home := range bc.conjHome {
		members := maskMembers(home)
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				bc.adj[members[i]][members[j]] = true
				bc.adj[members[j]][members[i]] = true
			}
		}
	}
	// If the join graph is disconnected (cross joins), chain the components
	// so the DP can still cover the full set.
	comps := bc.components(bc.full)
	for i := 1; i < len(comps); i++ {
		a := bits.TrailingZeros64(comps[i-1])
		c := bits.TrailingZeros64(comps[i])
		bc.adj[a][c] = true
		bc.adj[c][a] = true
	}
	return bc, nil
}

func maskMembers(mask uint64) []int {
	var out []int
	for mask != 0 {
		i := bits.TrailingZeros64(mask)
		out = append(out, i)
		mask &= mask - 1
	}
	return out
}

// components returns the connected components of the induced subgraph.
func (bc *blockCtx) components(mask uint64) []uint64 {
	var comps []uint64
	rest := mask
	for rest != 0 {
		start := bits.TrailingZeros64(rest)
		comp := uint64(1) << uint(start)
		frontier := []int{start}
		for len(frontier) > 0 {
			v := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			for u := 0; u < len(bc.adj); u++ {
				if bc.adj[v][u] && mask&(1<<uint(u)) != 0 && comp&(1<<uint(u)) == 0 {
					comp |= 1 << uint(u)
					frontier = append(frontier, u)
				}
			}
		}
		comps = append(comps, comp)
		rest &^= comp
	}
	return comps
}

func (bc *blockCtx) connected(mask uint64) bool {
	return len(bc.components(mask)) == 1
}

// applicable returns the indices of conjuncts fully evaluable at mask.
// Conjuncts touching no relation (constants, pure subquery comparisons) are
// applied at the full set.
func (bc *blockCtx) applicable(mask uint64) []int {
	if cached, ok := bc.appl[mask]; ok {
		return cached
	}
	var out []int
	for ci, home := range bc.conjHome {
		if home == 0 {
			if mask == bc.full {
				out = append(out, ci)
			}
			continue
		}
		if home&^mask == 0 {
			out = append(out, ci)
		}
	}
	bc.appl[mask] = out
	return out
}

func (bc *blockCtx) conjuncts(idx []int) []*scalar.Expr {
	out := make([]*scalar.Expr, len(idx))
	for i, ci := range idx {
		out[i] = bc.conj[ci]
	}
	return out
}

// relsOf maps a local mask to metadata relation IDs.
func (bc *blockCtx) relsOf(mask uint64) []logical.RelID {
	var out []logical.RelID
	for _, i := range maskMembers(mask) {
		out = append(out, bc.rels[i])
	}
	return out
}

// relSetOf maps a local mask to the batch-wide instance set.
func (bc *blockCtx) relSetOf(mask uint64) logical.RelSet {
	var s logical.RelSet
	for _, r := range bc.relsOf(mask) {
		s.Add(r)
	}
	return s
}

// outColsOf returns the pruned output layout for a join subset.
func (bc *blockCtx) outColsOf(mask uint64) []scalar.ColID {
	var s scalar.ColSet
	for _, i := range maskMembers(mask) {
		s.UnionWith(bc.relCols[i].Intersection(bc.needed))
	}
	out := s.Ordered()
	if len(out) == 0 {
		// Keep at least one column so the row has a shape.
		first := maskMembers(mask)[0]
		out = []scalar.ColID{bc.relCols[first].Ordered()[0]}
	}
	return out
}

// signatureOf computes the table signature of the join subset directly from
// the instance table names (equivalent to folding Figure 2's join rule).
func (bc *blockCtx) signatureOf(mask uint64, grouped bool) Signature {
	var names []string
	seen := make(map[string]bool)
	selfJoin := false
	for _, r := range bc.relsOf(mask) {
		name := bc.b.m.Md.Rel(r).Tab.Name
		lower := lowerName(name)
		if seen[lower] {
			selfJoin = true
			continue
		}
		seen[lower] = true
		names = append(names, lower)
	}
	sortLower(names)
	return Signature{Valid: true, Grouped: grouped, Tables: names, SelfJoin: selfJoin}
}

func lowerName(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}

// buildJoinGroups creates the scan groups and all connected join-subset
// groups with their alternative join expressions.
func (bc *blockCtx) buildJoinGroups() error {
	m := bc.b.m
	est := bc.b.est
	n := len(bc.rels)

	// Scans.
	for i := 0; i < n; i++ {
		mask := uint64(1) << uint(i)
		applIdx := bc.applicable(mask)
		filter := scalar.And(bc.conjuncts(applIdx)...)
		rows := est.BaseRows(bc.rels[i]) * est.Selectivity(filter)
		if rows < 1 {
			rows = 1
		}
		out := bc.outColsOf(mask)
		g := m.NewGroup(&Group{
			Rels:      bc.relSetOf(mask),
			OutCols:   out,
			Rows:      rows,
			RowSize:   est.RowWidth(out),
			Sig:       bc.signatureOf(mask, false),
			Conjuncts: bc.conjuncts(applIdx),
			StmtIdx:   bc.stmtIdx,
		})
		var f *scalar.Expr
		if !scalar.IsTrue(filter) {
			f = filter
		}
		m.AddExpr(g, &Expr{Op: OpScan, Rel: bc.rels[i], Filter: f})
		bc.groups[mask] = g.ID
	}
	if n == 1 {
		return nil
	}

	// Subsets by increasing size.
	for size := 2; size <= n; size++ {
		for mask := uint64(1); mask <= bc.full; mask++ {
			if bits.OnesCount64(mask) != size || !bc.connected(mask) {
				continue
			}
			applIdx := bc.applicable(mask)
			out := bc.outColsOf(mask)
			g := m.NewGroup(&Group{
				Rels:      bc.relSetOf(mask),
				OutCols:   out,
				Rows:      est.JoinRows(bc.relsOf(mask), bc.conjuncts(applIdx)),
				RowSize:   est.RowWidth(out),
				Sig:       bc.signatureOf(mask, false),
				Conjuncts: bc.conjuncts(applIdx),
				StmtIdx:   bc.stmtIdx,
			})
			bc.groups[mask] = g.ID
			if err := bc.addJoinExprs(g, mask, applIdx, true); err != nil {
				return err
			}
			if len(g.Exprs) == 0 {
				// No edged partition: allow cross products as a fallback.
				if err := bc.addJoinExprs(g, mask, applIdx, false); err != nil {
					return err
				}
			}
			if len(g.Exprs) == 0 {
				return fmt.Errorf("no join expression for subset %b", mask)
			}
		}
	}
	return nil
}

// addJoinExprs enumerates partitions of mask into two connected halves. When
// requireCond is true, partitions with no connecting conjunct (pure cross
// products) are skipped.
func (bc *blockCtx) addJoinExprs(g *Group, mask uint64, applIdx []int, requireCond bool) error {
	m := bc.b.m
	low := uint64(1) << uint(bits.TrailingZeros64(mask))
	for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
		if sub&low == 0 {
			// Canonical orientation: the half containing the lowest bit is
			// the left child, so each partition is enumerated once.
			continue
		}
		rest := mask &^ sub
		leftID, okL := bc.groups[sub]
		rightID, okR := bc.groups[rest]
		if !okL || !okR {
			continue // a half is not connected
		}
		condIdx := diffIdx(applIdx, bc.applicable(sub), bc.applicable(rest))
		if requireCond && len(condIdx) == 0 {
			continue
		}
		var cond *scalar.Expr
		if len(condIdx) > 0 {
			cond = scalar.And(bc.conjuncts(condIdx)...)
		}
		m.AddExpr(g, &Expr{Op: OpJoin, Children: []GroupID{leftID, rightID}, Filter: cond})
	}
	return nil
}

// diffIdx returns all − a − b (indices, each slice sorted ascending).
func diffIdx(all, a, b []int) []int {
	drop := make(map[int]bool, len(a)+len(b))
	for _, i := range a {
		drop[i] = true
	}
	for _, i := range b {
		drop[i] = true
	}
	var out []int
	for _, i := range all {
		if !drop[i] {
			out = append(out, i)
		}
	}
	return out
}

// buildAggregation creates the block's final aggregation group, including
// eager-aggregation alternatives: for each connected proper subset S_agg
// (size ≥ 2) covering the aggregate arguments, a partial-aggregation group
// γ_partial(S_agg) is created, joined with the remaining relations, and
// re-aggregated. The partial groups carry [T; tables] signatures and are the
// grouped CSE consumers of §6 (the paper's E4/E5 pattern).
func (bc *blockCtx) buildAggregation(joinTop GroupID) GroupID {
	m := bc.b.m
	est := bc.b.est
	blk := bc.blk
	topG := m.Group(joinTop)

	outCols := append([]scalar.ColID(nil), blk.GroupCols...)
	for _, a := range blk.Aggs {
		outCols = append(outCols, a.Out)
	}
	outCols = scalar.SortColIDs(outCols)

	final := m.NewGroup(&Group{
		Rels:      topG.Rels,
		OutCols:   outCols,
		Rows:      est.GroupRows(topG.Rows, blk.GroupCols),
		RowSize:   est.RowWidth(outCols),
		Sig:       bc.signatureOf(bc.full, true),
		Conjuncts: topG.Conjuncts,
		GroupCols: blk.GroupCols,
		Aggs:      blk.Aggs,
		Grouped:   true,
		StmtIdx:   bc.stmtIdx,
	})
	m.AddExpr(final, &Expr{
		Op:        OpGroupBy,
		Children:  []GroupID{joinTop},
		GroupCols: blk.GroupCols,
		Aggs:      blk.Aggs,
		AggMode:   AggFinal,
	})

	// Eager-aggregation alternatives, recursively: the final aggregation can
	// combine a partial aggregation over any connected proper subset, and a
	// partial aggregation can itself combine a narrower one (multi-stage
	// aggregation). The recursion makes narrow partial-aggregate groups
	// memo descendants of wider ones, which the containment heuristic
	// (§4.3.4) relies on. Aggregates whose arguments lie outside the subset
	// use the eager-count transformation: the partial aggregation carries a
	// count(*) column and the combining aggregation scales by it.
	finalTarget := aggTarget{mask: bc.full, groupCols: blk.GroupCols}
	finalTarget.outs = make([]scalar.ColID, len(blk.Aggs))
	for i, a := range blk.Aggs {
		finalTarget.outs[i] = a.Out
	}
	for sAgg := uint64(1); sAgg < bc.full; sAgg++ {
		if !bc.validAggSubset(sAgg) {
			continue
		}
		pi := bc.partialGroupFor(sAgg)
		bc.addCombineExpr(final, finalTarget, pi)
	}
	return final.ID
}

// validAggSubset reports whether sAgg can host an eager partial aggregation:
// a connected proper subset of two or more relations, with each aggregate's
// argument either fully inside or fully outside the subset (outside requires
// an eager-count-compatible aggregate), achieving a real reduction.
func (bc *blockCtx) validAggSubset(sAgg uint64) bool {
	if bits.OnesCount64(sAgg) < 2 {
		return false
	}
	if _, ok := bc.groups[sAgg]; !ok {
		return false
	}
	var sAggCols scalar.ColSet
	for _, i := range maskMembers(sAgg) {
		sAggCols.UnionWith(bc.relCols[i])
	}
	for _, a := range bc.blk.Aggs {
		if a.Arg == nil {
			continue // count(*) is always decomposable
		}
		cols := a.Arg.Cols()
		inside := cols.SubsetOf(sAggCols)
		outside := !cols.Intersects(sAggCols)
		switch {
		case inside:
		case outside:
			// Eager count handles sum/min/max/count(*); count(expr) with
			// an outside argument has no null-aware decomposition here.
			if a.Kind == scalar.AggCount {
				return false
			}
		default:
			return false // argument spans the boundary
		}
	}
	// Reduction gate.
	child := bc.b.m.Group(bc.groups[sAgg])
	reduced := bc.b.est.GroupRows(child.Rows, bc.pColsFor(sAgg))
	return reduced <= eagerAggMaxRatio*child.Rows
}

// aggArgMask returns the local relation mask touched by aggregate arguments.
func (bc *blockCtx) aggArgMask() uint64 {
	var cols scalar.ColSet
	for _, a := range bc.blk.Aggs {
		if a.Arg != nil {
			cols.UnionWith(a.Arg.Cols())
		}
	}
	var mask uint64
	for i := range bc.relCols {
		if cols.Intersects(bc.relCols[i]) {
			mask |= 1 << uint(i)
		}
	}
	return mask
}

// pColsFor computes the grouping columns of an eager partial aggregation
// over sAgg: the block's grouping columns from sAgg plus any sAgg column
// referenced by a conjunct not yet applied within sAgg (join columns to the
// rest of the block, and columns of filters applied later). The formula
// depends only on the block and sAgg, so the same partial group serves every
// combining context.
func (bc *blockCtx) pColsFor(sAgg uint64) []scalar.ColID {
	var pSet scalar.ColSet
	var sAggCols scalar.ColSet
	for _, i := range maskMembers(sAgg) {
		sAggCols.UnionWith(bc.relCols[i])
	}
	for _, gcol := range bc.blk.GroupCols {
		if sAggCols.Contains(gcol) {
			pSet.Add(gcol)
		}
	}
	applied := make(map[int]bool)
	for _, ci := range bc.applicable(sAgg) {
		applied[ci] = true
	}
	for ci, c := range bc.conj {
		if applied[ci] {
			continue
		}
		pSet.UnionWith(c.Cols().Intersection(sAggCols))
	}
	return pSet.Ordered()
}

// partialGroupFor creates (once per subset) the eager partial-aggregation
// group over sAgg: partial versions of the block aggregates whose arguments
// lie inside the subset, plus a count(*) column for eager-count scaling. It
// recursively adds multi-stage alternatives combining narrower partials.
func (bc *blockCtx) partialGroupFor(sAgg uint64) *partialInfo {
	m := bc.b.m
	est := bc.b.est
	md := m.Md
	if pi, ok := bc.partial[sAgg]; ok {
		return pi
	}

	aggChild := m.Group(bc.groups[sAgg])
	pCols := bc.pColsFor(sAgg)
	var sAggCols scalar.ColSet
	for _, i := range maskMembers(sAgg) {
		sAggCols.UnionWith(bc.relCols[i])
	}

	pi := &partialInfo{outs: make([]scalar.ColID, len(bc.blk.Aggs))}
	var defs []logical.AggDef
	for i, a := range bc.blk.Aggs {
		if a.Arg != nil && !a.Arg.Cols().SubsetOf(sAggCols) {
			continue // outside aggregate: scaled by cnt after the join
		}
		out := md.AddSynthesized("partial_"+a.String(), aggOutKind(md, a))
		pi.outs[i] = out
		defs = append(defs, logical.AggDef{Kind: a.Kind, Arg: a.Arg, Out: out})
	}
	pi.cnt = md.AddSynthesized("partial_count(*)", sqltypes.KindInt)
	defs = append(defs, logical.AggDef{Kind: scalar.AggCountStar, Out: pi.cnt})

	pOut := append([]scalar.ColID(nil), pCols...)
	for _, d := range defs {
		pOut = append(pOut, d.Out)
	}
	pOut = scalar.SortColIDs(pOut)

	partialG := m.NewGroup(&Group{
		Rels:      aggChild.Rels,
		OutCols:   pOut,
		Rows:      est.GroupRows(aggChild.Rows, pCols),
		RowSize:   est.RowWidth(pOut),
		Sig:       bc.signatureOf(sAgg, true),
		Conjuncts: aggChild.Conjuncts,
		GroupCols: pCols,
		Aggs:      defs,
		Grouped:   true,
		StmtIdx:   bc.stmtIdx,
	})
	m.AddExpr(partialG, &Expr{
		Op:        OpGroupBy,
		Children:  []GroupID{bc.groups[sAgg]},
		GroupCols: pCols,
		Aggs:      defs,
		AggMode:   AggPartial,
	})
	pi.group = partialG
	bc.partial[sAgg] = pi

	// Multi-stage alternatives: combine a narrower partial aggregation.
	target := aggTarget{mask: sAgg, groupCols: pCols, outs: pi.outs, cnt: pi.cnt}
	for s2 := uint64(1); s2 < sAgg; s2++ {
		if s2&^sAgg != 0 || !bc.validAggSubset(s2) {
			continue
		}
		inner := bc.partialGroupFor(s2)
		bc.addCombineExpr(partialG, target, inner)
	}
	return pi
}

// combineDefs builds the combining aggregates that roll partial results (pi)
// up to the target level. Inside aggregates fold partial columns; outside
// aggregates apply the eager-count rule (sums scale by the count column,
// min/max pass through, count(*) sums the counts).
func (bc *blockCtx) combineDefs(target aggTarget, pi *partialInfo) []logical.AggDef {
	var out []logical.AggDef
	for i, a := range bc.blk.Aggs {
		if target.outs[i] == 0 {
			continue
		}
		if src := pi.outs[i]; src != 0 {
			out = append(out, CombineAgg(logical.AggDef{Kind: a.Kind, Arg: a.Arg, Out: target.outs[i]}, src))
			continue
		}
		// Outside aggregate: eager count.
		var def logical.AggDef
		switch a.Kind {
		case scalar.AggSum:
			def = logical.AggDef{
				Kind: scalar.AggSum,
				Arg:  scalar.Arith(scalar.OpMul, a.Arg, scalar.Col(pi.cnt)),
				Out:  target.outs[i],
			}
		case scalar.AggMin, scalar.AggMax:
			def = logical.AggDef{Kind: a.Kind, Arg: a.Arg, Out: target.outs[i]}
		case scalar.AggCountStar:
			def = logical.AggDef{Kind: scalar.AggSum, Arg: scalar.Col(pi.cnt), Out: target.outs[i]}
		default:
			// validAggSubset rejects these; defensive.
			def = logical.AggDef{Kind: a.Kind, Arg: a.Arg, Out: target.outs[i]}
		}
		out = append(out, def)
	}
	if target.cnt != 0 {
		out = append(out, logical.AggDef{Kind: scalar.AggSum, Arg: scalar.Col(pi.cnt), Out: target.cnt})
	}
	return out
}

// addCombineExpr adds to target's group an expression that joins the partial
// aggregation with the remaining relations of the target's subset and
// re-aggregates to the target level.
func (bc *blockCtx) addCombineExpr(target *Group, tgt aggTarget, pi *partialInfo) {
	m := bc.b.m
	est := bc.b.est

	sAgg := maskOfRels(bc, pi.group.Rels)
	partialG := pi.group

	// Join the partial result with the remaining relations, one at a time,
	// following graph adjacency.
	cur := partialG
	covered := sAgg
	appliedIdx := append([]int(nil), bc.applicable(sAgg)...)
	rest := tgt.mask &^ sAgg
	for rest != 0 {
		next := bc.pickNext(covered, rest)
		mask := covered | (uint64(1) << uint(next))
		condIdx := diffIdx(bc.applicable(mask), appliedIdx, bc.applicable(uint64(1)<<uint(next)))
		var cond *scalar.Expr
		if len(condIdx) > 0 {
			cond = scalar.And(bc.conjuncts(condIdx)...)
		}
		appliedIdx = append(appliedIdx, condIdx...)
		appliedIdx = append(appliedIdx, bc.applicable(uint64(1)<<uint(next))...)

		scanG := m.Group(bc.groups[uint64(1)<<uint(next)])
		outSet := scalar.MakeColSet(cur.OutCols...)
		outSet.UnionWith(scalar.MakeColSet(scanG.OutCols...))
		out := outSet.Ordered()
		rows := cur.Rows * scanG.Rows
		if cond != nil {
			rows *= est.Selectivity(cond)
		}
		if rows < 1 {
			rows = 1
		}
		jg := m.NewGroup(&Group{
			Rels:    cur.Rels.Union(scanG.Rels),
			OutCols: out,
			Rows:    rows,
			RowSize: est.RowWidth(out),
			// No signature: a join above a group-by is not an SPJG
			// expression (Figure 2 join rule requires G=F inputs).
			Conjuncts: bc.conjuncts(bc.applicable(mask)),
			StmtIdx:   bc.stmtIdx,
		})
		m.AddExpr(jg, &Expr{Op: OpJoin, Children: []GroupID{cur.ID, scanG.ID}, Filter: cond})
		cur = jg
		covered = mask
		rest &^= uint64(1) << uint(next)
	}

	// Combining aggregation on top, producing the target's outputs.
	m.AddExpr(target, &Expr{
		Op:        OpGroupBy,
		Children:  []GroupID{cur.ID},
		GroupCols: tgt.groupCols,
		Aggs:      bc.combineDefs(tgt, pi),
		AggMode:   AggCombine,
	})
}

// maskOfRels converts a batch-wide instance set back to this block's local
// relation mask.
func maskOfRels(bc *blockCtx, rels logical.RelSet) uint64 {
	var mask uint64
	for i, r := range bc.rels {
		if rels.Contains(r) {
			mask |= 1 << uint(i)
		}
	}
	return mask
}

// pickNext chooses the next relation from rest adjacent to the covered set,
// falling back to the lowest remaining relation.
func (bc *blockCtx) pickNext(covered, rest uint64) int {
	for _, i := range maskMembers(rest) {
		for _, j := range maskMembers(covered) {
			if bc.adj[i][j] {
				return i
			}
		}
	}
	return bits.TrailingZeros64(rest)
}

// CombineAgg returns the aggregate that combines partial results stored in
// column partialOut into the original aggregate's output: sums and counts
// add up, min/min and max/max fold.
func CombineAgg(orig logical.AggDef, partialOut scalar.ColID) logical.AggDef {
	kind := orig.Kind
	switch kind {
	case scalar.AggCount, scalar.AggCountStar:
		kind = scalar.AggSum
	case scalar.AggSum:
		kind = scalar.AggSum
	case scalar.AggMin:
		kind = scalar.AggMin
	case scalar.AggMax:
		kind = scalar.AggMax
	}
	return logical.AggDef{Kind: kind, Arg: scalar.Col(partialOut), Out: orig.Out}
}

func aggOutKind(md *logical.Metadata, a logical.AggDef) sqltypes.Kind {
	return logical.InferKind(md, scalar.Agg(a.Kind, a.Arg))
}
