package memo_test

import (
	"testing"

	"repro/internal/memo"
)

func TestDominatorsWithinStatement(t *testing.T) {
	cat := testCatalog(t)
	m := buildMemo(t, cat, `
select c_nationkey, sum(o_totalprice) as s
from customer, orders
where c_custkey = o_custkey
group by c_nationkey`)
	d := memo.NewDominators(m, m.RootGroup)

	root := m.RootGroup
	stmt := m.StmtRoots[0]
	// The root dominates everything reachable.
	for _, g := range m.Groups {
		if d.Dominates(stmt, g.ID) && !d.Dominates(root, g.ID) {
			t.Errorf("root must dominate G%d", g.ID)
		}
	}
	// Every group dominates itself.
	if !d.Dominates(stmt, stmt) {
		t.Error("dominance is reflexive")
	}
	// A scan group is dominated by the statement root (single statement).
	scan := findScanGroup(m)
	if !d.Dominates(stmt, scan) {
		t.Error("statement root must dominate its scans")
	}
	// Common dominator of one target is at least as deep as the statement
	// root (never the batch root when the target sits inside one statement).
	cd := d.CommonDominator([]memo.GroupID{scan})
	if cd == m.RootGroup {
		t.Error("single-statement target should find a dominator below the batch root")
	}
}

func TestCommonDominatorAcrossStatements(t *testing.T) {
	cat := testCatalog(t)
	m := buildMemo(t, cat, `
select c_name from customer where c_acctbal > 0;
select c_name from customer where c_acctbal < 0`)
	d := memo.NewDominators(m, m.RootGroup)

	// One scan group from each statement: only the batch root covers both.
	var scans []memo.GroupID
	for _, g := range m.Groups {
		if len(g.Exprs) > 0 && g.Exprs[0].Op == memo.OpScan {
			scans = append(scans, g.ID)
		}
	}
	if len(scans) != 2 {
		t.Fatalf("expected 2 scan groups, got %d", len(scans))
	}
	cd := d.CommonDominator(scans)
	if cd != m.RootGroup {
		t.Errorf("cross-statement common dominator = G%d, want batch root G%d", cd, m.RootGroup)
	}
	// But each alone is dominated by its own statement root.
	cd0 := d.CommonDominator(scans[:1])
	if cd0 == m.RootGroup {
		t.Error("single-statement target must not escalate to the batch root")
	}
}

func TestCommonDominatorDeepest(t *testing.T) {
	cat := testCatalog(t)
	m := buildMemo(t, cat, `
select c_nationkey, sum(l_extendedprice) as s
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
group by c_nationkey`)
	d := memo.NewDominators(m, m.RootGroup)

	// The full join-set group's common dominator for itself is itself.
	var joinTop memo.GroupID = memo.InvalidGroup
	for _, g := range m.Groups {
		if !g.Grouped && g.Sig.Valid && len(g.Sig.Tables) == 3 {
			joinTop = g.ID
		}
	}
	if joinTop == memo.InvalidGroup {
		t.Fatal("no 3-table join group found")
	}
	if cd := d.CommonDominator([]memo.GroupID{joinTop}); cd != joinTop {
		t.Errorf("CommonDominator({G%d}) = G%d, want itself (deepest dominator)", joinTop, cd)
	}
}

func TestCommonDominatorEmptyTargets(t *testing.T) {
	cat := testCatalog(t)
	m := buildMemo(t, cat, "select c_name from customer")
	d := memo.NewDominators(m, m.RootGroup)
	if cd := d.CommonDominator(nil); cd != m.RootGroup {
		t.Error("no targets → root")
	}
}

func findScanGroup(m *memo.Memo) memo.GroupID {
	for _, g := range m.Groups {
		if len(g.Exprs) > 0 && g.Exprs[0].Op == memo.OpScan {
			return g.ID
		}
	}
	return memo.InvalidGroup
}
