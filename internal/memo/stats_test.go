package memo_test

import (
	"testing"

	"repro/internal/logical"
	"repro/internal/memo"
	"repro/internal/parser"
	"repro/internal/scalar"
)

// bindCustomer binds a single-table query so the estimator has real column
// stats to work with, returning the metadata and the customer instance.
func bindCustomer(t *testing.T) (*memo.Estimator, *logical.RelInfo, *logical.Batch) {
	t.Helper()
	cat := testCatalog(t)
	stmts, err := parser.Parse("select * from customer")
	if err != nil {
		t.Fatal(err)
	}
	batch, err := logical.BuildBatch(stmts, cat)
	if err != nil {
		t.Fatal(err)
	}
	md := batch.Metadata
	return &memo.Estimator{Md: md}, md.Rel(batch.Statements[0].Block.Rels[0]), batch
}

func TestSelectivityEquality(t *testing.T) {
	est, rel, _ := bindCustomer(t)
	nk := rel.ColID(3) // c_nationkey, ~25 distinct
	sel := est.Selectivity(scalar.Eq(scalar.Col(nk), scalar.ConstInt(7)))
	if sel < 1.0/30 || sel > 1.0/10 {
		t.Errorf("equality selectivity = %g, want ≈1/25", sel)
	}
}

func TestSelectivityRange(t *testing.T) {
	est, rel, _ := bindCustomer(t)
	nk := rel.ColID(3) // range roughly [0, 24]
	low := est.Selectivity(scalar.Cmp(scalar.OpLt, scalar.Col(nk), scalar.ConstInt(5)))
	high := est.Selectivity(scalar.Cmp(scalar.OpLt, scalar.Col(nk), scalar.ConstInt(20)))
	if low >= high {
		t.Errorf("wider range must be more selective: <5 %g vs <20 %g", low, high)
	}
	if low < 0.05 || low > 0.5 {
		t.Errorf("c_nationkey < 5 selectivity = %g, want ≈0.2", low)
	}
	// Flipped operand order is normalized.
	flipped := est.Selectivity(scalar.Cmp(scalar.OpGt, scalar.ConstInt(5), scalar.Col(nk)))
	if flipped != low {
		t.Errorf("5 > c must estimate like c < 5: %g vs %g", flipped, low)
	}
}

func TestSelectivityBooleanCombinators(t *testing.T) {
	est, rel, _ := bindCustomer(t)
	nk := rel.ColID(3)
	p := scalar.Cmp(scalar.OpLt, scalar.Col(nk), scalar.ConstInt(10))
	q := scalar.Cmp(scalar.OpGt, scalar.Col(nk), scalar.ConstInt(20))
	sp, sq := est.Selectivity(p), est.Selectivity(q)

	and := est.Selectivity(scalar.And(p, q))
	if diff := and - sp*sq; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("AND selectivity %g, want product %g", and, sp*sq)
	}
	or := est.Selectivity(scalar.Or(p, q))
	want := sp + sq - sp*sq
	if diff := or - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("OR selectivity %g, want %g", or, want)
	}
	not := est.Selectivity(scalar.Not(p))
	if diff := not - (1 - sp); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("NOT selectivity %g, want %g", not, 1-sp)
	}
}

func TestSelectivityBounds(t *testing.T) {
	est, rel, _ := bindCustomer(t)
	nk := rel.ColID(3)
	preds := []*scalar.Expr{
		scalar.Eq(scalar.Col(nk), scalar.ConstInt(5)),
		scalar.Cmp(scalar.OpLt, scalar.Col(nk), scalar.ConstInt(-100)),
		scalar.Cmp(scalar.OpGt, scalar.Col(nk), scalar.ConstInt(1000)),
		scalar.Not(scalar.Eq(scalar.Col(nk), scalar.ConstInt(5))),
		scalar.True,
		scalar.False,
		nil,
	}
	for _, p := range preds {
		s := est.Selectivity(p)
		if s < 0 || s > 1 {
			t.Errorf("selectivity out of [0,1]: %g for %v", s, p)
		}
	}
	if est.Selectivity(scalar.True) != 1 {
		t.Error("TRUE selectivity must be 1")
	}
	if est.Selectivity(scalar.False) != 0 {
		t.Error("FALSE selectivity must be 0")
	}
}

func TestSelectivityUnknownDefaults(t *testing.T) {
	est, rel, batch := bindCustomer(t)
	name := rel.ColID(1) // c_name: string, no range interpolation
	s := est.Selectivity(scalar.Cmp(scalar.OpLt, scalar.Col(name), scalar.ConstString("x")))
	if s != 1.0/3.0 {
		t.Errorf("string range selectivity = %g, want default 1/3", s)
	}
	// Subquery comparisons can't be analyzed either.
	sq := batch.Metadata.AddSubquery(batch.Statements[0].Block)
	s2 := est.Selectivity(scalar.Cmp(scalar.OpGt, scalar.Col(name), scalar.SubqueryRef(sq)))
	if s2 != 1.0/3.0 {
		t.Errorf("subquery comparison selectivity = %g, want default", s2)
	}
}

func TestJoinRowsEquijoin(t *testing.T) {
	cat := testCatalog(t)
	stmts, _ := parser.Parse("select c_name from customer, orders where c_custkey = o_custkey")
	batch, err := logical.BuildBatch(stmts, cat)
	if err != nil {
		t.Fatal(err)
	}
	md := batch.Metadata
	est := &memo.Estimator{Md: md}
	blk := batch.Statements[0].Block
	rows := est.JoinRows(blk.Rels, blk.Conjuncts)
	// PK-FK join: output ≈ orders row count.
	orders := md.Rel(blk.Rels[1]).Tab.Stats.RowCount
	if rows < orders*0.5 || rows > orders*2 {
		t.Errorf("join rows = %g, want ≈%g (orders count)", rows, orders)
	}
}

func TestGroupRows(t *testing.T) {
	est, rel, _ := bindCustomer(t)
	nk := rel.ColID(3)
	if got := est.GroupRows(1000, nil); got != 1 {
		t.Errorf("scalar aggregation output = %g, want 1", got)
	}
	got := est.GroupRows(1000, []scalar.ColID{nk})
	if got < 10 || got > 30 {
		t.Errorf("group by c_nationkey = %g, want ≈25", got)
	}
	// Capped at input.
	if got := est.GroupRows(3, []scalar.ColID{nk}); got > 3 {
		t.Errorf("groups (%g) cannot exceed input rows", got)
	}
}

func TestNDVAndRowWidth(t *testing.T) {
	est, rel, batch := bindCustomer(t)
	if est.NDV(rel.ColID(3)) <= 1 {
		t.Error("c_nationkey NDV must come from stats")
	}
	syn := batch.Metadata.AddSynthesized("x", 3)
	if est.NDV(syn) != 100 {
		t.Error("synthesized columns use the default NDV")
	}
	w := est.RowWidth([]scalar.ColID{rel.ColID(0), rel.ColID(1)})
	if w != 8+16 {
		t.Errorf("RowWidth = %g", w)
	}
	if est.RowWidth(nil) != 1 {
		t.Error("empty row width floor is 1")
	}
}

func TestBaseRows(t *testing.T) {
	est, rel, _ := bindCustomer(t)
	if est.BaseRows(rel.ID) <= 0 {
		t.Error("BaseRows must be positive")
	}
}
