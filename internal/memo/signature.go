package memo

import "strings"

// Signature is the paper's table signature (§3, Definition 3.1): a pair
// [G; T] where G indicates whether the expression contains a group-by and T
// is the set of source tables. It exists only for SPJG expressions; for all
// other operators Valid is false.
//
// Expressions with different table signatures cannot be computed from one
// covering subexpression, so equal signatures are the fast filter for
// detecting potentially sharable expressions.
type Signature struct {
	Valid   bool
	Grouped bool     // the G component
	Tables  []string // the T component: sorted, lower-cased, de-duplicated

	// SelfJoin marks expressions referencing the same base table more than
	// once. T is a set, so two instances collapse; such expressions are
	// excluded from sharing (the signature cannot distinguish instances).
	SelfJoin bool
}

// Key returns the hash key used by the CSE manager's signature table.
func (s Signature) Key() string {
	g := "F"
	if s.Grouped {
		g = "T"
	}
	return g + "|" + strings.Join(s.Tables, ",")
}

// String renders the signature as "[T; {a,b}]".
func (s Signature) String() string {
	if !s.Valid {
		return "[-]"
	}
	g := "F"
	if s.Grouped {
		g = "T"
	}
	return "[" + g + "; {" + strings.Join(s.Tables, ",") + "}]"
}

// TableSet returns the T component as a set.
func (s Signature) TableSet() map[string]bool {
	out := make(map[string]bool, len(s.Tables))
	for _, t := range s.Tables {
		out[t] = true
	}
	return out
}

// SubsetOf reports whether s's tables are a subset of other's.
func (s Signature) SubsetOf(other Signature) bool {
	set := other.TableSet()
	for _, t := range s.Tables {
		if !set[t] {
			return false
		}
	}
	return true
}

// The incremental computation rules of Figure 2, expressed over group
// construction:
//
//	Table/View t:  S = [F; {t}]
//	Select σ(e):   S = S_e               if G_e = F
//	Project π(e):  S = S_e               if G_e = F
//	Join e1 ⋈ e2:  S = [F; T_1 ∪ T_2]    if G_1 = F and G_2 = F
//	GroupBy γ(e):  S = [T; T_e]          if G_e = F
//	otherwise:     no signature
//
// The builder applies these rules as it creates groups: scan groups get leaf
// signatures, join-subset groups get the join rule (both inputs are scans or
// joins, always G=F), aggregation groups placed directly on a join subset
// get the group-by rule, and every other operator (Select over a GroupBy,
// Root, Seq, Spool, joins above partial aggregations) gets none.

// scanSignature returns the signature of σ(t).
func scanSignature(table string) Signature {
	return Signature{Valid: true, Tables: []string{strings.ToLower(table)}}
}

// joinSignature combines two ungrouped child signatures.
func joinSignature(a, b Signature) Signature {
	if !a.Valid || !b.Valid || a.Grouped || b.Grouped {
		return Signature{}
	}
	seen := make(map[string]bool, len(a.Tables)+len(b.Tables))
	var tables []string
	selfJoin := a.SelfJoin || b.SelfJoin
	for _, t := range a.Tables {
		seen[t] = true
		tables = append(tables, t)
	}
	for _, t := range b.Tables {
		if seen[t] {
			selfJoin = true
			continue
		}
		seen[t] = true
		tables = append(tables, t)
	}
	sortLower(tables)
	return Signature{Valid: true, Tables: tables, SelfJoin: selfJoin}
}

// groupBySignature wraps an ungrouped child signature.
func groupBySignature(child Signature) Signature {
	if !child.Valid || child.Grouped {
		return Signature{}
	}
	out := child
	out.Grouped = true
	return out
}

func sortLower(s []string) {
	for i := range s {
		s[i] = strings.ToLower(s[i])
	}
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
