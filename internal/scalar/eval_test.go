package scalar

import (
	"regexp"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sqltypes"
)

// tri is three-valued logic: -1 false, 0 null, +1 true.
type tri int

func triOf(d sqltypes.Datum) tri {
	if d.IsNull() {
		return 0
	}
	if d.Bool() {
		return 1
	}
	return -1
}

func datumOf(v tri) sqltypes.Datum {
	switch v {
	case 0:
		return sqltypes.Null
	case 1:
		return sqltypes.NewBool(true)
	default:
		return sqltypes.NewBool(false)
	}
}

func eval(t *testing.T, e *Expr, layout map[ColID]int, row sqltypes.Row) sqltypes.Datum {
	t.Helper()
	fn, err := Compile(e, layout)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return fn(row)
}

// TestThreeValuedAnd exhaustively checks Kleene AND over {F, N, T}².
func TestThreeValuedAnd(t *testing.T) {
	layout := map[ColID]int{1: 0, 2: 1}
	e := And(Col(1), Col(2))
	for _, a := range []tri{-1, 0, 1} {
		for _, b := range []tri{-1, 0, 1} {
			want := a
			if b < want {
				want = b
			} // Kleene AND = min
			got := triOf(eval(t, e, layout, sqltypes.Row{datumOf(a), datumOf(b)}))
			if got != want {
				t.Errorf("AND(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

// TestThreeValuedOr exhaustively checks Kleene OR.
func TestThreeValuedOr(t *testing.T) {
	layout := map[ColID]int{1: 0, 2: 1}
	e := Or(Col(1), Col(2))
	for _, a := range []tri{-1, 0, 1} {
		for _, b := range []tri{-1, 0, 1} {
			want := a
			if b > want {
				want = b
			} // Kleene OR = max
			got := triOf(eval(t, e, layout, sqltypes.Row{datumOf(a), datumOf(b)}))
			if got != want {
				t.Errorf("OR(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestThreeValuedNot(t *testing.T) {
	layout := map[ColID]int{1: 0}
	e := Not(Col(1))
	for _, a := range []tri{-1, 0, 1} {
		got := triOf(eval(t, e, layout, sqltypes.Row{datumOf(a)}))
		if got != -a {
			t.Errorf("NOT(%d) = %d", a, got)
		}
	}
}

func TestComparisonsWithNull(t *testing.T) {
	layout := map[ColID]int{1: 0, 2: 1}
	for _, op := range []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe} {
		e := Cmp(op, Col(1), Col(2))
		if got := eval(t, e, layout, sqltypes.Row{sqltypes.Null, sqltypes.NewInt(1)}); !got.IsNull() {
			t.Errorf("op %d with NULL operand must be NULL, got %v", op, got)
		}
	}
}

func TestComparisonSemantics(t *testing.T) {
	layout := map[ColID]int{1: 0, 2: 1}
	cases := []struct {
		op   Op
		a, b int64
		want bool
	}{
		{OpEq, 2, 2, true}, {OpEq, 2, 3, false},
		{OpNe, 2, 3, true}, {OpNe, 2, 2, false},
		{OpLt, 2, 3, true}, {OpLt, 3, 2, false}, {OpLt, 2, 2, false},
		{OpLe, 2, 2, true}, {OpLe, 3, 2, false},
		{OpGt, 3, 2, true}, {OpGt, 2, 3, false},
		{OpGe, 2, 2, true}, {OpGe, 2, 3, false},
	}
	for _, c := range cases {
		e := Cmp(c.op, Col(1), Col(2))
		got := eval(t, e, layout, sqltypes.Row{sqltypes.NewInt(c.a), sqltypes.NewInt(c.b)})
		if got.Bool() != c.want {
			t.Errorf("op %d (%d,%d) = %v, want %v", c.op, c.a, c.b, got.Bool(), c.want)
		}
	}
}

func TestArithmeticEvaluation(t *testing.T) {
	layout := map[ColID]int{1: 0, 2: 1}
	row := sqltypes.Row{sqltypes.NewInt(7), sqltypes.NewInt(2)}
	cases := []struct {
		op   Op
		want sqltypes.Datum
	}{
		{OpAdd, sqltypes.NewInt(9)},
		{OpSub, sqltypes.NewInt(5)},
		{OpMul, sqltypes.NewInt(14)},
		{OpDiv, sqltypes.NewFloat(3.5)},
	}
	for _, c := range cases {
		got := eval(t, Arith(c.op, Col(1), Col(2)), layout, row)
		if sqltypes.Compare(got, c.want) != 0 {
			t.Errorf("op %d = %v, want %v", c.op, got, c.want)
		}
	}
	// Mixed int/float promotes.
	got := eval(t, Arith(OpAdd, Col(1), Col(2)), layout,
		sqltypes.Row{sqltypes.NewInt(1), sqltypes.NewFloat(0.5)})
	if got.Kind() != sqltypes.KindFloat || got.Float() != 1.5 {
		t.Errorf("mixed add = %v", got)
	}
}

func TestDivisionByZeroIsNull(t *testing.T) {
	layout := map[ColID]int{1: 0, 2: 1}
	got := eval(t, Arith(OpDiv, Col(1), Col(2)), layout,
		sqltypes.Row{sqltypes.NewInt(1), sqltypes.NewInt(0)})
	if !got.IsNull() {
		t.Errorf("x/0 = %v, want NULL", got)
	}
}

func TestArithNullPropagation(t *testing.T) {
	layout := map[ColID]int{1: 0, 2: 1}
	for _, op := range []Op{OpAdd, OpSub, OpMul, OpDiv} {
		got := eval(t, Arith(op, Col(1), Col(2)), layout,
			sqltypes.Row{sqltypes.Null, sqltypes.NewInt(2)})
		if !got.IsNull() {
			t.Errorf("op %d with NULL = %v", op, got)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile(Col(9), map[ColID]int{1: 0}); err == nil {
		t.Error("unknown column must fail to compile")
	}
	if _, err := Compile(Agg(AggSum, Col(1)), map[ColID]int{1: 0}); err == nil {
		t.Error("aggregate must fail to compile")
	}
	if _, err := Compile(SubqueryRef(0), nil); err == nil {
		t.Error("unsubstituted subquery must fail to compile")
	}
	// Error inside nested expression propagates.
	if _, err := Compile(And(Col(1), Col(9)), map[ColID]int{1: 0}); err == nil {
		t.Error("nested compile error must propagate")
	}
}

func TestCompileNilIsTrue(t *testing.T) {
	fn, err := Compile(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := fn(nil); d.IsNull() || !d.Bool() {
		t.Error("nil predicate must evaluate TRUE")
	}
}

func TestEvalPredicateTreatsNullAsFalse(t *testing.T) {
	layout := map[ColID]int{1: 0}
	ok, err := EvalPredicate(Cmp(OpGt, Col(1), ConstInt(0)), layout, sqltypes.Row{sqltypes.Null})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("NULL predicate result must filter the row")
	}
}

func TestConstantEvaluation(t *testing.T) {
	got := eval(t, ConstString("x"), nil, nil)
	if got.Str() != "x" {
		t.Errorf("const eval = %v", got)
	}
}

// TestRandomPredicateEvalMatchesReference compares compiled evaluation of
// random AND/OR/NOT trees over comparison leaves against a direct
// interpreter.
func TestRandomPredicateEvalMatchesReference(t *testing.T) {
	layout := map[ColID]int{1: 0, 2: 1, 3: 2}

	var reference func(e *Expr, row sqltypes.Row) tri
	reference = func(e *Expr, row sqltypes.Row) tri {
		switch e.Op {
		case OpAnd:
			v := tri(1)
			for _, a := range e.Args {
				if r := reference(a, row); r < v {
					v = r
				}
			}
			return v
		case OpOr:
			v := tri(-1)
			for _, a := range e.Args {
				if r := reference(a, row); r > v {
					v = r
				}
			}
			return v
		case OpNot:
			return -reference(e.Args[0], row)
		default: // comparison leaf col <op> const
			d := row[layout[e.Args[0].Col]]
			if d.IsNull() {
				return 0
			}
			c := sqltypes.Compare(d, e.Args[1].Const)
			var b bool
			switch e.Op {
			case OpEq:
				b = c == 0
			case OpLt:
				b = c < 0
			case OpGt:
				b = c > 0
			}
			if b {
				return 1
			}
			return -1
		}
	}

	// Deterministic tree builder from a seed.
	var build func(seed int64, depth int) *Expr
	build = func(seed int64, depth int) *Expr {
		if depth <= 0 || seed%5 == 0 {
			col := ColID(seed%3 + 1)
			if col < 1 {
				col = -col + 1
			}
			val := seed % 4
			if val < 0 {
				val = -val
			}
			ops := []Op{OpEq, OpLt, OpGt}
			return Cmp(ops[abs64(seed)%3], Col(col), ConstInt(val))
		}
		switch abs64(seed) % 3 {
		case 0:
			return And(build(seed/2, depth-1), build(seed/3, depth-1))
		case 1:
			return Or(build(seed/2, depth-1), build(seed/3, depth-1))
		default:
			return Not(build(seed/2, depth-1))
		}
	}

	f := func(seed int64, v1, v2, v3 int8, null1 bool) bool {
		e := build(seed, 4)
		row := sqltypes.Row{
			sqltypes.NewInt(int64(v1 % 4)),
			sqltypes.NewInt(int64(v2 % 4)),
			sqltypes.NewInt(int64(v3 % 4)),
		}
		if null1 {
			row[0] = sqltypes.Null
		}
		fn, err := Compile(e, layout)
		if err != nil {
			return false
		}
		return triOf(fn(row)) == reference(e, row)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestLikeMatching(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false},
		{"hello", "", false},
		{"", "%", true},
		{"", "", true},
		{"abc", "%%", true},
		{"abc", "a%c", true},
		{"abc", "a%b", false},
		{"aXbXc", "a%b%c", true},
		{"mississippi", "%issip%", true},
		{"mississippi", "%issipp_", true},
		{"STANDARD ANODIZED TIN", "%ANODIZED%", true},
		{"STANDARD ANODIZED TIN", "PROMO%", false},
	}
	layout := map[ColID]int{1: 0, 2: 1}
	for _, c := range cases {
		e := Like(Col(1), Col(2))
		got := eval(t, e, layout, sqltypes.Row{sqltypes.NewString(c.s), sqltypes.NewString(c.pat)})
		if got.IsNull() || got.Bool() != c.want {
			t.Errorf("%q LIKE %q = %v, want %v", c.s, c.pat, got, c.want)
		}
	}
	// NULL propagation.
	got := eval(t, Like(Col(1), Col(2)), layout, sqltypes.Row{sqltypes.Null, sqltypes.NewString("%")})
	if !got.IsNull() {
		t.Error("NULL LIKE pattern must be NULL")
	}
}

// TestLikeMatchesRegexpReference: likeMatch agrees with the equivalent
// anchored regular expression on random inputs.
func TestLikeMatchesRegexpReference(t *testing.T) {
	alphabet := []byte("ab%_")
	build := func(seed uint64, n int) string {
		var sb []byte
		for i := 0; i < n; i++ {
			sb = append(sb, alphabet[seed%uint64(len(alphabet))])
			seed /= uint64(len(alphabet))
		}
		return string(sb)
	}
	toRegexp := func(pattern string) string {
		var sb []byte
		sb = append(sb, '^')
		for i := 0; i < len(pattern); i++ {
			switch pattern[i] {
			case '%':
				sb = append(sb, '.', '*')
			case '_':
				sb = append(sb, '.')
			default:
				sb = append(sb, pattern[i])
			}
		}
		return string(append(sb, '$'))
	}
	f := func(sSeed, pSeed uint64, sLen, pLen uint8) bool {
		s := build(sSeed, int(sLen%8))
		// Subject strings only from {a,b} (no wildcards in data).
		s = strings.Map(func(r rune) rune {
			if r == '%' {
				return 'a'
			}
			if r == '_' {
				return 'b'
			}
			return r
		}, s)
		p := build(pSeed, int(pLen%8))
		re := regexp.MustCompile(toRegexp(p))
		return LikeMatch(s, p) == re.MatchString(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
