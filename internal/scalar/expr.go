package scalar

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sqltypes"
)

// Op enumerates scalar operators.
type Op uint8

// Scalar operator kinds.
const (
	OpConst Op = iota // literal constant
	OpCol             // column reference

	// Comparisons (binary).
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe

	// Boolean connectives.
	OpAnd // n-ary
	OpOr  // n-ary
	OpNot // unary

	// OpLike is SQL LIKE with % and _ wildcards (binary: expr LIKE pattern).
	OpLike

	// Arithmetic (binary).
	OpAdd
	OpSub
	OpMul
	OpDiv

	// OpAgg is a reference to an aggregate function. Aggregate nodes appear
	// only in raw SELECT/HAVING lists; plan normalization hoists them into
	// GroupBy operators and replaces them with OpCol references.
	OpAgg

	// OpSubquery references an uncorrelated scalar subquery by index into
	// the batch metadata's subquery list (the Col field carries the index).
	// The executor evaluates each subquery once and substitutes its value.
	OpSubquery
)

// AggKind enumerates the supported (decomposable) aggregate functions.
type AggKind uint8

// Aggregate function kinds.
const (
	AggSum AggKind = iota
	AggCount
	AggCountStar
	AggMin
	AggMax
	AggAvg
)

// String returns the SQL name of the aggregate.
func (a AggKind) String() string {
	switch a {
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	case AggCountStar:
		return "count(*)"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	default:
		return fmt.Sprintf("agg(%d)", uint8(a))
	}
}

// Expr is a node in a scalar expression tree. Expressions are immutable once
// built; all transformations construct new nodes.
type Expr struct {
	Op    Op
	Const sqltypes.Datum // OpConst payload
	Col   ColID          // OpCol payload
	Agg   AggKind        // OpAgg payload
	Args  []*Expr        // children
}

// Constructors.

// Const returns a literal expression.
func Const(d sqltypes.Datum) *Expr { return &Expr{Op: OpConst, Const: d} }

// ConstInt returns an integer literal expression.
func ConstInt(v int64) *Expr { return Const(sqltypes.NewInt(v)) }

// ConstFloat returns a float literal expression.
func ConstFloat(v float64) *Expr { return Const(sqltypes.NewFloat(v)) }

// ConstString returns a string literal expression.
func ConstString(v string) *Expr { return Const(sqltypes.NewString(v)) }

// Col returns a column reference expression.
func Col(c ColID) *Expr { return &Expr{Op: OpCol, Col: c} }

// Cmp returns the comparison a <op> b.
func Cmp(op Op, a, b *Expr) *Expr {
	switch op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
	default:
		panic(fmt.Sprintf("Cmp with non-comparison op %d", op))
	}
	return &Expr{Op: op, Args: []*Expr{a, b}}
}

// Eq returns a = b.
func Eq(a, b *Expr) *Expr { return Cmp(OpEq, a, b) }

// Arith returns the arithmetic expression a <op> b.
func Arith(op Op, a, b *Expr) *Expr {
	switch op {
	case OpAdd, OpSub, OpMul, OpDiv:
	default:
		panic(fmt.Sprintf("Arith with non-arithmetic op %d", op))
	}
	return &Expr{Op: op, Args: []*Expr{a, b}}
}

// Not returns NOT a.
func Not(a *Expr) *Expr { return &Expr{Op: OpNot, Args: []*Expr{a}} }

// Like returns a LIKE pattern.
func Like(a, pattern *Expr) *Expr { return &Expr{Op: OpLike, Args: []*Expr{a, pattern}} }

// Agg returns an aggregate function reference; arg is nil for count(*).
func Agg(kind AggKind, arg *Expr) *Expr {
	e := &Expr{Op: OpAgg, Agg: kind}
	if arg != nil {
		e.Args = []*Expr{arg}
	}
	return e
}

// SubqueryRef returns a reference to scalar subquery idx.
func SubqueryRef(idx int) *Expr { return &Expr{Op: OpSubquery, Col: ColID(idx)} }

// HasSubquery reports whether e contains a scalar subquery reference.
func (e *Expr) HasSubquery() bool {
	if e == nil {
		return false
	}
	if e.Op == OpSubquery {
		return true
	}
	for _, a := range e.Args {
		if a.HasSubquery() {
			return true
		}
	}
	return false
}

// True is the constant TRUE predicate; a nil filter also means TRUE.
var True = Const(sqltypes.NewBool(true))

// False is the constant FALSE predicate.
var False = Const(sqltypes.NewBool(false))

// IsTrue reports whether e is the literal TRUE (or nil).
func IsTrue(e *Expr) bool {
	return e == nil || (e.Op == OpConst && e.Const.Kind() == sqltypes.KindBool && e.Const.Bool())
}

// IsFalse reports whether e is the literal FALSE.
func IsFalse(e *Expr) bool {
	return e != nil && e.Op == OpConst && e.Const.Kind() == sqltypes.KindBool && !e.Const.Bool()
}

// And returns the conjunction of the arguments, flattening nested ANDs and
// dropping TRUE operands. And() with no live operands returns TRUE.
func And(args ...*Expr) *Expr {
	flat := make([]*Expr, 0, len(args))
	for _, a := range args {
		switch {
		case IsTrue(a):
		case a.Op == OpAnd:
			flat = append(flat, a.Args...)
		default:
			flat = append(flat, a)
		}
	}
	switch len(flat) {
	case 0:
		return True
	case 1:
		return flat[0]
	}
	return &Expr{Op: OpAnd, Args: flat}
}

// Or returns the disjunction of the arguments, flattening nested ORs. A TRUE
// operand collapses the whole disjunction to TRUE. Or() with no live operands
// returns FALSE.
func Or(args ...*Expr) *Expr {
	flat := make([]*Expr, 0, len(args))
	for _, a := range args {
		switch {
		case IsTrue(a):
			return True
		case IsFalse(a):
		case a != nil && a.Op == OpOr:
			flat = append(flat, a.Args...)
		default:
			flat = append(flat, a)
		}
	}
	switch len(flat) {
	case 0:
		return False
	case 1:
		return flat[0]
	}
	return &Expr{Op: OpOr, Args: flat}
}

// Conjuncts splits e on top-level ANDs. TRUE yields an empty slice.
func Conjuncts(e *Expr) []*Expr {
	if IsTrue(e) {
		return nil
	}
	if e.Op != OpAnd {
		return []*Expr{e}
	}
	out := make([]*Expr, 0, len(e.Args))
	for _, a := range e.Args {
		out = append(out, Conjuncts(a)...)
	}
	return out
}

// Cols returns the set of columns referenced anywhere in e.
func (e *Expr) Cols() ColSet {
	var s ColSet
	e.collectCols(&s)
	return s
}

func (e *Expr) collectCols(s *ColSet) {
	if e == nil {
		return
	}
	if e.Op == OpCol {
		s.Add(e.Col)
	}
	for _, a := range e.Args {
		a.collectCols(s)
	}
}

// HasAgg reports whether e contains an aggregate function reference.
func (e *Expr) HasAgg() bool {
	if e == nil {
		return false
	}
	if e.Op == OpAgg {
		return true
	}
	for _, a := range e.Args {
		if a.HasAgg() {
			return true
		}
	}
	return false
}

// IsColEqCol reports whether e is an equality between two distinct columns,
// returning them when so. These conjuncts define equijoin edges.
func (e *Expr) IsColEqCol() (ColID, ColID, bool) {
	if e != nil && e.Op == OpEq && len(e.Args) == 2 &&
		e.Args[0].Op == OpCol && e.Args[1].Op == OpCol &&
		e.Args[0].Col != e.Args[1].Col {
		return e.Args[0].Col, e.Args[1].Col, true
	}
	return 0, 0, false
}

// Remap returns a copy of e with every column reference c replaced by m[c].
// Columns absent from m are kept unchanged.
func (e *Expr) Remap(m map[ColID]ColID) *Expr {
	if e == nil {
		return nil
	}
	if e.Op == OpCol {
		if to, ok := m[e.Col]; ok {
			return Col(to)
		}
		return e
	}
	if len(e.Args) == 0 {
		return e
	}
	args := make([]*Expr, len(e.Args))
	changed := false
	for i, a := range e.Args {
		args[i] = a.Remap(m)
		if args[i] != a {
			changed = true
		}
	}
	if !changed {
		return e
	}
	out := *e
	out.Args = args
	return &out
}

// Fingerprint returns a deterministic encoding of the expression, used for
// memo deduplication and predicate equality tests. Structurally identical
// expressions have equal fingerprints.
func (e *Expr) Fingerprint() string {
	var sb strings.Builder
	e.encode(&sb)
	return sb.String()
}

// encode appends without fmt: candidate generation fingerprints every
// predicate of every pairwise merge, so this is hot on large batches.
func (e *Expr) encode(sb *strings.Builder) {
	if e == nil {
		sb.WriteString("T")
		return
	}
	switch e.Op {
	case OpConst:
		sb.WriteByte('#')
		sb.WriteString(strconv.Itoa(int(e.Const.Kind())))
		sb.WriteByte(':')
		sb.WriteString(e.Const.String())
	case OpCol:
		sb.WriteByte('@')
		sb.WriteString(strconv.Itoa(int(e.Col)))
	case OpAgg:
		sb.WriteString(e.Agg.String())
		sb.WriteByte('(')
		for _, a := range e.Args {
			a.encode(sb)
		}
		sb.WriteByte(')')
	case OpSubquery:
		sb.WriteString("$sq")
		sb.WriteString(strconv.Itoa(int(e.Col)))
	default:
		sb.WriteString(strconv.Itoa(int(e.Op)))
		sb.WriteByte('(')
		for i, a := range e.Args {
			if i > 0 {
				sb.WriteByte(',')
			}
			a.encode(sb)
		}
		sb.WriteByte(')')
	}
}

// Equivalent reports whether a and b are structurally identical.
func Equivalent(a, b *Expr) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return IsTrue(a) && IsTrue(b)
	}
	return a.Fingerprint() == b.Fingerprint()
}
