package scalar

import (
	"reflect"
	"testing"
	"testing/quick"
)

func setFrom(bits []uint8) ColSet {
	var s ColSet
	for _, b := range bits {
		s.Add(ColID(b%100) + 1)
	}
	return s
}

func TestColSetBasics(t *testing.T) {
	s := MakeColSet(1, 65, 130)
	for _, c := range []ColID{1, 65, 130} {
		if !s.Contains(c) {
			t.Errorf("missing %d", c)
		}
	}
	if s.Contains(2) {
		t.Error("spurious member")
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	s.Remove(65)
	if s.Contains(65) || s.Len() != 2 {
		t.Error("Remove failed")
	}
	s.Remove(999) // removing a member beyond the bitmap is a no-op
	var empty ColSet
	if !empty.Empty() || s.Empty() {
		t.Error("Empty misbehaves")
	}
}

func TestColSetOrderedAndString(t *testing.T) {
	s := MakeColSet(7, 3, 100)
	if got := s.Ordered(); !reflect.DeepEqual(got, []ColID{3, 7, 100}) {
		t.Errorf("Ordered = %v", got)
	}
	if got := s.String(); got != "(3,7,100)" {
		t.Errorf("String = %q", got)
	}
}

func TestColSetAlgebra(t *testing.T) {
	a := MakeColSet(1, 2, 3)
	b := MakeColSet(3, 4)
	if got := a.Union(b).Ordered(); !reflect.DeepEqual(got, []ColID{1, 2, 3, 4}) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersection(b).Ordered(); !reflect.DeepEqual(got, []ColID{3}) {
		t.Errorf("Intersection = %v", got)
	}
	if got := a.Difference(b).Ordered(); !reflect.DeepEqual(got, []ColID{1, 2}) {
		t.Errorf("Difference = %v", got)
	}
	if !MakeColSet(1, 2).SubsetOf(a) || a.SubsetOf(b) {
		t.Error("SubsetOf misbehaves")
	}
	if !a.Intersects(b) || a.Intersects(MakeColSet(9)) {
		t.Error("Intersects misbehaves")
	}
	if !a.Equals(MakeColSet(3, 2, 1)) || a.Equals(b) {
		t.Error("Equals misbehaves")
	}
}

func TestColSetCopyIndependence(t *testing.T) {
	a := MakeColSet(1)
	c := a.Copy()
	c.Add(2)
	if a.Contains(2) {
		t.Error("Copy aliases the original")
	}
}

func TestColSetSingleCol(t *testing.T) {
	if MakeColSet(42).SingleCol() != 42 {
		t.Error("SingleCol wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("SingleCol on multi-element set must panic")
		}
	}()
	MakeColSet(1, 2).SingleCol()
}

func TestColSetUnionLaws(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := setFrom(xs), setFrom(ys)
		u := a.Union(b)
		// Union is an upper bound of both, and minimal.
		if !a.SubsetOf(u) || !b.SubsetOf(u) {
			return false
		}
		if u.Len() != a.Len()+b.Difference(a).Len() {
			return false
		}
		// Commutative.
		return u.Equals(b.Union(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestColSetDeMorgan(t *testing.T) {
	// A \ (B ∪ C) == (A \ B) ∩ (A \ C)
	f := func(xs, ys, zs []uint8) bool {
		a, b, c := setFrom(xs), setFrom(ys), setFrom(zs)
		left := a.Difference(b.Union(c))
		right := a.Difference(b).Intersection(a.Difference(c))
		return left.Equals(right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestSortColIDs(t *testing.T) {
	got := SortColIDs([]ColID{5, 1, 3})
	if !reflect.DeepEqual(got, []ColID{1, 3, 5}) {
		t.Errorf("SortColIDs = %v", got)
	}
}

func TestForEachAscending(t *testing.T) {
	s := MakeColSet(64, 1, 128, 63)
	var prev ColID = -1
	s.ForEach(func(c ColID) {
		if c <= prev {
			t.Errorf("ForEach not ascending: %d after %d", c, prev)
		}
		prev = c
	})
}
