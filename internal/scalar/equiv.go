package scalar

import "sort"

// EquivClasses maintains equivalence classes of columns induced by the
// column-equality conjuncts of a predicate (§4.1). Classes are the connected
// components of the "column a = column b" relation; they summarize the
// equijoins of a normalized SPJ expression.
type EquivClasses struct {
	parent map[ColID]ColID
}

// NewEquivClasses returns an empty set of classes.
func NewEquivClasses() *EquivClasses {
	return &EquivClasses{parent: make(map[ColID]ColID)}
}

// EquivFromPredicate builds equivalence classes from the col=col conjuncts
// of pred.
func EquivFromPredicate(pred *Expr) *EquivClasses {
	ec := NewEquivClasses()
	for _, c := range Conjuncts(pred) {
		if a, b, ok := c.IsColEqCol(); ok {
			ec.AddEquality(a, b)
		}
	}
	return ec
}

func (ec *EquivClasses) find(c ColID) ColID {
	p, ok := ec.parent[c]
	if !ok {
		ec.parent[c] = c
		return c
	}
	if p == c {
		return c
	}
	root := ec.find(p)
	ec.parent[c] = root
	return root
}

// AddEquality records that a and b are equal, merging their classes.
func (ec *EquivClasses) AddEquality(a, b ColID) {
	ra, rb := ec.find(a), ec.find(b)
	if ra != rb {
		if ra > rb {
			ra, rb = rb, ra
		}
		ec.parent[rb] = ra
	}
}

// Equal reports whether a and b are in the same class.
func (ec *EquivClasses) Equal(a, b ColID) bool {
	if _, ok := ec.parent[a]; !ok {
		return a == b
	}
	if _, ok := ec.parent[b]; !ok {
		return a == b
	}
	return ec.find(a) == ec.find(b)
}

// Classes returns every class with two or more members, each sorted, and the
// classes sorted by their smallest member. Singleton classes are omitted:
// they impose no equality.
func (ec *EquivClasses) Classes() [][]ColID {
	byRoot := make(map[ColID][]ColID)
	cols := make([]ColID, 0, len(ec.parent))
	for c := range ec.parent {
		cols = append(cols, c)
	}
	SortColIDs(cols)
	for _, c := range cols {
		r := ec.find(c)
		byRoot[r] = append(byRoot[r], c)
	}
	out := make([][]ColID, 0, len(byRoot))
	for _, class := range byRoot {
		if len(class) >= 2 {
			out = append(out, class)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// ClassOf returns the full class containing c (including c itself).
func (ec *EquivClasses) ClassOf(c ColID) []ColID {
	if _, ok := ec.parent[c]; !ok {
		return []ColID{c}
	}
	root := ec.find(c)
	var out []ColID
	for m := range ec.parent {
		if ec.find(m) == root {
			out = append(out, m)
		}
	}
	return SortColIDs(out)
}

// Intersect returns the intersection of two collections of equivalence
// classes in the natural way (§4.1): for every pair of classes, one from
// each side, their common members form a class of the result (when two or
// more members remain).
func Intersect(a, b *EquivClasses) *EquivClasses {
	out := NewEquivClasses()
	for _, ca := range a.Classes() {
		inA := MakeColSet(ca...)
		for _, cb := range b.Classes() {
			var common []ColID
			for _, c := range cb {
				if inA.Contains(c) {
					common = append(common, c)
				}
			}
			for i := 1; i < len(common); i++ {
				out.AddEquality(common[0], common[i])
			}
		}
	}
	return out
}

// EqualityConjuncts renders the classes back into a minimal set of col=col
// predicates (a spanning chain per class, smallest member first).
func (ec *EquivClasses) EqualityConjuncts() []*Expr {
	var out []*Expr
	for _, class := range ec.Classes() {
		for i := 1; i < len(class); i++ {
			out = append(out, Eq(Col(class[0]), Col(class[i])))
		}
	}
	return out
}
