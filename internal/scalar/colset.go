// Package scalar implements scalar expression trees: column references,
// constants, comparisons, boolean connectives, arithmetic, and aggregate
// function references. It also provides the supporting machinery the
// optimizer needs around predicates — conjunct splitting, equivalence
// classes of equated columns (§4.1 of the paper), and deterministic
// expression fingerprints for memo deduplication.
package scalar

import (
	"math/bits"
	"sort"
	"strconv"
	"strings"
)

// ColID identifies one column of one table instance within a single query's
// metadata. IDs start at 1; 0 is "no column".
type ColID int32

// ColSet is a set of ColIDs backed by a bitmap.
type ColSet struct {
	words []uint64
}

// MakeColSet returns a set containing the given columns.
func MakeColSet(cols ...ColID) ColSet {
	var s ColSet
	for _, c := range cols {
		s.Add(c)
	}
	return s
}

// Add inserts c into the set.
func (s *ColSet) Add(c ColID) {
	w := int(c) / 64
	for len(s.words) <= w {
		s.words = append(s.words, 0)
	}
	s.words[w] |= 1 << (uint(c) % 64)
}

// Remove deletes c from the set.
func (s *ColSet) Remove(c ColID) {
	w := int(c) / 64
	if w < len(s.words) {
		s.words[w] &^= 1 << (uint(c) % 64)
	}
}

// Contains reports whether c is in the set.
func (s ColSet) Contains(c ColID) bool {
	w := int(c) / 64
	return w < len(s.words) && s.words[w]&(1<<(uint(c)%64)) != 0
}

// Empty reports whether the set has no members.
func (s ColSet) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Len returns the number of members.
func (s ColSet) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Copy returns an independent copy of the set.
func (s ColSet) Copy() ColSet {
	out := ColSet{words: make([]uint64, len(s.words))}
	copy(out.words, s.words)
	return out
}

// UnionWith adds every member of other to s.
func (s *ColSet) UnionWith(other ColSet) {
	for len(s.words) < len(other.words) {
		s.words = append(s.words, 0)
	}
	for i, w := range other.words {
		s.words[i] |= w
	}
}

// Union returns the union of s and other as a new set.
func (s ColSet) Union(other ColSet) ColSet {
	out := s.Copy()
	out.UnionWith(other)
	return out
}

// IntersectionWith removes members of s not in other.
func (s *ColSet) IntersectionWith(other ColSet) {
	for i := range s.words {
		if i < len(other.words) {
			s.words[i] &= other.words[i]
		} else {
			s.words[i] = 0
		}
	}
}

// Intersection returns the intersection as a new set.
func (s ColSet) Intersection(other ColSet) ColSet {
	out := s.Copy()
	out.IntersectionWith(other)
	return out
}

// Difference returns s minus other as a new set.
func (s ColSet) Difference(other ColSet) ColSet {
	out := s.Copy()
	for i := range out.words {
		if i < len(other.words) {
			out.words[i] &^= other.words[i]
		}
	}
	return out
}

// SubsetOf reports whether every member of s is in other.
func (s ColSet) SubsetOf(other ColSet) bool {
	for i, w := range s.words {
		var o uint64
		if i < len(other.words) {
			o = other.words[i]
		}
		if w&^o != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s and other share any member.
func (s ColSet) Intersects(other ColSet) bool {
	n := len(s.words)
	if len(other.words) < n {
		n = len(other.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&other.words[i] != 0 {
			return true
		}
	}
	return false
}

// Equals reports whether the two sets have identical members.
func (s ColSet) Equals(other ColSet) bool {
	return s.SubsetOf(other) && other.SubsetOf(s)
}

// ForEach calls fn for each member in ascending order.
func (s ColSet) ForEach(fn func(ColID)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(ColID(wi*64 + b))
			w &= w - 1
		}
	}
}

// Ordered returns the members in ascending order.
func (s ColSet) Ordered() []ColID {
	out := make([]ColID, 0, s.Len())
	s.ForEach(func(c ColID) { out = append(out, c) })
	return out
}

// SingleCol returns the only member of a one-element set; it panics otherwise.
func (s ColSet) SingleCol() ColID {
	if s.Len() != 1 {
		panic("SingleCol on set of size != 1")
	}
	var out ColID
	s.ForEach(func(c ColID) { out = c })
	return out
}

// String renders the set as "(1,4,7)".
func (s ColSet) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	first := true
	s.ForEach(func(c ColID) {
		if !first {
			sb.WriteByte(',')
		}
		first = false
		sb.WriteString(strconv.Itoa(int(c)))
	})
	sb.WriteByte(')')
	return sb.String()
}

// SortColIDs sorts a ColID slice in place and returns it.
func SortColIDs(cols []ColID) []ColID {
	sort.Slice(cols, func(i, j int) bool { return cols[i] < cols[j] })
	return cols
}
