package scalar

import (
	"fmt"

	"repro/internal/sqltypes"
)

// EvalFn is a compiled scalar expression: it evaluates against a physical row.
type EvalFn func(row sqltypes.Row) sqltypes.Datum

// Compile resolves column references against a row layout and returns an
// evaluator. The layout maps ColID to the column's position in the rows that
// will be passed to the evaluator. Aggregate references cannot be compiled;
// normalization must hoist them first.
//
// Comparison and arithmetic follow SQL semantics: any NULL operand yields
// NULL, and AND/OR use three-valued logic. A filter treats a NULL predicate
// result as false.
func Compile(e *Expr, layout map[ColID]int) (EvalFn, error) {
	if e == nil {
		return func(sqltypes.Row) sqltypes.Datum { return sqltypes.NewBool(true) }, nil
	}
	switch e.Op {
	case OpConst:
		d := e.Const
		return func(sqltypes.Row) sqltypes.Datum { return d }, nil

	case OpCol:
		idx, ok := layout[e.Col]
		if !ok {
			return nil, fmt.Errorf("column @%d not present in row layout", e.Col)
		}
		return func(r sqltypes.Row) sqltypes.Datum { return r[idx] }, nil

	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		l, err := Compile(e.Args[0], layout)
		if err != nil {
			return nil, err
		}
		r, err := Compile(e.Args[1], layout)
		if err != nil {
			return nil, err
		}
		op := e.Op
		return func(row sqltypes.Row) sqltypes.Datum {
			a, b := l(row), r(row)
			if a.IsNull() || b.IsNull() {
				return sqltypes.Null
			}
			c := sqltypes.Compare(a, b)
			var v bool
			switch op {
			case OpEq:
				v = c == 0
			case OpNe:
				v = c != 0
			case OpLt:
				v = c < 0
			case OpLe:
				v = c <= 0
			case OpGt:
				v = c > 0
			case OpGe:
				v = c >= 0
			}
			return sqltypes.NewBool(v)
		}, nil

	case OpAnd:
		fns, err := compileAll(e.Args, layout)
		if err != nil {
			return nil, err
		}
		return func(row sqltypes.Row) sqltypes.Datum {
			sawNull := false
			for _, f := range fns {
				d := f(row)
				switch {
				case d.IsNull():
					sawNull = true
				case !d.Bool():
					return sqltypes.NewBool(false)
				}
			}
			if sawNull {
				return sqltypes.Null
			}
			return sqltypes.NewBool(true)
		}, nil

	case OpOr:
		fns, err := compileAll(e.Args, layout)
		if err != nil {
			return nil, err
		}
		return func(row sqltypes.Row) sqltypes.Datum {
			sawNull := false
			for _, f := range fns {
				d := f(row)
				switch {
				case d.IsNull():
					sawNull = true
				case d.Bool():
					return sqltypes.NewBool(true)
				}
			}
			if sawNull {
				return sqltypes.Null
			}
			return sqltypes.NewBool(false)
		}, nil

	case OpNot:
		f, err := Compile(e.Args[0], layout)
		if err != nil {
			return nil, err
		}
		return func(row sqltypes.Row) sqltypes.Datum {
			d := f(row)
			if d.IsNull() {
				return sqltypes.Null
			}
			return sqltypes.NewBool(!d.Bool())
		}, nil

	case OpAdd, OpSub, OpMul, OpDiv:
		l, err := Compile(e.Args[0], layout)
		if err != nil {
			return nil, err
		}
		r, err := Compile(e.Args[1], layout)
		if err != nil {
			return nil, err
		}
		op := e.Op
		return func(row sqltypes.Row) sqltypes.Datum {
			a, b := l(row), r(row)
			return EvalArith(op, a, b)
		}, nil

	case OpLike:
		l, err := Compile(e.Args[0], layout)
		if err != nil {
			return nil, err
		}
		r, err := Compile(e.Args[1], layout)
		if err != nil {
			return nil, err
		}
		return func(row sqltypes.Row) sqltypes.Datum {
			a, b := l(row), r(row)
			if a.IsNull() || b.IsNull() {
				return sqltypes.Null
			}
			if a.Kind() != sqltypes.KindString || b.Kind() != sqltypes.KindString {
				return sqltypes.Null
			}
			return sqltypes.NewBool(LikeMatch(a.Str(), b.Str()))
		}, nil

	case OpAgg:
		return nil, fmt.Errorf("cannot compile aggregate %s outside a GroupBy", e.Agg)

	case OpSubquery:
		return nil, fmt.Errorf("subquery reference $sq%d not substituted before compilation", e.Col)

	default:
		return nil, fmt.Errorf("cannot compile scalar op %d", e.Op)
	}
}

func compileAll(args []*Expr, layout map[ColID]int) ([]EvalFn, error) {
	fns := make([]EvalFn, len(args))
	for i, a := range args {
		f, err := Compile(a, layout)
		if err != nil {
			return nil, err
		}
		fns[i] = f
	}
	return fns, nil
}

// EvalArith applies an arithmetic operator to two datums with SQL NULL
// propagation. Integer operands stay integral except for division, which
// always produces a DOUBLE (and NULL on division by zero).
func EvalArith(op Op, a, b sqltypes.Datum) sqltypes.Datum {
	if a.IsNull() || b.IsNull() {
		return sqltypes.Null
	}
	if op == OpDiv {
		d := b.Float()
		if d == 0 {
			return sqltypes.Null
		}
		return sqltypes.NewFloat(a.Float() / d)
	}
	if a.Kind() == sqltypes.KindInt && b.Kind() == sqltypes.KindInt {
		x, y := a.Int(), b.Int()
		switch op {
		case OpAdd:
			return sqltypes.NewInt(x + y)
		case OpSub:
			return sqltypes.NewInt(x - y)
		case OpMul:
			return sqltypes.NewInt(x * y)
		}
	}
	x, y := a.Float(), b.Float()
	switch op {
	case OpAdd:
		return sqltypes.NewFloat(x + y)
	case OpSub:
		return sqltypes.NewFloat(x - y)
	case OpMul:
		return sqltypes.NewFloat(x * y)
	}
	panic(fmt.Sprintf("EvalArith with op %d", op))
}

// EvalPredicate compiles and evaluates e as a filter: NULL counts as false.
// It is a convenience for tests; execution paths compile once and reuse.
func EvalPredicate(e *Expr, layout map[ColID]int, row sqltypes.Row) (bool, error) {
	f, err := Compile(e, layout)
	if err != nil {
		return false, err
	}
	d := f(row)
	return !d.IsNull() && d.Bool(), nil
}

// LikeMatch implements SQL LIKE: '%' matches any sequence, '_' any single
// character. Matching is case-sensitive, by iterative backtracking on '%'.
// Exported so the executor's dictionary-mask kernels can evaluate a LIKE
// once per distinct string instead of once per row.
func LikeMatch(s, pattern string) bool {
	si, pi := 0, 0
	star, ss := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star, ss = pi, si
			pi++
		case star >= 0:
			ss++
			si = ss
			pi = star + 1
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}
