package scalar

import (
	"reflect"
	"testing"
	"testing/quick"
)

func classesOf(ec *EquivClasses) [][]ColID { return ec.Classes() }

func TestEquivBasics(t *testing.T) {
	ec := NewEquivClasses()
	ec.AddEquality(1, 2)
	ec.AddEquality(2, 3)
	ec.AddEquality(5, 6)
	if !ec.Equal(1, 3) {
		t.Error("1 and 3 must be equal transitively")
	}
	if ec.Equal(1, 5) {
		t.Error("1 and 5 are in different classes")
	}
	if !ec.Equal(7, 7) {
		t.Error("a column equals itself even if never added")
	}
	classes := classesOf(ec)
	want := [][]ColID{{1, 2, 3}, {5, 6}}
	if !reflect.DeepEqual(classes, want) {
		t.Errorf("Classes = %v, want %v", classes, want)
	}
}

func TestEquivFromPredicate(t *testing.T) {
	pred := And(
		Eq(Col(1), Col(2)),
		Cmp(OpGt, Col(3), ConstInt(0)), // not an equality: ignored
		Eq(Col(2), Col(4)),
		Eq(Col(5), ConstInt(7)), // col = const: ignored
	)
	ec := EquivFromPredicate(pred)
	if !ec.Equal(1, 4) {
		t.Error("1 = 2 = 4 must be derived")
	}
	if ec.Equal(3, 5) {
		t.Error("non-equality conjuncts must not merge columns")
	}
}

// TestIntersectPaperExample2 is the paper's Example 2 verbatim:
// {{R.a,S.d},{R.b,S.e}} ∩ {{R.a,S.d},{R.c,S.f}} = {{R.a,S.d}}, and the
// second pair of expressions has an empty intersection.
func TestIntersectPaperExample2(t *testing.T) {
	// Columns: R.a=1 R.b=2 R.c=3 S.d=4 S.e=5 S.f=6.
	e1 := NewEquivClasses() // R.a=S.d and R.b=S.e
	e1.AddEquality(1, 4)
	e1.AddEquality(2, 5)
	e2 := NewEquivClasses() // R.a=S.d and R.c=S.f
	e2.AddEquality(1, 4)
	e2.AddEquality(3, 6)
	inter := Intersect(e1, e2)
	want := [][]ColID{{1, 4}}
	if got := inter.Classes(); !reflect.DeepEqual(got, want) {
		t.Errorf("intersection = %v, want %v", got, want)
	}

	e3 := NewEquivClasses() // R.c=S.f only
	e3.AddEquality(3, 6)
	inter2 := Intersect(e1, e3)
	if got := inter2.Classes(); len(got) != 0 {
		t.Errorf("disjoint equivalences must intersect empty, got %v", got)
	}
}

func TestIntersectSplitsClasses(t *testing.T) {
	// {1,2,3} ∩ ({1,2} {3,4}) = {1,2} (3 falls out of the pairing with 1,2;
	// the {3} overlap is a singleton and disappears).
	a := NewEquivClasses()
	a.AddEquality(1, 2)
	a.AddEquality(2, 3)
	b := NewEquivClasses()
	b.AddEquality(1, 2)
	b.AddEquality(3, 4)
	got := Intersect(a, b).Classes()
	want := [][]ColID{{1, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("intersection = %v, want %v", got, want)
	}
}

func TestClassOf(t *testing.T) {
	ec := NewEquivClasses()
	ec.AddEquality(2, 7)
	ec.AddEquality(7, 4)
	if got := ec.ClassOf(7); !reflect.DeepEqual(got, []ColID{2, 4, 7}) {
		t.Errorf("ClassOf(7) = %v", got)
	}
	if got := ec.ClassOf(99); !reflect.DeepEqual(got, []ColID{99}) {
		t.Errorf("ClassOf(unknown) = %v", got)
	}
}

func TestEqualityConjuncts(t *testing.T) {
	ec := NewEquivClasses()
	ec.AddEquality(3, 1)
	ec.AddEquality(1, 5)
	conj := ec.EqualityConjuncts()
	if len(conj) != 2 {
		t.Fatalf("conjuncts = %d, want spanning chain of 2", len(conj))
	}
	// Rebuilding classes from the conjuncts gives back the same classes.
	round := NewEquivClasses()
	for _, c := range conj {
		a, b, ok := c.IsColEqCol()
		if !ok {
			t.Fatalf("non-equality conjunct %s", c.Fingerprint())
		}
		round.AddEquality(a, b)
	}
	if !reflect.DeepEqual(round.Classes(), ec.Classes()) {
		t.Errorf("round trip changed classes: %v vs %v", round.Classes(), ec.Classes())
	}
}

// TestIntersectIsCommutative checks A∩B == B∩A on random inputs.
func TestIntersectIsCommutative(t *testing.T) {
	build := func(pairs []uint16) *EquivClasses {
		ec := NewEquivClasses()
		for _, p := range pairs {
			a := ColID(p%8) + 1
			b := ColID((p/8)%8) + 1
			if a != b {
				ec.AddEquality(a, b)
			}
		}
		return ec
	}
	f := func(ps1, ps2 []uint16) bool {
		if len(ps1) > 10 {
			ps1 = ps1[:10]
		}
		if len(ps2) > 10 {
			ps2 = ps2[:10]
		}
		a, b := build(ps1), build(ps2)
		return reflect.DeepEqual(Intersect(a, b).Classes(), Intersect(b, a).Classes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestIntersectIsWeakening checks that every equality in A∩B holds in both
// A and B.
func TestIntersectIsWeakening(t *testing.T) {
	build := func(pairs []uint16) *EquivClasses {
		ec := NewEquivClasses()
		for _, p := range pairs {
			a := ColID(p%8) + 1
			b := ColID((p/8)%8) + 1
			if a != b {
				ec.AddEquality(a, b)
			}
		}
		return ec
	}
	f := func(ps1, ps2 []uint16) bool {
		if len(ps1) > 10 {
			ps1 = ps1[:10]
		}
		if len(ps2) > 10 {
			ps2 = ps2[:10]
		}
		a, b := build(ps1), build(ps2)
		inter := Intersect(a, b)
		for _, class := range inter.Classes() {
			for i := 1; i < len(class); i++ {
				if !a.Equal(class[0], class[i]) || !b.Equal(class[0], class[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
