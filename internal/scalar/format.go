package scalar

import (
	"fmt"
	"strings"
)

// ColNamer resolves a ColID to a human-readable name for plan display.
type ColNamer interface {
	ColName(ColID) string
}

// FuncNamer adapts a func to ColNamer.
type FuncNamer func(ColID) string

// ColName implements ColNamer.
func (f FuncNamer) ColName(c ColID) string { return f(c) }

// Format renders the expression using the namer for column references; a nil
// namer renders columns as "@N".
func Format(e *Expr, n ColNamer) string {
	var sb strings.Builder
	format(e, n, &sb, 0)
	return sb.String()
}

func opToken(op Op) string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpLike:
		return "LIKE"
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	default:
		return fmt.Sprintf("op%d", op)
	}
}

// precedence groups: higher binds tighter.
func prec(op Op) int {
	switch op {
	case OpOr:
		return 1
	case OpAnd:
		return 2
	case OpNot:
		return 3
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpLike:
		return 4
	case OpAdd, OpSub:
		return 5
	case OpMul, OpDiv:
		return 6
	default:
		return 7
	}
}

func format(e *Expr, n ColNamer, sb *strings.Builder, outer int) {
	if e == nil {
		sb.WriteString("true")
		return
	}
	p := prec(e.Op)
	paren := p < outer
	if paren {
		sb.WriteByte('(')
	}
	switch e.Op {
	case OpConst:
		sb.WriteString(e.Const.SQLLiteral())
	case OpCol:
		if n != nil {
			sb.WriteString(n.ColName(e.Col))
		} else {
			fmt.Fprintf(sb, "@%d", e.Col)
		}
	case OpAgg:
		if e.Agg == AggCountStar {
			sb.WriteString("count(*)")
		} else {
			sb.WriteString(e.Agg.String())
			sb.WriteByte('(')
			format(e.Args[0], n, sb, 0)
			sb.WriteByte(')')
		}
	case OpSubquery:
		fmt.Fprintf(sb, "$subquery(%d)", e.Col)
	case OpNot:
		sb.WriteString("NOT ")
		format(e.Args[0], n, sb, p)
	case OpAnd, OpOr:
		for i, a := range e.Args {
			if i > 0 {
				sb.WriteByte(' ')
				sb.WriteString(opToken(e.Op))
				sb.WriteByte(' ')
			}
			format(a, n, sb, p+1)
		}
	default:
		format(e.Args[0], n, sb, p)
		sb.WriteByte(' ')
		sb.WriteString(opToken(e.Op))
		sb.WriteByte(' ')
		format(e.Args[1], n, sb, p+1)
	}
	if paren {
		sb.WriteByte(')')
	}
}
