package scalar

import (
	"strings"
	"testing"

	"repro/internal/sqltypes"
)

func TestAndFlattening(t *testing.T) {
	a, b, c := Col(1), Col(2), Col(3)
	e := And(And(a, b), c)
	if e.Op != OpAnd || len(e.Args) != 3 {
		t.Fatalf("nested AND not flattened: %s", e.Fingerprint())
	}
	if got := And(); !IsTrue(got) {
		t.Error("empty AND must be TRUE")
	}
	if got := And(True, a); got != a {
		t.Error("AND with TRUE must drop the TRUE")
	}
	if got := And(a); got != a {
		t.Error("single-arg AND must return the arg")
	}
}

func TestOrFlattening(t *testing.T) {
	a, b, c := Col(1), Col(2), Col(3)
	e := Or(Or(a, b), c)
	if e.Op != OpOr || len(e.Args) != 3 {
		t.Fatalf("nested OR not flattened")
	}
	if got := Or(); !IsFalse(got) {
		t.Error("empty OR must be FALSE")
	}
	if got := Or(a, True); !IsTrue(got) {
		t.Error("OR with TRUE must collapse to TRUE")
	}
	if got := Or(False, a); got != a {
		t.Error("OR must drop FALSE operands")
	}
}

func TestConjuncts(t *testing.T) {
	a, b, c := Col(1), Col(2), Col(3)
	e := And(a, And(b, c))
	cs := Conjuncts(e)
	if len(cs) != 3 {
		t.Fatalf("Conjuncts = %d, want 3", len(cs))
	}
	if len(Conjuncts(nil)) != 0 || len(Conjuncts(True)) != 0 {
		t.Error("TRUE has no conjuncts")
	}
	if got := Conjuncts(a); len(got) != 1 || got[0] != a {
		t.Error("single predicate is its own conjunct")
	}
}

func TestCmpPanicsOnNonComparison(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Cmp(OpAdd, ...) must panic")
		}
	}()
	Cmp(OpAdd, Col(1), Col(2))
}

func TestArithPanicsOnNonArith(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Arith(OpEq, ...) must panic")
		}
	}()
	Arith(OpEq, Col(1), Col(2))
}

func TestCols(t *testing.T) {
	e := And(Eq(Col(1), Col(2)), Cmp(OpGt, Col(3), ConstInt(5)))
	cols := e.Cols()
	for _, c := range []ColID{1, 2, 3} {
		if !cols.Contains(c) {
			t.Errorf("missing column %d", c)
		}
	}
	if cols.Len() != 3 {
		t.Errorf("Cols len = %d", cols.Len())
	}
}

func TestHasAggAndSubquery(t *testing.T) {
	agg := Agg(AggSum, Col(1))
	if !agg.HasAgg() {
		t.Error("sum(col) has an aggregate")
	}
	e := Arith(OpDiv, agg, ConstInt(25))
	if !e.HasAgg() {
		t.Error("aggregate must be found in nested expressions")
	}
	if e.HasSubquery() {
		t.Error("no subquery here")
	}
	sq := Cmp(OpGt, Col(1), SubqueryRef(0))
	if !sq.HasSubquery() {
		t.Error("subquery reference not detected")
	}
	if Col(1).HasAgg() {
		t.Error("plain column has no aggregate")
	}
}

func TestIsColEqCol(t *testing.T) {
	a, b, ok := Eq(Col(1), Col(2)).IsColEqCol()
	if !ok || a != 1 || b != 2 {
		t.Errorf("IsColEqCol = %d,%d,%v", a, b, ok)
	}
	if _, _, ok := Eq(Col(1), Col(1)).IsColEqCol(); ok {
		t.Error("c = c is not an equijoin edge")
	}
	if _, _, ok := Eq(Col(1), ConstInt(5)).IsColEqCol(); ok {
		t.Error("col = const is not col = col")
	}
	if _, _, ok := Cmp(OpLt, Col(1), Col(2)).IsColEqCol(); ok {
		t.Error("col < col is not an equality")
	}
}

func TestRemap(t *testing.T) {
	e := And(Eq(Col(1), Col(2)), Cmp(OpGt, Col(3), ConstInt(0)))
	m := map[ColID]ColID{1: 10, 3: 30}
	r := e.Remap(m)
	cols := r.Cols()
	if !cols.Contains(10) || !cols.Contains(2) || !cols.Contains(30) || cols.Contains(1) {
		t.Errorf("Remap produced %s", cols)
	}
	// Original untouched.
	if !e.Cols().Contains(1) {
		t.Error("Remap mutated the original")
	}
	// Identity remap returns the same node.
	if got := e.Remap(map[ColID]ColID{}); got != e {
		t.Error("no-op remap should return the receiver")
	}
}

func TestFingerprintEquality(t *testing.T) {
	a := And(Eq(Col(1), Col(2)), Cmp(OpLt, Col(3), ConstInt(5)))
	b := And(Eq(Col(1), Col(2)), Cmp(OpLt, Col(3), ConstInt(5)))
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("structurally identical expressions must share fingerprints")
	}
	c := And(Eq(Col(1), Col(2)), Cmp(OpLt, Col(3), ConstInt(6)))
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different constants must fingerprint differently")
	}
	d := And(Eq(Col(2), Col(1)), Cmp(OpLt, Col(3), ConstInt(5)))
	if a.Fingerprint() == d.Fingerprint() {
		t.Error("argument order is significant in fingerprints")
	}
	// Distinguish string "5" from int 5.
	if ConstString("5").Fingerprint() == ConstInt(5).Fingerprint() {
		t.Error("typed constants must fingerprint by kind")
	}
}

func TestEquivalent(t *testing.T) {
	if !Equivalent(nil, True) {
		t.Error("nil and TRUE are equivalent predicates")
	}
	if !Equivalent(Col(1), Col(1)) {
		t.Error("identical columns are equivalent")
	}
	if Equivalent(Col(1), Col(2)) {
		t.Error("different columns are not equivalent")
	}
}

func TestAggKindString(t *testing.T) {
	if AggSum.String() != "sum" || AggCountStar.String() != "count(*)" || AggAvg.String() != "avg" {
		t.Error("aggregate names changed")
	}
}

func TestFormatPrecedence(t *testing.T) {
	namer := FuncNamer(func(c ColID) string { return "c" + string(rune('0'+c)) })
	e := Or(And(Eq(Col(1), ConstInt(1)), Eq(Col(2), ConstInt(2))), Eq(Col(3), ConstInt(3)))
	got := Format(e, namer)
	want := "c1 = 1 AND c2 = 2 OR c3 = 3"
	if got != want {
		t.Errorf("Format = %q, want %q", got, want)
	}
	// AND inside OR needs no parens; OR inside AND does.
	e2 := And(Or(Eq(Col(1), ConstInt(1)), Eq(Col(2), ConstInt(2))), Eq(Col(3), ConstInt(3)))
	got2 := Format(e2, namer)
	if !strings.Contains(got2, "(c1 = 1 OR c2 = 2)") {
		t.Errorf("OR under AND must be parenthesized: %q", got2)
	}
	// Arithmetic precedence.
	e3 := Arith(OpMul, Arith(OpAdd, Col(1), Col(2)), Col(3))
	if got := Format(e3, namer); got != "(c1 + c2) * c3" {
		t.Errorf("arith format = %q", got)
	}
}

func TestFormatNilIsTrue(t *testing.T) {
	if Format(nil, nil) != "true" {
		t.Error("nil predicate formats as true")
	}
}

func TestIsTrueIsFalse(t *testing.T) {
	if !IsTrue(nil) || !IsTrue(True) || IsTrue(False) {
		t.Error("IsTrue misbehaves")
	}
	if !IsFalse(False) || IsFalse(True) || IsFalse(nil) {
		t.Error("IsFalse misbehaves")
	}
	if IsTrue(Const(sqltypes.NewInt(1))) {
		t.Error("non-boolean constant is not TRUE")
	}
}

func TestRemapRoundTrip(t *testing.T) {
	e := And(Eq(Col(1), Col(2)), Cmp(OpGt, Col(3), ConstInt(5)), Like(Col(4), ConstString("a%")))
	fwd := map[ColID]ColID{1: 11, 2: 12, 3: 13, 4: 14}
	back := map[ColID]ColID{11: 1, 12: 2, 13: 3, 14: 4}
	round := e.Remap(fwd).Remap(back)
	if round.Fingerprint() != e.Fingerprint() {
		t.Errorf("remap round trip changed the expression:\n%s\n%s",
			e.Fingerprint(), round.Fingerprint())
	}
}
