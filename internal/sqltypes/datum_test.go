package sqltypes

import (
	"hash/maphash"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "NULL",
		KindBool:   "BOOLEAN",
		KindInt:    "BIGINT",
		KindFloat:  "DOUBLE",
		KindString: "VARCHAR",
		KindDate:   "DATE",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind string %q", got)
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if d := NewInt(42); d.Kind() != KindInt || d.Int() != 42 {
		t.Errorf("NewInt: %v", d)
	}
	if d := NewFloat(2.5); d.Kind() != KindFloat || d.Float() != 2.5 {
		t.Errorf("NewFloat: %v", d)
	}
	if d := NewString("abc"); d.Kind() != KindString || d.Str() != "abc" {
		t.Errorf("NewString: %v", d)
	}
	if d := NewBool(true); d.Kind() != KindBool || !d.Bool() {
		t.Errorf("NewBool(true): %v", d)
	}
	if d := NewBool(false); d.Bool() {
		t.Errorf("NewBool(false) should be false")
	}
	if d := NewDate(100); d.Kind() != KindDate || d.Days() != 100 {
		t.Errorf("NewDate: %v", d)
	}
	if !Null.IsNull() || Null.Kind() != KindNull {
		t.Errorf("Null misbehaves: %v", Null)
	}
	var zero Datum
	if !zero.IsNull() {
		t.Error("zero Datum must be NULL")
	}
}

func TestAccessorPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("Int on string", func() { NewString("x").Int() })
	expectPanic("Str on int", func() { NewInt(1).Str() })
	expectPanic("Bool on int", func() { NewInt(1).Bool() })
	expectPanic("Days on int", func() { NewInt(1).Days() })
	expectPanic("Float on string", func() { NewString("x").Float() })
}

func TestFloatWidening(t *testing.T) {
	if got := NewInt(3).Float(); got != 3.0 {
		t.Errorf("int widening = %v", got)
	}
	if got := NewDate(5).Float(); got != 5.0 {
		t.Errorf("date widening = %v", got)
	}
	if got := NewBool(true).Float(); got != 1.0 {
		t.Errorf("bool widening = %v", got)
	}
}

func TestParseDate(t *testing.T) {
	d, err := ParseDate("1970-01-02")
	if err != nil {
		t.Fatal(err)
	}
	if d.Days() != 1 {
		t.Errorf("1970-01-02 = day %d, want 1", d.Days())
	}
	if d.String() != "1970-01-02" {
		t.Errorf("round trip = %q", d.String())
	}
	d2 := MustParseDate("1996-07-01")
	if d2.String() != "1996-07-01" {
		t.Errorf("1996-07-01 round trip = %q", d2.String())
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Error("expected error for invalid date")
	}
	if _, err := ParseDate("1996-13-01"); err == nil {
		t.Error("expected error for month 13")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustParseDate did not panic on bad input")
		}
	}()
	MustParseDate("bogus")
}

func TestDateOrderingMatchesCalendar(t *testing.T) {
	early := MustParseDate("1992-01-01")
	late := MustParseDate("1998-08-02")
	if Compare(early, late) >= 0 {
		t.Error("1992 should sort before 1998")
	}
}

func TestCompareBasics(t *testing.T) {
	cases := []struct {
		a, b Datum
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewFloat(1.5), NewFloat(2.5), -1},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{NewBool(false), NewBool(true), -1},
		{Null, NewInt(0), -1},
		{NewInt(0), Null, 1},
		{Null, Null, 0},
		// Cross-kind numeric comparison.
		{NewInt(2), NewFloat(2.0), 0},
		{NewInt(2), NewFloat(2.5), -1},
		{NewFloat(3.0), NewInt(2), 1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareNaN(t *testing.T) {
	nan := NewFloat(math.NaN())
	if Compare(nan, nan) != 0 {
		t.Error("NaN must equal NaN for a total order")
	}
	if Compare(nan, NewFloat(0)) != -1 {
		t.Error("NaN must sort before numbers")
	}
	if Compare(NewFloat(0), nan) != 1 {
		t.Error("numbers must sort after NaN")
	}
}

// randomDatum maps quick-generated inputs onto a datum.
func randomDatum(kind uint8, i int64, f float64, s string) Datum {
	switch kind % 6 {
	case 0:
		return Null
	case 1:
		return NewBool(i%2 == 0)
	case 2:
		return NewInt(i % 1000)
	case 3:
		return NewFloat(float64(int(f*100) % 1000)) // avoid NaN/Inf, force collisions
	case 4:
		if len(s) > 4 {
			s = s[:4]
		}
		return NewString(s)
	default:
		return NewDate(i % 1000)
	}
}

func TestCompareIsAntisymmetric(t *testing.T) {
	f := func(k1 uint8, i1 int64, f1 float64, s1 string, k2 uint8, i2 int64, f2 float64, s2 string) bool {
		a := randomDatum(k1, i1, f1, s1)
		b := randomDatum(k2, i2, f2, s2)
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCompareIsTransitiveOnSamples(t *testing.T) {
	f := func(k1 uint8, i1 int64, k2 uint8, i2 int64, k3 uint8, i3 int64) bool {
		a := randomDatum(k1, i1, 0.5, "aa")
		b := randomDatum(k2, i2, 0.25, "bb")
		c := randomDatum(k3, i3, 0.75, "cc")
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 {
			return Compare(a, c) <= 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestEqualDatumsHashEqually(t *testing.T) {
	seed := maphash.MakeSeed()
	hash := func(d Datum) uint64 {
		var h maphash.Hash
		h.SetSeed(seed)
		d.HashInto(&h)
		return h.Sum64()
	}
	f := func(k1 uint8, i1 int64, f1 float64, s1 string, k2 uint8, i2 int64, f2 float64, s2 string) bool {
		a := randomDatum(k1, i1, f1, s1)
		b := randomDatum(k2, i2, f2, s2)
		if Compare(a, b) == 0 {
			return hash(a) == hash(b)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
	// The critical cross-kind case explicitly:
	if hash(NewInt(7)) != hash(NewFloat(7.0)) {
		t.Error("numerically equal int and float must hash equally")
	}
}

func TestStringFormatting(t *testing.T) {
	cases := []struct {
		d    Datum
		want string
	}{
		{Null, "NULL"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{NewInt(-5), "-5"},
		{NewFloat(2.5), "2.5"},
		{NewFloat(276985153.15), "276985153.15"},
		{NewString("hi"), "hi"},
		{MustParseDate("1996-07-01"), "1996-07-01"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.d.Kind(), got, c.want)
		}
	}
	if got := NewFloat(1e20).String(); !strings.Contains(got, "e+") {
		t.Errorf("huge float should use scientific notation, got %q", got)
	}
}

func TestSQLLiteral(t *testing.T) {
	if got := NewString("x").SQLLiteral(); got != "'x'" {
		t.Errorf("string literal = %q", got)
	}
	if got := MustParseDate("1996-07-01").SQLLiteral(); got != "'1996-07-01'" {
		t.Errorf("date literal = %q", got)
	}
	if got := NewInt(3).SQLLiteral(); got != "3" {
		t.Errorf("int literal = %q", got)
	}
}

func TestEncodedSize(t *testing.T) {
	if Null.EncodedSize() != 1 {
		t.Error("null size")
	}
	if NewInt(1).EncodedSize() != 8 {
		t.Error("int size")
	}
	if got := NewString("abcd").EncodedSize(); got != 6 {
		t.Errorf("string size = %d, want 6", got)
	}
}

func TestKindSize(t *testing.T) {
	if KindSize(KindBool) != 1 || KindSize(KindInt) != 8 || KindSize(KindString) != 16 {
		t.Error("KindSize defaults changed")
	}
}

func TestEqual(t *testing.T) {
	if !Equal(NewInt(2), NewFloat(2)) {
		t.Error("2 must equal 2.0")
	}
	if !Equal(Null, Null) {
		t.Error("Equal(Null, Null) is true by definition here")
	}
	if Equal(NewInt(1), NewInt(2)) {
		t.Error("1 != 2")
	}
}
