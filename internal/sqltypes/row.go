package sqltypes

import (
	"hash/maphash"
	"math"
	"strings"
)

// Row is a flat tuple of datums.
type Row []Datum

// Clone returns a copy of the row that does not alias the receiver.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// String renders the row as a tab-separated line.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, d := range r {
		parts[i] = d.String()
	}
	return strings.Join(parts, "\t")
}

// CompareRows orders two rows lexicographically. Shorter rows sort first on a
// shared prefix tie.
func CompareRows(a, b Row) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return cmpInt(int64(len(a)), int64(len(b)))
}

// Hasher hashes rows and datum keys consistently within one process.
//
// Hashing is typed-first: each datum is reduced to a 64-bit key encoding
// (DatumBits) by a single kind switch — numerics through their float64 bit
// pattern so INT 2 and FLOAT 2.0 still collide, strings through a seeded
// maphash — and the per-column encodings are folded with a splitmix64-style
// mixer. This replaces streaming every datum byte-by-byte through a
// maphash.Hash, which dominated hash join builds and aggregation grouping.
// The invariant is unchanged: datums that Compare equal hash equal.
type Hasher struct {
	seed maphash.Seed
}

// NewHasher returns a hasher with a process-stable random seed.
func NewHasher() *Hasher { return &Hasher{seed: maphash.MakeSeed()} }

// Key-encoding tags: arbitrary odd constants separating the kind classes
// that can never compare equal (NULL / bool / numeric / string).
const (
	nullBits = 0x517cc1b727220a95
	boolTag  = 0xbf58476d1ce4e5b9
	numTag   = 0x94d049bb133111eb
)

// MixBits folds one column's key encoding into a running row hash. The
// fold is order-dependent (splitmix64 over h+v), so multi-column keys can
// be accumulated column-at-a-time: pass the previous column's result as h.
func MixBits(h, v uint64) uint64 {
	x := h + 0x9e3779b97f4a7c15 + v
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NullBits is the key encoding of SQL NULL.
func NullBits() uint64 { return nullBits }

// BoolBits is the key encoding of a boolean payload.
func BoolBits(v bool) uint64 {
	if v {
		return boolTag + 1
	}
	return boolTag
}

// NumericBits is the key encoding of an INT, FLOAT, or DATE payload widened
// to float64 (with -0.0 normalized), mirroring Compare's cross-kind
// numeric equality.
func NumericBits(f float64) uint64 {
	if f == 0 {
		f = 0 // normalize -0.0
	}
	return numTag ^ math.Float64bits(f)
}

// StringBits is the key encoding of a string payload under this hasher's
// seed; equal strings encode equally within one process.
func (hs *Hasher) StringBits(s string) uint64 {
	return maphash.String(hs.seed, s)
}

// DatumBits returns the datum's 64-bit key encoding: datums that Compare
// equal have equal bits.
func (hs *Hasher) DatumBits(d Datum) uint64 {
	switch d.kind {
	case KindNull:
		return nullBits
	case KindBool:
		return BoolBits(d.i != 0)
	case KindInt, KindDate, KindFloat:
		return NumericBits(d.Float())
	default:
		return hs.StringBits(d.s)
	}
}

// HashRow returns a hash of the given columns of the row (all columns when
// cols is nil).
func (hs *Hasher) HashRow(r Row, cols []int) uint64 {
	var h uint64
	if cols == nil {
		for _, d := range r {
			h = MixBits(h, hs.DatumBits(d))
		}
	} else {
		for _, c := range cols {
			h = MixBits(h, hs.DatumBits(r[c]))
		}
	}
	return h
}

// HashKey hashes the given columns like HashRow but reports ok=false as
// soon as one of them is NULL, in the same pass — the join-key guard (NULL
// keys never match) without a separate scan over the key columns.
func (hs *Hasher) HashKey(r Row, cols []int) (uint64, bool) {
	var h uint64
	for _, c := range cols {
		d := r[c]
		if d.IsNull() {
			return 0, false
		}
		h = MixBits(h, hs.DatumBits(d))
	}
	return h, true
}

// RowSize returns the approximate in-memory size of the row in bytes.
func RowSize(r Row) int {
	n := 0
	for _, d := range r {
		n += d.EncodedSize()
	}
	return n
}
