package sqltypes

import (
	"hash/maphash"
	"strings"
)

// Row is a flat tuple of datums.
type Row []Datum

// Clone returns a copy of the row that does not alias the receiver.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// String renders the row as a tab-separated line.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, d := range r {
		parts[i] = d.String()
	}
	return strings.Join(parts, "\t")
}

// CompareRows orders two rows lexicographically. Shorter rows sort first on a
// shared prefix tie.
func CompareRows(a, b Row) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return cmpInt(int64(len(a)), int64(len(b)))
}

// Hasher hashes rows and datum keys consistently within one process.
type Hasher struct {
	seed maphash.Seed
}

// NewHasher returns a hasher with a process-stable random seed.
func NewHasher() *Hasher { return &Hasher{seed: maphash.MakeSeed()} }

// HashRow returns a hash of the given columns of the row (all columns when
// cols is nil).
func (hs *Hasher) HashRow(r Row, cols []int) uint64 {
	var h maphash.Hash
	h.SetSeed(hs.seed)
	if cols == nil {
		for _, d := range r {
			d.HashInto(&h)
		}
	} else {
		for _, c := range cols {
			r[c].HashInto(&h)
		}
	}
	return h.Sum64()
}

// HashKey hashes the given columns like HashRow but reports ok=false as
// soon as one of them is NULL, in the same pass — the join-key guard (NULL
// keys never match) without a separate scan over the key columns.
func (hs *Hasher) HashKey(r Row, cols []int) (uint64, bool) {
	var h maphash.Hash
	h.SetSeed(hs.seed)
	for _, c := range cols {
		d := r[c]
		if d.IsNull() {
			return 0, false
		}
		d.HashInto(&h)
	}
	return h.Sum64(), true
}

// RowSize returns the approximate in-memory size of the row in bytes.
func RowSize(r Row) int {
	n := 0
	for _, d := range r {
		n += d.EncodedSize()
	}
	return n
}
