package sqltypes

import (
	"testing"
	"testing/quick"
)

func TestRowClone(t *testing.T) {
	r := Row{NewInt(1), NewString("a")}
	c := r.Clone()
	c[0] = NewInt(99)
	if r[0].Int() != 1 {
		t.Error("Clone aliases the original row")
	}
}

func TestRowString(t *testing.T) {
	r := Row{NewInt(1), NewString("x"), Null}
	if got := r.String(); got != "1\tx\tNULL" {
		t.Errorf("Row.String() = %q", got)
	}
}

func TestCompareRows(t *testing.T) {
	a := Row{NewInt(1), NewInt(2)}
	b := Row{NewInt(1), NewInt(3)}
	if CompareRows(a, b) != -1 {
		t.Error("lexicographic compare failed")
	}
	if CompareRows(a, a) != 0 {
		t.Error("row must equal itself")
	}
	// Prefix rows sort first.
	short := Row{NewInt(1)}
	if CompareRows(short, a) != -1 || CompareRows(a, short) != 1 {
		t.Error("shorter row must sort before its extension")
	}
}

func TestHasherConsistency(t *testing.T) {
	hs := NewHasher()
	r1 := Row{NewInt(1), NewString("a"), NewFloat(2)}
	r2 := Row{NewInt(1), NewString("b"), NewInt(2)}
	// Same key columns (0 and 2, numerically equal) must hash equally.
	if hs.HashRow(r1, []int{0, 2}) != hs.HashRow(r2, []int{0, 2}) {
		t.Error("rows with equal key columns must hash equally")
	}
	// All columns: different.
	if hs.HashRow(r1, nil) == hs.HashRow(r2, nil) {
		t.Error("suspicious collision across differing rows (possible but this pair is fixed)")
	}
}

func TestHashRowNilMeansAllColumns(t *testing.T) {
	hs := NewHasher()
	r := Row{NewInt(1), NewInt(2)}
	if hs.HashRow(r, nil) != hs.HashRow(r, []int{0, 1}) {
		t.Error("nil column list must hash the whole row")
	}
}

func TestRowSize(t *testing.T) {
	r := Row{NewInt(1), NewString("abcd")}
	if got := RowSize(r); got != 8+6 {
		t.Errorf("RowSize = %d", got)
	}
}

func TestCompareRowsTotalOrderProperty(t *testing.T) {
	mk := func(a, b int64) Row { return Row{NewInt(a % 5), NewInt(b % 5)} }
	f := func(a1, b1, a2, b2 int64) bool {
		x, y := mk(a1, b1), mk(a2, b2)
		return CompareRows(x, y) == -CompareRows(y, x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
