package sqltypes

import "testing"

func TestRowArenaRowsDoNotAlias(t *testing.T) {
	var a RowArena
	r1 := a.NewRow(3)
	r2 := a.NewRow(3)
	for i := range r1 {
		r1[i] = NewInt(int64(i))
	}
	for i := range r2 {
		r2[i] = NewInt(int64(100 + i))
	}
	for i := range r1 {
		if r1[i].Int() != int64(i) {
			t.Fatalf("r1[%d] = %v, clobbered by later allocation", i, r1[i])
		}
	}
	// Appending to an arena row must not spill into the next row's storage.
	_ = append(r1, NewInt(999))
	if r2[0].Int() != 100 {
		t.Fatalf("append to r1 overwrote r2[0] = %v", r2[0])
	}
}

func TestRowArenaSurvivesSlabRollover(t *testing.T) {
	var a RowArena
	var rows []Row
	for i := 0; i < 10000; i++ {
		r := a.NewRow(7)
		for j := range r {
			r[j] = NewInt(int64(i))
		}
		rows = append(rows, r)
	}
	for i, r := range rows {
		if len(r) != 7 {
			t.Fatalf("row %d has length %d", i, len(r))
		}
		for j := range r {
			if r[j].Int() != int64(i) {
				t.Fatalf("row %d datum %d = %v", i, j, r[j])
			}
		}
	}
}

func TestRowArenaOversizedRow(t *testing.T) {
	var a RowArena
	big := a.NewRow(3 * arenaSlabDatums)
	if len(big) != 3*arenaSlabDatums {
		t.Fatalf("oversized row has length %d", len(big))
	}
	small := a.NewRow(2)
	small[0] = NewInt(1)
	small[1] = NewInt(2)
	if big[len(big)-1].Kind() != KindNull {
		t.Fatal("oversized row tail not zeroed")
	}
}

func TestRowArenaZeroRow(t *testing.T) {
	var a RowArena
	if r := a.NewRow(0); len(r) != 0 {
		t.Fatalf("NewRow(0) returned %d datums", len(r))
	}
}
