package sqltypes

// arenaSlabDatums is the default slab size of a RowArena: large enough to
// amortize allocation over many rows, small enough that a mostly-unused
// final slab is cheap.
const arenaSlabDatums = 4096

// RowArena hands out rows carved from large datum slabs, replacing one
// make([]Datum) per output row with one allocation per slab. Rows returned
// by NewRow alias the arena's current slab but are never moved or reused, so
// they stay valid for as long as the caller keeps them; a slab is released
// to the garbage collector when every row carved from it is dropped.
//
// A RowArena is not safe for concurrent use: the executor keeps one arena
// per worker.
type RowArena struct {
	slab Row
}

// NewRow returns a zeroed row of n datums backed by the arena.
func (a *RowArena) NewRow(n int) Row {
	if n <= 0 {
		return Row{}
	}
	if cap(a.slab)-len(a.slab) < n {
		size := arenaSlabDatums
		if n > size {
			size = n
		}
		a.slab = make(Row, 0, size)
	}
	r := a.slab[len(a.slab) : len(a.slab)+n : len(a.slab)+n]
	a.slab = a.slab[:len(a.slab)+n]
	return r
}
