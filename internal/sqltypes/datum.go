// Package sqltypes defines the value domain shared by every layer of the
// engine: typed datums, rows, comparison, hashing, and formatting.
//
// A Datum is a small value struct rather than an interface so that rows can
// be stored as flat []Datum slices without per-value allocations.
package sqltypes

import (
	"fmt"
	"hash/maphash"
	"math"
	"strconv"
	"time"
)

// Kind enumerates the SQL types supported by the engine.
type Kind uint8

// Supported datum kinds.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindDate // stored as days since 1970-01-01
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOLEAN"
	case KindInt:
		return "BIGINT"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindDate:
		return "DATE"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Numeric reports whether values of this kind participate in arithmetic.
func (k Kind) Numeric() bool { return k == KindInt || k == KindFloat }

// Datum is a single SQL value. The zero value is SQL NULL.
type Datum struct {
	kind Kind
	i    int64 // KindInt and KindDate payload; 0/1 for KindBool
	f    float64
	s    string
}

// Null is the SQL NULL datum.
var Null = Datum{}

// NewInt returns a BIGINT datum.
func NewInt(v int64) Datum { return Datum{kind: KindInt, i: v} }

// NewFloat returns a DOUBLE datum.
func NewFloat(v float64) Datum { return Datum{kind: KindFloat, f: v} }

// NewString returns a VARCHAR datum.
func NewString(v string) Datum { return Datum{kind: KindString, s: v} }

// NewBool returns a BOOLEAN datum.
func NewBool(v bool) Datum {
	d := Datum{kind: KindBool}
	if v {
		d.i = 1
	}
	return d
}

// NewDate returns a DATE datum from days since the Unix epoch.
func NewDate(days int64) Datum { return Datum{kind: KindDate, i: days} }

// ParseDate converts a 'YYYY-MM-DD' literal into a DATE datum.
func ParseDate(s string) (Datum, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return Null, fmt.Errorf("invalid date literal %q: %w", s, err)
	}
	return NewDate(t.Unix() / 86400), nil
}

// MustParseDate is ParseDate for literals known to be valid; it panics on error.
func MustParseDate(s string) Datum {
	d, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return d
}

// Kind returns the datum's type.
func (d Datum) Kind() Kind { return d.kind }

// IsNull reports whether the datum is SQL NULL.
func (d Datum) IsNull() bool { return d.kind == KindNull }

// Int returns the integer payload. It panics unless the kind is BIGINT or DATE.
func (d Datum) Int() int64 {
	if d.kind != KindInt && d.kind != KindDate {
		panic(fmt.Sprintf("Int() on %s datum", d.kind))
	}
	return d.i
}

// Float returns the floating-point payload, widening BIGINT and DATE values.
func (d Datum) Float() float64 {
	switch d.kind {
	case KindFloat:
		return d.f
	case KindInt, KindDate:
		return float64(d.i)
	case KindBool:
		return float64(d.i)
	default:
		panic(fmt.Sprintf("Float() on %s datum", d.kind))
	}
}

// Str returns the string payload. It panics unless the kind is VARCHAR.
func (d Datum) Str() string {
	if d.kind != KindString {
		panic(fmt.Sprintf("Str() on %s datum", d.kind))
	}
	return d.s
}

// Bool returns the boolean payload. It panics unless the kind is BOOLEAN.
func (d Datum) Bool() bool {
	if d.kind != KindBool {
		panic(fmt.Sprintf("Bool() on %s datum", d.kind))
	}
	return d.i != 0
}

// Days returns the DATE payload in days since the epoch.
func (d Datum) Days() int64 {
	if d.kind != KindDate {
		panic(fmt.Sprintf("Days() on %s datum", d.kind))
	}
	return d.i
}

// String renders the datum the way a result printer would.
func (d Datum) String() string {
	switch d.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if d.i != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(d.i, 10)
	case KindFloat:
		if abs := math.Abs(d.f); abs != 0 && (abs >= 1e15 || abs < 1e-4) {
			return strconv.FormatFloat(d.f, 'g', -1, 64)
		}
		return strconv.FormatFloat(d.f, 'f', -1, 64)
	case KindString:
		return d.s
	case KindDate:
		return time.Unix(d.i*86400, 0).UTC().Format("2006-01-02")
	default:
		return fmt.Sprintf("<bad datum kind %d>", d.kind)
	}
}

// SQLLiteral renders the datum as a SQL literal (strings and dates quoted).
func (d Datum) SQLLiteral() string {
	switch d.kind {
	case KindString, KindDate:
		return "'" + d.String() + "'"
	default:
		return d.String()
	}
}

// Compare orders two datums. NULL sorts before every non-NULL value; numeric
// kinds compare by value across INT/FLOAT; otherwise kinds must match.
// The result is -1, 0, or +1.
func Compare(a, b Datum) int {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == b.kind:
			return 0
		case a.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if a.kind.Numeric() && b.kind.Numeric() && a.kind != b.kind {
		return cmpFloat(a.Float(), b.Float())
	}
	if a.kind != b.kind {
		// Total order across kinds so sorting heterogeneous data is stable.
		return cmpInt(int64(a.kind), int64(b.kind))
	}
	switch a.kind {
	case KindBool, KindInt, KindDate:
		return cmpInt(a.i, b.i)
	case KindFloat:
		return cmpFloat(a.f, b.f)
	case KindString:
		switch {
		case a.s < b.s:
			return -1
		case a.s > b.s:
			return 1
		default:
			return 0
		}
	default:
		return 0
	}
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case a == b:
		return 0
	// NaNs sort first so Compare stays a total order.
	case math.IsNaN(a) && math.IsNaN(b):
		return 0
	case math.IsNaN(a):
		return -1
	default:
		return 1
	}
}

// Equal reports whether two datums compare equal (NULL equals NULL here;
// SQL ternary logic is applied by the expression evaluator, not by Equal).
func Equal(a, b Datum) bool { return Compare(a, b) == 0 }

// HashInto mixes the datum into h. Datums that compare equal hash equally,
// including INT/FLOAT values that are numerically equal.
func (d Datum) HashInto(h *maphash.Hash) {
	switch d.kind {
	case KindNull:
		h.WriteByte(0)
	case KindBool:
		h.WriteByte(1)
		h.WriteByte(byte(d.i))
	case KindInt, KindDate, KindFloat:
		// Hash all numerics through float64 so NewInt(2) and NewFloat(2.0)
		// land in the same hash bucket, matching Compare.
		h.WriteByte(2)
		v := d.Float()
		if v == 0 {
			v = 0 // normalize -0.0
		}
		bits := math.Float64bits(v)
		var buf [8]byte
		for i := range buf {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	case KindString:
		h.WriteByte(3)
		h.WriteString(d.s)
	}
}

// EncodedSize returns the approximate in-memory size of the datum in bytes,
// used by the cost model for materialization and read costs.
func (d Datum) EncodedSize() int {
	switch d.kind {
	case KindNull:
		return 1
	case KindBool:
		return 1
	case KindInt, KindFloat, KindDate:
		return 8
	case KindString:
		return 2 + len(d.s)
	default:
		return 8
	}
}

// KindSize returns the estimated width in bytes for a column of kind k,
// used when the actual values are not available (cost estimation).
func KindSize(k Kind) int {
	switch k {
	case KindBool, KindNull:
		return 1
	case KindString:
		return 16
	default:
		return 8
	}
}
