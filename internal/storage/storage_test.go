package storage

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/sqltypes"
)

func TestStoreCreateInsertDrop(t *testing.T) {
	s := NewStore()
	tab := s.Create("t")
	tab.Append(sqltypes.Row{sqltypes.NewInt(1)})
	got, err := s.Table("T") // case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Errorf("rows = %d", got.Len())
	}
	if err := s.Insert("t", []sqltypes.Row{{sqltypes.NewInt(2)}, {sqltypes.NewInt(3)}}); err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Errorf("after insert rows = %d", got.Len())
	}
	s.Drop("t")
	if _, err := s.Table("t"); err == nil {
		t.Error("dropped table resolvable")
	}
}

func TestInsertUnknownTable(t *testing.T) {
	s := NewStore()
	if err := s.Insert("fresh", []sqltypes.Row{{sqltypes.NewInt(1)}}); err == nil {
		t.Fatal("insert into unknown table must error, not auto-create")
	}
	if _, err := s.Table("fresh"); err == nil {
		t.Error("failed insert must not create the table")
	}
}

func TestVersions(t *testing.T) {
	s := NewStore()
	if v := s.Version("t"); v != 0 {
		t.Errorf("unwritten table version = %d, want 0", v)
	}
	s.Create("t")
	v1 := s.Version("t")
	if v1 == 0 {
		t.Fatal("Create must bump the version")
	}
	if err := s.Insert("T", nil); err != nil { // case-insensitive, empty insert still bumps
		t.Fatal(err)
	}
	v2 := s.Version("t")
	if v2 <= v1 {
		t.Errorf("Insert did not bump version: %d -> %d", v1, v2)
	}
	s.Touch("t")
	if s.Version("t") <= v2 {
		t.Error("Touch did not bump version")
	}
	s.Drop("t")
	vDrop := s.Version("t")
	if vDrop <= v2 {
		t.Error("Drop did not bump version")
	}
	// Version counters must survive Drop so a re-created table cannot revive
	// stale cache entries keyed at an earlier version.
	s.Create("t")
	if s.Version("t") <= vDrop {
		t.Error("re-Create reused a version a cached entry may still hold")
	}
	got := s.Versions([]string{"t", "other"})
	if got["t"] != s.Version("t") || got["other"] != 0 {
		t.Errorf("Versions snapshot = %v", got)
	}
}

func TestCreateReplaces(t *testing.T) {
	s := NewStore()
	s.Create("t").Append(sqltypes.Row{sqltypes.NewInt(1)})
	s.Create("t") // replaces
	tab, _ := s.Table("t")
	if tab.Len() != 0 {
		t.Error("Create must replace existing rows")
	}
}

func TestAnalyzeTable(t *testing.T) {
	ct := &catalog.Table{
		Name: "t",
		Cols: []catalog.Column{
			{Name: "a", Type: sqltypes.KindInt},
			{Name: "b", Type: sqltypes.KindString},
		},
	}
	st := &Table{Name: "t"}
	vals := []struct {
		a int64
		b sqltypes.Datum
	}{
		{1, sqltypes.NewString("x")},
		{2, sqltypes.NewString("y")},
		{2, sqltypes.Null},
		{5, sqltypes.NewString("x")},
	}
	for _, v := range vals {
		st.Append(sqltypes.Row{sqltypes.NewInt(v.a), v.b})
	}
	AnalyzeTable(ct, st)

	if ct.Stats.RowCount != 4 {
		t.Errorf("RowCount = %g", ct.Stats.RowCount)
	}
	a := ct.Stats.Cols[0]
	if a.Distinct != 3 {
		t.Errorf("a distinct = %g, want 3", a.Distinct)
	}
	if a.Min.Int() != 1 || a.Max.Int() != 5 {
		t.Errorf("a range = [%v, %v]", a.Min, a.Max)
	}
	if a.NullFrac != 0 {
		t.Errorf("a null frac = %g", a.NullFrac)
	}
	b := ct.Stats.Cols[1]
	if b.Distinct != 2 {
		t.Errorf("b distinct = %g, want 2", b.Distinct)
	}
	if b.NullFrac != 0.25 {
		t.Errorf("b null frac = %g, want 0.25", b.NullFrac)
	}
	if ct.AvgRowSize <= 0 {
		t.Error("AvgRowSize must be positive")
	}
}

func TestAnalyzeEmptyTable(t *testing.T) {
	ct := &catalog.Table{Name: "t", Cols: []catalog.Column{{Name: "a", Type: sqltypes.KindInt}}}
	AnalyzeTable(ct, &Table{Name: "t"})
	if ct.Stats.RowCount != 0 {
		t.Errorf("empty RowCount = %g", ct.Stats.RowCount)
	}
	if ct.Stats.Cols[0].Distinct != 1 {
		t.Error("distinct floor of 1 keeps selectivity math safe")
	}
}

func TestSortRows(t *testing.T) {
	rows := []sqltypes.Row{
		{sqltypes.NewInt(2), sqltypes.NewString("b")},
		{sqltypes.NewInt(1), sqltypes.NewString("z")},
		{sqltypes.NewInt(2), sqltypes.NewString("a")},
	}
	SortRows(rows)
	if rows[0][0].Int() != 1 || rows[1][1].Str() != "a" || rows[2][1].Str() != "b" {
		t.Errorf("SortRows order wrong: %v", rows)
	}
}

func TestAnalyzeRebuildsIndexes(t *testing.T) {
	ct := &catalog.Table{
		Name:    "t",
		Cols:    []catalog.Column{{Name: "a", Type: sqltypes.KindInt}},
		Indexes: []catalog.Index{{Col: 0}},
	}
	st := &Table{Name: "t"}
	for _, v := range []int64{5, 1, 9, 3} {
		st.Append(sqltypes.Row{sqltypes.NewInt(v)})
	}
	AnalyzeTable(ct, st)
	perm := st.Index(0)
	if perm == nil {
		t.Fatal("index not built")
	}
	for i := 1; i < len(perm); i++ {
		if sqltypes.Compare(st.Rows[perm[i-1]][0], st.Rows[perm[i]][0]) > 0 {
			t.Fatal("index permutation not sorted")
		}
	}
	// Append and re-analyze: the permutation must cover the new row.
	st.Append(sqltypes.Row{sqltypes.NewInt(2)})
	AnalyzeTable(ct, st)
	if len(st.Index(0)) != 5 {
		t.Error("index not rebuilt after analyze")
	}
	if st.Index(1) != nil {
		t.Error("no index declared on column 1")
	}
}
