package storage

import (
	"math"
	"math/bits"
	"sync"

	"repro/internal/sqltypes"
)

// Columnar shadow of a row set. Rows stay the source of truth everywhere —
// mutation, spool materialization, cache entries, results — but scans,
// filters, and hash builds are dominated by per-datum dispatch over []Row,
// so a Table (and any spool work table, via ColBox) carries a derived
// column-major form: one typed slice per column plus a validity bitmap. The
// executor's selection-vector kernels run over these slices and only touch
// the row form for the rows that survive.
//
// The columnar form is built lazily on first use and invalidated by an
// epoch counter that every mutation path bumps (Store.Insert, Store.Touch,
// Table.Append); in-place row mutations (view delta merges) go through
// Touch, so staleness is explicit rather than inferred from row counts.

// Column is the typed form of one column over a row set. Exactly one of the
// value slices is populated, chosen by Kind; Valid is a bitmap with one bit
// per row (set = non-NULL), nil when the column has no NULLs.
type Column struct {
	// Kind is the uniform kind of the column's non-NULL values; KindNull
	// when every value is NULL.
	Kind sqltypes.Kind

	// OK is false when the column mixes value kinds (heterogeneous data has
	// no typed form); such a column has no slices and readers must fall back
	// to the row form.
	OK bool

	// Valid has bit i set when row i is non-NULL; nil means no NULLs.
	Valid []uint64

	// Ints holds KindInt and KindDate payloads, and KindBool as 0/1.
	Ints []int64

	// Floats holds KindFloat payloads.
	Floats []float64

	// Dict and Codes dictionary-encode KindString: Codes[i] indexes Dict.
	// Codes are 32-bit, so dictionaries may exceed 64k distinct strings.
	Dict  []string
	Codes []uint32
}

// IsValid reports whether row i is non-NULL.
func (c *Column) IsValid(i int) bool {
	return c.Valid == nil || c.Valid[uint(i)>>6]&(1<<(uint(i)&63)) != 0
}

// NullCount returns the number of NULL rows out of n.
func (c *Column) NullCount(n int) int {
	if c.Valid == nil {
		return 0
	}
	valid := 0
	for _, w := range c.Valid {
		valid += bits.OnesCount64(w)
	}
	return n - valid
}

// Datum decodes row i back to its datum form. It must only be called on OK
// columns; the round-trip is exact (same kind, same payload).
func (c *Column) Datum(i int) sqltypes.Datum {
	if !c.IsValid(i) {
		return sqltypes.Null
	}
	switch c.Kind {
	case sqltypes.KindInt:
		return sqltypes.NewInt(c.Ints[i])
	case sqltypes.KindDate:
		return sqltypes.NewDate(c.Ints[i])
	case sqltypes.KindBool:
		return sqltypes.NewBool(c.Ints[i] != 0)
	case sqltypes.KindFloat:
		return sqltypes.NewFloat(c.Floats[i])
	case sqltypes.KindString:
		return sqltypes.NewString(c.Dict[c.Codes[i]])
	default:
		return sqltypes.Null
	}
}

// ColumnData is the columnar form of one row set.
type ColumnData struct {
	NRows int
	Cols  []Column

	// epoch is the Table mutation counter the build observed; a mismatch
	// with the current counter means the data is stale.
	epoch uint64
}

// BuildColumns encodes a row set column-major. It returns nil when the rows
// cannot be represented (row count beyond the selection vector's int32
// domain); individual heterogeneous columns are marked !OK instead of
// failing the whole set.
func BuildColumns(rows []sqltypes.Row) *ColumnData {
	if len(rows) > math.MaxInt32 {
		return nil
	}
	width := 0
	if len(rows) > 0 {
		width = len(rows[0])
	}
	cd := &ColumnData{NRows: len(rows), Cols: make([]Column, width)}
	for ci := range cd.Cols {
		buildColumn(&cd.Cols[ci], rows, ci)
	}
	return cd
}

func buildColumn(col *Column, rows []sqltypes.Row, ci int) {
	n := len(rows)
	col.Kind = sqltypes.KindNull
	col.OK = true
	var dict map[string]uint32
	anyNull := false
	for i, r := range rows {
		d := r[ci]
		if d.IsNull() {
			anyNull = true
			continue
		}
		k := d.Kind()
		if col.Kind == sqltypes.KindNull {
			// First non-NULL value fixes the column's kind and allocates its
			// value slice (zero-filled up to here for the NULL prefix).
			col.Kind = k
			switch k {
			case sqltypes.KindInt, sqltypes.KindDate, sqltypes.KindBool:
				col.Ints = make([]int64, n)
			case sqltypes.KindFloat:
				col.Floats = make([]float64, n)
			case sqltypes.KindString:
				col.Codes = make([]uint32, n)
				dict = make(map[string]uint32)
			}
		} else if k != col.Kind {
			*col = Column{Kind: k, OK: false}
			return
		}
		switch k {
		case sqltypes.KindInt, sqltypes.KindDate:
			col.Ints[i] = d.Int()
		case sqltypes.KindBool:
			if d.Bool() {
				col.Ints[i] = 1
			}
		case sqltypes.KindFloat:
			col.Floats[i] = d.Float()
		case sqltypes.KindString:
			s := d.Str()
			code, ok := dict[s]
			if !ok {
				code = uint32(len(col.Dict))
				dict[s] = code
				col.Dict = append(col.Dict, s)
			}
			col.Codes[i] = code
		}
	}
	if anyNull {
		col.Valid = make([]uint64, (n+63)/64)
		for i, r := range rows {
			if !r[ci].IsNull() {
				col.Valid[uint(i)>>6] |= 1 << (uint(i) & 63)
			}
		}
	}
}

// ColBox pairs a materialized row set with its lazily built columnar form.
// Spool work tables and cross-batch cache entries hold a ColBox so the
// column slices are shared by reference everywhere the rows are: a cache hit
// hands back both forms without copying or re-encoding.
type ColBox struct {
	rows []sqltypes.Row
	once sync.Once
	cols *ColumnData
}

// NewColBox wraps a row set. The rows must not be mutated afterwards (the
// same immutability spool consumers already rely on).
func NewColBox(rows []sqltypes.Row) *ColBox { return &ColBox{rows: rows} }

// Rows returns the row form.
func (b *ColBox) Rows() []sqltypes.Row {
	if b == nil {
		return nil
	}
	return b.rows
}

// Columns returns the columnar form, building it exactly once across
// concurrent callers.
func (b *ColBox) Columns() *ColumnData {
	if b == nil {
		return nil
	}
	b.once.Do(func() { b.cols = BuildColumns(b.rows) })
	return b.cols
}

// columnar caching on Table: an epoch counter bumped by every mutation, and
// an atomically published build stamped with the epoch it observed.

// InvalidateColumns marks the table's columnar form stale. Mutation paths
// (Insert, Touch, Append) call it; external in-place mutators signal through
// Store.Touch, which forwards here.
func (t *Table) InvalidateColumns() { t.colEpoch.Add(1) }

// Columns returns the table's columnar form, (re)building it when a
// mutation has occurred since the last build. Concurrent readers are safe
// against each other; mutations are serialized against reads by the engine,
// as for Rows itself. Returns nil when the table cannot be encoded.
func (t *Table) Columns() *ColumnData {
	epoch := t.colEpoch.Load()
	if cd := t.colData.Load(); cd != nil && cd.epoch == epoch {
		return cd
	}
	t.colMu.Lock()
	defer t.colMu.Unlock()
	epoch = t.colEpoch.Load()
	if cd := t.colData.Load(); cd != nil && cd.epoch == epoch {
		return cd
	}
	cd := BuildColumns(t.Rows)
	if cd == nil {
		return nil
	}
	cd.epoch = epoch
	t.colData.Store(cd)
	return cd
}
