package storage

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/sqltypes"
)

// roundTrip asserts that decoding every OK column of the table's columnar
// form reproduces the row datums exactly.
func roundTrip(t *testing.T, rows []sqltypes.Row) *ColumnData {
	t.Helper()
	cd := BuildColumns(rows)
	if cd == nil {
		t.Fatal("BuildColumns returned nil")
	}
	if cd.NRows != len(rows) {
		t.Fatalf("NRows = %d, want %d", cd.NRows, len(rows))
	}
	for ci := range cd.Cols {
		col := &cd.Cols[ci]
		if !col.OK {
			continue
		}
		for i, r := range rows {
			got, want := col.Datum(i), r[ci]
			if got.Kind() != want.Kind() || sqltypes.Compare(got, want) != 0 {
				t.Fatalf("col %d row %d: decoded %v (%s), want %v (%s)",
					ci, i, got, got.Kind(), want, want.Kind())
			}
		}
	}
	return cd
}

func TestBuildColumnsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var rows []sqltypes.Row
	for i := 0; i < 500; i++ {
		r := sqltypes.Row{
			sqltypes.NewInt(rng.Int63n(100) - 50),
			sqltypes.NewFloat(rng.NormFloat64()),
			sqltypes.NewString(fmt.Sprintf("s%d", rng.Intn(20))),
			sqltypes.NewDate(int64(rng.Intn(10000))),
			sqltypes.NewBool(rng.Intn(2) == 0),
		}
		// Sprinkle NULLs into every column.
		for ci := range r {
			if rng.Intn(7) == 0 {
				r[ci] = sqltypes.Null
			}
		}
		rows = append(rows, r)
	}
	// Edge floats: NaN, ±0, ±Inf.
	rows = append(rows,
		sqltypes.Row{sqltypes.NewInt(0), sqltypes.NewFloat(math.NaN()), sqltypes.NewString(""), sqltypes.Null, sqltypes.NewBool(true)},
		sqltypes.Row{sqltypes.NewInt(0), sqltypes.NewFloat(math.Copysign(0, -1)), sqltypes.NewString(""), sqltypes.Null, sqltypes.NewBool(false)},
		sqltypes.Row{sqltypes.NewInt(0), sqltypes.NewFloat(math.Inf(-1)), sqltypes.NewString("z"), sqltypes.Null, sqltypes.NewBool(false)},
	)
	cd := roundTrip(t, rows)
	for ci, col := range cd.Cols {
		if !col.OK {
			t.Errorf("col %d not OK", ci)
		}
		if col.Valid == nil {
			t.Errorf("col %d: expected a validity bitmap", ci)
		}
	}
}

func TestBuildColumnsEmptyTable(t *testing.T) {
	cd := BuildColumns(nil)
	if cd == nil || cd.NRows != 0 || len(cd.Cols) != 0 {
		t.Fatalf("empty build = %+v", cd)
	}
}

func TestBuildColumnsAllNull(t *testing.T) {
	rows := []sqltypes.Row{{sqltypes.Null}, {sqltypes.Null}, {sqltypes.Null}}
	cd := roundTrip(t, rows)
	col := &cd.Cols[0]
	if col.Kind != sqltypes.KindNull || !col.OK {
		t.Fatalf("all-NULL column: kind %s ok %v", col.Kind, col.OK)
	}
	if got := col.NullCount(3); got != 3 {
		t.Fatalf("NullCount = %d, want 3", got)
	}
}

func TestBuildColumnsMixedKindsNotOK(t *testing.T) {
	rows := []sqltypes.Row{{sqltypes.NewInt(1)}, {sqltypes.NewString("x")}}
	cd := BuildColumns(rows)
	if cd.Cols[0].OK {
		t.Fatal("heterogeneous column marked OK")
	}
}

func TestDictionaryOverflow64k(t *testing.T) {
	// More than 64k distinct strings: 32-bit codes must keep every entry
	// distinct where 16-bit codes would wrap.
	const n = 70_000
	rows := make([]sqltypes.Row, n)
	for i := range rows {
		rows[i] = sqltypes.Row{sqltypes.NewString(fmt.Sprintf("v%06d", i))}
	}
	cd := BuildColumns(rows)
	col := &cd.Cols[0]
	if len(col.Dict) != n {
		t.Fatalf("dict size = %d, want %d", len(col.Dict), n)
	}
	for _, i := range []int{0, 1, 65535, 65536, 65537, n - 1} {
		if got, want := col.Datum(i).Str(), fmt.Sprintf("v%06d", i); got != want {
			t.Fatalf("row %d decoded %q, want %q", i, got, want)
		}
	}
}

func TestColumnsInvalidation(t *testing.T) {
	s := NewStore()
	tab := s.Create("t")
	if err := s.Insert("t", []sqltypes.Row{{sqltypes.NewInt(1)}}); err != nil {
		t.Fatal(err)
	}
	cd1 := tab.Columns()
	if cd1 == nil || cd1.NRows != 1 {
		t.Fatalf("first build = %+v", cd1)
	}
	if cd2 := tab.Columns(); cd2 != cd1 {
		t.Fatal("unchanged table rebuilt its columns")
	}
	if err := s.Insert("t", []sqltypes.Row{{sqltypes.NewInt(2)}}); err != nil {
		t.Fatal(err)
	}
	cd3 := tab.Columns()
	if cd3 == cd1 || cd3.NRows != 2 {
		t.Fatalf("insert did not invalidate columns: %+v", cd3)
	}
	// In-place mutation signaled by Touch.
	tab.Rows[0][0] = sqltypes.NewInt(99)
	s.Touch("t")
	cd4 := tab.Columns()
	if cd4 == cd3 {
		t.Fatal("Touch did not invalidate columns")
	}
	if got := cd4.Cols[0].Ints[0]; got != 99 {
		t.Fatalf("rebuilt column value = %d, want 99", got)
	}
	// Append invalidates too.
	tab.Append(sqltypes.Row{sqltypes.NewInt(3)})
	if cd5 := tab.Columns(); cd5 == cd4 || cd5.NRows != 3 {
		t.Fatal("Append did not invalidate columns")
	}
}

// TestConcurrentReadersDuringRebuild drives many concurrent Columns()
// readers across Touch-signaled rebuilds; run under -race this pins that
// lazy rebuilding is safe for concurrent readers.
func TestConcurrentReadersDuringRebuild(t *testing.T) {
	s := NewStore()
	tab := s.Create("t")
	rows := make([]sqltypes.Row, 2000)
	for i := range rows {
		rows[i] = sqltypes.Row{sqltypes.NewInt(int64(i)), sqltypes.NewString(fmt.Sprintf("s%d", i%50))}
	}
	if err := s.Insert("t", rows); err != nil {
		t.Fatal(err)
	}
	const readers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				cd := tab.Columns()
				if cd == nil || cd.NRows != 2000 {
					t.Errorf("reader saw %+v", cd)
					return
				}
				if d := cd.Cols[0].Datum(1); d.Int() != 1 {
					t.Errorf("decoded %v", d)
					return
				}
			}
		}()
	}
	// Rows are not mutated — only the epoch moves — so readers racing the
	// rebuild see either the old or the new ColumnData, both valid.
	for i := 0; i < 50; i++ {
		s.Touch("t")
	}
	close(stop)
	wg.Wait()
}

// TestInsertExtendsIndexes is the regression test for indexes built by
// ANALYZE going stale: rows inserted (or appended) afterwards must be
// visible in the sorted permutation, in exactly the order a stable rebuild
// would produce.
func TestInsertExtendsIndexes(t *testing.T) {
	ct := &catalog.Table{
		Name:    "t",
		Cols:    []catalog.Column{{Name: "k", Type: sqltypes.KindInt}},
		Indexes: []catalog.Index{{Col: 0}},
	}
	s := NewStore()
	tab := s.Create("t")
	for _, v := range []int64{5, 1, 3, 3, 9} {
		tab.Rows = append(tab.Rows, sqltypes.Row{sqltypes.NewInt(v)})
	}
	AnalyzeTable(ct, tab)
	if len(tab.Index(0)) != 5 {
		t.Fatalf("index len = %d", len(tab.Index(0)))
	}
	// Insert after ANALYZE, including duplicate keys.
	if err := s.Insert("t", []sqltypes.Row{{sqltypes.NewInt(3)}, {sqltypes.NewInt(0)}, {sqltypes.NewInt(9)}}); err != nil {
		t.Fatal(err)
	}
	tab.Append(sqltypes.Row{sqltypes.NewInt(5)})

	got := tab.Index(0)
	// A full stable rebuild is the ground truth.
	want := make(map[int][]int)
	wantTab := &Table{Rows: tab.Rows}
	AnalyzeTable(ct, wantTab)
	want[0] = wantTab.Index(0)
	if len(got) != len(tab.Rows) {
		t.Fatalf("index len = %d, want %d (inserted rows invisible to index scans)", len(got), len(tab.Rows))
	}
	for i := range got {
		if got[i] != want[0][i] {
			t.Fatalf("index perm %v, want %v (stable order violated)", got, want[0])
		}
	}
}

// TestAnalyzeColumnarMatchesRows pins that the typed-chunk ANALYZE computes
// the same statistics as the row fallback, including NaN/±0 float edge
// cases and NULL handling.
func TestAnalyzeColumnarMatchesRows(t *testing.T) {
	ct := &catalog.Table{Name: "t", Cols: []catalog.Column{
		{Name: "i", Type: sqltypes.KindInt},
		{Name: "f", Type: sqltypes.KindFloat},
		{Name: "s", Type: sqltypes.KindString},
		{Name: "d", Type: sqltypes.KindDate},
		{Name: "b", Type: sqltypes.KindBool},
		{Name: "n", Type: sqltypes.KindInt},
	}}
	rng := rand.New(rand.NewSource(11))
	tab := &Table{Name: "t"}
	for i := 0; i < 400; i++ {
		r := sqltypes.Row{
			sqltypes.NewInt(rng.Int63n(40)),
			sqltypes.NewFloat(float64(rng.Intn(10)) / 4),
			sqltypes.NewString(fmt.Sprintf("v%d", rng.Intn(15))),
			sqltypes.NewDate(int64(rng.Intn(30))),
			sqltypes.NewBool(rng.Intn(2) == 0),
			sqltypes.Null,
		}
		for ci := 0; ci < 5; ci++ {
			if rng.Intn(9) == 0 {
				r[ci] = sqltypes.Null
			}
		}
		tab.Rows = append(tab.Rows, r)
	}
	tab.Rows = append(tab.Rows,
		sqltypes.Row{sqltypes.NewInt(-1), sqltypes.NewFloat(math.NaN()), sqltypes.NewString(""), sqltypes.NewDate(0), sqltypes.NewBool(true), sqltypes.Null},
		sqltypes.Row{sqltypes.NewInt(-1), sqltypes.NewFloat(math.Copysign(0, -1)), sqltypes.NewString(""), sqltypes.NewDate(0), sqltypes.NewBool(true), sqltypes.Null},
	)

	AnalyzeTable(ct, tab)
	colStats := ct.Stats

	analyzeColumnar = false
	defer func() { analyzeColumnar = true }()
	AnalyzeTable(ct, tab)
	rowStats := ct.Stats

	if colStats.RowCount != rowStats.RowCount {
		t.Fatalf("rowcount %v vs %v", colStats.RowCount, rowStats.RowCount)
	}
	for ci := range colStats.Cols {
		c, r := colStats.Cols[ci], rowStats.Cols[ci]
		if c.Distinct != r.Distinct {
			t.Errorf("col %d distinct: columnar %v, rows %v", ci, c.Distinct, r.Distinct)
		}
		if c.NullFrac != r.NullFrac {
			t.Errorf("col %d nullfrac: columnar %v, rows %v", ci, c.NullFrac, r.NullFrac)
		}
		if c.Min.Kind() != r.Min.Kind() || sqltypes.Compare(c.Min, r.Min) != 0 {
			t.Errorf("col %d min: columnar %v, rows %v", ci, c.Min, r.Min)
		}
		if c.Max.Kind() != r.Max.Kind() || sqltypes.Compare(c.Max, r.Max) != 0 {
			t.Errorf("col %d max: columnar %v, rows %v", ci, c.Max, r.Max)
		}
	}
}

func TestColBoxSharing(t *testing.T) {
	rows := []sqltypes.Row{{sqltypes.NewInt(1)}, {sqltypes.NewInt(2)}}
	box := NewColBox(rows)
	cd := box.Columns()
	if cd == nil || cd.NRows != 2 {
		t.Fatalf("box columns = %+v", cd)
	}
	if box.Columns() != cd {
		t.Fatal("box rebuilt its columns")
	}
	var nilBox *ColBox
	if nilBox.Rows() != nil || nilBox.Columns() != nil {
		t.Fatal("nil box must be inert")
	}
}

// benchRows builds an ANALYZE-shaped table: ints, floats, low-cardinality
// strings, dates.
func benchRows(n int) *Table {
	rng := rand.New(rand.NewSource(3))
	tab := &Table{Name: "b"}
	tab.Rows = make([]sqltypes.Row, n)
	for i := range tab.Rows {
		tab.Rows[i] = sqltypes.Row{
			sqltypes.NewInt(rng.Int63n(1000)),
			sqltypes.NewFloat(rng.Float64() * 100),
			sqltypes.NewString(fmt.Sprintf("part%d", rng.Intn(40))),
			sqltypes.NewDate(int64(rng.Intn(2500))),
		}
	}
	return tab
}

var benchCatalog = &catalog.Table{Name: "b", Cols: []catalog.Column{
	{Name: "i", Type: sqltypes.KindInt},
	{Name: "f", Type: sqltypes.KindFloat},
	{Name: "s", Type: sqltypes.KindString},
	{Name: "d", Type: sqltypes.KindDate},
}}

// BenchmarkAnalyzeColumnar vs BenchmarkAnalyzeRowFallback measures the
// satellite-2 fix: distinct counting from typed chunks instead of one
// rendered string per datum. Compare allocs/op between the two.
func BenchmarkAnalyzeColumnar(b *testing.B) {
	tab := benchRows(50_000)
	tab.Columns() // pre-build, as a warm engine would have
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AnalyzeTable(benchCatalog, tab)
	}
}

func BenchmarkAnalyzeRowFallback(b *testing.B) {
	tab := benchRows(50_000)
	analyzeColumnar = false
	defer func() { analyzeColumnar = true }()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AnalyzeTable(benchCatalog, tab)
	}
}
