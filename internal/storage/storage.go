// Package storage provides the in-memory row store backing base tables,
// materialized views, spool work tables, and delta tables.
package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/catalog"
	"repro/internal/sqltypes"
)

// Table holds the rows of one stored object, plus any secondary indexes
// (sorted row-number permutations keyed by column ordinal).
type Table struct {
	Name    string
	Rows    []sqltypes.Row
	Indexes map[int][]int
}

// Index returns the sorted permutation for a column, or nil when absent.
func (t *Table) Index(col int) []int {
	return t.Indexes[col]
}

// Append adds a row (without copying).
func (t *Table) Append(r sqltypes.Row) { t.Rows = append(t.Rows, r) }

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.Rows) }

// Store maps table names to their rows. A Store instance is safe for
// concurrent readers once loading completes; mutations are serialized by the
// engine.
type Store struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{tables: make(map[string]*Table)}
}

// Create registers an empty table. It replaces any existing table of the
// same name (used when rebuilding materialized views).
func (s *Store) Create(name string) *Table {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := &Table{Name: name}
	s.tables[strings.ToLower(name)] = t
	return t
}

// Drop removes a table's rows.
func (s *Store) Drop(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.tables, strings.ToLower(name))
}

// Table returns the named table or an error.
func (s *Store) Table(name string) (*Table, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("no stored data for table %q", name)
	}
	return t, nil
}

// Insert appends rows to the named table, creating it if absent.
func (s *Store) Insert(name string, rows []sqltypes.Row) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(name)
	t, ok := s.tables[key]
	if !ok {
		t = &Table{Name: name}
		s.tables[key] = t
	}
	t.Rows = append(t.Rows, rows...)
}

// AnalyzeTable computes fresh statistics for a stored table and installs
// them on the catalog object: row count and, per column, distinct count,
// min/max, and null fraction.
func AnalyzeTable(ct *catalog.Table, st *Table) {
	n := len(st.Rows)
	stats := catalog.TableStats{RowCount: float64(n), Cols: make([]catalog.ColStat, len(ct.Cols))}
	var rowBytes int
	for ci := range ct.Cols {
		seen := make(map[string]struct{})
		var min, max sqltypes.Datum
		nulls := 0
		first := true
		for _, r := range st.Rows {
			d := r[ci]
			if d.IsNull() {
				nulls++
				continue
			}
			seen[d.String()] = struct{}{}
			if first {
				min, max = d, d
				first = false
				continue
			}
			if sqltypes.Compare(d, min) < 0 {
				min = d
			}
			if sqltypes.Compare(d, max) > 0 {
				max = d
			}
		}
		cs := catalog.ColStat{Distinct: float64(len(seen)), Min: min, Max: max}
		if n > 0 {
			cs.NullFrac = float64(nulls) / float64(n)
		}
		if cs.Distinct == 0 {
			cs.Distinct = 1
		}
		stats.Cols[ci] = cs
	}
	for _, r := range st.Rows {
		rowBytes += sqltypes.RowSize(r)
	}
	ct.Stats = stats
	if n > 0 {
		ct.AvgRowSize = float64(rowBytes) / float64(n)
	}

	// (Re)build declared secondary indexes: sorted row permutations.
	if len(ct.Indexes) > 0 {
		st.Indexes = make(map[int][]int, len(ct.Indexes))
		for _, ix := range ct.Indexes {
			perm := make([]int, n)
			for i := range perm {
				perm[i] = i
			}
			col := ix.Col
			sort.SliceStable(perm, func(a, b int) bool {
				return sqltypes.Compare(st.Rows[perm[a]][col], st.Rows[perm[b]][col]) < 0
			})
			st.Indexes[col] = perm
		}
	}
}

// SortRows sorts rows lexicographically in place; used to canonicalize
// result sets for comparison in tests.
func SortRows(rows []sqltypes.Row) {
	sort.Slice(rows, func(i, j int) bool {
		return sqltypes.CompareRows(rows[i], rows[j]) < 0
	})
}
