// Package storage provides the in-memory row store backing base tables,
// materialized views, spool work tables, and delta tables.
package storage

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/sqltypes"
)

// Table holds the rows of one stored object, plus any secondary indexes
// (sorted row-number permutations keyed by column ordinal) and a lazily
// built columnar shadow (see column.go).
type Table struct {
	Name    string
	Rows    []sqltypes.Row
	Indexes map[int][]int

	// Columnar cache: colEpoch counts mutations, colData holds the last
	// build stamped with the epoch it observed.
	colEpoch atomic.Uint64
	colMu    sync.Mutex
	colData  atomic.Pointer[ColumnData]
}

// Index returns the sorted permutation for a column, or nil when absent.
func (t *Table) Index(col int) []int {
	return t.Indexes[col]
}

// Append adds a row (without copying), extends any secondary indexes, and
// invalidates the columnar shadow.
func (t *Table) Append(r sqltypes.Row) {
	t.Rows = append(t.Rows, r)
	t.extendIndexes(len(t.Rows) - 1)
	t.InvalidateColumns()
}

// extendIndexes inserts rows [from, len(Rows)) into every secondary index,
// keeping each permutation sorted. New rows land at the upper bound of their
// key's run — after all existing equal keys — which is exactly where a full
// stable re-sort would place them, so an incrementally extended index is
// indistinguishable from a rebuilt one.
func (t *Table) extendIndexes(from int) {
	for col, perm := range t.Indexes {
		for ri := from; ri < len(t.Rows); ri++ {
			d := t.Rows[ri][col]
			pos := sort.Search(len(perm), func(j int) bool {
				return sqltypes.Compare(t.Rows[perm[j]][col], d) > 0
			})
			perm = append(perm, 0)
			copy(perm[pos+1:], perm[pos:])
			perm[pos] = ri
		}
		t.Indexes[col] = perm
	}
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.Rows) }

// Store maps table names to their rows. A Store instance is safe for
// concurrent readers once loading completes; mutations are serialized by the
// engine.
//
// Every table carries a monotonic version counter, bumped by Create, Insert,
// Drop, and Touch. Versions are the cache-invalidation primitive: a cached
// result records the versions of every table it read, and is rejected when
// any of them has moved. Counters live in their own map so that a
// Drop-then-Create sequence never reuses a version a cached entry may still
// hold.
type Store struct {
	mu       sync.RWMutex
	tables   map[string]*Table
	versions map[string]uint64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{tables: make(map[string]*Table), versions: make(map[string]uint64)}
}

// Create registers an empty table and bumps its version. It replaces any
// existing table of the same name (used when rebuilding materialized views).
func (s *Store) Create(name string) *Table {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(name)
	t := &Table{Name: name}
	s.tables[key] = t
	s.versions[key]++
	return t
}

// Drop deletes the named table (the table itself, not just its rows) and
// bumps its version so cached results derived from it are invalidated. The
// version counter outlives the table: re-creating the same name continues
// the sequence rather than restarting it.
func (s *Store) Drop(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(name)
	delete(s.tables, key)
	s.versions[key]++
}

// Table returns the named table or an error.
func (s *Store) Table(name string) (*Table, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("no stored data for table %q", name)
	}
	return t, nil
}

// Insert appends rows to the named table and bumps its version. Inserting
// into a table that does not exist is an error: auto-creating it would turn
// a typo'd name into a silent empty table.
func (s *Store) Insert(name string, rows []sqltypes.Row) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(name)
	t, ok := s.tables[key]
	if !ok {
		return fmt.Errorf("insert into unknown table %q", name)
	}
	from := len(t.Rows)
	t.Rows = append(t.Rows, rows...)
	// Keep secondary indexes live across inserts: an index built by ANALYZE
	// would otherwise go stale and hide the new rows from index scans.
	t.extendIndexes(from)
	t.InvalidateColumns()
	s.versions[key]++
	return nil
}

// Touch bumps the named table's version without changing its rows. Callers
// that mutate a Table in place (bulk-load Append, view delta merges) use it
// to signal that cached results derived from the table are stale.
func (s *Store) Touch(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(name)
	if t, ok := s.tables[key]; ok {
		// In-place mutations change values the columnar shadow has already
		// encoded; the epoch bump forces a rebuild on next columnar read.
		t.InvalidateColumns()
	}
	s.versions[key]++
}

// Version returns the table's monotonic modification counter. Names that
// have never been written report 0.
func (s *Store) Version(name string) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.versions[strings.ToLower(name)]
}

// Versions snapshots the version counters for the given table names under
// one lock acquisition, so the result is a consistent cut.
func (s *Store) Versions(names []string) map[string]uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]uint64, len(names))
	for _, n := range names {
		out[strings.ToLower(n)] = s.versions[strings.ToLower(n)]
	}
	return out
}

// analyzeColumnar selects the typed-chunk ANALYZE implementation; the row
// fallback remains for heterogeneous columns and for benchmarking the
// allocation difference.
var analyzeColumnar = true

// AnalyzeTable computes fresh statistics for a stored table and installs
// them on the catalog object: row count and, per column, distinct count,
// min/max, and null fraction. Statistics are computed from the columnar
// shadow where possible — distinct counting over typed slices (a string
// dictionary is its own distinct count) instead of one rendered string per
// datum — falling back to the row form for heterogeneous columns.
func AnalyzeTable(ct *catalog.Table, st *Table) {
	n := len(st.Rows)
	stats := catalog.TableStats{RowCount: float64(n), Cols: make([]catalog.ColStat, len(ct.Cols))}
	var cd *ColumnData
	if analyzeColumnar {
		cd = st.Columns()
	}
	var rowBytes int
	for ci := range ct.Cols {
		var cs catalog.ColStat
		if cd != nil && ci < len(cd.Cols) && cd.Cols[ci].OK {
			cs = colStatFromColumn(&cd.Cols[ci], n)
		} else {
			cs = colStatFromRows(st.Rows, ci)
		}
		if cs.Distinct == 0 {
			cs.Distinct = 1
		}
		stats.Cols[ci] = cs
	}
	for _, r := range st.Rows {
		rowBytes += sqltypes.RowSize(r)
	}
	ct.Stats = stats
	if n > 0 {
		ct.AvgRowSize = float64(rowBytes) / float64(n)
	}

	// (Re)build declared secondary indexes: sorted row permutations.
	if len(ct.Indexes) > 0 {
		st.Indexes = make(map[int][]int, len(ct.Indexes))
		for _, ix := range ct.Indexes {
			perm := make([]int, n)
			for i := range perm {
				perm[i] = i
			}
			col := ix.Col
			sort.SliceStable(perm, func(a, b int) bool {
				return sqltypes.Compare(st.Rows[perm[a]][col], st.Rows[perm[b]][col]) < 0
			})
			st.Indexes[col] = perm
		}
	}
}

// colStatFromColumn computes one column's statistics from its typed chunk.
// The results match colStatFromRows exactly: distinct values are counted on
// the typed payload (the dictionary for strings, raw bits with canonical
// NaNs for floats — both agree with distinct-by-rendered-string), and
// min/max replicate sqltypes.Compare, including its NaN-sorts-first rule.
func colStatFromColumn(col *Column, n int) catalog.ColStat {
	nulls := col.NullCount(n)
	cs := catalog.ColStat{}
	if n > 0 {
		cs.NullFrac = float64(nulls) / float64(n)
	}
	if nulls == n || n == 0 {
		return cs // Min/Max stay NULL, Distinct 0 (caller floors to 1)
	}
	switch col.Kind {
	case sqltypes.KindInt, sqltypes.KindDate, sqltypes.KindBool:
		seen := make(map[int64]struct{})
		var minV, maxV int64
		first := true
		for i, v := range col.Ints {
			if !col.IsValid(i) {
				continue
			}
			seen[v] = struct{}{}
			if first || v < minV {
				minV = v
			}
			if first || v > maxV {
				maxV = v
			}
			first = false
		}
		cs.Distinct = float64(len(seen))
		mk := func(v int64) sqltypes.Datum {
			switch col.Kind {
			case sqltypes.KindDate:
				return sqltypes.NewDate(v)
			case sqltypes.KindBool:
				return sqltypes.NewBool(v != 0)
			default:
				return sqltypes.NewInt(v)
			}
		}
		cs.Min, cs.Max = mk(minV), mk(maxV)
	case sqltypes.KindFloat:
		seen := make(map[uint64]struct{})
		var minV, maxV float64
		first := true
		for i, v := range col.Floats {
			if !col.IsValid(i) {
				continue
			}
			bits := math.Float64bits(v)
			if math.IsNaN(v) {
				bits = math.Float64bits(math.NaN()) // one distinct NaN
			}
			seen[bits] = struct{}{}
			if first {
				minV, maxV = v, v
				first = false
				continue
			}
			// Compare's float order: NaN sorts before every other value.
			if v < minV || (math.IsNaN(v) && !math.IsNaN(minV)) {
				minV = v
			}
			if v > maxV || (math.IsNaN(maxV) && !math.IsNaN(v)) {
				maxV = v
			}
		}
		cs.Distinct = float64(len(seen))
		cs.Min, cs.Max = sqltypes.NewFloat(minV), sqltypes.NewFloat(maxV)
	case sqltypes.KindString:
		// Every dictionary entry appears in some row, so the dictionary is
		// the distinct set; min/max scan it instead of the rows.
		cs.Distinct = float64(len(col.Dict))
		minS, maxS := col.Dict[0], col.Dict[0]
		for _, s := range col.Dict[1:] {
			if s < minS {
				minS = s
			}
			if s > maxS {
				maxS = s
			}
		}
		cs.Min, cs.Max = sqltypes.NewString(minS), sqltypes.NewString(maxS)
	}
	return cs
}

// colStatFromRows is the row-at-a-time fallback (heterogeneous columns): it
// renders each datum to count distincts, which allocates per datum.
func colStatFromRows(rows []sqltypes.Row, ci int) catalog.ColStat {
	seen := make(map[string]struct{})
	var min, max sqltypes.Datum
	nulls := 0
	first := true
	for _, r := range rows {
		d := r[ci]
		if d.IsNull() {
			nulls++
			continue
		}
		seen[d.String()] = struct{}{}
		if first {
			min, max = d, d
			first = false
			continue
		}
		if sqltypes.Compare(d, min) < 0 {
			min = d
		}
		if sqltypes.Compare(d, max) > 0 {
			max = d
		}
	}
	cs := catalog.ColStat{Distinct: float64(len(seen)), Min: min, Max: max}
	if n := len(rows); n > 0 {
		cs.NullFrac = float64(nulls) / float64(n)
	}
	return cs
}

// SortRows sorts rows lexicographically in place; used to canonicalize
// result sets for comparison in tests.
func SortRows(rows []sqltypes.Row) {
	sort.Slice(rows, func(i, j int) bool {
		return sqltypes.CompareRows(rows[i], rows[j]) < 0
	})
}
