// Package storage provides the in-memory row store backing base tables,
// materialized views, spool work tables, and delta tables.
package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/catalog"
	"repro/internal/sqltypes"
)

// Table holds the rows of one stored object, plus any secondary indexes
// (sorted row-number permutations keyed by column ordinal).
type Table struct {
	Name    string
	Rows    []sqltypes.Row
	Indexes map[int][]int
}

// Index returns the sorted permutation for a column, or nil when absent.
func (t *Table) Index(col int) []int {
	return t.Indexes[col]
}

// Append adds a row (without copying).
func (t *Table) Append(r sqltypes.Row) { t.Rows = append(t.Rows, r) }

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.Rows) }

// Store maps table names to their rows. A Store instance is safe for
// concurrent readers once loading completes; mutations are serialized by the
// engine.
//
// Every table carries a monotonic version counter, bumped by Create, Insert,
// Drop, and Touch. Versions are the cache-invalidation primitive: a cached
// result records the versions of every table it read, and is rejected when
// any of them has moved. Counters live in their own map so that a
// Drop-then-Create sequence never reuses a version a cached entry may still
// hold.
type Store struct {
	mu       sync.RWMutex
	tables   map[string]*Table
	versions map[string]uint64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{tables: make(map[string]*Table), versions: make(map[string]uint64)}
}

// Create registers an empty table and bumps its version. It replaces any
// existing table of the same name (used when rebuilding materialized views).
func (s *Store) Create(name string) *Table {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(name)
	t := &Table{Name: name}
	s.tables[key] = t
	s.versions[key]++
	return t
}

// Drop deletes the named table (the table itself, not just its rows) and
// bumps its version so cached results derived from it are invalidated. The
// version counter outlives the table: re-creating the same name continues
// the sequence rather than restarting it.
func (s *Store) Drop(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(name)
	delete(s.tables, key)
	s.versions[key]++
}

// Table returns the named table or an error.
func (s *Store) Table(name string) (*Table, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("no stored data for table %q", name)
	}
	return t, nil
}

// Insert appends rows to the named table and bumps its version. Inserting
// into a table that does not exist is an error: auto-creating it would turn
// a typo'd name into a silent empty table.
func (s *Store) Insert(name string, rows []sqltypes.Row) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(name)
	t, ok := s.tables[key]
	if !ok {
		return fmt.Errorf("insert into unknown table %q", name)
	}
	t.Rows = append(t.Rows, rows...)
	s.versions[key]++
	return nil
}

// Touch bumps the named table's version without changing its rows. Callers
// that mutate a Table in place (bulk-load Append, view delta merges) use it
// to signal that cached results derived from the table are stale.
func (s *Store) Touch(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.versions[strings.ToLower(name)]++
}

// Version returns the table's monotonic modification counter. Names that
// have never been written report 0.
func (s *Store) Version(name string) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.versions[strings.ToLower(name)]
}

// Versions snapshots the version counters for the given table names under
// one lock acquisition, so the result is a consistent cut.
func (s *Store) Versions(names []string) map[string]uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]uint64, len(names))
	for _, n := range names {
		out[strings.ToLower(n)] = s.versions[strings.ToLower(n)]
	}
	return out
}

// AnalyzeTable computes fresh statistics for a stored table and installs
// them on the catalog object: row count and, per column, distinct count,
// min/max, and null fraction.
func AnalyzeTable(ct *catalog.Table, st *Table) {
	n := len(st.Rows)
	stats := catalog.TableStats{RowCount: float64(n), Cols: make([]catalog.ColStat, len(ct.Cols))}
	var rowBytes int
	for ci := range ct.Cols {
		seen := make(map[string]struct{})
		var min, max sqltypes.Datum
		nulls := 0
		first := true
		for _, r := range st.Rows {
			d := r[ci]
			if d.IsNull() {
				nulls++
				continue
			}
			seen[d.String()] = struct{}{}
			if first {
				min, max = d, d
				first = false
				continue
			}
			if sqltypes.Compare(d, min) < 0 {
				min = d
			}
			if sqltypes.Compare(d, max) > 0 {
				max = d
			}
		}
		cs := catalog.ColStat{Distinct: float64(len(seen)), Min: min, Max: max}
		if n > 0 {
			cs.NullFrac = float64(nulls) / float64(n)
		}
		if cs.Distinct == 0 {
			cs.Distinct = 1
		}
		stats.Cols[ci] = cs
	}
	for _, r := range st.Rows {
		rowBytes += sqltypes.RowSize(r)
	}
	ct.Stats = stats
	if n > 0 {
		ct.AvgRowSize = float64(rowBytes) / float64(n)
	}

	// (Re)build declared secondary indexes: sorted row permutations.
	if len(ct.Indexes) > 0 {
		st.Indexes = make(map[int][]int, len(ct.Indexes))
		for _, ix := range ct.Indexes {
			perm := make([]int, n)
			for i := range perm {
				perm[i] = i
			}
			col := ix.Col
			sort.SliceStable(perm, func(a, b int) bool {
				return sqltypes.Compare(st.Rows[perm[a]][col], st.Rows[perm[b]][col]) < 0
			})
			st.Indexes[col] = perm
		}
	}
}

// SortRows sorts rows lexicographically in place; used to canonicalize
// result sets for comparison in tests.
func SortRows(rows []sqltypes.Row) {
	sort.Slice(rows, func(i, j int) bool {
		return sqltypes.CompareRows(rows[i], rows[j]) < 0
	})
}
