package exec_test

import (
	"context"
	"testing"

	"repro/csedb"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/logical"
	"repro/internal/opt"
	"repro/internal/storage"
)

// benchPlan optimizes sql once against a TPC-H sf 0.01 database and returns
// everything RunWithOptions needs, so the benchmark loop measures executor
// time only (no parsing or optimization).
func benchPlan(b *testing.B, sql string) (*opt.Result, *logical.Metadata, *storage.Store) {
	b.Helper()
	s := core.DefaultSettings()
	db := csedb.Open(csedb.Options{CSE: &s, CacheBudget: -1})
	if err := db.LoadTPCH(0.01, 42); err != nil {
		b.Fatal(err)
	}
	out, md, err := db.Optimize(sql)
	if err != nil {
		b.Fatal(err)
	}
	return out.Result, md, db.Store()
}

// runExecBench runs the executor benchmark sequentially and with 8 workers.
func runExecBench(b *testing.B, sql string) {
	res, md, store := benchPlan(b, sql)
	for _, bc := range []struct {
		name string
		opts exec.Options
	}{
		{"seq", exec.Options{Parallelism: 1}},
		{"par8", exec.Options{Parallelism: 8}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := exec.RunWithOptions(context.Background(), res, md, store, bc.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScanFilterProject exercises the fused scan→filter→project path:
// a selective predicate and an arithmetic projection over lineitem.
func BenchmarkScanFilterProject(b *testing.B) {
	runExecBench(b, `
select l_orderkey, l_extendedprice * (1 - l_discount) as net
from lineitem
where l_discount > 0.02 and l_quantity < 30;`)
}

// BenchmarkHashJoin exercises the parallel probe with per-worker output
// slabs: a three-way join with a residual-free equi-join spine.
func BenchmarkHashJoin(b *testing.B) {
	runExecBench(b, `
select c_nationkey, o_totalprice, l_extendedprice
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and o_orderdate < '1996-07-01';`)
}

// BenchmarkHashAgg exercises block-parallel partial aggregation with exact
// float sums merged in block order.
func BenchmarkHashAgg(b *testing.B) {
	runExecBench(b, `
select l_suppkey, l_returnflag, sum(l_extendedprice) as rev, sum(l_quantity) as qty, count(*) as n
from lineitem
group by l_suppkey, l_returnflag;`)
}
