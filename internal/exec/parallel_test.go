package exec_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/csedb"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/exec"
)

// renderResults canonicalizes per-statement output for byte comparison.
func renderResults(rs []*exec.StatementResult) string {
	var sb strings.Builder
	for i, r := range rs {
		fmt.Fprintf(&sb, "-- statement %d: %s\n", i+1, strings.Join(r.Names, ","))
		for _, row := range r.Rows {
			sb.WriteString(row.String())
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// TestParallelMatchesSequentialStress executes a TPC-H batch with many
// shared (and stacked) spools on a wide worker pool under the race
// detector, asserting each spool materializes exactly once and that results
// byte-match the sequential executor.
func TestParallelMatchesSequentialStress(t *testing.T) {
	s := core.DefaultSettings()
	db := csedb.Open(csedb.Options{CSE: &s})
	if err := db.LoadTPCH(0.01, 42); err != nil {
		t.Fatal(err)
	}
	// Example 1's stacked-CSE batch plus a scale-up batch of six similar
	// queries: several covering subexpressions with multi-consumer and
	// spool-on-spool dependencies.
	sql := bench.Table2SQL() + "\n" + bench.Figure8SQL(6)
	out, md, err := db.Optimize(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Result.CSEs) < 2 {
		t.Fatalf("batch produced %d CSEs, want >= 2 for a meaningful stress test", len(out.Result.CSEs))
	}

	ctx := context.Background()
	seqRes, seqStats, err := exec.RunWithOptions(ctx, out.Result, md, db.Store(), exec.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !seqStats.Sequential {
		t.Error("Parallelism=1 must select the sequential executor")
	}
	want := renderResults(seqRes)

	for rep := 0; rep < 3; rep++ {
		parRes, parStats, err := exec.RunWithOptions(ctx, out.Result, md, db.Store(), exec.Options{Parallelism: 8})
		if err != nil {
			t.Fatal(err)
		}
		if parStats.Sequential {
			t.Fatalf("parallel run fell back to sequential: %s", parStats.FallbackReason)
		}
		if got := renderResults(parRes); got != want {
			t.Fatalf("rep %d: parallel results differ from sequential\nparallel:\n%s\nsequential:\n%s", rep, got, want)
		}
		if len(parStats.SpoolRuns) != len(out.Result.CSEs) {
			t.Errorf("rep %d: %d spools materialized, want %d", rep, len(parStats.SpoolRuns), len(out.Result.CSEs))
		}
		for id, n := range parStats.SpoolRuns {
			if n != 1 {
				t.Errorf("rep %d: CSE %d materialized %d times, want exactly once", rep, id, n)
			}
		}
		for id, rows := range seqStats.SpoolRows {
			if parStats.SpoolRows[id] != rows {
				t.Errorf("rep %d: CSE %d spooled %d rows in parallel, %d sequential", rep, id, parStats.SpoolRows[id], rows)
			}
		}
		if len(parStats.Waves) == 0 {
			t.Errorf("rep %d: parallel run recorded no spool waves", rep)
		}
		if parStats.Workers != 8 {
			t.Errorf("rep %d: workers = %d, want 8", rep, parStats.Workers)
		}
	}
}

// TestDBExecParallelismOption drives the public facade knob end to end.
func TestDBExecParallelismOption(t *testing.T) {
	seqDB := tinyDB(t)
	seqDB.SetExecParallelism(1)
	parDB := tinyDB(t)
	parDB.SetExecParallelism(4)

	sql := `select dept, sum(salary) as s from emp where salary > 60 group by dept order by s desc;
select dept, count(*) as n from emp where salary > 60 group by dept order by n desc;
select id from emp where salary > 60 order by id;`
	seq, err := seqDB.Run(sql)
	if err != nil {
		t.Fatal(err)
	}
	par, err := parDB.Run(sql)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderResults(par.Statements), renderResults(seq.Statements); got != want {
		t.Fatalf("ExecParallelism=4 results differ:\n%s\nvs sequential:\n%s", got, want)
	}
	if par.ExecStats == nil || seq.ExecStats == nil {
		t.Fatal("BatchResult.ExecStats not populated")
	}
	if !seq.ExecStats.Sequential {
		t.Error("ExecParallelism=1 must report a sequential run")
	}
	if par.ExecStats.Workers != 4 {
		t.Errorf("parallel workers = %d, want 4", par.ExecStats.Workers)
	}
}

// TestRunContextCancellation: a cancelled context aborts execution.
func TestRunContextCancellation(t *testing.T) {
	db := tinyDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.RunContext(ctx, "select id from emp"); err == nil {
		t.Fatal("cancelled context must abort execution")
	}
}
