package exec

import (
	"sync"
	"sync/atomic"

	"repro/internal/opt"
	"repro/internal/sqltypes"
)

// DefaultChunkSize is the morsel granularity: operator inputs are processed
// in fixed-size row chunks so work can be dispatched to the intra-operator
// worker pool with bounded skew while per-chunk overhead stays negligible.
const DefaultChunkSize = 1024

// morselSize is the context's morsel granularity; a Context built without
// newContext (tests) falls back to the default.
func (c *Context) morselSize() int {
	if c.chunkSize > 0 {
		return c.chunkSize
	}
	return DefaultChunkSize
}

// morselEmit processes input positions [lo, hi) of one operator, appending
// output rows to out. The arena is private to the calling worker; emitted
// rows may be carved from it.
type morselEmit func(arena *sqltypes.RowArena, lo, hi int, out *[]sqltypes.Row) error

// runMorsels executes emit over the domain [0, n) in chunkSize morsels.
// With a single worker (or a single morsel) it runs inline; otherwise
// morsels are pulled off a shared counter by this goroutine plus up to
// workers-1 helpers from the batch-wide intra-op pool. Each morsel writes
// its own output slice and the slices are concatenated in morsel order, so
// the result is byte-identical to a sequential pass regardless of how many
// helpers actually ran.
func (c *Context) runMorsels(p *opt.Plan, n int, emit morselEmit) ([]sqltypes.Row, error) {
	chunk := c.morselSize()
	nMorsels := (n + chunk - 1) / chunk
	if c.workers <= 1 || nMorsels <= 1 {
		var arena sqltypes.RowArena
		var out []sqltypes.Row
		if err := emit(&arena, 0, n, &out); err != nil {
			return nil, err
		}
		return out, nil
	}

	outs := make([][]sqltypes.Row, nMorsels)
	var next atomic.Int64
	worker := func() error {
		var arena sqltypes.RowArena
		for {
			if err := c.ctx.Err(); err != nil {
				return err
			}
			m := int(next.Add(1)) - 1
			if m >= nMorsels {
				return nil
			}
			lo := m * chunk
			hi := min(lo+chunk, n)
			if err := emit(&arena, lo, hi, &outs[m]); err != nil {
				return err
			}
		}
	}
	if err := c.runWorkers(p, nMorsels, min(c.workers, nMorsels), worker); err != nil {
		return nil, err
	}

	total := 0
	for _, o := range outs {
		total += len(o)
	}
	out := make([]sqltypes.Row, 0, total)
	for _, o := range outs {
		out = append(out, o...)
	}
	return out, nil
}

// runParts executes work(part) for every part in [0, nParts), in parallel
// when the pool allows. Parts are claimed dynamically; callers that need a
// deterministic result must make each part's output independent of which
// worker ran it (e.g. write into a per-part slot).
func (c *Context) runParts(p *opt.Plan, nParts int, work func(part int) error) error {
	if c.workers <= 1 || nParts <= 1 {
		for i := 0; i < nParts; i++ {
			if err := work(i); err != nil {
				return err
			}
		}
		return nil
	}
	var next atomic.Int64
	worker := func() error {
		for {
			if err := c.ctx.Err(); err != nil {
				return err
			}
			m := int(next.Add(1)) - 1
			if m >= nParts {
				return nil
			}
			if err := work(m); err != nil {
				return err
			}
		}
	}
	return c.runWorkers(p, nParts, min(c.workers, nParts), worker)
}

// runWorkers runs the worker loop on this goroutine plus as many helpers
// (up to want-1) as the batch-wide intra-op pool can lend, returning the
// first error. It records the operator's morsel count and achieved degree.
func (c *Context) runWorkers(p *opt.Plan, nMorsels, want int, worker func() error) error {
	helpers := 0
acquire:
	for helpers < want-1 {
		select {
		case c.pool <- struct{}{}:
			helpers++
		default:
			break acquire // pool exhausted; run with what we have
		}
	}
	c.stats.recordMorsels(p, nMorsels, helpers+1)

	if helpers == 0 {
		return worker()
	}
	errs := make([]error, helpers)
	var wg sync.WaitGroup
	for i := 0; i < helpers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer func() {
				<-c.pool
				wg.Done()
			}()
			errs[i] = worker()
		}()
	}
	err := worker()
	wg.Wait()
	if err != nil {
		return err
	}
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// blockBounds splits [0, n) into at most workers contiguous, chunk-aligned
// blocks of near-equal size, returned as block boundaries (len = blocks+1).
// Used by operators whose merge step needs contiguous input ranges (hash
// aggregation); the boundaries depend only on n, the chunk size, and the
// pool size — never on scheduling — so results stay deterministic.
func (c *Context) blockBounds(n int) []int {
	if n == 0 {
		return []int{0, 0}
	}
	chunk := c.morselSize()
	nChunks := (n + chunk - 1) / chunk
	parts := c.workers
	if parts < 1 {
		parts = 1
	}
	if parts > nChunks {
		parts = nChunks
	}
	bounds := make([]int, 0, parts+1)
	bounds = append(bounds, 0)
	base, rem := nChunks/parts, nChunks%parts
	pos := 0
	for i := 0; i < parts; i++ {
		cnt := base
		if i < rem {
			cnt++
		}
		pos += cnt * chunk
		if pos > n {
			pos = n
		}
		bounds = append(bounds, pos)
	}
	bounds[len(bounds)-1] = n
	return bounds
}
