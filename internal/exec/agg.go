package exec

import (
	"fmt"

	"repro/internal/opt"
	"repro/internal/scalar"
	"repro/internal/sqltypes"
)

// aggState accumulates one aggregate for one group.
type aggState struct {
	kind  scalar.AggKind
	count int64
	sumI  int64
	sumF  float64
	isInt bool
	first bool
	minD  sqltypes.Datum
	maxD  sqltypes.Datum
}

func newAggState(kind scalar.AggKind) *aggState {
	return &aggState{kind: kind, isInt: true, first: true}
}

func (s *aggState) add(d sqltypes.Datum) {
	if s.kind == scalar.AggCountStar {
		s.count++
		return
	}
	if d.IsNull() {
		return
	}
	s.count++
	switch s.kind {
	case scalar.AggSum:
		if d.Kind() == sqltypes.KindInt && s.isInt {
			s.sumI += d.Int()
		} else {
			if s.isInt {
				s.sumF = float64(s.sumI)
				s.isInt = false
			}
			s.sumF += d.Float()
		}
	case scalar.AggMin:
		if s.first || sqltypes.Compare(d, s.minD) < 0 {
			s.minD = d
		}
	case scalar.AggMax:
		if s.first || sqltypes.Compare(d, s.maxD) > 0 {
			s.maxD = d
		}
	}
	s.first = false
}

func (s *aggState) result() sqltypes.Datum {
	switch s.kind {
	case scalar.AggCount, scalar.AggCountStar:
		return sqltypes.NewInt(s.count)
	case scalar.AggSum:
		if s.count == 0 {
			return sqltypes.Null
		}
		if s.isInt {
			return sqltypes.NewInt(s.sumI)
		}
		return sqltypes.NewFloat(s.sumF)
	case scalar.AggMin:
		if s.count == 0 {
			return sqltypes.Null
		}
		return s.minD
	case scalar.AggMax:
		if s.count == 0 {
			return sqltypes.Null
		}
		return s.maxD
	default:
		return sqltypes.Null
	}
}

func (c *Context) execHashAgg(p *opt.Plan) ([]sqltypes.Row, error) {
	in, err := c.exec(p.Children[0])
	if err != nil {
		return nil, err
	}
	layout := layoutOf(p.Children[0].Cols)
	groupIdx := make([]int, len(p.GroupCols))
	for i, g := range p.GroupCols {
		pos, ok := layout[g]
		if !ok {
			return nil, fmt.Errorf("grouping column @%d missing from aggregation input", g)
		}
		groupIdx[i] = pos
	}
	argFns := make([]scalar.EvalFn, len(p.Aggs))
	for i, a := range p.Aggs {
		if a.Kind == scalar.AggCountStar {
			continue
		}
		fn, err := c.compile(a.Arg, layout)
		if err != nil {
			return nil, fmt.Errorf("compiling aggregate %s: %w", a, err)
		}
		argFns[i] = fn
	}

	type groupAcc struct {
		key    sqltypes.Row
		states []*aggState
	}
	hasher := sqltypes.NewHasher()
	groups := make(map[uint64][]*groupAcc)
	var order []*groupAcc
	keyIdx := seqIdx(len(groupIdx))

	for _, r := range in {
		h := hasher.HashRow(r, groupIdx)
		var acc *groupAcc
		for _, g := range groups[h] {
			if keysEqual(r, groupIdx, g.key, keyIdx) {
				acc = g
				break
			}
		}
		if acc == nil {
			key := make(sqltypes.Row, len(groupIdx))
			for i, gi := range groupIdx {
				key[i] = r[gi]
			}
			acc = &groupAcc{key: key, states: make([]*aggState, len(p.Aggs))}
			for i, a := range p.Aggs {
				acc.states[i] = newAggState(a.Kind)
			}
			groups[h] = append(groups[h], acc)
			order = append(order, acc)
		}
		for i := range p.Aggs {
			if p.Aggs[i].Kind == scalar.AggCountStar {
				acc.states[i].add(sqltypes.Null)
			} else {
				acc.states[i].add(argFns[i](r))
			}
		}
	}

	// Scalar aggregation over empty input yields one row.
	if len(order) == 0 && len(p.GroupCols) == 0 {
		acc := &groupAcc{states: make([]*aggState, len(p.Aggs))}
		for i, a := range p.Aggs {
			acc.states[i] = newAggState(a.Kind)
		}
		order = append(order, acc)
	}

	out := make([]sqltypes.Row, len(order))
	for ri, acc := range order {
		row := make(sqltypes.Row, len(p.GroupCols)+len(p.Aggs))
		copy(row, acc.key)
		for i, st := range acc.states {
			row[len(p.GroupCols)+i] = st.result()
		}
		out[ri] = row
	}
	return out, nil
}

// seqIdx returns [0,1,...,n-1] for comparing a key row against itself.
func seqIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}
