package exec

import (
	"fmt"
	"math"

	"repro/internal/opt"
	"repro/internal/scalar"
	"repro/internal/sqltypes"
)

// floatSum accumulates float64 values exactly as a Shewchuk expansion of
// non-overlapping partials (the algorithm behind Python's math.fsum). The
// expansion represents the running sum with no rounding error, so the final
// rounded result is independent of accumulation order — which is what lets
// per-worker partial aggregates merge into bit-identical results no matter
// how the input was partitioned.
type floatSum struct {
	partials []float64
}

func (f *floatSum) add(x float64) {
	i := 0
	for _, y := range f.partials {
		if math.Abs(x) < math.Abs(y) {
			x, y = y, x
		}
		hi := x + y
		lo := y - (hi - x)
		if lo != 0 {
			f.partials[i] = lo
			i++
		}
		x = hi
	}
	f.partials = append(f.partials[:i], x)
}

// merge folds another expansion into this one; both remain exact, so the
// merged sum equals accumulating every original input in any order.
func (f *floatSum) merge(o *floatSum) {
	for _, p := range o.partials {
		f.add(p)
	}
}

// round returns the correctly rounded value of the expansion: sum the
// partials from most to least significant, then resolve the half-ulp case
// against the next partial's sign (as math.fsum does).
func (f *floatSum) round() float64 {
	n := len(f.partials)
	if n == 0 {
		return 0
	}
	n--
	hi := f.partials[n]
	var lo float64
	for n > 0 {
		x := hi
		n--
		y := f.partials[n]
		hi = x + y
		yr := hi - x
		lo = y - yr
		if lo != 0 {
			break
		}
	}
	if n > 0 && ((lo < 0 && f.partials[n-1] < 0) || (lo > 0 && f.partials[n-1] > 0)) {
		y := lo * 2.0
		x := hi + y
		if y == x-hi {
			hi = x
		}
	}
	return hi
}

// aggState accumulates one aggregate for one group. Every state is
// mergeable: two states built over disjoint row sets combine into exactly
// the state a single pass over the union would produce (integer sums are
// exact, float sums use an exact expansion, min/max/count are trivially
// order-independent), so parallel partial aggregation is deterministic.
type aggState struct {
	kind  scalar.AggKind
	count int64
	sumI  int64    // exact sum of integer inputs
	sumF  floatSum // exact sum of float inputs
	isInt bool     // no float input seen yet
	first bool     // no non-null input seen yet (min/max)
	minD  sqltypes.Datum
	maxD  sqltypes.Datum
}

func newAggState(kind scalar.AggKind) *aggState {
	return &aggState{kind: kind, isInt: true, first: true}
}

func (s *aggState) add(d sqltypes.Datum) {
	if s.kind == scalar.AggCountStar {
		s.count++
		return
	}
	if d.IsNull() {
		return
	}
	s.count++
	switch s.kind {
	case scalar.AggSum:
		if d.Kind() == sqltypes.KindInt {
			s.sumI += d.Int()
		} else {
			s.isInt = false
			s.sumF.add(d.Float())
		}
	case scalar.AggMin:
		if s.first || sqltypes.Compare(d, s.minD) < 0 {
			s.minD = d
		}
	case scalar.AggMax:
		if s.first || sqltypes.Compare(d, s.maxD) > 0 {
			s.maxD = d
		}
	}
	s.first = false
}

// merge folds another state for the same aggregate into this one. o must
// cover rows that come after s's rows in input order (min/max ties keep the
// earlier datum, matching the sequential first-seen rule).
func (s *aggState) merge(o *aggState) {
	s.count += o.count
	switch s.kind {
	case scalar.AggSum:
		s.sumI += o.sumI
		s.sumF.merge(&o.sumF)
		s.isInt = s.isInt && o.isInt
	case scalar.AggMin:
		if !o.first && (s.first || sqltypes.Compare(o.minD, s.minD) < 0) {
			s.minD = o.minD
		}
	case scalar.AggMax:
		if !o.first && (s.first || sqltypes.Compare(o.maxD, s.maxD) > 0) {
			s.maxD = o.maxD
		}
	}
	s.first = s.first && o.first
}

func (s *aggState) result() sqltypes.Datum {
	switch s.kind {
	case scalar.AggCount, scalar.AggCountStar:
		return sqltypes.NewInt(s.count)
	case scalar.AggSum:
		if s.count == 0 {
			return sqltypes.Null
		}
		if s.isInt {
			return sqltypes.NewInt(s.sumI)
		}
		// Fold the exact integer part into the expansion as a split pair so
		// the mixed-kind sum stays exact too.
		total := s.sumF
		if s.sumI != 0 {
			hi := float64(s.sumI)
			total.add(hi)
			if lo := s.sumI - int64(hi); lo != 0 {
				total.add(float64(lo))
			}
		}
		return sqltypes.NewFloat(total.round())
	case scalar.AggMin:
		if s.count == 0 {
			return sqltypes.Null
		}
		return s.minD
	case scalar.AggMax:
		if s.count == 0 {
			return sqltypes.Null
		}
		return s.maxD
	default:
		return sqltypes.Null
	}
}

// groupAcc is one group's key and accumulator set; hash caches the group
// key's hash so partial merges never rehash.
type groupAcc struct {
	hash   uint64
	key    sqltypes.Row
	states []*aggState
}

// aggSpec is the compiled shape of a hash aggregation, shared (read-only) by
// every worker.
type aggSpec struct {
	groupIdx []int
	keyIdx   []int
	aggs     []logicalAgg
	hasher   *sqltypes.Hasher
}

// logicalAgg pairs an aggregate's kind with its compiled argument.
type logicalAgg struct {
	kind scalar.AggKind
	arg  scalar.EvalFn // nil for COUNT(*)
}

// aggPartial accumulates groups over a contiguous slice of the input,
// preserving first-occurrence order so block-ordered merging reproduces the
// sequential group order exactly.
type aggPartial struct {
	spec   *aggSpec
	groups map[uint64][]*groupAcc
	order  []*groupAcc
}

func newAggPartial(spec *aggSpec) *aggPartial {
	return &aggPartial{spec: spec, groups: make(map[uint64][]*groupAcc)}
}

// absorb accumulates a contiguous block of rows. hashes, when non-nil, holds
// the precomputed group-key hash of each row (column-at-a-time extraction);
// nil means hash row-wise.
func (ap *aggPartial) absorb(rows []sqltypes.Row, hashes []uint64) {
	spec := ap.spec
	for ri, r := range rows {
		var h uint64
		if hashes != nil {
			h = hashes[ri]
		} else {
			h = spec.hasher.HashRow(r, spec.groupIdx)
		}
		var acc *groupAcc
		for _, g := range ap.groups[h] {
			if keysEqual(r, spec.groupIdx, g.key, spec.keyIdx) {
				acc = g
				break
			}
		}
		if acc == nil {
			key := make(sqltypes.Row, len(spec.groupIdx))
			for i, gi := range spec.groupIdx {
				key[i] = r[gi]
			}
			acc = &groupAcc{hash: h, key: key, states: make([]*aggState, len(spec.aggs))}
			for i, a := range spec.aggs {
				acc.states[i] = newAggState(a.kind)
			}
			ap.groups[h] = append(ap.groups[h], acc)
			ap.order = append(ap.order, acc)
		}
		for i, a := range spec.aggs {
			if a.arg == nil {
				acc.states[i].add(sqltypes.Null)
			} else {
				acc.states[i].add(a.arg(r))
			}
		}
	}
}

// mergeFrom folds a later block's partial into this one. Groups first seen
// in the later block are appended in their order, so the combined order is
// global first-occurrence order.
func (ap *aggPartial) mergeFrom(o *aggPartial) {
	for _, oa := range o.order {
		var acc *groupAcc
		for _, g := range ap.groups[oa.hash] {
			if keysEqual(oa.key, ap.spec.keyIdx, g.key, ap.spec.keyIdx) {
				acc = g
				break
			}
		}
		if acc == nil {
			ap.groups[oa.hash] = append(ap.groups[oa.hash], oa)
			ap.order = append(ap.order, oa)
			continue
		}
		for i := range acc.states {
			acc.states[i].merge(oa.states[i])
		}
	}
}

func (c *Context) execHashAgg(p *opt.Plan) ([]sqltypes.Row, error) {
	layout := layoutOf(c.sourceCols(p.Children[0]))
	groupIdx, err := colPositions(p.GroupCols, layout, "grouping column")
	if err != nil {
		return nil, err
	}
	aggs := make([]logicalAgg, len(p.Aggs))
	for i, a := range p.Aggs {
		aggs[i].kind = a.Kind
		if a.Kind == scalar.AggCountStar {
			continue
		}
		fn, err := c.compile(a.Arg, layout)
		if err != nil {
			return nil, fmt.Errorf("compiling aggregate %s: %w", a, err)
		}
		aggs[i].arg = fn
	}
	in, err := c.execSource(p.Children[0])
	if err != nil {
		return nil, err
	}
	spec := &aggSpec{
		groupIdx: groupIdx,
		keyIdx:   seqIdx(len(groupIdx)),
		aggs:     aggs,
		hasher:   sqltypes.NewHasher(),
	}

	// Column-at-a-time group hashing when the input is backed by a columnar
	// shadow: one typed pass per grouping column replaces the per-row kind
	// switches, and the resulting hashes are identical to HashRow's.
	var hashes []uint64
	if cd := c.sourceView(p.Children[0], in); cd != nil {
		hashes = colHashRows(spec.hasher, cd, in, groupIdx)
		c.stats.recordColHash()
	}

	// Aggregate contiguous chunk-aligned blocks in parallel, then merge the
	// partials in block order: exact states make the values independent of
	// the partitioning, and ordered merging keeps the sequential
	// first-occurrence group order.
	bounds := c.blockBounds(len(in))
	partials := make([]*aggPartial, len(bounds)-1)
	err = c.runParts(p, len(partials), func(part int) error {
		ap := newAggPartial(spec)
		var bh []uint64
		if hashes != nil {
			bh = hashes[bounds[part]:bounds[part+1]]
		}
		ap.absorb(in[bounds[part]:bounds[part+1]], bh)
		partials[part] = ap
		return nil
	})
	if err != nil {
		return nil, err
	}
	var total *aggPartial
	if len(partials) > 0 {
		total = partials[0]
		for _, ap := range partials[1:] {
			total.mergeFrom(ap)
		}
	} else {
		total = newAggPartial(spec)
	}
	order := total.order

	// Scalar aggregation over empty input yields one row.
	if len(order) == 0 && len(p.GroupCols) == 0 {
		acc := &groupAcc{states: make([]*aggState, len(p.Aggs))}
		for i, a := range p.Aggs {
			acc.states[i] = newAggState(a.Kind)
		}
		order = append(order, acc)
	}

	var arena sqltypes.RowArena
	out := make([]sqltypes.Row, len(order))
	for ri, acc := range order {
		row := arena.NewRow(len(p.GroupCols) + len(p.Aggs))
		copy(row, acc.key)
		for i, st := range acc.states {
			row[len(p.GroupCols)+i] = st.result()
		}
		out[ri] = row
	}
	return out, nil
}

// seqIdx returns [0,1,...,n-1] for comparing a key row against itself.
func seqIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}
