package exec

import (
	"math"
	"strings"

	"repro/internal/scalar"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// Selection-vector kernels: a scan/filter predicate is split into top-level
// conjuncts, and each conjunct that matches a supported shape (column vs
// constant comparison, column vs column on matching kinds, column LIKE
// pattern) is compiled into a typed loop over the columnar shadow. The
// first kernel scans its column range densely, producing a []int32
// selection vector; later kernels refine it in place; conjuncts that don't
// kernelize are folded into a single row-wise residual that only sees the
// surviving rows. Kernels replicate sqltypes.Compare exactly — NULL drops
// the row, cross-kind numerics compare through float64, mismatched
// non-numeric kinds compare by kind ordinal, NaN sorts first — so the
// columnar plane is byte-identical to the row plane by construction (and
// the difftest matrix pins it).

// selKernel is one conjunct compiled against the columnar form. dense scans
// rows [lo,hi) appending passing indices to out; pass is the same predicate
// row-at-a-time, used for refining an existing (already reduced) selection.
type selKernel struct {
	dense func(lo, hi int32, out []int32) []int32
	pass  func(i int32) bool
}

// colSelection is a fully compiled predicate: kernels plus the row-wise
// residual for conjuncts that didn't kernelize (nil when all did).
type colSelection struct {
	kernels  []selKernel
	residual scalar.EvalFn
}

// buildColSelection compiles a filter (subqueries must already be
// substituted) into a colSelection over cd. layout maps column IDs to
// ordinals in cd/the row form — for scans these coincide with the table's
// column ordinals, for spools with the spool's declared layout. Returns nil
// when no conjunct kernelizes (callers fall back to the row path wholesale,
// so compile errors surface through the existing path too).
func (c *Context) buildColSelection(filter *scalar.Expr, cd *storage.ColumnData, layout map[scalar.ColID]int) *colSelection {
	if !c.colPlane || cd == nil || filter == nil {
		return nil
	}
	conjs := scalar.Conjuncts(filter)
	var kernels []selKernel
	var rest []*scalar.Expr
	for _, e := range conjs {
		if k, ok := kernelize(e, cd, layout); ok {
			kernels = append(kernels, k)
		} else {
			rest = append(rest, e)
		}
	}
	if len(kernels) == 0 {
		return nil
	}
	cs := &colSelection{kernels: kernels}
	if len(rest) > 0 {
		fn, err := scalar.Compile(scalar.And(rest...), layout)
		if err != nil {
			return nil
		}
		cs.residual = fn
	}
	c.stats.recordColSelect()
	return cs
}

// apply selects the passing rows of [lo, hi): dense first kernel, then
// refinement, then the residual over survivors.
func (cs *colSelection) apply(rows []sqltypes.Row, lo, hi int) []int32 {
	sel := cs.kernels[0].dense(int32(lo), int32(hi), make([]int32, 0, hi-lo))
	return cs.refineFrom(rows, sel, 1)
}

// refineSel refines an existing selection (e.g. an index-scan span) through
// every kernel and the residual; the selection's order is preserved.
func (cs *colSelection) refineSel(rows []sqltypes.Row, sel []int32) []int32 {
	return cs.refineFrom(rows, sel, 0)
}

func (cs *colSelection) refineFrom(rows []sqltypes.Row, sel []int32, from int) []int32 {
	for _, k := range cs.kernels[from:] {
		if len(sel) == 0 {
			return sel
		}
		out := sel[:0]
		for _, i := range sel {
			if k.pass(i) {
				out = append(out, i)
			}
		}
		sel = out
	}
	if cs.residual != nil && len(sel) > 0 {
		out := sel[:0]
		for _, i := range sel {
			d := cs.residual(rows[i])
			if !d.IsNull() && d.Bool() {
				out = append(out, i)
			}
		}
		sel = out
	}
	return sel
}

// kernelize compiles one conjunct, reporting false when its shape or types
// are unsupported (it then joins the residual).
func kernelize(e *scalar.Expr, cd *storage.ColumnData, layout map[scalar.ColID]int) (selKernel, bool) {
	switch e.Op {
	case scalar.OpEq, scalar.OpNe, scalar.OpLt, scalar.OpLe, scalar.OpGt, scalar.OpGe:
		l, r := e.Args[0], e.Args[1]
		switch {
		case l.Op == scalar.OpCol && r.Op == scalar.OpConst:
			return cmpColConst(e.Op, l.Col, r.Const, cd, layout)
		case l.Op == scalar.OpConst && r.Op == scalar.OpCol:
			return cmpColConst(flipCmp(e.Op), r.Col, l.Const, cd, layout)
		case l.Op == scalar.OpCol && r.Op == scalar.OpCol:
			return cmpColCol(e.Op, l.Col, r.Col, cd, layout)
		}
	case scalar.OpLike:
		if e.Args[0].Op == scalar.OpCol && e.Args[1].Op == scalar.OpConst {
			return likeColConst(e.Args[0].Col, e.Args[1].Const, cd, layout)
		}
	case scalar.OpConst:
		d := e.Const
		if d.IsNull() {
			return neverKernel(), true
		}
		if d.Kind() == sqltypes.KindBool {
			if d.Bool() {
				return allKernel(), true
			}
			return neverKernel(), true
		}
	}
	return selKernel{}, false
}

// flipCmp mirrors a comparison for swapped operands: const op col becomes
// col flip(op) const.
func flipCmp(op scalar.Op) scalar.Op {
	switch op {
	case scalar.OpLt:
		return scalar.OpGt
	case scalar.OpLe:
		return scalar.OpGe
	case scalar.OpGt:
		return scalar.OpLt
	case scalar.OpGe:
		return scalar.OpLe
	default:
		return op
	}
}

// cmpVerdict applies a comparison operator to a Compare result.
func cmpVerdict(op scalar.Op, c int) bool {
	switch op {
	case scalar.OpEq:
		return c == 0
	case scalar.OpNe:
		return c != 0
	case scalar.OpLt:
		return c < 0
	case scalar.OpLe:
		return c <= 0
	case scalar.OpGt:
		return c > 0
	default:
		return c >= 0
	}
}

// colOf resolves a column reference to its typed chunk, rejecting columns
// without one (missing from the layout, out of range, or heterogeneous).
func colOf(id scalar.ColID, cd *storage.ColumnData, layout map[scalar.ColID]int) (*storage.Column, bool) {
	pos, ok := layout[id]
	if !ok || pos < 0 || pos >= len(cd.Cols) {
		return nil, false
	}
	col := &cd.Cols[pos]
	if !col.OK {
		return nil, false
	}
	return col, true
}

func cmpColConst(op scalar.Op, id scalar.ColID, cv sqltypes.Datum, cd *storage.ColumnData, layout map[scalar.ColID]int) (selKernel, bool) {
	col, ok := colOf(id, cd, layout)
	if !ok {
		return selKernel{}, false
	}
	if cv.IsNull() || col.Kind == sqltypes.KindNull {
		// A comparison with NULL is NULL for every row: nothing passes.
		return neverKernel(), true
	}
	ck, vk := col.Kind, cv.Kind()
	switch {
	case ck == vk && (ck == sqltypes.KindInt || ck == sqltypes.KindDate):
		return intCmpKernel(col.Ints, col.Valid, op, cv.Int()), true
	case ck == vk && ck == sqltypes.KindBool:
		var b int64
		if cv.Bool() {
			b = 1
		}
		return intCmpKernel(col.Ints, col.Valid, op, b), true
	case ck == sqltypes.KindFloat && vk.Numeric():
		cf := cv.Float()
		if math.IsNaN(cf) {
			return floatNaNConstKernel(col.Floats, col.Valid, op), true
		}
		return floatCmpKernel(col.Floats, col.Valid, op, cf), true
	case ck == sqltypes.KindInt && vk == sqltypes.KindFloat:
		cf := cv.Float()
		if math.IsNaN(cf) {
			// cmpFloat(v, NaN) is +1 for every (never-NaN) int value.
			return verdictKernel(cmpVerdict(op, 1), col.Valid), true
		}
		return intFloatCmpKernel(col.Ints, col.Valid, op, cf), true
	case ck == vk && ck == sqltypes.KindString:
		mask := make([]bool, len(col.Dict))
		s := cv.Str()
		for k, ds := range col.Dict {
			mask[k] = cmpVerdict(op, strings.Compare(ds, s))
		}
		return maskKernel(col.Codes, col.Valid, mask), true
	default:
		// Mismatched kinds outside the numeric tower compare by kind
		// ordinal — a constant verdict for every non-NULL row.
		return verdictKernel(cmpVerdict(op, cmpKinds(ck, vk)), col.Valid), true
	}
}

func cmpKinds(a, b sqltypes.Kind) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpColCol(op scalar.Op, ida, idb scalar.ColID, cd *storage.ColumnData, layout map[scalar.ColID]int) (selKernel, bool) {
	a, okA := colOf(ida, cd, layout)
	b, okB := colOf(idb, cd, layout)
	if !okA || !okB {
		return selKernel{}, false
	}
	if a.Kind == sqltypes.KindNull || b.Kind == sqltypes.KindNull {
		return neverKernel(), true
	}
	if a.Kind != b.Kind {
		return selKernel{}, false // cross-kind column pairs stay row-wise
	}
	switch a.Kind {
	case sqltypes.KindInt, sqltypes.KindDate, sqltypes.KindBool:
		return intPairKernel(a.Ints, b.Ints, a.Valid, b.Valid, op), true
	case sqltypes.KindFloat:
		return floatPairKernel(a.Floats, b.Floats, a.Valid, b.Valid, op), true
	default:
		return selKernel{}, false
	}
}

func likeColConst(id scalar.ColID, cv sqltypes.Datum, cd *storage.ColumnData, layout map[scalar.ColID]int) (selKernel, bool) {
	col, ok := colOf(id, cd, layout)
	if !ok {
		return selKernel{}, false
	}
	// LIKE yields NULL (filter-false) unless both sides are strings.
	if cv.Kind() != sqltypes.KindString || col.Kind != sqltypes.KindString {
		return neverKernel(), true
	}
	// One LIKE evaluation per distinct string, then O(1) per row.
	pat := cv.Str()
	mask := make([]bool, len(col.Dict))
	for k, ds := range col.Dict {
		mask[k] = scalar.LikeMatch(ds, pat)
	}
	return maskKernel(col.Codes, col.Valid, mask), true
}

// bitSet reports whether bit i of the validity bitmap is set.
func bitSet(bm []uint64, i int32) bool {
	return bm[uint32(i)>>6]&(1<<(uint32(i)&63)) != 0
}

// ok2 reports row validity against an optional bitmap.
func ok1(valid []uint64, i int32) bool { return valid == nil || bitSet(valid, i) }

func allKernel() selKernel {
	return selKernel{
		dense: func(lo, hi int32, out []int32) []int32 {
			for i := lo; i < hi; i++ {
				out = append(out, i)
			}
			return out
		},
		pass: func(int32) bool { return true },
	}
}

func neverKernel() selKernel {
	return selKernel{
		dense: func(_, _ int32, out []int32) []int32 { return out },
		pass:  func(int32) bool { return false },
	}
}

// verdictKernel selects every valid row (verdict true) or nothing.
func verdictKernel(verdict bool, valid []uint64) selKernel {
	if !verdict {
		return neverKernel()
	}
	if valid == nil {
		return allKernel()
	}
	return selKernel{
		dense: func(lo, hi int32, out []int32) []int32 {
			for i := lo; i < hi; i++ {
				if bitSet(valid, i) {
					out = append(out, i)
				}
			}
			return out
		},
		pass: func(i int32) bool { return bitSet(valid, i) },
	}
}

// intCmpKernel compares an int64-backed column (INT, DATE, BOOL payloads)
// against a constant.
func intCmpKernel(vals []int64, valid []uint64, op scalar.Op, cv int64) selKernel {
	switch op {
	case scalar.OpEq:
		return selKernel{
			dense: func(lo, hi int32, out []int32) []int32 {
				for i := lo; i < hi; i++ {
					if ok1(valid, i) && vals[i] == cv {
						out = append(out, i)
					}
				}
				return out
			},
			pass: func(i int32) bool { return ok1(valid, i) && vals[i] == cv },
		}
	case scalar.OpNe:
		return selKernel{
			dense: func(lo, hi int32, out []int32) []int32 {
				for i := lo; i < hi; i++ {
					if ok1(valid, i) && vals[i] != cv {
						out = append(out, i)
					}
				}
				return out
			},
			pass: func(i int32) bool { return ok1(valid, i) && vals[i] != cv },
		}
	case scalar.OpLt:
		return selKernel{
			dense: func(lo, hi int32, out []int32) []int32 {
				for i := lo; i < hi; i++ {
					if ok1(valid, i) && vals[i] < cv {
						out = append(out, i)
					}
				}
				return out
			},
			pass: func(i int32) bool { return ok1(valid, i) && vals[i] < cv },
		}
	case scalar.OpLe:
		return selKernel{
			dense: func(lo, hi int32, out []int32) []int32 {
				for i := lo; i < hi; i++ {
					if ok1(valid, i) && vals[i] <= cv {
						out = append(out, i)
					}
				}
				return out
			},
			pass: func(i int32) bool { return ok1(valid, i) && vals[i] <= cv },
		}
	case scalar.OpGt:
		return selKernel{
			dense: func(lo, hi int32, out []int32) []int32 {
				for i := lo; i < hi; i++ {
					if ok1(valid, i) && vals[i] > cv {
						out = append(out, i)
					}
				}
				return out
			},
			pass: func(i int32) bool { return ok1(valid, i) && vals[i] > cv },
		}
	default: // OpGe
		return selKernel{
			dense: func(lo, hi int32, out []int32) []int32 {
				for i := lo; i < hi; i++ {
					if ok1(valid, i) && vals[i] >= cv {
						out = append(out, i)
					}
				}
				return out
			},
			pass: func(i int32) bool { return ok1(valid, i) && vals[i] >= cv },
		}
	}
}

// floatCmpKernel compares a float column against a non-NaN constant with
// Compare's total order: NaN values sort before everything, so they pass
// OpLt/OpLe/OpNe and fail OpEq/OpGt/OpGe — which is what the IEEE
// comparisons below produce, except for Lt/Le where NaN must pass.
func floatCmpKernel(vals []float64, valid []uint64, op scalar.Op, cv float64) selKernel {
	switch op {
	case scalar.OpEq:
		return selKernel{
			dense: func(lo, hi int32, out []int32) []int32 {
				for i := lo; i < hi; i++ {
					if ok1(valid, i) && vals[i] == cv {
						out = append(out, i)
					}
				}
				return out
			},
			pass: func(i int32) bool { return ok1(valid, i) && vals[i] == cv },
		}
	case scalar.OpNe:
		return selKernel{
			dense: func(lo, hi int32, out []int32) []int32 {
				for i := lo; i < hi; i++ {
					if ok1(valid, i) && vals[i] != cv {
						out = append(out, i)
					}
				}
				return out
			},
			pass: func(i int32) bool { return ok1(valid, i) && vals[i] != cv },
		}
	case scalar.OpLt:
		return selKernel{
			dense: func(lo, hi int32, out []int32) []int32 {
				for i := lo; i < hi; i++ {
					if ok1(valid, i) && (vals[i] < cv || math.IsNaN(vals[i])) {
						out = append(out, i)
					}
				}
				return out
			},
			pass: func(i int32) bool { return ok1(valid, i) && (vals[i] < cv || math.IsNaN(vals[i])) },
		}
	case scalar.OpLe:
		return selKernel{
			dense: func(lo, hi int32, out []int32) []int32 {
				for i := lo; i < hi; i++ {
					if ok1(valid, i) && (vals[i] <= cv || math.IsNaN(vals[i])) {
						out = append(out, i)
					}
				}
				return out
			},
			pass: func(i int32) bool { return ok1(valid, i) && (vals[i] <= cv || math.IsNaN(vals[i])) },
		}
	case scalar.OpGt:
		return selKernel{
			dense: func(lo, hi int32, out []int32) []int32 {
				for i := lo; i < hi; i++ {
					if ok1(valid, i) && vals[i] > cv {
						out = append(out, i)
					}
				}
				return out
			},
			pass: func(i int32) bool { return ok1(valid, i) && vals[i] > cv },
		}
	default: // OpGe
		return selKernel{
			dense: func(lo, hi int32, out []int32) []int32 {
				for i := lo; i < hi; i++ {
					if ok1(valid, i) && vals[i] >= cv {
						out = append(out, i)
					}
				}
				return out
			},
			pass: func(i int32) bool { return ok1(valid, i) && vals[i] >= cv },
		}
	}
}

// floatNaNConstKernel compares a float column against a NaN constant:
// cmpFloat(v, NaN) is 0 for NaN values and +1 otherwise.
func floatNaNConstKernel(vals []float64, valid []uint64, op scalar.Op) selKernel {
	switch op {
	case scalar.OpEq, scalar.OpLe: // cmp==0: NaN values only
		return selKernel{
			dense: func(lo, hi int32, out []int32) []int32 {
				for i := lo; i < hi; i++ {
					if ok1(valid, i) && math.IsNaN(vals[i]) {
						out = append(out, i)
					}
				}
				return out
			},
			pass: func(i int32) bool { return ok1(valid, i) && math.IsNaN(vals[i]) },
		}
	case scalar.OpNe, scalar.OpGt: // cmp==+1: non-NaN values only
		return selKernel{
			dense: func(lo, hi int32, out []int32) []int32 {
				for i := lo; i < hi; i++ {
					if ok1(valid, i) && !math.IsNaN(vals[i]) {
						out = append(out, i)
					}
				}
				return out
			},
			pass: func(i int32) bool { return ok1(valid, i) && !math.IsNaN(vals[i]) },
		}
	case scalar.OpGe: // cmp >= 0 always
		return verdictKernel(true, valid)
	default: // OpLt: cmp < 0 never
		return neverKernel()
	}
}

// intFloatCmpKernel compares an int column against a non-NaN float
// constant by widening each value, exactly as Compare does for cross-kind
// numerics.
func intFloatCmpKernel(vals []int64, valid []uint64, op scalar.Op, cf float64) selKernel {
	switch op {
	case scalar.OpEq:
		return selKernel{
			dense: func(lo, hi int32, out []int32) []int32 {
				for i := lo; i < hi; i++ {
					if ok1(valid, i) && float64(vals[i]) == cf {
						out = append(out, i)
					}
				}
				return out
			},
			pass: func(i int32) bool { return ok1(valid, i) && float64(vals[i]) == cf },
		}
	case scalar.OpNe:
		return selKernel{
			dense: func(lo, hi int32, out []int32) []int32 {
				for i := lo; i < hi; i++ {
					if ok1(valid, i) && float64(vals[i]) != cf {
						out = append(out, i)
					}
				}
				return out
			},
			pass: func(i int32) bool { return ok1(valid, i) && float64(vals[i]) != cf },
		}
	case scalar.OpLt:
		return selKernel{
			dense: func(lo, hi int32, out []int32) []int32 {
				for i := lo; i < hi; i++ {
					if ok1(valid, i) && float64(vals[i]) < cf {
						out = append(out, i)
					}
				}
				return out
			},
			pass: func(i int32) bool { return ok1(valid, i) && float64(vals[i]) < cf },
		}
	case scalar.OpLe:
		return selKernel{
			dense: func(lo, hi int32, out []int32) []int32 {
				for i := lo; i < hi; i++ {
					if ok1(valid, i) && float64(vals[i]) <= cf {
						out = append(out, i)
					}
				}
				return out
			},
			pass: func(i int32) bool { return ok1(valid, i) && float64(vals[i]) <= cf },
		}
	case scalar.OpGt:
		return selKernel{
			dense: func(lo, hi int32, out []int32) []int32 {
				for i := lo; i < hi; i++ {
					if ok1(valid, i) && float64(vals[i]) > cf {
						out = append(out, i)
					}
				}
				return out
			},
			pass: func(i int32) bool { return ok1(valid, i) && float64(vals[i]) > cf },
		}
	default: // OpGe
		return selKernel{
			dense: func(lo, hi int32, out []int32) []int32 {
				for i := lo; i < hi; i++ {
					if ok1(valid, i) && float64(vals[i]) >= cf {
						out = append(out, i)
					}
				}
				return out
			},
			pass: func(i int32) bool { return ok1(valid, i) && float64(vals[i]) >= cf },
		}
	}
}

// maskKernel selects rows whose dictionary code is set in the precomputed
// per-distinct-value mask (string comparisons and LIKE).
func maskKernel(codes []uint32, valid []uint64, mask []bool) selKernel {
	return selKernel{
		dense: func(lo, hi int32, out []int32) []int32 {
			for i := lo; i < hi; i++ {
				if ok1(valid, i) && mask[codes[i]] {
					out = append(out, i)
				}
			}
			return out
		},
		pass: func(i int32) bool { return ok1(valid, i) && mask[codes[i]] },
	}
}

// intPairKernel compares two int64-backed columns of the same kind.
func intPairKernel(a, b []int64, va, vb []uint64, op scalar.Op) selKernel {
	pass := func(i int32) bool {
		if !ok1(va, i) || !ok1(vb, i) {
			return false
		}
		switch op {
		case scalar.OpEq:
			return a[i] == b[i]
		case scalar.OpNe:
			return a[i] != b[i]
		case scalar.OpLt:
			return a[i] < b[i]
		case scalar.OpLe:
			return a[i] <= b[i]
		case scalar.OpGt:
			return a[i] > b[i]
		default:
			return a[i] >= b[i]
		}
	}
	return pairKernel(pass)
}

// floatPairKernel compares two float columns with Compare's NaN-first total
// order.
func floatPairKernel(a, b []float64, va, vb []uint64, op scalar.Op) selKernel {
	pass := func(i int32) bool {
		if !ok1(va, i) || !ok1(vb, i) {
			return false
		}
		x, y := a[i], b[i]
		switch op {
		case scalar.OpEq:
			return x == y || (math.IsNaN(x) && math.IsNaN(y))
		case scalar.OpNe:
			return x != y && !(math.IsNaN(x) && math.IsNaN(y))
		case scalar.OpLt:
			return x < y || (math.IsNaN(x) && !math.IsNaN(y))
		case scalar.OpLe:
			return x <= y || math.IsNaN(x)
		case scalar.OpGt:
			return x > y || (math.IsNaN(y) && !math.IsNaN(x))
		default:
			return x >= y || math.IsNaN(y)
		}
	}
	return pairKernel(pass)
}

// pairKernel builds a kernel from a row predicate; pair comparisons are
// rare enough that the per-row indirect call is acceptable.
func pairKernel(pass func(i int32) bool) selKernel {
	return selKernel{
		dense: func(lo, hi int32, out []int32) []int32 {
			for i := lo; i < hi; i++ {
				if pass(i) {
					out = append(out, i)
				}
			}
			return out
		},
		pass: pass,
	}
}
