package exec_test

import (
	"strings"
	"testing"

	"repro/csedb"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/sqltypes"
)

// tinyDB builds a small, fully controlled database:
//
//	emp(id INT, dept STRING, salary FLOAT, boss INT)
//	dept(name STRING, budget FLOAT)
func tinyDB(t testing.TB) *csedb.DB {
	t.Helper()
	s := core.DefaultSettings()
	db := csedb.Open(csedb.Options{CSE: &s})
	mustCreate := func(name string, cols []catalog.Column) {
		t.Helper()
		if err := db.CreateTable(name, cols); err != nil {
			t.Fatal(err)
		}
	}
	i, f, str := sqltypes.KindInt, sqltypes.KindFloat, sqltypes.KindString
	mustCreate("emp", []catalog.Column{
		{Name: "id", Type: i}, {Name: "dept", Type: str},
		{Name: "salary", Type: f}, {Name: "boss", Type: i},
	})
	mustCreate("dept", []catalog.Column{
		{Name: "name", Type: str}, {Name: "budget", Type: f},
	})
	ii := sqltypes.NewInt
	ff := sqltypes.NewFloat
	ss := sqltypes.NewString
	null := sqltypes.Null
	if err := db.Insert("emp", []csedb.Row{
		{ii(1), ss("eng"), ff(100), ii(3)},
		{ii(2), ss("eng"), ff(90), ii(3)},
		{ii(3), ss("eng"), ff(150), null},
		{ii(4), ss("sales"), ff(80), ii(5)},
		{ii(5), ss("sales"), ff(120), null},
		{ii(6), ss("hr"), null, ii(5)}, // NULL salary
		{ii(7), null, ff(70), ii(5)},   // NULL dept
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("dept", []csedb.Row{
		{ss("eng"), ff(1000)},
		{ss("sales"), ff(500)},
		{ss("legal"), ff(200)}, // no employees
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

func rows(t testing.TB, db *csedb.DB, sql string) []string {
	t.Helper()
	res, err := db.Run(sql)
	if err != nil {
		t.Fatalf("run %q: %v", sql, err)
	}
	out := make([]string, 0, len(res.Statements[0].Rows))
	for _, r := range res.Statements[0].Rows {
		out = append(out, r.String())
	}
	return out
}

func sorted(xs []string) []string {
	out := append([]string(nil), xs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func expectRows(t *testing.T, db *csedb.DB, sql string, want []string) {
	t.Helper()
	got := sorted(rows(t, db, sql))
	want = sorted(want)
	if len(got) != len(want) {
		t.Fatalf("%q: got %d rows %v, want %d %v", sql, len(got), got, len(want), want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("%q row %d: got %q, want %q", sql, i, got[i], want[i])
		}
	}
}

func TestScanWithFilter(t *testing.T) {
	db := tinyDB(t)
	expectRows(t, db, "select id from emp where salary > 95",
		[]string{"1", "3", "5"})
}

func TestFilterNullIsFalse(t *testing.T) {
	db := tinyDB(t)
	// emp 6 has NULL salary: neither > nor <= matches.
	expectRows(t, db, "select id from emp where salary > 0", []string{"1", "2", "3", "4", "5", "7"})
	expectRows(t, db, "select id from emp where not salary > 0", nil)
}

func TestHashJoin(t *testing.T) {
	db := tinyDB(t)
	expectRows(t, db, `select id, budget from emp, dept where dept = name and salary > 95`,
		[]string{"1\t1000", "3\t1000", "5\t500"})
}

func TestJoinSkipsNullKeys(t *testing.T) {
	db := tinyDB(t)
	// emp 7 has NULL dept: must not match any department.
	expectRows(t, db, "select id from emp, dept where dept = name",
		[]string{"1", "2", "3", "4", "5"})
}

func TestNonEquiJoin(t *testing.T) {
	db := tinyDB(t)
	// Cross-ish join with inequality: employees whose salary exceeds a
	// department budget.
	expectRows(t, db, "select id, name from emp, dept where salary > budget",
		nil)
	expectRows(t, db, "select id, name from emp, dept where salary * 10 > budget and name = 'legal'",
		[]string{"1\tlegal", "2\tlegal", "3\tlegal", "4\tlegal", "5\tlegal", "7\tlegal"})
}

func TestGroupByAggregates(t *testing.T) {
	db := tinyDB(t)
	expectRows(t, db, `select dept, count(*) as n, sum(salary) as s, min(salary) as lo, max(salary) as hi
		from emp group by dept`,
		[]string{
			"eng\t3\t340\t90\t150",
			"sales\t2\t200\t80\t120",
			"hr\t1\tNULL\tNULL\tNULL", // all-NULL salaries
			"NULL\t1\t70\t70\t70",     // NULL is a group key
		})
}

func TestCountSkipsNulls(t *testing.T) {
	db := tinyDB(t)
	expectRows(t, db, "select count(salary) as c, count(*) as n from emp",
		[]string{"6\t7"})
}

func TestAvgViaDecomposition(t *testing.T) {
	db := tinyDB(t)
	expectRows(t, db, "select avg(salary) as a from emp where dept = 'eng'",
		[]string{"113.33333333333333"})
}

func TestScalarAggOverEmptyInput(t *testing.T) {
	db := tinyDB(t)
	expectRows(t, db, "select sum(salary) as s, count(*) as n from emp where id > 100",
		[]string{"NULL\t0"})
}

func TestGroupByOverEmptyInputIsEmpty(t *testing.T) {
	db := tinyDB(t)
	expectRows(t, db, "select dept, sum(salary) as s from emp where id > 100 group by dept", nil)
}

func TestHavingFilter(t *testing.T) {
	db := tinyDB(t)
	expectRows(t, db, `select dept, sum(salary) as s from emp
		where dept = 'eng' or dept = 'sales'
		group by dept having sum(salary) > 250`,
		[]string{"eng\t340"})
}

func TestOrderByAndLimit(t *testing.T) {
	db := tinyDB(t)
	got := rows(t, db, "select id, salary from emp where salary > 0 order by salary desc limit 3")
	want := []string{"3\t150", "5\t120", "1\t100"}
	if len(got) != 3 {
		t.Fatalf("limit ignored: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d = %q, want %q (ordering matters here)", i, got[i], want[i])
		}
	}
}

func TestOrderByAscStable(t *testing.T) {
	db := tinyDB(t)
	got := rows(t, db, "select dept, id from emp where id <= 4 order by dept")
	if got[0] != "eng\t1" && got[0] != "eng\t2" && got[0] != "eng\t3" {
		t.Errorf("ascending order broken: %v", got)
	}
	if got[len(got)-1] != "sales\t4" {
		t.Errorf("last row = %q", got[len(got)-1])
	}
}

func TestProjectionExpressions(t *testing.T) {
	db := tinyDB(t)
	expectRows(t, db, "select id, salary * 2 as dbl, salary + 1 as p1 from emp where id = 1",
		[]string{"1\t200\t101"})
}

func TestUncorrelatedSubquery(t *testing.T) {
	db := tinyDB(t)
	// Above-average earners (average over non-NULL salaries = 101.67).
	expectRows(t, db, "select id from emp where salary > (select avg(salary) from emp)",
		[]string{"3", "5"})
}

func TestSubqueryInHaving(t *testing.T) {
	db := tinyDB(t)
	// Total salary = 610, so the threshold is ≈203.3: only eng (340)
	// qualifies; sales (200) just misses.
	expectRows(t, db, `select dept, sum(salary) as s from emp group by dept
		having sum(salary) > (select sum(salary) / 3 from emp)`,
		[]string{"eng\t340"})
	// A lower threshold admits sales too.
	expectRows(t, db, `select dept, sum(salary) as s from emp group by dept
		having sum(salary) > (select sum(salary) / 4 from emp)`,
		[]string{"eng\t340", "sales\t200"})
}

func TestSubqueryOverEmptyIsNull(t *testing.T) {
	db := tinyDB(t)
	// sum over empty input is NULL; comparison with NULL filters all rows.
	expectRows(t, db, "select id from emp where salary > (select sum(salary) from emp where id > 100)", nil)
}

func TestInListAndBetween(t *testing.T) {
	db := tinyDB(t)
	expectRows(t, db, "select id from emp where dept in ('hr', 'sales')",
		[]string{"4", "5", "6"})
	expectRows(t, db, "select id from emp where salary between 80 and 100",
		[]string{"1", "2", "4"})
	expectRows(t, db, "select id from emp where id not in (1,2,3,4,5,6)",
		[]string{"7"})
}

func TestSpoolSharedAcrossStatements(t *testing.T) {
	db := tinyDB(t)
	// Two similar grouped queries: the engine should build one covering
	// aggregate and both statements read it.
	res, err := db.Run(`
select dept, sum(salary) as s from emp, dept where dept = name and salary > 0 group by dept;
select dept, count(salary) as c from emp, dept where dept = name and salary > 0 group by dept;
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.UsedCSEs) == 0 {
		t.Skip("optimizer chose not to share on this tiny input")
	}
	if !strings.Contains(res.Explain, "SpoolScan") {
		t.Error("plan should scan the shared spool")
	}
	// Both still produce correct results.
	if len(res.Statements[0].Rows) != 2 || len(res.Statements[1].Rows) != 2 {
		t.Errorf("row counts: %d, %d", len(res.Statements[0].Rows), len(res.Statements[1].Rows))
	}
}

func TestBatchStatementsIndependent(t *testing.T) {
	db := tinyDB(t)
	res, err := db.Run("select count(*) as a from emp; select count(*) as b from dept")
	if err != nil {
		t.Fatal(err)
	}
	if res.Statements[0].Rows[0][0].Int() != 7 || res.Statements[1].Rows[0][0].Int() != 3 {
		t.Error("batch statements returned wrong counts")
	}
	if res.Statements[0].Names[0] != "a" || res.Statements[1].Names[0] != "b" {
		t.Error("output names lost")
	}
}

func TestIntegerSumStaysIntegral(t *testing.T) {
	db := tinyDB(t)
	got := rows(t, db, "select sum(id) as s from emp")
	if got[0] != "28" {
		t.Errorf("sum of ints = %q, want 28", got[0])
	}
}

func TestSelectDistinct(t *testing.T) {
	db := tinyDB(t)
	expectRows(t, db, "select distinct dept from emp",
		[]string{"eng", "sales", "hr", "NULL"})
	expectRows(t, db, "select distinct dept, boss from emp where boss = 5",
		[]string{"sales\t5", "hr\t5", "NULL\t5"})
}

// TestIndexScanResultsMatchSeqScan runs the same selective query against
// TPC-H data; the optimizer chooses an index scan, and the results must
// match a full-scan computation.
func TestIndexScanResultsMatchSeqScan(t *testing.T) {
	s := core.DefaultSettings()
	s.EnableCSE = false
	db := csedb.Open(csedb.Options{CSE: &s})
	if err := db.LoadTPCH(0.01, 9); err != nil {
		t.Fatal(err)
	}
	// Range covering both ends plus a residual.
	sql := `select o_orderkey, o_totalprice from orders
		where o_orderdate >= '1995-01-01' and o_orderdate < '1995-01-15' and o_totalprice > 0`
	plan, err := db.Explain(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "IndexScan") {
		t.Skipf("optimizer chose %s", plan)
	}
	got := sorted(rows(t, db, sql))

	// Reference: force a sequential plan by disabling the index (drop the
	// catalog declaration and re-run on a fresh database with a filter the
	// index can't serve).
	db2 := csedb.Open(csedb.Options{CSE: &s})
	if err := db2.LoadTPCH(0.01, 9); err != nil {
		t.Fatal(err)
	}
	tab, err := db2.Catalog().Table("orders")
	if err != nil {
		t.Fatal(err)
	}
	tab.Indexes = nil
	want := sorted(rows(t, db2, sql))

	if len(got) != len(want) {
		t.Fatalf("index scan returned %d rows, seq scan %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("row %d: %q vs %q", i, got[i], want[i])
		}
	}
}

// TestLookupJoinResultsMatchHashJoin compares the lookup-join plan against
// an index-free database.
func TestLookupJoinResultsMatchHashJoin(t *testing.T) {
	s := core.DefaultSettings()
	s.EnableCSE = false
	run := func(dropIndexes bool) []string {
		db := csedb.Open(csedb.Options{CSE: &s})
		if err := db.LoadTPCH(0.01, 9); err != nil {
			t.Fatal(err)
		}
		if dropIndexes {
			for _, name := range []string{"orders", "lineitem"} {
				tab, err := db.Catalog().Table(name)
				if err != nil {
					t.Fatal(err)
				}
				tab.Indexes = nil
				tab.OrderedBy = nil
			}
		}
		return sorted(rows(t, db, `
select o_orderkey, l_extendedprice
from orders, lineitem
where o_orderkey = l_orderkey and o_orderdate = '1995-03-03' and l_quantity > 1`))
	}
	got, want := run(false), run(true)
	if len(got) != len(want) {
		t.Fatalf("lookup join returned %d rows, reference %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("row %d: %q vs %q", i, got[i], want[i])
		}
	}
}

func TestLikeInQueries(t *testing.T) {
	db := tinyDB(t)
	expectRows(t, db, "select id from emp where dept like 'e%'",
		[]string{"1", "2", "3"})
	expectRows(t, db, "select id from emp where dept like '%s'",
		[]string{"4", "5"})
	expectRows(t, db, "select id from emp where dept not like 'e%' and dept like '%'",
		[]string{"4", "5", "6"})
	expectRows(t, db, "select id from emp where dept like '_r'",
		[]string{"6"})
}

func TestLikeMatchesRegexpReference(t *testing.T) {
	// Property: LIKE agrees with the equivalent anchored regexp.
	db := tinyDB(t)
	_ = db // the property below tests the matcher through SQL once:
	expectRows(t, db, "select id from emp where dept like '%a%e%'", []string{"4", "5"})
}

func TestDeepNestedSubqueries(t *testing.T) {
	db := tinyDB(t)
	// A subquery whose own WHERE contains another subquery.
	expectRows(t, db, `
select id from emp
where salary > (select avg(salary) from emp
                where salary > (select min(salary) from emp))`,
		[]string{"3", "5"}) // avg over >70 group = 108, so 150 and 120 qualify
}

func TestSubquerySharedAcrossConjuncts(t *testing.T) {
	db := tinyDB(t)
	// The same subquery value used twice in one predicate.
	got := rows(t, db, `
select id from emp
where salary > (select min(salary) from emp) and salary < (select max(salary) from emp)`)
	if len(got) != 4 { // 80,90,100,120 strictly between 70 and 150
		t.Errorf("rows = %v", got)
	}
}

func TestScalarSubqueryMultiRowFails(t *testing.T) {
	db := tinyDB(t)
	_, err := db.Run("select id from emp where salary > (select salary from emp)")
	if err == nil || !strings.Contains(err.Error(), "scalar subquery returned") {
		t.Errorf("multi-row scalar subquery error = %v", err)
	}
}
