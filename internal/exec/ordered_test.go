package exec

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/logical"
	"repro/internal/opt"
	"repro/internal/scalar"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// orderedFixture builds two tables with duplicate and NULL keys, sorted by
// their key columns, plus the metadata instances and scan plans over them.
func orderedFixture(t *testing.T) (*Context, *opt.Plan, *opt.Plan, []scalar.ColID, []scalar.ColID) {
	t.Helper()
	cat := catalog.New()
	lt := &catalog.Table{Name: "l", OrderedBy: []int{0}, Cols: []catalog.Column{
		{Name: "k", Type: sqltypes.KindInt}, {Name: "v", Type: sqltypes.KindString},
	}}
	rt := &catalog.Table{Name: "r", OrderedBy: []int{0}, Cols: []catalog.Column{
		{Name: "k", Type: sqltypes.KindInt}, {Name: "w", Type: sqltypes.KindString},
	}}
	if err := cat.Add(lt); err != nil {
		t.Fatal(err)
	}
	if err := cat.Add(rt); err != nil {
		t.Fatal(err)
	}
	st := storage.NewStore()
	ii, ss := sqltypes.NewInt, sqltypes.NewString
	ltab := st.Create("l")
	for _, r := range []sqltypes.Row{
		{sqltypes.Null, ss("lnull")},
		{ii(1), ss("l1a")},
		{ii(1), ss("l1b")},
		{ii(2), ss("l2")},
		{ii(4), ss("l4")},
	} {
		ltab.Append(r)
	}
	rtab := st.Create("r")
	for _, r := range []sqltypes.Row{
		{sqltypes.Null, ss("rnull")},
		{ii(1), ss("r1a")},
		{ii(1), ss("r1b")},
		{ii(3), ss("r3")},
		{ii(4), ss("r4")},
	} {
		rtab.Append(r)
	}
	storage.AnalyzeTable(lt, ltab)
	storage.AnalyzeTable(rt, rtab)

	md := logical.NewMetadata()
	lrel := md.AddInstance(lt, "l")
	rrel := md.AddInstance(rt, "r")

	lscan := &opt.Plan{
		Op: opt.PScan, Rel: lrel.ID,
		Cols:     []scalar.ColID{lrel.ColID(0), lrel.ColID(1)},
		Provided: []scalar.ColID{lrel.ColID(0)},
		Rows:     5,
	}
	rscan := &opt.Plan{
		Op: opt.PScan, Rel: rrel.ID,
		Cols:     []scalar.ColID{rrel.ColID(0), rrel.ColID(1)},
		Provided: []scalar.ColID{rrel.ColID(0)},
		Rows:     5,
	}
	ctx := &Context{
		Store:         st,
		Md:            md,
		spools:        map[int]*spoolEntry{},
		materializing: map[int]bool{},
		subqueryVals:  map[int]sqltypes.Datum{},
		stats:         newCollector(1, 1, false),
	}
	return ctx, lscan, rscan,
		[]scalar.ColID{lrel.ColID(0)}, []scalar.ColID{rrel.ColID(0)}
}

// TestMergeJoinMatchesHashJoin: identical inputs, identical semantics — the
// NULL keys never match, duplicate keys produce the full cross.
func TestMergeJoinMatchesHashJoin(t *testing.T) {
	ctx, lscan, rscan, lk, rk := orderedFixture(t)
	outCols := append(append([]scalar.ColID(nil), lscan.Cols...), rscan.Cols...)
	merge := &opt.Plan{
		Op: opt.PMergeJoin, Children: []*opt.Plan{lscan, rscan},
		LeftKeys: lk, RightKeys: rk, Cols: outCols,
	}
	hash := &opt.Plan{
		Op: opt.PHashJoin, Children: []*opt.Plan{lscan, rscan},
		LeftKeys: lk, RightKeys: rk, Cols: outCols,
	}
	mrows, err := ctx.exec(merge)
	if err != nil {
		t.Fatal(err)
	}
	hrows, err := ctx.exec(hash)
	if err != nil {
		t.Fatal(err)
	}
	// 1-block cross (2x2=4) + key 4 (1) = 5 rows; NULLs excluded; 2 and 3
	// unmatched.
	if len(mrows) != 5 {
		t.Fatalf("merge join rows = %d, want 5: %v", len(mrows), mrows)
	}
	canon := func(rows []sqltypes.Row) map[string]int {
		m := map[string]int{}
		for _, r := range rows {
			m[r.String()]++
		}
		return m
	}
	cm, ch := canon(mrows), canon(hrows)
	if len(cm) != len(ch) {
		t.Fatalf("merge %v vs hash %v", cm, ch)
	}
	for k, n := range cm {
		if ch[k] != n {
			t.Errorf("row %q: merge %d vs hash %d", k, n, ch[k])
		}
	}
	// Merge join output is key-ordered.
	prev := int64(-1 << 62)
	for _, r := range mrows {
		if k := r[0].Int(); k < prev {
			t.Error("merge join output not sorted by key")
		} else {
			prev = k
		}
	}
}

// TestMergeJoinResidualFilter applies the non-equi residual on joined rows.
func TestMergeJoinResidualFilter(t *testing.T) {
	ctx, lscan, rscan, lk, rk := orderedFixture(t)
	outCols := append(append([]scalar.ColID(nil), lscan.Cols...), rscan.Cols...)
	// Residual: l.v <> r.w (drops nothing here except... all differ) and a
	// strict filter l.k < 4 to drop the key-4 match.
	res := scalar.Cmp(scalar.OpLt, scalar.Col(lscan.Cols[0]), scalar.ConstInt(4))
	merge := &opt.Plan{
		Op: opt.PMergeJoin, Children: []*opt.Plan{lscan, rscan},
		LeftKeys: lk, RightKeys: rk, Cols: outCols, Filter: res,
	}
	rows, err := ctx.exec(merge)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("residual-filtered merge join rows = %d, want 4", len(rows))
	}
}

// TestStreamAggMatchesHashAgg on sorted input.
func TestStreamAggMatchesHashAgg(t *testing.T) {
	ctx, lscan, _, _, _ := orderedFixture(t)
	aggOut := ctx.Md.AddSynthesized("n", sqltypes.KindInt)
	mk := func(op opt.PhysOp) *opt.Plan {
		return &opt.Plan{
			Op: op, Children: []*opt.Plan{lscan},
			GroupCols: []scalar.ColID{lscan.Cols[0]},
			Aggs:      []logical.AggDef{{Kind: scalar.AggCountStar, Out: aggOut}},
			Cols:      []scalar.ColID{lscan.Cols[0], aggOut},
		}
	}
	srows, err := ctx.exec(mk(opt.PStreamAgg))
	if err != nil {
		t.Fatal(err)
	}
	hrows, err := ctx.exec(mk(opt.PHashAgg))
	if err != nil {
		t.Fatal(err)
	}
	if len(srows) != len(hrows) || len(srows) != 4 {
		t.Fatalf("stream %d groups vs hash %d, want 4 (NULL, 1, 2, 4)", len(srows), len(hrows))
	}
	// Count per key must agree.
	counts := func(rows []sqltypes.Row) map[string]int64 {
		m := map[string]int64{}
		for _, r := range rows {
			m[r[0].String()] = r[1].Int()
		}
		return m
	}
	cs, chh := counts(srows), counts(hrows)
	for k, v := range cs {
		if chh[k] != v {
			t.Errorf("group %q: stream %d vs hash %d", k, v, chh[k])
		}
	}
	if cs["1"] != 2 {
		t.Errorf("key 1 count = %d, want 2", cs["1"])
	}
}

// TestSortOperator sorts by multiple keys with NULLs first.
func TestSortOperator(t *testing.T) {
	ctx, lscan, _, _, _ := orderedFixture(t)
	sortPlan := &opt.Plan{
		Op: opt.PSort, Children: []*opt.Plan{lscan},
		SortCols: []scalar.ColID{lscan.Cols[1]}, // by the string column
		Cols:     lscan.Cols,
	}
	rows, err := ctx.exec(sortPlan)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if sqltypes.Compare(rows[i-1][1], rows[i][1]) > 0 {
			t.Fatalf("not sorted: %v", rows)
		}
	}
}
