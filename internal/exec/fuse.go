package exec

import (
	"fmt"

	"repro/internal/opt"
	"repro/internal/scalar"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// fusionEnabled reports whether Filter/Project nodes marked fusion-eligible
// by the optimizer may collapse into their leaf child. Fusion is a pure data
// -plane optimization: it is off under Analyze so EXPLAIN ANALYZE still
// observes every node's actuals, and off on the sequential determinism
// -debugging path (Parallelism 1), which stays the reference row-at-a-time
// interpreter.
func (c *Context) fusionEnabled() bool {
	return c.workers > 1 && !c.stats.analyze
}

// execFused runs a Filter*/Project chain over a Scan or SpoolScan leaf as a
// single morsel-parallel pass: no intermediate row set is materialized
// between the chain's nodes. The plan node p must carry opt's FuseEligible
// mark (chain shape already validated).
func (c *Context) execFused(p *opt.Plan) ([]sqltypes.Row, error) {
	// Peel the chain: optional Project on top, then stacked Filters, then
	// the leaf.
	hasProject := p.Op == opt.PProject
	node := p
	if hasProject {
		node = node.Children[0]
	}
	var filterExprs []*scalar.Expr
	for node.Op == opt.PFilter {
		filterExprs = append(filterExprs, node.Filter)
		node = node.Children[0]
	}

	// Resolve the leaf's source rows and input layout.
	var (
		source []sqltypes.Row
		layout map[scalar.ColID]int
		outIdx []int // leaf projection (scan leaves only)
		cd     *storage.ColumnData
	)
	switch node.Op {
	case opt.PScan:
		rel := c.Md.Rel(node.Rel)
		tab, err := c.Store.Table(rel.Tab.Name)
		if err != nil {
			return nil, err
		}
		full := make([]scalar.ColID, len(rel.Tab.Cols))
		for i := range rel.Tab.Cols {
			full[i] = rel.ColID(i)
		}
		layout = layoutOf(full)
		if node.Filter != nil {
			// The scan's own filter runs first, as in the unfused plan.
			filterExprs = append(filterExprs, nil)
			copy(filterExprs[1:], filterExprs)
			filterExprs[0] = node.Filter
		}
		if p.Op == opt.PFilter {
			// Filter on top: the output layout is the scan's projection.
			outIdx = make([]int, len(node.Cols))
			for i, col := range node.Cols {
				pos, ok := layout[col]
				if !ok {
					return nil, fmt.Errorf("scan output column @%d not in table %s", col, rel.Tab.Name)
				}
				outIdx[i] = pos
			}
			if identityProjection(outIdx, len(full)) {
				outIdx = nil // pass the shared table row through unchanged
			}
		}
		source = tab.Rows
		cd = c.tableView(tab)
	case opt.PSpoolScan:
		rows, err := c.spool(node.SpoolID)
		if err != nil {
			return nil, err
		}
		c.stats.recordSpoolHit(node.SpoolID)
		source = rows
		layout = layoutOf(node.Cols)
		cd = c.sourceView(node, rows)
	default:
		return nil, fmt.Errorf("fused chain over unexpected leaf %s", node.Op)
	}

	// The whole filter chain is one conjunction for selection purposes (a row
	// survives iff every filter is true), so it kernelizes as a unit; any
	// non-kernelizable conjuncts become the selection's residual.
	var cs *colSelection
	if len(filterExprs) > 0 {
		cs = c.buildColSelection(c.substituteSubqueries(scalar.And(filterExprs...)), cd, layout)
	}
	var filters []scalar.EvalFn
	if cs == nil {
		filters = make([]scalar.EvalFn, len(filterExprs))
		for i, e := range filterExprs {
			fn, err := c.compile(e, layout)
			if err != nil {
				return nil, err
			}
			filters[i] = fn
		}
	}
	var projections []scalar.EvalFn
	if hasProject {
		projections = make([]scalar.EvalFn, len(p.Projections))
		for i, pr := range p.Projections {
			fn, err := c.compile(pr.Expr, layout)
			if err != nil {
				return nil, err
			}
			projections[i] = fn
		}
	}

	return c.runMorsels(p, len(source), func(arena *sqltypes.RowArena, lo, hi int, out *[]sqltypes.Row) error {
		emit := func(r sqltypes.Row) {
			switch {
			case hasProject:
				row := arena.NewRow(len(projections))
				for i, fn := range projections {
					row[i] = fn(r)
				}
				*out = append(*out, row)
			case outIdx != nil:
				row := arena.NewRow(len(outIdx))
				for i, pos := range outIdx {
					row[i] = r[pos]
				}
				*out = append(*out, row)
			default:
				// Filter over a spool read: pass the shared row through.
				*out = append(*out, r)
			}
		}
		if cs != nil {
			// Kernel path: select the surviving row numbers from the typed
			// columns, then decode only those.
			for _, si := range cs.apply(source, lo, hi) {
				emit(source[si])
			}
			return nil
		}
	rows:
		for _, r := range source[lo:hi] {
			for _, f := range filters {
				d := f(r)
				if d.IsNull() || !d.Bool() {
					continue rows
				}
			}
			emit(r)
		}
		return nil
	})
}
