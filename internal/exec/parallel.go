package exec

import (
	"context"
	"sync"
	"time"

	"repro/internal/opt"
)

// runParallel is the DAG scheduler: spools are materialized in topological
// waves on a bounded worker pool, then statements run concurrently, each
// with a private Context fork. The first error cancels everything in
// flight; results are merged in statement order.
func (c *Context) runParallel(res *opt.Result, stmtPlans []*opt.Plan, workers int) ([]*StatementResult, error) {
	deps := res.Dependencies()
	if deps.AnySpoolSubquery() {
		// A spool whose plan references a scalar-subquery value can only be
		// computed after the owning statement evaluated the subquery, which
		// only the lazy sequential executor orders correctly.
		c.stats.sequential = true
		c.stats.workers = 1
		c.stats.fallback = "a spool plan references a scalar subquery"
		c.workers = 1 // the fallback is fully sequential: no intra-op helpers
		return c.runSequential(stmtPlans)
	}
	waves, err := deps.Waves()
	if err != nil {
		return nil, err
	}
	c.parallel = true
	c.stats.waves = waves

	// Phase 1: materialize spools wave by wave; within a wave every spool
	// only depends on completed waves, so all of them can run concurrently.
	for w, wave := range waves {
		waveSpan := c.span.Child("wave")
		waveSpan.SetAttr("wave", w)
		waveSpan.SetAttr("spools", len(wave))
		g := newGroup(c.ctx, workers)
		for _, id := range wave {
			id := id
			g.Go(func(ctx context.Context) error {
				cc := c.fork(ctx)
				cc.span = waveSpan
				_, err := cc.spool(id)
				return err
			})
		}
		err := g.Wait()
		waveSpan.End()
		if err != nil {
			return nil, err
		}
	}

	// Phase 2: statements are independent once their spools exist; run them
	// concurrently and merge by position.
	out := make([]*StatementResult, len(stmtPlans))
	g := newGroup(c.ctx, workers)
	for i, sp := range stmtPlans {
		i, sp := i, sp
		g.Go(func(ctx context.Context) error {
			start := time.Now()
			ss := c.span.Child("statement")
			ss.SetAttr("stmt", i)
			cc := c.fork(ctx)
			cc.span = ss
			sr, err := cc.runStatement(sp)
			if err != nil {
				ss.End()
				return err
			}
			ss.SetAttr("rows", len(sr.Rows))
			ss.End()
			c.stats.recordStmt(i, time.Since(start))
			out[i] = sr
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return out, nil
}

// group is a minimal errgroup: a bounded pool of goroutines whose first
// error cancels the shared context and is returned by Wait.
type group struct {
	ctx    context.Context
	cancel context.CancelFunc
	sem    chan struct{}
	wg     sync.WaitGroup
	once   sync.Once
	err    error
}

func newGroup(parent context.Context, limit int) *group {
	ctx, cancel := context.WithCancel(parent)
	return &group{ctx: ctx, cancel: cancel, sem: make(chan struct{}, limit)}
}

// Go schedules f on the pool, blocking while all workers are busy. f is
// skipped (with the cancellation error reported by Wait) once the group is
// cancelled.
func (g *group) Go(f func(ctx context.Context) error) {
	g.sem <- struct{}{}
	g.wg.Add(1)
	go func() {
		defer func() {
			<-g.sem
			g.wg.Done()
		}()
		if err := g.ctx.Err(); err != nil {
			g.fail(err)
			return
		}
		if err := f(g.ctx); err != nil {
			g.fail(err)
		}
	}()
}

func (g *group) fail(err error) {
	g.once.Do(func() {
		g.err = err
		g.cancel()
	})
}

// Wait blocks until every scheduled task finished and returns the first
// error. It releases the group's context resources.
func (g *group) Wait() error {
	g.wg.Wait()
	g.cancel()
	return g.err
}
