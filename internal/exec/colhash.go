package exec

import (
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// Column-at-a-time hash-key extraction for hash joins and hash aggregation.
// When an operator's input rows are backed by a columnar shadow (sourceView),
// the per-row HashRow/HashKey calls — a kind switch and a Datum load per key
// column per row — are replaced by one typed pass per key column folding
// 64-bit key encodings into a running hash array with sqltypes.MixBits. The
// fold order matches Hasher.HashRow exactly, so the hashes (and therefore
// every downstream structure) are identical to the row path's.

// colHashRows computes HashRow(rows[i], cols) for every row. Columns without
// a typed form fall back to a per-row DatumBits pass for that column only.
func colHashRows(hs *sqltypes.Hasher, cd *storage.ColumnData, rows []sqltypes.Row, cols []int) []uint64 {
	h := make([]uint64, len(rows))
	for _, pos := range cols {
		mixColumn(hs, h, nil, cd, rows, pos)
	}
	return h
}

// colHashKeys computes HashKey(rows[i], cols) for every row: ok[i] is false
// when any key column of row i is NULL (such rows never join).
func colHashKeys(hs *sqltypes.Hasher, cd *storage.ColumnData, rows []sqltypes.Row, cols []int) (h []uint64, ok []bool) {
	h = make([]uint64, len(rows))
	ok = make([]bool, len(rows))
	for i := range ok {
		ok[i] = true
	}
	for _, pos := range cols {
		mixColumn(hs, h, ok, cd, rows, pos)
	}
	return h, ok
}

// mixColumn folds one column's key encodings into h. When ok is non-nil,
// NULL values clear ok[i] instead of folding NullBits (HashKey semantics);
// with ok nil they fold NullBits (HashRow semantics).
func mixColumn(hs *sqltypes.Hasher, h []uint64, ok []bool, cd *storage.ColumnData, rows []sqltypes.Row, pos int) {
	var col *storage.Column
	if pos >= 0 && pos < len(cd.Cols) && cd.Cols[pos].OK {
		col = &cd.Cols[pos]
	}
	if col == nil {
		// Heterogeneous column: per-row fallback for this column only.
		for i := range h {
			d := rows[i][pos]
			if ok != nil && d.IsNull() {
				ok[i] = false
				continue
			}
			h[i] = sqltypes.MixBits(h[i], hs.DatumBits(d))
		}
		return
	}
	null := func(i int) bool {
		if ok == nil {
			h[i] = sqltypes.MixBits(h[i], sqltypes.NullBits())
		} else {
			ok[i] = false
		}
		return true
	}
	switch col.Kind {
	case sqltypes.KindNull:
		for i := range h {
			null(i)
		}
	case sqltypes.KindInt, sqltypes.KindDate:
		for i, v := range col.Ints {
			if !col.IsValid(i) {
				null(i)
				continue
			}
			h[i] = sqltypes.MixBits(h[i], sqltypes.NumericBits(float64(v)))
		}
	case sqltypes.KindBool:
		for i, v := range col.Ints {
			if !col.IsValid(i) {
				null(i)
				continue
			}
			h[i] = sqltypes.MixBits(h[i], sqltypes.BoolBits(v != 0))
		}
	case sqltypes.KindFloat:
		for i, v := range col.Floats {
			if !col.IsValid(i) {
				null(i)
				continue
			}
			h[i] = sqltypes.MixBits(h[i], sqltypes.NumericBits(v))
		}
	case sqltypes.KindString:
		// One maphash per distinct string, then O(1) per row.
		dictBits := make([]uint64, len(col.Dict))
		for k, s := range col.Dict {
			dictBits[k] = hs.StringBits(s)
		}
		for i, code := range col.Codes {
			if !col.IsValid(i) {
				null(i)
				continue
			}
			h[i] = sqltypes.MixBits(h[i], dictBits[code])
		}
	}
}
