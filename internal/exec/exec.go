// Package exec executes physical plans against the in-memory store:
// Volcano-in-spirit operators materialized per node (scan, filter, hash
// join, nested-loop join, hash aggregation, projection, sort), work-table
// spools shared across all their consumers (each CSE is computed exactly
// once per batch execution), and uncorrelated scalar subqueries evaluated
// once per statement.
package exec

import (
	"fmt"
	"sort"

	"repro/internal/logical"
	"repro/internal/opt"
	"repro/internal/scalar"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// StatementResult is one statement's output.
type StatementResult struct {
	Names []string
	Rows  []sqltypes.Row
}

// Context executes one batch plan.
type Context struct {
	Store *storage.Store
	Md    *logical.Metadata
	CSEs  map[int]*opt.CSEPlan

	spools        map[int][]sqltypes.Row
	materializing map[int]bool
	subqueryVals  map[int]sqltypes.Datum

	// SpoolRows records materialized spool sizes for instrumentation.
	SpoolRows map[int]int
}

// Run executes an optimized batch and returns per-statement results.
func Run(res *opt.Result, md *logical.Metadata, store *storage.Store) ([]*StatementResult, error) {
	out, _, err := RunWithStats(res, md, store)
	return out, err
}

// RunWithStats additionally reports per-spool materialized row counts —
// each CSE appears exactly once regardless of its number of consumers.
func RunWithStats(res *opt.Result, md *logical.Metadata, store *storage.Store) ([]*StatementResult, map[int]int, error) {
	c := &Context{
		Store:         store,
		Md:            md,
		CSEs:          res.CSEs,
		spools:        make(map[int][]sqltypes.Row),
		materializing: make(map[int]bool),
		subqueryVals:  make(map[int]sqltypes.Datum),
		SpoolRows:     make(map[int]int),
	}
	root := res.Root
	var stmtPlans []*opt.Plan
	if root.Op == opt.PSeq {
		stmtPlans = root.Children
	} else {
		stmtPlans = []*opt.Plan{root}
	}
	out := make([]*StatementResult, 0, len(stmtPlans))
	for _, sp := range stmtPlans {
		if sp.Op != opt.PRoot {
			return nil, nil, fmt.Errorf("statement plan has op %s, want Output", sp.Op)
		}
		sr, err := c.runStatement(sp)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, sr)
	}
	return out, c.SpoolRows, nil
}

func (c *Context) runStatement(p *opt.Plan) (*StatementResult, error) {
	// Evaluate scalar subqueries first.
	for i, sq := range p.Children[1:] {
		idx := p.SubqueryIdxs[i]
		val, err := c.evalSubquery(idx, sq)
		if err != nil {
			return nil, err
		}
		c.subqueryVals[idx] = val
	}
	rows, err := c.exec(p.Children[0])
	if err != nil {
		return nil, err
	}
	layout := layoutOf(p.Children[0].Cols)
	fns := make([]scalar.EvalFn, len(p.Projections))
	for i, pr := range p.Projections {
		fn, err := c.compile(pr.Expr, layout)
		if err != nil {
			return nil, fmt.Errorf("compiling projection %q: %w", pr.Name, err)
		}
		fns[i] = fn
	}
	out := make([]sqltypes.Row, 0, len(rows))
	for _, r := range rows {
		row := make(sqltypes.Row, len(fns))
		for i, fn := range fns {
			row[i] = fn(r)
		}
		out = append(out, row)
	}
	if len(p.OrderBy) > 0 {
		keys := p.OrderBy
		sort.SliceStable(out, func(i, j int) bool {
			for _, k := range keys {
				cmp := sqltypes.Compare(out[i][k.ProjIdx], out[j][k.ProjIdx])
				if cmp != 0 {
					if k.Desc {
						return cmp > 0
					}
					return cmp < 0
				}
			}
			return false
		})
	}
	if p.Limit > 0 && len(out) > p.Limit {
		out = out[:p.Limit]
	}
	return &StatementResult{Names: p.OutputNames, Rows: out}, nil
}

func (c *Context) evalSubquery(idx int, plan *opt.Plan) (sqltypes.Datum, error) {
	rows, err := c.exec(plan)
	if err != nil {
		return sqltypes.Null, err
	}
	blk := c.Md.Subquery(idx)
	switch {
	case len(rows) == 0:
		return sqltypes.Null, nil
	case len(rows) > 1:
		return sqltypes.Null, fmt.Errorf("scalar subquery returned %d rows", len(rows))
	}
	fn, err := c.compile(blk.Projections[0].Expr, layoutOf(plan.Cols))
	if err != nil {
		return sqltypes.Null, err
	}
	return fn(rows[0]), nil
}

// compile substitutes evaluated subquery values and compiles the expression
// against the given row layout.
func (c *Context) compile(e *scalar.Expr, layout map[scalar.ColID]int) (scalar.EvalFn, error) {
	return scalar.Compile(c.substituteSubqueries(e), layout)
}

func (c *Context) substituteSubqueries(e *scalar.Expr) *scalar.Expr {
	if e == nil {
		return nil
	}
	if e.Op == scalar.OpSubquery {
		val, ok := c.subqueryVals[int(e.Col)]
		if !ok {
			// Leave unresolved; Compile reports the error.
			return e
		}
		return scalar.Const(val)
	}
	if len(e.Args) == 0 {
		return e
	}
	args := make([]*scalar.Expr, len(e.Args))
	changed := false
	for i, a := range e.Args {
		args[i] = c.substituteSubqueries(a)
		if args[i] != a {
			changed = true
		}
	}
	if !changed {
		return e
	}
	out := *e
	out.Args = args
	return &out
}

func layoutOf(cols []scalar.ColID) map[scalar.ColID]int {
	m := make(map[scalar.ColID]int, len(cols))
	for i, c := range cols {
		m[c] = i
	}
	return m
}

// exec runs one plan node to a materialized row set with layout p.Cols.
func (c *Context) exec(p *opt.Plan) ([]sqltypes.Row, error) {
	switch p.Op {
	case opt.PScan:
		return c.execScan(p)
	case opt.PIndexScan:
		return c.execIndexScan(p)
	case opt.PFilter:
		return c.execFilter(p)
	case opt.PHashJoin:
		return c.execHashJoin(p)
	case opt.PNLJoin:
		return c.execNLJoin(p)
	case opt.PMergeJoin:
		return c.execMergeJoin(p)
	case opt.PLookupJoin:
		return c.execLookupJoin(p)
	case opt.PHashAgg:
		return c.execHashAgg(p)
	case opt.PStreamAgg:
		return c.execStreamAgg(p)
	case opt.PSort:
		return c.execSort(p)
	case opt.PProject:
		return c.execProject(p)
	case opt.PSpoolScan:
		return c.spool(p.SpoolID)
	default:
		return nil, fmt.Errorf("cannot execute plan op %s", p.Op)
	}
}

// spool returns the materialized work table for a candidate CSE, computing
// it on first use. All consumers — including other CSE plans — share the
// result.
func (c *Context) spool(id int) ([]sqltypes.Row, error) {
	if rows, ok := c.spools[id]; ok {
		return rows, nil
	}
	if c.materializing[id] {
		return nil, fmt.Errorf("cyclic spool dependency on CSE %d", id)
	}
	cse, ok := c.CSEs[id]
	if !ok {
		return nil, fmt.Errorf("no plan for CSE %d", id)
	}
	c.materializing[id] = true
	rows, err := c.exec(cse.Plan)
	c.materializing[id] = false
	if err != nil {
		return nil, fmt.Errorf("materializing CSE %d: %w", id, err)
	}
	c.spools[id] = rows
	c.SpoolRows[id] = len(rows)
	return rows, nil
}

func (c *Context) execScan(p *opt.Plan) ([]sqltypes.Row, error) {
	rel := c.Md.Rel(p.Rel)
	tab, err := c.Store.Table(rel.Tab.Name)
	if err != nil {
		return nil, err
	}
	// Table rows have the full column layout of the instance.
	full := make([]scalar.ColID, len(rel.Tab.Cols))
	for i := range rel.Tab.Cols {
		full[i] = rel.ColID(i)
	}
	layout := layoutOf(full)
	var filter scalar.EvalFn
	if p.Filter != nil {
		filter, err = c.compile(p.Filter, layout)
		if err != nil {
			return nil, fmt.Errorf("scan filter on %s: %w", rel.Tab.Name, err)
		}
	}
	// Projection indices from full row to output layout.
	idx := make([]int, len(p.Cols))
	for i, col := range p.Cols {
		pos, ok := layout[col]
		if !ok {
			return nil, fmt.Errorf("scan output column @%d not in table %s", col, rel.Tab.Name)
		}
		idx[i] = pos
	}
	var out []sqltypes.Row
	for _, r := range tab.Rows {
		if filter != nil {
			d := filter(r)
			if d.IsNull() || !d.Bool() {
				continue
			}
		}
		row := make(sqltypes.Row, len(idx))
		for i, pos := range idx {
			row[i] = r[pos]
		}
		out = append(out, row)
	}
	return out, nil
}

func (c *Context) execFilter(p *opt.Plan) ([]sqltypes.Row, error) {
	in, err := c.exec(p.Children[0])
	if err != nil {
		return nil, err
	}
	fn, err := c.compile(p.Filter, layoutOf(p.Children[0].Cols))
	if err != nil {
		return nil, err
	}
	var out []sqltypes.Row
	for _, r := range in {
		d := fn(r)
		if !d.IsNull() && d.Bool() {
			out = append(out, r)
		}
	}
	return out, nil
}

func (c *Context) execHashJoin(p *opt.Plan) ([]sqltypes.Row, error) {
	probe, err := c.exec(p.Children[0])
	if err != nil {
		return nil, err
	}
	build, err := c.exec(p.Children[1])
	if err != nil {
		return nil, err
	}
	probeLayout := layoutOf(p.Children[0].Cols)
	buildLayout := layoutOf(p.Children[1].Cols)
	probeKeys := make([]int, len(p.LeftKeys))
	buildKeys := make([]int, len(p.RightKeys))
	for i := range p.LeftKeys {
		pk, ok := probeLayout[p.LeftKeys[i]]
		if !ok {
			return nil, fmt.Errorf("hash join probe key @%d missing", p.LeftKeys[i])
		}
		bk, ok := buildLayout[p.RightKeys[i]]
		if !ok {
			return nil, fmt.Errorf("hash join build key @%d missing", p.RightKeys[i])
		}
		probeKeys[i] = pk
		buildKeys[i] = bk
	}
	hasher := sqltypes.NewHasher()
	table := make(map[uint64][]sqltypes.Row, len(build))
	for _, r := range build {
		if rowHasNullAt(r, buildKeys) {
			continue
		}
		h := hasher.HashRow(r, buildKeys)
		table[h] = append(table[h], r)
	}
	var residual scalar.EvalFn
	if p.Filter != nil {
		residual, err = c.compile(p.Filter, layoutOf(p.Cols))
		if err != nil {
			return nil, err
		}
	}
	var out []sqltypes.Row
	combined := make(sqltypes.Row, len(p.Children[0].Cols)+len(p.Children[1].Cols))
	for _, pr := range probe {
		if rowHasNullAt(pr, probeKeys) {
			continue
		}
		h := hasher.HashRow(pr, probeKeys)
		for _, br := range table[h] {
			if !keysEqual(pr, probeKeys, br, buildKeys) {
				continue
			}
			copy(combined, pr)
			copy(combined[len(pr):], br)
			if residual != nil {
				d := residual(combined)
				if d.IsNull() || !d.Bool() {
					continue
				}
			}
			out = append(out, combined.Clone())
		}
	}
	return out, nil
}

func rowHasNullAt(r sqltypes.Row, idx []int) bool {
	for _, i := range idx {
		if r[i].IsNull() {
			return true
		}
	}
	return false
}

func keysEqual(a sqltypes.Row, ai []int, b sqltypes.Row, bi []int) bool {
	for k := range ai {
		if sqltypes.Compare(a[ai[k]], b[bi[k]]) != 0 {
			return false
		}
	}
	return true
}

func (c *Context) execNLJoin(p *opt.Plan) ([]sqltypes.Row, error) {
	left, err := c.exec(p.Children[0])
	if err != nil {
		return nil, err
	}
	right, err := c.exec(p.Children[1])
	if err != nil {
		return nil, err
	}
	var filter scalar.EvalFn
	if p.Filter != nil {
		filter, err = c.compile(p.Filter, layoutOf(p.Cols))
		if err != nil {
			return nil, err
		}
	}
	var out []sqltypes.Row
	combined := make(sqltypes.Row, len(p.Children[0].Cols)+len(p.Children[1].Cols))
	for _, lr := range left {
		for _, rr := range right {
			copy(combined, lr)
			copy(combined[len(lr):], rr)
			if filter != nil {
				d := filter(combined)
				if d.IsNull() || !d.Bool() {
					continue
				}
			}
			out = append(out, combined.Clone())
		}
	}
	return out, nil
}

func (c *Context) execProject(p *opt.Plan) ([]sqltypes.Row, error) {
	in, err := c.exec(p.Children[0])
	if err != nil {
		return nil, err
	}
	layout := layoutOf(p.Children[0].Cols)
	fns := make([]scalar.EvalFn, len(p.Projections))
	for i, pr := range p.Projections {
		fn, err := c.compile(pr.Expr, layout)
		if err != nil {
			return nil, err
		}
		fns[i] = fn
	}
	out := make([]sqltypes.Row, len(in))
	for ri, r := range in {
		row := make(sqltypes.Row, len(fns))
		for i, fn := range fns {
			row[i] = fn(r)
		}
		out[ri] = row
	}
	return out, nil
}
