// Package exec executes physical plans against the in-memory store:
// Volcano-in-spirit operators materialized per node (scan, filter, hash
// join, nested-loop join, hash aggregation, projection, sort), work-table
// spools shared across all their consumers (each CSE is computed exactly
// once per batch execution), and uncorrelated scalar subqueries evaluated
// once per statement.
//
// Batches execute in parallel by default: the spool dependency DAG derived
// from the optimized plan is materialized in topological waves on a bounded
// worker pool, then independent statements run concurrently once their
// spools are ready, with results merged in statement order. Options
// configures the pool; Parallelism 1 selects the deterministic sequential
// path.
package exec

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/logical"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/scalar"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// StatementResult is one statement's output.
type StatementResult struct {
	Names []string
	Rows  []sqltypes.Row
}

// Options configures batch execution.
type Options struct {
	// Parallelism is the worker-pool size: 0 (or negative) means
	// runtime.GOMAXPROCS(0); 1 forces the sequential executor, kept as a
	// fallback for determinism debugging; n > 1 uses n workers.
	Parallelism int

	// Analyze turns on per-operator instrumentation (rows produced,
	// cumulative wall time, execution counts) reported in Stats.Nodes for
	// EXPLAIN ANALYZE rendering. Off by default: the plain path pays no
	// per-node timing cost.
	Analyze bool

	// Cache, when non-nil, is the cross-batch spool result cache: a spool
	// whose CSEPlan carries a SpecKey is looked up before materialization
	// (hit → cached rows are served) and offered for admission after (with
	// the source-table version snapshot taken before the plan ran).
	Cache *cache.Cache

	// ChunkSize is the morsel granularity for intra-operator parallelism:
	// operator inputs are split into chunks of this many rows before being
	// dispatched to workers. 0 (or negative) means DefaultChunkSize. Exposed
	// mainly for testing — a chunk size of 1 maximizes scheduling interleave.
	ChunkSize int

	// Span, when non-nil, is the parent span the executor records under:
	// one child per spool wave, per spool materialization (with cache
	// hit/miss and wait-for-materialization attributes), and per statement.
	// Nil disables span recording at zero cost.
	Span *obs.Span

	// NoColPlane disables the columnar data plane: selection-vector kernels
	// over typed column chunks and column-at-a-time hash-key extraction. Off
	// by default (the column plane is on); the row-at-a-time path it forces
	// is kept as the differential-testing oracle.
	NoColPlane bool
}

func (o Options) workers() int {
	if o.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Parallelism
}

func (o Options) chunkSize() int {
	if o.ChunkSize > 0 {
		return o.ChunkSize
	}
	return DefaultChunkSize
}

// spoolEntry is one CSE's shared work table. In parallel mode once
// guarantees exactly-once materialization across goroutines; the sequential
// path uses the done flag together with Context.materializing so that
// cyclic dependencies are reported instead of deadlocking.
type spoolEntry struct {
	id   int
	plan *opt.Plan
	once sync.Once
	done bool
	rows []sqltypes.Row
	err  error

	// box pairs rows with their lazily built columnar form; cache hits hand
	// back the same box, so the column slices are shared by reference.
	box *storage.ColBox

	// Cross-batch cache identity: the candidate's canonical spec key and
	// the base tables its plan reads (lowercase, sorted). key is "" when the
	// spool is not cacheable (no SpecKey, subquery reference, or no cache).
	key     string
	sources []string
}

// Context executes one batch plan. In parallel mode every statement (and
// every spool-materialization worker) gets its own shallow copy with a
// private subqueryVals map; the spool table and stats are shared.
type Context struct {
	Store *storage.Store
	Md    *logical.Metadata
	CSEs  map[int]*opt.CSEPlan

	ctx           context.Context
	parallel      bool
	spools        map[int]*spoolEntry
	materializing map[int]bool
	subqueryVals  map[int]sqltypes.Datum
	stats         *collector
	cache         *cache.Cache

	// span is the enclosing span new work records under: the wave span for
	// spool workers, the statement span for statement execution. Nil when
	// span tracing is off.
	span *obs.Span

	// Intra-operator parallelism: workers is the degree budget shared with
	// the batch-level scheduler, chunkSize the morsel granularity, and pool
	// the batch-wide helper-slot channel (capacity workers-1) that bounds the
	// total number of goroutines doing operator work. workers == 1 disables
	// intra-op parallelism entirely.
	workers   int
	chunkSize int
	pool      chan struct{}

	// colPlane enables selection-vector kernels and column-at-a-time hashing
	// over columnar shadows (see vector.go); false forces the row-at-a-time
	// reference path.
	colPlane bool
}

func newContext(ctx context.Context, res *opt.Result, md *logical.Metadata, store *storage.Store, stats *collector, opts Options) *Context {
	workers := opts.workers()
	// Intra-operator workers beyond the number of schedulable CPUs are pure
	// scheduling overhead (morsels are CPU-bound), so the intra-op degree is
	// capped at GOMAXPROCS even when the batch-level pool is configured
	// larger.
	intraOp := min(workers, runtime.GOMAXPROCS(0))
	c := &Context{
		Store:         store,
		Md:            md,
		CSEs:          res.CSEs,
		ctx:           ctx,
		spools:        make(map[int]*spoolEntry, len(res.CSEs)),
		materializing: make(map[int]bool),
		subqueryVals:  make(map[int]sqltypes.Datum),
		stats:         stats,
		cache:         opts.Cache,
		span:          opts.Span,
		workers:       intraOp,
		chunkSize:     opts.chunkSize(),
		colPlane:      !opts.NoColPlane,
	}
	if intraOp > 1 {
		c.pool = make(chan struct{}, intraOp-1)
	}
	for id, cse := range res.CSEs {
		e := &spoolEntry{id: id, plan: cse.Plan}
		if opts.Cache != nil && cse.SpecKey != "" && !cse.Plan.ReferencesSubquery() {
			// Resolve the plan's base tables (through stacked spools) so a
			// lookup can snapshot their versions; a spool whose rows depend
			// on a scalar subquery is never cached — its result is
			// batch-local.
			set := make(map[string]bool)
			cse.Plan.SourceTables(md, res.CSEs, set)
			e.key = cse.SpecKey
			e.sources = sortedNames(set)
		}
		c.spools[id] = e
	}
	return c
}

func sortedNames(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// fork returns a Context sharing the spool table and stats but with private
// per-statement state, for use by one goroutine.
func (c *Context) fork(ctx context.Context) *Context {
	cc := *c
	cc.ctx = ctx
	cc.materializing = make(map[int]bool)
	cc.subqueryVals = make(map[int]sqltypes.Datum)
	return &cc
}

// Run executes an optimized batch and returns per-statement results.
func Run(ctx context.Context, res *opt.Result, md *logical.Metadata, store *storage.Store) ([]*StatementResult, error) {
	out, _, err := RunWithStats(ctx, res, md, store)
	return out, err
}

// RunWithStats executes with default options and additionally reports
// execution statistics — each CSE appears exactly once in the spool stats
// regardless of its number of consumers.
func RunWithStats(ctx context.Context, res *opt.Result, md *logical.Metadata, store *storage.Store) ([]*StatementResult, *Stats, error) {
	return RunWithOptions(ctx, res, md, store, Options{})
}

// RunWithOptions executes an optimized batch on a worker pool of the
// configured size. The parallel scheduler materializes spools in
// topological waves, then runs statements concurrently; the first error (or
// a context cancellation) cancels all remaining work. Results are returned
// in statement order and are identical to sequential execution.
func RunWithOptions(ctx context.Context, res *opt.Result, md *logical.Metadata, store *storage.Store, opts Options) ([]*StatementResult, *Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	stmtPlans := res.StatementPlans()
	for _, sp := range stmtPlans {
		if sp == nil || sp.Op != opt.PRoot {
			return nil, nil, fmt.Errorf("statement plan has op %s, want Output", planOp(sp))
		}
	}
	workers := opts.workers()
	stats := newCollector(len(stmtPlans), workers, opts.Analyze)
	c := newContext(ctx, res, md, store, stats, opts)

	start := time.Now()
	var out []*StatementResult
	var err error
	if workers <= 1 {
		stats.sequential = true
		stats.workers = 1
		out, err = c.runSequential(stmtPlans)
	} else {
		out, err = c.runParallel(res, stmtPlans, workers)
	}
	if err != nil {
		return nil, nil, err
	}
	return out, stats.snapshot(time.Since(start)), nil
}

func planOp(p *opt.Plan) string {
	if p == nil {
		return "<nil>"
	}
	return p.Op.String()
}

// runSequential is the deterministic fallback: statements in order, spools
// materialized lazily at first use.
func (c *Context) runSequential(stmtPlans []*opt.Plan) ([]*StatementResult, error) {
	out := make([]*StatementResult, 0, len(stmtPlans))
	parent := c.span
	for i, sp := range stmtPlans {
		start := time.Now()
		ss := parent.Child("statement")
		ss.SetAttr("stmt", i)
		// Lazily materialized spools nest under the statement that first
		// touched them.
		c.span = ss
		sr, err := c.runStatement(sp)
		c.span = parent
		if err != nil {
			ss.End()
			return nil, err
		}
		ss.SetAttr("rows", len(sr.Rows))
		ss.End()
		c.stats.recordStmt(i, time.Since(start))
		out = append(out, sr)
	}
	return out, nil
}

func (c *Context) runStatement(p *opt.Plan) (*StatementResult, error) {
	var start time.Time
	if c.stats.analyze {
		start = time.Now()
	}
	// Evaluate scalar subqueries first.
	for i, sq := range p.Children[1:] {
		idx := p.SubqueryIdxs[i]
		val, err := c.evalSubquery(idx, sq)
		if err != nil {
			return nil, err
		}
		c.subqueryVals[idx] = val
	}
	layout := layoutOf(c.sourceCols(p.Children[0]))
	fns := make([]scalar.EvalFn, len(p.Projections))
	for i, pr := range p.Projections {
		fn, err := c.compile(pr.Expr, layout)
		if err != nil {
			return nil, fmt.Errorf("compiling projection %q: %w", pr.Name, err)
		}
		fns[i] = fn
	}
	rows, err := c.execSource(p.Children[0])
	if err != nil {
		return nil, err
	}
	// The output projection is a morsel pass like any other operator: arena
	// rows and (in parallel mode) per-worker output slabs.
	out, err := c.runMorsels(p, len(rows), func(arena *sqltypes.RowArena, lo, hi int, out *[]sqltypes.Row) error {
		*out = append(*out, make([]sqltypes.Row, 0, hi-lo)...)
		for _, r := range rows[lo:hi] {
			row := arena.NewRow(len(fns))
			for i, fn := range fns {
				row[i] = fn(r)
			}
			*out = append(*out, row)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(p.OrderBy) > 0 {
		keys := p.OrderBy
		sort.SliceStable(out, func(i, j int) bool {
			for _, k := range keys {
				cmp := sqltypes.Compare(out[i][k.ProjIdx], out[j][k.ProjIdx])
				if cmp != 0 {
					if k.Desc {
						return cmp > 0
					}
					return cmp < 0
				}
			}
			return false
		})
	}
	if p.Limit > 0 && len(out) > p.Limit {
		out = out[:p.Limit]
	}
	if c.stats.analyze {
		c.stats.recordNode(p, len(out), time.Since(start))
	}
	return &StatementResult{Names: p.OutputNames, Rows: out}, nil
}

func (c *Context) evalSubquery(idx int, plan *opt.Plan) (sqltypes.Datum, error) {
	rows, err := c.execSource(plan)
	if err != nil {
		return sqltypes.Null, err
	}
	blk := c.Md.Subquery(idx)
	switch {
	case len(rows) == 0:
		return sqltypes.Null, nil
	case len(rows) > 1:
		return sqltypes.Null, fmt.Errorf("scalar subquery returned %d rows", len(rows))
	}
	fn, err := c.compile(blk.Projections[0].Expr, layoutOf(c.sourceCols(plan)))
	if err != nil {
		return sqltypes.Null, err
	}
	return fn(rows[0]), nil
}

// compile substitutes evaluated subquery values and compiles the expression
// against the given row layout.
func (c *Context) compile(e *scalar.Expr, layout map[scalar.ColID]int) (scalar.EvalFn, error) {
	return scalar.Compile(c.substituteSubqueries(e), layout)
}

func (c *Context) substituteSubqueries(e *scalar.Expr) *scalar.Expr {
	if e == nil {
		return nil
	}
	if e.Op == scalar.OpSubquery {
		val, ok := c.subqueryVals[int(e.Col)]
		if !ok {
			// Leave unresolved; Compile reports the error.
			return e
		}
		return scalar.Const(val)
	}
	if len(e.Args) == 0 {
		return e
	}
	args := make([]*scalar.Expr, len(e.Args))
	changed := false
	for i, a := range e.Args {
		args[i] = c.substituteSubqueries(a)
		if args[i] != a {
			changed = true
		}
	}
	if !changed {
		return e
	}
	out := *e
	out.Args = args
	return &out
}

func layoutOf(cols []scalar.ColID) map[scalar.ColID]int {
	m := make(map[scalar.ColID]int, len(cols))
	for i, c := range cols {
		m[c] = i
	}
	return m
}

// exec runs one plan node to a materialized row set with layout p.Cols,
// recording per-node actuals when Analyze mode is on.
func (c *Context) exec(p *opt.Plan) ([]sqltypes.Row, error) {
	if !c.stats.analyze {
		return c.execNode(p)
	}
	start := time.Now()
	rows, err := c.execNode(p)
	if err == nil {
		c.stats.recordNode(p, len(rows), time.Since(start))
	}
	return rows, err
}

// execNode dispatches one plan node.
func (c *Context) execNode(p *opt.Plan) ([]sqltypes.Row, error) {
	if c.ctx != nil {
		if err := c.ctx.Err(); err != nil {
			return nil, err
		}
	}
	switch p.Op {
	case opt.PScan:
		return c.execScan(p)
	case opt.PIndexScan:
		return c.execIndexScan(p)
	case opt.PFilter:
		if p.FuseEligible && c.fusionEnabled() {
			return c.execFused(p)
		}
		return c.execFilter(p)
	case opt.PHashJoin:
		return c.execHashJoin(p)
	case opt.PNLJoin:
		return c.execNLJoin(p)
	case opt.PMergeJoin:
		return c.execMergeJoin(p)
	case opt.PLookupJoin:
		return c.execLookupJoin(p)
	case opt.PHashAgg:
		return c.execHashAgg(p)
	case opt.PStreamAgg:
		return c.execStreamAgg(p)
	case opt.PSort:
		return c.execSort(p)
	case opt.PProject:
		if p.FuseEligible && c.fusionEnabled() {
			return c.execFused(p)
		}
		return c.execProject(p)
	case opt.PSpoolScan:
		// Every spool scan is one read of the shared work table; the
		// scheduler's own materialization calls bypass this path.
		c.stats.recordSpoolHit(p.SpoolID)
		return c.spool(p.SpoolID)
	default:
		return nil, fmt.Errorf("cannot execute plan op %s", p.Op)
	}
}

// spool returns the materialized work table for a candidate CSE, computing
// it on first use. All consumers — including other CSE plans — share the
// result. In parallel mode the per-entry sync.Once makes the computation
// exactly-once across goroutines (the scheduler has already rejected
// cycles); the sequential path tracks the in-flight chain to report cycles.
func (c *Context) spool(id int) ([]sqltypes.Row, error) {
	e, ok := c.spools[id]
	if !ok {
		return nil, fmt.Errorf("no plan for CSE %d", id)
	}
	if c.parallel {
		if c.span == nil {
			e.once.Do(func() { e.materialize(c) })
			return e.rows, e.err
		}
		// Speculatively time the wait on another goroutine's materialization;
		// if this goroutine ran it itself, or the wait never blocked, the span
		// is discarded rather than cluttering the tree.
		ran := false
		ws := c.span.Child("spool-wait")
		e.once.Do(func() {
			ran = true
			e.materialize(c)
		})
		ws.End()
		if ran || ws.Dur() < 10*time.Microsecond {
			ws.Discard()
		} else {
			ws.SetAttr("cse", e.id)
			ws.SetAttr("wait_us", ws.Dur().Microseconds())
		}
		return e.rows, e.err
	}
	if e.done {
		return e.rows, e.err
	}
	if c.materializing[id] {
		return nil, fmt.Errorf("cyclic spool dependency on CSE %d", id)
	}
	c.materializing[id] = true
	e.materialize(c)
	c.materializing[id] = false
	e.done = true
	return e.rows, e.err
}

// materialize executes the spool's plan exactly once and records stats. For
// cacheable spools it first consults the cross-batch result cache; on a miss
// the freshly computed rows are offered back under the source-table version
// snapshot taken *before* the plan ran, so a write racing the computation
// leaves behind an entry the next lookup rejects rather than stale data that
// validates.
func (e *spoolEntry) materialize(c *Context) {
	start := time.Now()
	sp := c.span.Child("spool")
	sp.SetAttr("cse", e.id)
	defer sp.End()
	var versions map[string]uint64
	if e.key == "" {
		sp.SetAttr("cache", "uncacheable")
	} else {
		versions = c.Store.Versions(e.sources)
		if box, ok := c.cache.Lookup(e.key, versions); ok {
			// The cached box carries both forms: rows and any columnar shadow
			// already built for them — a hit re-encodes nothing.
			e.box = box
			e.rows = box.Rows()
			sp.SetAttr("cache", "hit")
			sp.SetAttr("rows", len(e.rows))
			c.stats.recordSpoolCached(e.id, len(e.rows), time.Since(start))
			return
		}
		sp.SetAttr("cache", "miss")
	}
	rows, err := c.exec(e.plan)
	if err != nil {
		e.err = fmt.Errorf("materializing CSE %d: %w", e.id, err)
		sp.SetAttr("error", e.err.Error())
		return
	}
	e.rows = rows
	e.box = storage.NewColBox(rows)
	sp.SetAttr("rows", len(rows))
	c.stats.recordSpool(e.id, len(rows), time.Since(start))
	if e.key != "" {
		var bytes int64
		for _, r := range rows {
			bytes += int64(sqltypes.RowSize(r))
		}
		// H2-style admission bound: cache only when reading the rows back
		// costs less than recomputing the plan.
		readCost := opt.SpoolReadCost(float64(len(rows)), float64(bytes))
		c.cache.Admit(e.key, e.box, versions, readCost, e.plan.Cost)
	}
}

func (c *Context) execScan(p *opt.Plan) ([]sqltypes.Row, error) {
	rel := c.Md.Rel(p.Rel)
	tab, err := c.Store.Table(rel.Tab.Name)
	if err != nil {
		return nil, err
	}
	// Table rows have the full column layout of the instance.
	full := fullColIDs(rel)
	layout := layoutOf(full)
	var filter scalar.EvalFn
	var cs *colSelection
	if p.Filter != nil {
		cs = c.buildColSelection(c.substituteSubqueries(p.Filter), c.tableView(tab), layout)
		if cs == nil {
			filter, err = c.compile(p.Filter, layout)
			if err != nil {
				return nil, fmt.Errorf("scan filter on %s: %w", rel.Tab.Name, err)
			}
		}
	}
	// Projection indices from full row to output layout.
	idx := make([]int, len(p.Cols))
	for i, col := range p.Cols {
		pos, ok := layout[col]
		if !ok {
			return nil, fmt.Errorf("scan output column @%d not in table %s", col, rel.Tab.Name)
		}
		idx[i] = pos
	}
	source := tab.Rows
	// Identity projection: the scan's output is the full table layout, so
	// rows can be shared instead of copied — operators never mutate their
	// inputs (the same sharing spool reads rely on).
	if identityProjection(idx, len(full)) {
		if cs != nil {
			return c.selectShared(p, source, cs)
		}
		if filter == nil {
			return source, nil
		}
		return c.filterShared(p, source, filter)
	}
	return c.runMorsels(p, len(source), func(arena *sqltypes.RowArena, lo, hi int, out *[]sqltypes.Row) error {
		if cs != nil {
			// Late materialization: the kernels pick the surviving row
			// numbers from the typed columns, then only those rows are
			// decoded into the projected layout.
			for _, si := range cs.apply(source, lo, hi) {
				r := source[si]
				row := arena.NewRow(len(idx))
				for i, pos := range idx {
					row[i] = r[pos]
				}
				*out = append(*out, row)
			}
			return nil
		}
		if filter == nil {
			// Exactly one output row per input row: size the slice once.
			*out = append(*out, make([]sqltypes.Row, 0, hi-lo)...)
		}
		for _, r := range source[lo:hi] {
			if filter != nil {
				d := filter(r)
				if d.IsNull() || !d.Bool() {
					continue
				}
			}
			row := arena.NewRow(len(idx))
			for i, pos := range idx {
				row[i] = r[pos]
			}
			*out = append(*out, row)
		}
		return nil
	})
}

// identityProjection reports whether idx selects every position of a
// width-wide row in order, i.e. projecting through it is a no-op.
func identityProjection(idx []int, width int) bool {
	if len(idx) != width {
		return false
	}
	for i, pos := range idx {
		if pos != i {
			return false
		}
	}
	return true
}

func (c *Context) execFilter(p *opt.Plan) ([]sqltypes.Row, error) {
	// Compile before running the child: expression errors surface without
	// paying for the subtree, and the closure is ready for every worker.
	fn, err := c.compile(p.Filter, layoutOf(p.Children[0].Cols))
	if err != nil {
		return nil, err
	}
	in, err := c.exec(p.Children[0])
	if err != nil {
		return nil, err
	}
	// When the child handed back storage-backed rows (shared scan or spool
	// work table), filter on their columnar shadow instead.
	if cd := c.sourceView(p.Children[0], in); cd != nil {
		if cs := c.buildColSelection(c.substituteSubqueries(p.Filter), cd, layoutOf(p.Children[0].Cols)); cs != nil {
			return c.selectShared(p, in, cs)
		}
	}
	return c.filterShared(p, in, fn)
}

func (c *Context) execHashJoin(p *opt.Plan) ([]sqltypes.Row, error) {
	// Children arrive through execSource, so key and output positions are
	// resolved against the layout the rows actually carry; the join itself
	// emits its declared p.Cols layout.
	probeLayout := layoutOf(c.sourceCols(p.Children[0]))
	buildLayout := layoutOf(c.sourceCols(p.Children[1]))
	probeKeys, err := colPositions(p.LeftKeys, probeLayout, "hash join probe key")
	if err != nil {
		return nil, err
	}
	buildKeys, err := colPositions(p.RightKeys, buildLayout, "hash join build key")
	if err != nil {
		return nil, err
	}
	probeIdx, err := colPositions(p.Children[0].Cols, probeLayout, "hash join probe column")
	if err != nil {
		return nil, err
	}
	buildIdx, err := colPositions(p.Children[1].Cols, buildLayout, "hash join build column")
	if err != nil {
		return nil, err
	}
	var residual scalar.EvalFn
	if p.Filter != nil {
		residual, err = c.compile(p.Filter, layoutOf(p.Cols))
		if err != nil {
			return nil, err
		}
	}
	// Build side first: an inner join with an empty build produces nothing,
	// so the probe subtree is never executed at all.
	build, err := c.execSource(p.Children[1])
	if err != nil {
		return nil, err
	}
	if len(build) == 0 {
		return nil, nil
	}
	hasher := sqltypes.NewHasher()
	// Typed hash-key extraction: when a side's rows are backed by a columnar
	// shadow, key hashes are computed column-at-a-time in one typed pass per
	// key column; the fold order matches HashKey, so the table and probes are
	// identical either way.
	var buildHash []uint64
	var buildKeyed []bool
	if cd := c.sourceView(p.Children[1], build); cd != nil {
		buildHash, buildKeyed = colHashKeys(hasher, cd, build, buildKeys)
		c.stats.recordColHash()
	}
	// Chain-layout hash table: heads maps a key hash to the first matching
	// build row, next links same-hash rows. Chains are threaded back-to-front
	// so probes walk them in build order, preserving the sequential emit
	// order. Compared to map[hash][]Row buckets this allocates two flat
	// structures instead of one growing slice per distinct key.
	heads := make(map[uint64]int, len(build))
	next := make([]int, len(build))
	for i := len(build) - 1; i >= 0; i-- {
		var h uint64
		var ok bool
		if buildHash != nil {
			h, ok = buildHash[i], buildKeyed[i]
		} else {
			h, ok = hasher.HashKey(build[i], buildKeys)
		}
		if !ok {
			continue
		}
		if head, ok := heads[h]; ok {
			next[i] = head
		} else {
			next[i] = -1
		}
		heads[h] = i
	}
	probe, err := c.execSource(p.Children[0])
	if err != nil {
		return nil, err
	}
	var probeHash []uint64
	var probeKeyed []bool
	if cd := c.sourceView(p.Children[0], probe); cd != nil {
		probeHash, probeKeyed = colHashKeys(hasher, cd, probe, probeKeys)
		c.stats.recordColHash()
	}
	probeWidth := len(p.Children[0].Cols)
	width := probeWidth + len(p.Children[1].Cols)
	return c.runMorsels(p, len(probe), func(arena *sqltypes.RowArena, lo, hi int, out *[]sqltypes.Row) error {
		// Direct-write output: the candidate row is carved from the worker's
		// arena once and reused until a match survives the residual, so each
		// emitted row costs exactly one allocation (amortized by the slab).
		var row sqltypes.Row
		for pi := lo; pi < hi; pi++ {
			pr := probe[pi]
			var h uint64
			var keyed bool
			if probeHash != nil {
				h, keyed = probeHash[pi], probeKeyed[pi]
			} else {
				h, keyed = hasher.HashKey(pr, probeKeys)
			}
			if !keyed {
				continue
			}
			j, ok := heads[h]
			if !ok {
				continue
			}
			for ; j >= 0; j = next[j] {
				br := build[j]
				if !keysEqual(pr, probeKeys, br, buildKeys) {
					continue
				}
				if row == nil {
					row = arena.NewRow(width)
				}
				for i, pos := range probeIdx {
					row[i] = pr[pos]
				}
				for i, pos := range buildIdx {
					row[probeWidth+i] = br[pos]
				}
				if residual != nil {
					d := residual(row)
					if d.IsNull() || !d.Bool() {
						continue
					}
				}
				*out = append(*out, row)
				row = nil
			}
		}
		return nil
	})
}

func rowHasNullAt(r sqltypes.Row, idx []int) bool {
	for _, i := range idx {
		if r[i].IsNull() {
			return true
		}
	}
	return false
}

func keysEqual(a sqltypes.Row, ai []int, b sqltypes.Row, bi []int) bool {
	for k := range ai {
		if sqltypes.Compare(a[ai[k]], b[bi[k]]) != 0 {
			return false
		}
	}
	return true
}

func (c *Context) execNLJoin(p *opt.Plan) ([]sqltypes.Row, error) {
	var filter scalar.EvalFn
	var err error
	if p.Filter != nil {
		filter, err = c.compile(p.Filter, layoutOf(p.Cols))
		if err != nil {
			return nil, err
		}
	}
	leftIdx, err := colPositions(p.Children[0].Cols, layoutOf(c.sourceCols(p.Children[0])), "join left column")
	if err != nil {
		return nil, err
	}
	rightIdx, err := colPositions(p.Children[1].Cols, layoutOf(c.sourceCols(p.Children[1])), "join right column")
	if err != nil {
		return nil, err
	}
	left, err := c.execSource(p.Children[0])
	if err != nil {
		return nil, err
	}
	right, err := c.execSource(p.Children[1])
	if err != nil {
		return nil, err
	}
	leftWidth := len(p.Children[0].Cols)
	width := leftWidth + len(p.Children[1].Cols)
	return c.runMorsels(p, len(left), func(arena *sqltypes.RowArena, lo, hi int, out *[]sqltypes.Row) error {
		var row sqltypes.Row
		for _, lr := range left[lo:hi] {
			for _, rr := range right {
				if row == nil {
					row = arena.NewRow(width)
				}
				for i, pos := range leftIdx {
					row[i] = lr[pos]
				}
				for i, pos := range rightIdx {
					row[leftWidth+i] = rr[pos]
				}
				if filter != nil {
					d := filter(row)
					if d.IsNull() || !d.Bool() {
						continue
					}
				}
				*out = append(*out, row)
				row = nil
			}
		}
		return nil
	})
}

func (c *Context) execProject(p *opt.Plan) ([]sqltypes.Row, error) {
	layout := layoutOf(c.sourceCols(p.Children[0]))
	fns := make([]scalar.EvalFn, len(p.Projections))
	for i, pr := range p.Projections {
		fn, err := c.compile(pr.Expr, layout)
		if err != nil {
			return nil, err
		}
		fns[i] = fn
	}
	in, err := c.execSource(p.Children[0])
	if err != nil {
		return nil, err
	}
	return c.runMorsels(p, len(in), func(arena *sqltypes.RowArena, lo, hi int, out *[]sqltypes.Row) error {
		*out = append(*out, make([]sqltypes.Row, 0, hi-lo)...)
		for _, r := range in[lo:hi] {
			row := arena.NewRow(len(fns))
			for i, fn := range fns {
				row[i] = fn(r)
			}
			*out = append(*out, row)
		}
		return nil
	})
}
