package exec

import (
	"fmt"
	"sort"

	"repro/internal/opt"
	"repro/internal/scalar"
	"repro/internal/sqltypes"
)

// execIndexScan reads the qualifying range of a secondary index (a sorted
// row permutation), applies the residual filter, and projects the output
// columns. Rows are emitted in index order, providing the sort order the
// optimizer advertised.
func (c *Context) execIndexScan(p *opt.Plan) ([]sqltypes.Row, error) {
	rel := c.Md.Rel(p.Rel)
	tab, err := c.Store.Table(rel.Tab.Name)
	if err != nil {
		return nil, err
	}
	perm := tab.Index(p.IndexOrd)
	if perm == nil {
		return nil, fmt.Errorf("no index on %s.%s", rel.Tab.Name, rel.Tab.Cols[p.IndexOrd].Name)
	}
	layout := layoutOf(fullColIDs(rel))
	var filter scalar.EvalFn
	var cs *colSelection
	if p.Filter != nil {
		cs = c.buildColSelection(c.substituteSubqueries(p.Filter), c.tableView(tab), layout)
		if cs == nil {
			filter, err = c.compile(p.Filter, layout)
			if err != nil {
				return nil, err
			}
		}
	}
	idx := make([]int, len(p.Cols))
	for i, col := range p.Cols {
		pos, ok := layout[col]
		if !ok {
			return nil, fmt.Errorf("index scan output column @%d not in table %s", col, rel.Tab.Name)
		}
		idx[i] = pos
	}

	span := indexSpan(tab.Rows, perm, p.IndexOrd, p.Bounds)

	return c.runMorsels(p, len(span), func(arena *sqltypes.RowArena, lo, hi int, out *[]sqltypes.Row) error {
		if cs != nil {
			// Span entries are row numbers into the table — the index space of
			// its columnar shadow — so the residual filter refines them as a
			// selection vector before any row is decoded.
			sel := make([]int32, hi-lo)
			for k, ri := range span[lo:hi] {
				sel[k] = int32(ri)
			}
			for _, ri := range cs.refineSel(tab.Rows, sel) {
				r := tab.Rows[ri]
				row := arena.NewRow(len(idx))
				for j, pos := range idx {
					row[j] = r[pos]
				}
				*out = append(*out, row)
			}
			return nil
		}
		for _, ri := range span[lo:hi] {
			r := tab.Rows[ri]
			if filter != nil {
				d := filter(r)
				if d.IsNull() || !d.Bool() {
					continue
				}
			}
			row := arena.NewRow(len(idx))
			for j, pos := range idx {
				row[j] = r[pos]
			}
			*out = append(*out, row)
		}
		return nil
	})
}

// indexSpan binary-searches both ends of the qualifying range of a sorted
// row permutation, so the span is known up front and can be processed in
// morsels. NULL values sort first and never satisfy a range predicate, so
// they are skipped when the range is unbounded from below.
func indexSpan(rows []sqltypes.Row, perm []int, ord int, b opt.Bounds) []int {
	start := 0
	if !b.Lo.IsNull() {
		start = sort.Search(len(perm), func(i int) bool {
			cmp := sqltypes.Compare(rows[perm[i]][ord], b.Lo)
			if b.LoInc {
				return cmp >= 0
			}
			return cmp > 0
		})
	} else {
		start = sort.Search(len(perm), func(i int) bool {
			return !rows[perm[i]][ord].IsNull()
		})
	}
	end := len(perm)
	if !b.Hi.IsNull() {
		end = start + sort.Search(len(perm)-start, func(i int) bool {
			cmp := sqltypes.Compare(rows[perm[start+i]][ord], b.Hi)
			return cmp > 0 || (cmp == 0 && !b.HiInc)
		})
	}
	return perm[start:end]
}
