package exec

import (
	"fmt"
	"sort"

	"repro/internal/opt"
	"repro/internal/scalar"
	"repro/internal/sqltypes"
)

// execIndexScan reads the qualifying range of a secondary index (a sorted
// row permutation), applies the residual filter, and projects the output
// columns. Rows are emitted in index order, providing the sort order the
// optimizer advertised.
func (c *Context) execIndexScan(p *opt.Plan) ([]sqltypes.Row, error) {
	rel := c.Md.Rel(p.Rel)
	tab, err := c.Store.Table(rel.Tab.Name)
	if err != nil {
		return nil, err
	}
	perm := tab.Index(p.IndexOrd)
	if perm == nil {
		return nil, fmt.Errorf("no index on %s.%s", rel.Tab.Name, rel.Tab.Cols[p.IndexOrd].Name)
	}
	ord := p.IndexOrd
	b := p.Bounds

	// Locate the first qualifying position. NULL values sort first and
	// never satisfy a range predicate, so skip past them when unbounded
	// from below.
	start := 0
	if !b.Lo.IsNull() {
		start = sort.Search(len(perm), func(i int) bool {
			cmp := sqltypes.Compare(tab.Rows[perm[i]][ord], b.Lo)
			if b.LoInc {
				return cmp >= 0
			}
			return cmp > 0
		})
	} else {
		start = sort.Search(len(perm), func(i int) bool {
			return !tab.Rows[perm[i]][ord].IsNull()
		})
	}

	full := make([]scalar.ColID, len(rel.Tab.Cols))
	for i := range rel.Tab.Cols {
		full[i] = rel.ColID(i)
	}
	layout := layoutOf(full)
	var filter scalar.EvalFn
	if p.Filter != nil {
		filter, err = c.compile(p.Filter, layout)
		if err != nil {
			return nil, err
		}
	}
	idx := make([]int, len(p.Cols))
	for i, col := range p.Cols {
		pos, ok := layout[col]
		if !ok {
			return nil, fmt.Errorf("index scan output column @%d not in table %s", col, rel.Tab.Name)
		}
		idx[i] = pos
	}

	var out []sqltypes.Row
	for i := start; i < len(perm); i++ {
		r := tab.Rows[perm[i]]
		v := r[ord]
		if !b.Hi.IsNull() {
			cmp := sqltypes.Compare(v, b.Hi)
			if cmp > 0 || (cmp == 0 && !b.HiInc) {
				break
			}
		}
		if filter != nil {
			d := filter(r)
			if d.IsNull() || !d.Bool() {
				continue
			}
		}
		row := make(sqltypes.Row, len(idx))
		for j, pos := range idx {
			row[j] = r[pos]
		}
		out = append(out, row)
	}
	return out, nil
}
