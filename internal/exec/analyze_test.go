package exec_test

import (
	"context"
	"testing"

	"repro/csedb"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/opt"
)

// TestAnalyzeNodeStats: Options.Analyze populates per-operator actuals for
// every node of every statement plan, the root actuals match the statement
// output, and spool hit counts equal the number of spool-scan reads.
func TestAnalyzeNodeStats(t *testing.T) {
	s := core.DefaultSettings()
	db := csedb.Open(csedb.Options{CSE: &s})
	if err := db.LoadTPCH(0.01, 42); err != nil {
		t.Fatal(err)
	}
	out, md, err := db.Optimize(bench.Table2SQL())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Result.CSEs) == 0 {
		t.Fatal("fixture batch must share at least one CSE")
	}

	for _, par := range []int{1, 4} {
		res, stats, err := exec.RunWithOptions(context.Background(), out.Result, md, db.Store(),
			exec.Options{Parallelism: par, Analyze: true})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Nodes == nil {
			t.Fatalf("par=%d: Analyze run returned no node stats", par)
		}

		// Every operator in every statement plan must have been recorded,
		// and the root's row count must equal the statement's output.
		spoolScans := 0
		for i, sp := range out.Result.StatementPlans() {
			var walk func(p *opt.Plan)
			walk = func(p *opt.Plan) {
				ns, ok := stats.Nodes[p]
				if !ok {
					t.Errorf("par=%d: stmt %d node %s has no actuals", par, i, p.Op)
					return
				}
				if ns.Execs < 1 {
					t.Errorf("par=%d: stmt %d node %s executed %d times", par, i, p.Op, ns.Execs)
				}
				if p.Op == opt.PSpoolScan {
					spoolScans++
				}
				for _, ch := range p.Children {
					walk(ch)
				}
			}
			walk(sp)
			if got := stats.Nodes[sp].Rows; got != len(res[i].Rows) {
				t.Errorf("par=%d: stmt %d root rows = %d, output has %d", par, i, got, len(res[i].Rows))
			}
		}

		hits := 0
		for _, n := range stats.SpoolHits {
			hits += n
		}
		if spoolScans == 0 || hits < spoolScans {
			t.Errorf("par=%d: %d spool hits recorded for %d statement-plan spool scans", par, hits, spoolScans)
		}
	}

	// The plain path carries no node stats.
	_, stats, err := exec.RunWithOptions(context.Background(), out.Result, md, db.Store(), exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Nodes != nil {
		t.Error("non-Analyze run must not allocate node stats")
	}
	if len(stats.SpoolHits) == 0 {
		t.Error("spool hit counts must be maintained even without Analyze")
	}
}
