package exec

import (
	"repro/internal/opt"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// sourceView returns columnar data aligned index-for-index with rows, when
// rows are a storage-backed set that execSource (or exec) handed back shared:
// an unfiltered scan's own table rows, or a spool work table. Alignment is
// verified by slice identity against the backing store, never inferred from
// plan shape, so projected/filtered/copied row sets can never pick up a
// mismatched view. Returns nil when the column plane is off or no aligned
// columnar form exists.
func (c *Context) sourceView(p *opt.Plan, rows []sqltypes.Row) *storage.ColumnData {
	if !c.colPlane || len(rows) == 0 {
		return nil
	}
	switch p.Op {
	case opt.PScan:
		if p.Filter != nil {
			return nil
		}
		rel := c.Md.Rel(p.Rel)
		tab, err := c.Store.Table(rel.Tab.Name)
		if err != nil || len(tab.Rows) != len(rows) || &tab.Rows[0] != &rows[0] {
			return nil
		}
		return tab.Columns()
	case opt.PSpoolScan:
		e, ok := c.spools[p.SpoolID]
		if !ok || e.box == nil {
			return nil
		}
		brows := e.box.Rows()
		if len(brows) != len(rows) || &brows[0] != &rows[0] {
			return nil
		}
		return e.box.Columns()
	}
	return nil
}

// tableView returns a table's columnar form when the column plane is on.
func (c *Context) tableView(tab *storage.Table) *storage.ColumnData {
	if !c.colPlane {
		return nil
	}
	return tab.Columns()
}

// selectShared keeps the rows selected by the kernels, sharing them with the
// input — the columnar counterpart of filterShared, with identical output.
func (c *Context) selectShared(p *opt.Plan, rows []sqltypes.Row, cs *colSelection) ([]sqltypes.Row, error) {
	return c.runMorsels(p, len(rows), func(_ *sqltypes.RowArena, lo, hi int, out *[]sqltypes.Row) error {
		for _, i := range cs.apply(rows, lo, hi) {
			*out = append(*out, rows[i])
		}
		return nil
	})
}
