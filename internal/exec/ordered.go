package exec

import (
	"fmt"
	"sort"

	"repro/internal/opt"
	"repro/internal/scalar"
	"repro/internal/sqltypes"
)

// execSort sorts the child's rows ascending by the plan's sort columns
// (NULLs first, matching sqltypes.Compare).
func (c *Context) execSort(p *opt.Plan) ([]sqltypes.Row, error) {
	in, err := c.exec(p.Children[0])
	if err != nil {
		return nil, err
	}
	layout := layoutOf(p.Children[0].Cols)
	keys := make([]int, len(p.SortCols))
	for i, col := range p.SortCols {
		pos, ok := layout[col]
		if !ok {
			return nil, fmt.Errorf("sort column @%d missing from input", col)
		}
		keys[i] = pos
	}
	out := make([]sqltypes.Row, len(in))
	copy(out, in)
	sort.SliceStable(out, func(a, b int) bool {
		for _, k := range keys {
			if cmp := sqltypes.Compare(out[a][k], out[b][k]); cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	return out, nil
}

// execMergeJoin joins two inputs sorted on their key columns. Rows with a
// NULL key never match. Duplicate keys on both sides produce the full cross
// of the two equal-key blocks.
func (c *Context) execMergeJoin(p *opt.Plan) ([]sqltypes.Row, error) {
	left, err := c.exec(p.Children[0])
	if err != nil {
		return nil, err
	}
	right, err := c.exec(p.Children[1])
	if err != nil {
		return nil, err
	}
	leftLayout := layoutOf(p.Children[0].Cols)
	rightLayout := layoutOf(p.Children[1].Cols)
	lk := make([]int, len(p.LeftKeys))
	rk := make([]int, len(p.RightKeys))
	for i := range p.LeftKeys {
		lp, ok := leftLayout[p.LeftKeys[i]]
		if !ok {
			return nil, fmt.Errorf("merge join left key @%d missing", p.LeftKeys[i])
		}
		rp, ok := rightLayout[p.RightKeys[i]]
		if !ok {
			return nil, fmt.Errorf("merge join right key @%d missing", p.RightKeys[i])
		}
		lk[i] = lp
		rk[i] = rp
	}
	var residual scalar.EvalFn
	if p.Filter != nil {
		residual, err = c.compile(p.Filter, layoutOf(p.Cols))
		if err != nil {
			return nil, err
		}
	}

	cmpKeys := func(a sqltypes.Row, b sqltypes.Row) int {
		for i := range lk {
			if cmp := sqltypes.Compare(a[lk[i]], b[rk[i]]); cmp != 0 {
				return cmp
			}
		}
		return 0
	}

	var out []sqltypes.Row
	combined := make(sqltypes.Row, len(p.Children[0].Cols)+len(p.Children[1].Cols))
	li, ri := 0, 0
	for li < len(left) && ri < len(right) {
		if rowHasNullAt(left[li], lk) {
			li++
			continue
		}
		if rowHasNullAt(right[ri], rk) {
			ri++
			continue
		}
		cmp := cmpKeys(left[li], right[ri])
		switch {
		case cmp < 0:
			li++
		case cmp > 0:
			ri++
		default:
			// Collect the equal-key block on the right, then emit the cross
			// with every equal-key row on the left.
			rEnd := ri
			for rEnd < len(right) && !rowHasNullAt(right[rEnd], rk) && cmpKeys(left[li], right[rEnd]) == 0 {
				rEnd++
			}
			lEnd := li
			for lEnd < len(left) && !rowHasNullAt(left[lEnd], lk) && cmpKeys(left[lEnd], right[ri]) == 0 {
				lEnd++
			}
			for a := li; a < lEnd; a++ {
				for b := ri; b < rEnd; b++ {
					copy(combined, left[a])
					copy(combined[len(left[a]):], right[b])
					if residual != nil {
						d := residual(combined)
						if d.IsNull() || !d.Bool() {
							continue
						}
					}
					out = append(out, combined.Clone())
				}
			}
			li, ri = lEnd, rEnd
		}
	}
	return out, nil
}

// execStreamAgg aggregates an input sorted on the grouping columns: a group
// closes when any grouping value changes, so only one accumulator set is
// live at a time.
func (c *Context) execStreamAgg(p *opt.Plan) ([]sqltypes.Row, error) {
	in, err := c.exec(p.Children[0])
	if err != nil {
		return nil, err
	}
	layout := layoutOf(p.Children[0].Cols)
	groupIdx := make([]int, len(p.GroupCols))
	for i, g := range p.GroupCols {
		pos, ok := layout[g]
		if !ok {
			return nil, fmt.Errorf("grouping column @%d missing from aggregation input", g)
		}
		groupIdx[i] = pos
	}
	argFns := make([]scalar.EvalFn, len(p.Aggs))
	for i, a := range p.Aggs {
		if a.Kind == scalar.AggCountStar {
			continue
		}
		fn, err := c.compile(a.Arg, layout)
		if err != nil {
			return nil, fmt.Errorf("compiling aggregate %s: %w", a, err)
		}
		argFns[i] = fn
	}

	var out []sqltypes.Row
	var key sqltypes.Row
	var states []*aggState
	flush := func() {
		if states == nil {
			return
		}
		row := make(sqltypes.Row, len(groupIdx)+len(p.Aggs))
		copy(row, key)
		for i, st := range states {
			row[len(groupIdx)+i] = st.result()
		}
		out = append(out, row)
		states = nil
	}
	sameKey := func(r sqltypes.Row) bool {
		for i, gi := range groupIdx {
			if sqltypes.Compare(r[gi], key[i]) != 0 {
				return false
			}
		}
		return true
	}
	for _, r := range in {
		if states == nil || !sameKey(r) {
			flush()
			key = make(sqltypes.Row, len(groupIdx))
			for i, gi := range groupIdx {
				key[i] = r[gi]
			}
			states = make([]*aggState, len(p.Aggs))
			for i, a := range p.Aggs {
				states[i] = newAggState(a.Kind)
			}
		}
		for i := range p.Aggs {
			if p.Aggs[i].Kind == scalar.AggCountStar {
				states[i].add(sqltypes.Null)
			} else {
				states[i].add(argFns[i](r))
			}
		}
	}
	flush()
	return out, nil
}
