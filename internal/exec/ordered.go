package exec

import (
	"fmt"

	"repro/internal/opt"
	"repro/internal/scalar"
	"repro/internal/sqltypes"
)

// execSort sorts the child's rows ascending by the plan's sort columns
// (NULLs first, matching sqltypes.Compare).
func (c *Context) execSort(p *opt.Plan) ([]sqltypes.Row, error) {
	keys, err := colPositions(p.SortCols, layoutOf(p.Children[0].Cols), "sort column")
	if err != nil {
		return nil, err
	}
	in, err := c.exec(p.Children[0])
	if err != nil {
		return nil, err
	}
	return sortRows(in, keys), nil
}

// execMergeJoin joins two inputs sorted on their key columns. Rows with a
// NULL key never match. Duplicate keys on both sides produce the full cross
// of the two equal-key blocks.
func (c *Context) execMergeJoin(p *opt.Plan) ([]sqltypes.Row, error) {
	leftLayout := layoutOf(c.sourceCols(p.Children[0]))
	rightLayout := layoutOf(c.sourceCols(p.Children[1]))
	lk, err := colPositions(p.LeftKeys, leftLayout, "merge join left key")
	if err != nil {
		return nil, err
	}
	rk, err := colPositions(p.RightKeys, rightLayout, "merge join right key")
	if err != nil {
		return nil, err
	}
	leftIdx, err := colPositions(p.Children[0].Cols, leftLayout, "merge join left column")
	if err != nil {
		return nil, err
	}
	rightIdx, err := colPositions(p.Children[1].Cols, rightLayout, "merge join right column")
	if err != nil {
		return nil, err
	}
	var residual scalar.EvalFn
	if p.Filter != nil {
		residual, err = c.compile(p.Filter, layoutOf(p.Cols))
		if err != nil {
			return nil, err
		}
	}
	left, err := c.execSource(p.Children[0])
	if err != nil {
		return nil, err
	}
	right, err := c.execSource(p.Children[1])
	if err != nil {
		return nil, err
	}

	cmpKeys := func(a sqltypes.Row, b sqltypes.Row) int {
		for i := range lk {
			if cmp := sqltypes.Compare(a[lk[i]], b[rk[i]]); cmp != 0 {
				return cmp
			}
		}
		return 0
	}

	// The merge itself is inherently sequential (one cursor per side), but
	// output rows are carved from an arena and written directly: one
	// allocation per emitted row, reused when the residual rejects.
	var out []sqltypes.Row
	var arena sqltypes.RowArena
	var combined sqltypes.Row
	leftWidth := len(p.Children[0].Cols)
	width := leftWidth + len(p.Children[1].Cols)
	li, ri := 0, 0
	for li < len(left) && ri < len(right) {
		if rowHasNullAt(left[li], lk) {
			li++
			continue
		}
		if rowHasNullAt(right[ri], rk) {
			ri++
			continue
		}
		cmp := cmpKeys(left[li], right[ri])
		switch {
		case cmp < 0:
			li++
		case cmp > 0:
			ri++
		default:
			// Collect the equal-key block on the right, then emit the cross
			// with every equal-key row on the left.
			rEnd := ri
			for rEnd < len(right) && !rowHasNullAt(right[rEnd], rk) && cmpKeys(left[li], right[rEnd]) == 0 {
				rEnd++
			}
			lEnd := li
			for lEnd < len(left) && !rowHasNullAt(left[lEnd], lk) && cmpKeys(left[lEnd], right[ri]) == 0 {
				lEnd++
			}
			for a := li; a < lEnd; a++ {
				for b := ri; b < rEnd; b++ {
					if combined == nil {
						combined = arena.NewRow(width)
					}
					for i, pos := range leftIdx {
						combined[i] = left[a][pos]
					}
					for i, pos := range rightIdx {
						combined[leftWidth+i] = right[b][pos]
					}
					if residual != nil {
						d := residual(combined)
						if d.IsNull() || !d.Bool() {
							continue
						}
					}
					out = append(out, combined)
					combined = nil
				}
			}
			li, ri = lEnd, rEnd
		}
	}
	return out, nil
}

// execStreamAgg aggregates an input sorted on the grouping columns: a group
// closes when any grouping value changes, so only one accumulator set is
// live at a time.
func (c *Context) execStreamAgg(p *opt.Plan) ([]sqltypes.Row, error) {
	layout := layoutOf(c.sourceCols(p.Children[0]))
	groupIdx, err := colPositions(p.GroupCols, layout, "grouping column")
	if err != nil {
		return nil, err
	}
	argFns := make([]scalar.EvalFn, len(p.Aggs))
	for i, a := range p.Aggs {
		if a.Kind == scalar.AggCountStar {
			continue
		}
		fn, err := c.compile(a.Arg, layout)
		if err != nil {
			return nil, fmt.Errorf("compiling aggregate %s: %w", a, err)
		}
		argFns[i] = fn
	}
	in, err := c.execSource(p.Children[0])
	if err != nil {
		return nil, err
	}

	var out []sqltypes.Row
	var key sqltypes.Row
	var states []*aggState
	flush := func() {
		if states == nil {
			return
		}
		row := make(sqltypes.Row, len(groupIdx)+len(p.Aggs))
		copy(row, key)
		for i, st := range states {
			row[len(groupIdx)+i] = st.result()
		}
		out = append(out, row)
		states = nil
	}
	sameKey := func(r sqltypes.Row) bool {
		for i, gi := range groupIdx {
			if sqltypes.Compare(r[gi], key[i]) != 0 {
				return false
			}
		}
		return true
	}
	for _, r := range in {
		if states == nil || !sameKey(r) {
			flush()
			key = make(sqltypes.Row, len(groupIdx))
			for i, gi := range groupIdx {
				key[i] = r[gi]
			}
			states = make([]*aggState, len(p.Aggs))
			for i, a := range p.Aggs {
				states[i] = newAggState(a.Kind)
			}
		}
		for i := range p.Aggs {
			if p.Aggs[i].Kind == scalar.AggCountStar {
				states[i].add(sqltypes.Null)
			} else {
				states[i].add(argFns[i](r))
			}
		}
	}
	flush()
	return out, nil
}
