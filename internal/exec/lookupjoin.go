package exec

import (
	"fmt"
	"sort"

	"repro/internal/opt"
	"repro/internal/scalar"
	"repro/internal/sqltypes"
)

// execLookupJoin runs an index nested-loop join: for each outer row, binary
// search the inner table's index (or clustered order) for matching rows,
// apply the inner scan's local filter and the residual condition, and emit
// the combined row. Output preserves the outer input's order.
func (c *Context) execLookupJoin(p *opt.Plan) ([]sqltypes.Row, error) {
	outerLayout := layoutOf(c.sourceCols(p.Children[0]))
	keyPos, ok := outerLayout[p.LookupKey]
	if !ok {
		return nil, fmt.Errorf("lookup key @%d missing from outer input", p.LookupKey)
	}
	outerIdx, err := colPositions(p.Children[0].Cols, outerLayout, "lookup join outer column")
	if err != nil {
		return nil, err
	}
	outer, err := c.execSource(p.Children[0])
	if err != nil {
		return nil, err
	}
	rel := c.Md.Rel(p.Rel)
	tab, err := c.Store.Table(rel.Tab.Name)
	if err != nil {
		return nil, err
	}
	ord := p.IndexOrd
	perm := tab.Index(ord)
	// With no secondary index the rows themselves must be clustered on the
	// key column; treat the identity permutation as the index.
	lookup := func(i int) sqltypes.Row {
		if perm != nil {
			return tab.Rows[perm[i]]
		}
		return tab.Rows[i]
	}
	n := len(tab.Rows)

	// Inner full-row layout for filters; projection indices for output.
	innerLayout := layoutOf(fullColIDs(rel))
	var innerFilter scalar.EvalFn
	if p.InnerFilter != nil {
		innerFilter, err = c.compile(p.InnerFilter, innerLayout)
		if err != nil {
			return nil, err
		}
	}
	innerIdx := make([]int, len(p.InnerCols))
	for i, col := range p.InnerCols {
		pos, ok := innerLayout[col]
		if !ok {
			return nil, fmt.Errorf("lookup join inner column @%d not in %s", col, rel.Tab.Name)
		}
		innerIdx[i] = pos
	}
	var residual scalar.EvalFn
	if p.Filter != nil {
		residual, err = c.compile(p.Filter, layoutOf(p.Cols))
		if err != nil {
			return nil, err
		}
	}

	// The index probe is read-only, so outer morsels can run in parallel;
	// morsel-ordered concatenation preserves the outer input's order.
	outerWidth := len(p.Children[0].Cols)
	width := outerWidth + len(p.InnerCols)
	return c.runMorsels(p, len(outer), func(arena *sqltypes.RowArena, lo, hi int, out *[]sqltypes.Row) error {
		var row sqltypes.Row
		for _, orow := range outer[lo:hi] {
			key := orow[keyPos]
			if key.IsNull() {
				continue
			}
			start := sort.Search(n, func(i int) bool {
				return sqltypes.Compare(lookup(i)[ord], key) >= 0
			})
			for i := start; i < n; i++ {
				irow := lookup(i)
				if sqltypes.Compare(irow[ord], key) != 0 {
					break
				}
				if innerFilter != nil {
					d := innerFilter(irow)
					if d.IsNull() || !d.Bool() {
						continue
					}
				}
				if row == nil {
					row = arena.NewRow(width)
				}
				for j, pos := range outerIdx {
					row[j] = orow[pos]
				}
				for j, pos := range innerIdx {
					row[outerWidth+j] = irow[pos]
				}
				if residual != nil {
					d := residual(row)
					if d.IsNull() || !d.Bool() {
						continue
					}
				}
				*out = append(*out, row)
				row = nil
			}
		}
		return nil
	})
}
