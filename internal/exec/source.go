package exec

import (
	"fmt"
	"sort"

	"repro/internal/logical"
	"repro/internal/opt"
	"repro/internal/scalar"
	"repro/internal/sqltypes"
)

// Late materialization: operators that only *read* their input through
// compiled column positions — joins, aggregations, projections, the
// statement's output projection — pull child rows through execSource instead
// of exec. Pass-through shapes under the child (scans, filters, sorts, index
// scans) then skip materializing their declared projection and hand back the
// storage's own full-width rows; the consumer compiles its expressions
// against sourceCols, the layout those rows actually carry. Sharing is safe
// because operators never mutate input rows (the same model spool reads
// rely on). Materializing operators still emit rows in their plan's declared
// p.Cols layout, so the exec contract is unchanged everywhere else: spool
// work tables, the cross-batch cache, and statement results are laid out
// exactly as before.
//
// Under EXPLAIN ANALYZE both functions fall back to the declared layout so
// every node materializes and per-node actuals stay observable, mirroring
// how fusion disables itself.

// sourceCols reports the column layout execSource(p) will return, without
// executing anything, so consumers can compile expressions before running
// the subtree. It must stay in lockstep with execSource's dispatch.
func (c *Context) sourceCols(p *opt.Plan) []scalar.ColID {
	if c.stats.analyze {
		return p.Cols
	}
	switch p.Op {
	case opt.PScan, opt.PIndexScan:
		return fullColIDs(c.Md.Rel(p.Rel))
	case opt.PFilter, opt.PSort:
		return c.sourceCols(p.Children[0])
	default:
		return p.Cols
	}
}

// execSource executes a plan subtree for a consumer that reads rows through
// the sourceCols(p) layout. See the package comment above on late
// materialization.
func (c *Context) execSource(p *opt.Plan) ([]sqltypes.Row, error) {
	if c.ctx != nil {
		if err := c.ctx.Err(); err != nil {
			return nil, err
		}
	}
	if c.stats.analyze {
		return c.exec(p)
	}
	switch p.Op {
	case opt.PScan:
		return c.scanSource(p)
	case opt.PIndexScan:
		return c.indexScanSource(p)
	case opt.PFilter:
		fn, err := c.compile(p.Filter, layoutOf(c.sourceCols(p)))
		if err != nil {
			return nil, err
		}
		in, err := c.execSource(p.Children[0])
		if err != nil {
			return nil, err
		}
		if cd := c.sourceView(p.Children[0], in); cd != nil {
			if cs := c.buildColSelection(c.substituteSubqueries(p.Filter), cd, layoutOf(c.sourceCols(p))); cs != nil {
				return c.selectShared(p, in, cs)
			}
		}
		return c.filterShared(p, in, fn)
	case opt.PSort:
		keys, err := colPositions(p.SortCols, layoutOf(c.sourceCols(p)), "sort column")
		if err != nil {
			return nil, err
		}
		in, err := c.execSource(p.Children[0])
		if err != nil {
			return nil, err
		}
		return sortRows(in, keys), nil
	default:
		return c.exec(p)
	}
}

// scanSource is execSource's scan leaf: the base table's own rows, filtered
// but never projected.
func (c *Context) scanSource(p *opt.Plan) ([]sqltypes.Row, error) {
	rel := c.Md.Rel(p.Rel)
	tab, err := c.Store.Table(rel.Tab.Name)
	if err != nil {
		return nil, err
	}
	if p.Filter == nil {
		return tab.Rows, nil
	}
	if cs := c.buildColSelection(c.substituteSubqueries(p.Filter), c.tableView(tab), layoutOf(fullColIDs(rel))); cs != nil {
		return c.selectShared(p, tab.Rows, cs)
	}
	filter, err := c.compile(p.Filter, layoutOf(fullColIDs(rel)))
	if err != nil {
		return nil, fmt.Errorf("scan filter on %s: %w", rel.Tab.Name, err)
	}
	return c.filterShared(p, tab.Rows, filter)
}

// indexScanSource is execSource's index-scan leaf: the qualifying index
// range in index order, filtered, as shared full-width rows.
func (c *Context) indexScanSource(p *opt.Plan) ([]sqltypes.Row, error) {
	rel := c.Md.Rel(p.Rel)
	tab, err := c.Store.Table(rel.Tab.Name)
	if err != nil {
		return nil, err
	}
	perm := tab.Index(p.IndexOrd)
	if perm == nil {
		return nil, fmt.Errorf("no index on %s.%s", rel.Tab.Name, rel.Tab.Cols[p.IndexOrd].Name)
	}
	var filter scalar.EvalFn
	var cs *colSelection
	if p.Filter != nil {
		cs = c.buildColSelection(c.substituteSubqueries(p.Filter), c.tableView(tab), layoutOf(fullColIDs(rel)))
		if cs == nil {
			filter, err = c.compile(p.Filter, layoutOf(fullColIDs(rel)))
			if err != nil {
				return nil, err
			}
		}
	}
	span := indexSpan(tab.Rows, perm, p.IndexOrd, p.Bounds)
	return c.runMorsels(p, len(span), func(_ *sqltypes.RowArena, lo, hi int, out *[]sqltypes.Row) error {
		if cs != nil {
			// The span holds row numbers into the table, which is exactly the
			// index space of its columnar shadow: refine it as a selection.
			sel := make([]int32, hi-lo)
			for k, ri := range span[lo:hi] {
				sel[k] = int32(ri)
			}
			for _, ri := range cs.refineSel(tab.Rows, sel) {
				*out = append(*out, tab.Rows[ri])
			}
			return nil
		}
		for _, ri := range span[lo:hi] {
			r := tab.Rows[ri]
			if filter != nil {
				d := filter(r)
				if d.IsNull() || !d.Bool() {
					continue
				}
			}
			*out = append(*out, r)
		}
		return nil
	})
}

// filterShared keeps the rows passing fn, sharing them with the input.
func (c *Context) filterShared(p *opt.Plan, in []sqltypes.Row, fn scalar.EvalFn) ([]sqltypes.Row, error) {
	return c.runMorsels(p, len(in), func(_ *sqltypes.RowArena, lo, hi int, out *[]sqltypes.Row) error {
		for _, r := range in[lo:hi] {
			d := fn(r)
			if !d.IsNull() && d.Bool() {
				*out = append(*out, r)
			}
		}
		return nil
	})
}

// colPositions resolves each column to its position in the layout.
func colPositions(cols []scalar.ColID, layout map[scalar.ColID]int, what string) ([]int, error) {
	out := make([]int, len(cols))
	for i, col := range cols {
		pos, ok := layout[col]
		if !ok {
			return nil, fmt.Errorf("%s @%d missing from input", what, col)
		}
		out[i] = pos
	}
	return out, nil
}

// sortRows stably sorts a copy of the row slice (never the shared backing
// rows of a table or spool) ascending by the key positions, NULLs first.
func sortRows(in []sqltypes.Row, keys []int) []sqltypes.Row {
	out := make([]sqltypes.Row, len(in))
	copy(out, in)
	sort.SliceStable(out, func(a, b int) bool {
		for _, k := range keys {
			if cmp := sqltypes.Compare(out[a][k], out[b][k]); cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	return out
}

// fullColIDs is the column layout of a table instance's stored rows.
func fullColIDs(rel *logical.RelInfo) []scalar.ColID {
	full := make([]scalar.ColID, len(rel.Tab.Cols))
	for i := range rel.Tab.Cols {
		full[i] = rel.ColID(i)
	}
	return full
}
