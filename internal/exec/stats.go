package exec

import (
	"sync"
	"time"

	"repro/internal/opt"
)

// NodeStats holds per-operator actuals collected when Options.Analyze is set:
// output rows, cumulative wall time (children included, mirroring how
// Plan.Cost is cumulative), and the number of executions of the node.
type NodeStats struct {
	Rows  int
	Time  time.Duration
	Execs int

	// Par is the maximum intra-operator parallel degree this node achieved
	// (workers that actually processed its morsels, including the calling
	// goroutine). 0 when the node never ran a parallel morsel pass.
	Par int
}

// Stats reports what one batch execution did. It is a plain-data snapshot
// produced after the run completes — copy it freely. All per-spool maps are
// keyed by CSE id.
type Stats struct {
	// SpoolRows is the number of rows materialized into each spool's work
	// table; every CSE is computed exactly once per batch.
	SpoolRows map[int]int

	// SpoolTimes is the wall-clock time spent materializing each spool.
	SpoolTimes map[int]time.Duration

	// SpoolRuns counts how many times each spool's plan was actually
	// executed; the scheduler guarantees 1 per spool.
	SpoolRuns map[int]int

	// SpoolHits counts reads of each spool's work table by consumers
	// (including other CSE plans when stacking).
	SpoolHits map[int]int

	// SpoolCached marks spools served from the cross-batch result cache
	// instead of being materialized; such spools have no SpoolRuns entry.
	SpoolCached map[int]bool

	// StmtTimes is the wall-clock execution time of each statement (spool
	// materialization excluded when it happened in the spool phase).
	StmtTimes []time.Duration

	// Workers is the worker-pool size the batch ran with (1 = sequential).
	Workers int

	// Waves is the topological spool schedule: each inner slice is one wave
	// of spools materialized concurrently. Empty in sequential mode.
	Waves [][]int

	// Sequential records that the batch ran on the sequential path, and
	// FallbackReason says why when that was not requested explicitly.
	Sequential     bool
	FallbackReason string

	// Morsels is the total number of row chunks dispatched to the intra-op
	// worker pool; ParallelOps counts operator executions that actually ran
	// with more than one worker. Both are 0 for sequential batches.
	Morsels     int
	ParallelOps int

	// ColSelections counts predicates compiled to selection-vector kernels
	// over columnar data; ColHashPasses counts column-at-a-time hash-key
	// extractions (hash join sides and aggregation group keys). Both are 0
	// when Options.NoColPlane forced the row-at-a-time path.
	ColSelections int
	ColHashPasses int

	// WallTime is the total batch execution time; BusyTime is the summed
	// spool and statement work time across workers.
	WallTime time.Duration
	BusyTime time.Duration

	// Nodes holds per-operator actuals, populated only when the batch ran
	// with Options.Analyze.
	Nodes map[*opt.Plan]NodeStats
}

// CacheHits is the number of spools this batch served from the cross-batch
// result cache.
func (s *Stats) CacheHits() int { return len(s.SpoolCached) }

// Utilization is the fraction of available worker time spent doing spool or
// statement work: BusyTime / (WallTime × Workers). Sequential runs are ~1;
// a parallel run limited by one long chain approaches 1/Workers.
func (s *Stats) Utilization() float64 {
	if s.WallTime <= 0 || s.Workers <= 0 {
		return 0
	}
	return s.BusyTime.Seconds() / (s.WallTime.Seconds() * float64(s.Workers))
}

// collector accumulates execution statistics while a batch is running. It is
// internal so the mutex never escapes to callers (copying a finished Stats
// snapshot is safe and vet-clean).
type collector struct {
	mu          sync.Mutex
	analyze     bool
	spoolRows   map[int]int
	spoolTimes  map[int]time.Duration
	spoolRuns   map[int]int
	spoolHits   map[int]int
	spoolCached map[int]bool
	stmtTimes   []time.Duration
	workers     int
	waves       [][]int
	sequential  bool
	fallback    string
	morsels     int
	parallelOps int
	colSelects  int
	colHashes   int
	nodes       map[*opt.Plan]*NodeStats
}

func newCollector(nStatements, workers int, analyze bool) *collector {
	c := &collector{
		analyze:     analyze,
		spoolRows:   make(map[int]int),
		spoolTimes:  make(map[int]time.Duration),
		spoolRuns:   make(map[int]int),
		spoolHits:   make(map[int]int),
		spoolCached: make(map[int]bool),
		stmtTimes:   make([]time.Duration, nStatements),
		workers:     workers,
	}
	if analyze {
		c.nodes = make(map[*opt.Plan]*NodeStats)
	}
	return c
}

func (s *collector) recordSpool(id, rows int, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.spoolRows[id] = rows
	s.spoolTimes[id] = d
	s.spoolRuns[id]++
}

// recordSpoolCached notes a spool served from the cross-batch result cache:
// the rows are available (SpoolRows) but the plan was never run (no
// SpoolRuns entry); d is the lookup time.
func (s *collector) recordSpoolCached(id, rows int, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.spoolRows[id] = rows
	s.spoolTimes[id] = d
	s.spoolCached[id] = true
}

func (s *collector) recordSpoolHit(id int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.spoolHits[id]++
}

// recordColSelect counts one predicate compiled to selection kernels.
func (s *collector) recordColSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.colSelects++
}

// recordColHash counts one column-at-a-time hash-key extraction pass.
func (s *collector) recordColHash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.colHashes++
}

func (s *collector) recordStmt(i int, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stmtTimes[i] = d
}

// recordMorsels notes one intra-op parallel pass of a plan node: how many
// morsels it dispatched and the worker degree it achieved.
func (s *collector) recordMorsels(p *opt.Plan, morsels, degree int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.morsels += morsels
	if degree > 1 {
		s.parallelOps++
	}
	if s.nodes != nil {
		ns, ok := s.nodes[p]
		if !ok {
			ns = &NodeStats{}
			s.nodes[p] = ns
		}
		if degree > ns.Par {
			ns.Par = degree
		}
	}
}

// recordNode accumulates one execution of a plan node (Analyze mode only).
func (s *collector) recordNode(p *opt.Plan, rows int, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ns, ok := s.nodes[p]
	if !ok {
		ns = &NodeStats{}
		s.nodes[p] = ns
	}
	ns.Rows += rows
	ns.Time += d
	ns.Execs++
}

// snapshot freezes the collector into a plain Stats value. Sequential
// statements materialize spools lazily inside the statement, so their spool
// time is already part of stmtTimes and is not added to BusyTime twice.
func (s *collector) snapshot(wall time.Duration) *Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := &Stats{
		SpoolRows:      s.spoolRows,
		SpoolTimes:     s.spoolTimes,
		SpoolRuns:      s.spoolRuns,
		SpoolHits:      s.spoolHits,
		SpoolCached:    s.spoolCached,
		StmtTimes:      s.stmtTimes,
		Workers:        s.workers,
		Waves:          s.waves,
		Sequential:     s.sequential,
		FallbackReason: s.fallback,
		Morsels:        s.morsels,
		ParallelOps:    s.parallelOps,
		ColSelections:  s.colSelects,
		ColHashPasses:  s.colHashes,
		WallTime:       wall,
	}
	if !s.sequential {
		for _, d := range s.spoolTimes {
			out.BusyTime += d
		}
	}
	for _, d := range s.stmtTimes {
		out.BusyTime += d
	}
	if s.nodes != nil {
		out.Nodes = make(map[*opt.Plan]NodeStats, len(s.nodes))
		for p, ns := range s.nodes {
			out.Nodes[p] = *ns
		}
	}
	return out
}
