package exec

import (
	"sync"
	"time"
)

// Stats reports what one batch execution did. All per-spool maps are keyed
// by CSE id. A Stats value is safe for concurrent updates during execution;
// after Run returns it is plain data.
type Stats struct {
	mu sync.Mutex

	// SpoolRows is the number of rows materialized into each spool's work
	// table; every CSE is computed exactly once per batch.
	SpoolRows map[int]int

	// SpoolTimes is the wall-clock time spent materializing each spool.
	SpoolTimes map[int]time.Duration

	// SpoolRuns counts how many times each spool's plan was actually
	// executed; the scheduler guarantees 1 per spool.
	SpoolRuns map[int]int

	// StmtTimes is the wall-clock execution time of each statement (spool
	// materialization excluded when it happened in the spool phase).
	StmtTimes []time.Duration

	// Workers is the worker-pool size the batch ran with (1 = sequential).
	Workers int

	// Waves is the topological spool schedule: each inner slice is one wave
	// of spools materialized concurrently. Empty in sequential mode.
	Waves [][]int

	// Sequential records that the batch ran on the sequential path, and
	// FallbackReason says why when that was not requested explicitly.
	Sequential     bool
	FallbackReason string

	// WallTime is the total batch execution time; BusyTime is the summed
	// spool and statement work time across workers.
	WallTime time.Duration
	BusyTime time.Duration
}

func newStats(nStatements, workers int) *Stats {
	return &Stats{
		SpoolRows:  make(map[int]int),
		SpoolTimes: make(map[int]time.Duration),
		SpoolRuns:  make(map[int]int),
		StmtTimes:  make([]time.Duration, nStatements),
		Workers:    workers,
	}
}

func (s *Stats) recordSpool(id, rows int, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.SpoolRows[id] = rows
	s.SpoolTimes[id] = d
	s.SpoolRuns[id]++
}

func (s *Stats) recordStmt(i int, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.StmtTimes[i] = d
}

// finish computes the aggregate timing figures. Sequential statements
// materialize spools lazily inside the statement, so their spool time is
// already part of StmtTimes and is not added twice.
func (s *Stats) finish(wall time.Duration) {
	s.WallTime = wall
	var busy time.Duration
	if !s.Sequential {
		for _, d := range s.SpoolTimes {
			busy += d
		}
	}
	for _, d := range s.StmtTimes {
		busy += d
	}
	s.BusyTime = busy
}

// Utilization is the fraction of available worker time spent doing spool or
// statement work: BusyTime / (WallTime × Workers). Sequential runs are ~1;
// a parallel run limited by one long chain approaches 1/Workers.
func (s *Stats) Utilization() float64 {
	if s.WallTime <= 0 || s.Workers <= 0 {
		return 0
	}
	return s.BusyTime.Seconds() / (s.WallTime.Seconds() * float64(s.Workers))
}
