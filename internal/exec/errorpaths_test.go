package exec_test

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/csedb"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/sqltypes"
)

// mediumDB builds emp/dept with enough rows that morsel chunking, spool
// sharing, and cancellation mid-execution are all meaningful.
func mediumDB(t testing.TB) *csedb.DB {
	t.Helper()
	s := core.DefaultSettings()
	db := csedb.Open(csedb.Options{CSE: &s})
	i, f, str := sqltypes.KindInt, sqltypes.KindFloat, sqltypes.KindString
	if err := db.CreateTable("emp", []catalog.Column{
		{Name: "id", Type: i}, {Name: "dept", Type: str},
		{Name: "salary", Type: f}, {Name: "boss", Type: i},
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("dept", []catalog.Column{
		{Name: "name", Type: str}, {Name: "budget", Type: f},
	}); err != nil {
		t.Fatal(err)
	}
	names := []string{"eng", "sales", "hr", "ops", "legal", "fin"}
	var emps []csedb.Row
	for id := 0; id < 5000; id++ {
		emps = append(emps, csedb.Row{
			sqltypes.NewInt(int64(id)),
			sqltypes.NewString(names[id%len(names)]),
			sqltypes.NewFloat(float64(50 + id%150)),
			sqltypes.NewInt(int64(id % 97)),
		})
	}
	if err := db.Insert("emp", emps); err != nil {
		t.Fatal(err)
	}
	var depts []csedb.Row
	for j, n := range names {
		depts = append(depts, csedb.Row{sqltypes.NewString(n), sqltypes.NewFloat(float64(100 * (j + 1)))})
	}
	if err := db.Insert("dept", depts); err != nil {
		t.Fatal(err)
	}
	return db
}

// settleGoroutines waits for the goroutine count to drop back to the
// baseline (plus slack) and fails if it never does — the leak check for
// error paths that tear down worker pools.
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	const slack = 8
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+slack {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d goroutines, baseline %d (+%d slack)", n, baseline, slack)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancellationMidMorsel cancels batches at a sweep of delays while they
// execute with chunk size 1 (maximal morsel interleave) on the parallel
// executor. Every run must either finish cleanly or return the context
// error — never hang, panic, or leak the worker pool.
func TestCancellationMidMorsel(t *testing.T) {
	db := mediumDB(t)
	db.SetExecChunkSize(1)
	sql := `
select dept, sum(salary) as s, count(*) as c from emp, dept where dept = name and salary > 60 group by dept;
select dept, max(salary) as m from emp, dept where dept = name and salary > 60 group by dept;`

	baseline := runtime.NumGoroutine()
	delays := []time.Duration{0, 50 * time.Microsecond, 200 * time.Microsecond, time.Millisecond, 5 * time.Millisecond}
	var cancelled, completed int
	for round := 0; round < 4; round++ {
		for _, d := range delays {
			ctx, cancel := context.WithCancel(context.Background())
			if d == 0 {
				cancel()
			} else {
				time.AfterFunc(d, cancel)
			}
			res, err := db.RunContext(ctx, sql)
			cancel()
			switch {
			case err != nil:
				cancelled++
				if !strings.Contains(err.Error(), "context canceled") {
					t.Fatalf("delay %v: unexpected error kind: %v", d, err)
				}
			default:
				completed++
				if len(res.Statements) != 2 {
					t.Fatalf("delay %v: completed run returned %d statements", d, len(res.Statements))
				}
			}
		}
	}
	if cancelled == 0 {
		t.Log("warning: no run was actually cancelled mid-flight (machine too fast); coverage reduced")
	}
	settleGoroutines(t, baseline)
}

// TestEmptyBuildSideAtChunk1 drives a hash join whose build side is empty
// (no dept has budget > 5000) through chunk size 1, sequential and parallel:
// the join must yield zero rows without error — the executor short-circuits
// the probe side when the build side produced nothing.
func TestEmptyBuildSideAtChunk1(t *testing.T) {
	db := mediumDB(t)
	for _, par := range []int{1, 0} {
		for _, chunk := range []int{1, 0} {
			db.SetExecParallelism(par)
			db.SetExecChunkSize(chunk)
			res, err := db.Run(`select name, count(salary) as c from emp, dept where dept = name and budget > 5000 group by name`)
			if err != nil {
				t.Fatalf("par=%d chunk=%d: %v", par, chunk, err)
			}
			if n := len(res.Statements[0].Rows); n != 0 {
				t.Fatalf("par=%d chunk=%d: empty build side produced %d rows", par, chunk, n)
			}
		}
	}
}

// TestConsumerErrorAfterSpoolMaterialization runs a batch whose first two
// statements share a spool and whose third errors at runtime (multi-row
// scalar subquery). The error must surface after the spool phase has already
// materialized work, abort the batch, and leave no goroutines behind.
func TestConsumerErrorAfterSpoolMaterialization(t *testing.T) {
	db := mediumDB(t)
	shared := `
select dept, sum(salary) as s from emp, dept where dept = name and salary > 60 group by dept;
select dept, count(salary) as c from emp, dept where dept = name and salary > 60 group by dept;`

	// Establish that this shape does share a spool on this database, so the
	// error batch below really does error after spool materialization.
	ok, err := db.Run(shared)
	if err != nil {
		t.Fatal(err)
	}
	if len(ok.Stats.UsedCSEs) == 0 {
		t.Skip("optimizer chose not to share on this input; error-after-spool path not reachable")
	}

	failing := shared + `
select name from dept where budget > (select salary from emp);`
	baseline := runtime.NumGoroutine()
	for _, par := range []int{0, 1, 3} {
		for _, chunk := range []int{1, 0} {
			db.SetExecParallelism(par)
			db.SetExecChunkSize(chunk)
			_, err := db.Run(failing)
			if err == nil || !strings.Contains(err.Error(), "scalar subquery returned") {
				t.Fatalf("par=%d chunk=%d: want scalar-subquery error, got %v", par, chunk, err)
			}
		}
	}
	settleGoroutines(t, baseline)
}
