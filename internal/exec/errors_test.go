package exec

import (
	"strings"
	"testing"

	"repro/internal/logical"
	"repro/internal/opt"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

func bareContext() *Context {
	return &Context{
		Store:         storage.NewStore(),
		Md:            logical.NewMetadata(),
		CSEs:          map[int]*opt.CSEPlan{},
		spools:        map[int][]sqltypes.Row{},
		materializing: map[int]bool{},
		subqueryVals:  map[int]sqltypes.Datum{},
		SpoolRows:     map[int]int{},
	}
}

func TestSpoolErrors(t *testing.T) {
	c := bareContext()
	if _, err := c.spool(7); err == nil || !strings.Contains(err.Error(), "no plan for CSE") {
		t.Errorf("missing CSE error = %v", err)
	}
	// Cyclic dependency: a CSE whose plan scans itself.
	self := &opt.Plan{Op: opt.PSpoolScan, SpoolID: 1}
	c.CSEs[1] = &opt.CSEPlan{ID: 1, Plan: self}
	if _, err := c.spool(1); err == nil || !strings.Contains(err.Error(), "cyclic") {
		t.Errorf("cyclic spool error = %v", err)
	}
}

func TestRunRejectsNonRootStatements(t *testing.T) {
	res := &opt.Result{
		Root: &opt.Plan{Op: opt.PSeq, Children: []*opt.Plan{{Op: opt.PScan}}},
		CSEs: map[int]*opt.CSEPlan{},
	}
	if _, err := Run(res, logical.NewMetadata(), storage.NewStore()); err == nil {
		t.Error("non-Output statement plan must be rejected")
	}
}

func TestExecUnknownOp(t *testing.T) {
	c := bareContext()
	if _, err := c.exec(&opt.Plan{Op: opt.PhysOp(200)}); err == nil {
		t.Error("unknown physical op must error")
	}
}
