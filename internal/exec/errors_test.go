package exec

import (
	"context"
	"strings"
	"testing"

	"repro/internal/logical"
	"repro/internal/opt"
	"repro/internal/storage"
)

func bareContext(cses map[int]*opt.CSEPlan) *Context {
	res := &opt.Result{Root: &opt.Plan{Op: opt.PRoot}, CSEs: cses}
	return newContext(context.Background(), res, logical.NewMetadata(), storage.NewStore(), newCollector(1, 1, false), Options{Parallelism: 1})
}

func TestSpoolErrors(t *testing.T) {
	// Cyclic dependency: a CSE whose plan scans itself.
	self := &opt.Plan{Op: opt.PSpoolScan, SpoolID: 1}
	c := bareContext(map[int]*opt.CSEPlan{1: {ID: 1, Plan: self}})
	if _, err := c.spool(7); err == nil || !strings.Contains(err.Error(), "no plan for CSE") {
		t.Errorf("missing CSE error = %v", err)
	}
	if _, err := c.spool(1); err == nil || !strings.Contains(err.Error(), "cyclic") {
		t.Errorf("cyclic spool error = %v", err)
	}
}

func TestParallelRunRejectsCyclicSpools(t *testing.T) {
	res := &opt.Result{
		Root: &opt.Plan{Op: opt.PRoot, Children: []*opt.Plan{{Op: opt.PSpoolScan, SpoolID: 1}}},
		CSEs: map[int]*opt.CSEPlan{
			1: {ID: 1, Plan: &opt.Plan{Op: opt.PSpoolScan, SpoolID: 2}},
			2: {ID: 2, Plan: &opt.Plan{Op: opt.PSpoolScan, SpoolID: 1}},
		},
	}
	_, _, err := RunWithOptions(context.Background(), res, logical.NewMetadata(), storage.NewStore(), Options{Parallelism: 4})
	if err == nil || !strings.Contains(err.Error(), "cyclic") {
		t.Errorf("parallel cyclic spool error = %v", err)
	}
}

func TestRunRejectsNonRootStatements(t *testing.T) {
	res := &opt.Result{
		Root: &opt.Plan{Op: opt.PSeq, Children: []*opt.Plan{{Op: opt.PScan}}},
		CSEs: map[int]*opt.CSEPlan{},
	}
	if _, err := Run(context.Background(), res, logical.NewMetadata(), storage.NewStore()); err == nil {
		t.Error("non-Output statement plan must be rejected")
	}
}

func TestExecUnknownOp(t *testing.T) {
	c := bareContext(map[int]*opt.CSEPlan{})
	if _, err := c.exec(&opt.Plan{Op: opt.PhysOp(200)}); err == nil {
		t.Error("unknown physical op must error")
	}
}
