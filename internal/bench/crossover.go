package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/csedb"
	"repro/internal/core"
	"repro/internal/qgen"
)

// CrossoverRun is one strategy's optimization of one batch size.
type CrossoverRun struct {
	// Strategy is the search the optimizer actually ran after resolving the
	// forced strategy against the candidate count ("lattice" or "greedy").
	Strategy string
	CSEOpts  int
	OptTime  time.Duration
	EstCost  float64
}

// CrossoverPoint compares the forced lattice against the forced greedy
// search on one generated batch.
type CrossoverPoint struct {
	Queries    int
	Candidates int
	BaseCost   float64
	Lattice    CrossoverRun
	Greedy     CrossoverRun
}

// CrossoverSizes returns the batch-size sweep: doubling from 4 up to and
// including maxN.
func CrossoverSizes(maxN int) []int {
	var out []int
	for n := 4; n <= maxN; n *= 2 {
		out = append(out, n)
	}
	if len(out) == 0 || out[len(out)-1] != maxN {
		out = append(out, maxN)
	}
	return out
}

// RunCrossover sweeps qgen batch sizes 4..maxN (doubling), optimizing each
// batch under the forced lattice and the forced greedy search on the same
// loaded database, and records where the greedy search overtakes the
// lattice in optimization time. Batches are only optimized, never executed:
// the experiment measures search cost, and execution would dwarf it at
// large N. Both strategies' plan costs are checked against the no-CSE
// baseline (never above it).
func RunCrossover(cfg Config, maxN int) ([]CrossoverPoint, error) {
	db := csedb.Open(csedb.Options{CacheBudget: -1})
	if err := db.LoadTPCH(cfg.ScaleFactor, cfg.Seed); err != nil {
		return nil, err
	}
	var out []CrossoverPoint
	for _, n := range CrossoverSizes(maxN) {
		b := qgen.New(qgen.Config{Seed: cfg.Seed + int64(n), MinQueries: n, MaxQueries: n, NoCTE: true}).Batch()
		sql := b.SQL()
		p := CrossoverPoint{Queries: n}
		for _, strat := range []core.SearchStrategy{core.SearchLattice, core.SearchGreedy} {
			s := core.DefaultSettings()
			s.SearchStrategy = strat
			db.SetSettings(s)
			run := CrossoverRun{}
			for rep := 0; rep < cfg.reps(); rep++ {
				sw := newStopwatch()
				res, _, err := db.Optimize(sql)
				d := sw.Lap()
				if err != nil {
					return nil, fmt.Errorf("crossover n=%d %s: %w", n, strat, err)
				}
				st := res.Stats
				if st.FinalCost > st.BaseCost*(1+1e-9) {
					return nil, fmt.Errorf("crossover n=%d %s: final cost %.2f above no-CSE baseline %.2f",
						n, strat, st.FinalCost, st.BaseCost)
				}
				if rep == 0 || d < run.OptTime {
					run.OptTime = d
				}
				run.Strategy = st.SearchStrategy
				run.CSEOpts = st.CSEOptimizations
				run.EstCost = st.FinalCost
				p.Candidates = st.Candidates
				p.BaseCost = st.BaseCost
			}
			if strat == core.SearchLattice {
				p.Lattice = run
			} else {
				p.Greedy = run
			}
		}
		out = append(out, p)
	}
	return out, nil
}

// CrossoverQueries returns the smallest batch size at which the greedy
// search beat the lattice in optimization time, or 0 when it never did.
func CrossoverQueries(points []CrossoverPoint) int {
	for _, p := range points {
		if p.Greedy.OptTime < p.Lattice.OptTime {
			return p.Queries
		}
	}
	return 0
}

// FormatCrossover renders the sweep with the crossover point called out.
func FormatCrossover(points []CrossoverPoint) string {
	var sb strings.Builder
	sb.WriteString("Lattice vs greedy MQO search (optimization only, min over reps)\n")
	sb.WriteString("  queries | cands | lattice opts/time      | greedy opts/time       | cost lattice/greedy\n")
	for _, p := range points {
		fmt.Fprintf(&sb, "  %7d | %5d | %4d  %12.4fs | %4d  %12.4fs | %.0f / %.0f\n",
			p.Queries, p.Candidates,
			p.Lattice.CSEOpts, p.Lattice.OptTime.Seconds(),
			p.Greedy.CSEOpts, p.Greedy.OptTime.Seconds(),
			p.Lattice.EstCost, p.Greedy.EstCost)
	}
	if n := CrossoverQueries(points); n > 0 {
		fmt.Fprintf(&sb, "  greedy overtakes the lattice at %d queries\n", n)
	} else {
		sb.WriteString("  greedy never overtook the lattice in this sweep\n")
	}
	return sb.String()
}

// CSVCrossover renders the sweep as CSV for plotting.
func CSVCrossover(points []CrossoverPoint) string {
	var sb strings.Builder
	sb.WriteString("queries,candidates,base_cost,lattice_strategy,lattice_opts,lattice_opt_s,lattice_cost,greedy_strategy,greedy_opts,greedy_opt_s,greedy_cost\n")
	for _, p := range points {
		fmt.Fprintf(&sb, "%d,%d,%.2f,%s,%d,%.6f,%.2f,%s,%d,%.6f,%.2f\n",
			p.Queries, p.Candidates, p.BaseCost,
			p.Lattice.Strategy, p.Lattice.CSEOpts, p.Lattice.OptTime.Seconds(), p.Lattice.EstCost,
			p.Greedy.Strategy, p.Greedy.CSEOpts, p.Greedy.OptTime.Seconds(), p.Greedy.EstCost)
	}
	return sb.String()
}

// CrossoverJSONObjects renders the sweep for the JSON report.
func CrossoverJSONObjects(points []CrossoverPoint) []map[string]any {
	runObj := func(r CrossoverRun) map[string]any {
		return map[string]any{
			"strategy": r.Strategy,
			"cse_opts": r.CSEOpts,
			"opt_s":    r.OptTime.Seconds(),
			"est_cost": r.EstCost,
		}
	}
	var out []map[string]any
	for _, p := range points {
		out = append(out, map[string]any{
			"queries":    p.Queries,
			"candidates": p.Candidates,
			"base_cost":  p.BaseCost,
			"lattice":    runObj(p.Lattice),
			"greedy":     runObj(p.Greedy),
		})
	}
	return out
}
