// Package bench defines the workloads and measurement harness that
// regenerate every table and figure of the paper's evaluation (§6). It is
// shared by the csebench command and the repository's testing.B benchmarks.
package bench

import (
	"fmt"
	"strings"
)

// Example1Q1, Q2, Q3 are the paper's Example 1 batch (reconstructed per the
// rewrites shown in §6.1: the queries select and filter on c_nationkey and
// c_mktsegment; Q3 additionally joins nation and groups by n_regionkey).
const (
	Example1Q1 = `
select c_nationkey, c_mktsegment, sum(l_extendedprice) as le, sum(l_quantity) as lq
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and o_orderdate < '1996-07-01' and c_nationkey > 0 and c_nationkey < 20
group by c_nationkey, c_mktsegment`

	Example1Q2 = `
select c_nationkey, sum(l_extendedprice) as le, sum(l_quantity) as lq
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and o_orderdate < '1996-07-01' and c_nationkey > 5 and c_nationkey < 25
group by c_nationkey`

	Example1Q3 = `
select n_regionkey, sum(l_extendedprice) as le, sum(l_quantity) as lq
from customer, orders, lineitem, nation
where c_custkey = o_custkey and o_orderkey = l_orderkey and c_nationkey = n_nationkey
  and o_orderdate < '1996-07-01' and c_nationkey > 2 and c_nationkey < 24
group by n_regionkey`

	// Q4 is §6.2's additional query over part⋈orders⋈lineitem (run verbatim;
	// the schema carries p_availqty on part for this purpose).
	Q4 = `
select p_type, sum(p_availqty) as qty
from part, orders, lineitem
where p_partkey = l_partkey and o_orderkey = l_orderkey
  and o_orderdate < '1996-07-01'
group by p_type`

	// Q8 is §6.3's nested query (TPC-H Q11-like): the main block and the
	// HAVING scalar subquery both aggregate over customer⋈orders⋈lineitem.
	Q8 = `
select c_nationkey, n_name, sum(l_discount) as totaldisc
from customer, orders, lineitem, nation
where c_custkey = o_custkey and o_orderkey = l_orderkey and c_nationkey = n_nationkey
group by c_nationkey, n_name
having sum(l_discount) > (
  select sum(l_discount) / 25
  from customer, orders, lineitem
  where c_custkey = o_custkey and o_orderkey = l_orderkey)
order by totaldisc desc`
)

// Table1SQL is the Example 1 batch.
func Table1SQL() string {
	return join(Example1Q1, Example1Q2, Example1Q3)
}

// Table2SQL adds Q4 (§6.2, stacked CSEs).
func Table2SQL() string {
	return join(Example1Q1, Example1Q2, Example1Q3, Q4)
}

// Table3SQL is the nested query (§6.3).
func Table3SQL() string { return Q8 }

// Table4SQL is §6.5's complex-join batch: two queries each joining all
// eight TPC-H tables, aggregating by region, with different local
// predicates.
func Table4SQL() string {
	q := func(date string, size int, nkLo, nkHi int) string {
		return fmt.Sprintf(`
select r_name, sum(l_extendedprice) as rev, sum(ps_supplycost) as cost
from region, nation, customer, orders, lineitem, supplier, part, partsupp
where r_regionkey = n_regionkey and n_nationkey = c_nationkey
  and c_custkey = o_custkey and o_orderkey = l_orderkey
  and l_suppkey = s_suppkey and l_partkey = p_partkey
  and ps_partkey = l_partkey and ps_suppkey = l_suppkey
  and o_orderdate < '%s' and p_size < %d
  and c_nationkey > %d and c_nationkey < %d
group by r_name`, date, size, nkLo, nkHi)
	}
	return join(
		q("1996-07-01", 30, 0, 20),
		q("1996-07-01", 40, 3, 24),
	)
}

// Figure8SQL builds a batch of n similar queries for the scale-up
// experiment: each joins customer⋈orders⋈lineitem with varying c_nationkey
// ranges and grouping columns; every third query joins nation, every third
// also region — matching §6.5's description.
func Figure8SQL(n int) string {
	qs := make([]string, n)
	for i := 0; i < n; i++ {
		lo := i % 5
		hi := 25 - (i % 4)
		switch i % 3 {
		case 0:
			qs[i] = fmt.Sprintf(`
select c_nationkey, c_mktsegment, sum(l_extendedprice) as le, sum(l_quantity) as lq
from customer, orders, lineitem
where c_custkey = o_custkey and o_orderkey = l_orderkey
  and o_orderdate < '1996-07-01' and c_nationkey > %d and c_nationkey < %d
group by c_nationkey, c_mktsegment`, lo, hi)
		case 1:
			qs[i] = fmt.Sprintf(`
select n_name, sum(l_extendedprice) as le, sum(l_quantity) as lq
from customer, orders, lineitem, nation
where c_custkey = o_custkey and o_orderkey = l_orderkey and c_nationkey = n_nationkey
  and o_orderdate < '1996-07-01' and c_nationkey > %d and c_nationkey < %d
group by n_name`, lo, hi)
		default:
			qs[i] = fmt.Sprintf(`
select r_name, sum(l_extendedprice) as le, sum(l_quantity) as lq
from customer, orders, lineitem, nation, region
where c_custkey = o_custkey and o_orderkey = l_orderkey and c_nationkey = n_nationkey
  and n_regionkey = r_regionkey
  and o_orderdate < '1996-07-01' and c_nationkey > %d and c_nationkey < %d
group by r_name`, lo, hi)
		}
	}
	return join(qs...)
}

// ViewDDL returns CREATE MATERIALIZED VIEW statements whose definitions are
// the Example 1 queries (§6.4's setup).
func ViewDDL() string {
	return join(
		"create materialized view mview1 as "+Example1Q1,
		"create materialized view mview2 as "+Example1Q2,
		"create materialized view mview3 as "+Example1Q3,
	)
}

// NoSharingSQL is a batch of unrelated queries with no common
// subexpressions, used to measure detection overhead (§6's "could not
// reliably measure it" claim).
func NoSharingSQL() string {
	return join(
		`select c_nationkey, count(*) as n from customer group by c_nationkey`,
		`select o_orderpriority, sum(o_totalprice) as v from orders where o_orderdate < '1995-01-01' group by o_orderpriority`,
		`select p_brand, max(p_retailprice) as p from part group by p_brand`,
		`select s_nationkey, avg(s_acctbal) as b from supplier group by s_nationkey`,
	)
}

func join(qs ...string) string {
	return strings.Join(qs, ";\n") + ";"
}
