package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/csedb"
)

// scanSpeedQueries are the row-vs-column comparison workload: statements
// dominated by scanning, filtering, and hash aggregation over lineitem (the
// largest table), where the columnar plane's selection-vector kernels and
// typed hash passes should pay off the most. Join-shaped statements are
// included so the comparison also covers typed build/probe hashing.
var scanSpeedQueries = []struct {
	Name string
	SQL  string
}{
	{
		// Pure scan+filter with a narrow projection: the best case for
		// selection kernels plus late materialization.
		Name: "scan-filter",
		SQL: `select l_orderkey, l_extendedprice
from lineitem
where l_quantity < 24 and l_discount < 0.05 and l_shipdate < '1997-01-01'`,
	},
	{
		// Highly selective conjunction: kernels skim the column, the row
		// path evaluates the full predicate tree per row.
		Name: "scan-selective",
		SQL: `select l_orderkey, l_quantity, l_tax
from lineitem
where l_quantity > 49 and l_returnflag = 'R' and l_shipmode = 'AIR'`,
	},
	{
		// TPC-H Q1-shaped: filter + wide hash aggregation, exercising
		// column-at-a-time group-key hashing.
		Name: "filter-agg",
		SQL: `select l_returnflag, l_shipmode, sum(l_quantity) as sq, sum(l_extendedprice) as se,
  avg(l_discount) as ad, count(*) as n
from lineitem
where l_shipdate < '1998-09-02'
group by l_returnflag, l_shipmode`,
	},
	{
		// Unfiltered aggregation straight over the table: the hash-agg input
		// is the base table itself, so group keys are hashed
		// column-at-a-time (a filtered input is a fresh intermediate row
		// set with no columnar view).
		Name: "agg-group",
		SQL: `select l_returnflag, l_shipmode, sum(l_extendedprice) as se, count(*) as n
from lineitem
group by l_returnflag, l_shipmode`,
	},
	{
		// Filter + join + aggregation: typed hashing on both join sides.
		Name: "filter-join-agg",
		SQL: `select o_orderpriority, sum(l_extendedprice) as rev
from orders, lineitem
where o_orderkey = l_orderkey and l_quantity < 30 and o_orderdate < '1996-07-01'
group by o_orderpriority`,
	},
}

// ScanSpeedPoint is one statement of the row-vs-column comparison: minimum
// execution time over the reps under each plane, plus evidence the columnar
// plane actually engaged (kernel and hash-pass counts from the first
// columnar rep).
type ScanSpeedPoint struct {
	Name          string
	ColExec       time.Duration
	RowExec       time.Duration
	Rows          int
	ColSelections int
	ColHashPasses int
}

// Speedup is RowExec / ColExec (> 1 means the columnar plane won).
func (p *ScanSpeedPoint) Speedup() float64 { return speedup(p.RowExec, p.ColExec) }

// RunScanSpeed measures every scan-speed statement under the columnar plane
// and the row-at-a-time reference path on one database, taking the minimum
// execution time over cfg.Reps per plane. Both planes must return the same
// per-statement row counts; a divergence is an error (the difftest oracle
// pins full byte-identity — this is the harness's cheaper cross-check). The
// result cache stays off so warm reps re-execute rather than replay spools.
func RunScanSpeed(cfg Config) ([]ScanSpeedPoint, error) {
	s := WithCSE.Settings()
	db := csedb.Open(csedb.Options{CSE: &s, ExecParallelism: cfg.Parallelism, CacheBudget: -1})
	if err := db.LoadTPCH(cfg.ScaleFactor, cfg.Seed); err != nil {
		return nil, err
	}
	measure := func(sql string, colPlane bool) (time.Duration, int, *ScanSpeedPoint, error) {
		db.SetColPlane(colPlane)
		var best time.Duration
		var rows int
		probe := &ScanSpeedPoint{}
		for rep := 0; rep < cfg.reps(); rep++ {
			res, err := db.Run(sql)
			if err != nil {
				return 0, 0, nil, err
			}
			if rep == 0 {
				rows = len(res.Statements[0].Rows)
				if es := res.ExecStats; es != nil {
					probe.ColSelections = es.ColSelections
					probe.ColHashPasses = es.ColHashPasses
				}
			}
			if best == 0 || res.ExecTime < best {
				best = res.ExecTime
			}
		}
		return best, rows, probe, nil
	}
	out := make([]ScanSpeedPoint, 0, len(scanSpeedQueries))
	for _, q := range scanSpeedQueries {
		colExec, colRows, probe, err := measure(q.SQL, true)
		if err != nil {
			return nil, fmt.Errorf("scanspeed %s (columnar): %w", q.Name, err)
		}
		rowExec, rowRows, rowProbe, err := measure(q.SQL, false)
		if err != nil {
			return nil, fmt.Errorf("scanspeed %s (row): %w", q.Name, err)
		}
		if colRows != rowRows {
			return nil, fmt.Errorf("scanspeed %s: columnar plane returned %d rows, row plane %d",
				q.Name, colRows, rowRows)
		}
		if rowProbe.ColSelections != 0 || rowProbe.ColHashPasses != 0 {
			return nil, fmt.Errorf("scanspeed %s: row-plane run reported columnar work (%d selections, %d hash passes)",
				q.Name, rowProbe.ColSelections, rowProbe.ColHashPasses)
		}
		out = append(out, ScanSpeedPoint{
			Name:          q.Name,
			ColExec:       colExec,
			RowExec:       rowExec,
			Rows:          colRows,
			ColSelections: probe.ColSelections,
			ColHashPasses: probe.ColHashPasses,
		})
	}
	db.SetColPlane(true)
	return out, nil
}

// FormatScanSpeed renders the row-vs-column comparison as a table.
func FormatScanSpeed(points []ScanSpeedPoint) string {
	var sb strings.Builder
	sb.WriteString("Scan speed: columnar plane vs row-at-a-time path (min exec time over reps)\n")
	sb.WriteString("  statement        |   row (secs) |   col (secs) | speedup | kernels | hash passes |  rows\n")
	for i := range points {
		p := &points[i]
		fmt.Fprintf(&sb, "  %-16s | %12.4f | %12.4f | %6.2fx | %7d | %11d | %5d\n",
			p.Name, p.RowExec.Seconds(), p.ColExec.Seconds(), p.Speedup(),
			p.ColSelections, p.ColHashPasses, p.Rows)
	}
	return sb.String()
}

// CSVScanSpeed renders the comparison as CSV.
func CSVScanSpeed(points []ScanSpeedPoint) string {
	var sb strings.Builder
	sb.WriteString("statement,row_exec_s,col_exec_s,speedup,col_selections,col_hash_passes,rows\n")
	for i := range points {
		p := &points[i]
		fmt.Fprintf(&sb, "%q,%.6f,%.6f,%.3f,%d,%d,%d\n",
			p.Name, p.RowExec.Seconds(), p.ColExec.Seconds(), p.Speedup(),
			p.ColSelections, p.ColHashPasses, p.Rows)
	}
	return sb.String()
}

// ScanSpeedJSON is the machine-readable form of one comparison point.
type ScanSpeedJSON struct {
	Name          string  `json:"name"`
	RowExecSecs   float64 `json:"row_exec_s"`
	ColExecSecs   float64 `json:"col_exec_s"`
	Speedup       float64 `json:"speedup"`
	ColSelections int     `json:"col_selections"`
	ColHashPasses int     `json:"col_hash_passes"`
	Rows          int     `json:"rows"`
}

// ScanSpeedJSONObjects converts the comparison for serialization.
func ScanSpeedJSONObjects(points []ScanSpeedPoint) []ScanSpeedJSON {
	out := make([]ScanSpeedJSON, len(points))
	for i := range points {
		p := &points[i]
		out[i] = ScanSpeedJSON{
			Name:          p.Name,
			RowExecSecs:   p.RowExec.Seconds(),
			ColExecSecs:   p.ColExec.Seconds(),
			Speedup:       p.Speedup(),
			ColSelections: p.ColSelections,
			ColHashPasses: p.ColHashPasses,
			Rows:          p.Rows,
		}
	}
	return out
}
