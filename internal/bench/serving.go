package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/csedb"
	"repro/internal/qgen"
	"repro/internal/server"
)

// ServingOptions shapes the synthetic many-client load (csebench -exp
// serving): Clients concurrent sessions each issue RequestsPerClient
// single-statement requests drawn round-robin from Shapes distinct query
// shapes, against a coalescing and then a non-coalescing server over
// identical fresh databases.
type ServingOptions struct {
	Clients           int           // concurrent client sessions (default 12)
	RequestsPerClient int           // requests per client (default 40)
	Shapes            int           // distinct query shapes in the workload (default 6)
	Window            time.Duration // coalescing window (default server.DefaultWindow)
	MaxBatch          int           // count trigger (default server.DefaultMaxBatch)
}

func (o ServingOptions) withDefaults() ServingOptions {
	if o.Clients <= 0 {
		o.Clients = 12
	}
	if o.RequestsPerClient <= 0 {
		o.RequestsPerClient = 40
	}
	if o.Shapes <= 0 {
		o.Shapes = 6
	}
	return o
}

// ServingPoint is one serving-mode measurement: end-to-end throughput and
// client-observed latency percentiles, plus the server counters that prove
// which machinery ran.
type ServingPoint struct {
	Mode              string // "coalesce" | "nocoalesce"
	Clients           int
	Requests          int // completed requests
	Errors            int
	Wall              time.Duration
	Throughput        float64 // requests per second
	P50, P95, P99     time.Duration
	Max               time.Duration
	Batches           int64 // server batches executed
	CoalescedBatches  int64 // batches holding > 1 request
	CoalescedRequests int64 // requests that rode a coalesced batch
	PlanCacheHits     int64
	UsedCSEs          int64 // CSEs exploited across all server batches
}

// RunServing drives the many-client load against coalescing on and off and
// returns one point per mode (coalescing off first — the baseline). Each
// mode gets a fresh database so caches never leak across modes; the plan
// cache is on in both, so the only delta between the points is the window.
func RunServing(cfg Config, opts ServingOptions) ([]ServingPoint, error) {
	opts = opts.withDefaults()

	// One qgen batch supplies the similar-but-distinct shapes: the CSE
	// optimizer's target workload, arriving as separate requests.
	b := qgen.New(qgen.Config{Seed: cfg.Seed, MinQueries: opts.Shapes, MaxQueries: opts.Shapes}).Batch()
	shapes := make([]string, len(b.Queries))
	for i, q := range b.Queries {
		shapes[i] = q.SQL(b.Schema, i)
	}

	var points []ServingPoint
	for _, mode := range []string{"nocoalesce", "coalesce"} {
		pt, err := runServingMode(cfg, opts, mode, shapes)
		if err != nil {
			return nil, fmt.Errorf("mode %s: %w", mode, err)
		}
		points = append(points, pt)
	}
	return points, nil
}

func runServingMode(cfg Config, opts ServingOptions, mode string, shapes []string) (ServingPoint, error) {
	db := csedb.Open(csedb.Options{})
	if err := db.LoadTPCH(cfg.ScaleFactor, cfg.Seed); err != nil {
		return ServingPoint{}, err
	}
	srv := server.New(db, server.Options{
		Window:     opts.Window,
		MaxBatch:   opts.MaxBatch,
		NoCoalesce: mode == "nocoalesce",
	})
	defer srv.Close()

	// Warm-up pass (one request per shape) so both modes measure steady
	// state: plans cached, columnar shadows built.
	warm, err := srv.NewSession()
	if err != nil {
		return ServingPoint{}, err
	}
	for _, s := range shapes {
		if _, err := warm.Query(context.Background(), s); err != nil {
			return ServingPoint{}, err
		}
	}

	total := opts.Clients * opts.RequestsPerClient
	latencies := make([]time.Duration, total)
	errCount := make([]int, opts.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sess, err := srv.NewSession()
			if err != nil {
				errCount[c] = opts.RequestsPerClient
				return
			}
			defer sess.Close()
			for i := 0; i < opts.RequestsPerClient; i++ {
				sql := shapes[(c+i)%len(shapes)]
				t0 := time.Now()
				_, err := sess.Query(context.Background(), sql)
				if err != nil {
					errCount[c]++
					continue
				}
				latencies[c*opts.RequestsPerClient+i] = time.Since(t0)
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	var lats []time.Duration
	for _, l := range latencies {
		if l > 0 {
			lats = append(lats, l)
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	errs := 0
	for _, e := range errCount {
		errs += e
	}

	snap := db.Metrics().Snapshot()
	pt := ServingPoint{
		Mode:              mode,
		Clients:           opts.Clients,
		Requests:          len(lats),
		Errors:            errs,
		Wall:              wall,
		Batches:           int64(snap["server_batches_total"]),
		CoalescedBatches:  int64(snap["server_coalesced_batches_total"]),
		CoalescedRequests: int64(snap["server_coalesced_queries_total"]),
		PlanCacheHits:     int64(snap["plancache_hits_total"]),
		UsedCSEs:          int64(snap["cse_used_total"]),
	}
	if wall > 0 {
		pt.Throughput = float64(len(lats)) / wall.Seconds()
	}
	if n := len(lats); n > 0 {
		pt.P50 = lats[n/2]
		pt.P95 = lats[n*95/100]
		pt.P99 = lats[n*99/100]
		pt.Max = lats[n-1]
	}
	return pt, nil
}

// FormatServing renders the serving comparison as an aligned text table.
func FormatServing(points []ServingPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-11s %8s %8s %10s %10s %10s %10s %8s %8s %8s\n",
		"mode", "reqs", "errors", "req/s", "p50", "p95", "p99", "batches", "coalsc", "pchits")
	for _, p := range points {
		fmt.Fprintf(&sb, "%-11s %8d %8d %10.1f %10s %10s %10s %8d %8d %8d\n",
			p.Mode, p.Requests, p.Errors, p.Throughput,
			p.P50.Round(time.Microsecond), p.P95.Round(time.Microsecond), p.P99.Round(time.Microsecond),
			p.Batches, p.CoalescedBatches, p.PlanCacheHits)
	}
	if len(points) == 2 && points[0].Throughput > 0 {
		fmt.Fprintf(&sb, "\ncoalescing throughput speedup: %.2fx\n", points[1].Throughput/points[0].Throughput)
	}
	return sb.String()
}

// ServingJSON is the machine-readable serving point (durations in seconds).
type ServingJSON struct {
	Mode              string  `json:"mode"`
	Clients           int     `json:"clients"`
	Requests          int     `json:"requests"`
	Errors            int     `json:"errors"`
	WallSeconds       float64 `json:"wall_s"`
	Throughput        float64 `json:"throughput_rps"`
	P50Seconds        float64 `json:"p50_s"`
	P95Seconds        float64 `json:"p95_s"`
	P99Seconds        float64 `json:"p99_s"`
	MaxSeconds        float64 `json:"max_s"`
	Batches           int64   `json:"batches"`
	CoalescedBatches  int64   `json:"coalesced_batches"`
	CoalescedRequests int64   `json:"coalesced_requests"`
	PlanCacheHits     int64   `json:"plancache_hits"`
	UsedCSEs          int64   `json:"used_cses"`
}

// ServingJSONObjects converts serving points for serialization.
func ServingJSONObjects(points []ServingPoint) []ServingJSON {
	out := make([]ServingJSON, len(points))
	for i, p := range points {
		out[i] = ServingJSON{
			Mode:              p.Mode,
			Clients:           p.Clients,
			Requests:          p.Requests,
			Errors:            p.Errors,
			WallSeconds:       p.Wall.Seconds(),
			Throughput:        p.Throughput,
			P50Seconds:        p.P50.Seconds(),
			P95Seconds:        p.P95.Seconds(),
			P99Seconds:        p.P99.Seconds(),
			MaxSeconds:        p.Max.Seconds(),
			Batches:           p.Batches,
			CoalescedBatches:  p.CoalescedBatches,
			CoalescedRequests: p.CoalescedRequests,
			PlanCacheHits:     p.PlanCacheHits,
			UsedCSEs:          p.UsedCSEs,
		}
	}
	return out
}
