package bench

import (
	"strings"
	"testing"
)

func TestModeSettings(t *testing.T) {
	if NoCSE.Settings().EnableCSE {
		t.Error("NoCSE must disable CSE")
	}
	s := WithCSE.Settings()
	if !s.EnableCSE || !s.Heuristics {
		t.Error("WithCSE must be the default configuration")
	}
	nh := NoHeuristics.Settings()
	if !nh.EnableCSE || nh.Heuristics {
		t.Error("NoHeuristics keeps CSE on, heuristics off")
	}
	if NoCSE.String() != "No CSE" || WithCSE.String() != "Using CSEs" {
		t.Error("mode names are the paper's column headers")
	}
}

func TestFigure8SQLShape(t *testing.T) {
	for n := 2; n <= 10; n++ {
		sql := Figure8SQL(n)
		if got := strings.Count(sql, "select "); got != n {
			t.Errorf("Figure8SQL(%d) has %d queries", n, got)
		}
		if !strings.Contains(sql, "customer, orders, lineitem") {
			t.Error("queries must share the C⋈O⋈L core")
		}
	}
	// Deterministic.
	if Figure8SQL(5) != Figure8SQL(5) {
		t.Error("workload generation must be deterministic")
	}
}

func TestWorkloadSQLParses(t *testing.T) {
	cfg := Config{ScaleFactor: 0.002, Seed: 1}
	db, err := NewDB(cfg, NoCSE)
	if err != nil {
		t.Fatal(err)
	}
	for name, sql := range map[string]string{
		"table1":    Table1SQL(),
		"table2":    Table2SQL(),
		"table3":    Table3SQL(),
		"table4":    Table4SQL(),
		"figure8":   Figure8SQL(4),
		"nosharing": NoSharingSQL(),
		"viewddl":   ViewDDL(),
	} {
		if _, _, err := db.Optimize(sql); err != nil {
			t.Errorf("%s workload fails to optimize: %v", name, err)
		}
	}
}

func TestRunTableVerifies(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run skipped in -short mode")
	}
	cfg := Config{ScaleFactor: 0.005, Seed: 1}
	tr, err := RunTable(cfg, "smoke", Table1SQL())
	if err != nil {
		t.Fatal(err)
	}
	out := tr.Format()
	for _, want := range []string{"No CSE", "Using CSEs", "Estimated cost", "Execution time"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	if tr.Runs[WithCSE].EstCost >= tr.Runs[NoCSE].EstCost {
		t.Error("CSE run should be estimated cheaper on Table 1")
	}
}

func TestVerifyAgainst(t *testing.T) {
	a := &Measurement{Mode: NoCSE, RowCounts: []int{3, 5}}
	b := &Measurement{Mode: WithCSE, RowCounts: []int{3, 5}}
	if err := VerifyAgainst(a, b); err != nil {
		t.Error(err)
	}
	c := &Measurement{Mode: WithCSE, RowCounts: []int{3, 6}}
	if err := VerifyAgainst(a, c); err == nil {
		t.Error("row-count mismatch must be detected")
	}
	d := &Measurement{Mode: WithCSE, RowCounts: []int{3}}
	if err := VerifyAgainst(a, d); err == nil {
		t.Error("statement-count mismatch must be detected")
	}
}

func TestOverheadRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run skipped in -short mode")
	}
	ov, err := RunOverhead(Config{ScaleFactor: 0.005, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ov.Candidates != 0 {
		t.Errorf("no-sharing batch generated %d candidates", ov.Candidates)
	}
}

func TestViewMaintenanceHarness(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run skipped in -short mode")
	}
	m, err := RunViewMaintenance(Config{ScaleFactor: 0.005, Seed: 1}, WithCSE, 20)
	if err != nil {
		t.Fatal(err)
	}
	if m.Views != 3 {
		t.Errorf("views maintained = %d, want 3", m.Views)
	}
	out := FormatMaintenance(&MaintenanceMeasurement{Mode: NoCSE}, m)
	if !strings.Contains(out, "View maintenance") {
		t.Error("maintenance formatting broken")
	}
}

func TestCSVOutput(t *testing.T) {
	points := []Figure8Point{{Queries: 2, CostNoCSE: 10, CostCSE: 5, CandsCSE: 1, CandsNoPruning: 5}}
	csv := CSVFigure8(points)
	if !strings.HasPrefix(csv, "queries,") || !strings.Contains(csv, "2,10.00,5.00") {
		t.Errorf("CSV output malformed:\n%s", csv)
	}
	tr := &TableRow{Runs: [3]*Measurement{{Mode: NoCSE}, {Mode: WithCSE}, {Mode: NoHeuristics}}}
	if got := tr.CSV(); !strings.Contains(got, "\"Using CSEs\"") {
		t.Errorf("table CSV malformed:\n%s", got)
	}
}
