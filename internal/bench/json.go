package bench

import "encoding/json"

// MeasurementJSON is the machine-readable form of one measurement, with
// durations in seconds.
type MeasurementJSON struct {
	Mode           string             `json:"mode"`
	Candidates     int                `json:"candidates"`
	CSEOpts        int                `json:"cse_opts"`
	OptSeconds     float64            `json:"opt_s"`
	EstCost        float64            `json:"est_cost"`
	ExecSeconds    float64            `json:"exec_s"`
	ExecSeqSecs    float64            `json:"exec_seq_s"`
	WallSeconds    float64            `json:"wall_s"`
	Workers        int                `json:"workers"`
	Utilization    float64            `json:"utilization"`
	BusySeconds    float64            `json:"busy_s"`
	FallbackReason string             `json:"fallback_reason,omitempty"`
	RowCounts      []int              `json:"row_counts"`
	UsedCSEs       []int              `json:"used_cses"`
	Metrics        map[string]float64 `json:"metrics,omitempty"`
}

// JSONObject converts a measurement for serialization.
func (m *Measurement) JSONObject() MeasurementJSON {
	return MeasurementJSON{
		Mode:           m.Mode.String(),
		Candidates:     m.Candidates,
		CSEOpts:        m.CSEOpts,
		OptSeconds:     m.OptTime.Seconds(),
		EstCost:        m.EstCost,
		ExecSeconds:    m.ExecTime.Seconds(),
		ExecSeqSecs:    m.ExecTimeSeq.Seconds(),
		WallSeconds:    m.WallTime.Seconds(),
		Workers:        m.Workers,
		Utilization:    m.Utilization,
		BusySeconds:    m.BusyTime.Seconds(),
		FallbackReason: m.FallbackReason,
		RowCounts:      m.RowCounts,
		UsedCSEs:       m.UsedCSEs,
		Metrics:        m.Metrics,
	}
}

// TableJSON is the machine-readable form of a three-mode comparison.
type TableJSON struct {
	Title string            `json:"title"`
	Runs  []MeasurementJSON `json:"runs"`

	// ParallelSpeedup is exec_seq_s / exec_s of the "Using CSEs" run: > 1
	// means the parallel executor beat sequential execution.
	ParallelSpeedup float64 `json:"parallel_speedup"`
}

// JSONObject converts a table row for serialization.
func (tr *TableRow) JSONObject() TableJSON {
	out := TableJSON{Title: tr.Title}
	for _, m := range tr.Runs {
		if m != nil {
			out.Runs = append(out.Runs, m.JSONObject())
		}
	}
	if m := tr.Runs[WithCSE]; m != nil {
		out.ParallelSpeedup = speedup(m.ExecTimeSeq, m.ExecTime)
	}
	return out
}

// Figure8JSON is one machine-readable scale-up point.
type Figure8JSON struct {
	Queries        int     `json:"queries"`
	CostNoCSE      float64 `json:"est_cost_no_cse"`
	CostCSE        float64 `json:"est_cost_cse"`
	OptNoCSE       float64 `json:"opt_s_no_cse"`
	OptCSE         float64 `json:"opt_s_cse"`
	OptNoPruning   float64 `json:"opt_s_no_pruning"`
	CandsCSE       int     `json:"cands_cse"`
	CandsNoPruning int     `json:"cands_no_pruning"`
}

// Figure8JSONObjects converts the sweep for serialization.
func Figure8JSONObjects(points []Figure8Point) []Figure8JSON {
	out := make([]Figure8JSON, len(points))
	for i, p := range points {
		out[i] = Figure8JSON{
			Queries:        p.Queries,
			CostNoCSE:      p.CostNoCSE,
			CostCSE:        p.CostCSE,
			OptNoCSE:       p.OptNoCSE.Seconds(),
			OptCSE:         p.OptCSE.Seconds(),
			OptNoPruning:   p.OptNoPruning.Seconds(),
			CandsCSE:       p.CandsCSE,
			CandsNoPruning: p.CandsNoPruning,
		}
	}
	return out
}

// RepeatedJSON is the machine-readable form of the repeated-batch (result
// cache) scenario.
type RepeatedJSON struct {
	Candidates    int                `json:"candidates"`
	UsedCSEs      []int              `json:"used_cses"`
	RowCounts     []int              `json:"row_counts"`
	ColdExecSecs  float64            `json:"cold_exec_s"`
	WarmExecSecs  float64            `json:"warm_exec_s"`
	WarmSpeedup   float64            `json:"warm_speedup"`
	SpoolsCached  int                `json:"spools_cached"`
	SpoolsTotal   int                `json:"spools_total"`
	CacheHits     int64              `json:"cache_hits"`
	CacheMisses   int64              `json:"cache_misses"`
	Invalidations int64              `json:"cache_invalidations"`
	CacheBytes    int64              `json:"cache_bytes"`
	Metrics       map[string]float64 `json:"metrics,omitempty"`
}

// JSONObject converts a repeated-batch measurement for serialization.
func (r *RepeatedMeasurement) JSONObject() RepeatedJSON {
	return RepeatedJSON{
		Candidates:    r.Candidates,
		UsedCSEs:      r.UsedCSEs,
		RowCounts:     r.RowCounts,
		ColdExecSecs:  r.ColdExec.Seconds(),
		WarmExecSecs:  r.WarmExec.Seconds(),
		WarmSpeedup:   r.WarmSpeedup(),
		SpoolsCached:  r.SpoolsCached,
		SpoolsTotal:   r.SpoolsTotal,
		CacheHits:     r.Hits,
		CacheMisses:   r.Misses,
		Invalidations: r.Invalidations,
		CacheBytes:    r.CacheBytes,
		Metrics:       r.Metrics,
	}
}

// MarshalReport renders a named set of experiment results as indented JSON.
func MarshalReport(report map[string]any) ([]byte, error) {
	return json.MarshalIndent(report, "", "  ")
}
