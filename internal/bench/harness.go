package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/csedb"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sqltypes"
)

// Mode selects the optimizer configuration, matching the three columns of
// the paper's tables.
type Mode int

// Benchmark modes.
const (
	NoCSE Mode = iota
	WithCSE
	NoHeuristics
)

// String names the mode like the paper's column headers.
func (m Mode) String() string {
	switch m {
	case NoCSE:
		return "No CSE"
	case WithCSE:
		return "Using CSEs"
	case NoHeuristics:
		return "Using CSEs (no heuristics)"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Settings returns the core settings for the mode.
func (m Mode) Settings() core.Settings {
	s := core.DefaultSettings()
	switch m {
	case NoCSE:
		s.EnableCSE = false
	case NoHeuristics:
		s.Heuristics = false
	}
	return s
}

// Config fixes the dataset for a harness run.
type Config struct {
	ScaleFactor float64
	Seed        int64

	// Reps is how many times each batch is re-optimized and re-executed;
	// the minimum time is reported (standard practice for noisy wall-clock
	// measurements). 0 means 3.
	Reps int

	// Parallelism is the executor worker-pool setting for the measured
	// runs: 0 = parallel with GOMAXPROCS workers (the default), 1 =
	// sequential, n > 1 = n workers. The harness always takes an additional
	// sequential measurement for the speedup comparison.
	Parallelism int

	// Tracing records the optimizer decision trace on every measured run
	// (Measurement.Trace). Off by default so timing measurements stay free
	// of trace overhead.
	Tracing bool

	// Search forces the MQO subset-search strategy for every measured run;
	// empty means core.SearchAuto.
	Search core.SearchStrategy
}

// DefaultConfig matches the benchmark defaults.
var DefaultConfig = Config{ScaleFactor: 0.05, Seed: 42}

func (c Config) reps() int {
	if c.Reps <= 0 {
		return 3
	}
	return c.Reps
}

// Measurement is one (mode, batch) run: the quantities the paper's tables
// report, plus the parallel-executor comparison.
type Measurement struct {
	Mode       Mode
	Candidates int
	CSEOpts    int
	OptTime    time.Duration
	EstCost    float64
	ExecTime   time.Duration
	UsedCSEs   []int
	Labels     []string
	RowCounts  []int

	// ExecTimeSeq is the batch execution time on the sequential executor
	// (minimum over reps), measured on the same database; ExecTime is the
	// configured (by default parallel) executor.
	ExecTimeSeq time.Duration

	// Workers and Utilization describe the measured parallel run: pool size
	// and the busy-time fraction of available worker time.
	Workers     int
	Utilization float64

	// BusyTime is the summed spool and statement work time across workers
	// of the first measured run; FallbackReason is non-empty when that run
	// fell back to the sequential executor.
	BusyTime       time.Duration
	FallbackReason string

	// WallTime is the minimum end-to-end wall time of one rep
	// (parse+optimize+execute), measured by the harness itself on the
	// monotonic clock rather than summed from reported phases.
	WallTime time.Duration

	// Metrics is the database's metrics registry snapshot after the
	// measured reps (sequential-comparison reps included).
	Metrics map[string]float64

	// Trace is the first run's optimizer decision trace when cfg.Tracing is
	// on; nil otherwise.
	Trace *obs.Trace
}

// stopwatch measures per-phase elapsed time. time.Now values carry Go's
// monotonic clock reading and subtracting them uses it, so phase durations
// are immune to wall-clock steps (NTP adjustments, suspend); the stopwatch
// only ever stores and subtracts the original readings — it never
// serializes them, which would strip the monotonic part.
type stopwatch struct{ last time.Time }

func newStopwatch() *stopwatch { return &stopwatch{last: time.Now()} }

// Lap returns the monotonic elapsed time since the previous lap (or since
// construction) and starts the next phase.
func (s *stopwatch) Lap() time.Duration {
	now := time.Now()
	d := now.Sub(s.last)
	s.last = now
	return d
}

// NewDB opens a database loaded with the configured TPC-H data under the
// given mode. The cross-batch result cache is disabled: the paper's tables
// report cold-run execution times, and min-over-reps measurement would
// silently turn into cache-hit measurement otherwise. The repeated-batch
// scenario (RunRepeated) measures the cache deliberately.
func NewDB(cfg Config, mode Mode) (*csedb.DB, error) {
	s := mode.Settings()
	db := csedb.Open(csedb.Options{CSE: &s, SearchStrategy: cfg.Search, ExecParallelism: cfg.Parallelism, Tracing: cfg.Tracing, CacheBudget: -1})
	if err := db.LoadTPCH(cfg.ScaleFactor, cfg.Seed); err != nil {
		return nil, err
	}
	return db, nil
}

// RunBatch measures one batch under one mode on a fresh database,
// re-running it cfg.Reps times and reporting the minimum optimization and
// execution times per phase, measured on the monotonic clock. It then
// re-executes the batch on the sequential executor (same reps) to record
// the parallel-vs-sequential comparison, verifying both executors return
// identical per-statement row counts.
func RunBatch(cfg Config, mode Mode, sql string) (*Measurement, error) {
	db, err := NewDB(cfg, mode)
	if err != nil {
		return nil, err
	}
	var m *Measurement
	sw := newStopwatch()
	for rep := 0; rep < cfg.reps(); rep++ {
		sw.Lap()
		res, err := db.Run(sql)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", mode, err)
		}
		wall := sw.Lap()
		if m == nil {
			m = &Measurement{
				Mode:       mode,
				Candidates: res.Stats.Candidates,
				CSEOpts:    res.Stats.CSEOptimizations,
				OptTime:    res.OptimizeTime,
				EstCost:    res.EstimatedCost,
				ExecTime:   res.ExecTime,
				UsedCSEs:   res.Stats.UsedCSEs,
				Labels:     res.Stats.CandidateLabels,
			}
			for _, st := range res.Statements {
				m.RowCounts = append(m.RowCounts, len(st.Rows))
			}
		} else {
			if res.OptimizeTime < m.OptTime {
				m.OptTime = res.OptimizeTime
			}
			if res.ExecTime < m.ExecTime {
				m.ExecTime = res.ExecTime
			}
		}
		if m.WallTime == 0 || wall < m.WallTime {
			m.WallTime = wall
		}
		if es := res.ExecStats; es != nil && rep == 0 {
			m.Workers = es.Workers
			m.Utilization = es.Utilization()
			m.BusyTime = es.BusyTime
			m.FallbackReason = es.FallbackReason
		}
		if rep == 0 {
			m.Trace = res.Trace
		}
	}

	// Sequential comparison phase on the same database and plan settings.
	db.SetExecParallelism(1)
	defer db.SetExecParallelism(cfg.Parallelism)
	for rep := 0; rep < cfg.reps(); rep++ {
		res, err := db.Run(sql)
		if err != nil {
			return nil, fmt.Errorf("%s (sequential): %w", mode, err)
		}
		if len(res.Statements) != len(m.RowCounts) {
			return nil, fmt.Errorf("%s: sequential run returned %d statements, parallel %d",
				mode, len(res.Statements), len(m.RowCounts))
		}
		for i, st := range res.Statements {
			if len(st.Rows) != m.RowCounts[i] {
				return nil, fmt.Errorf("%s: statement %d returned %d rows sequentially, %d in parallel",
					mode, i+1, len(st.Rows), m.RowCounts[i])
			}
		}
		if m.ExecTimeSeq == 0 || res.ExecTime < m.ExecTimeSeq {
			m.ExecTimeSeq = res.ExecTime
		}
	}
	m.Metrics = db.Metrics().Snapshot()
	return m, nil
}

// VerifyAgainst cross-checks two measurements' result row counts; the
// harness uses it to assert CSE plans return the same result shapes.
func VerifyAgainst(a, b *Measurement) error {
	if len(a.RowCounts) != len(b.RowCounts) {
		return fmt.Errorf("statement counts differ: %d vs %d", len(a.RowCounts), len(b.RowCounts))
	}
	for i := range a.RowCounts {
		if a.RowCounts[i] != b.RowCounts[i] {
			return fmt.Errorf("statement %d row counts differ: %d (%s) vs %d (%s)",
				i+1, a.RowCounts[i], a.Mode, b.RowCounts[i], b.Mode)
		}
	}
	return nil
}

// TableRow is one experiment table, paper-style: three mode columns.
type TableRow struct {
	Title string
	Runs  [3]*Measurement
}

// RunTable measures a batch under all three modes and verifies result
// agreement.
func RunTable(cfg Config, title, sql string) (*TableRow, error) {
	tr := &TableRow{Title: title}
	for _, mode := range []Mode{NoCSE, WithCSE, NoHeuristics} {
		m, err := RunBatch(cfg, mode, sql)
		if err != nil {
			return nil, err
		}
		tr.Runs[mode] = m
	}
	if err := VerifyAgainst(tr.Runs[NoCSE], tr.Runs[WithCSE]); err != nil {
		return nil, fmt.Errorf("%s: CSE plan changed results: %w", title, err)
	}
	if err := VerifyAgainst(tr.Runs[NoCSE], tr.Runs[NoHeuristics]); err != nil {
		return nil, fmt.Errorf("%s: no-heuristics plan changed results: %w", title, err)
	}
	return tr, nil
}

// Format renders the table in the paper's layout.
func (tr *TableRow) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", tr.Title)
	w := func(label string, vals [3]string) {
		fmt.Fprintf(&sb, "  %-26s | %12s | %12s | %12s\n", label, vals[0], vals[1], vals[2])
	}
	w("", [3]string{"No CSE", "Using CSEs", "CSE (no heur)"})
	w("# of CSEs [CSE Opts]", [3]string{
		"N/A",
		fmt.Sprintf("%d [%d]", tr.Runs[1].Candidates, tr.Runs[1].CSEOpts),
		fmt.Sprintf("%d [%d]", tr.Runs[2].Candidates, tr.Runs[2].CSEOpts),
	})
	w("Optimization time (secs)", [3]string{
		fmt.Sprintf("%.4f", tr.Runs[0].OptTime.Seconds()),
		fmt.Sprintf("%.4f", tr.Runs[1].OptTime.Seconds()),
		fmt.Sprintf("%.4f", tr.Runs[2].OptTime.Seconds()),
	})
	w("Estimated cost", [3]string{
		fmt.Sprintf("%.2f", tr.Runs[0].EstCost),
		fmt.Sprintf("%.2f", tr.Runs[1].EstCost),
		fmt.Sprintf("%.2f", tr.Runs[2].EstCost),
	})
	w("Execution time (secs)", [3]string{
		fmt.Sprintf("%.4f", tr.Runs[0].ExecTime.Seconds()),
		fmt.Sprintf("%.4f", tr.Runs[1].ExecTime.Seconds()),
		fmt.Sprintf("%.4f", tr.Runs[2].ExecTime.Seconds()),
	})
	w("Exec time, sequential", [3]string{
		fmt.Sprintf("%.4f", tr.Runs[0].ExecTimeSeq.Seconds()),
		fmt.Sprintf("%.4f", tr.Runs[1].ExecTimeSeq.Seconds()),
		fmt.Sprintf("%.4f", tr.Runs[2].ExecTimeSeq.Seconds()),
	})
	if sp := speedup(tr.Runs[0].ExecTime, tr.Runs[1].ExecTime); sp > 0 {
		fmt.Fprintf(&sb, "  execution speedup with CSEs: %.2fx\n", sp)
	}
	if m := tr.Runs[1]; m.Workers > 1 {
		if sp := speedup(m.ExecTimeSeq, m.ExecTime); sp > 0 {
			fmt.Fprintf(&sb, "  parallel exec speedup vs sequential: %.2fx (%d workers, %.0f%% utilized)\n",
				sp, m.Workers, 100*m.Utilization)
		}
	}
	return sb.String()
}

func speedup(base, with time.Duration) float64 {
	if with <= 0 {
		return 0
	}
	return base.Seconds() / with.Seconds()
}

// Figure8Point is one batch size of the scale-up experiment.
type Figure8Point struct {
	Queries        int
	CostNoCSE      float64
	CostCSE        float64
	OptNoCSE       time.Duration
	OptCSE         time.Duration
	OptNoPruning   time.Duration
	CandsCSE       int
	CandsNoPruning int
}

// RunFigure8 sweeps batch sizes 2..maxN.
func RunFigure8(cfg Config, maxN int) ([]Figure8Point, error) {
	var out []Figure8Point
	for n := 2; n <= maxN; n++ {
		sql := Figure8SQL(n)
		no, err := RunBatch(cfg, NoCSE, sql)
		if err != nil {
			return nil, err
		}
		with, err := RunBatch(cfg, WithCSE, sql)
		if err != nil {
			return nil, err
		}
		noH, err := RunBatch(cfg, NoHeuristics, sql)
		if err != nil {
			return nil, err
		}
		if err := VerifyAgainst(no, with); err != nil {
			return nil, fmt.Errorf("figure8 n=%d: %w", n, err)
		}
		out = append(out, Figure8Point{
			Queries:        n,
			CostNoCSE:      no.EstCost,
			CostCSE:        with.EstCost,
			OptNoCSE:       no.OptTime,
			OptCSE:         with.OptTime,
			OptNoPruning:   noH.OptTime,
			CandsCSE:       with.Candidates,
			CandsNoPruning: noH.Candidates,
		})
	}
	return out, nil
}

// FormatFigure8 renders the sweep as the two series of Figure 8.
func FormatFigure8(points []Figure8Point) string {
	var sb strings.Builder
	sb.WriteString("Figure 8: scale-up with number of queries in the batch\n")
	sb.WriteString("  queries | est cost (no CSE) | est cost (CSE) | opt time no CSE | opt time CSE | opt time no-prune | cands (CSE/no-prune)\n")
	for _, p := range points {
		fmt.Fprintf(&sb, "  %7d | %17.2f | %14.2f | %15.4f | %12.4f | %17.4f | %d/%d\n",
			p.Queries, p.CostNoCSE, p.CostCSE,
			p.OptNoCSE.Seconds(), p.OptCSE.Seconds(), p.OptNoPruning.Seconds(),
			p.CandsCSE, p.CandsNoPruning)
	}
	return sb.String()
}

// MaintenanceMeasurement reports the §6.4 experiment.
type MaintenanceMeasurement struct {
	Mode       Mode
	Candidates int
	CSEOpts    int
	OptTime    time.Duration
	ExecTime   time.Duration
	EstCost    float64
	Views      int
}

// RunViewMaintenance creates the three Example 1 materialized views, then
// inserts a batch of new customers and measures joint maintenance.
func RunViewMaintenance(cfg Config, mode Mode, deltaRows int) (*MaintenanceMeasurement, error) {
	db, err := NewDB(cfg, mode)
	if err != nil {
		return nil, err
	}
	if _, err := db.Run(ViewDDL()); err != nil {
		return nil, err
	}
	rows := make([]csedb.Row, deltaRows)
	for i := range rows {
		rows[i] = csedb.Row{
			sqltypes.NewInt(int64(900000 + i)),
			sqltypes.NewString(fmt.Sprintf("Customer#%09d", 900000+i)),
			sqltypes.NewString("delta address"),
			sqltypes.NewInt(int64(i % 25)),
			sqltypes.NewString("11-111-111-1111"),
			sqltypes.NewFloat(float64(i)),
			sqltypes.NewString("BUILDING"),
			sqltypes.NewString("delta"),
		}
	}
	res, err := db.InsertWithViewMaintenance("customer", rows)
	if err != nil {
		return nil, err
	}
	return &MaintenanceMeasurement{
		Mode:       mode,
		Candidates: res.Stats.Candidates,
		CSEOpts:    res.Stats.CSEOptimizations,
		OptTime:    res.OptimizeTime,
		ExecTime:   res.ExecTime,
		EstCost:    res.EstimatedCost,
		Views:      len(res.ViewsMaintained),
	}, nil
}

// FormatMaintenance renders the §6.4 comparison.
func FormatMaintenance(no, with *MaintenanceMeasurement) string {
	var sb strings.Builder
	sb.WriteString("View maintenance (3 materialized views, customer delta)\n")
	fmt.Fprintf(&sb, "  %-26s | %12s | %12s\n", "", "No CSE", "Using CSEs")
	fmt.Fprintf(&sb, "  %-26s | %12s | %12s\n", "# of CSEs [CSE Opts]", "N/A",
		fmt.Sprintf("%d [%d]", with.Candidates, with.CSEOpts))
	fmt.Fprintf(&sb, "  %-26s | %12.4f | %12.4f\n", "Optimization time (secs)",
		no.OptTime.Seconds(), with.OptTime.Seconds())
	fmt.Fprintf(&sb, "  %-26s | %12.2f | %12.2f\n", "Estimated cost", no.EstCost, with.EstCost)
	fmt.Fprintf(&sb, "  %-26s | %12.4f | %12.4f\n", "Maintenance time (secs)",
		no.ExecTime.Seconds(), with.ExecTime.Seconds())
	if sp := speedup(no.ExecTime, with.ExecTime); sp > 0 {
		fmt.Fprintf(&sb, "  maintenance speedup with CSEs: %.2fx\n", sp)
	}
	return sb.String()
}

// OverheadMeasurement quantifies the no-sharing optimization overhead.
type OverheadMeasurement struct {
	OptNoCSE   time.Duration
	OptWithCSE time.Duration
	Candidates int
}

// RunOverhead measures optimizer time on a batch with no sharable
// subexpressions, with the CSE machinery off and on.
func RunOverhead(cfg Config) (*OverheadMeasurement, error) {
	sql := NoSharingSQL()
	no, err := RunBatch(cfg, NoCSE, sql)
	if err != nil {
		return nil, err
	}
	with, err := RunBatch(cfg, WithCSE, sql)
	if err != nil {
		return nil, err
	}
	return &OverheadMeasurement{
		OptNoCSE:   no.OptTime,
		OptWithCSE: with.OptTime,
		Candidates: with.Candidates,
	}, nil
}

// RepeatedMeasurement reports the repeated-batch scenario: one database with
// the cross-batch result cache enabled runs the same batch several times.
// The first (cold) run materializes every spool; warm runs serve them from
// the cache, so WarmExec should beat ColdExec whenever the batch shares
// work at all.
type RepeatedMeasurement struct {
	Candidates int
	UsedCSEs   []int
	RowCounts  []int

	// ColdExec is the first run's execution time; WarmExec is the minimum
	// execution time over the warm reps.
	ColdExec time.Duration
	WarmExec time.Duration

	// SpoolsCached is how many spools the first warm run served from the
	// cache (out of SpoolsTotal executed spools).
	SpoolsCached int
	SpoolsTotal  int

	// Hits/Misses/Invalidations/CacheBytes snapshot the cache after the
	// scenario.
	Hits, Misses, Invalidations int64
	CacheBytes                  int64

	// Metrics is the database's metrics registry snapshot at the end.
	Metrics map[string]float64
}

// WarmSpeedup is ColdExec / WarmExec (> 1 means the cache paid off).
func (r *RepeatedMeasurement) WarmSpeedup() float64 { return speedup(r.ColdExec, r.WarmExec) }

// RunRepeated measures the repeated-batch scenario under the WithCSE mode:
// the batch runs once cold and cfg.Reps times warm on the same database with
// the result cache on, verifying warm runs return the same per-statement row
// counts as the cold run.
func RunRepeated(cfg Config, sql string) (*RepeatedMeasurement, error) {
	s := WithCSE.Settings()
	db := csedb.Open(csedb.Options{CSE: &s, SearchStrategy: cfg.Search, ExecParallelism: cfg.Parallelism, Tracing: cfg.Tracing})
	if err := db.LoadTPCH(cfg.ScaleFactor, cfg.Seed); err != nil {
		return nil, err
	}
	cold, err := db.Run(sql)
	if err != nil {
		return nil, fmt.Errorf("repeated (cold): %w", err)
	}
	m := &RepeatedMeasurement{
		Candidates: cold.Stats.Candidates,
		UsedCSEs:   cold.Stats.UsedCSEs,
		ColdExec:   cold.ExecTime,
	}
	for _, st := range cold.Statements {
		m.RowCounts = append(m.RowCounts, len(st.Rows))
	}
	for rep := 0; rep < cfg.reps(); rep++ {
		warm, err := db.Run(sql)
		if err != nil {
			return nil, fmt.Errorf("repeated (warm rep %d): %w", rep, err)
		}
		if len(warm.Statements) != len(m.RowCounts) {
			return nil, fmt.Errorf("warm rep %d returned %d statements, cold run %d",
				rep, len(warm.Statements), len(m.RowCounts))
		}
		for i, st := range warm.Statements {
			if len(st.Rows) != m.RowCounts[i] {
				return nil, fmt.Errorf("warm rep %d statement %d returned %d rows, cold run %d",
					rep, i+1, len(st.Rows), m.RowCounts[i])
			}
		}
		if m.WarmExec == 0 || warm.ExecTime < m.WarmExec {
			m.WarmExec = warm.ExecTime
		}
		if rep == 0 && warm.ExecStats != nil {
			m.SpoolsCached = warm.ExecStats.CacheHits()
			m.SpoolsTotal = len(warm.ExecStats.SpoolRows)
		}
	}
	if c := db.ResultCache(); c != nil {
		st := c.Stats()
		m.Hits, m.Misses, m.Invalidations, m.CacheBytes = st.Hits, st.Misses, st.Invalidations, st.Bytes
	}
	m.Metrics = db.Metrics().Snapshot()
	return m, nil
}

// FormatRepeated renders the repeated-batch scenario.
func (r *RepeatedMeasurement) FormatRepeated() string {
	var sb strings.Builder
	sb.WriteString("Repeated batch with cross-batch result cache\n")
	fmt.Fprintf(&sb, "  candidates: %d (used: %d)\n", r.Candidates, len(r.UsedCSEs))
	fmt.Fprintf(&sb, "  cold execution time (secs): %.4f\n", r.ColdExec.Seconds())
	fmt.Fprintf(&sb, "  warm execution time (secs): %.4f\n", r.WarmExec.Seconds())
	if sp := r.WarmSpeedup(); sp > 0 {
		fmt.Fprintf(&sb, "  warm-cache speedup: %.2fx\n", sp)
	}
	fmt.Fprintf(&sb, "  spools served from cache (first warm run): %d/%d\n", r.SpoolsCached, r.SpoolsTotal)
	fmt.Fprintf(&sb, "  cache counters: %d hits, %d misses, %d invalidations, %d bytes\n",
		r.Hits, r.Misses, r.Invalidations, r.CacheBytes)
	return sb.String()
}

// CSVFigure8 renders the sweep as CSV for plotting.
func CSVFigure8(points []Figure8Point) string {
	var sb strings.Builder
	sb.WriteString("queries,est_cost_no_cse,est_cost_cse,opt_s_no_cse,opt_s_cse,opt_s_no_pruning,cands_cse,cands_no_pruning\n")
	for _, p := range points {
		fmt.Fprintf(&sb, "%d,%.2f,%.2f,%.6f,%.6f,%.6f,%d,%d\n",
			p.Queries, p.CostNoCSE, p.CostCSE,
			p.OptNoCSE.Seconds(), p.OptCSE.Seconds(), p.OptNoPruning.Seconds(),
			p.CandsCSE, p.CandsNoPruning)
	}
	return sb.String()
}

// CSVTable renders a table row comparison as CSV.
func (tr *TableRow) CSV() string {
	var sb strings.Builder
	sb.WriteString("mode,candidates,cse_opts,opt_s,est_cost,exec_s,exec_seq_s,workers,utilization\n")
	for _, m := range tr.Runs {
		fmt.Fprintf(&sb, "%q,%d,%d,%.6f,%.2f,%.6f,%.6f,%d,%.3f\n",
			m.Mode.String(), m.Candidates, m.CSEOpts,
			m.OptTime.Seconds(), m.EstCost, m.ExecTime.Seconds(),
			m.ExecTimeSeq.Seconds(), m.Workers, m.Utilization)
	}
	return sb.String()
}
