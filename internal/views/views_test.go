package views_test

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/logical"
	"repro/internal/parser"
	"repro/internal/sqltypes"
	"repro/internal/storage"
	"repro/internal/tpch"
	"repro/internal/views"
)

func define(t *testing.T, sql string) (*views.View, *catalog.Table, error) {
	t.Helper()
	cat := catalog.New()
	for _, tab := range tpch.Schemas() {
		if err := cat.Add(tab); err != nil {
			t.Fatal(err)
		}
	}
	sel, err := parser.ParseSelect(sql)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := logical.BuildBatch([]parser.Statement{sel}, cat)
	if err != nil {
		t.Fatal(err)
	}
	return views.Define("v", sel, batch.Statements[0].Block, batch.Metadata)
}

func TestDefineAggView(t *testing.T) {
	v, backing, err := define(t, `
select c_nationkey, sum(c_acctbal) as total, count(*) as n
from customer group by c_nationkey`)
	if err != nil {
		t.Fatal(err)
	}
	if v.BackingName() != "mv_v" {
		t.Errorf("backing name = %q", v.BackingName())
	}
	if !v.References("customer") || !v.References("CUSTOMER") {
		t.Error("References must be case-insensitive")
	}
	if v.References("orders") {
		t.Error("view does not reference orders")
	}
	if len(backing.Cols) != 3 {
		t.Errorf("backing columns = %d", len(backing.Cols))
	}
	if backing.Cols[1].Type != sqltypes.KindFloat || backing.Cols[2].Type != sqltypes.KindInt {
		t.Errorf("backing types = %v", backing.Cols)
	}
}

func TestDefineSPJView(t *testing.T) {
	v, backing, err := define(t, "select c_name, c_acctbal from customer where c_acctbal > 0")
	if err != nil {
		t.Fatal(err)
	}
	if backing.Cols[0].Name != "c_name" {
		t.Errorf("backing col name = %q", backing.Cols[0].Name)
	}
	_ = v
}

func TestDefineRejections(t *testing.T) {
	cases := []struct {
		sql  string
		want string
	}{
		{"select c_nationkey, sum(c_acctbal) as s from customer group by c_nationkey having sum(c_acctbal) > 0", "HAVING"},
		{"select c_nationkey, sum(c_acctbal) + 1 as s from customer group by c_nationkey", "plain column or aggregate"},
		{"select sum(c_acctbal) as s from customer group by c_nationkey", "all grouping columns"},
	}
	for _, c := range cases {
		_, _, err := define(t, c.sql)
		if err == nil {
			t.Errorf("Define(%q) succeeded, want error about %s", c.sql, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Define(%q) error %q, want mention of %q", c.sql, err, c.want)
		}
	}
}

func TestMaintenanceStmtRewrite(t *testing.T) {
	v, _, err := define(t, `
select c_nationkey, sum(c_acctbal) as s
from customer, orders
where c_custkey = o_custkey group by c_nationkey`)
	if err != nil {
		t.Fatal(err)
	}
	st := v.MaintenanceStmt("customer", "delta_customer_1")
	sel := st.(*parser.SelectStmt)
	if sel.From[0].Table != "delta_customer_1" {
		t.Errorf("FROM not rewritten: %+v", sel.From)
	}
	if sel.From[0].Binding() != "customer" {
		t.Errorf("binding must stay %q for column resolution, got %q", "customer", sel.From[0].Binding())
	}
	if sel.From[1].Table != "orders" {
		t.Error("other tables untouched")
	}
	// The original is not mutated.
	st2 := v.MaintenanceStmt("orders", "delta_orders_1")
	sel2 := st2.(*parser.SelectStmt)
	if sel2.From[0].Table != "customer" || sel2.From[1].Table != "delta_orders_1" {
		t.Errorf("second rewrite wrong: %+v", sel2.From)
	}
}

func TestMergeAggregates(t *testing.T) {
	v, _, err := define(t, `
select c_nationkey, sum(c_acctbal) as s, count(*) as n, min(c_acctbal) as lo, max(c_acctbal) as hi
from customer group by c_nationkey`)
	if err != nil {
		t.Fatal(err)
	}
	ii, ff := sqltypes.NewInt, sqltypes.NewFloat
	backing := &storage.Table{Name: "mv_v"}
	backing.Append(sqltypes.Row{ii(1), ff(100), ii(2), ff(10), ff(90)})
	backing.Append(sqltypes.Row{ii(2), ff(50), ii(1), ff(50), ff(50)})

	delta := []sqltypes.Row{
		{ii(1), ff(30), ii(1), ff(5), ff(30)},  // existing group: merge
		{ii(3), ff(70), ii(1), ff(70), ff(70)}, // new group: append
	}
	if err := v.Merge(backing, delta); err != nil {
		t.Fatal(err)
	}
	if backing.Len() != 3 {
		t.Fatalf("rows after merge = %d, want 3", backing.Len())
	}
	g1 := backing.Rows[0]
	if g1[1].Float() != 130 {
		t.Errorf("sum merged to %v, want 130", g1[1])
	}
	if g1[2].Int() != 3 {
		t.Errorf("count merged to %v, want 3", g1[2])
	}
	if g1[3].Float() != 5 {
		t.Errorf("min merged to %v, want 5", g1[3])
	}
	if g1[4].Float() != 90 {
		t.Errorf("max merged to %v, want 90", g1[4])
	}
}

func TestMergeNullHandling(t *testing.T) {
	v, _, err := define(t, `
select c_nationkey, sum(c_acctbal) as s from customer group by c_nationkey`)
	if err != nil {
		t.Fatal(err)
	}
	ii, ff := sqltypes.NewInt, sqltypes.NewFloat
	backing := &storage.Table{Name: "mv_v"}
	backing.Append(sqltypes.Row{ii(1), sqltypes.Null})
	delta := []sqltypes.Row{{ii(1), ff(10)}}
	if err := v.Merge(backing, delta); err != nil {
		t.Fatal(err)
	}
	if backing.Rows[0][1].Float() != 10 {
		t.Errorf("NULL + 10 = %v, want 10", backing.Rows[0][1])
	}
	// Delta NULL leaves the old value.
	delta2 := []sqltypes.Row{{ii(1), sqltypes.Null}}
	if err := v.Merge(backing, delta2); err != nil {
		t.Fatal(err)
	}
	if backing.Rows[0][1].Float() != 10 {
		t.Errorf("10 + NULL = %v, want 10", backing.Rows[0][1])
	}
}

func TestMergeSPJAppends(t *testing.T) {
	v, _, err := define(t, "select c_name from customer where c_acctbal > 0")
	if err != nil {
		t.Fatal(err)
	}
	backing := &storage.Table{Name: "mv_v"}
	backing.Append(sqltypes.Row{sqltypes.NewString("a")})
	if err := v.Merge(backing, []sqltypes.Row{{sqltypes.NewString("b")}}); err != nil {
		t.Fatal(err)
	}
	if backing.Len() != 2 {
		t.Error("SPJ view merge must append")
	}
}

func TestManager(t *testing.T) {
	m := views.NewManager()
	v1, _, err := define(t, "select c_nationkey, count(*) as n from customer group by c_nationkey")
	if err != nil {
		t.Fatal(err)
	}
	m.Add(v1)
	if m.ByName("V") != v1 {
		t.Error("ByName must be case-insensitive")
	}
	if m.ByName("other") != nil {
		t.Error("missing view must be nil")
	}
	if got := m.Affected("customer"); len(got) != 1 {
		t.Errorf("Affected(customer) = %d views", len(got))
	}
	if got := m.Affected("orders"); len(got) != 0 {
		t.Errorf("Affected(orders) = %d views", len(got))
	}
	if len(m.All()) != 1 {
		t.Error("All() lost the view")
	}
}
