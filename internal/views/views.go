// Package views manages materialized views and their delta-based
// maintenance (§6.4 of the paper). Each view stores its defining SELECT; an
// update to a base table produces a delta work table, and the view's
// maintenance expression is the defining query with the updated table
// replaced by the delta. Maintenance expressions for all affected views are
// optimized together as one batch, so the CSE machinery shares their common
// subexpressions exactly as it does for user query batches.
package views

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/logical"
	"repro/internal/parser"
	"repro/internal/scalar"
	"repro/internal/sqltypes"
	"repro/internal/storage"
)

// View is one materialized view definition.
type View struct {
	Name string

	sel    *parser.SelectStmt
	tables map[string]bool

	// Projection roles: keyPos are group-key output positions; aggs are
	// aggregate output positions with their merge kinds.
	hasAgg bool
	keyPos []int
	aggs   []aggSpec
}

type aggSpec struct {
	pos  int
	kind scalar.AggKind
}

// Define validates a view's shape for incremental maintenance and returns
// the view plus its backing table schema. Maintainable views project plain
// grouping columns and plain aggregate outputs (SUM/COUNT/MIN/MAX) — the
// shape used in the paper's experiment — or are aggregate-free SPJ views.
func Define(name string, sel *parser.SelectStmt, blk *logical.Block, md *logical.Metadata) (*View, *catalog.Table, error) {
	if len(sel.With) > 0 {
		return nil, nil, fmt.Errorf("materialized view %s: WITH clauses are not maintainable", name)
	}
	v := &View{Name: name, sel: sel, tables: make(map[string]bool)}
	for _, ref := range sel.From {
		v.tables[strings.ToLower(ref.Table)] = true
	}
	v.hasAgg = blk.HasGroup

	if blk.Having != nil {
		return nil, nil, fmt.Errorf("materialized view %s: HAVING is not maintainable", name)
	}
	if v.hasAgg {
		groupSet := scalar.MakeColSet(blk.GroupCols...)
		aggKind := make(map[scalar.ColID]scalar.AggKind, len(blk.Aggs))
		for _, a := range blk.Aggs {
			aggKind[a.Out] = a.Kind
		}
		for i, p := range blk.Projections {
			if p.Expr.Op != scalar.OpCol {
				return nil, nil, fmt.Errorf("materialized view %s: output %q must be a plain column or aggregate", name, p.Name)
			}
			switch {
			case groupSet.Contains(p.Expr.Col):
				v.keyPos = append(v.keyPos, i)
			default:
				kind, ok := aggKind[p.Expr.Col]
				if !ok {
					return nil, nil, fmt.Errorf("materialized view %s: output %q is neither group column nor aggregate", name, p.Name)
				}
				v.aggs = append(v.aggs, aggSpec{pos: i, kind: kind})
			}
		}
		// Every grouping column must appear in the output so deltas can be
		// matched to stored groups.
		if len(v.keyPos) != groupSet.Len() {
			return nil, nil, fmt.Errorf("materialized view %s: all grouping columns must be projected", name)
		}
	}

	kinds := blk.OutputKinds(md)
	backing := &catalog.Table{Name: v.BackingName()}
	for i, p := range blk.Projections {
		backing.Cols = append(backing.Cols, catalog.Column{Name: p.Name, Type: kinds[i]})
	}
	return v, backing, nil
}

// BackingName is the stored table holding the view's rows.
func (v *View) BackingName() string { return "mv_" + strings.ToLower(v.Name) }

// References reports whether the view reads the given base table.
func (v *View) References(table string) bool { return v.tables[strings.ToLower(table)] }

// MaintenanceStmt returns the view's maintenance query for an insert delta:
// the defining SELECT with the updated table replaced by the delta table
// (keeping the original binding name so column references resolve).
func (v *View) MaintenanceStmt(table, deltaName string) parser.Statement {
	clone := *v.sel
	clone.From = make([]parser.TableRef, len(v.sel.From))
	for i, ref := range v.sel.From {
		clone.From[i] = ref
		if strings.EqualFold(ref.Table, table) {
			clone.From[i] = parser.TableRef{Table: deltaName, Alias: ref.Binding()}
		}
	}
	return &clone
}

// Merge folds an insert-delta result into the view's backing table: new
// groups are appended; existing groups have their aggregates combined
// (sums and counts add, min/max fold).
func (v *View) Merge(backing *storage.Table, deltaRows []sqltypes.Row) error {
	if !v.hasAgg {
		for _, r := range deltaRows {
			backing.Append(r.Clone())
		}
		return nil
	}
	hasher := sqltypes.NewHasher()
	index := make(map[uint64][]int, len(backing.Rows))
	for i, r := range backing.Rows {
		h := hasher.HashRow(r, v.keyPos)
		index[h] = append(index[h], i)
	}
	for _, dr := range deltaRows {
		h := hasher.HashRow(dr, v.keyPos)
		matched := -1
		for _, i := range index[h] {
			if keysMatch(backing.Rows[i], dr, v.keyPos) {
				matched = i
				break
			}
		}
		if matched < 0 {
			backing.Append(dr.Clone())
			index[h] = append(index[h], len(backing.Rows)-1)
			continue
		}
		row := backing.Rows[matched]
		for _, a := range v.aggs {
			row[a.pos] = mergeAgg(a.kind, row[a.pos], dr[a.pos])
		}
	}
	return nil
}

func keysMatch(a, b sqltypes.Row, pos []int) bool {
	for _, p := range pos {
		if sqltypes.Compare(a[p], b[p]) != 0 {
			return false
		}
	}
	return true
}

func mergeAgg(kind scalar.AggKind, old, delta sqltypes.Datum) sqltypes.Datum {
	switch kind {
	case scalar.AggSum, scalar.AggCount, scalar.AggCountStar:
		if old.IsNull() {
			return delta
		}
		if delta.IsNull() {
			return old
		}
		return scalar.EvalArith(scalar.OpAdd, old, delta)
	case scalar.AggMin:
		if old.IsNull() {
			return delta
		}
		if delta.IsNull() {
			return old
		}
		if sqltypes.Compare(delta, old) < 0 {
			return delta
		}
		return old
	case scalar.AggMax:
		if old.IsNull() {
			return delta
		}
		if delta.IsNull() {
			return old
		}
		if sqltypes.Compare(delta, old) > 0 {
			return delta
		}
		return old
	default:
		return old
	}
}

// Manager tracks all materialized views of a database.
type Manager struct {
	views []*View
}

// NewManager returns an empty manager.
func NewManager() *Manager { return &Manager{} }

// Add registers a view.
func (m *Manager) Add(v *View) { m.views = append(m.views, v) }

// Affected returns the views referencing the given base table.
func (m *Manager) Affected(table string) []*View {
	var out []*View
	for _, v := range m.views {
		if v.References(table) {
			out = append(out, v)
		}
	}
	return out
}

// ByName resolves a view by name.
func (m *Manager) ByName(name string) *View {
	for _, v := range m.views {
		if strings.EqualFold(v.Name, name) {
			return v
		}
	}
	return nil
}

// All returns every registered view.
func (m *Manager) All() []*View { return m.views }
