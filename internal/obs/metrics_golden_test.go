package obs

import (
	"math"
	"strings"
	"testing"
)

// TestDumpGoldenExposition pins Registry.Dump's exact Prometheus text
// exposition: TYPE lines, cumulative _bucket samples with le labels, the
// implicit +Inf bucket, and _sum/_count — including a histogram with custom
// per-name bounds. Scrapers and the CI smoke assert on this shape; any change
// must be deliberate.
func TestDumpGoldenExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("csedb_batches_total").Add(2)
	r.Gauge("cache_bytes").Set(1536)
	h := r.HistogramWith("optimize_seconds", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0004) // lands in every bucket (cumulative)
	h.Observe(0.05)   // lands in le=0.1 only
	h.Observe(3)      // +Inf only
	d := r.Histogram("exec_seconds")
	d.Observe(0.002)

	got := r.Dump()
	want := strings.Join([]string{
		"# TYPE csedb_batches_total counter",
		"csedb_batches_total 2",
		"# TYPE cache_bytes gauge",
		"cache_bytes 1536",
		"# TYPE exec_seconds histogram",
		`exec_seconds_bucket{le="0.0005"} 0`,
		`exec_seconds_bucket{le="0.001"} 0`,
		`exec_seconds_bucket{le="0.005"} 1`,
		`exec_seconds_bucket{le="0.01"} 1`,
		`exec_seconds_bucket{le="0.05"} 1`,
		`exec_seconds_bucket{le="0.1"} 1`,
		`exec_seconds_bucket{le="0.5"} 1`,
		`exec_seconds_bucket{le="1"} 1`,
		`exec_seconds_bucket{le="5"} 1`,
		`exec_seconds_bucket{le="+Inf"} 1`,
		"exec_seconds_sum 0.002",
		"exec_seconds_count 1",
		"# TYPE optimize_seconds histogram",
		`optimize_seconds_bucket{le="0.001"} 1`,
		`optimize_seconds_bucket{le="0.01"} 1`,
		`optimize_seconds_bucket{le="0.1"} 2`,
		`optimize_seconds_bucket{le="+Inf"} 3`,
		"optimize_seconds_sum 3.0504",
		"optimize_seconds_count 3",
		"",
	}, "\n")
	if got != want {
		t.Errorf("Dump exposition drifted.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestHistogramWithBounds: per-name bounds stick on first creation, a
// trailing +Inf is stripped (the +Inf bucket is implicit in the exposition),
// and later calls — with or without bounds — return the same histogram.
func TestHistogramWithBounds(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramWith("cache_lookup_seconds", []float64{1e-6, 1e-5, 1e-4, math.Inf(1)})
	if got := h.Bounds(); len(got) != 3 || got[2] != 1e-4 {
		t.Fatalf("Bounds = %v, want [1e-06 1e-05 0.0001]", got)
	}
	if r.Histogram("cache_lookup_seconds") != h {
		t.Error("Histogram(name) must return the histogram created with bounds")
	}
	if r.HistogramWith("cache_lookup_seconds", []float64{1, 2}) != h {
		t.Error("second HistogramWith must return the existing histogram")
	}
	if got := h.Bounds(); len(got) != 3 {
		t.Errorf("bounds changed by second creation: %v", got)
	}
	h.Observe(5e-6)
	dump := r.Dump()
	for _, want := range []string{
		`cache_lookup_seconds_bucket{le="1e-06"} 0`,
		`cache_lookup_seconds_bucket{le="1e-05"} 1`,
		`cache_lookup_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
	// Default bounds when no bounds are given.
	if got := r.Histogram("plain").Bounds(); len(got) != len(defaultBuckets) {
		t.Errorf("default bounds = %v", got)
	}
}
