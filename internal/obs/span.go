package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"
)

// SpanRecorder collects the spans of one batch run into a tree. Like *Trace,
// a nil recorder is a valid zero-cost no-op: StartSpan on it returns a nil
// *Span, and every Span method no-ops on a nil receiver, so call sites thread
// spans unconditionally and disabled tracing costs a pointer check.
//
// Spans are cheap but not free — the engine starts one per phase, wave,
// spool, and statement, never per row or per morsel.
type SpanRecorder struct {
	mu    sync.Mutex
	base  time.Time
	spans []*Span
}

// NewSpanRecorder returns an empty recorder; span timestamps are relative to
// this call.
func NewSpanRecorder() *SpanRecorder {
	return &SpanRecorder{base: time.Now()}
}

// Enabled reports whether spans are being recorded.
func (r *SpanRecorder) Enabled() bool { return r != nil }

// Span is one timed operation. Spans form a tree via Child; attributes carry
// the numeric and string evidence (row counts, cache outcomes, wait times)
// tools assert on. All methods are safe on a nil receiver and for concurrent
// use — parallel morsel workers start children of one parent concurrently.
type Span struct {
	rec    *SpanRecorder
	id     int
	parent int // -1 for roots
	name   string
	start  time.Duration // relative to rec.base
	end    time.Duration // 0 while running (spans never end in the first instant recorded)
	ended  bool
	// discarded spans are dropped from the exported tree (their children are
	// re-parented). Used by speculative spans — started to time an operation
	// that may turn out not worth recording, e.g. an uncontended spool wait.
	discarded bool
	attrs     map[string]any
}

// StartSpan begins a root-level span. Returns nil on a nil recorder.
func (r *SpanRecorder) StartSpan(name string) *Span { return r.startSpan(name, -1) }

func (r *SpanRecorder) startSpan(name string, parent int) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Span{rec: r, id: len(r.spans), parent: parent, name: name, start: time.Since(r.base)}
	r.spans = append(r.spans, s)
	return s
}

// Child begins a span nested under s. Returns nil on a nil receiver, so
// disabled tracing propagates through arbitrarily deep call chains.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.rec.startSpan(name, s.id)
}

// SetAttr attaches one key-value attribute. Values should be strings, bools,
// or numbers (anything else renders via fmt). No-op on a nil receiver.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.rec.mu.Lock()
	defer s.rec.mu.Unlock()
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = value
}

// End finishes the span. Idempotent: only the first End sets the end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.rec.mu.Lock()
	defer s.rec.mu.Unlock()
	if !s.ended {
		s.ended = true
		s.end = time.Since(s.rec.base)
	}
}

// Dur returns the span's duration: end−start once ended, elapsed-so-far
// while running. Zero on a nil receiver.
func (s *Span) Dur() time.Duration {
	if s == nil {
		return 0
	}
	s.rec.mu.Lock()
	defer s.rec.mu.Unlock()
	if s.ended {
		return s.end - s.start
	}
	return time.Since(s.rec.base) - s.start
}

// Discard drops the span from the exported tree; any children are
// re-parented to the span's nearest retained ancestor. Use for speculative
// spans whose measurement turned out uninteresting (e.g. a spool wait that
// never blocked). No-op on a nil receiver.
func (s *Span) Discard() {
	if s == nil {
		return
	}
	s.rec.mu.Lock()
	defer s.rec.mu.Unlock()
	if !s.ended {
		s.ended = true
		s.end = time.Since(s.rec.base)
	}
	s.discarded = true
}

// Finish ends every still-running span (marking it with an unfinished=true
// attribute) so a batch that errored or was cancelled mid-flight still
// exports a complete, well-formed tree. Safe on a nil recorder.
func (r *SpanRecorder) Finish() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Since(r.base)
	for _, s := range r.spans {
		if !s.ended {
			s.ended = true
			s.end = now
			if s.attrs == nil {
				s.attrs = make(map[string]any, 1)
			}
			s.attrs["unfinished"] = true
		}
	}
}

// Len returns the number of spans started so far.
func (r *SpanRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Unfinished returns the number of spans not yet ended (0 after Finish).
func (r *SpanRecorder) Unfinished() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, s := range r.spans {
		if !s.ended {
			n++
		}
	}
	return n
}

// SpanNode is one span in the exported tree: plain data, safe to retain and
// marshal after the batch completes. Times are microseconds relative to the
// recorder's creation.
type SpanNode struct {
	Name     string         `json:"name"`
	StartUS  int64          `json:"start_us"`
	DurUS    int64          `json:"dur_us"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*SpanNode    `json:"children,omitempty"`
}

// Find returns the first node named name in a depth-first walk of the trees,
// or nil. A test and debugging convenience.
func Find(roots []*SpanNode, name string) *SpanNode {
	for _, n := range roots {
		if n.Name == name {
			return n
		}
		if m := Find(n.Children, name); m != nil {
			return m
		}
	}
	return nil
}

// Walk calls f for every node in a depth-first walk of the trees.
func Walk(roots []*SpanNode, f func(*SpanNode)) {
	for _, n := range roots {
		f(n)
		Walk(n.Children, f)
	}
}

// Tree snapshots the recorded spans as a forest of SpanNodes in start order.
// Running spans appear with their current elapsed time. Nil-safe (returns
// nil).
func (r *SpanRecorder) Tree() []*SpanNode {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Since(r.base)
	nodes := make([]*SpanNode, len(r.spans))
	var roots []*SpanNode
	for i, s := range r.spans {
		if s.discarded {
			continue
		}
		end := s.end
		if !s.ended {
			end = now
		}
		n := &SpanNode{
			Name:    s.name,
			StartUS: s.start.Microseconds(),
			DurUS:   (end - s.start).Microseconds(),
		}
		if len(s.attrs) > 0 {
			n.Attrs = make(map[string]any, len(s.attrs))
			for k, v := range s.attrs {
				n.Attrs[k] = v
			}
		}
		nodes[i] = n
		// Attach to the nearest retained ancestor so children of a discarded
		// span are not lost.
		parent := s.parent
		for parent >= 0 && r.spans[parent].discarded {
			parent = r.spans[parent].parent
		}
		if parent >= 0 {
			p := nodes[parent]
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}

// JSON renders the span tree as indented JSON.
func (r *SpanRecorder) JSON() ([]byte, error) {
	tree := r.Tree()
	if tree == nil {
		tree = []*SpanNode{}
	}
	return json.MarshalIndent(tree, "", "  ")
}

// chromeEvent is one Chrome trace-event ("X" complete event).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"` // microseconds
	Dur  int64          `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace renders the span forest in Chrome trace-event format, loadable
// by chrome://tracing and Perfetto. Concurrent spans (parallel spool
// materializations, concurrent statements) are laid out on separate tracks by
// greedy interval partitioning, so overlapping work renders side by side
// instead of nesting incorrectly.
func ChromeTrace(roots []*SpanNode) ([]byte, error) {
	type flat struct {
		n     *SpanNode
		depth int
	}
	var all []flat
	var walk func(n *SpanNode, depth int)
	walk = func(n *SpanNode, depth int) {
		all = append(all, flat{n, depth})
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, rt := range roots {
		walk(rt, 0)
	}
	// Assign tracks greedily per depth level: spans at the same depth that
	// overlap in time land on different tids; nested children stay above
	// their parents by sharing the parent's track when they fit. Chrome
	// nests same-tid events by time containment, so the simple rule — tid =
	// first track at which the span does not overlap a previously placed
	// *sibling-level* span — renders correctly for our phase/wave/spool
	// shapes. Stable order: by start time, then by tree order.
	sort.SliceStable(all, func(i, j int) bool { return all[i].n.StartUS < all[j].n.StartUS })
	type track struct{ lastEnd map[int]int64 } // per depth, last end placed
	var tracks []*track
	tidOf := make(map[*SpanNode]int, len(all))
	for _, f := range all {
		startUS, endUS := f.n.StartUS, f.n.StartUS+f.n.DurUS
		placed := false
		for tid, tr := range tracks {
			if tr.lastEnd[f.depth] <= startUS {
				tr.lastEnd[f.depth] = endUS
				tidOf[f.n] = tid
				placed = true
				break
			}
		}
		if !placed {
			tr := &track{lastEnd: map[int]int64{f.depth: endUS}}
			tracks = append(tracks, tr)
			tidOf[f.n] = len(tracks) - 1
		}
	}
	events := make([]chromeEvent, 0, len(all))
	for _, f := range all {
		events = append(events, chromeEvent{
			Name: f.n.Name,
			Ph:   "X",
			TS:   f.n.StartUS,
			Dur:  f.n.DurUS,
			PID:  1,
			TID:  tidOf[f.n],
			Args: f.n.Attrs,
		})
	}
	out := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"}
	return json.MarshalIndent(out, "", " ")
}

// ChromeTrace renders this recorder's spans; see the package-level function.
func (r *SpanRecorder) ChromeTrace() ([]byte, error) { return ChromeTrace(r.Tree()) }

// String renders one node as a single line (debugging convenience).
func (n *SpanNode) String() string {
	return fmt.Sprintf("%s [%dus +%dus] %v", n.Name, n.StartUS, n.DurUS, n.Attrs)
}
