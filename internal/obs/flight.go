package obs

import (
	"encoding/json"
	"sync"
	"time"
)

// DefaultFlightCapacity is the number of recent batches the flight recorder
// retains when created with a non-positive capacity.
const DefaultFlightCapacity = 64

// DefaultSlowThreshold is the wall-time threshold above which a batch is also
// retained in the slow-batch log when the recorder is created with a
// non-positive threshold.
const DefaultSlowThreshold = 100 * time.Millisecond

// slowLogCapacity bounds the slow-batch log independently of the main ring,
// so a burst of fast batches cannot flush out the interesting slow ones.
const slowLogCapacity = 32

// BatchRecord is the flight recorder's per-batch snapshot: the span tree plus
// the headline stats a post-hoc "where did the latency go?" investigation
// needs. Plain data — safe to marshal and retain.
type BatchRecord struct {
	// Seq is the batch's monotonically increasing sequence number within
	// this recorder.
	Seq uint64 `json:"seq"`

	// Start is the batch's wall-clock start time.
	Start time.Time `json:"start"`

	// Wall, Optimize and Exec are the end-to-end, optimization-phase, and
	// execution-phase durations.
	Wall     time.Duration `json:"wall_ns"`
	Optimize time.Duration `json:"optimize_ns"`
	Exec     time.Duration `json:"exec_ns"`

	// Statements is the batch's statement count; Rows the total output rows.
	Statements int `json:"statements"`
	Rows       int `json:"rows"`

	// Candidates and UsedCSEs summarize the CSE phase.
	Candidates int `json:"candidates"`
	UsedCSEs   int `json:"used_cses"`

	// SpoolsMaterialized and SpoolsCached split executed spools into
	// computed-this-batch vs served-from-the-result-cache.
	SpoolsMaterialized int `json:"spools_materialized"`
	SpoolsCached       int `json:"spools_cached"`

	// Err is the batch's error text; empty on success.
	Err string `json:"err,omitempty"`

	// Spans is the batch's span forest; nil when span tracing was off.
	Spans []*SpanNode `json:"spans,omitempty"`
}

// FlightRecorder keeps the last N batch records in a bounded ring, plus a
// separate bounded log of batches slower than a threshold, so the recent past
// stays inspectable after the fact (the debug server's /flightrecorder
// endpoint). A nil recorder no-ops, and recording is a ring-slot write under
// a mutex — cheap enough to leave on for every batch.
type FlightRecorder struct {
	mu        sync.Mutex
	ring      []*BatchRecord
	next      int // ring index of the next write
	seq       uint64
	threshold time.Duration
	slow      []*BatchRecord // append-bounded at slowLogCapacity, oldest dropped
}

// NewFlightRecorder returns a recorder retaining the last n batches
// (non-positive n means DefaultFlightCapacity) and logging batches slower
// than slowThreshold (non-positive means DefaultSlowThreshold).
func NewFlightRecorder(n int, slowThreshold time.Duration) *FlightRecorder {
	if n <= 0 {
		n = DefaultFlightCapacity
	}
	if slowThreshold <= 0 {
		slowThreshold = DefaultSlowThreshold
	}
	return &FlightRecorder{ring: make([]*BatchRecord, n), threshold: slowThreshold}
}

// Record adds one batch record, assigning its sequence number. Nil-safe.
func (f *FlightRecorder) Record(rec *BatchRecord) {
	if f == nil || rec == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	rec.Seq = f.seq
	f.ring[f.next] = rec
	f.next = (f.next + 1) % len(f.ring)
	if rec.Wall >= f.threshold {
		if len(f.slow) == slowLogCapacity {
			copy(f.slow, f.slow[1:])
			f.slow = f.slow[:slowLogCapacity-1]
		}
		f.slow = append(f.slow, rec)
	}
}

// Recent returns the retained batches, newest first. Nil-safe (returns nil).
func (f *FlightRecorder) Recent() []*BatchRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*BatchRecord, 0, len(f.ring))
	for i := 1; i <= len(f.ring); i++ {
		r := f.ring[(f.next-i+len(f.ring))%len(f.ring)]
		if r == nil {
			break
		}
		out = append(out, r)
	}
	return out
}

// Slow returns the slow-batch log, newest first. Nil-safe.
func (f *FlightRecorder) Slow() []*BatchRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*BatchRecord, len(f.slow))
	for i, r := range f.slow {
		out[len(f.slow)-1-i] = r
	}
	return out
}

// Last returns the most recent batch record, or nil when none was recorded.
func (f *FlightRecorder) Last() *BatchRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ring[(f.next-1+len(f.ring))%len(f.ring)]
}

// Threshold returns the slow-batch threshold.
func (f *FlightRecorder) Threshold() time.Duration {
	if f == nil {
		return 0
	}
	return f.threshold
}

// JSON renders the recent batches (newest first) as indented JSON.
func (f *FlightRecorder) JSON() ([]byte, error) {
	recs := f.Recent()
	if recs == nil {
		recs = []*BatchRecord{}
	}
	return json.MarshalIndent(recs, "", "  ")
}
