package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSpanRecorderIsNoOp: the entire span API must be callable through nil
// receivers — that is how disabled tracing stays zero-cost at every call site.
func TestNilSpanRecorderIsNoOp(t *testing.T) {
	var r *SpanRecorder
	if r.Enabled() {
		t.Error("nil recorder must report disabled")
	}
	s := r.StartSpan("batch")
	if s != nil {
		t.Fatal("StartSpan on a nil recorder must return nil")
	}
	// Every Span method must no-op on the nil span, arbitrarily deep.
	c := s.Child("optimize").Child("candidates")
	c.SetAttr("rows", 42)
	c.End()
	s.End()
	r.Finish()
	if r.Len() != 0 || r.Unfinished() != 0 || r.Tree() != nil {
		t.Error("nil recorder must hold nothing")
	}
	if _, err := ChromeTrace(r.Tree()); err != nil {
		t.Errorf("ChromeTrace over a nil tree: %v", err)
	}
}

// TestSpanTreeShape: parent links, attributes, and ordering survive into the
// exported tree.
func TestSpanTreeShape(t *testing.T) {
	r := NewSpanRecorder()
	root := r.StartSpan("batch")
	root.SetAttr("statements", 3)
	opt := root.Child("optimize")
	opt.Child("candidates").End()
	opt.End()
	ex := root.Child("execute")
	sp := ex.Child("spool")
	sp.SetAttr("cache", "miss")
	sp.SetAttr("rows", 100)
	sp.End()
	ex.End()
	root.End()

	tree := r.Tree()
	if len(tree) != 1 || tree[0].Name != "batch" {
		t.Fatalf("tree roots = %+v", tree)
	}
	if got := tree[0].Attrs["statements"]; got != 3 {
		t.Errorf("root attr statements = %v", got)
	}
	if len(tree[0].Children) != 2 {
		t.Fatalf("root children = %+v", tree[0].Children)
	}
	if Find(tree, "candidates") == nil {
		t.Error("candidates span missing from tree")
	}
	spool := Find(tree, "spool")
	if spool == nil || spool.Attrs["cache"] != "miss" || spool.Attrs["rows"] != 100 {
		t.Errorf("spool node = %+v", spool)
	}
	n := 0
	Walk(tree, func(*SpanNode) { n++ })
	if n != 5 {
		t.Errorf("Walk visited %d nodes, want 5", n)
	}
}

// TestFinishMarksUnfinishedSpans: a batch that errors out mid-flight leaves
// spans running; Finish must close them and tag them, so the exported tree is
// well-formed and the leak is visible.
func TestFinishMarksUnfinishedSpans(t *testing.T) {
	r := NewSpanRecorder()
	root := r.StartSpan("batch")
	ex := root.Child("execute")
	ex.Child("spool").End()
	// Simulated error: neither ex nor root is ended.
	if r.Unfinished() != 2 {
		t.Fatalf("Unfinished = %d, want 2", r.Unfinished())
	}
	r.Finish()
	if r.Unfinished() != 0 {
		t.Fatalf("Unfinished after Finish = %d, want 0", r.Unfinished())
	}
	tree := r.Tree()
	if got := Find(tree, "execute").Attrs["unfinished"]; got != true {
		t.Errorf("execute span not marked unfinished: %v", got)
	}
	if got := Find(tree, "spool").Attrs["unfinished"]; got != nil {
		t.Errorf("cleanly ended span must not be marked unfinished: %v", got)
	}
	// Finish is idempotent and End after Finish stays a no-op.
	r.Finish()
	ex.End()
}

// TestSpanEndIdempotent: the first End wins; later Ends don't stretch the
// duration.
func TestSpanEndIdempotent(t *testing.T) {
	r := NewSpanRecorder()
	s := r.StartSpan("x")
	s.End()
	d1 := r.Tree()[0].DurUS
	time.Sleep(2 * time.Millisecond)
	s.End()
	if d2 := r.Tree()[0].DurUS; d2 != d1 {
		t.Errorf("duration changed after second End: %d -> %d", d1, d2)
	}
}

// TestConcurrentChildSpans: parallel workers start and end children of one
// parent concurrently (the shape of parallel spool materialization); run
// under -race this pins the locking discipline.
func TestConcurrentChildSpans(t *testing.T) {
	r := NewSpanRecorder()
	root := r.StartSpan("execute")
	var wg sync.WaitGroup
	const workers, perWorker = 8, 50
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s := root.Child("spool")
				s.SetAttr("worker", w)
				s.SetAttr("i", i)
				s.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	if r.Len() != 1+workers*perWorker {
		t.Fatalf("Len = %d, want %d", r.Len(), 1+workers*perWorker)
	}
	tree := r.Tree()
	if len(tree[0].Children) != workers*perWorker {
		t.Fatalf("children = %d, want %d", len(tree[0].Children), workers*perWorker)
	}
	if r.Unfinished() != 0 {
		t.Errorf("Unfinished = %d", r.Unfinished())
	}
}

// TestSpanDiscard: discarded spans vanish from the tree and their children
// re-parent to the nearest retained ancestor.
func TestSpanDiscard(t *testing.T) {
	r := NewSpanRecorder()
	root := r.StartSpan("batch")
	wait := root.Child("spool-wait")
	inner := wait.Child("spool")
	inner.End()
	wait.Discard()
	root.End()
	tree := r.Tree()
	if Find(tree, "spool-wait") != nil {
		t.Error("discarded span still in tree")
	}
	sp := Find(tree, "spool")
	if sp == nil {
		t.Fatal("child of discarded span lost")
	}
	if len(tree[0].Children) != 1 || tree[0].Children[0] != sp {
		t.Errorf("child not re-parented to root: %+v", tree[0].Children)
	}
	if r.Unfinished() != 0 {
		t.Errorf("Unfinished = %d (discard must count as ended)", r.Unfinished())
	}
	// Dur: ended span's duration is fixed; nil span reports 0.
	if wait.Dur() < 0 {
		t.Error("negative duration")
	}
	var nils *Span
	if nils.Dur() != 0 {
		t.Error("nil span Dur != 0")
	}
	nils.Discard()
}

// TestChromeTraceFormat: the export is the documented trace-event JSON shape
// (traceEvents array of "X" events with ts/dur/pid/tid) and concurrent
// sibling spans land on distinct tracks.
func TestChromeTraceFormat(t *testing.T) {
	tree := []*SpanNode{{
		Name: "batch", StartUS: 0, DurUS: 100,
		Children: []*SpanNode{
			{Name: "spool-a", StartUS: 10, DurUS: 50, Attrs: map[string]any{"cache": "miss"}},
			{Name: "spool-b", StartUS: 20, DurUS: 50}, // overlaps spool-a
			{Name: "stmt", StartUS: 70, DurUS: 20},
		},
	}}
	data, err := ChromeTrace(tree)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, data)
	}
	if len(out.TraceEvents) != 4 {
		t.Fatalf("events = %d, want 4", len(out.TraceEvents))
	}
	tids := map[string]int{}
	for _, e := range out.TraceEvents {
		if e.Ph != "X" {
			t.Errorf("event %q has ph %q, want X", e.Name, e.Ph)
		}
		tids[e.Name] = e.TID
	}
	if tids["spool-a"] == tids["spool-b"] {
		t.Errorf("overlapping siblings share track %d", tids["spool-a"])
	}
	if !strings.Contains(string(data), `"displayTimeUnit"`) {
		t.Error("export missing displayTimeUnit")
	}
	if ev := out.TraceEvents[1]; Find(tree, "spool-a") != nil && tids["spool-a"] >= 0 && ev.Args == nil && ev.Name == "spool-a" {
		t.Error("attrs not exported as args")
	}
}

// TestSpanJSONRoundTrip: the span tree marshals and unmarshals cleanly.
func TestSpanJSONRoundTrip(t *testing.T) {
	r := NewSpanRecorder()
	s := r.StartSpan("batch")
	s.SetAttr("n", 1)
	s.End()
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var nodes []*SpanNode
	if err := json.Unmarshal(data, &nodes); err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 || nodes[0].Name != "batch" {
		t.Errorf("round trip = %+v", nodes)
	}
	// An empty recorder still renders a valid empty array.
	data, err = NewSpanRecorder().JSON()
	if err != nil || strings.TrimSpace(string(data)) != "[]" {
		t.Errorf("empty recorder JSON = %q, %v", data, err)
	}
}
