package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func rec(wall time.Duration) *BatchRecord {
	return &BatchRecord{Start: time.Now(), Wall: wall, Statements: 1}
}

// TestFlightRecorderRing: the ring keeps exactly the last N records, newest
// first, with monotonically increasing sequence numbers.
func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(3, time.Hour)
	if got := f.Recent(); len(got) != 0 {
		t.Fatalf("fresh recorder Recent = %v", got)
	}
	if f.Last() != nil {
		t.Fatal("fresh recorder Last must be nil")
	}
	for i := 0; i < 5; i++ {
		f.Record(rec(time.Duration(i) * time.Millisecond))
	}
	got := f.Recent()
	if len(got) != 3 {
		t.Fatalf("Recent len = %d, want 3", len(got))
	}
	if got[0].Seq != 5 || got[1].Seq != 4 || got[2].Seq != 3 {
		t.Errorf("Recent seqs = %d,%d,%d, want 5,4,3", got[0].Seq, got[1].Seq, got[2].Seq)
	}
	if f.Last().Seq != 5 {
		t.Errorf("Last seq = %d, want 5", f.Last().Seq)
	}
}

// TestFlightRecorderSlowLog: only batches at or above the threshold enter the
// slow log, and it survives the main ring wrapping.
func TestFlightRecorderSlowLog(t *testing.T) {
	f := NewFlightRecorder(2, 10*time.Millisecond)
	f.Record(rec(50 * time.Millisecond)) // slow, seq 1
	for i := 0; i < 10; i++ {
		f.Record(rec(time.Millisecond)) // fast: flushes the ring
	}
	slow := f.Slow()
	if len(slow) != 1 || slow[0].Seq != 1 {
		t.Fatalf("Slow = %+v, want the one slow batch (seq 1)", slow)
	}
	// The slow log itself is bounded.
	for i := 0; i < 2*slowLogCapacity; i++ {
		f.Record(rec(time.Second))
	}
	if got := len(f.Slow()); got != slowLogCapacity {
		t.Errorf("slow log len = %d, want %d", got, slowLogCapacity)
	}
	if newest := f.Slow()[0]; newest.Seq != f.Last().Seq {
		t.Errorf("slow log newest seq = %d, want %d", newest.Seq, f.Last().Seq)
	}
}

// TestFlightRecorderNil: a nil recorder is a safe no-op (the disabled path).
func TestFlightRecorderNil(t *testing.T) {
	var f *FlightRecorder
	f.Record(rec(time.Second))
	if f.Recent() != nil || f.Slow() != nil || f.Last() != nil || f.Threshold() != 0 {
		t.Error("nil recorder must hold nothing")
	}
}

// TestFlightRecorderDefaults: non-positive capacity and threshold select the
// documented defaults.
func TestFlightRecorderDefaults(t *testing.T) {
	f := NewFlightRecorder(0, 0)
	if f.Threshold() != DefaultSlowThreshold {
		t.Errorf("threshold = %v", f.Threshold())
	}
	for i := 0; i < DefaultFlightCapacity+5; i++ {
		f.Record(rec(time.Millisecond))
	}
	if got := len(f.Recent()); got != DefaultFlightCapacity {
		t.Errorf("capacity = %d, want %d", got, DefaultFlightCapacity)
	}
}

// TestFlightRecorderJSON: the JSON export is a valid array carrying span
// trees.
func TestFlightRecorderJSON(t *testing.T) {
	f := NewFlightRecorder(4, time.Hour)
	r := NewSpanRecorder()
	r.StartSpan("batch").End()
	f.Record(&BatchRecord{Start: time.Now(), Wall: time.Millisecond, Spans: r.Tree()})
	data, err := f.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var out []*BatchRecord
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || len(out[0].Spans) != 1 || out[0].Spans[0].Name != "batch" {
		t.Errorf("round trip = %+v", out)
	}
}

// TestFlightRecorderConcurrent: concurrent recording is safe (run with -race).
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(8, time.Millisecond)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				f.Record(rec(time.Duration(i) * time.Millisecond))
				f.Recent()
				f.Slow()
			}
		}()
	}
	wg.Wait()
	if f.Last().Seq != 800 {
		t.Errorf("final seq = %d, want 800", f.Last().Seq)
	}
}
