// Package obs is the engine's observability layer: a structured optimizer
// trace recording every CSE decision (signature matching, candidate
// generation, the §4.3 pruning heuristics with the cost bounds and
// thresholds that triggered them, and §5's cost-based selection), and a
// lightweight metrics registry with a text exposition dump.
//
// Both facilities are off the hot path by design: tracing is opt-in (a nil
// *Trace disables every hook at the call site), and metric updates are a
// handful of atomic operations per batch, not per row.
package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// EventKind classifies one optimizer trace event.
type EventKind string

// The trace event taxonomy (documented in DESIGN.md).
const (
	// EvSignatureSet: a table signature referenced by >= 2 expressions was
	// detected (§3 signature matching). Groups holds the member memo groups.
	EvSignatureSet EventKind = "signature-set"

	// EvCompatClass: a join-compatible class (Definition 4.1) formed within a
	// signature set.
	EvCompatClass EventKind = "compat-class"

	// EvH1: Heuristic 1 (§4.3.1) decision — the consumers' summed lower
	// bounds against the alpha·C_Q threshold. Values: sum_lower, alpha, cq,
	// threshold.
	EvH1 EventKind = "h1"

	// EvH2: Heuristic 2 (§4.3.2) consumer drop — cheap to compute, expensive
	// to spool. Values: upper, read_cost, write_cost, consumers, threshold.
	EvH2 EventKind = "h2"

	// EvH3Merge: one greedy merge step of Algorithm 1 (§4.3.3) with its
	// Δ benefit. Values: delta, cur_cost, merged_cost.
	EvH3Merge EventKind = "h3-merge"

	// EvH3Drop: Heuristic 3 discarded a trivial spec because no merge had a
	// positive Δ benefit. Values: best_delta.
	EvH3Drop EventKind = "h3-drop"

	// EvH4: Heuristic 4 (§4.3.4) containment prune — a contained candidate
	// whose result is not meaningfully smaller than its container's. Values:
	// bytes, container_bytes, ratio, beta.
	EvH4 EventKind = "h4"

	// EvCandidate: a candidate survived generation and was handed to the
	// cost-based selection phase. Values: rows, bytes.
	EvCandidate EventKind = "candidate"

	// EvCharge: the candidate's initial-cost charge group (the consumers'
	// common dominator, §5.2) was assigned during PrepareCSE.
	EvCharge EventKind = "charge"

	// EvSubsetOpt: one reoptimization of the §5.3 subset enumeration.
	// Enabled is the candidate set optimized with; Used is what the winner
	// actually used. Values: cost.
	EvSubsetOpt EventKind = "subset-opt"

	// EvGreedyMove: one committed move of the greedy subset search — the
	// seed (all-enabled optimization snapped to its used set) or a
	// single-candidate add/drop with the round's best marginal cost delta.
	// Enabled is the state after the move; Reason names the move. Values:
	// cost, round, delta (absent on the seed).
	EvGreedyMove EventKind = "greedy-move"

	// EvFinal: the chosen CSE set. Values: base_cost, final_cost.
	EvFinal EventKind = "final"

	// EvCache: a cross-batch result-cache outcome for one spool, appended
	// after execution. Reason is "hit" or "miss"; Values: rows.
	EvCache EventKind = "cache"
)

// Event is one recorded optimizer decision. Numeric evidence (cost bounds,
// thresholds, the α/β/Δ parameters in force) lives in Values under stable
// names so tests and tools can assert on it.
type Event struct {
	Kind    EventKind          `json:"kind"`
	Label   string             `json:"label,omitempty"`
	Groups  []int              `json:"groups,omitempty"`
	Enabled []int              `json:"enabled,omitempty"`
	Used    []int              `json:"used,omitempty"`
	Pruned  bool               `json:"pruned,omitempty"`
	Reason  string             `json:"reason,omitempty"`
	Values  map[string]float64 `json:"values,omitempty"`
}

// Trace accumulates optimizer events for one optimization. A nil *Trace is a
// valid no-op receiver for Add, so call sites guard with a single nil check
// (or none) and disabled tracing costs nothing.
type Trace struct {
	mu     sync.Mutex
	events []Event
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Enabled reports whether events are being recorded.
func (t *Trace) Enabled() bool { return t != nil }

// Add appends one event. Safe on a nil trace and for concurrent use.
func (t *Trace) Add(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of all recorded events in order.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// OfKind returns the recorded events of one kind, in order.
func (t *Trace) OfKind(kind EventKind) []Event {
	var out []Event
	for _, e := range t.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// JSON renders the full event list as indented JSON.
func (t *Trace) JSON() ([]byte, error) {
	events := t.Events()
	if events == nil {
		events = []Event{}
	}
	return json.MarshalIndent(events, "", "  ")
}

// Text renders the trace as one line per event for shell output.
func (t *Trace) Text() string {
	events := t.Events()
	if len(events) == 0 {
		return "(no optimizer trace events)\n"
	}
	var sb strings.Builder
	for _, e := range events {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// String renders one event as a single line.
func (e Event) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "[%s]", e.Kind)
	if e.Label != "" {
		fmt.Fprintf(&sb, " %s", e.Label)
	}
	if len(e.Groups) > 0 {
		sb.WriteString(" groups=")
		writeIntList(&sb, e.Groups, "G")
	}
	if len(e.Enabled) > 0 {
		sb.WriteString(" enabled=")
		writeIntList(&sb, e.Enabled, "CSE")
	}
	if len(e.Used) > 0 {
		sb.WriteString(" used=")
		writeIntList(&sb, e.Used, "CSE")
	}
	switch {
	case e.Pruned:
		sb.WriteString(" PRUNED")
	case e.Kind == EvH1 || e.Kind == EvH2 || e.Kind == EvH4:
		sb.WriteString(" kept")
	}
	if e.Reason != "" {
		fmt.Fprintf(&sb, ": %s", e.Reason)
	}
	if len(e.Values) > 0 {
		keys := make([]string, 0, len(e.Values))
		for k := range e.Values {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sb.WriteString(" {")
		for i, k := range keys {
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%s=%.4g", k, e.Values[k])
		}
		sb.WriteByte('}')
	}
	return sb.String()
}

func writeIntList(sb *strings.Builder, ids []int, prefix string) {
	for i, id := range ids {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(sb, "%s%d", prefix, id)
	}
}
