package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	tr.Add(Event{Kind: EvH1})
	if tr.Enabled() {
		t.Error("nil trace must report disabled")
	}
	if tr.Len() != 0 || tr.Events() != nil {
		t.Error("nil trace must hold no events")
	}
}

func TestTraceRecordAndFilter(t *testing.T) {
	tr := NewTrace()
	tr.Add(Event{Kind: EvH1, Pruned: true, Values: map[string]float64{"alpha": 0.1}})
	tr.Add(Event{Kind: EvH4, Label: "E1"})
	tr.Add(Event{Kind: EvH1, Values: map[string]float64{"alpha": 0.1}})
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	h1 := tr.OfKind(EvH1)
	if len(h1) != 2 || !h1[0].Pruned || h1[1].Pruned {
		t.Errorf("OfKind(h1) = %+v", h1)
	}
}

func TestTraceConcurrentAdd(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tr.Add(Event{Kind: EvSubsetOpt})
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 800 {
		t.Errorf("Len = %d, want 800", tr.Len())
	}
}

func TestTraceRendering(t *testing.T) {
	tr := NewTrace()
	tr.Add(Event{
		Kind:   EvH1,
		Groups: []int{5, 9},
		Pruned: true,
		Reason: "below alpha threshold",
		Values: map[string]float64{"alpha": 0.10, "sum_lower": 12.5, "threshold": 100},
	})
	text := tr.Text()
	for _, want := range []string{"[h1]", "G5,G9", "PRUNED", "alpha=0.1", "threshold=100"} {
		if !strings.Contains(text, want) {
			t.Errorf("Text() missing %q:\n%s", want, text)
		}
	}

	data, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	if len(events) != 1 || events[0].Kind != EvH1 || events[0].Values["alpha"] != 0.10 {
		t.Errorf("round-tripped events = %+v", events)
	}

	// An empty trace still marshals to a valid (empty) JSON array.
	data, err = NewTrace().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(data)) != "[]" {
		t.Errorf("empty trace JSON = %q, want []", data)
	}
}

func TestRegistryCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry()
	r.Counter("queries_total").Add(3)
	r.Counter("queries_total").Inc()
	if got := r.Counter("queries_total").Value(); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
	r.Counter("queries_total").Add(-5) // ignored
	if got := r.Counter("queries_total").Value(); got != 4 {
		t.Errorf("counter after negative add = %d, want 4", got)
	}

	r.Gauge("utilization").Set(0.75)
	if got := r.Gauge("utilization").Value(); got != 0.75 {
		t.Errorf("gauge = %g, want 0.75", got)
	}

	h := r.Histogram("exec_seconds")
	h.Observe(0.002)
	h.Observe(0.2)
	if h.Count() != 2 {
		t.Errorf("histogram count = %d, want 2", h.Count())
	}
	if h.Sum() != 0.202 {
		t.Errorf("histogram sum = %g, want 0.202", h.Sum())
	}

	snap := r.Snapshot()
	if snap["queries_total"] != 4 || snap["utilization"] != 0.75 {
		t.Errorf("snapshot = %v", snap)
	}
	if snap["exec_seconds_count"] != 2 {
		t.Errorf("snapshot histogram count = %g", snap["exec_seconds_count"])
	}

	dump := r.Dump()
	for _, want := range []string{
		"# TYPE queries_total counter",
		"queries_total 4",
		"# TYPE utilization gauge",
		"# TYPE exec_seconds histogram",
		`exec_seconds_bucket{le="+Inf"} 2`,
		"exec_seconds_count 2",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("Dump missing %q:\n%s", want, dump)
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Histogram("h").Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Errorf("concurrent counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Errorf("concurrent histogram count = %d, want 8000", got)
	}
}
