package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (negative deltas are ignored).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-write-wins float metric.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// defaultBuckets suits the engine's sub-second phase timings (seconds).
var defaultBuckets = []float64{0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}

// Histogram is a fixed-bucket cumulative histogram.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64
	buckets []int64
	count   int64
	sum     float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i]++
		}
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the total of all observed samples.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Registry holds named metrics. Metrics are created on first use and live
// for the registry's lifetime; all methods are safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it (with the default
// sub-second timing buckets) if needed.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramWith(name, nil)
}

// HistogramWith returns the named histogram, creating it with the given
// bucket upper bounds if needed. Bounds must be sorted ascending; a trailing
// +Inf is implicit (and stripped if supplied). Nil or empty bounds select the
// default sub-second timing buckets. The first creation wins: an existing
// histogram's bounds are never changed, so phase histograms can be declared
// with tailored bounds at one site and observed from many.
func (r *Registry) HistogramWith(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		if len(bounds) == 0 {
			bounds = defaultBuckets
		}
		for len(bounds) > 0 && math.IsInf(bounds[len(bounds)-1], 1) {
			bounds = bounds[:len(bounds)-1]
		}
		bounds = append([]float64(nil), bounds...)
		h = &Histogram{bounds: bounds, buckets: make([]int64, len(bounds))}
		r.histograms[name] = h
	}
	return h
}

// Bounds returns the histogram's bucket upper bounds (excluding the implicit
// +Inf bucket).
func (h *Histogram) Bounds() []float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]float64(nil), h.bounds...)
}

// Snapshot flattens every metric to a name→value map: counters and gauges
// directly, histograms as name_count and name_sum.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counters)+len(r.gauges)+2*len(r.histograms))
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.histograms {
		out[name+"_count"] = float64(h.Count())
		out[name+"_sum"] = h.Sum()
	}
	return out
}

// Dump renders every metric in a Prometheus-style text exposition, sorted by
// name for stable output.
func (r *Registry) Dump() string {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		histograms[k] = v
	}
	r.mu.Unlock()

	var sb strings.Builder
	for _, name := range sortedKeys(counters) {
		fmt.Fprintf(&sb, "# TYPE %s counter\n%s %d\n", name, name, counters[name].Value())
	}
	for _, name := range sortedKeys(gauges) {
		fmt.Fprintf(&sb, "# TYPE %s gauge\n%s %g\n", name, name, gauges[name].Value())
	}
	for _, name := range sortedKeys(histograms) {
		h := histograms[name]
		h.mu.Lock()
		fmt.Fprintf(&sb, "# TYPE %s histogram\n", name)
		for i, b := range h.bounds {
			fmt.Fprintf(&sb, "%s_bucket{le=%q} %d\n", name, formatBound(b), h.buckets[i])
		}
		fmt.Fprintf(&sb, "%s_bucket{le=\"+Inf\"} %d\n", name, h.count)
		fmt.Fprintf(&sb, "%s_sum %g\n%s_count %d\n", name, h.sum, name, h.count)
		h.mu.Unlock()
	}
	return sb.String()
}

func formatBound(b float64) string { return fmt.Sprintf("%g", b) }

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
