package core

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/logical"
	"repro/internal/memo"
	"repro/internal/parser"
	"repro/internal/scalar"
	"repro/internal/storage"
	"repro/internal/tpch"
)

func whiteboxMemo(t testing.TB, sql string) *memo.Memo {
	t.Helper()
	cat := catalog.New()
	for _, tab := range tpch.Schemas() {
		if err := cat.Add(tab); err != nil {
			t.Fatal(err)
		}
	}
	st := storage.NewStore()
	if err := tpch.Generate(tpch.Config{ScaleFactor: 0.002, Seed: 3}, cat, st); err != nil {
		t.Fatal(err)
	}
	stmts, err := parser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := logical.BuildBatch(stmts, cat)
	if err != nil {
		t.Fatal(err)
	}
	m, err := memo.Build(batch)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBaseEquivUnionFind(t *testing.T) {
	be := newBaseEquiv()
	a := baseKey{"r", 0}
	b := baseKey{"s", 1}
	c := baseKey{"t", 2}
	be.add(a, b)
	be.add(b, c)
	if !be.equal(a, c) {
		t.Error("transitivity")
	}
	if be.equal(a, baseKey{"x", 0}) {
		t.Error("unrelated keys are not equal")
	}
	classes := be.classes()
	if len(classes) != 1 || len(classes[0]) != 3 {
		t.Errorf("classes = %v", classes)
	}
}

// TestIntersectEquivPaperExample2 replays the paper's Example 2 at the
// base-column level.
func TestIntersectEquivPaperExample2(t *testing.T) {
	ra, rb, rc := baseKey{"r", 0}, baseKey{"r", 1}, baseKey{"r", 2}
	sd, se, sf := baseKey{"s", 0}, baseKey{"s", 1}, baseKey{"s", 2}

	e1 := newBaseEquiv() // R.a=S.d, R.b=S.e
	e1.add(ra, sd)
	e1.add(rb, se)
	e2 := newBaseEquiv() // R.a=S.d, R.c=S.f
	e2.add(ra, sd)
	e2.add(rc, sf)
	inter := intersectEquiv(e1, e2)
	if !inter.equal(ra, sd) {
		t.Error("R.a = S.d must survive the intersection")
	}
	if inter.equal(rb, se) || inter.equal(rc, sf) {
		t.Error("non-common equalities must not survive")
	}
	// The equijoin graph over {r, s} is connected: join compatible.
	if !inter.connectedOver([]string{"r", "s"}) {
		t.Error("expressions of Example 2 are join compatible")
	}

	// Second part: R ⋈a=d,b=e S vs R ⋈c=f S: intersection empty → graph
	// disconnected → not join compatible.
	e3 := newBaseEquiv()
	e3.add(rc, sf)
	inter2 := intersectEquiv(e1, e3)
	if inter2.connectedOver([]string{"r", "s"}) {
		t.Error("expressions with no common join must not be join compatible")
	}
}

func TestConnectedOverSingleTable(t *testing.T) {
	be := newBaseEquiv()
	if !be.connectedOver([]string{"r"}) {
		t.Error("one table is trivially connected")
	}
	if !be.connectedOver(nil) {
		t.Error("zero tables is trivially connected")
	}
}

func TestSubsetOfEquiv(t *testing.T) {
	a := newBaseEquiv()
	a.add(baseKey{"r", 0}, baseKey{"s", 0})
	b := newBaseEquiv()
	b.add(baseKey{"r", 0}, baseKey{"s", 0})
	b.add(baseKey{"r", 1}, baseKey{"s", 1})
	if !subsetOfEquiv(a, b) {
		t.Error("a's single equality holds in b")
	}
	if subsetOfEquiv(b, a) {
		t.Error("b has an equality missing from a")
	}
}

func TestCompatClassesSplit(t *testing.T) {
	// Two pairs of queries over orders⋈lineitem: the first pair joins on
	// o_orderkey = l_orderkey, the second "joins" on an unrelated equality
	// (o_custkey = l_suppkey); they are not mutually join compatible.
	m := whiteboxMemo(t, `
select o_orderkey from orders, lineitem where o_orderkey = l_orderkey and o_totalprice > 10;
select o_orderkey from orders, lineitem where o_orderkey = l_orderkey and o_totalprice > 20;
select o_orderkey from orders, lineitem where o_custkey = l_suppkey;
`)
	sets := detectSets(m)
	var olSet []memo.GroupID
	for _, set := range sets {
		if m.Group(set[0]).Sig.Key() == "F|lineitem,orders" {
			olSet = set
		}
	}
	if len(olSet) != 3 {
		t.Fatalf("detection found %d {O,L} groups, want 3", len(olSet))
	}
	classes := compatClasses(m, olSet)
	if len(classes) != 2 {
		t.Fatalf("compatibility classes = %d, want 2", len(classes))
	}
	sizes := []int{len(classes[0]), len(classes[1])}
	if !(sizes[0] == 2 && sizes[1] == 1) && !(sizes[0] == 1 && sizes[1] == 2) {
		t.Errorf("class sizes = %v, want {2,1}", sizes)
	}
}

func TestBuildSpecCoveringPredicate(t *testing.T) {
	m := whiteboxMemo(t, `
select c_name from customer, orders where c_custkey = o_custkey and c_nationkey < 10;
select c_name from customer, orders where c_custkey = o_custkey and c_nationkey > 15;
`)
	var consumers []memo.GroupID
	for _, set := range detectSets(m) {
		if m.Group(set[0]).Sig.Key() == "F|customer,orders" {
			consumers = set
		}
	}
	if len(consumers) != 2 {
		t.Fatalf("consumers = %d", len(consumers))
	}
	s, err := buildSpec(m, consumers)
	if err != nil {
		t.Fatal(err)
	}
	// Step 1: the shared equijoin became the join predicate.
	if len(s.joinConjuncts) != 1 {
		t.Errorf("join conjuncts = %d, want 1", len(s.joinConjuncts))
	}
	// Step 3: the two different filters OR into the covering predicate.
	if s.covering == nil || s.covering.Op != scalar.OpOr {
		t.Fatalf("covering = %v, want OR", s.covering)
	}
	if len(s.shared) != 0 {
		t.Errorf("no shared non-join conjuncts here, got %v", s.shared)
	}
	// Residuals per consumer are their own filters.
	for _, cid := range consumers {
		if scalar.IsTrue(s.residuals[cid]) {
			t.Error("each consumer keeps a compensation residual")
		}
	}
	// Output columns include the covering predicate's column.
	nk := findColByName(m.Md, s.outCols, "c_nationkey")
	if nk == 0 {
		t.Error("covering predicate column must be in the CSE output")
	}
}

func TestBuildSpecSharedConjunctFactoring(t *testing.T) {
	m := whiteboxMemo(t, `
select c_nationkey, sum(o_totalprice) as s from customer, orders
where c_custkey = o_custkey and o_orderdate < '1996-07-01' and c_nationkey < 10
group by c_nationkey;
select c_nationkey, sum(o_totalprice) as s from customer, orders
where c_custkey = o_custkey and o_orderdate < '1996-07-01' and c_nationkey > 15
group by c_nationkey;
`)
	var consumers []memo.GroupID
	for _, set := range detectSets(m) {
		if m.Group(set[0]).Sig.Key() == "T|customer,orders" {
			consumers = set
		}
	}
	if len(consumers) < 2 {
		t.Skip("no grouped consumers detected (eager-agg gate)")
	}
	s, err := buildSpec(m, consumers[:2])
	if err != nil {
		t.Fatal(err)
	}
	// The common date filter is factored out as a shared conjunct, not
	// OR'd — so o_orderdate must NOT become a grouping column.
	if len(s.shared) != 1 {
		t.Fatalf("shared conjuncts = %v, want the o_orderdate filter", s.shared)
	}
	for _, gc := range s.groupCols {
		if name := m.Md.ColName(gc); name == "orders.o_orderdate" {
			t.Error("shared conjunct columns must not join the grouping columns")
		}
	}
}

func TestBuildSpecGroupedUnion(t *testing.T) {
	// Two grouped consumers with different grouping columns: CSE groups by
	// the union, consumers re-aggregate.
	m := whiteboxMemo(t, `
select c_nationkey, c_mktsegment, sum(o_totalprice) as s from customer, orders
where c_custkey = o_custkey group by c_nationkey, c_mktsegment;
select c_nationkey, sum(o_totalprice) as s, count(*) as n from customer, orders
where c_custkey = o_custkey group by c_nationkey;
`)
	var consumers []memo.GroupID
	for _, set := range detectSets(m) {
		if m.Group(set[0]).Sig.Key() == "T|customer,orders" {
			consumers = set
		}
	}
	if len(consumers) < 2 {
		t.Fatal("grouped consumers not detected")
	}
	s, err := buildSpec(m, consumers)
	if err != nil {
		t.Fatal(err)
	}
	if !s.grouped {
		t.Fatal("spec must be grouped")
	}
	names := map[string]bool{}
	for _, gc := range s.groupCols {
		names[m.Md.ColName(gc)] = true
	}
	if !names["customer.c_nationkey"] || !names["customer.c_mktsegment"] {
		t.Errorf("grouping columns = %v, want union of consumer groupings", names)
	}
	// Aggregates are deduplicated across consumers: sum appears once.
	sums := 0
	for _, a := range s.aggs {
		if a.Kind == scalar.AggSum {
			sums++
		}
	}
	if sums != 1 {
		t.Errorf("sum aggregates = %d, want 1 (deduplicated across consumers)", sums)
	}
}

func TestSubstituteReaggregation(t *testing.T) {
	m := whiteboxMemo(t, `
select c_nationkey, c_mktsegment, sum(o_totalprice) as s from customer, orders
where c_custkey = o_custkey group by c_nationkey, c_mktsegment;
select c_nationkey, sum(o_totalprice) as s from customer, orders
where c_custkey = o_custkey group by c_nationkey;
`)
	var consumers []memo.GroupID
	for _, set := range detectSets(m) {
		if m.Group(set[0]).Sig.Key() == "T|customer,orders" {
			consumers = set
		}
	}
	s, err := buildSpec(m, consumers)
	if err != nil {
		t.Fatal(err)
	}
	// The wide-grouping consumer (c_nationkey, c_mktsegment) matches the
	// CSE grouping exactly: no re-aggregation.
	wide := consumers[0]
	if len(m.Group(wide).GroupCols) != 2 {
		wide = consumers[1]
	}
	subWide, err := s.substituteFor(wide)
	if err != nil {
		t.Fatal(err)
	}
	if subWide.GroupCols != nil || len(subWide.Aggs) != 0 {
		t.Error("exact-grouping consumer needs no re-aggregation")
	}
	// The narrow consumer re-aggregates.
	narrow := consumers[0] + consumers[1] - wide
	subNarrow, err := s.substituteFor(narrow)
	if err != nil {
		t.Fatal(err)
	}
	if len(subNarrow.GroupCols) != 1 || len(subNarrow.Aggs) == 0 {
		t.Errorf("narrow consumer must re-aggregate: %+v", subNarrow)
	}
	// Substitutes validate against the spool layout.
	if err := validateSub(subWide, s.outCols); err != nil {
		t.Error(err)
	}
	if err := validateSub(subNarrow, s.outCols); err != nil {
		t.Error(err)
	}
}

func TestCoveredBy(t *testing.T) {
	p1 := scalar.Cmp(scalar.OpLt, scalar.Col(1), scalar.ConstInt(10))
	p2 := scalar.Cmp(scalar.OpGt, scalar.Col(1), scalar.ConstInt(5))
	p3 := scalar.Cmp(scalar.OpEq, scalar.Col(2), scalar.ConstInt(1))

	if !coveredBy([]*scalar.Expr{p1}, nil) {
		t.Error("TRUE covering accepts everything")
	}
	// covering = p1 OR p3; conjunct set {p1} implies it via the p1 disjunct.
	cov := scalar.Or(p1, p3)
	if !coveredBy([]*scalar.Expr{p1, p2}, cov) {
		t.Error("conjunct set containing a full disjunct implies the OR")
	}
	if coveredBy([]*scalar.Expr{p2}, cov) {
		t.Error("no disjunct is implied")
	}
	// Conjunctive disjunct: covering = (p1 AND p2) OR p3.
	cov2 := scalar.Or(scalar.And(p1, p2), p3)
	if !coveredBy([]*scalar.Expr{p1, p2}, cov2) {
		t.Error("all conjuncts of the first disjunct are present")
	}
	if coveredBy([]*scalar.Expr{p1}, cov2) {
		t.Error("half a disjunct is not enough")
	}
}

func TestSubsetRuleSkips(t *testing.T) {
	// After optimizing S = R ∪ T (T independent), subsets keeping R and
	// dropping part of T are skipped.
	ru := subsetRule{r: 0b001, t: 0b110}
	cases := []struct {
		mask uint64
		want bool
	}{
		{0b111, false}, // S itself: not skipped
		{0b011, true},  // R + part of T
		{0b101, true},
		{0b001, true},   // R alone
		{0b010, false},  // drops R
		{0b1001, false}, // outside S
		{0, false},
	}
	for _, c := range cases {
		if got := ru.skips(c.mask); got != c.want {
			t.Errorf("skips(%04b) = %v, want %v", c.mask, got, c.want)
		}
	}
}

func TestTableSubset(t *testing.T) {
	if !tableSubset([]string{"a", "b"}, []string{"a", "b", "c"}) {
		t.Error("subset")
	}
	if tableSubset([]string{"a", "d"}, []string{"a", "b", "c"}) {
		t.Error("not a subset")
	}
	if !tableSubset(nil, []string{"a"}) {
		t.Error("empty set is a subset")
	}
}

func findColByName(md *logical.Metadata, cols []scalar.ColID, suffix string) scalar.ColID {
	for _, c := range cols {
		name := md.ColName(c)
		if len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix {
			return c
		}
	}
	return 0
}
