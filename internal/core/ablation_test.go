package core_test

import (
	"testing"

	"repro/internal/core"
)

// ablate runs Example 1's batch under a tweaked configuration and returns
// the stats.
func ablate(t *testing.T, tweak func(*core.Settings)) core.Stats {
	t.Helper()
	cat := testCatalog(t, 0.01)
	m := buildMemo(t, cat, example1SQL)
	s := core.DefaultSettings()
	tweak(&s)
	out, err := core.Optimize(m, s)
	if err != nil {
		t.Fatal(err)
	}
	return out.Stats
}

// TestChargeAtRootSamePlanQuality: charging initial costs at the batch root
// instead of the common dominator must not change the chosen plan's cost —
// only the optimizer's work (§5.2's point is efficiency, not plan quality).
func TestChargeAtRootSamePlanQuality(t *testing.T) {
	base := ablate(t, func(s *core.Settings) {})
	atRoot := ablate(t, func(s *core.Settings) { s.ChargeAtRoot = true })
	if base.FinalCost != atRoot.FinalCost {
		t.Errorf("charge-at-root changed plan cost: %.2f vs %.2f", atRoot.FinalCost, base.FinalCost)
	}
	if len(atRoot.UsedCSEs) != len(base.UsedCSEs) {
		t.Errorf("charge-at-root changed CSE usage: %v vs %v", atRoot.UsedCSEs, base.UsedCSEs)
	}
}

// TestNoHistoryReuseSamePlanQuality: disabling §5.4's history reuse is a
// pure performance ablation.
func TestNoHistoryReuseSamePlanQuality(t *testing.T) {
	base := ablate(t, func(s *core.Settings) { s.Heuristics = false })
	noHist := ablate(t, func(s *core.Settings) { s.Heuristics = false; s.NoHistoryReuse = true })
	if base.FinalCost != noHist.FinalCost {
		t.Errorf("disabling history reuse changed plan cost: %.2f vs %.2f", noHist.FinalCost, base.FinalCost)
	}
}

// TestExtendedSubsetPruningFewerOpts: the interval rule must cut
// reoptimizations below plain Propositions 5.4–5.6 while finding the same
// plan.
func TestExtendedSubsetPruningFewerOpts(t *testing.T) {
	plain := ablate(t, func(s *core.Settings) { s.Heuristics = false })
	ext := ablate(t, func(s *core.Settings) { s.Heuristics = false; s.ExtendedSubsetPruning = true })
	if ext.FinalCost != plain.FinalCost {
		t.Errorf("extended pruning changed plan cost: %.2f vs %.2f", ext.FinalCost, plain.FinalCost)
	}
	if ext.CSEOptimizations >= plain.CSEOptimizations {
		t.Errorf("extended pruning did not reduce optimizations: %d vs %d",
			ext.CSEOptimizations, plain.CSEOptimizations)
	}
	t.Logf("reoptimizations: plain Props 5.4-5.6 = %d, interval rule = %d",
		plain.CSEOptimizations, ext.CSEOptimizations)
}

// TestSubsetPruningOffExhaustive: without Propositions 5.4–5.6 every subset
// of the 5 Figure-6 candidates is optimized (2^5−1 = 31), and the plan is
// unchanged.
func TestSubsetPruningOffExhaustive(t *testing.T) {
	pruned := ablate(t, func(s *core.Settings) { s.Heuristics = false })
	exhaustive := ablate(t, func(s *core.Settings) { s.Heuristics = false; s.SubsetPruning = false })
	if exhaustive.CSEOptimizations != 31 {
		t.Errorf("exhaustive optimizations = %d, want 31", exhaustive.CSEOptimizations)
	}
	if pruned.CSEOptimizations >= exhaustive.CSEOptimizations {
		t.Errorf("propositions did not prune: %d vs %d", pruned.CSEOptimizations, exhaustive.CSEOptimizations)
	}
	if pruned.FinalCost != exhaustive.FinalCost {
		t.Errorf("pruning changed plan cost: %.2f vs %.2f", pruned.FinalCost, exhaustive.FinalCost)
	}
}

// TestMinQueryCostGate: a high threshold skips the CSE phase entirely.
func TestMinQueryCostGate(t *testing.T) {
	gated := ablate(t, func(s *core.Settings) { s.MinQueryCost = 1e12 })
	if gated.Candidates != 0 || gated.FinalCost != gated.BaseCost {
		t.Errorf("CSE phase ran despite the cost gate: %+v", gated)
	}
}

// TestMaxCSEOptimizationsCap bounds the subset enumeration.
func TestMaxCSEOptimizationsCap(t *testing.T) {
	capped := ablate(t, func(s *core.Settings) {
		s.Heuristics = false
		s.SubsetPruning = false
		s.MaxCSEOptimizations = 5
	})
	if capped.CSEOptimizations > 5 {
		t.Errorf("cap ignored: %d optimizations", capped.CSEOptimizations)
	}
	// The descending-size order tries the full set first, which finds the
	// sharing plan even under a tight cap.
	if capped.FinalCost >= capped.BaseCost {
		t.Error("capped enumeration should still find the sharing plan")
	}
}
